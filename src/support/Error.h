//===- support/Error.h - Structured solver error taxonomy ------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error taxonomy for the solving stack. Deep layers (smt,
/// mbp, itp, solver) raise MucycError with a typed code instead of calling
/// abort()/assert() for conditions that a resource governor or a fuzzer can
/// legitimately trigger; the ChcSolver::solve() boundary catches it, turns
/// the run into an Unknown result carrying an ErrorInfo breadcrumb, and the
/// runtime layer decides whether the code is worth a degraded retry
/// (errorRecoverable()). Detail strings must be deterministic — counts and
/// names, never pointers or wall-clock — because they flow into fuzz
/// reports that are byte-compared across runs.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_ERROR_H
#define MUCYC_SUPPORT_ERROR_H

#include <cstdint>
#include <exception>
#include <string>

namespace mucyc {

/// What went wrong, at the granularity the retry ladder cares about.
enum class ErrorCode : uint8_t {
  None = 0,
  /// Cooperative memory-budget trip (SolverOptions::MemLimitMb) from the
  /// ResourceGauge metering TermContext / CDCL / simplex growth.
  ResourceExhaustedMemory,
  /// A step budget ran dry mid-operation (QE disjunct enumeration, lemma
  /// budget inside a must-succeed helper) where Unknown cannot be returned
  /// in-band.
  ResourceExhaustedSteps,
  /// A recursion-depth guard tripped (Tseitin encoding, divide
  /// elimination).
  ResourceExhaustedDepth,
  /// Cooperative cancellation surfaced as an exception (includes injected
  /// spurious cancels).
  Cancelled,
  /// The run's wall-clock deadline expired.
  Timeout,
  /// An internal invariant did not hold. On a fuzzer-built instance this is
  /// a bug report, not a crash; on a retry it may vanish (e.g. when the
  /// trigger was an injected fault).
  InvariantViolation,
  /// Malformed user input (bad file, bad flag value, parse error).
  InputError,
  /// An isolated worker process died by a signal (SIGSEGV, SIGKILL, ...),
  /// exited with a nonzero status, or closed the reply channel without a
  /// complete frame. The solving state is gone; the parent-side ladder may
  /// retry with a degraded configuration.
  WorkerCrashedSignal,
  /// An isolated worker tripped an OS resource limit (RLIMIT_CPU's SIGXCPU,
  /// or the RLIMIT_AS bad_alloc exit). Distinguished from the cooperative
  /// ResourceExhausted* codes: the kernel, not the gauge, pulled the plug.
  WorkerCrashedRlimit,
  /// The parent-side watchdog SIGKILLed a worker that outlived its deadline
  /// plus grace without replying — the wedged-native-loop case cooperative
  /// cancellation cannot reach.
  WorkerCrashedWedged,
};

/// Stable lowercase name, e.g. "resource-exhausted-memory".
const char *errorCodeName(ErrorCode C);

/// True when a scheduler retry with a degraded configuration could plausibly
/// change the outcome. Cancellation and timeouts are final: the budget that
/// produced them is already spent. Invariant violations are retried because
/// the degraded config takes different code paths (and injected faults only
/// fire once per trip point).
bool errorRecoverable(ErrorCode C);

/// Breadcrumb attached to solver results and job outcomes: what failed and
/// a deterministic one-line detail.
struct ErrorInfo {
  ErrorCode Code = ErrorCode::None;
  std::string Detail;

  bool isError() const { return Code != ErrorCode::None; }
  /// "resource-exhausted-memory: node budget exhausted ..." or "".
  std::string describe() const;
};

/// The exception carrying an ErrorCode through the solving stack. Caught at
/// the ChcSolver::solve() / CLI boundaries; never escapes a runtime job.
class MucycError : public std::exception {
public:
  MucycError(ErrorCode C, std::string Detail)
      : C(C), Detail(std::move(Detail)),
        What(std::string(errorCodeName(C)) + ": " + this->Detail) {}

  ErrorCode code() const { return C; }
  const std::string &detail() const { return Detail; }
  ErrorInfo info() const { return ErrorInfo{C, Detail}; }
  const char *what() const noexcept override { return What.c_str(); }

private:
  ErrorCode C;
  std::string Detail;
  std::string What;
};

/// Raises MucycError. Out-of-line so the throw does not bloat hot-path
/// callers; annotated noreturn so guards read as assertions.
[[noreturn]] void raiseError(ErrorCode C, std::string Detail);

/// Invariant guard for solver hot paths: like assert(), but survives NDEBUG
/// and converts the failure into a recoverable InvariantViolation that
/// fuzzing surfaces as a report and the runtime survives. Use for
/// conditions a malformed-but-parseable input or a substrate bug could
/// trip; keep plain assert() for programmer errors on cold paths.
#define MUCYC_INVARIANT(Cond, Msg)                                           \
  do {                                                                       \
    if (!(Cond))                                                             \
      ::mucyc::raiseError(::mucyc::ErrorCode::InvariantViolation,            \
                          std::string(Msg) + " [" #Cond "]");                \
  } while (false)

} // namespace mucyc

#endif // MUCYC_SUPPORT_ERROR_H
