//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over BigInt, plus the delta-rationals (a + b*eps) used by
/// the general simplex to represent strict bounds (Dutertre & de Moura 2006).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_RATIONAL_H
#define MUCYC_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

namespace mucyc {

/// Exact rational number, always normalized: gcd(num, den) = 1, den > 0,
/// and zero is 0/1. Equality is structural.
class Rational {
public:
  Rational() : Den(1) {}
  Rational(int64_t V) : Num(V), Den(1) {}
  Rational(BigInt N) : Num(std::move(N)), Den(1) {}
  Rational(BigInt N, BigInt D);
  Rational(int64_t N, int64_t D) : Rational(BigInt(N), BigInt(D)) {}

  /// Parses "-12", "3/4", or decimal "2.5". Asserts on malformed input.
  static Rational fromString(const std::string &S);

  const BigInt &num() const { return Num; }
  const BigInt &den() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isInt() const { return Den.isOne(); }
  int sgn() const { return Num.sgn(); }

  int compare(const Rational &RHS) const;
  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// \p RHS must be nonzero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  /// Multiplicative inverse; *this must be nonzero.
  Rational inverse() const;

  BigInt floor() const { return Num.floorDiv(Den); }
  BigInt ceil() const { return -((-Num).floorDiv(Den)); }

  std::string toString() const;
  size_t hash() const;

private:
  void normalize();

  BigInt Num;
  BigInt Den; ///< Always positive.
};

/// Value of the form R + K*eps for an infinitesimal eps > 0. The general
/// simplex uses these so strict bounds become non-strict bounds on delta
/// values; a concrete eps is chosen only when extracting a model.
class DeltaRational {
public:
  DeltaRational() = default;
  DeltaRational(Rational R) : Real(std::move(R)) {}
  DeltaRational(Rational R, Rational D)
      : Real(std::move(R)), Delta(std::move(D)) {}

  const Rational &real() const { return Real; }
  const Rational &delta() const { return Delta; }

  int compare(const DeltaRational &RHS) const {
    int C = Real.compare(RHS.Real);
    return C != 0 ? C : Delta.compare(RHS.Delta);
  }
  bool operator==(const DeltaRational &RHS) const {
    return Real == RHS.Real && Delta == RHS.Delta;
  }
  bool operator!=(const DeltaRational &RHS) const { return !(*this == RHS); }
  bool operator<(const DeltaRational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const DeltaRational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const DeltaRational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const DeltaRational &RHS) const { return compare(RHS) >= 0; }

  DeltaRational operator+(const DeltaRational &RHS) const {
    return DeltaRational(Real + RHS.Real, Delta + RHS.Delta);
  }
  DeltaRational operator-(const DeltaRational &RHS) const {
    return DeltaRational(Real - RHS.Real, Delta - RHS.Delta);
  }
  DeltaRational operator*(const Rational &C) const {
    return DeltaRational(Real * C, Delta * C);
  }

  /// Concretizes with the given epsilon value.
  Rational materialize(const Rational &Eps) const {
    return Real + Delta * Eps;
  }

  std::string toString() const;

private:
  Rational Real;
  Rational Delta;
};

} // namespace mucyc

#endif // MUCYC_SUPPORT_RATIONAL_H
