//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>

using namespace mucyc;

BigInt::BigInt(int64_t V) {
  Negative = V < 0;
  // Avoid UB on INT64_MIN by widening through unsigned arithmetic.
  uint64_t U = Negative ? ~static_cast<uint64_t>(V) + 1 : static_cast<uint64_t>(V);
  while (U != 0) {
    Mag.push_back(static_cast<uint32_t>(U & 0xffffffffu));
    U >>= 32;
  }
  trim();
}

void BigInt::trim() {
  while (!Mag.empty() && Mag.back() == 0)
    Mag.pop_back();
  if (Mag.empty())
    Negative = false;
}

int BigInt::compareMag(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> BigInt::addMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Big = A.size() >= B.size() ? A : B;
  const std::vector<uint32_t> &Small = A.size() >= B.size() ? B : A;
  std::vector<uint32_t> R;
  R.reserve(Big.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Big.size(); ++I) {
    uint64_t Sum = Carry + Big[I] + (I < Small.size() ? Small[I] : 0);
    R.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
    Carry = Sum >> 32;
  }
  if (Carry)
    R.push_back(static_cast<uint32_t>(Carry));
  return R;
}

std::vector<uint32_t> BigInt::subMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  assert(compareMag(A, B) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> R;
  R.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    Borrow = 0;
    if (Diff < 0) {
      Diff += int64_t(1) << 32;
      Borrow = 1;
    }
    R.push_back(static_cast<uint32_t>(Diff));
  }
  assert(Borrow == 0 && "underflow in subMag");
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int C = compareMag(Mag, RHS.Mag);
  return Negative ? -C : C;
}

BigInt BigInt::operator-() const {
  BigInt R = *this;
  if (!R.isZero())
    R.Negative = !R.Negative;
  return R;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  BigInt R;
  if (Negative == RHS.Negative) {
    R.Negative = Negative;
    R.Mag = addMag(Mag, RHS.Mag);
  } else {
    int C = compareMag(Mag, RHS.Mag);
    if (C == 0)
      return BigInt();
    if (C > 0) {
      R.Negative = Negative;
      R.Mag = subMag(Mag, RHS.Mag);
    } else {
      R.Negative = RHS.Negative;
      R.Mag = subMag(RHS.Mag, Mag);
    }
  }
  R.trim();
  return R;
}

BigInt BigInt::operator-(const BigInt &RHS) const { return *this + (-RHS); }

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (isZero() || RHS.isZero())
    return BigInt();
  BigInt R;
  R.Negative = Negative != RHS.Negative;
  R.Mag.assign(Mag.size() + RHS.Mag.size(), 0);
  for (size_t I = 0; I < Mag.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < RHS.Mag.size(); ++J) {
      uint64_t Cur = R.Mag[I + J] +
                     static_cast<uint64_t>(Mag[I]) * RHS.Mag[J] + Carry;
      R.Mag[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
    }
    size_t K = I + RHS.Mag.size();
    while (Carry) {
      uint64_t Cur = R.Mag[K] + Carry;
      R.Mag[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
      ++K;
    }
  }
  R.trim();
  return R;
}

void BigInt::divMod(const BigInt &LHS, const BigInt &RHS, BigInt &Quot,
                    BigInt &Rem) {
  assert(!RHS.isZero() && "division by zero");
  // Magnitude long division in base 2 over base-2^32 limbs. Simple and
  // correct; the numbers flowing through mucyc are small enough that the
  // O(bits * limbs) cost is irrelevant next to SMT search.
  int C = compareMag(LHS.Mag, RHS.Mag);
  if (C < 0) {
    Quot = BigInt();
    Rem = LHS;
    return;
  }
  std::vector<uint32_t> Q(LHS.Mag.size(), 0);
  std::vector<uint32_t> R; // Current remainder magnitude.
  size_t Bits = LHS.Mag.size() * 32;
  for (size_t BitIdx = Bits; BitIdx-- > 0;) {
    // R = R*2 + bit.
    uint32_t CarryBit = (LHS.Mag[BitIdx / 32] >> (BitIdx % 32)) & 1;
    uint32_t Carry = CarryBit;
    for (size_t I = 0; I < R.size(); ++I) {
      uint32_t Hi = R[I] >> 31;
      R[I] = (R[I] << 1) | Carry;
      Carry = Hi;
    }
    if (Carry)
      R.push_back(Carry);
    if (compareMag(R, RHS.Mag) >= 0) {
      R = subMag(R, RHS.Mag);
      Q[BitIdx / 32] |= (uint32_t(1) << (BitIdx % 32));
    }
  }
  Quot.Mag = std::move(Q);
  Quot.Negative = LHS.Negative != RHS.Negative;
  Quot.trim();
  Rem.Mag = std::move(R);
  Rem.Negative = LHS.Negative; // Truncated division: remainder follows LHS.
  Rem.trim();
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return Q;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return R;
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  // Truncation equals floor unless signs differ and division was inexact.
  if (!R.isZero() && (isNeg() != RHS.isNeg()))
    Q -= BigInt(1);
  return Q;
}

BigInt BigInt::euclidMod(const BigInt &RHS) const {
  BigInt R = *this % RHS;
  if (R.isNeg())
    R += RHS.abs();
  return R;
}

BigInt BigInt::abs() const {
  BigInt R = *this;
  R.Negative = false;
  return R;
}

BigInt BigInt::gcd(BigInt A, BigInt B) {
  A.Negative = false;
  B.Negative = false;
  while (!B.isZero()) {
    BigInt T = A % B;
    A = std::move(B);
    B = std::move(T);
  }
  return A;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A * B).abs() / gcd(A, B);
}

bool BigInt::toInt64(int64_t &Out) const {
  if (Mag.size() > 2)
    return false;
  uint64_t U = 0;
  if (Mag.size() >= 1)
    U = Mag[0];
  if (Mag.size() == 2)
    U |= static_cast<uint64_t>(Mag[1]) << 32;
  if (Negative) {
    if (U > static_cast<uint64_t>(INT64_MAX) + 1)
      return false;
    Out = U == static_cast<uint64_t>(INT64_MAX) + 1
              ? INT64_MIN
              : -static_cast<int64_t>(U);
    return true;
  }
  if (U > static_cast<uint64_t>(INT64_MAX))
    return false;
  Out = static_cast<int64_t>(U);
  return true;
}

BigInt BigInt::fromString(const std::string &S) {
  assert(!S.empty() && "empty numeral");
  size_t I = 0;
  bool Neg = false;
  if (S[0] == '-') {
    Neg = true;
    I = 1;
  }
  assert(I < S.size() && "sign without digits");
  BigInt R;
  BigInt Ten(10);
  for (; I < S.size(); ++I) {
    assert(S[I] >= '0' && S[I] <= '9' && "non-digit in numeral");
    R = R * Ten + BigInt(S[I] - '0');
  }
  if (Neg)
    R = -R;
  return R;
}

std::string BigInt::toString() const {
  if (isZero())
    return "0";
  BigInt N = abs();
  std::string Digits;
  BigInt Ten(10);
  while (!N.isZero()) {
    BigInt Q, R;
    divMod(N, Ten, Q, R);
    int64_t D = 0;
    R.toInt64(D);
    Digits.push_back(static_cast<char>('0' + D));
    N = std::move(Q);
  }
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  size_t H = Negative ? 0x9e3779b97f4a7c15ull : 0x517cc1b727220a95ull;
  for (uint32_t Limb : Mag)
    H = (H ^ Limb) * 0x100000001b3ull;
  return H;
}
