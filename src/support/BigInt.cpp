//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/Error.h"

#include <algorithm>

using namespace mucyc;

//===----------------------------------------------------------------------===//
// Force-heap knob
//===----------------------------------------------------------------------===//

namespace {

bool initForceHeap() {
#ifdef MUCYC_FORCE_HEAP
  return true;
#else
  const char *E = std::getenv("MUCYC_FORCE_HEAP");
  return E && *E && !(E[0] == '0' && E[1] == '\0');
#endif
}

bool ForceHeapFlag = initForceHeap();

/// Magnitude of a small-domain int64 (which is never INT64_MIN, so the
/// negation cannot overflow).
uint64_t smallMagOf(int64_t V) {
  return V < 0 ? static_cast<uint64_t>(-V) : static_cast<uint64_t>(V);
}

/// Magnitude comparison of canonical limbs against a uint64: -1, 0, or 1.
int compareMagU64(const std::vector<uint32_t> &A, uint64_t U) {
  uint32_t B[2] = {static_cast<uint32_t>(U & 0xffffffffu),
                   static_cast<uint32_t>(U >> 32)};
  size_t BN = B[1] ? 2 : (B[0] ? 1 : 0);
  if (A.size() != BN)
    return A.size() < BN ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

} // namespace

void BigInt::setForceHeap(bool On) { ForceHeapFlag = On; }
bool BigInt::forceHeapEnabled() { return ForceHeapFlag; }

//===----------------------------------------------------------------------===//
// Construction and representation management
//===----------------------------------------------------------------------===//

BigInt::BigInt(int64_t V) {
  if (V != INT64_MIN && !ForceHeapFlag) {
    Small = V;
    return;
  }
  IsSmall = false;
  Negative = V < 0;
  // Avoid UB on INT64_MIN by widening through unsigned arithmetic.
  uint64_t U =
      Negative ? ~static_cast<uint64_t>(V) + 1 : static_cast<uint64_t>(V);
  while (U != 0) {
    Mag.push_back(static_cast<uint32_t>(U & 0xffffffffu));
    U >>= 32;
  }
}

void BigInt::spillToHeap() {
  if (!IsSmall)
    return;
  int64_t V = Small;
  IsSmall = false;
  Small = 0;
  Negative = V < 0;
  uint64_t U = smallMagOf(V);
  Mag.clear();
  while (U != 0) {
    Mag.push_back(static_cast<uint32_t>(U & 0xffffffffu));
    U >>= 32;
  }
}

BigInt BigInt::heapCopy() const {
  BigInt R = *this;
  R.spillToHeap();
  return R;
}

void BigInt::normalizeRep() {
  if (IsSmall)
    return;
  while (!Mag.empty() && Mag.back() == 0)
    Mag.pop_back();
  if (Mag.empty())
    Negative = false;
  if (ForceHeapFlag)
    return;
  // Collapse back into the small domain when the value fits (INT64_MIN is
  // excluded so negation/abs stay overflow-free on small values).
  if (Mag.size() > 2)
    return;
  uint64_t U = Mag.empty() ? 0 : Mag[0];
  if (Mag.size() == 2)
    U |= static_cast<uint64_t>(Mag[1]) << 32;
  if (U > static_cast<uint64_t>(INT64_MAX))
    return;
  int64_t V = Negative ? -static_cast<int64_t>(U) : static_cast<int64_t>(U);
  IsSmall = true;
  Small = V;
  Negative = false;
  Mag.clear();
}

//===----------------------------------------------------------------------===//
// Magnitude helpers (heap slow path)
//===----------------------------------------------------------------------===//

int BigInt::compareMag(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> BigInt::addMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Big = A.size() >= B.size() ? A : B;
  const std::vector<uint32_t> &Small = A.size() >= B.size() ? B : A;
  std::vector<uint32_t> R;
  R.reserve(Big.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Big.size(); ++I) {
    uint64_t Sum = Carry + Big[I] + (I < Small.size() ? Small[I] : 0);
    R.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
    Carry = Sum >> 32;
  }
  if (Carry)
    R.push_back(static_cast<uint32_t>(Carry));
  return R;
}

std::vector<uint32_t> BigInt::subMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  assert(compareMag(A, B) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> R;
  R.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    Borrow = 0;
    if (Diff < 0) {
      Diff += int64_t(1) << 32;
      Borrow = 1;
    }
    R.push_back(static_cast<uint32_t>(Diff));
  }
  assert(Borrow == 0 && "underflow in subMag");
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

//===----------------------------------------------------------------------===//
// Comparison
//===----------------------------------------------------------------------===//

int BigInt::compare(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall)
    return Small == RHS.Small ? 0 : (Small < RHS.Small ? -1 : 1);
  int SL = sgn(), SR = RHS.sgn();
  if (SL != SR)
    return SL < SR ? -1 : 1;
  if (SL == 0)
    return 0;
  // Same nonzero sign: compare magnitudes across representations.
  int C;
  if (!IsSmall && !RHS.IsSmall)
    C = compareMag(Mag, RHS.Mag);
  else if (IsSmall)
    C = -compareMagU64(RHS.Mag, smallMagOf(Small));
  else
    C = compareMagU64(Mag, smallMagOf(RHS.Small));
  return SL < 0 ? -C : C;
}

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

BigInt BigInt::operator-() const {
  if (IsSmall)
    return BigInt(-Small); // Small excludes INT64_MIN: cannot overflow.
  BigInt R = *this;
  if (!R.Mag.empty())
    R.Negative = !R.Negative;
  return R;
}

BigInt BigInt::heapAdd(const BigInt &L, const BigInt &R) {
  BigInt Out;
  Out.IsSmall = false;
  if (L.Negative == R.Negative) {
    Out.Negative = L.Negative;
    Out.Mag = addMag(L.Mag, R.Mag);
  } else {
    int C = compareMag(L.Mag, R.Mag);
    if (C == 0)
      return BigInt();
    if (C > 0) {
      Out.Negative = L.Negative;
      Out.Mag = subMag(L.Mag, R.Mag);
    } else {
      Out.Negative = R.Negative;
      Out.Mag = subMag(R.Mag, L.Mag);
    }
  }
  Out.normalizeRep();
  return Out;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_add_overflow(Small, RHS.Small, &R))
      return BigInt(R); // Ctor re-spills R == INT64_MIN.
  }
  return heapAdd(heapCopy(), RHS.heapCopy());
}

BigInt BigInt::operator-(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_sub_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return *this + (-RHS);
}

BigInt BigInt::heapMul(const BigInt &L, const BigInt &R) {
  if (L.Mag.empty() || R.Mag.empty())
    return BigInt();
  BigInt Out;
  Out.IsSmall = false;
  Out.Negative = L.Negative != R.Negative;
  Out.Mag.assign(L.Mag.size() + R.Mag.size(), 0);
  for (size_t I = 0; I < L.Mag.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < R.Mag.size(); ++J) {
      uint64_t Cur =
          Out.Mag[I + J] + static_cast<uint64_t>(L.Mag[I]) * R.Mag[J] + Carry;
      Out.Mag[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
    }
    size_t K = I + R.Mag.size();
    while (Carry) {
      uint64_t Cur = Out.Mag[K] + Carry;
      Out.Mag[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
      ++K;
    }
  }
  Out.normalizeRep();
  return Out;
}

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_mul_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return heapMul(heapCopy(), RHS.heapCopy());
}

void BigInt::heapDivMod(const BigInt &LHS, const BigInt &RHS, BigInt &Quot,
                        BigInt &Rem) {
  assert(!RHS.Mag.empty() && "division by zero");
  // Magnitude long division in base 2 over base-2^32 limbs. Simple and
  // correct; multi-limb values are rare enough in mucyc that the
  // O(bits * limbs) cost is irrelevant next to SMT search.
  int C = compareMag(LHS.Mag, RHS.Mag);
  if (C < 0) {
    Quot = BigInt();
    Rem = LHS;
    Rem.normalizeRep();
    return;
  }
  std::vector<uint32_t> Q(LHS.Mag.size(), 0);
  std::vector<uint32_t> R; // Current remainder magnitude.
  size_t Bits = LHS.Mag.size() * 32;
  bool QuotNeg = LHS.Negative != RHS.Negative;
  bool RemNeg = LHS.Negative; // Truncated division: remainder follows LHS.
  for (size_t BitIdx = Bits; BitIdx-- > 0;) {
    // R = R*2 + bit.
    uint32_t CarryBit = (LHS.Mag[BitIdx / 32] >> (BitIdx % 32)) & 1;
    uint32_t Carry = CarryBit;
    for (size_t I = 0; I < R.size(); ++I) {
      uint32_t Hi = R[I] >> 31;
      R[I] = (R[I] << 1) | Carry;
      Carry = Hi;
    }
    if (Carry)
      R.push_back(Carry);
    if (compareMag(R, RHS.Mag) >= 0) {
      R = subMag(R, RHS.Mag);
      Q[BitIdx / 32] |= (uint32_t(1) << (BitIdx % 32));
    }
  }
  Quot.IsSmall = false;
  Quot.Small = 0;
  Quot.Mag = std::move(Q);
  Quot.Negative = QuotNeg;
  Quot.normalizeRep();
  Rem.IsSmall = false;
  Rem.Small = 0;
  Rem.Mag = std::move(R);
  Rem.Negative = RemNeg;
  Rem.normalizeRep();
}

void BigInt::divMod(const BigInt &LHS, const BigInt &RHS, BigInt &Quot,
                    BigInt &Rem) {
  if (LHS.IsSmall && RHS.IsSmall) {
    assert(RHS.Small != 0 && "division by zero");
    // Small excludes INT64_MIN, so INT64_MIN / -1 cannot arise here.
    int64_t Q = LHS.Small / RHS.Small;
    int64_t R = LHS.Small % RHS.Small;
    Quot = BigInt(Q);
    Rem = BigInt(R);
    return;
  }
  heapDivMod(LHS.heapCopy(), RHS.heapCopy(), Quot, Rem);
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return Q;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return R;
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  // Truncation equals floor unless signs differ and division was inexact.
  if (!R.isZero() && (isNeg() != RHS.isNeg()))
    Q -= BigInt(1);
  return Q;
}

BigInt BigInt::euclidMod(const BigInt &RHS) const {
  BigInt R = *this % RHS;
  if (R.isNeg())
    R += RHS.abs();
  return R;
}

BigInt BigInt::abs() const {
  if (IsSmall)
    return Small < 0 ? BigInt(-Small) : *this;
  BigInt R = *this;
  R.Negative = false;
  return R;
}

BigInt BigInt::gcd(BigInt A, BigInt B) {
  if (A.IsSmall && B.IsSmall) {
    // Euclid over unsigned magnitudes; both inputs exclude INT64_MIN, so
    // the result fits int64_t.
    uint64_t X = smallMagOf(A.Small), Y = smallMagOf(B.Small);
    while (Y != 0) {
      uint64_t T = X % Y;
      X = Y;
      Y = T;
    }
    return BigInt(static_cast<int64_t>(X));
  }
  A = A.abs();
  B = B.abs();
  A.spillToHeap();
  B.spillToHeap();
  while (!B.Mag.empty()) {
    BigInt Q, T;
    heapDivMod(A, B, Q, T);
    T.spillToHeap();
    A = std::move(B);
    B = std::move(T);
  }
  A.normalizeRep();
  return A;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A * B).abs() / gcd(A, B);
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

bool BigInt::toInt64(int64_t &Out) const {
  if (IsSmall) {
    Out = Small;
    return true;
  }
  if (Mag.size() > 2)
    return false;
  uint64_t U = 0;
  if (Mag.size() >= 1)
    U = Mag[0];
  if (Mag.size() == 2)
    U |= static_cast<uint64_t>(Mag[1]) << 32;
  if (Negative) {
    if (U > static_cast<uint64_t>(INT64_MAX) + 1)
      return false;
    Out = U == static_cast<uint64_t>(INT64_MAX) + 1
              ? INT64_MIN
              : -static_cast<int64_t>(U);
    return true;
  }
  if (U > static_cast<uint64_t>(INT64_MAX))
    return false;
  Out = static_cast<int64_t>(U);
  return true;
}

BigInt BigInt::fromString(const std::string &S) {
  if (S.empty())
    raiseError(ErrorCode::InputError, "empty numeral");
  size_t I = 0;
  bool Neg = false;
  if (S[0] == '-') {
    Neg = true;
    I = 1;
  }
  if (I >= S.size())
    raiseError(ErrorCode::InputError, "numeral has sign but no digits");
  for (size_t J = I; J < S.size(); ++J)
    if (S[J] < '0' || S[J] > '9')
      raiseError(ErrorCode::InputError,
                 "non-digit character in numeral '" + S + "'");
  // Up to 18 digits always fits int64_t; accumulate inline and let the
  // BigInt ctor apply the force-heap knob. Longer numerals go through the
  // generic multiply-add loop.
  if (S.size() - I <= 18) {
    int64_t V = 0;
    for (; I < S.size(); ++I)
      V = V * 10 + (S[I] - '0');
    return BigInt(Neg ? -V : V);
  }
  BigInt R;
  BigInt Ten(10);
  for (; I < S.size(); ++I)
    R = R * Ten + BigInt(static_cast<int64_t>(S[I] - '0'));
  if (Neg)
    R = -R;
  return R;
}

std::string BigInt::toString() const {
  if (IsSmall)
    return std::to_string(Small);
  if (Mag.empty())
    return "0";
  std::string Digits;
  BigInt N = abs();
  N.spillToHeap();
  BigInt Ten(10);
  Ten.spillToHeap();
  while (!N.isZero()) {
    BigInt Q, R;
    heapDivMod(N, Ten, Q, R);
    int64_t D = 0;
    R.toInt64(D);
    Digits.push_back(static_cast<char>('0' + D));
    N = std::move(Q);
    N.spillToHeap();
  }
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  // Value-based: fold the canonical little-endian limb decomposition with a
  // sign-dependent seed, identically for both representations, so equal
  // values hash equal even when fast and forced-heap values mix.
  if (IsSmall) {
    size_t H = Small < 0 ? 0x9e3779b97f4a7c15ull : 0x517cc1b727220a95ull;
    uint64_t U = smallMagOf(Small);
    while (U != 0) {
      H = (H ^ static_cast<uint32_t>(U & 0xffffffffu)) * 0x100000001b3ull;
      U >>= 32;
    }
    return H;
  }
  size_t H = Negative ? 0x9e3779b97f4a7c15ull : 0x517cc1b727220a95ull;
  for (uint32_t Limb : Mag)
    H = (H ^ Limb) * 0x100000001b3ull;
  return H;
}
