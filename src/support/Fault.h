//===- support/Fault.h - Resource gauge & deterministic faults --*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two cooperating governance devices, both fully deterministic:
///
/// ResourceGauge meters cumulative allocation on a solving run —
/// TermContext node interning, CDCL clause growth, simplex tableau rows —
/// and trips a ResourceExhaustedMemory once the SolverOptions::MemLimitMb
/// budget is exceeded. Cumulative (never released) by design: unlike RSS it
/// is a pure function of the solving trace, so a trip happens at the same
/// allocation on every run, every machine, every sanitizer — the property
/// the byte-identical chaos reports rely on. It over-approximates live
/// memory, which is the safe direction for a governor.
///
/// FaultInjector fires seed-derived faults at exact event counts:
/// fail-at-Nth allocation (as ResourceExhaustedMemory), throw-at-Nth SMT
/// check (as InvariantViolation), and a spurious cancel at the Nth
/// cancellation poll. Counters are monotone across retries when the same
/// injector instance is reused, so a fault that fired in attempt 1 does not
/// re-fire in attempt 2 — exactly the transient-fault shape the retry
/// ladder exists for. Instances are not thread-safe: one injector per job.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_FAULT_H
#define MUCYC_SUPPORT_FAULT_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace mucyc {

/// SplitMix64 step: deterministic seed mixing without pulling in the
/// testgen RNG (support must stay dependency-free).
inline uint64_t mixSeed(uint64_t Seed, uint64_t Salt) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (Salt + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Cooperative cumulative-allocation meter (see file comment for why it
/// never releases). Installed per solving attempt; 0 limit = observe only.
class ResourceGauge {
public:
  explicit ResourceGauge(uint64_t LimitBytes = 0) : Limit(LimitBytes) {}

  /// Account \p Bytes of growth; throws ResourceExhaustedMemory past the
  /// limit. Charged *before* the allocation mutates any structure, so a
  /// trip leaves the owner consistent.
  void charge(uint64_t Bytes) {
    Used += Bytes;
    if (Limit && Used > Limit)
      raiseError(ErrorCode::ResourceExhaustedMemory,
                 "memory budget exhausted (" + std::to_string(Used >> 10) +
                     " KiB metered, limit " + std::to_string(Limit >> 10) +
                     " KiB)");
  }

  uint64_t used() const { return Used; }
  uint64_t limit() const { return Limit; }

private:
  uint64_t Used = 0;
  uint64_t Limit;
};

/// Deterministic fault injector; see file comment. All trip points are
/// 1-based event ordinals; 0 disarms that fault.
class FaultInjector {
public:
  uint64_t AllocTrip = 0;  ///< Fail the Nth node allocation.
  uint64_t CheckTrip = 0;  ///< Throw at the Nth issued SMT check.
  uint64_t CancelTrip = 0; ///< Report cancelled at the Nth expiry poll.

  /// Derives a fault plan from a chaos seed: which fault classes are armed
  /// and their trip ordinals are a pure function of \p Seed.
  static FaultInjector fromSeed(uint64_t Seed) {
    FaultInjector FI;
    // Arm one or two of the three classes so most runs see exactly one
    // fault shape (easier to attribute) but combinations are covered too.
    uint64_t Pick = mixSeed(Seed, 0) % 6;
    if (Pick == 0 || Pick == 3 || Pick == 5)
      FI.AllocTrip = 200 + mixSeed(Seed, 1) % 20000;
    if (Pick == 1 || Pick == 3 || Pick == 4)
      FI.CheckTrip = 1 + mixSeed(Seed, 2) % 40;
    if (Pick == 2 || Pick == 4 || Pick == 5)
      FI.CancelTrip = 1 + mixSeed(Seed, 3) % 60;
    return FI;
  }

  /// Call on every metered allocation (TermContext::intern).
  void onAlloc() {
    if (AllocTrip && ++Allocs == AllocTrip)
      raiseError(ErrorCode::ResourceExhaustedMemory,
                 "injected allocation failure at node #" +
                     std::to_string(Allocs));
  }

  /// Call when an SMT check is actually issued to a solver.
  void onSmtCheck() {
    if (CheckTrip && ++Checks == CheckTrip)
      raiseError(ErrorCode::InvariantViolation,
                 "injected fault at SMT check #" + std::to_string(Checks));
  }

  /// Call from the engine's expiry poll; true = behave as if cancelled.
  bool spuriousCancel() {
    return CancelTrip && ++CancelPolls == CancelTrip;
  }

private:
  uint64_t Allocs = 0, Checks = 0, CancelPolls = 0;
};

/// Deterministic service-boundary fault plan. Where FaultInjector is
/// one-shot and per-job (faults *inside* a solving attempt), this plan is
/// process-global and periodic: "SIGKILL every Nth spawned worker", "tear
/// every Nth store write at byte K", "short-cut every Nth socket write".
/// Counters are atomic so concurrent connection threads observe a single
/// global event order; determinism therefore requires the driver to
/// serialize requests (the ci.sh crash leg replays sequentially). All
/// periods are "every Nth event", 1-based; 0 disarms that class.
class ServiceFaultPlan {
public:
  uint64_t KillWorkerEvery = 0; ///< SIGKILL every Nth spawned worker.
  uint64_t TearStoreEvery = 0;  ///< Tear every Nth disk-store write...
  uint64_t TearStoreByte = 64;  ///< ...truncated at this byte offset.
  uint64_t ShortWriteEvery = 0; ///< Abort every Nth socket frame write.

  bool armed() const {
    return KillWorkerEvery || TearStoreEvery || ShortWriteEvery;
  }

  /// True when this spawned worker should be SIGKILLed by the chaos plan.
  bool killThisWorker() {
    return KillWorkerEvery &&
           (Workers.fetch_add(1, std::memory_order_relaxed) + 1) %
                   KillWorkerEvery ==
               0;
  }

  /// True when this disk-store write should be torn; \p ByteOut receives the
  /// truncation offset.
  bool tearThisStoreWrite(uint64_t &ByteOut) {
    if (!TearStoreEvery)
      return false;
    ByteOut = TearStoreByte;
    return (StoreWrites.fetch_add(1, std::memory_order_relaxed) + 1) %
               TearStoreEvery ==
           0;
  }

  /// True when this socket frame write should be cut short mid-frame.
  bool shortThisWrite() {
    return ShortWriteEvery &&
           (FrameWrites.fetch_add(1, std::memory_order_relaxed) + 1) %
                   ShortWriteEvery ==
               0;
  }

  /// Parses a chaos-plan spec like "kill-worker=7,tear-store=5@64,
  /// short-write=9". Returns false (with \p Err set) on a malformed spec.
  bool parse(const std::string &Spec, std::string &Err);

  /// The process-wide plan consulted by worker spawn, ResultStore::storeFile
  /// and writeFrame. Defaults to everything-disarmed.
  static ServiceFaultPlan &global();

private:
  std::atomic<uint64_t> Workers{0};
  std::atomic<uint64_t> StoreWrites{0};
  std::atomic<uint64_t> FrameWrites{0};
};

} // namespace mucyc

#endif // MUCYC_SUPPORT_FAULT_H
