//===- support/Arena.h - Chunked bump allocator -----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for trivially-destructible pod arrays with a
/// lifetime tied to their owner (term kid lists in TermContext). Allocation
/// is a pointer bump; nothing is ever freed individually — the arena releases
/// all chunks at once on destruction. bytesAllocated() reports the payload
/// bytes handed out (not chunk slack), so callers metering memory through a
/// ResourceGauge see a value that is a pure function of the allocation
/// trace, independent of chunk sizing.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_ARENA_H
#define MUCYC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mucyc {

/// Bump allocator over malloc'd chunks. Not thread-safe.
class BumpArena {
public:
  /// Default chunk payload size; allocations larger than this get a
  /// dedicated chunk.
  static constexpr size_t ChunkBytes = 64 * 1024;

  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;
  BumpArena(BumpArena &&) = default;
  BumpArena &operator=(BumpArena &&) = default;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two no
  /// larger than alignof(std::max_align_t)). Zero-byte requests return a
  /// non-null, unspecified pointer.
  void *allocate(size_t Bytes, size_t Align) {
    size_t Off = (Used + Align - 1) & ~(Align - 1);
    if (Off + Bytes > Cap) {
      newChunk(Bytes < ChunkBytes ? ChunkBytes : Bytes);
      Off = 0; // Fresh chunks are max-aligned.
    }
    Used = Off + Bytes;
    Total += Bytes;
    return Chunks.back().get() + Off;
  }

  /// Allocates and copies an array of trivially-copyable T.
  template <typename T> T *copyArray(const T *Src, size_t N) {
    T *Dst = static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
    for (size_t I = 0; I < N; ++I)
      Dst[I] = Src[I];
    return Dst;
  }

  /// Payload bytes handed out so far (excludes chunk slack and padding).
  size_t bytesAllocated() const { return Total; }
  /// Number of chunks backing the arena.
  size_t numChunks() const { return Chunks.size(); }

private:
  void newChunk(size_t Bytes) {
    Chunks.push_back(std::unique_ptr<char[]>(new char[Bytes]));
    Cap = Bytes;
    Used = 0;
  }

  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t Used = 0;  ///< Bytes consumed in the current chunk.
  size_t Cap = 0;   ///< Capacity of the current chunk.
  size_t Total = 0; ///< Cumulative payload bytes.
};

} // namespace mucyc

#endif // MUCYC_SUPPORT_ARENA_H
