//===- support/Error.cpp - Structured solver error taxonomy ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace mucyc;

const char *mucyc::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::None:
    return "none";
  case ErrorCode::ResourceExhaustedMemory:
    return "resource-exhausted-memory";
  case ErrorCode::ResourceExhaustedSteps:
    return "resource-exhausted-steps";
  case ErrorCode::ResourceExhaustedDepth:
    return "resource-exhausted-depth";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::InvariantViolation:
    return "invariant-violation";
  case ErrorCode::InputError:
    return "input-error";
  case ErrorCode::WorkerCrashedSignal:
    return "worker-crashed-signal";
  case ErrorCode::WorkerCrashedRlimit:
    return "worker-crashed-rlimit";
  case ErrorCode::WorkerCrashedWedged:
    return "worker-crashed-wedged";
  }
  return "?";
}

bool mucyc::errorRecoverable(ErrorCode C) {
  switch (C) {
  case ErrorCode::ResourceExhaustedMemory:
  case ErrorCode::ResourceExhaustedSteps:
  case ErrorCode::ResourceExhaustedDepth:
  case ErrorCode::InvariantViolation:
    return true;
  // A crashed worker took no budget the parent can see; a degraded retry in
  // a fresh process is exactly the recovery the isolation tier exists for.
  case ErrorCode::WorkerCrashedSignal:
  case ErrorCode::WorkerCrashedRlimit:
  case ErrorCode::WorkerCrashedWedged:
    return true;
  case ErrorCode::None:
  case ErrorCode::Cancelled:
  case ErrorCode::Timeout:
  case ErrorCode::InputError:
    return false;
  }
  return false;
}

std::string ErrorInfo::describe() const {
  if (Code == ErrorCode::None)
    return "";
  std::string S = errorCodeName(Code);
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  return S;
}

void mucyc::raiseError(ErrorCode C, std::string Detail) {
  throw MucycError(C, std::move(Detail));
}
