//===- support/BigInt.h - Arbitrary-precision integers ----------*- C++ -*-===//
//
// Part of the mucyc project, a C++ reproduction of "Inductive Approach to
// Spacer" (Tsukada & Unno, PLDI 2024). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-and-magnitude arbitrary-precision integers. Coefficients produced by
/// simplex pivoting, Cooper-style projection and branch-and-bound can exceed
/// 64 bits, so every ground arithmetic value in mucyc is a BigInt (or a
/// Rational built from two of them).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_BIGINT_H
#define MUCYC_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace mucyc {

/// Arbitrary-precision signed integer.
///
/// Representation: little-endian base-2^32 magnitude with a sign flag.
/// Zero is canonical (empty magnitude, non-negative sign). All operations
/// keep the value normalized, so equality is structural.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t V);

  /// Parses a decimal string with optional leading '-'. Asserts on malformed
  /// input; use this only on trusted or pre-validated text.
  static BigInt fromString(const std::string &S);

  bool isZero() const { return Mag.empty(); }
  bool isNeg() const { return Negative; }
  bool isOne() const { return !Negative && Mag.size() == 1 && Mag[0] == 1; }

  /// Returns -1, 0, or 1.
  int sgn() const { return isZero() ? 0 : (Negative ? -1 : 1); }

  /// Three-way comparison: negative, zero, or positive as *this <=> RHS.
  int compare(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const {
    return Negative == RHS.Negative && Mag == RHS.Mag;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  /// Truncated division (C semantics: quotient rounds toward zero).
  /// \p RHS must be nonzero.
  static void divMod(const BigInt &LHS, const BigInt &RHS, BigInt &Quot,
                     BigInt &Rem);

  /// Quotient of truncated division.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder of truncated division (sign follows the dividend).
  BigInt operator%(const BigInt &RHS) const;

  /// Floor division: largest Q with Q*RHS <= *this (for positive RHS).
  BigInt floorDiv(const BigInt &RHS) const;
  /// Euclidean remainder in [0, |RHS|).
  BigInt euclidMod(const BigInt &RHS) const;

  BigInt abs() const;

  /// Greatest common divisor (non-negative; gcd(0,0) = 0).
  static BigInt gcd(BigInt A, BigInt B);
  /// Least common multiple (non-negative).
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Returns true and sets \p Out if the value fits in int64_t.
  bool toInt64(int64_t &Out) const;

  std::string toString() const;

  /// FNV-style hash suitable for unordered containers.
  size_t hash() const;

private:
  /// Drops leading zero limbs and canonicalizes the sign of zero.
  void trim();
  /// Magnitude comparison ignoring sign: -1, 0, or 1.
  static int compareMag(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);

  bool Negative = false;
  std::vector<uint32_t> Mag;
};

} // namespace mucyc

#endif // MUCYC_SUPPORT_BIGINT_H
