//===- support/BigInt.h - Arbitrary-precision integers ----------*- C++ -*-===//
//
// Part of the mucyc project, a C++ reproduction of "Inductive Approach to
// Spacer" (Tsukada & Unno, PLDI 2024). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-and-magnitude arbitrary-precision integers. Coefficients produced by
/// simplex pivoting, Cooper-style projection and branch-and-bound can exceed
/// 64 bits, so every ground arithmetic value in mucyc is a BigInt (or a
/// Rational built from two of them) — but almost all of them fit a machine
/// word, so the representation is two-tier:
///
///  * Small: an inline int64_t, no heap traffic. All arithmetic branches on
///    the small×small case first and stays inline unless a
///    __builtin_*_overflow guard fires. INT64_MIN is excluded from the
///    small domain so negation/abs never overflow.
///  * Heap: little-endian base-2^32 magnitude with a sign flag, reached
///    only on overflow (or when the force-heap knob is on).
///
/// Every operation canonicalizes: a result that fits the small domain is
/// small (unless force-heap), zero is +0, and heap magnitudes carry no
/// leading zero limbs. Comparison, equality and hash() are value-based and
/// agree across representations, so mixed-representation values (possible
/// around a force-heap toggle) behave identically.
///
/// The force-heap knob — the MUCYC_FORCE_HEAP environment variable, the
/// -DMUCYC_FORCE_HEAP build option, or setForceHeap() in-process — routes
/// every newly constructed value onto the heap representation, turning the
/// entire test and fuzz corpus into a differential oracle for the fast
/// path: fast and forced-heap runs must produce byte-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SUPPORT_BIGINT_H
#define MUCYC_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace mucyc {

/// Arbitrary-precision signed integer with an inline small-value fast path.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t V);

  /// Parses a decimal string with optional leading '-'. Raises a typed
  /// InputError (support/Error.h) on malformed input, so it is safe on
  /// untrusted text.
  static BigInt fromString(const std::string &S);

  bool isZero() const { return IsSmall ? Small == 0 : Mag.empty(); }
  bool isNeg() const { return IsSmall ? Small < 0 : Negative; }
  bool isOne() const {
    return IsSmall ? Small == 1
                   : (!Negative && Mag.size() == 1 && Mag[0] == 1);
  }

  /// Returns -1, 0, or 1.
  int sgn() const {
    if (IsSmall)
      return Small == 0 ? 0 : (Small < 0 ? -1 : 1);
    return Mag.empty() ? 0 : (Negative ? -1 : 1);
  }

  /// Three-way comparison: negative, zero, or positive as *this <=> RHS.
  /// Value-based: representations may differ.
  int compare(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const {
    if (IsSmall && RHS.IsSmall)
      return Small == RHS.Small;
    if (IsSmall != RHS.IsSmall)
      return compare(RHS) == 0; // Mixed representations: compare values.
    return Negative == RHS.Negative && Mag == RHS.Mag;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  /// Truncated division (C semantics: quotient rounds toward zero).
  /// \p RHS must be nonzero.
  static void divMod(const BigInt &LHS, const BigInt &RHS, BigInt &Quot,
                     BigInt &Rem);

  /// Quotient of truncated division.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder of truncated division (sign follows the dividend).
  BigInt operator%(const BigInt &RHS) const;

  /// Floor division: largest Q with Q*RHS <= *this (for positive RHS).
  BigInt floorDiv(const BigInt &RHS) const;
  /// Euclidean remainder in [0, |RHS|).
  BigInt euclidMod(const BigInt &RHS) const;

  BigInt abs() const;

  /// Greatest common divisor (non-negative; gcd(0,0) = 0).
  static BigInt gcd(BigInt A, BigInt B);
  /// Least common multiple (non-negative).
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Returns true and sets \p Out if the value fits in int64_t.
  bool toInt64(int64_t &Out) const;

  /// Returns true and sets \p Out iff the *representation* is small. Unlike
  /// toInt64 this is false for a heap value that happens to fit, which is
  /// exactly what the Rational small-gcd lane needs: it must fall back to
  /// the slow path under force-heap so the differential rig exercises it.
  bool smallValue(int64_t &Out) const {
    if (!IsSmall)
      return false;
    Out = Small;
    return true;
  }

  std::string toString() const;

  /// FNV-style hash over the logical limb sequence; identical for equal
  /// values regardless of representation.
  size_t hash() const;

  //===--------------------------------------------------------------------===
  // Force-heap differential knob
  //===--------------------------------------------------------------------===

  /// When on, every subsequently constructed value uses the heap
  /// representation — the reference slow path for differential testing.
  /// Initialized from the MUCYC_FORCE_HEAP environment variable (or the
  /// -DMUCYC_FORCE_HEAP build option); not thread-safe to toggle while
  /// other threads compute.
  static void setForceHeap(bool On);
  static bool forceHeapEnabled();

private:
  /// Drops leading zero limbs, canonicalizes the sign of zero, and
  /// collapses a heap value back into the small domain when it fits (and
  /// force-heap is off).
  void normalizeRep();
  /// Converts the small representation to heap limbs in place.
  void spillToHeap();
  /// A heap-representation copy of this value (identity when already heap).
  BigInt heapCopy() const;

  /// Magnitude comparison ignoring sign: -1, 0, or 1.
  static int compareMag(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);

  static BigInt heapAdd(const BigInt &L, const BigInt &R);
  static BigInt heapMul(const BigInt &L, const BigInt &R);
  static void heapDivMod(const BigInt &L, const BigInt &R, BigInt &Quot,
                         BigInt &Rem);

  // Small representation: IsSmall = true, value in Small (never INT64_MIN),
  // Mag empty. Heap representation: IsSmall = false, sign in Negative,
  // magnitude in Mag (canonical: no leading zeros, zero is non-negative).
  int64_t Small = 0;
  bool IsSmall = true;
  bool Negative = false;
  std::vector<uint32_t> Mag;
};

/// RAII toggle of the force-heap knob, for differential tests and the
/// micro_arith fast-vs-slow comparison.
struct ScopedForceHeap {
  explicit ScopedForceHeap(bool On) : Old(BigInt::forceHeapEnabled()) {
    BigInt::setForceHeap(On);
  }
  ~ScopedForceHeap() { BigInt::setForceHeap(Old); }
  ScopedForceHeap(const ScopedForceHeap &) = delete;
  ScopedForceHeap &operator=(const ScopedForceHeap &) = delete;

private:
  bool Old;
};

} // namespace mucyc

#endif // MUCYC_SUPPORT_BIGINT_H
