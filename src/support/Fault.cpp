//===- support/Fault.cpp - Service-boundary fault plan --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

using namespace mucyc;

ServiceFaultPlan &ServiceFaultPlan::global() {
  static ServiceFaultPlan Plan;
  return Plan;
}

bool ServiceFaultPlan::parse(const std::string &Spec, std::string &Err) {
  // Grammar: clause ("," clause)*; clause = key "=" N | "tear-store" "=" N
  // "@" K. Whitespace is not tolerated: the spec rides in CLI flags and
  // wire headers and must round-trip byte-identically.
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Eq = Clause.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Clause.size()) {
      Err = "bad chaos-plan clause '" + Clause + "' (want key=N)";
      return false;
    }
    std::string Key = Clause.substr(0, Eq);
    std::string Val = Clause.substr(Eq + 1);
    uint64_t At = TearStoreByte;
    if (Key == "tear-store") {
      size_t AtPos = Val.find('@');
      if (AtPos != std::string::npos) {
        std::string AtStr = Val.substr(AtPos + 1);
        Val = Val.substr(0, AtPos);
        if (AtStr.empty() ||
            AtStr.find_first_not_of("0123456789") != std::string::npos) {
          Err = "bad tear-store byte offset '" + AtStr + "'";
          return false;
        }
        At = std::stoull(AtStr);
      }
    }
    if (Val.empty() || Val.find_first_not_of("0123456789") != std::string::npos) {
      Err = "bad chaos-plan period '" + Val + "' in clause '" + Clause + "'";
      return false;
    }
    uint64_t N = std::stoull(Val);
    if (Key == "kill-worker") {
      KillWorkerEvery = N;
    } else if (Key == "tear-store") {
      TearStoreEvery = N;
      TearStoreByte = At;
    } else if (Key == "short-write") {
      ShortWriteEvery = N;
    } else {
      Err = "unknown chaos-plan key '" + Key + "'";
      return false;
    }
  }
  return true;
}
