//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Error.h"

using namespace mucyc;

Rational::Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  // Small-gcd fast lane: when both components are inline machine words the
  // whole normalization runs on int64/uint64 with no BigInt temporaries.
  // smallValue() is representation-based, so force-heap values skip this
  // lane and exercise the slow path below.
  int64_t NS, DS;
  if (Num.smallValue(NS) && Den.smallValue(DS)) {
    if (DS < 0) { // Small excludes INT64_MIN: negation cannot overflow.
      NS = -NS;
      DS = -DS;
    }
    if (NS == 0) {
      Num = BigInt(0);
      Den = BigInt(1);
      return;
    }
    uint64_t X = NS < 0 ? static_cast<uint64_t>(-NS) : static_cast<uint64_t>(NS);
    uint64_t Y = static_cast<uint64_t>(DS);
    while (Y != 0) {
      uint64_t T = X % Y;
      X = Y;
      Y = T;
    }
    if (X > 1) {
      NS /= static_cast<int64_t>(X);
      DS /= static_cast<int64_t>(X);
    }
    Num = BigInt(NS);
    Den = BigInt(DS);
    return;
  }
  if (Den.isNeg()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

int Rational::compare(const Rational &RHS) const {
  // num1/den1 <=> num2/den2  iff  num1*den2 <=> num2*den1 (dens positive).
  // Fast lane: all four components small means both cross products fit
  // __int128 (|operands| < 2^63, so |product| < 2^126).
  int64_t N1, D1, N2, D2;
  if (Num.smallValue(N1) && Den.smallValue(D1) && RHS.Num.smallValue(N2) &&
      RHS.Den.smallValue(D2)) {
    __int128 L = static_cast<__int128>(N1) * D2;
    __int128 R = static_cast<__int128>(N2) * D1;
    return L == R ? 0 : (L < R ? -1 : 1);
  }
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

Rational Rational::operator-() const {
  Rational R = *this;
  R.Num = -R.Num;
  return R;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

Rational Rational::fromString(const std::string &S) {
  size_t Slash = S.find('/');
  if (Slash != std::string::npos) {
    BigInt N = BigInt::fromString(S.substr(0, Slash));
    BigInt D = BigInt::fromString(S.substr(Slash + 1));
    if (D.isZero())
      raiseError(ErrorCode::InputError,
                 "zero denominator in rational '" + S + "'");
    return Rational(std::move(N), std::move(D));
  }
  size_t Dot = S.find('.');
  if (Dot == std::string::npos)
    return Rational(BigInt::fromString(S));
  std::string Digits = S.substr(0, Dot) + S.substr(Dot + 1);
  BigInt Den(1);
  BigInt Ten(10);
  for (size_t I = Dot + 1; I < S.size(); ++I)
    Den *= Ten;
  return Rational(BigInt::fromString(Digits), Den);
}

std::string Rational::toString() const {
  if (isInt())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

size_t Rational::hash() const {
  return Num.hash() * 31 + Den.hash();
}

std::string DeltaRational::toString() const {
  if (Delta.isZero())
    return Real.toString();
  return Real.toString() + " + " + Delta.toString() + "*eps";
}
