//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

using namespace mucyc;

Rational::Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNeg()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

int Rational::compare(const Rational &RHS) const {
  // num1/den1 <=> num2/den2  iff  num1*den2 <=> num2*den1 (dens positive).
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

Rational Rational::operator-() const {
  Rational R = *this;
  R.Num = -R.Num;
  return R;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

Rational Rational::fromString(const std::string &S) {
  size_t Slash = S.find('/');
  if (Slash != std::string::npos)
    return Rational(BigInt::fromString(S.substr(0, Slash)),
                    BigInt::fromString(S.substr(Slash + 1)));
  size_t Dot = S.find('.');
  if (Dot == std::string::npos)
    return Rational(BigInt::fromString(S));
  std::string Digits = S.substr(0, Dot) + S.substr(Dot + 1);
  BigInt Den(1);
  BigInt Ten(10);
  for (size_t I = Dot + 1; I < S.size(); ++I)
    Den *= Ten;
  return Rational(BigInt::fromString(Digits), Den);
}

std::string Rational::toString() const {
  if (isInt())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

size_t Rational::hash() const {
  return Num.hash() * 31 + Den.hash();
}

std::string DeltaRational::toString() const {
  if (Delta.isZero())
    return Real.toString();
  return Real.toString() + " + " + Delta.toString() + "*eps";
}
