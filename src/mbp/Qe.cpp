//===- mbp/Qe.cpp - Quantifier elimination via MBP ------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mbp/Qe.h"

#include "mbp/Mbp.h"
#include "smt/SmtSolver.h"
#include "support/Error.h"

using namespace mucyc;

TermRef mucyc::qeExists(TermContext &Ctx, const std::vector<VarId> &Elim,
                        TermRef Phi) {
  if (Elim.empty())
    return Phi;
  // Algorithm 1. Incremental: phi /\ not(psi) is maintained by asserting the
  // negation of each new disjunct.
  SmtSolver Solver(Ctx);
  Solver.assertFormula(Phi);
  std::vector<TermRef> Disjuncts;
  while (true) {
    SmtStatus St = Solver.check();
    if (St == SmtStatus::Unknown)
      raiseError(ErrorCode::ResourceExhaustedSteps,
                 "lemma budget exhausted during quantifier elimination");
    if (St == SmtStatus::Unsat)
      break;
    TermRef Theta =
        mbp(Ctx, MbpStrategy::LazyProject, Elim, Phi, Solver.model());
    Disjuncts.push_back(Theta);
    Solver.assertFormula(Ctx.mkNot(Theta));
  }
  return Ctx.mkOr(std::move(Disjuncts));
}

TermRef mucyc::qeForall(TermContext &Ctx, const std::vector<VarId> &Elim,
                        TermRef Phi) {
  return Ctx.mkNot(qeExists(Ctx, Elim, Ctx.mkNot(Phi)));
}
