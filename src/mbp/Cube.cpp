//===- mbp/Cube.cpp - Implicant cube extraction ---------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cube of a model: fixing the truth value of every atom of phi to its
/// value under M yields a conjunction that (a) contains M and (b) entails
/// phi, because any model agreeing with M on all atoms evaluates phi
/// identically. Negative arithmetic literals are strengthened into positive
/// atoms chosen by the model so projection never deals with negation.
///
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"

#include "support/Error.h"
#include "term/Linear.h"

using namespace mucyc;

std::vector<TermRef> mucyc::implicantCube(TermContext &Ctx, TermRef Phi,
                                          const Model &M) {
  MUCYC_INVARIANT(M.holds(Ctx, Phi), "implicant cube requires M |= Phi");
  std::vector<TermRef> Cube;
  for (TermRef Atom : Ctx.collectAtoms(Phi)) {
    bool Truth = M.holds(Ctx, Atom);
    const TermNode &N = Ctx.node(Atom);
    if (Truth) {
      Cube.push_back(Atom);
      continue;
    }
    switch (N.K) {
    case Kind::Var:
      Cube.push_back(Ctx.mkNot(Atom));
      break;
    case Kind::Le:
      // not (L <= K) canonicalizes to K < L; still a positive atom.
      Cube.push_back(Ctx.mkNot(Atom));
      break;
    case Kind::Lt:
      Cube.push_back(Ctx.mkNot(Atom));
      break;
    case Kind::EqA: {
      // Model split: strengthen (L != K) to the side M chose.
      Rational L = M.eval(Ctx, N.Kids[0]).R;
      Rational K = M.eval(Ctx, N.Kids[1]).R;
      assert(L != K);
      Cube.push_back(L < K ? Ctx.mkLt(N.Kids[0], N.Kids[1])
                           : Ctx.mkLt(N.Kids[1], N.Kids[0]));
      break;
    }
    case Kind::Divides: {
      // Model split: not (d | t) with M(t) mod d = r0 != 0 is strengthened
      // to (d | t - r0).
      assert(N.Val.isInt());
      BigInt D = N.Val.num();
      Rational TV = M.eval(Ctx, N.Kids[0]).R;
      assert(TV.isInt());
      BigInt R0 = TV.num().euclidMod(D);
      assert(!R0.isZero());
      TermRef Shifted =
          Ctx.mkSub(N.Kids[0], Ctx.mkConst(Rational(R0), Sort::Int));
      Cube.push_back(Ctx.mkDivides(D, Shifted));
      break;
    }
    default:
      raiseError(ErrorCode::InvariantViolation,
                 "unexpected atom kind in implicant cube");
    }
  }
  // Drop literals that canonicalized to true; none may be false under M.
  std::vector<TermRef> Out;
  for (TermRef L : Cube) {
    if (Ctx.kind(L) == Kind::True)
      continue;
    MUCYC_INVARIANT(Ctx.kind(L) != Kind::False,
                    "false literal in implicant cube");
    MUCYC_INVARIANT(M.holds(Ctx, L),
                    "cube literal not satisfied by the model");
    Out.push_back(L);
  }
  return Out;
}
