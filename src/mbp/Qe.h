//===- mbp/Qe.h - Quantifier elimination via MBP ----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: quantifier elimination as saturation of
/// model-based projections. Iterate "find M |= phi and not psi; add
/// Mbp(phi, M) to psi" until unsatisfiable; image finiteness of the proper
/// MBP guarantees termination.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_MBP_QE_H
#define MUCYC_MBP_QE_H

#include "term/Term.h"

#include <vector>

namespace mucyc {

/// Computes a quantifier-free equivalent of (exists Elim. Phi) as a
/// disjunction of projection cubes.
TermRef qeExists(TermContext &Ctx, const std::vector<VarId> &Elim,
                 TermRef Phi);

/// Computes (forall Elim. Phi) by duality.
TermRef qeForall(TermContext &Ctx, const std::vector<VarId> &Elim,
                 TermRef Phi);

} // namespace mucyc

#endif // MUCYC_MBP_QE_H
