//===- mbp/MbpLia.cpp - Model-based Cooper projection for Int vars --------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-guided Cooper elimination for one Int variable over a cube of
/// positive literals (Le/EqA/Divides; strict atoms do not exist over Int).
/// The classical Cooper disjunction branches on (a) an equality definition,
/// (b) the minus-infinity case with a residue class, or (c) a greatest lower
/// bound plus a bounded offset r in [0, a*D); the model picks the branch and
/// the offset, so the output is a single cube and the image is finite.
///
/// For the glb branch with lower bound a*v >= s and offset r the emitted
/// constraints describe the virtual witness v0 = (s + r)/a:
///     a | s + r,
///     a_i*(s + r) >= a*s_i          for every other lower bound,
///     b_j*(s + r) <= a*t_j          for every upper bound,
///     a*d_k | e_k*(s + r) + a*u_k   for every divisibility.
/// Under M, v0 lies between the glb and M(v) and is congruent to M(v) mod
/// every divisor, which makes each emitted literal model-true; conversely
/// the literals force v0 to witness the eliminated conjunction.
///
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"

#include "support/Error.h"
#include "term/Linear.h"

using namespace mucyc;

namespace {

Rational evalLin(const TermContext &Ctx, const LinExpr &E, const Model &M) {
  Rational R = E.Const;
  for (const auto &[V, C] : E.Coeffs) {
    Value Val = M.value(Ctx, V);
    assert(Val.S != Sort::Bool);
    R += C * Val.R;
  }
  return R;
}

/// a*v >= S (lower) or a*v <= S (upper), with a > 0 integral.
struct ScaledBound {
  BigInt A;
  LinExpr S;
};

/// d | E*v + U.
struct DivLit {
  BigInt D;
  BigInt E;
  LinExpr U;
};

LinExpr linConst(const BigInt &C) {
  LinExpr E;
  E.Const = Rational(C);
  return E;
}

} // namespace

void mucyc::eliminateIntVar(TermContext &Ctx, VarId V,
                            std::vector<TermRef> &Cube, const Model &M) {
  std::vector<TermRef> Rest;
  std::vector<ScaledBound> Lowers, Uppers;
  std::optional<ScaledBound> EqDef; // a*v = S.
  std::vector<DivLit> Divs;

  for (TermRef Lit : Cube) {
    const TermNode &N = Ctx.node(Lit);
    if (N.K == Kind::Divides) {
      LinExpr E = LinExpr::fromTerm(Ctx, N.Kids[0]);
      Rational C = E.coeff(V);
      if (C.isZero()) {
        Rest.push_back(Lit);
        continue;
      }
      assert(C.isInt() && N.Val.isInt());
      LinExpr U = E;
      U.Coeffs.erase(V);
      Divs.push_back(DivLit{N.Val.num(), C.num(), U});
      continue;
    }
    if (N.K != Kind::Le && N.K != Kind::EqA) {
      Rest.push_back(Lit);
      continue;
    }
    LinAtom A = LinAtom::fromAtomTerm(Ctx, Lit);
    Rational C = A.Expr.coeff(V);
    if (C.isZero()) {
      Rest.push_back(Lit);
      continue;
    }
    assert(C.isInt());
    // C*v + R <rel> 0.
    LinExpr R = A.Expr;
    R.Coeffs.erase(V);
    if (N.K == Kind::EqA) {
      // C*v = -R; normalize the coefficient positive.
      ScaledBound B;
      if (C.sgn() > 0) {
        B.A = C.num();
        B.S = R.scaled(Rational(-1));
      } else {
        B.A = -C.num();
        B.S = R;
      }
      if (!EqDef) {
        EqDef = B;
      } else {
        // Consistency of two definitions: B.A * EqDef.S = EqDef.A * B.S.
        LinExpr L = EqDef->S.scaled(Rational(B.A));
        LinExpr Rr = B.S.scaled(Rational(EqDef->A));
        Rest.push_back(Ctx.mkEq(L.toTerm(Ctx, Sort::Int),
                                Rr.toTerm(Ctx, Sort::Int)));
      }
      continue;
    }
    // Le: C*v <= -R.
    if (C.sgn() > 0)
      Uppers.push_back(ScaledBound{C.num(), R.scaled(Rational(-1))});
    else
      Lowers.push_back(ScaledBound{-C.num(), R});
  }

  Rational MV = M.value(Ctx, V).R;
  assert(MV.isInt());

  if (EqDef) {
    const BigInt &A = EqDef->A;
    const LinExpr &S = EqDef->S;
    // a | S, and substitute a*v := S everywhere (multiplying through by a).
    Rest.push_back(Ctx.mkDivides(A, S.toTerm(Ctx, Sort::Int)));
    for (const ScaledBound &L : Lowers) {
      // a_i*v >= s_i  ==>  a_i*S >= a*s_i.
      LinExpr Lhs = L.S.scaled(Rational(A));
      LinExpr Rhs = S.scaled(Rational(L.A));
      Rest.push_back(Ctx.mkLe(Lhs.toTerm(Ctx, Sort::Int),
                              Rhs.toTerm(Ctx, Sort::Int)));
    }
    for (const ScaledBound &U : Uppers) {
      LinExpr Lhs = S.scaled(Rational(U.A));
      LinExpr Rhs = U.S.scaled(Rational(A));
      Rest.push_back(Ctx.mkLe(Lhs.toTerm(Ctx, Sort::Int),
                              Rhs.toTerm(Ctx, Sort::Int)));
    }
    for (const DivLit &D : Divs) {
      // d | e*v + u  ==>  a*d | e*S + a*u.
      LinExpr Body = S.scaled(Rational(D.E));
      Body.add(D.U, Rational(A));
      Rest.push_back(Ctx.mkDivides(A * D.D, Body.toTerm(Ctx, Sort::Int)));
    }
    Cube = std::move(Rest);
    return;
  }

  // Common divisibility period.
  BigInt Period(1);
  for (const DivLit &D : Divs)
    Period = BigInt::lcm(Period, D.D);

  if (Lowers.empty() || Uppers.empty()) {
    // -inf (or +inf) branch: bounds on one side only are always satisfiable
    // for some v in the residue class of M(v) mod Period.
    BigInt Rho = MV.num().euclidMod(Period);
    for (const DivLit &D : Divs) {
      LinExpr Body = D.U;
      Body.add(linConst(D.E * Rho));
      Rest.push_back(Ctx.mkDivides(D.D, Body.toTerm(Ctx, Sort::Int)));
    }
    Cube = std::move(Rest);
    return;
  }

  // Greatest lower bound under M: maximize s_i / a_i.
  size_t G = 0;
  Rational GVal = evalLin(Ctx, Lowers[0].S, M) / Rational(Lowers[0].A);
  for (size_t I = 1; I < Lowers.size(); ++I) {
    Rational IV = evalLin(Ctx, Lowers[I].S, M) / Rational(Lowers[I].A);
    if (IV > GVal) {
      G = I;
      GVal = IV;
    }
  }
  const BigInt &A = Lowers[G].A;
  const LinExpr &S = Lowers[G].S;

  // Offset r = (a*M(v) - M(S)) mod (a*Period); the virtual witness is
  // v0 = (S + r)/a, which satisfies glb <= v0 <= M(v) under M.
  Rational SM = evalLin(Ctx, S, M);
  assert(SM.isInt());
  BigInt RawR = A * MV.num() - SM.num();
  MUCYC_INVARIANT(!RawR.isNeg(),
                  "model below its own greatest lower bound");
  BigInt Mod = A * Period;
  BigInt R = RawR.euclidMod(Mod);
  LinExpr SR = S; // S + r.
  SR.add(linConst(R));

  Rest.push_back(Ctx.mkDivides(A, SR.toTerm(Ctx, Sort::Int)));
  for (size_t I = 0; I < Lowers.size(); ++I) {
    if (I == G)
      continue;
    // a_i*(S + r) >= a*s_i.
    LinExpr Lhs = Lowers[I].S.scaled(Rational(A));
    LinExpr Rhs = SR.scaled(Rational(Lowers[I].A));
    Rest.push_back(
        Ctx.mkLe(Lhs.toTerm(Ctx, Sort::Int), Rhs.toTerm(Ctx, Sort::Int)));
  }
  for (const ScaledBound &U : Uppers) {
    // b_j*(S + r) <= a*t_j.
    LinExpr Lhs = SR.scaled(Rational(U.A));
    LinExpr Rhs = U.S.scaled(Rational(A));
    Rest.push_back(
        Ctx.mkLe(Lhs.toTerm(Ctx, Sort::Int), Rhs.toTerm(Ctx, Sort::Int)));
  }
  for (const DivLit &D : Divs) {
    // a*d | e*(S + r) + a*u.
    LinExpr Body = SR.scaled(Rational(D.E));
    Body.add(D.U, Rational(A));
    Rest.push_back(Ctx.mkDivides(A * D.D, Body.toTerm(Ctx, Sort::Int)));
  }
  Cube = std::move(Rest);
}
