//===- mbp/Mbp.cpp - MBP strategy dispatch --------------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"

#include "mbp/Qe.h"
#include "support/Error.h"

#include <algorithm>

using namespace mucyc;

const char *mucyc::mbpStrategyName(MbpStrategy S) {
  switch (S) {
  case MbpStrategy::LazyProject:
    return "MBP";
  case MbpStrategy::ModelDiagram:
    return "Model";
  case MbpStrategy::FullQe:
    return "QE";
  }
  assert(false && "unknown strategy");
  return "?";
}

namespace {

TermRef projectCube(TermContext &Ctx, const std::vector<VarId> &Elim,
                    TermRef Phi, const Model &M) {
  std::vector<TermRef> Cube = implicantCube(Ctx, Phi, M);
  for (VarId V : Elim) {
    switch (Ctx.varInfo(V).S) {
    case Sort::Bool: {
      // Boolean literals over V are exactly V / not V; drop them.
      std::vector<TermRef> Kept;
      for (TermRef L : Cube) {
        const TermNode &N = Ctx.node(L);
        TermRef AtomT = N.K == Kind::Not ? N.Kids[0] : L;
        const TermNode &AN = Ctx.node(AtomT);
        if (AN.K == Kind::Var && AN.Var == V)
          continue;
        Kept.push_back(L);
      }
      Cube = std::move(Kept);
      break;
    }
    case Sort::Int:
      eliminateIntVar(Ctx, V, Cube, M);
      break;
    case Sort::Real:
      eliminateRealVar(Ctx, V, Cube, M);
      break;
    }
    // Canonicalization may fold literals to true; drop them eagerly.
    std::vector<TermRef> Kept;
    for (TermRef L : Cube) {
      if (Ctx.kind(L) == Kind::True)
        continue;
      MUCYC_INVARIANT(Ctx.kind(L) != Kind::False,
                      "variable projection produced false");
      Kept.push_back(L);
    }
    Cube = std::move(Kept);
  }
  return Ctx.mkAnd(std::move(Cube));
}

TermRef modelDiagram(TermContext &Ctx, const std::vector<VarId> &Elim,
                     TermRef Phi, const Model &M) {
  std::vector<TermRef> Conj;
  for (VarId V : Ctx.freeVars(Phi)) {
    if (std::find(Elim.begin(), Elim.end(), V) != Elim.end())
      continue;
    Value Val = M.value(Ctx, V);
    if (Val.S == Sort::Bool) {
      TermRef VT = Ctx.varTerm(V);
      Conj.push_back(Val.B ? VT : Ctx.mkNot(VT));
    } else {
      Conj.push_back(
          Ctx.mkEq(Ctx.varTerm(V), Ctx.mkConst(Val.R, Val.S)));
    }
  }
  return Ctx.mkAnd(std::move(Conj));
}

TermRef fullQePick(TermContext &Ctx, const std::vector<VarId> &Elim,
                   TermRef Phi, const Model &M) {
  TermRef Psi = qeExists(Ctx, Elim, Phi);
  // Pick the disjunct satisfied by M (Example 3 of the paper).
  const TermNode &N = Ctx.node(Psi);
  if (N.K == Kind::Or) {
    for (TermRef D : N.Kids)
      if (M.holds(Ctx, D))
        return D;
    raiseError(ErrorCode::InvariantViolation,
               "no QE disjunct satisfied by the model; QE is incorrect");
  }
  return Psi;
}

} // namespace

TermRef mucyc::mbp(TermContext &Ctx, MbpStrategy Strategy,
                   const std::vector<VarId> &Elim, TermRef Phi,
                   const Model &M) {
  MUCYC_INVARIANT(M.holds(Ctx, Phi), "MBP requires M |= Phi");
  TermRef R;
  switch (Strategy) {
  case MbpStrategy::LazyProject:
    R = projectCube(Ctx, Elim, Phi, M);
    break;
  case MbpStrategy::ModelDiagram:
    R = modelDiagram(Ctx, Elim, Phi, M);
    break;
  case MbpStrategy::FullQe:
    R = fullQePick(Ctx, Elim, Phi, M);
    break;
  }
  MUCYC_INVARIANT(M.holds(Ctx, R), "MBP result not satisfied by the model");
  for (VarId V : Ctx.freeVars(R))
    MUCYC_INVARIANT(std::find(Elim.begin(), Elim.end(), V) == Elim.end(),
                    "eliminated variable survives in MBP result");
  return R;
}
