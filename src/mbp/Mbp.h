//===- mbp/Mbp.h - Model-based projection -----------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-based projection (Definition 1 of the paper): given phi(x, y), the
/// variables x to eliminate, and a model M |= phi, produce a quantifier-free
/// psi(y) with  M |= psi,  psi => exists x. phi,  and (for the proper
/// strategies) a finite image over all models of a fixed phi. The last
/// property — image finiteness — is exactly what separates Spacer from GPDR
/// (Remark 17) and underpins every termination proof in the paper.
///
/// Strategies:
///  * LazyProject — the real thing: implicant cube extraction followed by
///    per-variable virtual substitution (Loos–Weispfenning for Real,
///    model-based Cooper with divisibility residues for Int). Image-finite.
///  * ModelDiagram — GPDR's "diagram": conjunction of y_i = M(y_i). Satisfies
///    every MBP condition except image finiteness.
///  * FullQe — Example 3: run full quantifier elimination (itself implemented
///    with the MBP loop of Algorithm 1) and return the disjunct satisfied by
///    M. Deterministic but expensive; the paper reports it degrades
///    performance, which bench/micro_mbp reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_MBP_MBP_H
#define MUCYC_MBP_MBP_H

#include "smt/Model.h"
#include "term/Term.h"

#include <vector>

namespace mucyc {

enum class MbpStrategy { LazyProject, ModelDiagram, FullQe };

const char *mbpStrategyName(MbpStrategy S);

/// Projects \p Elim out of \p Phi under \p M. Requires M |= Phi (checked in
/// debug builds); guarantees M |= result and result => exists Elim. Phi.
TermRef mbp(TermContext &Ctx, MbpStrategy Strategy,
            const std::vector<VarId> &Elim, TermRef Phi, const Model &M);

/// Extracts an implicant cube of \p Phi containing \p M: a conjunctive set
/// of positive-atom literals L with M |= L and (/\ L) => Phi. Negated
/// equalities and divisibilities are strengthened into positive atoms using
/// the model (the "model split"), so downstream projection only ever sees
/// Le/Lt/EqA/Divides atoms plus Boolean literals.
std::vector<TermRef> implicantCube(TermContext &Ctx, TermRef Phi,
                                   const Model &M);

/// Eliminates one Real variable from a cube in place (Loos–Weispfenning
/// virtual substitution guided by the model).
void eliminateRealVar(TermContext &Ctx, VarId V, std::vector<TermRef> &Cube,
                      const Model &M);

/// Eliminates one Int variable from a cube in place (model-based Cooper).
void eliminateIntVar(TermContext &Ctx, VarId V, std::vector<TermRef> &Cube,
                     const Model &M);

} // namespace mucyc

#endif // MUCYC_MBP_MBP_H
