//===- mbp/MbpLra.cpp - Loos-Weispfenning projection for Real vars --------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-guided virtual substitution for one Real variable over a cube of
/// positive literals. The model selects the branch of the classical
/// Loos-Weispfenning disjunction: an equality definition if one exists,
/// otherwise the greatest lower bound (with an epsilon offset when strict),
/// otherwise minus infinity. Each branch has a quantifier-free effect on the
/// remaining literals, and the number of branches is bounded by the literal
/// set, giving image finiteness.
///
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"

#include "term/Linear.h"

using namespace mucyc;

namespace {

/// A bound v >= T / v > T (lower) or v <= T / v < T (upper), or v = T.
struct VBound {
  LinExpr T; ///< The bounding expression (v-free).
  bool Strict = false;
};

Rational evalLin(const TermContext &Ctx, const LinExpr &E, const Model &M) {
  Rational R = E.Const;
  for (const auto &[V, C] : E.Coeffs) {
    Value Val = M.value(Ctx, V);
    assert(Val.S != Sort::Bool);
    R += C * Val.R;
  }
  return R;
}

TermRef cmpTerm(TermContext &Ctx, const LinExpr &A, const LinExpr &B,
                bool Strict) {
  TermRef TA = A.toTerm(Ctx, Sort::Real);
  TermRef TB = B.toTerm(Ctx, Sort::Real);
  return Strict ? Ctx.mkLt(TA, TB) : Ctx.mkLe(TA, TB);
}

} // namespace

void mucyc::eliminateRealVar(TermContext &Ctx, VarId V,
                             std::vector<TermRef> &Cube, const Model &M) {
  std::vector<TermRef> Rest;
  std::vector<VBound> Lowers, Uppers;
  std::optional<LinExpr> EqDef;

  for (TermRef Lit : Cube) {
    const TermNode &N = Ctx.node(Lit);
    if (N.K != Kind::Le && N.K != Kind::Lt && N.K != Kind::EqA) {
      Rest.push_back(Lit);
      continue;
    }
    LinAtom A = LinAtom::fromAtomTerm(Ctx, Lit);
    Rational C = A.Expr.coeff(V);
    if (C.isZero()) {
      Rest.push_back(Lit);
      continue;
    }
    // Solved form: C*v + R <rel> 0  ==>  v <rel'> -R/C.
    LinExpr T = A.Expr;
    T.Coeffs.erase(V);
    T = T.scaled(-C.inverse());
    bool CoeffPos = C.sgn() > 0;
    switch (A.Rel) {
    case LinRel::Eq:
      if (!EqDef)
        EqDef = T;
      else
        // Second definition: emit equality of the two definitions.
        Rest.push_back(Ctx.mkEq(T.toTerm(Ctx, Sort::Real),
                                EqDef->toTerm(Ctx, Sort::Real)));
      break;
    case LinRel::Le:
      (CoeffPos ? Uppers : Lowers).push_back(VBound{T, false});
      break;
    case LinRel::Lt:
      (CoeffPos ? Uppers : Lowers).push_back(VBound{T, true});
      break;
    }
  }

  if (EqDef) {
    // v := EqDef in every remaining bound.
    for (const VBound &L : Lowers)
      Rest.push_back(cmpTerm(Ctx, L.T, *EqDef, L.Strict));
    for (const VBound &U : Uppers)
      Rest.push_back(cmpTerm(Ctx, *EqDef, U.T, U.Strict));
    Cube = std::move(Rest);
    return;
  }

  if (Lowers.empty() || Uppers.empty()) {
    // Virtual -inf or +inf: the one-sided bounds are always satisfiable.
    Cube = std::move(Rest);
    return;
  }

  // Greatest lower bound under M; prefer a strict bound on ties (it is the
  // tighter constraint and keeps the emitted comparisons model-true).
  size_t G = 0;
  Rational GVal = evalLin(Ctx, Lowers[0].T, M);
  for (size_t I = 1; I < Lowers.size(); ++I) {
    Rational IV = evalLin(Ctx, Lowers[I].T, M);
    if (IV > GVal || (IV == GVal && Lowers[I].Strict && !Lowers[G].Strict)) {
      G = I;
      GVal = IV;
    }
  }
  const VBound &Glb = Lowers[G];

  for (size_t I = 0; I < Lowers.size(); ++I) {
    if (I == G)
      continue;
    // Virtual v := Glb (+ eps if strict): other lower l_i <= Glb, strictly
    // when l_i is strict and the glb is not.
    bool Strict = Lowers[I].Strict && !Glb.Strict;
    Rest.push_back(cmpTerm(Ctx, Lowers[I].T, Glb.T, Strict));
  }
  for (const VBound &U : Uppers) {
    // Glb <= u_j; strict when either side is strict.
    bool Strict = U.Strict || Glb.Strict;
    Rest.push_back(cmpTerm(Ctx, Glb.T, U.T, Strict));
  }
  Cube = std::move(Rest);
}
