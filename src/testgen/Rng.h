//===- testgen/Rng.h - Deterministic split-mix PRNG -------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random source for all generated test inputs. Every draw is a pure
/// function of the 64-bit seed, using only fixed-width integer arithmetic,
/// so a (seed, instance-index) pair reproduces the same formula on any
/// platform and any standard library — the property the fuzzer's
/// "two runs are byte-identical" contract and every checked-in regression
/// corpus entry depend on. std::mt19937 would pin the engine but not the
/// distributions, which the standard leaves implementation-defined.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_RNG_H
#define MUCYC_TESTGEN_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace mucyc {

/// SplitMix64 (Steele, Lea & Flood 2014): tiny state, full 64-bit output,
/// passes BigCrush; more than enough for input generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit draw.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform draw in [0, N). N must be positive. Multiply-shift reduction
  /// (Lemire); the slight non-uniformity for huge N is irrelevant here.
  uint64_t below(uint64_t N) {
    assert(N > 0 && "empty range");
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * N) >> 64);
  }

  /// Uniform draw in [Lo, Hi] inclusive.
  int64_t intIn(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty interval");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// True with probability 1/N.
  bool oneIn(uint64_t N) { return below(N) == 0; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &Xs) {
    assert(!Xs.empty() && "pick from empty vector");
    return Xs[below(Xs.size())];
  }

  /// Derives an independent stream for instance \p Index: feeding the
  /// mixed value as a fresh seed decorrelates the per-instance streams so
  /// inserting an instance never perturbs the ones after it.
  static uint64_t deriveSeed(uint64_t Seed, uint64_t Index) {
    Rng R(Seed ^ (0x6a09e667f3bcc909ull + Index * 0x9e3779b97f4a7c15ull));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace mucyc

#endif // MUCYC_TESTGEN_RNG_H
