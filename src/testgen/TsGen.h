//===- testgen/TsGen.h - Random BTOR2 transition systems --------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-deterministic generator of token-level BTOR2 programs inside the
/// subset ts/Btor2.h accepts: small bitvec (and occasionally native int)
/// state machines with inputs, wrap-around arithmetic, comparisons, ites,
/// constraints and bad properties — valid by construction, so every
/// generated program must parse, print byte-identically, and encode to a
/// CHC system all four engines plus BMC can digest within the fuzzing
/// budgets. Widths and expression fan-in are kept small on purpose: the
/// engine-race oracle re-solves every instance five times.
///
/// Determinism contract: as for testgen/Gen.h — the output is a pure
/// function of the Rng state and the knobs, drawn in a fixed order.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_TSGEN_H
#define MUCYC_TESTGEN_TSGEN_H

#include "testgen/Rng.h"
#include "ts/Btor2.h"

namespace mucyc {

/// Shape knobs for the transition-system generator. The defaults bound the
/// reachable state space (<= 2^(3*4) configurations) so bounded reachability
/// and the engines converge fast and disagreements shrink well.
struct TsGenKnobs {
  unsigned MaxStates = 3; ///< State variables (>= 1 is forced).
  unsigned MaxInputs = 2; ///< Primary inputs (may be 0).
  unsigned MaxWidth = 4;  ///< Max bitvec width drawn (>= 1).
  unsigned MaxOps = 6;    ///< Derived expression nodes.
  unsigned MaxBads = 2;   ///< Bad properties (>= 1 is forced).
  bool AllowInt = true;   ///< Mint native `sort int` states occasionally.
};

/// Generates a random BTOR2 program. Guaranteed to be inside the supported
/// subset (parseBtor2 must succeed) with at least one state and one bad
/// property; guarded-case growth is tracked so the lowering never trips the
/// parser's case cap.
Btor2Program genBtor2(Rng &R, const TsGenKnobs &Knobs);

} // namespace mucyc

#endif // MUCYC_TESTGEN_TSGEN_H
