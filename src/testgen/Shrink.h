//===- testgen/Shrink.h - Delta-debugging minimizer -------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ddmin-style shrinker for failing CHC instances. Given the SMT-LIB2
/// text of a system and a deterministic failure predicate (re-running the
/// oracle that flagged it), the shrinker greedily minimizes while the
/// failure persists, interleaving four passes to a fixpoint:
///
///   1. clause-set ddmin (Zeller & Hildebrandt's algorithm over indices),
///   2. dropping individual body atoms,
///   3. dropping individual constraint conjuncts,
///   4. shrinking numeric constants toward 0/1 (a strictly decreasing
///      magnitude measure, so the pass terminates).
///
/// Every accepted candidate is the result of printing a mutated system and
/// re-parsing it into a fresh TermContext, so the final repro is guaranteed
/// to round-trip through chc/Parser and the failure predicate only ever
/// sees systems a user could load from disk.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_SHRINK_H
#define MUCYC_TESTGEN_SHRINK_H

#include "chc/Chc.h"

#include <functional>
#include <string>

namespace mucyc {

/// Deterministic predicate: does this (freshly parsed) system still exhibit
/// the failure? The system is mutable because oracles need non-const access
/// to its context.
using SystemFailPred = std::function<bool(ChcSystem &)>;

struct ShrinkStats {
  unsigned Attempts = 0; ///< Candidate evaluations (FailPred calls).
  unsigned Accepted = 0; ///< Candidates that kept the failure.
};

/// Minimizes \p SmtLib under \p Fails. \p SmtLib must parse and the parsed
/// system must satisfy Fails (otherwise the input is returned unchanged).
/// \p MaxAttempts bounds the total number of candidate evaluations.
std::string shrinkChc(const std::string &SmtLib, const SystemFailPred &Fails,
                      unsigned MaxAttempts = 2000,
                      ShrinkStats *Stats = nullptr);

} // namespace mucyc

#endif // MUCYC_TESTGEN_SHRINK_H
