//===- testgen/Gen.h - Random formula and CHC generators --------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-deterministic generators for the fuzzing subsystem: random QF
/// Bool+LIA+LRA formulas and random linear CHC systems, sized by the
/// GenKnobs struct. The grammar mirrors what the term builders canonicalize
/// (And/Or/Not over linear atoms and divisibility constraints), so every
/// generated object prints through printSmtLib / toString and re-parses.
///
/// Determinism contract: a generator's output is a pure function of the Rng
/// state and the knobs. Generators draw from the Rng in a fixed order and
/// never consult wall clock, pointer values, or container iteration order.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_GEN_H
#define MUCYC_TESTGEN_GEN_H

#include "chc/Chc.h"
#include "testgen/Rng.h"

namespace mucyc {

/// Size/shape knobs for both generators. Defaults are small on purpose:
/// differential oracles re-solve every instance several times, and small
/// instances shrink better.
struct GenKnobs {
  // Formula shape.
  unsigned IntVars = 3;  ///< Int variable pool size.
  unsigned RealVars = 2; ///< Real variable pool size.
  unsigned BoolVars = 1; ///< Bool variable pool size.
  unsigned Depth = 3;    ///< Max nesting of and/or/not.
  unsigned BoolArity = 3; ///< Max children per and/or node.
  unsigned AtomVars = 3; ///< Max distinct variables per linear atom.
  int64_t CoeffMag = 8;  ///< Max |coefficient| and |constant|.
  bool RationalCoeffs = true; ///< Allow non-integral Real coefficients.
  bool Divides = true;   ///< Allow (_ divisible d) atoms over Int.

  // CHC shape.
  unsigned Preds = 2;     ///< Max predicate count.
  unsigned PredArity = 2; ///< Max predicate arity.
  unsigned Clauses = 6;   ///< Max clause count.
  bool RealChc = false;   ///< Predicate argument sort Real instead of Int.
};

/// A pool of declared variables to draw atoms from, split by sort.
struct VarPool {
  std::vector<TermRef> Ints, Reals, Bools;

  bool hasArith() const { return !Ints.empty() || !Reals.empty(); }
};

/// Declares Knobs.{Int,Real,Bool}Vars fresh variables named
/// <prefix>i0..., <prefix>r0..., <prefix>b0.... Prefixes let oracle replay
/// code re-identify variable roles after a print/parse round trip (parsing
/// freshens names by appending "!n", so startsWith(prefix) survives).
VarPool genVarPool(TermContext &Ctx, const GenKnobs &Knobs,
                   const std::string &Prefix);

/// Random linear atom over variables of one numeric sort:
/// sum of coefficient*var {<=,<,=,>=,>} constant, or (d | sum) for Int.
TermRef genLinAtom(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                   const std::vector<TermRef> &Vars, Sort S);

/// Random quantifier-free formula over the pool, depth-bounded by the
/// knobs. Builders canonicalize on the fly, so the result may be smaller
/// than the drawn shape (including literal true/false).
TermRef genFormula(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                   const VarPool &Pool);

/// Random linear CHC system: at least one fact and one query, plus
/// transition rules whose constraints relate head to body arguments by
/// small linear updates. Every clause has at most one body atom.
ChcSystem genLinearChc(TermContext &Ctx, Rng &R, const GenKnobs &Knobs);

} // namespace mucyc

#endif // MUCYC_TESTGEN_GEN_H
