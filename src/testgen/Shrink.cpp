//===- testgen/Shrink.cpp - Delta-debugging minimizer ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Shrink.h"

#include "chc/Parser.h"

#include <algorithm>
#include <numeric>

using namespace mucyc;

namespace {

//===----------------------------------------------------------------------===
// System surgery helpers (all build a sibling system in the same context)
//===----------------------------------------------------------------------===

ChcSystem emptyLike(const ChcSystem &S) {
  ChcSystem Out(S.ctx());
  for (PredId P = 0; P < S.numPreds(); ++P)
    Out.addPred(S.pred(P).Name, S.pred(P).ArgSorts);
  return Out;
}

ChcSystem subsetSystem(const ChcSystem &S, const std::vector<size_t> &Keep) {
  ChcSystem Out = emptyLike(S);
  for (size_t I : Keep)
    Out.addClause(S.clauses()[I]);
  return Out;
}

ChcSystem replaceClause(const ChcSystem &S, size_t Idx, Clause C) {
  ChcSystem Out = emptyLike(S);
  for (size_t I = 0; I < S.clauses().size(); ++I)
    Out.addClause(I == Idx ? C : S.clauses()[I]);
  return Out;
}

//===----------------------------------------------------------------------===
// Numeric-constant sites
//===----------------------------------------------------------------------===

/// One occurrence of a numeric value in the system, in deterministic
/// pre-order traversal position. IsDivides marks a divisibility modulus
/// (which must stay a positive integer).
struct ValSite {
  Rational Val;
  bool IsDivides = false;
};

Rational rabs(const Rational &V) { return V.sgn() < 0 ? -V : V; }

void collectSitesTerm(const TermContext &C, TermRef T,
                      std::vector<ValSite> &Sites) {
  const TermNode &N = C.node(T);
  switch (N.K) {
  case Kind::Const:
    Sites.push_back({N.Val, false});
    return;
  case Kind::Mul:
  case Kind::Divides:
    Sites.push_back({N.Val, N.K == Kind::Divides});
    break;
  default:
    break;
  }
  for (TermRef Kid : N.Kids)
    collectSitesTerm(C, Kid, Sites);
}

/// Rebuilds \p T with value-site \p Target (in the running \p Counter
/// numbering) replaced by \p NewVal. Goes through the builders, so the
/// result is canonical.
TermRef rebuildTerm(TermContext &C, TermRef T, unsigned &Counter,
                    unsigned Target, const Rational &NewVal) {
  const TermNode &N = C.node(T);
  switch (N.K) {
  case Kind::True:
  case Kind::False:
  case Kind::Var:
    return T;
  case Kind::Const:
    return Counter++ == Target ? C.mkConst(NewVal, N.S) : T;
  case Kind::Mul: {
    bool IsTarget = Counter++ == Target;
    TermRef Kid = rebuildTerm(C, N.Kids[0], Counter, Target, NewVal);
    return C.mkMul(IsTarget ? NewVal : N.Val, Kid);
  }
  case Kind::Divides: {
    bool IsTarget = Counter++ == Target;
    TermRef Kid = rebuildTerm(C, N.Kids[0], Counter, Target, NewVal);
    return C.mkDivides(IsTarget ? NewVal.num() : N.Val.num(), Kid);
  }
  case Kind::Not:
    return C.mkNot(rebuildTerm(C, N.Kids[0], Counter, Target, NewVal));
  case Kind::And:
  case Kind::Or:
  case Kind::Add: {
    std::vector<TermRef> Kids;
    for (TermRef Kid : N.Kids)
      Kids.push_back(rebuildTerm(C, Kid, Counter, Target, NewVal));
    return N.K == Kind::And   ? C.mkAnd(std::move(Kids))
           : N.K == Kind::Or  ? C.mkOr(std::move(Kids))
                              : C.mkAdd(std::move(Kids));
  }
  case Kind::Le:
  case Kind::Lt:
  case Kind::EqA: {
    TermRef A = rebuildTerm(C, N.Kids[0], Counter, Target, NewVal);
    TermRef B = rebuildTerm(C, N.Kids[1], Counter, Target, NewVal);
    return N.K == Kind::Le   ? C.mkLe(A, B)
           : N.K == Kind::Lt ? C.mkLt(A, B)
                             : C.mkEq(A, B);
  }
  }
  return T;
}

void collectSitesClause(const TermContext &C, const Clause &Cl,
                        std::vector<ValSite> &Sites) {
  for (const PredApp &B : Cl.Body)
    for (TermRef A : B.Args)
      collectSitesTerm(C, A, Sites);
  collectSitesTerm(C, Cl.Constraint, Sites);
  if (Cl.Head)
    for (TermRef A : Cl.Head->Args)
      collectSitesTerm(C, A, Sites);
}

ChcSystem rebuildSystem(const ChcSystem &S, unsigned Target,
                        const Rational &NewVal) {
  TermContext &C = S.ctx();
  ChcSystem Out = emptyLike(S);
  unsigned Counter = 0;
  for (const Clause &Cl : S.clauses()) {
    Clause NC;
    for (const PredApp &B : Cl.Body) {
      PredApp App{B.Pred, {}};
      for (TermRef A : B.Args)
        App.Args.push_back(rebuildTerm(C, A, Counter, Target, NewVal));
      NC.Body.push_back(std::move(App));
    }
    NC.Constraint = rebuildTerm(C, Cl.Constraint, Counter, Target, NewVal);
    if (Cl.Head) {
      PredApp App{Cl.Head->Pred, {}};
      for (TermRef A : Cl.Head->Args)
        App.Args.push_back(rebuildTerm(C, A, Counter, Target, NewVal));
      NC.Head = std::move(App);
    }
    Out.addClause(std::move(NC));
  }
  return Out;
}

/// Strictly smaller replacement candidates for one site, in preference
/// order. The strict magnitude decrease makes the coefficient pass a
/// well-founded descent.
std::vector<Rational> shrinkCandidates(const ValSite &Site) {
  const Rational &V = Site.Val;
  std::vector<Rational> Out;
  auto Push = [&](Rational C) {
    if (rabs(C) >= rabs(V))
      return;
    if (std::find(Out.begin(), Out.end(), C) != Out.end())
      return;
    Out.push_back(std::move(C));
  };
  if (Site.IsDivides) {
    // Modulus: positive integers only; 1 makes the atom trivially true.
    Push(Rational(1));
    Push(Rational(2));
    Push(Rational(V.num().floorDiv(BigInt(2))));
    Out.erase(std::remove_if(Out.begin(), Out.end(),
                             [](const Rational &C) { return C.sgn() <= 0; }),
              Out.end());
    return Out;
  }
  Push(Rational(0));
  Push(Rational(1));
  Push(Rational(-1));
  // Integer half, rounded toward zero — strictly smaller for |V| > 1.
  Rational Half = V / Rational(2);
  Push(Rational(V.sgn() >= 0 ? Half.floor() : Half.ceil()));
  return Out;
}

//===----------------------------------------------------------------------===
// The shrinking loop
//===----------------------------------------------------------------------===

struct Shrinker {
  const SystemFailPred &Fails;
  unsigned MaxAttempts;
  ShrinkStats Stats;
  std::string Best;

  bool budget() const { return Stats.Attempts < MaxAttempts; }

  /// Prints the candidate, re-parses it into a fresh context (guaranteeing
  /// the repro round-trips), and keeps it iff the failure persists.
  bool accept(const ChcSystem &Cand) {
    if (!budget())
      return false;
    std::string Text = printSmtLib(Cand);
    if (Text == Best)
      return false;
    ++Stats.Attempts;
    TermContext Ctx;
    ParseResult PR = parseChc(Ctx, Text);
    if (!PR.Ok || !Fails(*PR.System))
      return false;
    Best = std::move(Text);
    ++Stats.Accepted;
    return true;
  }

  /// Parses the current best; always succeeds because Best is either the
  /// validated input or a printed system that already re-parsed once.
  ParseResult parseBest(TermContext &Ctx) const {
    ParseResult PR = parseChc(Ctx, Best);
    assert(PR.Ok && "current best repro stopped parsing");
    return PR;
  }

  /// Zeller-Hildebrandt ddmin over the clause index set.
  bool ddminClauses() {
    TermContext Ctx;
    ParseResult PR = parseBest(Ctx);
    const ChcSystem &S = *PR.System;
    std::vector<size_t> Idx(S.clauses().size());
    std::iota(Idx.begin(), Idx.end(), 0);
    bool Any = false;
    size_t Gran = 2;
    while (Idx.size() >= 2 && budget()) {
      size_t Chunk = (Idx.size() + Gran - 1) / Gran;
      bool Reduced = false;
      for (size_t Start = 0; Start < Idx.size() && !Reduced;
           Start += Chunk) {
        std::vector<size_t> Complement;
        for (size_t I = 0; I < Idx.size(); ++I)
          if (I < Start || I >= Start + Chunk)
            Complement.push_back(Idx[I]);
        if (Complement.empty())
          continue;
        if (accept(subsetSystem(S, Complement))) {
          Idx = std::move(Complement);
          Gran = std::max<size_t>(Gran - 1, 2);
          Reduced = Any = true;
        }
      }
      if (!Reduced) {
        if (Gran >= Idx.size())
          break;
        Gran = std::min(Idx.size(), Gran * 2);
      }
    }
    return Any;
  }

  /// Drops one body atom at a time, to a fixpoint.
  bool dropBodyAtoms() {
    bool Any = false, Changed = true;
    while (Changed && budget()) {
      Changed = false;
      TermContext Ctx;
      ParseResult PR = parseBest(Ctx);
      const ChcSystem &S = *PR.System;
      for (size_t CI = 0; CI < S.clauses().size() && !Changed; ++CI) {
        const Clause &Cl = S.clauses()[CI];
        for (size_t BI = 0; BI < Cl.Body.size() && !Changed; ++BI) {
          Clause NC = Cl;
          NC.Body.erase(NC.Body.begin() + BI);
          if (accept(replaceClause(S, CI, std::move(NC))))
            Changed = Any = true;
        }
      }
    }
    return Any;
  }

  /// Drops one constraint conjunct at a time (or the whole constraint), to
  /// a fixpoint.
  bool dropConjuncts() {
    bool Any = false, Changed = true;
    while (Changed && budget()) {
      Changed = false;
      TermContext Ctx;
      ParseResult PR = parseBest(Ctx);
      const ChcSystem &S = *PR.System;
      for (size_t CI = 0; CI < S.clauses().size() && !Changed; ++CI) {
        const Clause &Cl = S.clauses()[CI];
        if (Ctx.kind(Cl.Constraint) == Kind::True)
          continue;
        std::vector<std::vector<TermRef>> Candidates;
        if (Ctx.kind(Cl.Constraint) == Kind::And) {
          const std::vector<TermRef> &Kids = Ctx.node(Cl.Constraint).Kids;
          for (size_t J = 0; J < Kids.size(); ++J) {
            std::vector<TermRef> Keep;
            for (size_t I = 0; I < Kids.size(); ++I)
              if (I != J)
                Keep.push_back(Kids[I]);
            Candidates.push_back(std::move(Keep));
          }
        }
        Candidates.push_back({}); // Drop the constraint entirely.
        for (auto &Keep : Candidates) {
          Clause NC = Cl;
          NC.Constraint =
              Keep.empty() ? Ctx.mkTrue() : Ctx.mkAnd(std::move(Keep));
          if (accept(replaceClause(S, CI, std::move(NC)))) {
            Changed = Any = true;
            break;
          }
        }
      }
    }
    return Any;
  }

  /// Shrinks numeric constants toward 0/±1, to a fixpoint (terminates: the
  /// total coefficient magnitude strictly decreases on every acceptance).
  bool shrinkCoeffs() {
    bool Any = false, Changed = true;
    while (Changed && budget()) {
      Changed = false;
      TermContext Ctx;
      ParseResult PR = parseBest(Ctx);
      const ChcSystem &S = *PR.System;
      std::vector<ValSite> Sites;
      for (const Clause &Cl : S.clauses())
        collectSitesClause(Ctx, Cl, Sites);
      for (unsigned K = 0; K < Sites.size() && !Changed; ++K)
        for (const Rational &NewVal : shrinkCandidates(Sites[K])) {
          if (accept(rebuildSystem(S, K, NewVal))) {
            Changed = Any = true;
            break;
          }
          if (!budget())
            break;
        }
    }
    return Any;
  }
};

} // namespace

std::string mucyc::shrinkChc(const std::string &SmtLib,
                             const SystemFailPred &Fails,
                             unsigned MaxAttempts, ShrinkStats *Stats) {
  {
    TermContext Ctx;
    ParseResult PR = parseChc(Ctx, SmtLib);
    if (!PR.Ok || !Fails(*PR.System))
      return SmtLib; // Nothing to shrink: input does not (re)fail.
  }
  Shrinker Sh{Fails, MaxAttempts, {}, SmtLib};
  bool Progress = true;
  while (Progress && Sh.budget()) {
    Progress = false;
    Progress |= Sh.ddminClauses();
    Progress |= Sh.dropBodyAtoms();
    Progress |= Sh.dropConjuncts();
    Progress |= Sh.shrinkCoeffs();
  }
  if (Stats)
    *Stats = Sh.Stats;
  return Sh.Best;
}
