//===- testgen/Oracles.h - Differential and metamorphic oracles -*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness oracles of the fuzzing subsystem. Each oracle takes a
/// generated object and checks a contract the paper states explicitly:
///
///  * SMT: a Sat verdict must come with a model that evaluates the formula
///    to true (ground evaluation is an independent implementation of the
///    semantics); F and not(F) cannot both be Unsat; simplify() preserves
///    the verdict.
///  * MBP (Definition 1): psi = Mbp(phi, M) must satisfy M |= psi,
///    vars(psi) disjoint from the eliminated tuple, and psi => exists x.phi
///    (checked against full QE, which is itself cross-checked with
///    phi => QE(phi)).
///  * Itp (Section 2.1): |= A => I, |= I => B, vars(I) contained in
///    vars(B) — for every interpolation mode.
///  * Engines: all four solver back-ends (Ret, Yld, SpacerTS, Solve) are
///    raced through the runtime Scheduler on the same system and must
///    agree with each other, with BMC ground truth, and every Sat/Unsat
///    answer must survive the independent Verify certification.
///
/// Oracles report Pass / Fail / Skip; Skip means the instance could not
/// exercise the contract (e.g. the formula was unsatisfiable so there is
/// no model to project). Fault-injection hooks let tests confirm that each
/// oracle actually fires; production runs pass no hooks.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_ORACLES_H
#define MUCYC_TESTGEN_ORACLES_H

#include "chc/Chc.h"
#include "smt/SmtSolver.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <string>

namespace mucyc {

/// Test-only fault injection. Each hook post-processes one procedure's
/// output before the oracle inspects it, simulating a bug in that
/// procedure; all hooks are null in production fuzzing.
struct OracleHooks {
  /// Mangles an MBP result, e.g. flips one literal.
  std::function<TermRef(TermContext &, TermRef)> MangleMbp;
  /// Mangles an interpolant, e.g. truncates it to one literal.
  std::function<TermRef(TermContext &, TermRef)> MangleItp;
  /// Mangles one engine's verdict, e.g. flips Sat to Unsat.
  std::function<ChcStatus(size_t MemberIdx, ChcStatus)> MangleEngine;
  /// Mangles the incremental solver's verdict at one check of an
  /// IncrementalEquivalence script, e.g. flips Sat to Unsat.
  std::function<SmtStatus(unsigned CheckIdx, SmtStatus)> MangleIncVerdict;
};

enum class OracleStatus { Pass, Fail, Skip };

/// Outcome of one oracle run. On Fail, Check is a stable machine-readable
/// tag for the violated contract clause and Detail a human diagnostic;
/// both are deterministic functions of the instance.
struct OracleOutcome {
  OracleStatus Status = OracleStatus::Pass;
  std::string Check;
  std::string Detail;

  bool failed() const { return Status == OracleStatus::Fail; }

  static OracleOutcome pass() { return {}; }
  static OracleOutcome skip(std::string Why) {
    return {OracleStatus::Skip, "", std::move(Why)};
  }
  static OracleOutcome fail(std::string Check, std::string Detail) {
    return {OracleStatus::Fail, std::move(Check), std::move(Detail)};
  }
};

/// Knobs for the engine-agreement oracle.
struct EngineRaceKnobs {
  uint64_t RefineBudget = 300; ///< MaxRefineSteps per engine (deterministic
                               ///< cutoff — never a wall-clock deadline).
  int MaxDepth = 12;           ///< Unfolding cap per engine.
  int BmcDepth = 5;            ///< Ground-truth bounded-reach horizon.
  unsigned Jobs = 0;           ///< Scheduler workers (0 = hardware).
  bool NoIncremental = false;  ///< Force the fresh-solver path in every
                               ///< engine (differential vs. the pool).
};

/// SMT verdict/model/negation/simplify cross-checks on one formula.
OracleOutcome checkSmtFormula(TermContext &Ctx, TermRef F);

/// Definition 1 contract for every MBP strategy on (Phi, Elim); finds the
/// model itself (Skip when Phi is unsat).
OracleOutcome checkMbpContract(TermContext &Ctx, TermRef Phi,
                               const std::vector<VarId> &Elim,
                               const OracleHooks *Hooks = nullptr);

/// Interpolation contract for every ItpMode on A and B = not(/\ CubeLits).
/// Skips unless |= A => B actually holds (callers generate candidates).
OracleOutcome checkItpContract(TermContext &Ctx, TermRef A,
                               const std::vector<TermRef> &CubeLits,
                               const OracleHooks *Hooks = nullptr);

/// IncrementalEquivalence: replays a push/assert/check/pop script on one
/// incremental solver and cross-checks every check() against a fresh
/// one-shot solver rebuilt over the currently active assertions — the
/// verdicts must agree, a Sat model must satisfy every active assertion
/// and assumption, and an unsat core must be a subset of the assumptions
/// that is itself jointly unsat with the active assertions.
///
/// \p Constraints is the marker encoding of the script, one term per op
/// (see the inc domain in Fuzzer.cpp): a term whose free variables include
/// one named with prefix "inc!push" / "inc!pop" / "inc!check" is that
/// scope op (for checks, the marker-free conjuncts are the assumptions);
/// any other term is an assertion. The decoding is total — an unbalanced
/// pop is ignored and a mangled check degrades to an assert — so the ddmin
/// shrinker may drop any clause of a repro.
OracleOutcome
checkIncrementalScript(TermContext &Ctx,
                       const std::vector<TermRef> &Constraints,
                       const OracleHooks *Hooks = nullptr);

/// Races all four engines on \p Sys via the runtime Scheduler (each in a
/// private TermContext rebuilt from printed SMT-LIB2), requires pairwise
/// agreement, agreement with BMC ground truth, and Verify certification of
/// every definitive answer. When \p ConsensusOut is non-null it receives
/// the agreed verdict ("sat" / "unsat" / "unknown"; "n/a" when the oracle
/// failed before a consensus existed) — the cross-mode differential runs
/// byte-compare these lines between the incremental and --no-incremental
/// backends.
OracleOutcome checkEngineAgreement(const ChcSystem &Sys,
                                   const EngineRaceKnobs &Knobs,
                                   const OracleHooks *Hooks = nullptr,
                                   std::string *ConsensusOut = nullptr);

/// Chaos oracle: solves \p Sys twice through the Scheduler — once clean,
/// once with the deterministic FaultInjector armed from \p ChaosSeed (a
/// distinct stream per engine) and the degraded-retry ladder enabled
/// (MaxRetries = 2) — and checks that injected faults only ever DEGRADE an
/// answer (definitive -> Unknown), never corrupt one:
///
///  * a definitive chaos verdict must match the definitive clean verdict
///    of the same engine ("chaos-wrong-verdict");
///  * a definitive chaos verdict must match BMC ground truth
///    ("chaos-ground-truth") and survive Verify ("chaos-verify-cert");
///  * chaos members must not split sat/unsat among themselves
///    ("chaos-disagree").
///
/// Both runs use refine-step budgets only (no wall-clock deadline), so the
/// outcome — including every diagnostic string — is a pure function of
/// (Sys, Knobs, ChaosSeed) and byte-identical across repeated runs.
/// \p Hooks->MangleEngine post-processes the chaos verdicts so tests can
/// confirm the oracle fires.
OracleOutcome checkChaosResilience(const ChcSystem &Sys,
                                   const EngineRaceKnobs &Knobs,
                                   uint64_t ChaosSeed,
                                   const OracleHooks *Hooks = nullptr);

/// Lemma-sharing oracle: solves \p Sys once blind (each engine solo) and
/// once cooperatively (all engines attached to one LemmaExchange bus,
/// importing each other's core-minimized lemmas after re-checking them),
/// and checks that cooperation never corrupts an answer:
///
///  * a definitive cooperative verdict must match the same engine's
///    definitive blind verdict ("share-flip");
///  * a definitive cooperative verdict must match BMC ground truth
///    ("share-ground-truth") and survive Verify ("share-verify-cert");
///  * cooperative members must not split sat/unsat ("share-disagree").
///
/// Members run sequentially in config order (the bus still crosses
/// TermContext boundaries through the wire format, which is what sharing
/// soundness rests on), with refine-step budgets only, so the outcome is a
/// pure function of (Sys, Knobs) and byte-identical across runs — the
/// concurrent half of the bus is exercised by the TSan exchange stress
/// test instead. Degrading to Unknown (either direction) is allowed: the
/// contract is about sat/unsat integrity, not about which member finishes
/// within budget. \p Hooks->MangleEngine post-processes the cooperative
/// verdicts so tests can confirm the oracle fires.
OracleOutcome checkShareCooperation(const ChcSystem &Sys,
                                    const EngineRaceKnobs &Knobs,
                                    const OracleHooks *Hooks = nullptr);

/// Arithmetic fast/slow differential: replays one deterministic operand
/// trace (derived from \p Seed) through every BigInt/Rational operation
/// twice — once on the default representation (small values inline) and
/// once under ScopedForceHeap, which routes everything onto limb vectors —
/// and requires op-for-op identical results, hashes and printed forms. The
/// operand stream is biased toward the representation frontier (±2^31,
/// ±2^62..2^63, multi-limb), where carry/borrow spill bugs live. Fails
/// with "arith-fast-slow-mismatch" naming the first diverging op. Pure
/// function of (Seed, Rounds).
OracleOutcome checkArithFastSlow(uint64_t Seed, unsigned Rounds = 64);

} // namespace mucyc

#endif // MUCYC_TESTGEN_ORACLES_H
