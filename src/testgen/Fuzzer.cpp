//===- testgen/Fuzzer.cpp - Differential fuzzing driver -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Fuzzer.h"

#include "chc/Fingerprint.h"
#include "chc/Parser.h"
#include "support/Fault.h"
#include "testgen/Shrink.h"
#include "testgen/TsGen.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mucyc;

namespace {

bool startsWith(const std::string &S, const char *P) {
  return S.rfind(P, 0) == 0;
}

/// Encodes formulas as a CHC system of query clauses (constraint => false),
/// one per formula — the shrinker and the repro files speak SMT-LIB2 CHC,
/// so formula-level failures are wrapped this way.
std::string queryRepro(TermContext &Ctx, std::vector<TermRef> Constraints) {
  ChcSystem S(Ctx);
  for (TermRef F : Constraints) {
    Clause C;
    C.Constraint = F;
    S.addClause(std::move(C));
  }
  return printSmtLib(S);
}

/// The query-clause constraints of a parsed repro, in clause order.
std::vector<TermRef> queryConstraints(const ChcSystem &S) {
  std::vector<TermRef> Out;
  for (const Clause &C : S.clauses())
    if (C.isQuery())
      Out.push_back(C.Constraint);
  return Out;
}

/// Free variables of \p F marked as MBP-eliminated by the "pe" name prefix
/// (prefixes survive the parser's freshening, which only appends "!n").
std::vector<VarId> mbpElimVars(TermContext &C, TermRef F) {
  std::vector<VarId> E;
  for (VarId V : C.freeVars(F))
    if (startsWith(C.varInfo(V).Name, "pe"))
      E.push_back(V);
  return E;
}

VarPool mergePools(const VarPool &A, const VarPool &B) {
  VarPool P = A;
  P.Ints.insert(P.Ints.end(), B.Ints.begin(), B.Ints.end());
  P.Reals.insert(P.Reals.end(), B.Reals.begin(), B.Reals.end());
  P.Bools.insert(P.Bools.end(), B.Bools.begin(), B.Bools.end());
  return P;
}

/// One generated-and-checked instance. Repro/Refail are set only on Fail;
/// Refail accepts a candidate iff the SAME contract clause still trips, so
/// the shrinker cannot wander onto an unrelated bug.
struct InstanceResult {
  OracleOutcome Out;
  std::string Repro;
  SystemFailPred Refail;
  std::string Verdict; ///< Chc domain only: the engines' consensus.
};

InstanceResult runSmtInstance(Rng &R, const FuzzConfig &Cfg) {
  TermContext Ctx;
  VarPool Pool = genVarPool(Ctx, Cfg.Knobs, "f");
  TermRef F = genFormula(Ctx, R, Cfg.Knobs, Pool);
  InstanceResult IR{checkSmtFormula(Ctx, F), "", nullptr};
  if (IR.Out.failed()) {
    IR.Repro = queryRepro(Ctx, {F});
    IR.Refail = [Check = IR.Out.Check](ChcSystem &S) {
      std::vector<TermRef> Qs = queryConstraints(S);
      if (Qs.size() != 1)
        return false;
      OracleOutcome O = checkSmtFormula(S.ctx(), Qs[0]);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

InstanceResult runMbpInstance(Rng &R, const FuzzConfig &Cfg,
                              const OracleHooks *Hooks) {
  TermContext Ctx;
  // The oracle cross-checks against full QE, whose output (and the implies
  // queries over it) grows steeply with formula size — LIA elimination of a
  // divides-laden depth-3 formula can take seconds. Cap the MBP domain at
  // sizes where the reference stays fast.
  GenKnobs MK = Cfg.Knobs;
  MK.Depth = std::min(MK.Depth, 2u);
  MK.AtomVars = std::min(MK.AtomVars, 2u);
  MK.CoeffMag = std::min<int64_t>(MK.CoeffMag, 4);
  MK.IntVars = std::min(MK.IntVars, 2u);
  MK.RealVars = std::min(MK.RealVars, 1u);
  GenKnobs EK = MK;
  EK.BoolVars = 0; // MBP eliminates arithmetic variables.
  VarPool Pool =
      mergePools(genVarPool(Ctx, EK, "pe"), genVarPool(Ctx, MK, "pk"));
  TermRef Phi = genFormula(Ctx, R, MK, Pool);
  std::vector<VarId> Elim = mbpElimVars(Ctx, Phi);
  InstanceResult IR{checkMbpContract(Ctx, Phi, Elim, Hooks), "", nullptr};
  if (IR.Out.failed()) {
    IR.Repro = queryRepro(Ctx, {Phi});
    IR.Refail = [Check = IR.Out.Check, Hooks](ChcSystem &S) {
      std::vector<TermRef> Qs = queryConstraints(S);
      if (Qs.size() != 1)
        return false;
      std::vector<VarId> E = mbpElimVars(S.ctx(), Qs[0]);
      OracleOutcome O = checkMbpContract(S.ctx(), Qs[0], E, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

InstanceResult runItpInstance(Rng &R, const FuzzConfig &Cfg,
                              const OracleHooks *Hooks) {
  TermContext Ctx;
  GenKnobs SK = Cfg.Knobs;
  SK.BoolVars = 0; // The cube (and thus B) is over numeric shared vars.
  VarPool Shared = genVarPool(Ctx, SK, "s");
  VarPool Pool = mergePools(Shared, genVarPool(Ctx, Cfg.Knobs, "a"));
  if (Shared.Ints.empty() && Shared.Reals.empty())
    return {OracleOutcome::skip("no shared numeric variables configured"),
            "", nullptr};
  TermRef A = genFormula(Ctx, R, Cfg.Knobs, Pool);
  std::vector<TermRef> Cube;
  unsigned NL = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned I = 0; I < NL; ++I) {
    bool UseReal =
        Shared.Ints.empty() || (!Shared.Reals.empty() && R.chance(1, 3));
    TermRef L = genLinAtom(Ctx, R, Cfg.Knobs,
                           UseReal ? Shared.Reals : Shared.Ints,
                           UseReal ? Sort::Real : Sort::Int);
    if (R.oneIn(3))
      L = Ctx.mkNot(L);
    Cube.push_back(L);
  }
  InstanceResult IR{checkItpContract(Ctx, A, Cube, Hooks), "", nullptr};
  if (IR.Out.failed()) {
    // Two query clauses: #0 carries A, #1 carries the cube conjunction.
    IR.Repro = queryRepro(Ctx, {A, Ctx.mkAnd(Cube)});
    IR.Refail = [Check = IR.Out.Check, Hooks](ChcSystem &S) {
      std::vector<TermRef> Qs = queryConstraints(S);
      if (Qs.size() != 2)
        return false;
      TermContext &C = S.ctx();
      std::vector<TermRef> Lits = C.kind(Qs[1]) == Kind::And
                                      ? C.node(Qs[1]).Kids
                                      : std::vector<TermRef>{Qs[1]};
      OracleOutcome O = checkItpContract(C, Qs[0], Lits, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

/// Incremental-equivalence domain: a random push/assert/check/pop script in
/// the marker encoding checkIncrementalScript decodes (each op is one query
/// clause, so the repro is an ordinary CHC file and the ddmin shrinker
/// applies unchanged).
InstanceResult runIncInstance(Rng &R, const FuzzConfig &Cfg,
                              const OracleHooks *Hooks) {
  TermContext Ctx;
  const GenKnobs &K = Cfg.Knobs;
  VarPool Pool = genVarPool(Ctx, K, "iv");
  auto Marker = [&Ctx](const char *Name) {
    return Ctx.mkEq(Ctx.mkFreshVar(Name, Sort::Int), Ctx.mkIntConst(0));
  };
  std::vector<TermRef> Script;
  unsigned Depth = 0;
  unsigned NOps = 4 + static_cast<unsigned>(R.below(9));
  for (unsigned I = 0; I < NOps; ++I) {
    uint64_t W = R.below(10);
    if (W < 4) {
      Script.push_back(genFormula(Ctx, R, K, Pool));
    } else if (W < 6) {
      Script.push_back(Marker("inc!push"));
      ++Depth;
    } else if (W < 7 && Depth > 0) {
      Script.push_back(Marker("inc!pop"));
      --Depth;
    } else {
      std::vector<TermRef> Parts{Marker("inc!check")};
      for (uint64_t A = R.below(3); A > 0 && !Pool.Ints.empty(); --A) {
        TermRef L = genLinAtom(Ctx, R, K, Pool.Ints, Sort::Int);
        Parts.push_back(R.oneIn(3) ? Ctx.mkNot(L) : L);
      }
      Script.push_back(Ctx.mkAnd(std::move(Parts)));
    }
  }
  Script.push_back(Marker("inc!check")); // Always compare at least once.
  InstanceResult IR{checkIncrementalScript(Ctx, Script, Hooks), "", nullptr,
                    ""};
  if (IR.Out.failed()) {
    IR.Repro = queryRepro(Ctx, Script);
    IR.Refail = [Check = IR.Out.Check, Hooks](ChcSystem &S) {
      std::vector<TermRef> Qs = queryConstraints(S);
      if (Qs.empty())
        return false;
      OracleOutcome O = checkIncrementalScript(S.ctx(), Qs, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

InstanceResult runChcInstance(Rng &R, const FuzzConfig &Cfg,
                              const OracleHooks *Hooks) {
  TermContext Ctx;
  GenKnobs K = Cfg.Knobs;
  K.RealChc = R.oneIn(4);
  ChcSystem Sys = genLinearChc(Ctx, R, K);
  InstanceResult IR;
  IR.Out = checkEngineAgreement(Sys, Cfg.Race, Hooks, &IR.Verdict);
  if (IR.Out.failed()) {
    IR.Repro = printSmtLib(Sys);
    IR.Refail = [Check = IR.Out.Check, Hooks, Race = Cfg.Race](ChcSystem &S) {
      OracleOutcome O = checkEngineAgreement(S, Race, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

/// Chaos domain: the clean-vs-fault-injected differential on a generated
/// CHC system. The per-instance chaos seed is threaded into Refail so the
/// shrinker replays the exact fault schedule.
InstanceResult runChaosInstance(Rng &R, const FuzzConfig &Cfg, unsigned I,
                                const OracleHooks *Hooks) {
  TermContext Ctx;
  GenKnobs K = Cfg.Knobs;
  K.RealChc = R.oneIn(4);
  ChcSystem Sys = genLinearChc(Ctx, R, K);
  uint64_t CS = mixSeed(Cfg.ChaosSeed ? Cfg.ChaosSeed : Cfg.Seed, I);
  InstanceResult IR;
  IR.Out = checkChaosResilience(Sys, Cfg.Race, CS, Hooks);
  if (IR.Out.failed()) {
    IR.Repro = printSmtLib(Sys);
    IR.Refail = [Check = IR.Out.Check, Hooks, Race = Cfg.Race,
                 CS](ChcSystem &S) {
      OracleOutcome O = checkChaosResilience(S, Race, CS, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

/// Share domain: the blind-vs-cooperative differential on a generated CHC
/// system — sharing must never flip a verdict, only (at worst) degrade one
/// to Unknown. Deterministic per (Seed, i, knobs): the oracle runs its
/// members sequentially on one bus.
InstanceResult runShareInstance(Rng &R, const FuzzConfig &Cfg,
                                const OracleHooks *Hooks) {
  TermContext Ctx;
  GenKnobs K = Cfg.Knobs;
  K.RealChc = R.oneIn(4);
  ChcSystem Sys = genLinearChc(Ctx, R, K);
  InstanceResult IR;
  IR.Out = checkShareCooperation(Sys, Cfg.Race, Hooks);
  if (IR.Out.failed()) {
    IR.Repro = printSmtLib(Sys);
    IR.Refail = [Check = IR.Out.Check, Hooks, Race = Cfg.Race](ChcSystem &S) {
      OracleOutcome O = checkShareCooperation(S, Race, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

/// Ts domain: a generated BTOR2 transition system is pushed through the
/// frontend's own round-trip properties — the program must parse (the
/// generator promises validity), re-print byte-identically, and encode to
/// alpha-equivalent CHC systems from independent contexts — before the
/// encoded system faces the same four-engine race + BMC + Verify oracle as
/// the chc domain. Frontend-property failures carry the BTOR2 text as the
/// repro (there is no CHC to shrink); race failures shrink like chc ones.
InstanceResult runTsInstance(Rng &R, const FuzzConfig &Cfg,
                             const OracleHooks *Hooks) {
  Btor2Program Prog = genBtor2(R, TsGenKnobs{});
  std::string Text = printBtor2(Prog);
  InstanceResult IR;

  TermContext Ctx;
  Btor2Result BR = parseBtor2(Ctx, Text);
  if (!BR.Ok) {
    IR.Out = OracleOutcome::fail("ts-gen-parse",
                                 "generated program rejected: " + BR.Error);
    IR.Repro = Text;
    return IR;
  }
  if (printBtor2(BR.Program) != Text) {
    IR.Out = OracleOutcome::fail(
        "ts-print-roundtrip",
        "print(parse(print(P))) differs from print(P)");
    IR.Repro = Text;
    return IR;
  }
  ChcSystem Sys = BR.Ts->encodeChc();
  // Encoding must be alpha-canonical: a fresh context re-parse mints
  // different VarIds and interning orders, but the normalized fingerprint
  // may not move.
  {
    TermContext Ctx2;
    Btor2Result BR2 = parseBtor2(Ctx2, Text);
    ChcSystem Sys2 = BR2.Ts->encodeChc();
    std::string F1 = fingerprintNormalized(Ctx, normalize(Sys).Sys).hex();
    std::string F2 = fingerprintNormalized(Ctx2, normalize(Sys2).Sys).hex();
    if (F1 != F2) {
      IR.Out = OracleOutcome::fail("ts-roundtrip-fingerprint",
                                   "re-encode fingerprint mismatch: " + F1 +
                                       " vs " + F2);
      IR.Repro = Text;
      return IR;
    }
  }
  IR.Out = checkEngineAgreement(Sys, Cfg.Race, Hooks, &IR.Verdict);
  if (IR.Out.failed()) {
    IR.Repro = printSmtLib(Sys);
    IR.Refail = [Check = IR.Out.Check, Hooks, Race = Cfg.Race](ChcSystem &S) {
      OracleOutcome O = checkEngineAgreement(S, Race, Hooks);
      return O.failed() && O.Check == Check;
    };
  }
  return IR;
}

/// Arith domain: the fast-vs-forced-heap representation differential on a
/// deterministic operand trace. There is no SMT-LIB2 repro to shrink — the
/// oracle's Detail names the trace seed and first diverging op, which is
/// the whole reproduction recipe.
InstanceResult runArithInstance(Rng &R) {
  uint64_t TraceSeed = R.next();
  InstanceResult IR;
  IR.Out = checkArithFastSlow(TraceSeed);
  return IR;
}

std::vector<const char *> enabledDomains(const FuzzDomains &D) {
  std::vector<const char *> Out;
  if (D.Smt)
    Out.push_back("smt");
  if (D.Mbp)
    Out.push_back("mbp");
  if (D.Itp)
    Out.push_back("itp");
  if (D.Chc)
    Out.push_back("chc");
  if (D.Inc)
    Out.push_back("inc");
  if (D.Chaos)
    Out.push_back("chaos");
  if (D.Share)
    Out.push_back("share");
  if (D.Arith)
    Out.push_back("arith");
  if (D.Ts)
    Out.push_back("ts");
  return Out;
}

} // namespace

FuzzReport mucyc::runFuzz(const FuzzConfig &Cfg, const OracleHooks *Hooks) {
  FuzzReport Rep;
  std::vector<const char *> Domains = enabledDomains(Cfg.Domains);
  if (Domains.empty())
    return Rep;
  for (unsigned I = 0; I < Cfg.N; ++I) {
    std::string Dom = Domains[I % Domains.size()];
    Rng R(Rng::deriveSeed(Cfg.Seed, I));
    InstanceResult IR;
    // Every solver entry point owns an error boundary, so a typed error
    // (or any exception) escaping to this loop is itself a bug: report it
    // as a violation of the instance instead of aborting the campaign.
    try {
      IR = Dom == "smt"     ? runSmtInstance(R, Cfg)
           : Dom == "mbp"   ? runMbpInstance(R, Cfg, Hooks)
           : Dom == "itp"   ? runItpInstance(R, Cfg, Hooks)
           : Dom == "inc"   ? runIncInstance(R, Cfg, Hooks)
           : Dom == "chaos" ? runChaosInstance(R, Cfg, I, Hooks)
           : Dom == "share" ? runShareInstance(R, Cfg, Hooks)
           : Dom == "arith" ? runArithInstance(R)
           : Dom == "ts"    ? runTsInstance(R, Cfg, Hooks)
                            : runChcInstance(R, Cfg, Hooks);
    } catch (const MucycError &E) {
      IR = InstanceResult{
          OracleOutcome::fail("uncaught-typed-error", E.info().describe()),
          "", nullptr, ""};
    } catch (const std::exception &E) {
      IR = InstanceResult{OracleOutcome::fail("uncaught-exception", E.what()),
                          "", nullptr, ""};
    }
    ++Rep.Ran;
    if (!IR.Verdict.empty())
      Rep.ChcVerdicts.push_back("instance=" + std::to_string(I) +
                                " verdict=" + IR.Verdict);
    if (IR.Out.Status == OracleStatus::Pass) {
      ++Rep.Passed;
      continue;
    }
    if (IR.Out.Status == OracleStatus::Skip) {
      ++Rep.Skipped;
      continue;
    }
    FuzzViolation V;
    V.Instance = I;
    V.Domain = Dom;
    V.Check = IR.Out.Check;
    V.Detail = IR.Out.Detail;
    V.Repro = IR.Repro;
    if (Cfg.Shrink && IR.Refail)
      V.Repro = shrinkChc(V.Repro, IR.Refail, Cfg.ShrinkAttempts);
    if (!Cfg.ReproDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Cfg.ReproDir, EC);
      V.ReproPath = Cfg.ReproDir + "/repro-" + Dom + "-" +
                    std::to_string(I) + ".smt2";
      std::ofstream OS(V.ReproPath);
      OS << V.Repro;
    }
    Rep.Violations.push_back(std::move(V));
  }
  return Rep;
}

std::string FuzzReport::summary(const FuzzConfig &Cfg) const {
  std::ostringstream OS;
  OS << "mucyc-fuzz seed=" << Cfg.Seed << " n=" << Cfg.N << " domains=";
  std::vector<const char *> Domains = enabledDomains(Cfg.Domains);
  for (size_t I = 0; I < Domains.size(); ++I)
    OS << (I ? "," : "") << Domains[I];
  OS << "\nran=" << Ran << " passed=" << Passed << " skipped=" << Skipped
     << " violations=" << Violations.size() << "\n";
  for (const FuzzViolation &V : Violations) {
    OS << "--- violation instance=" << V.Instance << " domain=" << V.Domain
       << " check=" << V.Check << "\n"
       << V.Detail << "\nrepro";
    if (!V.ReproPath.empty())
      OS << " (" << V.ReproPath << ")";
    OS << ":\n" << V.Repro;
    if (V.Repro.empty() || V.Repro.back() != '\n')
      OS << "\n";
  }
  OS << "verdict: " << (ok() ? "OK" : "VIOLATIONS") << "\n";
  return OS.str();
}
