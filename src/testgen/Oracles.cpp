//===- testgen/Oracles.cpp - Differential and metamorphic oracles ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Oracles.h"

#include "chc/Parser.h"
#include "chc/Preprocess.h"
#include "itp/Interpolate.h"
#include "mbp/Qe.h"
#include "runtime/Exchange.h"
#include "runtime/Scheduler.h"
#include "smt/SmtSolver.h"
#include "support/BigInt.h"
#include "support/Fault.h"

#include <algorithm>
#include <iterator>

using namespace mucyc;

namespace {

/// Lemma budget for oracle-side SMT queries. Generated instances are tiny;
/// a formula that exhausts this is pathological and the instance is
/// skipped rather than risking the quickCheck/implies Unknown assertion.
constexpr uint64_t OracleLemmaBudget = 200000;

/// Budgeted one-shot check that reports Unknown instead of asserting.
SmtStatus budgetedCheck(TermContext &Ctx, const std::vector<TermRef> &Conj,
                        Model *ModelOut = nullptr) {
  SmtSolver S(Ctx);
  S.setLemmaBudget(OracleLemmaBudget);
  for (TermRef T : Conj)
    S.assertFormula(T);
  SmtStatus St = S.check();
  if (St == SmtStatus::Sat && ModelOut)
    *ModelOut = S.model();
  return St;
}

} // namespace

//===----------------------------------------------------------------------===
// SMT oracle
//===----------------------------------------------------------------------===

OracleOutcome mucyc::checkSmtFormula(TermContext &Ctx, TermRef F) {
  Model M;
  SmtStatus SF = budgetedCheck(Ctx, {F}, &M);
  if (SF == SmtStatus::Unknown)
    return OracleOutcome::skip("solver exhausted its budget on F");
  if (SF == SmtStatus::Sat && !M.holds(Ctx, F))
    return OracleOutcome::fail(
        "smt-model", "sat verdict but the model " + M.toString(Ctx) +
                         " evaluates F to false; F = " + Ctx.toString(F));

  TermRef NotF = Ctx.mkNot(F);
  Model MN;
  SmtStatus SN = budgetedCheck(Ctx, {NotF}, &MN);
  if (SN == SmtStatus::Unknown)
    return OracleOutcome::skip("solver exhausted its budget on not F");
  if (SN == SmtStatus::Sat && !MN.holds(Ctx, NotF))
    return OracleOutcome::fail(
        "smt-model", "sat verdict but the model " + MN.toString(Ctx) +
                         " evaluates not(F) to false; F = " +
                         Ctx.toString(F));
  if (SF == SmtStatus::Unsat && SN == SmtStatus::Unsat)
    return OracleOutcome::fail(
        "smt-excluded-middle",
        "both F and not(F) reported unsat; F = " + Ctx.toString(F));

  // Metamorphic: simplification must preserve the verdict.
  TermRef FS = Ctx.simplify(F);
  if (FS != F) {
    SmtStatus SS = budgetedCheck(Ctx, {FS});
    if (SS != SmtStatus::Unknown && SS != SF)
      return OracleOutcome::fail(
          "smt-simplify",
          "simplify changed the verdict from " +
              std::string(SF == SmtStatus::Sat ? "sat" : "unsat") + " to " +
              std::string(SS == SmtStatus::Sat ? "sat" : "unsat") +
              "; F = " + Ctx.toString(F));
  }
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// MBP oracle (Definition 1)
//===----------------------------------------------------------------------===

OracleOutcome mucyc::checkMbpContract(TermContext &Ctx, TermRef Phi,
                                      const std::vector<VarId> &Elim,
                                      const OracleHooks *Hooks) {
  Model M;
  SmtStatus St = budgetedCheck(Ctx, {Phi}, &M);
  if (St != SmtStatus::Sat)
    return OracleOutcome::skip("phi is unsat or over budget: no model to "
                               "project");
  if (!M.holds(Ctx, Phi))
    return OracleOutcome::fail(
        "smt-model", "model " + M.toString(Ctx) +
                         " does not satisfy phi = " + Ctx.toString(Phi));

  // Reference: full quantifier elimination, cross-checked independently —
  // phi must imply its own projection (exists-introduction), and the model
  // must stay inside it.
  TermRef Exists = qeExists(Ctx, Elim, Phi);
  if (!SmtSolver::implies(Ctx, Phi, Exists))
    return OracleOutcome::fail(
        "qe-under", "QE(exists x. phi) misses phi itself: phi = " +
                        Ctx.toString(Phi) + ", QE = " +
                        Ctx.toString(Exists));
  if (!M.holds(Ctx, Exists))
    return OracleOutcome::fail(
        "qe-model", "model " + M.toString(Ctx) +
                        " falls outside QE(exists x. phi) = " +
                        Ctx.toString(Exists));

  for (MbpStrategy Strat : {MbpStrategy::LazyProject,
                            MbpStrategy::ModelDiagram, MbpStrategy::FullQe}) {
    TermRef Psi = mbp(Ctx, Strat, Elim, Phi, M);
    if (Hooks && Hooks->MangleMbp)
      Psi = Hooks->MangleMbp(Ctx, Psi);
    std::string Tag = mbpStrategyName(Strat);
    // M |= psi.
    if (!M.holds(Ctx, Psi))
      return OracleOutcome::fail(
          "mbp-model", Tag + ": model " + M.toString(Ctx) +
                           " does not satisfy the projection " +
                           Ctx.toString(Psi));
    // vars(psi) disjoint from the eliminated tuple.
    for (VarId V : Ctx.freeVars(Psi))
      if (std::find(Elim.begin(), Elim.end(), V) != Elim.end())
        return OracleOutcome::fail(
            "mbp-vars", Tag + ": projection mentions eliminated variable " +
                            Ctx.varInfo(V).Name + ": " + Ctx.toString(Psi));
    // psi => exists x. phi.
    if (!SmtSolver::implies(Ctx, Psi, Exists))
      return OracleOutcome::fail(
          "mbp-implies-exists",
          Tag + ": projection is not an under-approximation: psi = " +
              Ctx.toString(Psi) + " does not imply QE = " +
              Ctx.toString(Exists));
  }
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// Interpolation oracle
//===----------------------------------------------------------------------===

OracleOutcome mucyc::checkItpContract(TermContext &Ctx, TermRef A,
                                      const std::vector<TermRef> &CubeLits,
                                      const OracleHooks *Hooks) {
  TermRef Cube = Ctx.mkAnd(CubeLits);
  TermRef B = Ctx.mkNot(Cube);
  // Precondition |= A => B, i.e. A /\ cube unsat. Callers generate cube
  // candidates; reject the ones that do not block.
  SmtStatus Pre = budgetedCheck(Ctx, {A, Cube});
  if (Pre != SmtStatus::Unsat)
    return OracleOutcome::skip("A /\\ cube is satisfiable (or over "
                               "budget): Itp precondition fails");

  for (ItpMode Mode :
       {ItpMode::CubeGeneralize, ItpMode::QeStrongest, ItpMode::WeakestB}) {
    TermRef I = interpolate(Ctx, A, B, Mode);
    if (Hooks && Hooks->MangleItp)
      I = Hooks->MangleItp(Ctx, I);
    std::string Tag = Mode == ItpMode::CubeGeneralize ? "CubeGeneralize"
                      : Mode == ItpMode::QeStrongest  ? "QeStrongest"
                                                      : "WeakestB";
    if (!SmtSolver::implies(Ctx, A, I))
      return OracleOutcome::fail(
          "itp-a-implies-i", Tag + ": A does not imply the interpolant; "
                                   "A = " + Ctx.toString(A) + ", I = " +
                                   Ctx.toString(I));
    if (!SmtSolver::implies(Ctx, I, B))
      return OracleOutcome::fail(
          "itp-i-implies-b", Tag + ": interpolant does not imply B; I = " +
                                 Ctx.toString(I) + ", B = " +
                                 Ctx.toString(B));
    std::vector<VarId> BVars = Ctx.freeVars(B);
    for (VarId V : Ctx.freeVars(I))
      if (std::find(BVars.begin(), BVars.end(), V) == BVars.end())
        return OracleOutcome::fail(
            "itp-vocab", Tag + ": interpolant mentions " +
                             Ctx.varInfo(V).Name +
                             ", which is not a variable of B; I = " +
                             Ctx.toString(I));
  }
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// IncrementalEquivalence oracle
//===----------------------------------------------------------------------===

namespace {

bool nameStartsWith(const std::string &S, const char *P) {
  return S.rfind(P, 0) == 0;
}

/// One decoded script op.
struct IncOp {
  enum Kind { Push, Pop, Assert, Check } K = Assert;
  TermRef F;                      ///< Assert payload.
  std::vector<TermRef> Assumps;   ///< Check assumptions.
};

/// True iff some free variable of \p F carries the marker \p Prefix.
bool hasMarkerVar(TermContext &Ctx, TermRef F, const char *Prefix) {
  for (VarId V : Ctx.freeVars(F))
    if (nameStartsWith(Ctx.varInfo(V).Name, Prefix))
      return true;
  return false;
}

/// Decodes one constraint into a script op; see the header comment on
/// checkIncrementalScript for the encoding. Total by design: the shrinker
/// hands this arbitrary subsets of conjuncts.
IncOp decodeIncOp(TermContext &Ctx, TermRef F) {
  IncOp Op;
  if (hasMarkerVar(Ctx, F, "inc!push")) {
    Op.K = IncOp::Push;
    return Op;
  }
  if (hasMarkerVar(Ctx, F, "inc!pop")) {
    Op.K = IncOp::Pop;
    return Op;
  }
  if (hasMarkerVar(Ctx, F, "inc!check")) {
    Op.K = IncOp::Check;
    // Assumptions: the conjuncts free of marker variables.
    std::vector<TermRef> Conjs = Ctx.kind(F) == Kind::And
                                     ? Ctx.node(F).Kids
                                     : std::vector<TermRef>{F};
    for (TermRef T : Conjs)
      if (!hasMarkerVar(Ctx, T, "inc!"))
        Op.Assumps.push_back(T);
    return Op;
  }
  Op.K = IncOp::Assert;
  Op.F = F;
  return Op;
}

} // namespace

OracleOutcome
mucyc::checkIncrementalScript(TermContext &Ctx,
                              const std::vector<TermRef> &Constraints,
                              const OracleHooks *Hooks) {
  const bool Mangled = Hooks && Hooks->MangleIncVerdict;
  SmtSolver Inc(Ctx);
  Inc.setLemmaBudget(OracleLemmaBudget);
  // Assertions active per open scope; concatenated they are exactly what a
  // fresh one-shot solver must see at each check.
  std::vector<std::vector<TermRef>> Frames(1);
  unsigned CheckIdx = 0, Compared = 0;
  for (TermRef C : Constraints) {
    IncOp Op = decodeIncOp(Ctx, C);
    switch (Op.K) {
    case IncOp::Push:
      Inc.push();
      Frames.emplace_back();
      break;
    case IncOp::Pop:
      if (Frames.size() > 1) { // Unbalanced pop (shrunk script): ignore.
        Inc.pop();
        Frames.pop_back();
      }
      break;
    case IncOp::Assert:
      Inc.assertFormula(Op.F);
      Frames.back().push_back(Op.F);
      break;
    case IncOp::Check: {
      unsigned Idx = CheckIdx++;
      std::vector<TermRef> Active;
      for (const std::vector<TermRef> &Fr : Frames)
        Active.insert(Active.end(), Fr.begin(), Fr.end());
      std::vector<TermRef> All = Active;
      All.insert(All.end(), Op.Assumps.begin(), Op.Assumps.end());

      SmtStatus IncSt = Inc.check(Op.Assumps);
      SmtStatus Reported =
          Mangled ? Hooks->MangleIncVerdict(Idx, IncSt) : IncSt;
      SmtStatus Ref = budgetedCheck(Ctx, All);
      if (Reported == SmtStatus::Unknown || Ref == SmtStatus::Unknown)
        break; // Either side over budget: this check is not comparable.
      ++Compared;
      auto Name = [](SmtStatus S) {
        return S == SmtStatus::Sat ? "sat" : "unsat";
      };
      if (Reported != Ref)
        return OracleOutcome::fail(
            "inc-verdict",
            "check #" + std::to_string(Idx) + ": incremental says " +
                Name(Reported) + ", one-shot rebuild says " + Name(Ref));
      if (Mangled)
        break; // Model/core no longer correspond to the mangled verdict.
      if (IncSt == SmtStatus::Sat) {
        const Model &M = Inc.model();
        for (TermRef T : All)
          if (!M.holds(Ctx, T))
            return OracleOutcome::fail(
                "inc-model", "check #" + std::to_string(Idx) +
                                 ": incremental model " + M.toString(Ctx) +
                                 " does not satisfy " + Ctx.toString(T));
      } else {
        const std::vector<TermRef> &Core = Inc.unsatCore();
        for (TermRef T : Core)
          if (std::find(Op.Assumps.begin(), Op.Assumps.end(), T) ==
              Op.Assumps.end())
            return OracleOutcome::fail(
                "inc-core-subset",
                "check #" + std::to_string(Idx) +
                    ": core mentions a non-assumption: " + Ctx.toString(T));
        std::vector<TermRef> CoreQ = Active;
        CoreQ.insert(CoreQ.end(), Core.begin(), Core.end());
        if (budgetedCheck(Ctx, CoreQ) == SmtStatus::Sat)
          return OracleOutcome::fail(
              "inc-core-unsound",
              "check #" + std::to_string(Idx) +
                  ": assertions plus the reported core are satisfiable");
      }
      break;
    }
    }
  }
  if (Compared == 0)
    return OracleOutcome::skip("no check was comparable within budget");
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// Engine-agreement oracle
//===----------------------------------------------------------------------===

namespace {

const char *EngineConfigs[] = {"Ret(T,MBP(1))", "Yld(T,MBP(1))",
                               "SpacerTS(fig1)", "Solve"};

/// The frontend pipeline every racer runs in its private context. Falls
/// back to the unpreprocessed system when resolution eliminates every
/// predicate (normalize requires at least one).
NormalizedChc buildPipeline(ChcSystem &Orig) {
  ChcSystem Work = preprocess(Orig);
  if (Work.numPreds() == 0)
    return normalize(Orig).Sys;
  return normalize(Work).Sys;
}

} // namespace

OracleOutcome mucyc::checkEngineAgreement(const ChcSystem &Sys,
                                          const EngineRaceKnobs &Knobs,
                                          const OracleHooks *Hooks,
                                          std::string *ConsensusOut) {
  if (ConsensusOut)
    *ConsensusOut = "n/a";
  // The racers rebuild the system from printed SMT-LIB2 in their private
  // contexts (hash consing is not thread-safe), which doubles as a
  // print/parse round-trip check on every generated system.
  std::string Text = printSmtLib(Sys);
  {
    TermContext Probe;
    ParseResult PR = parseChc(Probe, Text);
    if (!PR.Ok)
      return OracleOutcome::fail(
          "print-parse", "printSmtLib output does not re-parse: " +
                             PR.Error + "\n" + Text);
  }

  // Ground truth on the local copy, through the same preprocess pipeline.
  ChcSystem Local = Sys;
  TermContext &Ctx = Local.ctx();
  NormalizedChc N = buildPipeline(Local);
  ChcStatus Truth = bmcStatus(Ctx, N, Knobs.BmcDepth);

  std::vector<SolveRequest> Batch;
  for (const char *Name : EngineConfigs) {
    auto Opts = SolverOptions::parse(Name);
    assert(Opts && "bad engine config name");
    Opts->MaxRefineSteps = Knobs.RefineBudget;
    Opts->MaxDepth = Knobs.MaxDepth;
    Opts->VerifyResult = true;
    Opts->NoIncremental = Knobs.NoIncremental;
    SolveRequest R = SolveRequest::fromBuilder(
        [Text](TermContext &C) {
          ParseResult PR = parseChc(C, Text);
          assert(PR.Ok && "probe-validated text failed to parse");
          return buildPipeline(*PR.System);
        },
        *Opts);
    // No wall-clock deadline: the refine-step budget is the cutoff, so a
    // job's status is a deterministic function of the instance. NoStore
    // keeps oracle verdicts independent of any result cache.
    R.NoStore = true;
    Batch.push_back(std::move(R));
  }
  Scheduler Sched(Knobs.Jobs);
  std::vector<SolveResponse> Out = Sched.run(Batch);

  std::vector<ChcStatus> Statuses;
  for (size_t I = 0; I < Out.size(); ++I) {
    ChcStatus S = Out[I].Status;
    if (Hooks && Hooks->MangleEngine)
      S = Hooks->MangleEngine(I, S);
    else if (Out[I].VerifyFailed)
      // With the hook active the mangled status no longer corresponds to
      // the in-job verification, so this check only runs unhooked.
      return OracleOutcome::fail(
          "verify-cert", std::string(EngineConfigs[I]) +
                             " produced an answer refuted by independent "
                             "verification — " + Out[I].VerifyNote);
    Statuses.push_back(S);
  }

  auto Describe = [&] {
    std::string D;
    for (size_t I = 0; I < Statuses.size(); ++I)
      D += std::string(I ? ", " : "") + EngineConfigs[I] + "=" +
           chcStatusName(Statuses[I]);
    D += std::string(", bmc=") + chcStatusName(Truth);
    return D;
  };

  bool AnySat = false, AnyUnsat = false;
  for (ChcStatus S : Statuses) {
    AnySat |= S == ChcStatus::Sat;
    AnyUnsat |= S == ChcStatus::Unsat;
  }
  if (ConsensusOut && !(AnySat && AnyUnsat))
    *ConsensusOut = AnySat ? "sat" : AnyUnsat ? "unsat" : "unknown";
  if (AnySat && AnyUnsat)
    return OracleOutcome::fail("engine-disagree",
                               "engines split sat/unsat: " + Describe());
  if (Truth != ChcStatus::Unknown)
    for (ChcStatus S : Statuses)
      if (S != ChcStatus::Unknown && S != Truth)
        return OracleOutcome::fail(
            "ground-truth",
            "engine verdict contradicts BMC ground truth: " + Describe());
  if (!AnySat && !AnyUnsat && Truth == ChcStatus::Unknown)
    return OracleOutcome::skip("no engine and no BMC verdict within "
                               "budget");
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// Chaos-resilience oracle
//===----------------------------------------------------------------------===

OracleOutcome mucyc::checkChaosResilience(const ChcSystem &Sys,
                                          const EngineRaceKnobs &Knobs,
                                          uint64_t ChaosSeed,
                                          const OracleHooks *Hooks) {
  std::string Text = printSmtLib(Sys);
  {
    TermContext Probe;
    ParseResult PR = parseChc(Probe, Text);
    if (!PR.Ok)
      return OracleOutcome::fail(
          "print-parse", "printSmtLib output does not re-parse: " +
                             PR.Error + "\n" + Text);
  }

  ChcSystem Local = Sys;
  TermContext &Ctx = Local.ctx();
  NormalizedChc N = buildPipeline(Local);
  ChcStatus Truth = bmcStatus(Ctx, N, Knobs.BmcDepth);

  // Two batches over the same engines: clean, and fault-injected with the
  // degraded-retry ladder enabled. Refine-step budgets only — the verdicts
  // are deterministic functions of (Sys, Knobs, ChaosSeed).
  auto MakeBatch = [&](bool Chaos) {
    std::vector<SolveRequest> Batch;
    for (size_t E = 0; E < std::size(EngineConfigs); ++E) {
      auto Opts = SolverOptions::parse(EngineConfigs[E]);
      assert(Opts && "bad engine config name");
      Opts->MaxRefineSteps = Knobs.RefineBudget;
      Opts->MaxDepth = Knobs.MaxDepth;
      Opts->VerifyResult = true;
      Opts->NoIncremental = Knobs.NoIncremental;
      if (Chaos) {
        uint64_t S = mixSeed(ChaosSeed, E + 1);
        Opts->ChaosSeed = S ? S : 1;
        Opts->MaxRetries = 2;
      }
      SolveRequest R = SolveRequest::fromBuilder(
          [Text](TermContext &C) {
            ParseResult PR = parseChc(C, Text);
            assert(PR.Ok && "probe-validated text failed to parse");
            return buildPipeline(*PR.System);
          },
          *Opts);
      R.NoStore = true;
      Batch.push_back(std::move(R));
    }
    return Batch;
  };
  Scheduler Sched(Knobs.Jobs);
  std::vector<SolveResponse> Ref = Sched.run(MakeBatch(false));
  std::vector<SolveResponse> Cha = Sched.run(MakeBatch(true));

  const bool Mangled = Hooks && Hooks->MangleEngine;
  std::vector<ChcStatus> ChaosSt;
  for (size_t I = 0; I < Cha.size(); ++I) {
    ChcStatus S = Cha[I].Status;
    if (Mangled)
      S = Hooks->MangleEngine(I, S);
    else if (Cha[I].VerifyFailed)
      // Mangled statuses no longer correspond to in-job verification.
      return OracleOutcome::fail(
          "chaos-verify-cert",
          std::string(EngineConfigs[I]) +
              " answered under fault injection but the answer was refuted "
              "by independent verification — " + Cha[I].VerifyNote);
    ChaosSt.push_back(S);
  }

  auto Describe = [&](size_t I) {
    return std::string(EngineConfigs[I]) + ": clean=" +
           chcStatusName(Ref[I].Status) + ", chaos=" +
           chcStatusName(ChaosSt[I]) + ", bmc=" + chcStatusName(Truth) +
           (Cha[I].Error.isError()
                ? ", chaos error: " + Cha[I].Error.describe()
                : std::string());
  };

  bool AnySat = false, AnyUnsat = false, AnyDefinitive = false;
  for (size_t I = 0; I < ChaosSt.size(); ++I) {
    ChcStatus CS = ChaosSt[I];
    AnySat |= CS == ChcStatus::Sat;
    AnyUnsat |= CS == ChcStatus::Unsat;
    AnyDefinitive |= Ref[I].Status != ChcStatus::Unknown;
    if (CS == ChcStatus::Unknown)
      continue; // Degrading to Unknown under faults is always allowed.
    AnyDefinitive = true;
    if (Ref[I].Status != ChcStatus::Unknown && CS != Ref[I].Status)
      return OracleOutcome::fail(
          "chaos-wrong-verdict",
          "fault injection flipped a definitive verdict — " + Describe(I));
    if (Truth != ChcStatus::Unknown && CS != Truth)
      return OracleOutcome::fail(
          "chaos-ground-truth",
          "verdict under fault injection contradicts BMC ground truth — " +
              Describe(I));
  }
  if (AnySat && AnyUnsat)
    return OracleOutcome::fail(
        "chaos-disagree", "fault-injected engines split sat/unsat: " +
                              Describe(0) + "; " + Describe(1) + "; " +
                              Describe(2) + "; " + Describe(3));
  if (!AnyDefinitive && Truth == ChcStatus::Unknown)
    return OracleOutcome::skip("no definitive verdict with or without "
                               "fault injection");
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// Lemma-sharing oracle
//===----------------------------------------------------------------------===

OracleOutcome mucyc::checkShareCooperation(const ChcSystem &Sys,
                                           const EngineRaceKnobs &Knobs,
                                           const OracleHooks *Hooks) {
  std::string Text = printSmtLib(Sys);
  {
    TermContext Probe;
    ParseResult PR = parseChc(Probe, Text);
    if (!PR.Ok)
      return OracleOutcome::fail(
          "print-parse", "printSmtLib output does not re-parse: " +
                             PR.Error + "\n" + Text);
  }

  ChcSystem Local = Sys;
  TermContext &Ctx = Local.ctx();
  NormalizedChc N = buildPipeline(Local);
  ChcStatus Truth = bmcStatus(Ctx, N, Knobs.BmcDepth);

  // Two sequential sweeps over the same engines: blind (each solo), then
  // cooperative (all on one bus, in config order — earlier members publish
  // into later members' first import rounds, and every member re-reads the
  // log at each frame boundary). Sequential execution keeps the outcome a
  // pure function of (Sys, Knobs); the bus's thread-safety is exercised by
  // the exchange stress test, not here.
  auto RunMembers = [&](bool Share) {
    std::vector<SolveResponse> Out;
    LemmaExchange Bus(std::size(EngineConfigs));
    for (size_t E = 0; E < std::size(EngineConfigs); ++E) {
      auto Opts = SolverOptions::parse(EngineConfigs[E]);
      assert(Opts && "bad engine config name");
      Opts->MaxRefineSteps = Knobs.RefineBudget;
      Opts->MaxDepth = Knobs.MaxDepth;
      Opts->VerifyResult = true;
      Opts->NoIncremental = Knobs.NoIncremental;
      if (Share) {
        Opts->ShareLemmas = true;
        Opts->Share = Bus.port(E);
      }
      SolveRequest R = SolveRequest::fromBuilder(
          [Text](TermContext &C) {
            ParseResult PR = parseChc(C, Text);
            assert(PR.Ok && "probe-validated text failed to parse");
            return buildPipeline(*PR.System);
          },
          *Opts);
      R.NoStore = true;
      Out.push_back(solveRequest(R, nullptr, nullptr));
    }
    return Out;
  };
  std::vector<SolveResponse> Blind = RunMembers(false);
  std::vector<SolveResponse> Coop = RunMembers(true);

  const bool Mangled = Hooks && Hooks->MangleEngine;
  std::vector<ChcStatus> CoopSt;
  for (size_t I = 0; I < Coop.size(); ++I) {
    ChcStatus S = Coop[I].Status;
    if (Mangled)
      S = Hooks->MangleEngine(I, S);
    else if (Coop[I].VerifyFailed)
      // Mangled statuses no longer correspond to in-job verification.
      return OracleOutcome::fail(
          "share-verify-cert",
          std::string(EngineConfigs[I]) +
              " answered with lemma sharing but the answer was refuted by "
              "independent verification — " + Coop[I].VerifyNote);
    CoopSt.push_back(S);
  }

  auto Describe = [&](size_t I) {
    return std::string(EngineConfigs[I]) + ": blind=" +
           chcStatusName(Blind[I].Status) + ", coop=" +
           chcStatusName(CoopSt[I]) + ", bmc=" + chcStatusName(Truth) +
           (Coop[I].Error.isError()
                ? ", coop error: " + Coop[I].Error.describe()
                : std::string());
  };

  bool AnySat = false, AnyUnsat = false, AnyDefinitive = false;
  for (size_t I = 0; I < CoopSt.size(); ++I) {
    ChcStatus CS = CoopSt[I];
    AnySat |= CS == ChcStatus::Sat;
    AnyUnsat |= CS == ChcStatus::Unsat;
    AnyDefinitive |= Blind[I].Status != ChcStatus::Unknown;
    if (CS == ChcStatus::Unknown)
      continue; // Definitive -> Unknown under sharing is a budget story.
    AnyDefinitive = true;
    if (Blind[I].Status != ChcStatus::Unknown && CS != Blind[I].Status)
      return OracleOutcome::fail(
          "share-flip",
          "lemma sharing flipped a definitive verdict — " + Describe(I));
    if (Truth != ChcStatus::Unknown && CS != Truth)
      return OracleOutcome::fail(
          "share-ground-truth",
          "verdict under lemma sharing contradicts BMC ground truth — " +
              Describe(I));
  }
  if (AnySat && AnyUnsat)
    return OracleOutcome::fail(
        "share-disagree", "cooperating engines split sat/unsat: " +
                              Describe(0) + "; " + Describe(1) + "; " +
                              Describe(2) + "; " + Describe(3));
  if (!AnyDefinitive && Truth == ChcStatus::Unknown)
    return OracleOutcome::skip("no definitive verdict with or without "
                               "lemma sharing");
  return OracleOutcome::pass();
}

//===----------------------------------------------------------------------===
// Arithmetic fast/slow differential
//===----------------------------------------------------------------------===

namespace {

/// Deterministic xorshift stream for the arith oracle's operand trace (the
/// testgen Rng is not linked into this TU's dependencies cheaply enough to
/// matter; any fixed-point-free 64-bit mixer works).
uint64_t arithNext(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

/// One operand biased to the representation frontier: around ±2^31 (limb
/// edge), around ±2^62..2^63 (inline edge), multi-limb, or plain small.
BigInt arithOperand(uint64_t &S) {
  uint64_t R = arithNext(S);
  BigInt V;
  switch (R & 3) {
  case 0:
    V = BigInt(int64_t((uint64_t(1) << 31) + (R >> 56) - 3));
    break;
  case 1:
    V = BigInt(int64_t(((uint64_t(1) << 62) + (arithNext(S) >> 3)) &
                       uint64_t(INT64_MAX)));
    break;
  case 2: { // Multi-limb via squaring past 64 bits.
    BigInt B(int64_t(arithNext(S) >> 16) + 1);
    V = B * B;
    break;
  }
  default:
    V = BigInt(int64_t(arithNext(S) >> 33));
    break;
  }
  return (R >> 2) & 1 ? -V : V;
}

/// Replays the trace of \p Seed, appending "op=value" lines. The trace is
/// a pure function of the seed, so running it twice under different
/// representation regimes and comparing lines is a complete differential.
std::vector<std::string> arithTrace(uint64_t Seed, unsigned Rounds) {
  std::vector<std::string> Out;
  uint64_t S = Seed ? Seed : 0x9e3779b97f4a7c15ull;
  for (unsigned I = 0; I < Rounds; ++I) {
    BigInt A = arithOperand(S), B = arithOperand(S);
    auto Push = [&](const char *Op, const BigInt &V) {
      Out.push_back(std::string(Op) + "=" + V.toString() + "#" +
                    std::to_string(V.hash()));
    };
    Push("add", A + B);
    Push("sub", A - B);
    Push("mul", A * B);
    Push("neg", -A);
    Push("gcd", BigInt::gcd(A, B));
    if (!B.isZero()) {
      BigInt Q, R;
      BigInt::divMod(A, B, Q, R);
      Push("quot", Q);
      Push("rem", R);
      Push("floorDiv", A.floorDiv(B));
      Push("euclidMod", A.euclidMod(B));
      Rational Rat(A, B);
      Out.push_back("rat=" + Rat.toString() + "#" +
                    std::to_string(Rat.hash()));
      Out.push_back("ratcmp=" +
                    std::to_string(Rat.compare(Rational(B.abs() + BigInt(1),
                                                        A.abs() + BigInt(1)))));
    }
    Out.push_back("cmp=" + std::to_string(A.compare(B)));
  }
  return Out;
}

} // namespace

OracleOutcome mucyc::checkArithFastSlow(uint64_t Seed, unsigned Rounds) {
  std::vector<std::string> Fast = arithTrace(Seed, Rounds);
  std::vector<std::string> Slow;
  {
    ScopedForceHeap FH(true);
    Slow = arithTrace(Seed, Rounds);
  }
  if (Fast.size() != Slow.size())
    return OracleOutcome::fail(
        "arith-fast-slow-mismatch",
        "trace lengths differ: fast=" + std::to_string(Fast.size()) +
            " slow=" + std::to_string(Slow.size()) +
            " seed=" + std::to_string(Seed));
  for (size_t I = 0; I < Fast.size(); ++I)
    if (Fast[I] != Slow[I])
      return OracleOutcome::fail(
          "arith-fast-slow-mismatch",
          "op " + std::to_string(I) + " diverges: fast '" + Fast[I] +
              "' vs forced-heap '" + Slow[I] +
              "' seed=" + std::to_string(Seed));
  return OracleOutcome::pass();
}
