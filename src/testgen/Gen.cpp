//===- testgen/Gen.cpp - Random formula and CHC generators ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Gen.h"

using namespace mucyc;

VarPool mucyc::genVarPool(TermContext &Ctx, const GenKnobs &Knobs,
                          const std::string &Prefix) {
  VarPool P;
  for (unsigned I = 0; I < Knobs.IntVars; ++I)
    P.Ints.push_back(Ctx.mkFreshVar(Prefix + "i" + std::to_string(I),
                                    Sort::Int));
  for (unsigned I = 0; I < Knobs.RealVars; ++I)
    P.Reals.push_back(Ctx.mkFreshVar(Prefix + "r" + std::to_string(I),
                                     Sort::Real));
  for (unsigned I = 0; I < Knobs.BoolVars; ++I)
    P.Bools.push_back(Ctx.mkFreshVar(Prefix + "b" + std::to_string(I),
                                     Sort::Bool));
  return P;
}

namespace {

/// Nonzero coefficient in [-Mag, Mag]; occasionally rational for Real.
Rational genCoeff(Rng &R, const GenKnobs &Knobs, Sort S) {
  int64_t Mag = Knobs.CoeffMag > 0 ? Knobs.CoeffMag : 1;
  Rational C(R.intIn(1, Mag));
  if (S == Sort::Real && Knobs.RationalCoeffs && R.oneIn(4))
    C = C / Rational(R.intIn(2, 4));
  return R.oneIn(2) ? -C : C;
}

/// Linear sum of 1..AtomVars draws from \p Vars (repeats merge in mkAdd).
TermRef genLinSum(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                  const std::vector<TermRef> &Vars, Sort S) {
  unsigned N = 1 + static_cast<unsigned>(
                       R.below(std::max<unsigned>(1, Knobs.AtomVars)));
  std::vector<TermRef> Terms;
  for (unsigned I = 0; I < N; ++I)
    Terms.push_back(Ctx.mkMul(genCoeff(R, Knobs, S), R.pick(Vars)));
  return Ctx.mkAdd(std::move(Terms));
}

} // namespace

TermRef mucyc::genLinAtom(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                          const std::vector<TermRef> &Vars, Sort S) {
  TermRef Sum = genLinSum(Ctx, R, Knobs, Vars, S);
  if (S == Sort::Int && Knobs.Divides && R.oneIn(6))
    return Ctx.mkDivides(BigInt(R.intIn(2, 5)), Sum);
  Rational K(R.intIn(-Knobs.CoeffMag, Knobs.CoeffMag));
  if (S == Sort::Real && Knobs.RationalCoeffs && R.oneIn(4))
    K = K / Rational(R.intIn(2, 4));
  TermRef Konst = Ctx.mkConst(K, S);
  switch (R.below(5)) {
  case 0:
    return Ctx.mkLe(Sum, Konst);
  case 1:
    return Ctx.mkLt(Sum, Konst);
  case 2:
    return Ctx.mkEq(Sum, Konst);
  case 3:
    return Ctx.mkGe(Sum, Konst);
  default:
    return Ctx.mkGt(Sum, Konst);
  }
}

namespace {

TermRef genAtom(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                const VarPool &Pool) {
  // Bool variables are rare relative to arithmetic atoms.
  if (!Pool.Bools.empty() && (Pool.hasArith() ? R.oneIn(5) : true))
    return R.pick(Pool.Bools);
  if (!Pool.hasArith())
    return R.oneIn(2) ? Ctx.mkTrue() : Ctx.mkFalse();
  bool UseInt = !Pool.Ints.empty() &&
                (Pool.Reals.empty() || R.oneIn(2));
  return UseInt ? genLinAtom(Ctx, R, Knobs, Pool.Ints, Sort::Int)
                : genLinAtom(Ctx, R, Knobs, Pool.Reals, Sort::Real);
}

TermRef genFormulaDepth(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                        const VarPool &Pool, unsigned Depth) {
  if (Depth == 0 || R.oneIn(3)) {
    TermRef A = genAtom(Ctx, R, Knobs, Pool);
    return R.oneIn(3) ? Ctx.mkNot(A) : A;
  }
  unsigned N = 2 + static_cast<unsigned>(
                       R.below(std::max<unsigned>(1, Knobs.BoolArity - 1)));
  std::vector<TermRef> Kids;
  for (unsigned I = 0; I < N; ++I)
    Kids.push_back(genFormulaDepth(Ctx, R, Knobs, Pool, Depth - 1));
  TermRef F = R.oneIn(2) ? Ctx.mkAnd(std::move(Kids))
                         : Ctx.mkOr(std::move(Kids));
  return R.oneIn(5) ? Ctx.mkNot(F) : F;
}

} // namespace

TermRef mucyc::genFormula(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                          const VarPool &Pool) {
  return genFormulaDepth(Ctx, R, Knobs, Pool, Knobs.Depth);
}

//===----------------------------------------------------------------------===
// Linear CHC systems
//===----------------------------------------------------------------------===

namespace {

/// One guard/update atom over a single variable: v {<=,>=,=} c.
TermRef genBoundAtom(TermContext &Ctx, Rng &R, const GenKnobs &Knobs,
                     TermRef V, Sort S) {
  TermRef K = Ctx.mkConst(Rational(R.intIn(-Knobs.CoeffMag, Knobs.CoeffMag)),
                          S);
  switch (R.below(3)) {
  case 0:
    return Ctx.mkLe(V, K);
  case 1:
    return Ctx.mkGe(V, K);
  default:
    return Ctx.mkEq(V, K);
  }
}

} // namespace

ChcSystem mucyc::genLinearChc(TermContext &Ctx, Rng &R,
                              const GenKnobs &Knobs) {
  ChcSystem Sys(Ctx);
  Sort S = Knobs.RealChc ? Sort::Real : Sort::Int;

  unsigned NP = 1 + static_cast<unsigned>(
                        R.below(std::max<unsigned>(1, Knobs.Preds)));
  unsigned Arity = 1 + static_cast<unsigned>(
                           R.below(std::max<unsigned>(1, Knobs.PredArity)));
  std::vector<PredId> Preds;
  for (unsigned P = 0; P < NP; ++P)
    Preds.push_back(Sys.addPred("P" + std::to_string(P),
                                std::vector<Sort>(Arity, S)));

  auto FreshTuple = [&](const char *Base) {
    std::vector<TermRef> Vs;
    for (unsigned I = 0; I < Arity; ++I)
      Vs.push_back(Ctx.mkFreshVar(std::string(Base) + std::to_string(I), S));
    return Vs;
  };
  auto AsApp = [&](PredId P, const std::vector<TermRef> &Vs) {
    return PredApp{P, Vs};
  };

  // Fact: constrain each head variable to a constant or a bound so the
  // initial region is small and BMC converges fast.
  auto AddFact = [&] {
    std::vector<TermRef> H = FreshTuple("h");
    std::vector<TermRef> Cs;
    for (TermRef V : H)
      if (!R.oneIn(4))
        Cs.push_back(R.oneIn(3) ? genBoundAtom(Ctx, R, Knobs, V, S)
                                : Ctx.mkEq(V, Ctx.mkConst(Rational(R.intIn(
                                                  -3, 3)),
                                                          S)));
    Clause C;
    C.Constraint = Ctx.mkAnd(std::move(Cs));
    C.Head = AsApp(R.pick(Preds), H);
    Sys.addClause(std::move(C));
  };

  // Rule: src(b) /\ guard(b) /\ update(b, h) => dst(h). Updates are small
  // linear steps h_j = +-b_k + c, occasionally a reset to a constant.
  auto AddRule = [&] {
    std::vector<TermRef> B = FreshTuple("b"), H = FreshTuple("h");
    std::vector<TermRef> Cs;
    for (TermRef V : H) {
      if (R.oneIn(6))
        continue; // Leave unconstrained (rare: blows up reach sets).
      if (R.oneIn(4)) {
        Cs.push_back(Ctx.mkEq(
            V, Ctx.mkConst(Rational(R.intIn(-3, 3)), S)));
        continue;
      }
      TermRef Src = R.pick(B);
      if (R.oneIn(3))
        Src = Ctx.mkNeg(Src);
      TermRef Step = Ctx.mkAdd(
          Src, Ctx.mkConst(Rational(R.intIn(-2, 2)), S));
      Cs.push_back(Ctx.mkEq(V, Step));
    }
    if (R.oneIn(2))
      Cs.push_back(genBoundAtom(Ctx, R, Knobs, R.pick(B), S));
    Clause C;
    C.Constraint = Ctx.mkAnd(std::move(Cs));
    C.Body.push_back(AsApp(R.pick(Preds), B));
    C.Head = AsApp(R.pick(Preds), H);
    Sys.addClause(std::move(C));
  };

  // Query: src(b) /\ guards(b) => false.
  auto AddQuery = [&] {
    std::vector<TermRef> B = FreshTuple("q");
    std::vector<TermRef> Cs;
    unsigned NG = 1 + static_cast<unsigned>(R.below(2));
    for (unsigned I = 0; I < NG; ++I)
      Cs.push_back(genBoundAtom(Ctx, R, Knobs, R.pick(B), S));
    Clause C;
    C.Constraint = Ctx.mkAnd(std::move(Cs));
    C.Body.push_back(AsApp(R.pick(Preds), B));
    Sys.addClause(std::move(C));
  };

  AddFact();
  AddQuery();
  unsigned Extra =
      Knobs.Clauses > 2 ? static_cast<unsigned>(R.below(Knobs.Clauses - 1))
                        : 0;
  for (unsigned I = 0; I < Extra; ++I) {
    switch (R.below(4)) {
    case 0:
      AddFact();
      break;
    case 1:
      AddQuery();
      break;
    default:
      AddRule();
      break;
    }
  }
  return Sys;
}
