//===- testgen/Fuzzer.h - Differential fuzzing driver -----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level fuzzing loop: generate an instance, run the matching
/// oracle, and on failure shrink the instance to a minimal SMT-LIB2 repro.
/// Instance domains (SMT / MBP / Itp / engine race) are assigned round-robin
/// and each instance draws from its own Rng stream derived from (Seed, i),
/// so the whole report — including every diagnostic string — is a pure
/// function of the configuration. Two runs with the same flags produce
/// byte-identical summaries.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TESTGEN_FUZZER_H
#define MUCYC_TESTGEN_FUZZER_H

#include "testgen/Gen.h"
#include "testgen/Oracles.h"

#include <string>
#include <vector>

namespace mucyc {

/// Which instance domains the round-robin draws from.
struct FuzzDomains {
  bool Smt = true; ///< Formula verdict/model/negation/simplify checks.
  bool Mbp = true; ///< Definition 1 projection contract.
  bool Itp = true; ///< Interpolant contract.
  bool Chc = true; ///< Four-engine race + Verify certification.
  bool Inc = true; ///< Incremental push/assert/check/pop vs. one-shot.
  /// Fault-injected solve vs. clean solve (see checkChaosResilience).
  /// Default OFF so existing fixed-seed reports stay byte-identical;
  /// opt in with --domains chaos.
  bool Chaos = false;
  /// Cooperative (lemma-sharing) solve vs. blind solve (see
  /// checkShareCooperation). Default OFF for the same byte-stability
  /// reason; opt in with --domains share.
  bool Share = false;
  /// Small-value fast path vs. forced-heap arithmetic differential (see
  /// checkArithFastSlow). Default OFF for the same byte-stability reason;
  /// opt in with --domains arith.
  bool Arith = false;
  /// BTOR2 transition-system domain: generated hardware-style state
  /// machines through print -> parse -> encode round-trip checks, then the
  /// same four-engine race + BMC + Verify oracle as chc. Default OFF for
  /// the same byte-stability reason; opt in with --domains ts.
  bool Ts = false;
};

struct FuzzConfig {
  uint64_t Seed = 0;
  unsigned N = 100; ///< Instance count.
  FuzzDomains Domains;
  GenKnobs Knobs;
  EngineRaceKnobs Race;
  /// Root seed of the chaos domain's fault-injection streams (0 = derive
  /// from Seed). Each instance arms its injectors from mixSeed(root, i),
  /// so the whole chaos report is a pure function of the configuration.
  uint64_t ChaosSeed = 0;
  bool Shrink = true;           ///< Minimize failing instances.
  unsigned ShrinkAttempts = 600; ///< Candidate budget per shrink.
  std::string ReproDir; ///< When nonempty, failing repros are written here.
};

struct FuzzViolation {
  unsigned Instance = 0;  ///< Instance index (seed stream = (Seed, i)).
  std::string Domain;     ///< "smt", "mbp", "itp", "chc", "inc", "chaos",
                          ///< "share", "arith" or "ts".
  std::string Check;      ///< Stable tag of the violated contract clause.
  std::string Detail;     ///< Human diagnostic from the oracle.
  std::string Repro;      ///< SMT-LIB2 text (shrunk when Shrink is on);
                          ///< guaranteed to re-parse and re-fail.
  std::string ReproPath;  ///< File the repro was written to ("" if none).
};

struct FuzzReport {
  unsigned Ran = 0, Passed = 0, Skipped = 0;
  std::vector<FuzzViolation> Violations;
  /// One line per chc/ts instance, "instance=<i> verdict=<sat|unsat|unknown>":
  /// the engines' consensus verdict, deterministic per (Seed, i, knobs).
  /// The cross-mode differential (default vs. --no-incremental) requires
  /// these to be byte-identical; mucyc-fuzz --verdicts writes them out.
  std::vector<std::string> ChcVerdicts;

  bool ok() const { return Violations.empty(); }
  /// Deterministic multi-line report (no timing, no absolute pointers).
  std::string summary(const FuzzConfig &Cfg) const;
};

/// Runs the loop. \p Hooks inject faults for oracle self-tests; production
/// passes nullptr.
FuzzReport runFuzz(const FuzzConfig &Cfg, const OracleHooks *Hooks = nullptr);

} // namespace mucyc

#endif // MUCYC_TESTGEN_FUZZER_H
