//===- testgen/TsGen.cpp - Random BTOR2 transition systems ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/TsGen.h"

#include <map>

using namespace mucyc;

namespace {

/// One emitted value node, as the generator sees it. Est is a conservative
/// upper bound on the guarded-case count the parser's bounded-integer
/// lowering will produce for this node; the generator refuses combinations
/// whose estimate exceeds EstCap, so a generated program can never trip the
/// parser's CaseCap (32) and fail to parse.
struct GNode {
  int64_t Id = 0;
  unsigned Width = 0; ///< 0 = native int.
  bool IsBool = false; ///< Width-1 bitvec: usable as condition/bad.
  unsigned Est = 1;
};

constexpr unsigned EstCap = 24;

} // namespace

Btor2Program mucyc::genBtor2(Rng &R, const TsGenKnobs &K) {
  Btor2Program P;
  int64_t NextId = 1;
  std::map<unsigned, int64_t> SortIds;
  std::vector<GNode> Vals;
  std::map<unsigned, std::vector<GNode>> ConstsOf;
  std::vector<GNode> States;

  auto num = [](int64_t I) { return std::to_string(I); };
  auto emit = [&](const char *Op, std::vector<std::string> Args) {
    Btor2Line L;
    L.Id = NextId++;
    L.Op = Op;
    L.Args = std::move(Args);
    P.push_back(std::move(L));
    return P.back().Id;
  };
  // Sorts are minted on first use; the emit happens while the using line's
  // argument list is still being built, so the sort line lands first.
  auto sortOf = [&](unsigned W) {
    auto It = SortIds.find(W);
    if (It != SortIds.end())
      return It->second;
    int64_t Id = W == 0 ? emit("sort", {"int"})
                        : emit("sort", {"bitvec", std::to_string(W)});
    SortIds.emplace(W, Id);
    return Id;
  };

  auto mkConst = [&](unsigned W) {
    int64_t S = sortOf(W);
    GNode N{0, W, W == 1, 1};
    if (W != 0 && R.oneIn(4)) {
      const char *Op = R.oneIn(3) ? "ones" : (R.oneIn(2) ? "zero" : "one");
      N.Id = emit(Op, {num(S)});
    } else {
      // Small values keep reachable sets (and mul's residue bands) small;
      // int draws stay within the same magnitude for symmetry.
      int64_t V = W == 0 ? R.intIn(0, 8)
                         : static_cast<int64_t>(
                               R.below(W >= 4 ? 16 : (1ull << W)));
      N.Id = emit("constd", {num(S), num(V)});
    }
    Vals.push_back(N);
    ConstsOf[W].push_back(N);
    return N;
  };
  auto someConst = [&](unsigned W) {
    auto &Cs = ConstsOf[W];
    if (!Cs.empty() && !R.oneIn(3))
      return Cs[R.below(Cs.size())];
    return mkConst(W);
  };

  auto pickOfWidth = [&](unsigned W, unsigned MaxEst) -> const GNode * {
    std::vector<size_t> Is;
    for (size_t I = 0; I < Vals.size(); ++I)
      if (Vals[I].Width == W && Vals[I].Est <= MaxEst)
        Is.push_back(I);
    return Is.empty() ? nullptr : &Vals[Is[R.below(Is.size())]];
  };
  auto pickAny = [&](unsigned MaxEst) -> const GNode * {
    std::vector<size_t> Is;
    for (size_t I = 0; I < Vals.size(); ++I)
      if (Vals[I].Est <= MaxEst)
        Is.push_back(I);
    return Is.empty() ? nullptr : &Vals[Is[R.below(Is.size())]];
  };
  auto pickBool = [&]() -> const GNode * {
    std::vector<size_t> Is;
    for (size_t I = 0; I < Vals.size(); ++I)
      if (Vals[I].IsBool)
        Is.push_back(I);
    return Is.empty() ? nullptr : &Vals[Is[R.below(Is.size())]];
  };

  // --- States and inputs anchor everything else.
  unsigned NStates = 1 + static_cast<unsigned>(R.below(std::max(1u, K.MaxStates)));
  for (unsigned I = 0; I < NStates; ++I) {
    unsigned W =
        K.AllowInt && R.oneIn(6)
            ? 0
            : 1 + static_cast<unsigned>(R.below(std::max(1u, K.MaxWidth)));
    GNode N{0, W, W == 1, 1};
    N.Id = emit("state", {num(sortOf(W)), "x" + num(I)});
    Vals.push_back(N);
    States.push_back(N);
  }
  unsigned NInputs = static_cast<unsigned>(R.below(K.MaxInputs + 1));
  for (unsigned I = 0; I < NInputs; ++I) {
    // Inputs are either control bits or shaped like some state so they can
    // meet it in an expression.
    unsigned W = R.oneIn(2) ? 1 : States[R.below(States.size())].Width;
    GNode N{0, W, W == 1, 1};
    N.Id = emit("input", {num(sortOf(W)), "y" + num(I)});
    Vals.push_back(N);
  }

  // --- Derived expression nodes, case-estimate guarded.
  unsigned NOps = static_cast<unsigned>(R.below(K.MaxOps + 1));
  for (unsigned I = 0; I < NOps; ++I) {
    switch (R.below(7)) {
    case 0: { // add / sub
      const GNode *P0 = pickAny(EstCap / 2);
      if (!P0)
        break;
      GNode A = *P0; // Copy: someConst below may grow (reallocate) Vals.
      unsigned W = A.Width;
      GNode B = someConst(W);
      if (!R.oneIn(3))
        if (const GNode *N = pickOfWidth(W, EstCap / (2 * A.Est)))
          B = *N;
      unsigned Est = (W == 0 ? 1 : 2) * A.Est * B.Est;
      const char *Op = R.oneIn(2) ? "add" : "sub";
      GNode N{0, W, W == 1, Est};
      N.Id = emit(Op, {num(sortOf(W)), num(A.Id), num(B.Id)});
      Vals.push_back(N);
      break;
    }
    case 1: { // inc / dec / neg
      const GNode *A = pickAny(EstCap / 2);
      if (!A)
        break;
      unsigned W = A->Width;
      const char *Op =
          R.oneIn(3) ? "neg" : (R.oneIn(2) ? "inc" : "dec");
      GNode N{0, W, W == 1, (W == 0 ? 1 : 2) * A->Est};
      N.Id = emit(Op, {num(sortOf(W)), num(A->Id)});
      Vals.push_back(N);
      break;
    }
    case 2: { // mul by a small constant (the linear subset's only mul)
      const GNode *P2 = pickAny(4);
      if (!P2)
        break;
      GNode A = *P2; // Copy: the const push below reallocates Vals.
      unsigned W = A.Width;
      int64_t C = R.intIn(0, 4);
      int64_t CId = emit("constd", {num(sortOf(W)), num(C)});
      Vals.push_back(GNode{CId, W, W == 1, 1});
      ConstsOf[W].push_back(Vals.back());
      unsigned Est = W == 0 ? A.Est
                            : std::max<unsigned>(
                                  1, A.Est * static_cast<unsigned>(C));
      GNode N{0, W, W == 1, Est};
      N.Id = emit("mul", {num(sortOf(W)), num(A.Id), num(CId)});
      Vals.push_back(N);
      break;
    }
    case 3: { // comparison (bool result; signed variants split cases
              // inside the formula, not in the node's case list)
      const GNode *A = pickAny(8);
      if (!A)
        break;
      const GNode *B = pickOfWidth(A->Width, 8);
      if (!B)
        break;
      static const char *const Ops[] = {"eq",  "neq",  "ult", "ulte",
                                        "ugt", "ugte", "slt", "slte",
                                        "sgt", "sgte"};
      const char *Op = Ops[R.below(10)];
      GNode N{0, 1, true, 2};
      N.Id = emit(Op, {num(sortOf(1)), num(A->Id), num(B->Id)});
      Vals.push_back(N);
      break;
    }
    case 4: { // width-1 boolean connective, or not
      const GNode *A = pickBool();
      if (!A)
        break;
      GNode N{0, 1, true, 2};
      if (R.oneIn(4)) {
        N.Id = emit("not", {num(sortOf(1)), num(A->Id)});
      } else {
        const GNode *B = pickBool();
        static const char *const Ops[] = {"and", "or",      "nand",
                                          "nor", "xor",     "xnor",
                                          "iff", "implies"};
        const char *Op = Ops[R.below(8)];
        N.Id = emit(Op, {num(sortOf(1)), num(A->Id), num(B->Id)});
      }
      Vals.push_back(N);
      break;
    }
    case 5: { // ite
      const GNode *C = pickBool();
      const GNode *A = pickAny(EstCap / 2);
      if (!C || !A)
        break;
      const GNode *B = pickOfWidth(A->Width, EstCap - A->Est);
      if (!B)
        break;
      unsigned W = A->Width;
      GNode N{0, W, W == 1, A->Est + B->Est};
      N.Id =
          emit("ite", {num(sortOf(W)), num(C->Id), num(A->Id), num(B->Id)});
      Vals.push_back(N);
      break;
    }
    default: { // uext / sext (bitvec only)
      const GNode *A = pickAny(EstCap / 2);
      if (!A || A->Width == 0 || A->Width + 2 > 64)
        break;
      unsigned Ext = 1 + static_cast<unsigned>(R.below(2));
      unsigned W = A->Width + Ext;
      bool Signed = R.oneIn(2);
      GNode N{0, W, false, (Signed ? 2 : 1) * A->Est};
      N.Id = emit(Signed ? "sext" : "uext",
                  {num(sortOf(W)), num(A->Id), num(Ext)});
      Vals.push_back(N);
      break;
    }
    }
  }

  // --- init / next. Values may be arbitrary same-width nodes (relational
  // inits and self-loops included); a state skipping either is left free in
  // that position, which the encoder supports.
  for (const GNode &S : States) {
    if (R.oneIn(4))
      continue;
    GNode V = someConst(S.Width);
    if (R.oneIn(5))
      if (const GNode *N = pickOfWidth(S.Width, EstCap))
        V = *N;
    emit("init", {num(sortOf(S.Width)), num(S.Id), num(V.Id)});
  }
  for (const GNode &S : States) {
    if (R.oneIn(8))
      continue;
    const GNode *V = pickOfWidth(S.Width, EstCap); // S itself qualifies.
    emit("next", {num(sortOf(S.Width)), num(S.Id), num(V->Id)});
  }

  // --- Environment assumption, observability, properties.
  if (R.oneIn(2))
    if (const GNode *C = pickBool())
      emit("constraint", {num(C->Id)});
  if (R.oneIn(4))
    emit("output", {num(Vals[R.below(Vals.size())].Id)});

  // The first bad is always a fresh state-vs-constant comparison, so every
  // program asks a question about its reachable states; later ones may
  // reuse any boolean node.
  auto stateCompare = [&]() {
    const GNode &S = States[R.below(States.size())];
    GNode C = someConst(S.Width);
    static const char *const Ops[] = {"eq",  "neq", "ult",
                                      "ugte", "slt", "sgte"};
    const char *Op = Ops[R.below(6)];
    GNode N{0, 1, true, 2};
    N.Id = emit(Op, {num(sortOf(1)), num(S.Id), num(C.Id)});
    Vals.push_back(N);
    return N;
  };
  unsigned NBads = 1 + static_cast<unsigned>(R.below(std::max(1u, K.MaxBads)));
  for (unsigned I = 0; I < NBads; ++I) {
    const GNode *Reuse = I > 0 && !R.oneIn(3) ? pickBool() : nullptr;
    GNode B = Reuse ? *Reuse : stateCompare();
    emit("bad", {num(B.Id)});
  }

  return P;
}
