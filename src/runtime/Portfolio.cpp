//===- runtime/Portfolio.cpp - Racing configuration portfolio -------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Portfolio.h"

#include "runtime/Exchange.h"
#include "runtime/ThreadPool.h"

#include <chrono>
#include <mutex>

using namespace mucyc;

std::vector<std::string> mucyc::splitConfigList(const std::string &List) {
  std::vector<std::string> Out;
  std::string Cur;
  int Depth = 0;
  for (char C : List) {
    if (C == '(')
      ++Depth;
    else if (C == ')')
      --Depth;
    if (C == ',' && Depth == 0) {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (C == ' ' && Cur.empty())
      continue; // Allow "a, b" spelling.
    Cur.push_back(C);
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

std::optional<std::vector<SolverOptions>>
mucyc::parseConfigList(const std::string &List) {
  std::vector<SolverOptions> Out;
  for (const std::string &Name : splitConfigList(List)) {
    auto O = SolverOptions::parse(Name);
    if (!O)
      return std::nullopt;
    Out.push_back(*O);
  }
  if (Out.empty())
    return std::nullopt;
  return Out;
}

PortfolioResult
mucyc::racePortfolio(const std::function<NormalizedChc(TermContext &)> &Build,
                     const std::vector<SolverOptions> &Configs, unsigned Jobs,
                     uint64_t TimeoutMs,
                     const std::shared_ptr<CancelToken> &Cancel) {
  SolveRequest Base = SolveRequest::fromBuilder(Build, SolverOptions());
  Base.DeadlineMs = TimeoutMs;
  return racePortfolio(Base, Configs, Jobs, Cancel, nullptr);
}

PortfolioResult
mucyc::racePortfolio(const SolveRequest &Base,
                     const std::vector<SolverOptions> &Configs, unsigned Jobs,
                     const std::shared_ptr<CancelToken> &Cancel,
                     ResultStore *Store) {
  auto Start = std::chrono::steady_clock::now();
  const size_t K = Configs.size();

  PortfolioResult R;
  R.Members.resize(K);

  std::shared_ptr<CancelToken> RaceTok =
      Cancel ? Cancel->child() : CancelToken::create();
  // One token per member so the winner can stop exactly the losers.
  std::vector<std::shared_ptr<CancelToken>> MemberToks;
  MemberToks.reserve(K);
  for (size_t I = 0; I < K; ++I)
    MemberToks.push_back(RaceTok->child());

  // Winner commit point. The first member to produce a definitive answer
  // takes the race; everyone else is cancelled and reports Cancelled when
  // it lost its own answer to the abort.
  std::mutex Mu;
  struct MemberState {
    std::shared_ptr<TermContext> Ctx;
    SolverResult Res;
    /// Token state observed when the member's solve returned — a later
    /// post-join check would blame cancellation for self-inflicted
    /// timeouts.
    bool SawCancel = false;
    unsigned Attempts = 1;
  };
  std::vector<MemberState> States(K);

  // Cooperative mode: one lemma bus for the race, one port per member.
  // The bus outlives the pool block below (members hold raw port pointers
  // until join), and only members that asked for sharing get a port.
  LemmaExchange Exchange(K);

  {
    // Default to one thread per member, even above the core count: a race
    // needs every member actually running or a diverging early member
    // starves the one that would answer; the losers' oversubscription cost
    // is bounded by the winner's runtime plus one cancellation round.
    unsigned Workers = Jobs ? Jobs : static_cast<unsigned>(K);
    if (Workers > K)
      Workers = static_cast<unsigned>(K);
    ThreadPool Pool(Workers);
    for (size_t I = 0; I < K; ++I) {
      Pool.post([&, I] {
        MemberState &St = States[I];
        // solveRequest absorbs crashing members (typed errors and stray
        // exceptions become ErrorInfo on the response) and runs the
        // degraded-retry ladder when the config asks for it — a loser can
        // die or retry without disturbing the race. With a store, a
        // cached certificate answers without running an engine at all.
        SolveRequest MR = Base;
        MR.Opts = Configs[I];
        MR.KeepContext = true;
        if (MR.Opts.ShareLemmas)
          MR.Opts.Share = Exchange.port(I);
        SolveResponse Resp = solveRequest(MR, Store, MemberToks[I]->flag());
        St.Ctx = Resp.Ctx;
        St.Res.Status = Resp.Status;
        St.Res.Invariant = Resp.Invariant;
        St.Res.CexPiece = Resp.CexPiece;
        St.Res.Depth = Resp.Depth;
        St.Res.Stats = Resp.Stats;
        St.Res.Seconds = Resp.Seconds;
        St.Res.VerifyFailed = Resp.VerifyFailed;
        St.Res.VerifyNote = std::move(Resp.VerifyNote);
        St.Res.Error = std::move(Resp.Error);
        St.Attempts = Resp.Attempts;
        St.SawCancel = MemberToks[I]->cancelled();
        if (St.Res.Status == ChcStatus::Unknown)
          return;
        std::lock_guard<std::mutex> Lock(Mu);
        if (R.WinnerIndex >= 0)
          return; // Somebody else already committed.
        R.WinnerIndex = static_cast<int>(I);
        for (size_t J = 0; J < K; ++J)
          if (J != I)
            MemberToks[J]->request();
      });
    }
  } // Joins the pool: every member has finished or wound down.

  for (size_t I = 0; I < K; ++I) {
    PortfolioMemberReport &M = R.Members[I];
    M.Config = Configs[I].name();
    M.Status = States[I].Res.Status;
    M.Winner = static_cast<int>(I) == R.WinnerIndex;
    M.Cancelled = M.Status == ChcStatus::Unknown && States[I].SawCancel;
    M.Seconds = States[I].Res.Seconds;
    M.Depth = States[I].Res.Depth;
    M.Stats = States[I].Res.Stats;
    M.Error = States[I].Res.Error;
    M.Attempts = States[I].Attempts;
    R.MergedStats.merge(M.Stats);
  }
  if (R.WinnerIndex >= 0) {
    R.Winner = States[R.WinnerIndex].Res;
    R.WinnerConfig = R.Members[R.WinnerIndex].Config;
    R.WinnerCtx = States[R.WinnerIndex].Ctx;
  }
  R.SharedLemmas = Exchange.size();
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  return R;
}
