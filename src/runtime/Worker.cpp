//===- runtime/Worker.cpp - Forked worker-process execution tier ----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Worker.h"

#include "runtime/Recover.h"
#include "support/Fault.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <sstream>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace mucyc;

namespace {

/// Set once in the forked child, before any request processing.
std::atomic<bool> InChild{false};

/// Exit codes the child reserves for conditions a wait status cannot
/// otherwise express. Chosen high to stay clear of tool exit contracts.
constexpr int ExitRlimit = 87;   ///< bad_alloc under RLIMIT_AS.
constexpr int ExitInternal = 86; ///< Escaped exception in the child shell.

ErrorCode errorCodeFromName(const std::string &S) {
  static const ErrorCode All[] = {
      ErrorCode::ResourceExhaustedMemory, ErrorCode::ResourceExhaustedSteps,
      ErrorCode::ResourceExhaustedDepth,  ErrorCode::Cancelled,
      ErrorCode::Timeout,                 ErrorCode::InvariantViolation,
      ErrorCode::InputError,              ErrorCode::WorkerCrashedSignal,
      ErrorCode::WorkerCrashedRlimit,     ErrorCode::WorkerCrashedWedged,
  };
  for (ErrorCode C : All)
    if (S == errorCodeName(C))
      return C;
  return ErrorCode::InputError;
}

std::string formatStats(const SolveStats &S) {
  std::ostringstream Out;
  Out << S.SmtChecks << ' ' << S.SmtCacheHits << ' ' << S.SmtCacheEvicts << ' '
      << S.PoolRetires << ' ' << S.MbpCalls << ' ' << S.ItpCalls << ' '
      << S.RefineCalls << ' ' << S.Unfolds << ' ' << S.Retries << ' '
      << S.Degradations << ' ' << S.LemmasPublished << ' ' << S.LemmasImported
      << ' ' << S.LemmasRejected << ' ' << S.CoreShrink;
  return Out.str();
}

SolveStats parseStats(const std::string &Line) {
  SolveStats S;
  std::istringstream In(Line);
  In >> S.SmtChecks >> S.SmtCacheHits >> S.SmtCacheEvicts >> S.PoolRetires >>
      S.MbpCalls >> S.ItpCalls >> S.RefineCalls >> S.Unfolds >> S.Retries >>
      S.Degradations >> S.LemmasPublished >> S.LemmasImported >>
      S.LemmasRejected >> S.CoreShrink;
  return S;
}

/// Die the way the x-crash test directive asks. Only meaningful inside a
/// forked child; see workerChildServe.
[[noreturn]] void crashNow(const std::string &How) {
  if (How == "segv")
    ::raise(SIGSEGV);
  else if (How == "abort")
    std::abort();
  else if (How == "exit3")
    ::_exit(3);
  else if (How == "spin")
    for (;;)
      ::pause(); // Never replies; the parent watchdog must reap us.
  else if (How == "burn") {
    volatile uint64_t X = 0; // Burn CPU until RLIMIT_CPU's SIGXCPU.
    for (;;)
      ++X;
  } else if (How == "oom")
    throw std::bad_alloc(); // The child shell maps this to ExitRlimit.
  ::_exit(ExitInternal); // Unknown directive: fail loudly.
}

} // namespace

bool mucyc::inWorkerChild() {
  return InChild.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===
// Request / reply encoding
//===----------------------------------------------------------------------===

WireMessage mucyc::encodeWorkerRequest(const SolveRequest &Req,
                                       const std::string &StoreDir,
                                       const std::string &TestCrash) {
  WireMessage M;
  M.Verb = "work";
  const SolverOptions &O = Req.Opts;
  M.Headers["config"] = O.name();
  auto PutU64 = [&](const char *K, uint64_t V) {
    if (V)
      M.Headers[K] = std::to_string(V);
  };
  PutU64("timeout-ms", O.TimeoutMs);
  PutU64("max-depth", static_cast<uint64_t>(O.MaxDepth));
  PutU64("max-refine-steps", O.MaxRefineSteps);
  PutU64("mem-limit-mb", O.MemLimitMb);
  PutU64("max-retries", O.MaxRetries);
  PutU64("chaos-seed", O.ChaosSeed);
  if (O.NoIncremental)
    M.Headers["no-incremental"] = "1";
  if (O.VerifyResult)
    M.Headers["verify"] = "1";
  if (O.QueryCacheCap != 4096)
    M.Headers["query-cache-cap"] = std::to_string(O.QueryCacheCap);
  PutU64("deadline-ms", Req.DeadlineMs);
  if (Req.WantSolution)
    M.Headers["want-solution"] = "1";
  if (Req.NoStore)
    M.Headers["no-store"] = "1";
  if (!StoreDir.empty()) {
    M.Headers["mode"] = "full";
    M.Headers["store-dir"] = StoreDir;
  }
  if (!TestCrash.empty())
    M.Headers["x-crash"] = TestCrash;
  if (Req.Source) {
    if (Req.Source->format() == InputFormat::Btor2)
      M.Headers["format"] = "btor2";
    else if (Req.Source->format() == InputFormat::SmtLib2)
      M.Headers["format"] = "smtlib2";
    if (!Req.Source->preprocessing())
      M.Headers["no-preprocess"] = "1";
    M.Body = Req.Source->text();
  }
  return M;
}

namespace {

SolveRequest decodeWorkerRequest(const WireMessage &M) {
  auto U64 = [&](const char *Key) -> uint64_t {
    std::string V = M.header(Key);
    return V.empty() ? 0 : std::strtoull(V.c_str(), nullptr, 10);
  };
  SolverOptions O;
  if (auto Parsed = SolverOptions::parse(M.header("config", "Ret(T,MBP(1))")))
    O = *Parsed;
  O.TimeoutMs = U64("timeout-ms");
  O.MaxDepth = static_cast<int>(U64("max-depth"));
  O.MaxRefineSteps = U64("max-refine-steps");
  O.MemLimitMb = U64("mem-limit-mb");
  O.MaxRetries = static_cast<unsigned>(U64("max-retries"));
  O.ChaosSeed = U64("chaos-seed");
  O.NoIncremental = M.header("no-incremental") == "1";
  O.VerifyResult = M.header("verify") == "1";
  if (!M.header("query-cache-cap").empty())
    O.QueryCacheCap = static_cast<unsigned>(U64("query-cache-cap"));
  O.Isolate = IsolateMode::None; // Children never fork grandchildren.

  InputFormat F = InputFormat::Auto;
  if (M.header("format") == "btor2")
    F = InputFormat::Btor2;
  else if (M.header("format") == "smtlib2")
    F = InputFormat::SmtLib2;
  SolveRequest Req = SolveRequest::fromText(
      M.Body, std::move(O), M.header("no-preprocess") != "1", F);
  Req.DeadlineMs = U64("deadline-ms");
  Req.WantSolution = M.header("want-solution") == "1";
  Req.NoStore = M.header("no-store") == "1";
  return Req;
}

void putCommonReplyHeaders(WireMessage &R, ChcStatus Status, int Depth,
                           unsigned Attempts, const SolveStats &Stats,
                           double Seconds, const ErrorInfo &Error,
                           bool VerifyFailed, const std::string &VerifyNote) {
  R.Headers["status"] = chcStatusName(Status);
  R.Headers["depth"] = std::to_string(Depth);
  R.Headers["attempts"] = std::to_string(Attempts);
  R.Headers["stats"] = formatStats(Stats);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", Seconds);
  R.Headers["seconds"] = Buf;
  if (Error.isError()) {
    R.Headers["error-code"] = errorCodeName(Error.Code);
    R.Headers["error-detail"] = Error.Detail;
  }
  if (VerifyFailed)
    R.Headers["verify-failed"] = VerifyNote.empty() ? "?" : VerifyNote;
}

} // namespace

std::string mucyc::workerChildServe(const std::string &RequestPayload) {
  WireMessage M;
  std::string Err;
  WireMessage R;
  R.Verb = "done";
  if (!parseWireMessage(RequestPayload, M, &Err) || M.Verb != "work") {
    putCommonReplyHeaders(R, ChcStatus::Unknown, 0, 1, SolveStats{}, 0.0,
                          ErrorInfo{ErrorCode::InputError,
                                    "bad worker request: " + Err},
                          false, "");
    return formatWireMessage(R);
  }
  // The crash directive fires before any solving, and only in a real
  // forked child — an in-process test of this function must survive it.
  std::string XCrash = M.header("x-crash");
  if (!XCrash.empty() && inWorkerChild())
    crashNow(XCrash);

  SolveRequest Req = decodeWorkerRequest(M);
  if (M.header("mode") == "full") {
    // The whole request runs here, against a child-private store on the
    // shipped directory (disk tier only; the parent's memory tier cannot
    // cross the process boundary).
    std::optional<ResultStore> ChildStore;
    if (!M.header("store-dir").empty())
      ChildStore.emplace(M.header("store-dir"));
    SolveResponse Resp =
        solveRequest(Req, ChildStore ? &*ChildStore : nullptr, nullptr);
    putCommonReplyHeaders(R, Resp.Status, Resp.Depth, Resp.Attempts,
                          Resp.Stats, Resp.Seconds, Resp.Error,
                          Resp.VerifyFailed, Resp.VerifyNote);
    R.Headers["cache"] = cacheSourceName(Resp.Cache);
    R.Headers["cache-verified"] = Resp.CacheVerified ? "1" : "0";
    if (!Resp.Fingerprint.empty())
      R.Headers["fingerprint"] = Resp.Fingerprint;
    R.Body = Resp.SolutionText;
    return formatWireMessage(R);
  }

  // Cold mode (Isolate = crash): run just the engine ladder, and ship the
  // certificate text back so the *parent* can re-verify and admit it —
  // the store is never written by code that might be crashing.
  TermContext *LastCtx = nullptr;
  NormalizedChc LastSys;
  auto Build = Req.Source->builder();
  auto WrappedBuild = [&](TermContext &C) {
    NormalizedChc N = Build(C);
    LastCtx = &C;
    LastSys = N;
    return N;
  };
  RecoveryOutcome RO =
      solveWithRecovery(WrappedBuild, Req.Opts, Req.DeadlineMs, nullptr);
  putCommonReplyHeaders(R, RO.Res.Status, RO.Res.Depth, RO.Attempts,
                        RO.Res.Stats, 0.0, RO.Res.Error, RO.Res.VerifyFailed,
                        RO.Res.VerifyNote);
  bool Definitive =
      RO.Res.Status == ChcStatus::Sat || RO.Res.Status == ChcStatus::Unsat;
  if (Definitive && !RO.Res.VerifyFailed && RO.Ctx &&
      LastCtx == RO.Ctx.get()) {
    TermRef Cert = RO.Res.Status == ChcStatus::Sat ? RO.Res.Invariant
                                                   : RO.Res.CexPiece;
    if (Cert.isValid()) {
      try {
        R.Headers["cert"] =
            ResultStore::serializeCert(*RO.Ctx, LastSys, Cert);
        std::string ZLine;
        for (size_t I = 0; I < LastSys.Z.size(); ++I)
          ZLine += std::string(I ? " " : "") +
                   sortName(RO.Ctx->varInfo(LastSys.Z[I]).S);
        R.Headers["zsorts"] = ZLine;
        R.Headers["config"] =
            degradeOptions(Req.Opts, RO.Attempts - 1).name();
      } catch (const std::exception &) {
        R.Headers.erase("cert"); // Unserializable: definitive answer stands.
        R.Headers.erase("zsorts");
      }
      if (Req.WantSolution && RO.Res.Status == ChcStatus::Sat)
        R.Body = Req.Source->solutionText(*RO.Ctx, RO.Res.Invariant);
    }
  }
  return formatWireMessage(R);
}

//===----------------------------------------------------------------------===
// Parent side: fork, sandbox, watchdog, reap, classify
//===----------------------------------------------------------------------===

namespace {

/// The child half of runWorkerAttempt: sandbox, serve one frame, exit.
[[noreturn]] void workerChildMain(int Fd, const SolverOptions &Opts) {
  InChild.store(true, std::memory_order_relaxed);
  if (Opts.HardMemMb) {
    struct rlimit R;
    R.rlim_cur = R.rlim_max = Opts.HardMemMb << 20;
    ::setrlimit(RLIMIT_AS, &R);
  }
  if (Opts.HardCpuSec) {
    struct rlimit R;
    R.rlim_cur = Opts.HardCpuSec;      // Soft: SIGXCPU, classifiable.
    R.rlim_max = Opts.HardCpuSec + 2;  // Hard backstop: SIGKILL.
    ::setrlimit(RLIMIT_CPU, &R);
  }
  try {
    std::string Payload;
    if (readFrame(Fd, Payload, 256u << 20) != FrameStatus::Ok)
      ::_exit(ExitInternal);
    std::string Reply = workerChildServe(Payload);
    if (!writeFrame(Fd, Reply))
      ::_exit(ExitInternal);
  } catch (const std::bad_alloc &) {
    ::_exit(ExitRlimit); // RLIMIT_AS (or genuine exhaustion) hit.
  } catch (...) {
    ::_exit(ExitInternal);
  }
  ::_exit(0);
}

SolveResponse crashedResponse(ErrorCode Code, std::string Detail) {
  SolveResponse Resp;
  Resp.Status = ChcStatus::Unknown;
  Resp.Error = ErrorInfo{Code, std::move(Detail)};
  Resp.Attempts = 1;
  return Resp;
}

} // namespace

WorkerOutcome mucyc::runWorkerAttempt(const SolveRequest &Req,
                                      uint64_t DeadlineMs,
                                      const std::atomic<bool> *Cancel,
                                      const std::string &StoreDir,
                                      const std::string &TestCrash) {
  WorkerOutcome WO;
  // A worker that dies mid-read must surface as a write error, never a
  // parent-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0) {
    WO.Crashed = true;
    WO.Resp = crashedResponse(ErrorCode::WorkerCrashedSignal,
                              "socketpair failed for worker");
    return WO;
  }

  // The chaos decision is taken before fork so the Nth-worker ordinal is a
  // pure function of the spawn sequence, not of child scheduling.
  bool ChaosKill = ServiceFaultPlan::global().killThisWorker();

  std::string Frame =
      formatWireMessage(encodeWorkerRequest(Req, StoreDir, TestCrash));

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Sv[0]);
    ::close(Sv[1]);
    WO.Crashed = true;
    WO.Resp =
        crashedResponse(ErrorCode::WorkerCrashedSignal, "fork failed");
    return WO;
  }
  if (Pid == 0) {
    ::close(Sv[0]);
    workerChildMain(Sv[1], Req.Opts); // Never returns.
  }
  ::close(Sv[1]);

  if (ChaosKill)
    ::kill(Pid, SIGKILL);

  bool WroteOk = !ChaosKill && writeFrame(Sv[0], Frame);
  (void)WroteOk; // A failed write just means the child died first; the
                 // read below observes the same EOF either way.

  // Watchdog loop: wait for the reply to start arriving, reacting to
  // cancellation immediately and to a blown deadline with SIGKILL. The
  // grace covers reply serialization and scheduler jitter.
  constexpr uint64_t GraceMs = 2000;
  auto Start = std::chrono::steady_clock::now();
  bool KilledWedged = false, KilledCancel = false;
  for (;;) {
    if (Cancel && Cancel->load(std::memory_order_relaxed) && !KilledCancel &&
        !KilledWedged) {
      KilledCancel = true;
      ::kill(Pid, SIGKILL);
    }
    if (DeadlineMs && !KilledWedged && !KilledCancel) {
      uint64_t ElapsedMs =
          static_cast<uint64_t>(std::chrono::duration_cast<
                                    std::chrono::milliseconds>(
                                    std::chrono::steady_clock::now() - Start)
                                    .count());
      if (ElapsedMs > DeadlineMs + GraceMs) {
        KilledWedged = true;
        ::kill(Pid, SIGKILL);
      }
    }
    struct pollfd P;
    P.fd = Sv[0];
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, 100);
    if (N < 0 && errno != EINTR)
      break;
    if (N > 0)
      break; // Readable (or hung up): collect the reply / the EOF.
  }

  // The child writes its whole frame then exits, so once bytes start
  // flowing a bounded stall covers the rest; a child that wedges mid-reply
  // is caught here rather than pinning this thread forever.
  std::string Reply;
  FrameStatus FS = readFrameDeadline(Sv[0], Reply, 256u << 20,
                                     /*StallTimeoutMs=*/10000);
  if (FS == FrameStatus::TimedOut && !KilledCancel) {
    KilledWedged = true;
    ::kill(Pid, SIGKILL);
  }
  ::close(Sv[0]);

  int St = 0;
  ::waitpid(Pid, &St, 0);

  // A complete, well-formed "done" frame wins regardless of exit status.
  WireMessage M;
  if (FS == FrameStatus::Ok && parseWireMessage(Reply, M, nullptr) &&
      M.Verb == "done" && !M.header("status").empty()) {
    SolveResponse &Resp = WO.Resp;
    std::string Status = M.header("status");
    Resp.Status = Status == "sat"     ? ChcStatus::Sat
                  : Status == "unsat" ? ChcStatus::Unsat
                                      : ChcStatus::Unknown;
    Resp.Depth = std::atoi(M.header("depth", "0").c_str());
    Resp.Attempts = static_cast<unsigned>(
        std::strtoul(M.header("attempts", "1").c_str(), nullptr, 10));
    Resp.Stats = parseStats(M.header("stats"));
    Resp.Seconds = std::atof(M.header("seconds", "0").c_str());
    if (!M.header("error-code").empty())
      Resp.Error = ErrorInfo{errorCodeFromName(M.header("error-code")),
                             M.header("error-detail")};
    if (!M.header("verify-failed").empty()) {
      Resp.VerifyFailed = true;
      Resp.VerifyNote = M.header("verify-failed");
    }
    if (!M.header("cache").empty()) {
      std::string C = M.header("cache");
      Resp.Cache = C == "mem-hit"    ? CacheSource::Memory
                   : C == "disk-hit" ? CacheSource::Disk
                                     : CacheSource::None;
      Resp.CacheVerified = M.header("cache-verified") == "1";
    }
    Resp.Fingerprint = M.header("fingerprint");
    Resp.SolutionText = M.Body;
    WO.Cert = M.header("cert");
    WO.ZSortsLine = M.header("zsorts");
    WO.ConfigName = M.header("config");
    return WO;
  }

  // No usable reply: classify the death.
  if (KilledCancel) {
    WO.Resp = crashedResponse(ErrorCode::Cancelled, "worker cancelled");
    WO.Crashed = false; // Final, not a crash to retry.
    return WO;
  }
  WO.Crashed = true;
  if (KilledWedged) {
    WO.Resp = crashedResponse(
        ErrorCode::WorkerCrashedWedged,
        "watchdog killed wedged worker past deadline grace");
    return WO;
  }
  if (WIFSIGNALED(St)) {
    int Sig = WTERMSIG(St);
    if (Sig == SIGXCPU) {
      WO.Resp = crashedResponse(ErrorCode::WorkerCrashedRlimit,
                                "worker hit RLIMIT_CPU (SIGXCPU)");
      return WO;
    }
    WO.Resp = crashedResponse(ErrorCode::WorkerCrashedSignal,
                              "worker killed by signal " +
                                  std::to_string(Sig));
    return WO;
  }
  if (WIFEXITED(St)) {
    int Code = WEXITSTATUS(St);
    if (Code == ExitRlimit) {
      WO.Resp = crashedResponse(ErrorCode::WorkerCrashedRlimit,
                                "worker hit RLIMIT_AS (allocation failure)");
      return WO;
    }
    if (Code == 0) {
      WO.Resp = crashedResponse(ErrorCode::WorkerCrashedSignal,
                                "worker reply truncated or malformed");
      return WO;
    }
    WO.Resp = crashedResponse(ErrorCode::WorkerCrashedSignal,
                              "worker exit status " + std::to_string(Code));
    return WO;
  }
  WO.Resp = crashedResponse(ErrorCode::WorkerCrashedSignal,
                            "worker vanished without a wait status");
  return WO;
}
