//===- runtime/ResultStore.cpp - Fingerprint-keyed result cache -----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ResultStore.h"

#include "chc/Export.h"
#include "chc/Parser.h"
#include "support/Fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace mucyc;

const char *mucyc::cacheSourceName(CacheSource S) {
  switch (S) {
  case CacheSource::None:
    return "cold";
  case CacheSource::Memory:
    return "mem-hit";
  case CacheSource::Disk:
    return "disk-hit";
  }
  return "?";
}

ResultStore::ResultStore(std::string Dir, size_t MemCap)
    : DirPath(std::move(Dir)), MemCap(MemCap ? MemCap : 1) {
  if (!DirPath.empty())
    recoverScan();
}

std::string ResultStore::filePath(const std::string &Fp) const {
  return DirPath + "/" + Fp + ".mucyc-result";
}

void ResultStore::memInsert(const std::string &Fp, Entry E) {
  auto It = Mem.find(Fp);
  if (It != Mem.end()) {
    It->second = std::move(E);
    return;
  }
  while (Mem.size() >= MemCap && !Fifo.empty()) {
    Mem.erase(Fifo.front());
    Fifo.pop_front();
  }
  Fifo.push_back(Fp);
  Mem.emplace(Fp, std::move(E));
}

std::optional<ResultStore::Entry>
ResultStore::lookup(const std::string &Fp, CacheSource *Src) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(Fp);
  if (It != Mem.end()) {
    ++Cnt.MemHits;
    if (Src)
      *Src = CacheSource::Memory;
    return It->second;
  }
  if (!DirPath.empty()) {
    if (auto E = loadFile(Fp)) {
      ++Cnt.DiskHits;
      if (Src)
        *Src = CacheSource::Disk;
      memInsert(Fp, *E);
      return E;
    }
  }
  ++Cnt.Misses;
  if (Src)
    *Src = CacheSource::None;
  return std::nullopt;
}

void ResultStore::insert(const std::string &Fp, Entry E) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Cnt.Inserts;
  if (!DirPath.empty())
    storeFile(Fp, E);
  memInsert(Fp, std::move(E));
}

void ResultStore::markVerified(const std::string &Fp) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(Fp);
  if (It != Mem.end())
    It->second.Verified = true;
}

void ResultStore::erase(const std::string &Fp) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Cnt.Rejects;
  Mem.erase(Fp);
  if (!DirPath.empty()) {
    std::error_code Ec;
    std::filesystem::remove(filePath(Fp), Ec);
  }
}

ResultStore::Counters ResultStore::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cnt;
}

//===----------------------------------------------------------------------===
// Disk format: `mucyc-result-v2`, a small line-oriented text file whose
// last line checksums everything before it, one entry per fingerprint.
//===----------------------------------------------------------------------===

uint64_t ResultStore::fnv1a64(const std::string &Data) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

static std::string hex16(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[I] = Digits[V & 0xf];
  return S;
}

std::string ResultStore::formatEntry(const Entry &E) {
  std::string Body = "mucyc-result-v2\n";
  Body += "status: " + std::string(chcStatusName(E.Status)) + "\n";
  Body += "depth: " + std::to_string(E.Depth) + "\n";
  Body += "config: " + E.Config + "\n";
  Body += "zsorts: ";
  for (size_t I = 0; I < E.ZSorts.size(); ++I)
    Body += std::string(I ? " " : "") + sortName(E.ZSorts[I]);
  Body += "\n";
  Body += "cert: " + E.Cert + "\n";
  return Body + "checksum: fnv1a64 " + hex16(fnv1a64(Body)) + "\n";
}

std::optional<ResultStore::Entry>
ResultStore::parseFileText(const std::string &Text) {
  // The checksum line must be the last line and must cover every byte
  // before it — a torn write truncates the tail, so either the line is
  // missing or the digest disagrees.
  if (Text.rfind("mucyc-result-v2\n", 0) != 0)
    return std::nullopt;
  size_t LastNl = Text.find_last_of('\n');
  if (LastNl == std::string::npos || LastNl + 1 != Text.size())
    return std::nullopt; // No trailing newline: truncated mid-line.
  size_t PrevNl = Text.find_last_of('\n', LastNl - 1);
  if (PrevNl == std::string::npos)
    return std::nullopt;
  std::string Last = Text.substr(PrevNl + 1, LastNl - PrevNl - 1);
  if (Last.rfind("checksum: fnv1a64 ", 0) != 0)
    return std::nullopt;
  std::string Body = Text.substr(0, PrevNl + 1);
  if (Last.substr(18) != hex16(fnv1a64(Body)))
    return std::nullopt;

  Entry E;
  bool HaveStatus = false;
  std::istringstream In(Body);
  std::string Line;
  std::getline(In, Line); // Header, already matched.
  while (std::getline(In, Line)) {
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Colon);
    std::string Val = Line.substr(Colon + 2);
    if (Key == "status") {
      if (Val == "sat")
        E.Status = ChcStatus::Sat;
      else if (Val == "unsat")
        E.Status = ChcStatus::Unsat;
      else
        return std::nullopt; // Only definitive answers are stored.
      HaveStatus = true;
    } else if (Key == "depth") {
      E.Depth = std::atoi(Val.c_str());
    } else if (Key == "config") {
      E.Config = Val;
    } else if (Key == "zsorts") {
      std::istringstream SS(Val);
      std::string S;
      while (SS >> S) {
        if (S == "Bool")
          E.ZSorts.push_back(Sort::Bool);
        else if (S == "Int")
          E.ZSorts.push_back(Sort::Int);
        else if (S == "Real")
          E.ZSorts.push_back(Sort::Real);
        else
          return std::nullopt;
      }
    } else if (Key == "cert") {
      E.Cert = Val;
    }
    // Unknown keys are ignored: forward compatibility for the format.
  }
  if (!HaveStatus || E.Cert.empty() || E.ZSorts.empty())
    return std::nullopt;
  return E;
}

static std::optional<std::string> readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::optional<ResultStore::Entry>
ResultStore::loadFile(const std::string &Fp) const {
  auto Text = readWholeFile(filePath(Fp));
  if (!Text)
    return std::nullopt;
  return parseFileText(*Text);
}

/// Durable whole-file write: stage to \p Tmp, fsync, rename over \p Final.
/// Returns false on any failure, with the staging file cleaned up.
static bool writeDurable(const std::string &Tmp, const std::string &Final,
                         const std::string &Content) {
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Off = 0;
  bool Ok = true;
  while (Ok && Off < Content.size()) {
    ssize_t N = ::write(Fd, Content.data() + Off, Content.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Ok = false;
    } else {
      Off += static_cast<size_t>(N);
    }
  }
  // The entry is advertised as durable once renamed into place, so the
  // data must be on stable storage *before* the rename — otherwise a crash
  // can leave a fully-named file with torn content, the exact state the
  // recovery scan exists to catch.
  Ok = Ok && ::fsync(Fd) == 0;
  Ok = (::close(Fd) == 0) && Ok;
  Ok = Ok && std::rename(Tmp.c_str(), Final.c_str()) == 0;
  if (!Ok)
    ::unlink(Tmp.c_str()); // Never leak the staging file.
  return Ok;
}

void ResultStore::storeFile(const std::string &Fp, const Entry &E) {
  std::error_code Ec;
  std::filesystem::create_directories(DirPath, Ec);
  if (Ec) {
    ++Cnt.WriteErrors; // Read-only parent etc.: memory tier still serves.
    return;
  }
  std::string Content = formatEntry(E);

  // Chaos: a torn write lands truncated content under the *final* name —
  // the post-crash disk state rename-based atomicity cannot prevent when
  // the tear happens below the filesystem. The checksum makes it inert.
  uint64_t TearAt = 0;
  if (ServiceFaultPlan::global().tearThisStoreWrite(TearAt)) {
    std::ofstream Torn(filePath(Fp), std::ios::binary | std::ios::trunc);
    Torn << Content.substr(0, std::min<size_t>(TearAt, Content.size()));
    ++Cnt.WriteErrors;
    return;
  }

  if (!writeDurable(filePath(Fp) + ".tmp", filePath(Fp), Content))
    ++Cnt.WriteErrors;
}

//===----------------------------------------------------------------------===
// Construction-time recovery scan
//===----------------------------------------------------------------------===

void ResultStore::recoverScan() {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(DirPath, Ec))
    return;
  const std::string Suffix = ".mucyc-result";
  const std::string QuarDir = DirPath + "/quarantine";
  for (auto &Ent : fs::directory_iterator(DirPath, Ec)) {
    if (Ec)
      break;
    if (!Ent.is_regular_file(Ec))
      continue;
    std::string Name = Ent.path().filename().string();
    if (Name.size() > 4 && Name.rfind(".tmp") == Name.size() - 4) {
      // Orphaned staging file from an interrupted write.
      fs::remove(Ent.path(), Ec);
      ++Recovery.TmpSwept;
      continue;
    }
    if (Name.size() <= Suffix.size() ||
        Name.rfind(Suffix) != Name.size() - Suffix.size())
      continue;
    ++Recovery.Scanned;
    auto Text = readWholeFile(Ent.path().string());
    if (Text && parseFileText(*Text)) {
      ++Recovery.Intact;
      continue;
    }
    // Corrupt, torn, or legacy (v1) entry: quarantine, never serve. Kept
    // rather than deleted so operators can inspect what went wrong.
    fs::create_directories(QuarDir, Ec);
    fs::rename(Ent.path(), QuarDir + "/" + Name, Ec);
    if (Ec) {
      fs::remove(Ent.path(), Ec); // Cross-device fallback: drop it.
      Ec.clear();
    }
    ++Recovery.Quarantined;
  }
}

//===----------------------------------------------------------------------===
// Certificate (de)serialization
//===----------------------------------------------------------------------===

// Both directions are the shared alpha-canonical wire format of
// chc/Export.h — the same rendering the portfolio lemma exchange speaks.

std::string ResultStore::serializeCert(TermContext &Ctx,
                                       const NormalizedChc &N, TermRef Cert) {
  return serializeZFormula(Ctx, N, Cert);
}

TermRef ResultStore::parseCert(TermContext &Ctx, const NormalizedChc &N,
                               const std::string &Text, std::string *Err) {
  return parseZFormula(Ctx, N, Text, Err);
}
