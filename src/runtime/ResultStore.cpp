//===- runtime/ResultStore.cpp - Fingerprint-keyed result cache -----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ResultStore.h"

#include "chc/Export.h"
#include "chc/Parser.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mucyc;

const char *mucyc::cacheSourceName(CacheSource S) {
  switch (S) {
  case CacheSource::None:
    return "cold";
  case CacheSource::Memory:
    return "mem-hit";
  case CacheSource::Disk:
    return "disk-hit";
  }
  return "?";
}

ResultStore::ResultStore(std::string Dir, size_t MemCap)
    : DirPath(std::move(Dir)), MemCap(MemCap ? MemCap : 1) {}

std::string ResultStore::filePath(const std::string &Fp) const {
  return DirPath + "/" + Fp + ".mucyc-result";
}

void ResultStore::memInsert(const std::string &Fp, Entry E) {
  auto It = Mem.find(Fp);
  if (It != Mem.end()) {
    It->second = std::move(E);
    return;
  }
  while (Mem.size() >= MemCap && !Fifo.empty()) {
    Mem.erase(Fifo.front());
    Fifo.pop_front();
  }
  Fifo.push_back(Fp);
  Mem.emplace(Fp, std::move(E));
}

std::optional<ResultStore::Entry>
ResultStore::lookup(const std::string &Fp, CacheSource *Src) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(Fp);
  if (It != Mem.end()) {
    ++Cnt.MemHits;
    if (Src)
      *Src = CacheSource::Memory;
    return It->second;
  }
  if (!DirPath.empty()) {
    if (auto E = loadFile(Fp)) {
      ++Cnt.DiskHits;
      if (Src)
        *Src = CacheSource::Disk;
      memInsert(Fp, *E);
      return E;
    }
  }
  ++Cnt.Misses;
  if (Src)
    *Src = CacheSource::None;
  return std::nullopt;
}

void ResultStore::insert(const std::string &Fp, Entry E) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Cnt.Inserts;
  if (!DirPath.empty())
    storeFile(Fp, E);
  memInsert(Fp, std::move(E));
}

void ResultStore::markVerified(const std::string &Fp) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(Fp);
  if (It != Mem.end())
    It->second.Verified = true;
}

void ResultStore::erase(const std::string &Fp) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Cnt.Rejects;
  Mem.erase(Fp);
  if (!DirPath.empty()) {
    std::error_code Ec;
    std::filesystem::remove(filePath(Fp), Ec);
  }
}

ResultStore::Counters ResultStore::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cnt;
}

//===----------------------------------------------------------------------===
// Disk format: a small line-oriented text file, one entry per fingerprint.
//===----------------------------------------------------------------------===

std::optional<ResultStore::Entry>
ResultStore::loadFile(const std::string &Fp) const {
  std::ifstream In(filePath(Fp));
  if (!In)
    return std::nullopt;
  std::string Line;
  if (!std::getline(In, Line) || Line != "mucyc-result-v1")
    return std::nullopt;
  Entry E;
  bool HaveStatus = false;
  while (std::getline(In, Line)) {
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Colon);
    std::string Val = Line.substr(Colon + 2);
    if (Key == "status") {
      if (Val == "sat")
        E.Status = ChcStatus::Sat;
      else if (Val == "unsat")
        E.Status = ChcStatus::Unsat;
      else
        return std::nullopt; // Only definitive answers are stored.
      HaveStatus = true;
    } else if (Key == "depth") {
      E.Depth = std::atoi(Val.c_str());
    } else if (Key == "config") {
      E.Config = Val;
    } else if (Key == "zsorts") {
      std::istringstream SS(Val);
      std::string S;
      while (SS >> S) {
        if (S == "Bool")
          E.ZSorts.push_back(Sort::Bool);
        else if (S == "Int")
          E.ZSorts.push_back(Sort::Int);
        else if (S == "Real")
          E.ZSorts.push_back(Sort::Real);
        else
          return std::nullopt;
      }
    } else if (Key == "cert") {
      E.Cert = Val;
    }
    // Unknown keys are ignored: forward compatibility for the format.
  }
  if (!HaveStatus || E.Cert.empty() || E.ZSorts.empty())
    return std::nullopt;
  return E;
}

void ResultStore::storeFile(const std::string &Fp, const Entry &E) const {
  std::error_code Ec;
  std::filesystem::create_directories(DirPath, Ec);
  std::string Tmp = filePath(Fp) + ".tmp";
  {
    std::ofstream Out(Tmp);
    if (!Out)
      return; // Disk tier is best-effort; the memory tier still serves.
    Out << "mucyc-result-v1\n"
        << "status: " << chcStatusName(E.Status) << "\n"
        << "depth: " << E.Depth << "\n"
        << "config: " << E.Config << "\n"
        << "zsorts:";
    Out << " ";
    for (size_t I = 0; I < E.ZSorts.size(); ++I)
      Out << (I ? " " : "") << sortName(E.ZSorts[I]);
    Out << "\n"
        << "cert: " << E.Cert << "\n";
  }
  std::rename(Tmp.c_str(), filePath(Fp).c_str());
}

//===----------------------------------------------------------------------===
// Certificate (de)serialization
//===----------------------------------------------------------------------===

// Both directions are the shared alpha-canonical wire format of
// chc/Export.h — the same rendering the portfolio lemma exchange speaks.

std::string ResultStore::serializeCert(TermContext &Ctx,
                                       const NormalizedChc &N, TermRef Cert) {
  return serializeZFormula(Ctx, N, Cert);
}

TermRef ResultStore::parseCert(TermContext &Ctx, const NormalizedChc &N,
                               const std::string &Text, std::string *Err) {
  return parseZFormula(Ctx, N, Text, Err);
}
