//===- runtime/Serve.cpp - Persistent solving service ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serve.h"

#include "support/Fault.h"

#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

using namespace mucyc;

//===----------------------------------------------------------------------===
// Wire codec
//===----------------------------------------------------------------------===

std::string mucyc::formatWireMessage(const WireMessage &M) {
  std::string Out = M.Verb + "\n";
  for (const auto &[K, V] : M.Headers)
    Out += K + ": " + V + "\n";
  Out += "\n";
  Out += M.Body;
  return Out;
}

bool mucyc::parseWireMessage(const std::string &Payload, WireMessage &M,
                             std::string *Err) {
  M = WireMessage();
  size_t Pos = 0;
  auto NextLine = [&](std::string &Line) -> bool {
    if (Pos >= Payload.size())
      return false;
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos) {
      Line = Payload.substr(Pos);
      Pos = Payload.size();
    } else {
      Line = Payload.substr(Pos, Nl - Pos);
      Pos = Nl + 1;
    }
    return true;
  };
  if (!NextLine(M.Verb) || M.Verb.empty()) {
    if (Err)
      *Err = "empty message: missing verb line";
    return false;
  }
  std::string Line;
  while (NextLine(Line)) {
    if (Line.empty())
      break; // Blank line: the rest is the body.
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      continue; // Junk header line: skip, keep the stream alive.
    M.Headers.emplace(Line.substr(0, Colon), Line.substr(Colon + 2));
  }
  M.Body = Payload.substr(Pos);
  return true;
}

FrameStatus mucyc::readFrame(int Fd, std::string &Payload, size_t MaxBytes) {
  unsigned char Hdr[4];
  size_t Got = 0;
  while (Got < 4) {
    ssize_t R = ::read(Fd, Hdr + Got, 4 - Got);
    if (R == 0)
      return Got == 0 ? FrameStatus::Eof : FrameStatus::Truncated;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::IoError;
    }
    Got += static_cast<size_t>(R);
  }
  uint64_t Len = (uint64_t(Hdr[0]) << 24) | (uint64_t(Hdr[1]) << 16) |
                 (uint64_t(Hdr[2]) << 8) | uint64_t(Hdr[3]);
  if (Len > MaxBytes) {
    // Drain the payload so the stream stays framed, then reject it.
    char Scratch[4096];
    uint64_t Left = Len;
    while (Left) {
      ssize_t R = ::read(Fd, Scratch,
                         Left < sizeof(Scratch) ? Left : sizeof(Scratch));
      if (R == 0)
        return FrameStatus::Truncated;
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return FrameStatus::IoError;
      }
      Left -= static_cast<uint64_t>(R);
    }
    return FrameStatus::Oversized;
  }
  Payload.resize(Len);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t R = ::read(Fd, Payload.data() + Off, Len - Off);
    if (R == 0)
      return FrameStatus::Truncated;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::IoError;
    }
    Off += static_cast<size_t>(R);
  }
  return FrameStatus::Ok;
}

FrameStatus mucyc::readFrameDeadline(int Fd, std::string &Payload,
                                     size_t MaxBytes, int StallTimeoutMs,
                                     int IdleTimeoutMs) {
  // Identical framing to readFrame, but every read waits behind poll()
  // with a budget: the idle budget before the frame's first byte, the
  // stall budget between bytes mid-frame. Progress resets the clock, so a
  // slow-but-live writer (even 1 byte at a time) is never cut off.
  bool FirstByte = true;
  // -2 = I/O error, -3 = timed out, otherwise read() semantics.
  auto ReadSome = [&](void *Buf, size_t N) -> ssize_t {
    int Budget = FirstByte && IdleTimeoutMs ? IdleTimeoutMs : StallTimeoutMs;
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    for (;;) {
      int W = ::poll(&P, 1, Budget > 0 ? Budget : -1);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return -2;
      }
      if (W == 0)
        return -3;
      break;
    }
    for (;;) {
      ssize_t R = ::read(Fd, Buf, N);
      if (R < 0 && errno == EINTR)
        continue;
      if (R > 0)
        FirstByte = false;
      return R;
    }
  };
  auto Classify = [](ssize_t R, bool MidFrame) -> FrameStatus {
    if (R == -3)
      return FrameStatus::TimedOut;
    if (R < 0)
      return FrameStatus::IoError;
    return MidFrame ? FrameStatus::Truncated : FrameStatus::Eof;
  };

  unsigned char Hdr[4];
  size_t Got = 0;
  while (Got < 4) {
    ssize_t R = ReadSome(Hdr + Got, 4 - Got);
    if (R <= 0)
      return Classify(R, Got != 0);
    Got += static_cast<size_t>(R);
  }
  uint64_t Len = (uint64_t(Hdr[0]) << 24) | (uint64_t(Hdr[1]) << 16) |
                 (uint64_t(Hdr[2]) << 8) | uint64_t(Hdr[3]);
  if (Len > MaxBytes) {
    char Scratch[4096];
    uint64_t Left = Len;
    while (Left) {
      ssize_t R = ReadSome(Scratch,
                           Left < sizeof(Scratch) ? Left : sizeof(Scratch));
      if (R <= 0)
        return Classify(R, true);
      Left -= static_cast<uint64_t>(R);
    }
    return FrameStatus::Oversized;
  }
  Payload.resize(Len);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t R = ReadSome(Payload.data() + Off, Len - Off);
    if (R <= 0)
      return Classify(R, true);
    Off += static_cast<size_t>(R);
  }
  return FrameStatus::Ok;
}

bool mucyc::writeFrame(int Fd, const std::string &Payload) {
  unsigned char Hdr[4] = {static_cast<unsigned char>(Payload.size() >> 24),
                          static_cast<unsigned char>(Payload.size() >> 16),
                          static_cast<unsigned char>(Payload.size() >> 8),
                          static_cast<unsigned char>(Payload.size())};
  auto WriteAll = [&](const void *Buf, size_t N) {
    const char *P = static_cast<const char *>(Buf);
    while (N) {
      ssize_t W = ::write(Fd, P, N);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += W;
      N -= static_cast<size_t>(W);
    }
    return true;
  };
  // Chaos: cut the Nth frame short after the header and a partial payload
  // — the peer observes a half-frame followed by whatever the sender does
  // about the failure (for the daemon: connection close → Truncated).
  if (ServiceFaultPlan::global().shortThisWrite()) {
    WriteAll(Hdr, 4);
    WriteAll(Payload.data(), Payload.size() / 2);
    return false;
  }
  return WriteAll(Hdr, 4) && WriteAll(Payload.data(), Payload.size());
}

//===----------------------------------------------------------------------===
// Daemon
//===----------------------------------------------------------------------===

ServeDaemon::ServeDaemon(ServeOptions O)
    : Opts(std::move(O)), Store(Opts.StoreDir),
      Session(Opts.Jobs, &Store) {
  // A client that vanishes mid-write must surface as a write error, not a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
}

ServeDaemon::~ServeDaemon() { stop(); }

namespace {

std::string errorFrame(const std::string &Detail) {
  WireMessage M;
  M.Verb = "error";
  M.Headers["detail"] = Detail;
  return formatWireMessage(M);
}

/// Typed shed response: the client should back off and retry elsewhere /
/// later, not treat this as a solver failure.
std::string overloadedFrame(const std::string &Detail, unsigned Pending) {
  WireMessage M;
  M.Verb = "overloaded";
  M.Headers["detail"] = Detail;
  M.Headers["pending"] = std::to_string(Pending);
  return formatWireMessage(M);
}

bool peerGone(int Fd) {
  struct pollfd P;
  P.fd = Fd;
  P.events = POLLRDHUP;
  P.revents = 0;
  if (::poll(&P, 1, 0) < 0)
    return false;
  return P.revents & (POLLHUP | POLLERR | POLLNVAL | POLLRDHUP);
}

} // namespace

std::string ServeDaemon::handleSolve(const WireMessage &M, int ConnFd) {
  Stats.Requests.fetch_add(1, std::memory_order_relaxed);

  SolverOptions O = Opts.BaseOpts;
  std::string Config = M.header("config");
  if (!Config.empty()) {
    auto Parsed = SolverOptions::parse(Config);
    if (!Parsed)
      return errorFrame("unknown configuration '" + Config + "'");
    // The config names the engine shape; runtime knobs stay at the
    // daemon's base values unless headers below override them.
    SolverOptions Base = O;
    O = *Parsed;
    O.MemLimitMb = Base.MemLimitMb;
    O.MaxRetries = Base.MaxRetries;
    O.NoIncremental = Base.NoIncremental;
    O.VerifyResult = Base.VerifyResult;
    O.MaxRefineSteps = Base.MaxRefineSteps;
  }
  auto U64 = [&](const char *Key, uint64_t Default) -> uint64_t {
    std::string V = M.header(Key);
    return V.empty() ? Default : std::strtoull(V.c_str(), nullptr, 10);
  };
  O.MemLimitMb = U64("mem-limit-mb", O.MemLimitMb);
  O.MaxRetries = static_cast<unsigned>(U64("max-retries", O.MaxRetries));
  O.ChaosSeed = U64("chaos-seed", O.ChaosSeed);
  O.MaxRefineSteps = U64("max-refine-steps", O.MaxRefineSteps);
  if (!M.header("no-incremental").empty())
    O.NoIncremental = M.header("no-incremental") == "1";
  if (!M.header("verify").empty())
    O.VerifyResult = M.header("verify") == "1";
  O.HardMemMb = U64("hard-mem-mb", O.HardMemMb);
  O.HardCpuSec = U64("hard-cpu-sec", O.HardCpuSec);
  if (!M.header("isolate").empty()) {
    auto IM = parseIsolateMode(M.header("isolate"));
    if (!IM)
      return errorFrame("bad isolate value '" + M.header("isolate") + "'");
    O.Isolate = *IM;
  }

  SolveRequest Req = SolveRequest::fromText(M.Body, O);
  Req.DeadlineMs = U64("deadline-ms", Opts.DefaultDeadlineMs);
  Req.Tags = M.header("tags");
  Req.WantSolution = M.header("want-solution") == "1";
  Req.NoStore = M.header("no-store") == "1";
  Req.KeepContext = false;
  Req.TestCrash = M.header("x-crash");

  // Run the job on the session pool; this connection thread meanwhile
  // watches the socket so a client that disconnects mid-job cancels it
  // instead of leaving a zombie burning a worker.
  std::mutex Mu;
  std::condition_variable Cv;
  bool Done = false;
  SolveResponse Resp;
  auto Tok = Session.newJobToken();
  if (!Session.trySubmit(std::move(Req), Tok,
                         [&](SolveResponse R) {
                           std::lock_guard<std::mutex> Lock(Mu);
                           Resp = std::move(R);
                           Done = true;
                           Cv.notify_all();
                         },
                         Opts.MaxPending)) {
    Stats.Overloaded.fetch_add(1, std::memory_order_relaxed);
    return overloadedFrame("pending-job bound reached; retry later",
                           Session.pending());
  }
  {
    bool CancelledByPeer = false;
    std::unique_lock<std::mutex> Lock(Mu);
    while (!Done) {
      Cv.wait_for(Lock, std::chrono::milliseconds(50));
      if (Done)
        break;
      if (ConnFd >= 0 && !CancelledByPeer && peerGone(ConnFd)) {
        CancelledByPeer = true;
        Stats.Cancelled.fetch_add(1, std::memory_order_relaxed);
        Tok->request();
      }
    }
  }

  if (Resp.Status != ChcStatus::Unknown)
    Stats.Definitive.fetch_add(1, std::memory_order_relaxed);
  if (Resp.Cache != CacheSource::None)
    Stats.CacheHits.fetch_add(1, std::memory_order_relaxed);
  if (Resp.Error.Code == ErrorCode::WorkerCrashedSignal ||
      Resp.Error.Code == ErrorCode::WorkerCrashedRlimit ||
      Resp.Error.Code == ErrorCode::WorkerCrashedWedged)
    Stats.WorkerCrashes.fetch_add(1, std::memory_order_relaxed);

  WireMessage R;
  R.Verb = "result";
  R.Headers["status"] = chcStatusName(Resp.Status);
  if (!Resp.Fingerprint.empty())
    R.Headers["fingerprint"] = Resp.Fingerprint;
  R.Headers["cache"] = cacheSourceName(Resp.Cache);
  R.Headers["verified"] = Resp.CacheVerified ? "1" : "0";
  R.Headers["attempts"] = std::to_string(Resp.Attempts);
  R.Headers["depth"] = std::to_string(Resp.Depth);
  {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6f", Resp.Seconds);
    R.Headers["seconds"] = Buf;
  }
  R.Headers["smt-checks"] = std::to_string(Resp.Stats.SmtChecks);
  if (Resp.Error.isError())
    R.Headers["error"] = Resp.Error.describe();
  if (Resp.VerifyFailed)
    R.Headers["verify-failed"] = Resp.VerifyNote;
  if (!Resp.Tags.empty())
    R.Headers["tags"] = Resp.Tags;
  R.Body = Resp.SolutionText;
  return formatWireMessage(R);
}

std::string ServeDaemon::handle(const WireMessage &M, int ConnFd) {
  if (M.Verb == "ping") {
    WireMessage R;
    R.Verb = "pong";
    return formatWireMessage(R);
  }
  if (M.Verb == "stats") {
    WireMessage R;
    R.Verb = "stats";
    auto Put = [&](const char *K, uint64_t V) {
      R.Headers[K] = std::to_string(V);
    };
    Put("connections", Stats.Connections.load());
    Put("requests", Stats.Requests.load());
    Put("definitive", Stats.Definitive.load());
    Put("cache-hits", Stats.CacheHits.load());
    Put("cancelled", Stats.Cancelled.load());
    Put("bad-frames", Stats.BadFrames.load());
    Put("overloaded", Stats.Overloaded.load());
    Put("timed-out-conns", Stats.TimedOutConns.load());
    Put("worker-crashes", Stats.WorkerCrashes.load());
    ResultStore::Counters C = Store.counters();
    Put("store-mem-hits", C.MemHits);
    Put("store-disk-hits", C.DiskHits);
    Put("store-misses", C.Misses);
    Put("store-inserts", C.Inserts);
    Put("store-rejects", C.Rejects);
    Put("store-write-errors", C.WriteErrors);
    const ResultStore::RecoveryReport &RR = Store.recovery();
    Put("store-recovered-intact", RR.Intact);
    Put("store-quarantined", RR.Quarantined);
    Put("store-tmp-swept", RR.TmpSwept);
    Put("workers", Session.workers());
    Put("pending", Session.pending());
    return formatWireMessage(R);
  }
  if (M.Verb == "solve")
    return handleSolve(M, ConnFd);
  return errorFrame("unknown verb '" + M.Verb + "'");
}

void ServeDaemon::serveConnection(int InFd, int OutFd) {
  std::string Payload;
  while (!Stopping.load(std::memory_order_relaxed)) {
    FrameStatus FS = readFrameDeadline(InFd, Payload, Opts.MaxFrameBytes,
                                       Opts.ReadStallMs, Opts.IdleTimeoutMs);
    if (FS == FrameStatus::Eof)
      return;
    if (FS == FrameStatus::TimedOut) {
      // Slow-loris or vanished client: don't let a half-frame pin this
      // thread. Best-effort goodbye, then close.
      Stats.TimedOutConns.fetch_add(1, std::memory_order_relaxed);
      writeFrame(OutFd, errorFrame("read deadline exceeded"));
      return;
    }
    if (FS == FrameStatus::Oversized) {
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      if (!writeFrame(OutFd, errorFrame("frame exceeds size limit")))
        return;
      continue; // The stream is still framed; keep serving.
    }
    if (FS != FrameStatus::Ok) {
      // Truncated or I/O error: the framing is gone, close.
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    WireMessage M;
    std::string Err;
    std::string Response;
    if (!parseWireMessage(Payload, M, &Err)) {
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      Response = errorFrame(Err);
    } else {
      Response = handle(M, InFd);
    }
    if (!writeFrame(OutFd, Response))
      return;
  }
}

int ServeDaemon::runStdio() {
  Stats.Connections.fetch_add(1, std::memory_order_relaxed);
  serveConnection(0, 1);
  return 0;
}

int ServeDaemon::runSocket() {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("mucyc-serve: socket");
    return 1;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "mucyc-serve: socket path too long\n");
    ::close(Fd);
    return 1;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Fd, 64) < 0) {
    std::perror("mucyc-serve: bind/listen");
    ::close(Fd);
    return 1;
  }
  ListenFd.store(Fd);

  // Live connection fds, so stop() can shut them down and unblock their
  // reader threads before joining.
  std::set<int> LiveFds;
  std::mutex *FdsMu = &ThreadsMu;

  while (!Stopping.load(std::memory_order_relaxed)) {
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      break; // Listener closed by stop(), or a hard error.
    }
    Stats.Connections.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(*FdsMu);
      if (Stopping.load(std::memory_order_relaxed)) {
        ::close(Conn);
        break;
      }
      if (Opts.MaxConnections && LiveFds.size() >= Opts.MaxConnections) {
        // Shed at the door: a typed goodbye beats an unexplained hang
        // when every connection thread is taken.
        Stats.Overloaded.fetch_add(1, std::memory_order_relaxed);
        writeFrame(Conn, overloadedFrame("connection limit reached",
                                         Session.pending()));
        ::close(Conn);
        continue;
      }
      LiveFds.insert(Conn);
      ConnThreads.emplace_back([this, Conn, &LiveFds, FdsMu] {
        serveConnection(Conn, Conn);
        {
          std::lock_guard<std::mutex> Lock(*FdsMu);
          LiveFds.erase(Conn);
        }
        ::close(Conn);
      });
    }
  }

  // Unblock any connection thread still parked in read().
  {
    std::lock_guard<std::mutex> Lock(*FdsMu);
    for (int C : LiveFds)
      ::shutdown(C, SHUT_RDWR);
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ThreadsMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
  int LFd = ListenFd.exchange(-1);
  if (LFd >= 0)
    ::close(LFd);
  ::unlink(Opts.SocketPath.c_str());
  return 0;
}

void ServeDaemon::stop() {
  Stopping.store(true, std::memory_order_relaxed);
  // Closing the listener kicks accept() out of its block; runSocket()'s
  // epilogue then shuts down live connections and joins.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}
