//===- runtime/ResultStore.h - Fingerprint-keyed result cache ---*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second cache tier of the solving service: a disk-backed store of
/// definitive results keyed by the normalized system's canonical fingerprint
/// (chc/Fingerprint.h), so identical or alpha-renamed resubmissions — the
/// common case under heavy traffic — skip the engines entirely. Entries
/// carry the answer's certificate (the invariant for sat, the reachable bad
/// region for unsat) serialized as an SMT-LIB formula over a canonical
/// variable tuple, plus enough metadata to rebuild and *re-verify* it in
/// the requester's context before it is served: the store is an
/// accelerator, never a trusted oracle. A corrupt or mismatched entry is
/// dropped and the request falls through to a cold solve.
///
/// Layout: one file per fingerprint under the store directory
/// (`<fp>.mucyc-result`, the line-oriented `mucyc-result-v2` text format
/// whose last line is an FNV-1a 64 checksum of everything before it),
/// written durably — full content staged to a `.tmp` sibling, fsync'd,
/// then renamed into place — and fronted by a bounded in-memory map with
/// FIFO eviction. On construction the store scans its directory once:
/// entries that fail the checksum, fail to parse, or carry a legacy/foreign
/// header are moved into a `quarantine/` subdirectory (never served, kept
/// for inspection) and orphaned `.tmp` files from interrupted writes are
/// swept. The Verified bit is process-local: a certificate loaded from
/// disk is re-run through Verify once per daemon lifetime, then hits serve
/// from the verified in-memory entry. Thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_RESULTSTORE_H
#define MUCYC_RUNTIME_RESULTSTORE_H

#include "solver/ChcSolve.h"

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mucyc {

/// Where a response came from; provenance surfaced to clients.
enum class CacheSource : uint8_t {
  None,   ///< Cold solve, no cache involved.
  Memory, ///< In-memory tier hit.
  Disk,   ///< Loaded from the disk tier (now also in memory).
};

/// "cold", "mem-hit" or "disk-hit".
const char *cacheSourceName(CacheSource S);

class ResultStore {
public:
  struct Entry {
    ChcStatus Status = ChcStatus::Unknown;
    int Depth = 0;
    std::string Config;        ///< Configuration that produced the answer.
    std::vector<Sort> ZSorts;  ///< Sanity check against the requester's Z.
    std::string Cert;          ///< Z-formula over canonical names mz0..mzN.
    bool Verified = false;     ///< Re-verified in this process.
  };

  struct Counters {
    uint64_t MemHits = 0, DiskHits = 0, Misses = 0, Inserts = 0,
             Rejects = 0,     ///< Entries dropped (failed re-verify / corrupt).
             WriteErrors = 0; ///< Disk writes that failed (full/readonly/torn).
  };

  /// What the construction-time recovery scan found in the store directory.
  struct RecoveryReport {
    uint64_t Scanned = 0;     ///< `.mucyc-result` files examined.
    uint64_t Intact = 0;      ///< Valid v2 entries left in place.
    uint64_t Quarantined = 0; ///< Corrupt/legacy/torn moved to quarantine/.
    uint64_t TmpSwept = 0;    ///< Orphaned `.tmp` staging files removed.
  };

  /// \p Dir empty = memory tier only. The directory is created on first
  /// insert. \p MemCap bounds the in-memory tier (FIFO eviction; evicted
  /// entries remain on disk). A non-empty existing directory is recovery-
  /// scanned here (see file comment).
  explicit ResultStore(std::string Dir = "", size_t MemCap = 4096);

  /// Looks up \p Fp: memory first, then disk (a disk hit is promoted into
  /// memory). \p Src (optional) reports which tier answered.
  std::optional<Entry> lookup(const std::string &Fp,
                              CacheSource *Src = nullptr);

  /// Inserts (or overwrites) the entry in both tiers.
  void insert(const std::string &Fp, Entry E);

  /// Marks the in-memory entry as verified in this process.
  void markVerified(const std::string &Fp);

  /// Drops a poisoned entry from both tiers and counts a reject.
  void erase(const std::string &Fp);

  Counters counters() const;
  const std::string &dir() const { return DirPath; }
  const RecoveryReport &recovery() const { return Recovery; }

  //===--------------------------------------------------------------------===
  // Disk format building blocks — public so tests (and the chaos rig) can
  // craft valid, torn and corrupt entries byte-for-byte.
  //===--------------------------------------------------------------------===

  /// FNV-1a 64-bit over \p Data.
  static uint64_t fnv1a64(const std::string &Data);

  /// Renders \p E as the complete v2 file content, checksum line included.
  static std::string formatEntry(const Entry &E);

  /// Parses complete file content; nullopt on a bad header, a checksum
  /// mismatch (torn write), or malformed fields.
  static std::optional<Entry> parseFileText(const std::string &Text);

  //===--------------------------------------------------------------------===
  // Certificate (de)serialization — free-standing so tests can target them.
  //===--------------------------------------------------------------------===

  /// Renders \p Cert (a Z-formula of \p N) over the canonical variable
  /// names mz0..mzN, independent of the context's own names.
  static std::string serializeCert(TermContext &Ctx, const NormalizedChc &N,
                                   TermRef Cert);

  /// Parses a serializeCert() rendering back into a Z-formula of \p N in
  /// \p Ctx. Returns an invalid TermRef and fills \p Err on malformed text.
  static TermRef parseCert(TermContext &Ctx, const NormalizedChc &N,
                           const std::string &Text, std::string *Err);

private:
  std::string filePath(const std::string &Fp) const;
  std::optional<Entry> loadFile(const std::string &Fp) const;
  void storeFile(const std::string &Fp, const Entry &E);
  void memInsert(const std::string &Fp, Entry E); ///< Mu held by caller.
  void recoverScan();

  std::string DirPath;
  size_t MemCap;
  mutable std::mutex Mu;
  std::unordered_map<std::string, Entry> Mem;
  std::deque<std::string> Fifo;
  Counters Cnt;
  RecoveryReport Recovery;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_RESULTSTORE_H
