//===- runtime/ResultStore.h - Fingerprint-keyed result cache ---*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second cache tier of the solving service: a disk-backed store of
/// definitive results keyed by the normalized system's canonical fingerprint
/// (chc/Fingerprint.h), so identical or alpha-renamed resubmissions — the
/// common case under heavy traffic — skip the engines entirely. Entries
/// carry the answer's certificate (the invariant for sat, the reachable bad
/// region for unsat) serialized as an SMT-LIB formula over a canonical
/// variable tuple, plus enough metadata to rebuild and *re-verify* it in
/// the requester's context before it is served: the store is an
/// accelerator, never a trusted oracle. A corrupt or mismatched entry is
/// dropped and the request falls through to a cold solve.
///
/// Layout: one file per fingerprint under the store directory
/// (`<fp>.mucyc-result`, a small line-oriented text format), written
/// atomically via rename, fronted by a bounded in-memory map with FIFO
/// eviction. The Verified bit is process-local: a certificate loaded from
/// disk is re-run through Verify once per daemon lifetime, then hits serve
/// from the verified in-memory entry. Thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_RESULTSTORE_H
#define MUCYC_RUNTIME_RESULTSTORE_H

#include "solver/ChcSolve.h"

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mucyc {

/// Where a response came from; provenance surfaced to clients.
enum class CacheSource : uint8_t {
  None,   ///< Cold solve, no cache involved.
  Memory, ///< In-memory tier hit.
  Disk,   ///< Loaded from the disk tier (now also in memory).
};

/// "cold", "mem-hit" or "disk-hit".
const char *cacheSourceName(CacheSource S);

class ResultStore {
public:
  struct Entry {
    ChcStatus Status = ChcStatus::Unknown;
    int Depth = 0;
    std::string Config;        ///< Configuration that produced the answer.
    std::vector<Sort> ZSorts;  ///< Sanity check against the requester's Z.
    std::string Cert;          ///< Z-formula over canonical names mz0..mzN.
    bool Verified = false;     ///< Re-verified in this process.
  };

  struct Counters {
    uint64_t MemHits = 0, DiskHits = 0, Misses = 0, Inserts = 0,
             Rejects = 0; ///< Entries dropped (failed re-verify / corrupt).
  };

  /// \p Dir empty = memory tier only. The directory is created on first
  /// insert. \p MemCap bounds the in-memory tier (FIFO eviction; evicted
  /// entries remain on disk).
  explicit ResultStore(std::string Dir = "", size_t MemCap = 4096);

  /// Looks up \p Fp: memory first, then disk (a disk hit is promoted into
  /// memory). \p Src (optional) reports which tier answered.
  std::optional<Entry> lookup(const std::string &Fp,
                              CacheSource *Src = nullptr);

  /// Inserts (or overwrites) the entry in both tiers.
  void insert(const std::string &Fp, Entry E);

  /// Marks the in-memory entry as verified in this process.
  void markVerified(const std::string &Fp);

  /// Drops a poisoned entry from both tiers and counts a reject.
  void erase(const std::string &Fp);

  Counters counters() const;
  const std::string &dir() const { return DirPath; }

  //===--------------------------------------------------------------------===
  // Certificate (de)serialization — free-standing so tests can target them.
  //===--------------------------------------------------------------------===

  /// Renders \p Cert (a Z-formula of \p N) over the canonical variable
  /// names mz0..mzN, independent of the context's own names.
  static std::string serializeCert(TermContext &Ctx, const NormalizedChc &N,
                                   TermRef Cert);

  /// Parses a serializeCert() rendering back into a Z-formula of \p N in
  /// \p Ctx. Returns an invalid TermRef and fills \p Err on malformed text.
  static TermRef parseCert(TermContext &Ctx, const NormalizedChc &N,
                           const std::string &Text, std::string *Err);

private:
  std::string filePath(const std::string &Fp) const;
  std::optional<Entry> loadFile(const std::string &Fp) const;
  void storeFile(const std::string &Fp, const Entry &E) const;
  void memInsert(const std::string &Fp, Entry E); ///< Mu held by caller.

  std::string DirPath;
  size_t MemCap;
  mutable std::mutex Mu;
  std::unordered_map<std::string, Entry> Mem;
  std::deque<std::string> Fifo;
  Counters Cnt;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_RESULTSTORE_H
