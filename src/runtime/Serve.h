//===- runtime/Serve.h - Persistent solving service -------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mucyc-serve daemon: a long-lived solving service accepting CHC jobs
/// over a length-prefixed protocol, on stdio or a local (UNIX domain)
/// socket. Jobs are admitted through a persistent SchedulerSession with
/// per-request deadlines, isolated behind the recovery ladder (a crashing
/// job degrades to an `unknown` response; the daemon survives), and served
/// through the two-tier ResultStore so identical or alpha-renamed
/// resubmissions return a Verify-certified cached answer in microseconds.
///
/// Wire format: every message is one frame — a 4-byte big-endian payload
/// length followed by that many bytes of UTF-8 text. The payload is a verb
/// line ("solve", "ping", "stats"), `key: value` header lines, a blank
/// line, and an optional body (the SMT-LIB2 system for "solve"). Responses
/// mirror the shape with verbs "result", "pong", "stats" and "error".
/// A frame larger than the configured cap is drained and answered with an
/// "error" frame (the connection stays usable); a malformed or truncated
/// frame closes the connection. Mid-job client disconnect is detected by
/// polling the connection while the job runs and cancels the job through
/// its CancelToken.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_SERVE_H
#define MUCYC_RUNTIME_SERVE_H

#include "runtime/Scheduler.h"

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace mucyc {

//===----------------------------------------------------------------------===
// Wire codec — free functions so protocol tests can target them directly.
//===----------------------------------------------------------------------===

/// One protocol message, either direction.
struct WireMessage {
  std::string Verb;
  std::map<std::string, std::string> Headers;
  std::string Body;

  std::string header(const std::string &Key, std::string Default = "") const {
    auto It = Headers.find(Key);
    return It == Headers.end() ? std::move(Default) : It->second;
  }
};

/// Renders a message as one frame payload (verb, headers, blank line,
/// body). Header keys/values must not contain newlines.
std::string formatWireMessage(const WireMessage &M);

/// Parses a frame payload. Returns false (and fills \p Err) on a payload
/// with no verb line; unknown headers are preserved, junk header lines
/// (no ": ") are skipped.
bool parseWireMessage(const std::string &Payload, WireMessage &M,
                      std::string *Err);

/// What readFrame concluded.
enum class FrameStatus {
  Ok,        ///< A complete frame was read.
  Eof,       ///< Clean end of stream at a frame boundary.
  Truncated, ///< Stream ended mid-frame (protocol violation — close).
  Oversized, ///< Frame exceeded \p MaxBytes; payload drained and dropped.
  IoError,   ///< read() failed.
  TimedOut,  ///< readFrameDeadline: no progress within the stall budget.
};

/// Reads one length-prefixed frame from \p Fd. An oversized frame is fully
/// drained (the stream stays framed) but its payload is discarded. Partial
/// reads and EINTR are handled; the call blocks until a frame completes or
/// the stream ends.
FrameStatus readFrame(int Fd, std::string &Payload, size_t MaxBytes);

/// readFrame with slow-loris protection: \p StallTimeoutMs bounds how long
/// the stream may sit byte-silent *mid-frame* (and, when \p IdleTimeoutMs
/// is nonzero, how long it may idle before the first header byte). A
/// legitimate slow writer that keeps trickling bytes never trips it; a
/// half-frame left dangling does, as TimedOut.
FrameStatus readFrameDeadline(int Fd, std::string &Payload, size_t MaxBytes,
                              int StallTimeoutMs, int IdleTimeoutMs = 0);

/// Writes one frame to \p Fd, riding out EINTR and partial writes. Returns
/// false on a write failure (e.g. the peer is gone).
bool writeFrame(int Fd, const std::string &Payload);

//===----------------------------------------------------------------------===
// Daemon
//===----------------------------------------------------------------------===

struct ServeOptions {
  /// UNIX socket path for runSocket(); unused in stdio mode.
  std::string SocketPath;
  /// Worker threads for the scheduler session (0 = hardware).
  unsigned Jobs = 0;
  /// Result-store directory; empty = in-memory tier only.
  std::string StoreDir;
  /// Default SolverOptions for requests that send no "config" header; the
  /// request's headers overlay this.
  SolverOptions BaseOpts;
  /// Deadline applied to requests that send no "deadline-ms" header
  /// (0 = none).
  uint64_t DefaultDeadlineMs = 0;
  /// Frame-size cap; larger frames are rejected with an "error" response.
  size_t MaxFrameBytes = 16u << 20;

  // Admission control / overload hardening.

  /// Max jobs queued or running in the scheduler session at once; a solve
  /// arriving past the bound is answered with an "overloaded" frame instead
  /// of being enqueued (0 = unbounded, the historical behavior).
  unsigned MaxPending = 0;
  /// Max concurrent connections; excess accepts are closed immediately
  /// after an "overloaded" frame (0 = unbounded).
  unsigned MaxConnections = 0;
  /// Mid-frame read-stall budget per connection in ms: a client that sends
  /// half a frame then goes silent is disconnected instead of pinning its
  /// thread (0 = wait forever).
  int ReadStallMs = 10000;
  /// Total idle budget between requests in ms (0 = no idle limit).
  int IdleTimeoutMs = 0;
};

/// Daemon-wide counters, exposed over the "stats" verb.
struct ServeStats {
  std::atomic<uint64_t> Connections{0};
  std::atomic<uint64_t> Requests{0};   ///< "solve" frames accepted.
  std::atomic<uint64_t> Definitive{0}; ///< sat/unsat responses.
  std::atomic<uint64_t> CacheHits{0};  ///< Served from the result store.
  std::atomic<uint64_t> Cancelled{0};  ///< Jobs cancelled (disconnects).
  std::atomic<uint64_t> BadFrames{0};  ///< Malformed/oversized frames.
  std::atomic<uint64_t> Overloaded{0}; ///< Requests shed by admission control.
  std::atomic<uint64_t> TimedOutConns{0}; ///< Connections cut for stalling.
  std::atomic<uint64_t> WorkerCrashes{0}; ///< Isolated workers that died.
};

class ServeDaemon {
public:
  explicit ServeDaemon(ServeOptions O);
  ~ServeDaemon();

  /// Serves one connection reading frames from \p InFd and writing to
  /// \p OutFd until EOF / error. This is the whole per-connection state
  /// machine; tests drive it directly over a socketpair.
  void serveConnection(int InFd, int OutFd);

  /// Stdio mode: serves exactly one connection on fd 0/1, then returns 0.
  int runStdio();

  /// Socket mode: binds SocketPath, accepts connections (one thread each)
  /// until stop(). Returns 0 on clean shutdown, 1 on a bind/listen error
  /// (diagnostic on stderr).
  int runSocket();

  /// Stops runSocket(): closes the listener, cancels in-flight jobs, joins
  /// connection threads. Safe from any thread / signal-ish contexts.
  void stop();

  const ServeStats &stats() const { return Stats; }
  ResultStore &store() { return Store; }

private:
  /// Handles one parsed message, producing the response frame payload.
  /// \p ConnFd (>= 0) is polled for client disconnect while a solve job
  /// runs; -1 disables disconnect detection (tests).
  std::string handle(const WireMessage &M, int ConnFd);
  std::string handleSolve(const WireMessage &M, int ConnFd);

  ServeOptions Opts;
  ResultStore Store;
  SchedulerSession Session;
  ServeStats Stats;

  std::atomic<bool> Stopping{false};
  std::atomic<int> ListenFd{-1};
  std::mutex ThreadsMu;
  std::vector<std::thread> ConnThreads;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_SERVE_H
