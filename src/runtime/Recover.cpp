//===- runtime/Recover.cpp - Degraded-retry solving -----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Recover.h"

#include <chrono>
#include <thread>

using namespace mucyc;

SolverOptions mucyc::degradeOptions(const SolverOptions &Base,
                                    unsigned Attempt) {
  SolverOptions O = Base;
  if (Attempt == 0)
    return O;
  // Every degraded attempt: drop the incremental backend (persistent
  // solvers and the query cache are exactly the state a transient fault or
  // a blown budget may have poisoned) and halve the internal search
  // budgets so the retry fits in the remaining envelope.
  O.NoIncremental = true;
  O.QueryCacheCap = 0;
  if (O.MaxRefineSteps)
    O.MaxRefineSteps = std::max<uint64_t>(1, O.MaxRefineSteps / 2);
  if (O.MaxDepth)
    O.MaxDepth = std::max(1, O.MaxDepth / 2);
  // From the second retry on, switch to an alternate engine: complementary
  // strategies recover from divergence (and from engine-specific invariant
  // bugs) that no amount of re-running the same search would.
  if (Attempt >= 2) {
    if (Base.Engine == EngineKind::Ret) {
      O.Engine = EngineKind::SpacerTs;
      O.SpacerFig15 = false;
      O.SpacerULevels = false;
    } else {
      O.Engine = EngineKind::Ret;
      O.Cex = CexMethod::Mbp;
      O.MbpMode = 1;
      O.Accumulate = true;
    }
  }
  return O;
}

uint64_t mucyc::retryBackoffMs(uint64_t Seed, unsigned Attempt) {
  // Exponential base (5, 10, 20, ... ms) plus seed-derived jitter of the
  // same magnitude, capped at 100 ms: enough to let a transient load spike
  // pass, never enough to matter against a deadline.
  uint64_t Base = 5ull << std::min(Attempt - 1, 4u);
  return std::min<uint64_t>(100, Base + mixSeed(Seed, Attempt) % (Base + 1));
}

RecoveryOutcome mucyc::solveWithRecovery(
    const std::function<NormalizedChc(TermContext &)> &Build,
    const SolverOptions &Opts, uint64_t DeadlineMs,
    const std::atomic<bool> *Cancel) {
  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  };

  RecoveryOutcome Out;
  SolveStats Accum;
  for (unsigned Attempt = 0;; ++Attempt) {
    SolverOptions O = degradeOptions(Opts, Attempt);
    O.CancelFlag = Cancel;
    // Retries consume the remainder of the same deadline.
    if (DeadlineMs) {
      uint64_t Spent = ElapsedMs();
      if (Spent >= DeadlineMs) {
        Out.Res = SolverResult();
        Out.Res.Status = ChcStatus::Unknown;
        Out.Res.Error =
            ErrorInfo{ErrorCode::Timeout, "job deadline expired before "
                                          "attempt " +
                                              std::to_string(Attempt + 1)};
        break;
      }
      O.TimeoutMs = DeadlineMs - Spent;
    }
    // Per-attempt fault stream: with a shared injector (Opts.Faults) the
    // counters are monotone across attempts, so a tripped fault is
    // transient; with only a chaos seed, salt it per attempt so the
    // degraded run is not replaying the exact same trip points.
    if (!O.Faults && O.ChaosSeed)
      O.ChaosSeed = mixSeed(O.ChaosSeed, Attempt);

    Out.Ctx = std::make_shared<TermContext>();
    Out.Attempts = Attempt + 1;
    Out.Degraded = Attempt > 0;
    try {
      NormalizedChc N = Build(*Out.Ctx);
      ChcSolver S(*Out.Ctx, N, O);
      Out.Res = S.solve();
    } catch (const MucycError &E) {
      // Build-phase trips (the solve boundary catches its own): surface as
      // an errored Unknown so the ladder can decide on a retry.
      Out.Res = SolverResult();
      Out.Res.Status = ChcStatus::Unknown;
      Out.Res.Error = E.info();
    } catch (const std::exception &E) {
      // A non-taxonomy escape is an internal bug, but one job must never
      // take down a batch: record it as an invariant violation.
      Out.Res = SolverResult();
      Out.Res.Status = ChcStatus::Unknown;
      Out.Res.Error = ErrorInfo{ErrorCode::InvariantViolation,
                                std::string("uncaught exception: ") +
                                    E.what()};
    }
    Accum.merge(Out.Res.Stats);

    if (!errorRecoverable(Out.Res.Error.Code))
      break;
    if (Attempt >= Opts.MaxRetries)
      break;
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        retryBackoffMs(Opts.ChaosSeed ? Opts.ChaosSeed : 0x6d75637963ull,
                       Attempt + 1)));
  }
  Accum.Retries = Out.Attempts - 1;
  Accum.Degradations = Out.Attempts - 1;
  Out.Res.Stats = Accum;
  return Out;
}
