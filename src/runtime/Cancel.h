//===- runtime/Cancel.h - Cooperative cancellation tokens -------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical cooperative cancellation. A CancelToken owns one
/// std::atomic<bool>; cancelling a token also cancels every live descendant,
/// so a portfolio driver can hold one parent token per race and hand each
/// member its own child. Cancellation is *requested* here and *observed* in
/// the compute layers: the hot loops (SmtSolver's lemma loop, the CDCL
/// propagation loop, simplex pivoting, branch & bound) poll a raw
/// `const std::atomic<bool> *` — a single relaxed load per round — and wind
/// down with an Unknown/Aborted result. The raw-flag interface is what keeps
/// this header a dependency-free leaf: lower layers (smt, solver) never see
/// the token type, only std::atomic, so the strict library layering
/// (support -> term -> smt -> ... -> solver -> runtime) is preserved even
/// though requests originate above them.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_CANCEL_H
#define MUCYC_RUNTIME_CANCEL_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace mucyc {

/// One node in a cancellation tree. Create roots with CancelToken::create()
/// and children with child(); both return shared_ptrs because observers
/// (worker threads) and requesters (the driver) share ownership.
class CancelToken {
public:
  static std::shared_ptr<CancelToken> create() {
    return std::shared_ptr<CancelToken>(new CancelToken());
  }

  /// Creates a child cancelled whenever this token is (requests propagate
  /// down, never up: cancelling a child leaves its parent running). A child
  /// created after the parent was cancelled is born cancelled.
  std::shared_ptr<CancelToken> child() {
    auto C = create();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Children.push_back(C);
    }
    // Re-check after registration: a concurrent request() either saw the
    // new child in the list or runs before this load; both paths cancel it.
    if (cancelled())
      C->request();
    return C;
  }

  /// Requests cancellation of this token and all descendants. Idempotent
  /// and safe to call from any thread.
  void request() {
    Flag.store(true, std::memory_order_relaxed);
    std::vector<std::shared_ptr<CancelToken>> Snapshot;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      for (const std::weak_ptr<CancelToken> &W : Children)
        if (auto C = W.lock())
          Snapshot.push_back(std::move(C));
      Children.clear(); // Cancelled once is cancelled forever; drop them.
    }
    for (const auto &C : Snapshot)
      C->request();
  }

  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

  /// The raw flag polled by the compute layers (EngineContext, SmtSolver,
  /// SatSolver, Simplex, ArithChecker). Valid as long as the token lives.
  const std::atomic<bool> *flag() const { return &Flag; }

private:
  CancelToken() = default;

  std::atomic<bool> Flag{false};
  std::mutex Mu;
  std::vector<std::weak_ptr<CancelToken>> Children;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_CANCEL_H
