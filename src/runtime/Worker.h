//===- runtime/Worker.h - Forked worker-process execution tier --*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level blast-radius containment for solve jobs. The PR-4
/// recovery ladder catches typed C++ exceptions; it cannot catch a
/// segfault, an OOM kill, or a runaway native loop that never polls its
/// cancel flag. runInWorker() forks a sandboxed child per attempt: the
/// child applies hard OS limits (setrlimit RLIMIT_AS / RLIMIT_CPU from
/// SolverOptions::HardMemMb / HardCpuSec), receives the request over a
/// socketpair as one length-prefixed frame (the Serve.h codec — the same
/// bytes a remote worker would receive), solves, and streams one reply
/// frame back. The parent runs a watchdog that SIGKILLs a worker past its
/// deadline-plus-grace or on cooperative cancellation, and classifies any
/// abnormal exit (signal, nonzero status, truncated or malformed reply)
/// into a typed Unknown carrying an ErrorCode::WorkerCrashed{Signal,
/// Rlimit,Wedged} breadcrumb — all of which are recoverable, so the
/// parent-side crash ladder in solveRequest() retries a crashed worker
/// with a degraded configuration, mirroring the in-process ladder.
///
/// Modes (SolverOptions::Isolate): Crash forks only the cold engine run —
/// the warm store probe, certificate re-verification and store admission
/// stay in the parent, which also re-verifies the worker's certificate
/// before admitting it (a corrupted child must not be able to poison the
/// store). Always ships the whole request, store probe included: the child
/// opens its own disk-tier ResultStore on the shipped store directory.
/// Only textual requests (SolveRequest::Source) can cross the process
/// boundary; builder-only requests fall back to in-process execution.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_WORKER_H
#define MUCYC_RUNTIME_WORKER_H

#include "runtime/Request.h"
#include "runtime/Serve.h"

namespace mucyc {

/// Outcome of one forked worker attempt, before ladder/admission logic.
struct WorkerOutcome {
  SolveResponse Resp;      ///< Typed Unknown + breadcrumb when Crashed.
  bool Crashed = false;    ///< The child did not deliver a valid reply.
  std::string Cert;        ///< Serialized certificate (definitive answers).
  std::string ZSortsLine;  ///< Space-separated sort names of the Z tuple.
  std::string ConfigName;  ///< Configuration that produced the answer.
};

/// Encodes \p Req as the "work" frame shipped to the child. \p StoreDir is
/// non-empty only in Always mode. Exposed for protocol tests.
WireMessage encodeWorkerRequest(const SolveRequest &Req,
                                const std::string &StoreDir,
                                const std::string &TestCrash);

/// Runs one forked worker attempt: fork, sandbox, ship \p Req, watchdog,
/// reap, classify. \p DeadlineMs (0 = none) bounds the attempt; the
/// watchdog SIGKILLs at deadline + grace. \p Cancel is polled while
/// waiting; a cancelled worker is SIGKILLed and reported as Cancelled
/// (final, not a crash). Never throws.
WorkerOutcome runWorkerAttempt(const SolveRequest &Req, uint64_t DeadlineMs,
                               const std::atomic<bool> *Cancel,
                               const std::string &StoreDir,
                               const std::string &TestCrash);

/// The child side: parses one "work" frame payload, applies the x-crash
/// test directive if any, solves, and returns the reply frame payload.
/// Factored out of the fork so tests can drive it in-process.
std::string workerChildServe(const std::string &RequestPayload);

/// True while executing inside a worker child. Belt-and-braces recursion
/// guard: requests are shipped with isolation stripped, but a child must
/// never fork grandchildren even if handed a stray Isolate flag.
bool inWorkerChild();

} // namespace mucyc

#endif // MUCYC_RUNTIME_WORKER_H
