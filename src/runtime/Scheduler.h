//===- runtime/Scheduler.h - Batch solve-job scheduler ----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes batches of (instance x configuration) CHC solve jobs on a
/// thread pool with per-job deadlines and cooperative cancellation. Each
/// job builds its system into a private TermContext, so jobs share no
/// mutable state and the answer of every job is independent of the worker
/// count; results are collected into a vector indexed by submission order,
/// which makes `--jobs 1` and `--jobs N` produce identical result
/// sequences (only wall-clock changes). This is the substrate for the
/// parallel Table 1 / Figure 2 sweeps and for the portfolio driver.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_SCHEDULER_H
#define MUCYC_RUNTIME_SCHEDULER_H

#include "runtime/Cancel.h"
#include "runtime/Request.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <string>
#include <vector>

namespace mucyc {

class ThreadPool;

/// One solve job: a system builder plus the configuration to run it under.
/// The builder runs on the worker thread against a job-private TermContext.
struct SolveJob {
  std::function<NormalizedChc(TermContext &)> Build;
  SolverOptions Opts;
  /// Per-job deadline in milliseconds (0 = none), measured from the moment
  /// the job starts executing, not from submission — matching what a
  /// sequential sweep charges each instance. With Opts.MaxRetries > 0 the
  /// deadline covers the whole retry ladder, not each attempt.
  uint64_t DeadlineMs = 0;
  /// Batch-relative deadline in milliseconds (0 = none), measured from
  /// Scheduler::run() entry. A job whose AbsDeadlineMs has already passed
  /// when a worker picks it up reports Timeout deterministically — its
  /// Build is never invoked — instead of racing the pickup. A job that
  /// starts in time gets min(DeadlineMs, remaining) as its budget.
  uint64_t AbsDeadlineMs = 0;
};

/// Outcome of one job. Term references inside (invariant / cex piece) are
/// owned by the job-private context, which is destroyed with the job, so
/// only the status, depth, stats and timing survive here.
struct SolveJobOutcome {
  ChcStatus Status = ChcStatus::Unknown;
  int Depth = 0;
  SolveStats Stats;
  double Seconds = 0;
  /// Mirror of SolverResult::VerifyFailed/VerifyNote: set when the job ran
  /// with VerifyResult and its answer was refuted by the independent
  /// check. Differential harnesses treat this as an engine bug, so it must
  /// survive the job-private context.
  bool VerifyFailed = false;
  std::string VerifyNote;
  /// Breadcrumb for Unknown outcomes: the final attempt's typed error
  /// (timeout, budget trip, cancellation, invariant violation, injected
  /// fault). None for definitive answers.
  ErrorInfo Error;
  /// Attempts the recovery ladder executed (1 = no retry; capped at
  /// Opts.MaxRetries + 1). Stats.Retries/Degradations count the same
  /// thing mergeable-y.
  unsigned Attempts = 1;
};

class Scheduler {
public:
  /// \p Jobs worker threads; 0 means one per hardware thread. Requests
  /// beyond the hardware are capped (see workers()): oversubscription
  /// cannot speed up CPU-bound jobs but would skew their wall-clock
  /// deadlines relative to a sequential run.
  explicit Scheduler(unsigned Jobs) : NumWorkers(Jobs ? Jobs : 0) {}

  /// Runs the whole batch through solveRequest() and returns responses in
  /// submission order. \p Cancel (optional) aborts the remaining work when
  /// requested: running jobs stop cooperatively, queued jobs report
  /// Cancelled without executing (their source is never built), and every
  /// response slot is filled. \p Store (optional) is the shared result
  /// cache requests are probed against / admitted into. Requests whose
  /// Opts.MaxRetries > 0 are retried with degraded configurations on
  /// recoverable errors (see runtime/Recover.h); a worker-thread escape
  /// from one job never takes down the batch. Batch responses never keep
  /// their TermContext (KeepContext is forced off) so batch memory stays
  /// bounded.
  std::vector<SolveResponse>
  run(const std::vector<SolveRequest> &Batch,
      const std::shared_ptr<CancelToken> &Cancel = nullptr,
      ResultStore *Store = nullptr) const;

  /// Deprecated shim over the SolveRequest entry: runs SolveJob batches
  /// with identical semantics (including the deterministic pre-check
  /// diagnostics) and narrows the responses back to SolveJobOutcome.
  std::vector<SolveJobOutcome>
  run(const std::vector<SolveJob> &Batch,
      const std::shared_ptr<CancelToken> &Cancel = nullptr) const;

  unsigned workers() const;

private:
  unsigned NumWorkers;
};

/// A persistent scheduler for the serve daemon: one long-lived worker pool
/// plus a root cancel token and the shared ResultStore, accepting jobs one
/// at a time with a completion callback instead of as a closed batch.
/// Thread-safe. Destruction cancels outstanding work and joins.
class SchedulerSession {
public:
  /// \p Jobs as for Scheduler; \p Store (optional, unowned) must outlive
  /// the session.
  explicit SchedulerSession(unsigned Jobs, ResultStore *Store = nullptr);
  ~SchedulerSession();

  SchedulerSession(const SchedulerSession &) = delete;
  SchedulerSession &operator=(const SchedulerSession &) = delete;

  /// A fresh per-job cancel token: a child of the session root, so both a
  /// caller's request() (e.g. client disconnect) and shutdown() reach the
  /// job.
  std::shared_ptr<CancelToken> newJobToken() { return Root->child(); }

  /// Enqueues \p Req. \p JobTok (optional) cancels just this job; create
  /// it with newJobToken() so session shutdown reaches it too. \p Done
  /// runs on the worker thread when the job finishes (also for jobs
  /// short-circuited by cancellation) and must not block on the session.
  void submit(SolveRequest Req, std::shared_ptr<CancelToken> JobTok,
              std::function<void(SolveResponse)> Done);

  /// Bounded admission: like submit(), but refuses (returns false, nothing
  /// enqueued, Done never called) when \p MaxPending jobs are already
  /// queued or running. \p MaxPending = 0 never refuses. The daemon maps a
  /// refusal to a typed "overloaded" wire response instead of letting an
  /// unbounded queue absorb a traffic spike.
  bool trySubmit(SolveRequest Req, std::shared_ptr<CancelToken> JobTok,
                 std::function<void(SolveResponse)> Done,
                 unsigned MaxPending);

  /// Jobs currently queued or running.
  unsigned pending() const { return Pending.load(std::memory_order_relaxed); }

  /// Blocks until every submitted job has completed.
  void drain();

  /// Cancels outstanding jobs (they complete with Cancelled) and drains.
  void shutdown();

  unsigned workers() const;
  ResultStore *store() const { return Store; }

private:
  std::unique_ptr<ThreadPool> Pool;
  std::shared_ptr<CancelToken> Root;
  ResultStore *Store;
  std::atomic<unsigned> Pending{0};
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_SCHEDULER_H
