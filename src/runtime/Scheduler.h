//===- runtime/Scheduler.h - Batch solve-job scheduler ----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes batches of (instance x configuration) CHC solve jobs on a
/// thread pool with per-job deadlines and cooperative cancellation. Each
/// job builds its system into a private TermContext, so jobs share no
/// mutable state and the answer of every job is independent of the worker
/// count; results are collected into a vector indexed by submission order,
/// which makes `--jobs 1` and `--jobs N` produce identical result
/// sequences (only wall-clock changes). This is the substrate for the
/// parallel Table 1 / Figure 2 sweeps and for the portfolio driver.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_SCHEDULER_H
#define MUCYC_RUNTIME_SCHEDULER_H

#include "runtime/Cancel.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <string>
#include <vector>

namespace mucyc {

/// One solve job: a system builder plus the configuration to run it under.
/// The builder runs on the worker thread against a job-private TermContext.
struct SolveJob {
  std::function<NormalizedChc(TermContext &)> Build;
  SolverOptions Opts;
  /// Per-job deadline in milliseconds (0 = none), measured from the moment
  /// the job starts executing, not from submission — matching what a
  /// sequential sweep charges each instance. With Opts.MaxRetries > 0 the
  /// deadline covers the whole retry ladder, not each attempt.
  uint64_t DeadlineMs = 0;
  /// Batch-relative deadline in milliseconds (0 = none), measured from
  /// Scheduler::run() entry. A job whose AbsDeadlineMs has already passed
  /// when a worker picks it up reports Timeout deterministically — its
  /// Build is never invoked — instead of racing the pickup. A job that
  /// starts in time gets min(DeadlineMs, remaining) as its budget.
  uint64_t AbsDeadlineMs = 0;
};

/// Outcome of one job. Term references inside (invariant / cex piece) are
/// owned by the job-private context, which is destroyed with the job, so
/// only the status, depth, stats and timing survive here.
struct SolveJobOutcome {
  ChcStatus Status = ChcStatus::Unknown;
  int Depth = 0;
  SolveStats Stats;
  double Seconds = 0;
  /// Mirror of SolverResult::VerifyFailed/VerifyNote: set when the job ran
  /// with VerifyResult and its answer was refuted by the independent
  /// check. Differential harnesses treat this as an engine bug, so it must
  /// survive the job-private context.
  bool VerifyFailed = false;
  std::string VerifyNote;
  /// Breadcrumb for Unknown outcomes: the final attempt's typed error
  /// (timeout, budget trip, cancellation, invariant violation, injected
  /// fault). None for definitive answers.
  ErrorInfo Error;
  /// Attempts the recovery ladder executed (1 = no retry; capped at
  /// Opts.MaxRetries + 1). Stats.Retries/Degradations count the same
  /// thing mergeable-y.
  unsigned Attempts = 1;
};

class Scheduler {
public:
  /// \p Jobs worker threads; 0 means one per hardware thread. Requests
  /// beyond the hardware are capped (see workers()): oversubscription
  /// cannot speed up CPU-bound jobs but would skew their wall-clock
  /// deadlines relative to a sequential run.
  explicit Scheduler(unsigned Jobs) : NumWorkers(Jobs ? Jobs : 0) {}

  /// Runs the whole batch and returns outcomes in submission order.
  /// \p Cancel (optional) aborts the remaining work when requested: running
  /// jobs stop cooperatively, queued jobs report Cancelled without
  /// executing (their Build is never invoked), and every outcome slot is
  /// filled. Jobs whose Opts.MaxRetries > 0 are retried with degraded
  /// configurations on recoverable errors (see runtime/Recover.h); a
  /// worker-thread escape from one job never takes down the batch.
  std::vector<SolveJobOutcome>
  run(const std::vector<SolveJob> &Batch,
      const std::shared_ptr<CancelToken> &Cancel = nullptr) const;

  unsigned workers() const;

private:
  unsigned NumWorkers;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_SCHEDULER_H
