//===- runtime/Exchange.cpp - Portfolio lemma bus -------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Exchange.h"

using namespace mucyc;

LemmaExchange::LemmaExchange(size_t Members) {
  Ports.reserve(Members);
  for (size_t I = 0; I < Members; ++I)
    Ports.push_back(std::make_unique<Port>(*this, I));
}

size_t LemmaExchange::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Log.size();
}

void LemmaExchange::publish(size_t From, int Level, const std::string &Text) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Global dedup: the first publisher wins; a duplicate from another member
  // would only cost every reader a parse + re-check for a lemma it already
  // decided on.
  if (!Dedup.insert(Text).second)
    return;
  Log.push_back(Entry{Level, Text, From});
}

uint64_t LemmaExchange::fetch(size_t Reader, uint64_t Cursor, unsigned Max,
                              std::vector<SharedLemma> &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t I = Cursor;
  unsigned Taken = 0;
  for (; I < Log.size() && Taken < Max; ++I) {
    const Entry &E = Log[I];
    if (E.From == Reader)
      continue; // Own lemmas never round-trip.
    Out.push_back(SharedLemma{E.Level, E.Text});
    ++Taken;
  }
  return I;
}
