//===- runtime/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

using namespace mucyc;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = hardwareThreads();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::post(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Job));
  }
  WorkCv.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkCv.wait(Lock, [this] { return Stop || !Queue.empty(); });
      // Drain the queue even when stopping: the destructor promises that
      // every posted job runs.
      if (Queue.empty())
        return;
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Running;
      if (Queue.empty() && Running == 0)
        IdleCv.notify_all();
    }
  }
}
