//===- runtime/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain fixed-size thread pool: one locked FIFO queue, no work stealing.
/// Solve jobs are coarse (milliseconds to seconds), so a single
/// mutex+condvar queue is nowhere near contention; the value of the pool is
/// lock discipline (all shared state behind one mutex) and deterministic
/// dispatch order (jobs start in submission order regardless of the worker
/// count). Result ordering is the caller's job — see Scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_THREADPOOL_H
#define MUCYC_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mucyc {

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned Threads);

  /// Finishes every queued job, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a job. Jobs must not throw and must not touch the pool
  /// (posting from within a job is allowed; waiting on the pool is not).
  void post(std::function<void()> Job);

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable WorkCv;  ///< Signals workers: job ready / stop.
  std::condition_variable IdleCv;  ///< Signals drain(): everything done.
  unsigned Running = 0;            ///< Jobs currently executing.
  bool Stop = false;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_THREADPOOL_H
