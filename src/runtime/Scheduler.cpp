//===- runtime/Scheduler.cpp - Batch solve-job scheduler ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "runtime/Recover.h"
#include "runtime/ThreadPool.h"

#include <chrono>

using namespace mucyc;

unsigned Scheduler::workers() const {
  // Cap at the hardware: batch jobs are independent and CPU-bound, so
  // oversubscribing cores cannot add throughput — it only time-shares
  // workers and makes per-job wall-clock deadlines bite earlier than they
  // would sequentially, which is exactly the nondeterminism `--jobs` must
  // not introduce. (The portfolio deliberately does NOT cap: racing
  // members must run concurrently even on one core.)
  unsigned HW = ThreadPool::hardwareThreads();
  if (!NumWorkers || NumWorkers > HW)
    return HW;
  return NumWorkers;
}

std::vector<SolveJobOutcome>
Scheduler::run(const std::vector<SolveJob> &Batch,
               const std::shared_ptr<CancelToken> &Cancel) const {
  std::vector<SolveJobOutcome> Out(Batch.size());
  if (Batch.empty())
    return Out;

  auto BatchStart = std::chrono::steady_clock::now();
  auto ElapsedMs = [BatchStart] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - BatchStart)
            .count());
  };

  // One child token for the whole batch: an external request() stops every
  // member without cancelling unrelated users of the parent. The token is
  // kept alive by this frame across pool teardown.
  std::shared_ptr<CancelToken> BatchTok =
      Cancel ? Cancel->child() : CancelToken::create();

  {
    ThreadPool Pool(workers());
    for (size_t I = 0; I < Batch.size(); ++I) {
      const SolveJob &J = Batch[I];
      SolveJobOutcome *Slot = &Out[I];
      Pool.post([&J, Slot, &BatchTok, &ElapsedMs] {
        // Deterministic short-circuits BEFORE any work: a cancelled batch
        // or a batch-relative deadline that already passed must not depend
        // on how fast this worker got here.
        if (BatchTok->cancelled()) {
          Slot->Error = ErrorInfo{ErrorCode::Cancelled,
                                  "batch cancelled before the job started"};
          return;
        }
        uint64_t Deadline = J.DeadlineMs;
        if (J.AbsDeadlineMs) {
          uint64_t Spent = ElapsedMs();
          if (Spent >= J.AbsDeadlineMs) {
            Slot->Error =
                ErrorInfo{ErrorCode::Timeout,
                          "batch-relative deadline expired before the job "
                          "started"};
            return;
          }
          uint64_t Remaining = J.AbsDeadlineMs - Spent;
          Deadline = Deadline ? std::min(Deadline, Remaining) : Remaining;
        }
        RecoveryOutcome RO =
            solveWithRecovery(J.Build, J.Opts, Deadline, BatchTok->flag());
        Slot->Status = RO.Res.Status;
        Slot->Depth = RO.Res.Depth;
        Slot->Stats = RO.Res.Stats;
        Slot->Seconds = RO.Res.Seconds;
        Slot->VerifyFailed = RO.Res.VerifyFailed;
        Slot->VerifyNote = RO.Res.VerifyNote;
        Slot->Error = RO.Res.Error;
        Slot->Attempts = RO.Attempts;
        // RO.Ctx (and the terms in RO.Res) die here with the job.
      });
    }
    // ~ThreadPool drains the queue and joins, so every slot is written
    // before we return.
  }
  return Out;
}
