//===- runtime/Scheduler.cpp - Batch solve-job scheduler ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "runtime/ThreadPool.h"

#include <chrono>

using namespace mucyc;

unsigned Scheduler::workers() const {
  // Cap at the hardware: batch jobs are independent and CPU-bound, so
  // oversubscribing cores cannot add throughput — it only time-shares
  // workers and makes per-job wall-clock deadlines bite earlier than they
  // would sequentially, which is exactly the nondeterminism `--jobs` must
  // not introduce. (The portfolio deliberately does NOT cap: racing
  // members must run concurrently even on one core.)
  unsigned HW = ThreadPool::hardwareThreads();
  if (!NumWorkers || NumWorkers > HW)
    return HW;
  return NumWorkers;
}

std::vector<SolveResponse>
Scheduler::run(const std::vector<SolveRequest> &Batch,
               const std::shared_ptr<CancelToken> &Cancel,
               ResultStore *Store) const {
  std::vector<SolveResponse> Out(Batch.size());
  if (Batch.empty())
    return Out;

  auto BatchStart = std::chrono::steady_clock::now();
  auto ElapsedMs = [BatchStart] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - BatchStart)
            .count());
  };

  // One child token for the whole batch: an external request() stops every
  // member without cancelling unrelated users of the parent. The token is
  // kept alive by this frame across pool teardown.
  std::shared_ptr<CancelToken> BatchTok =
      Cancel ? Cancel->child() : CancelToken::create();

  {
    ThreadPool Pool(workers());
    for (size_t I = 0; I < Batch.size(); ++I) {
      const SolveRequest &J = Batch[I];
      SolveResponse *Slot = &Out[I];
      Pool.post([&J, Slot, &BatchTok, &ElapsedMs, Store] {
        Slot->Tags = J.Tags;
        // Deterministic short-circuits BEFORE any work: a cancelled batch
        // or a batch-relative deadline that already passed must not depend
        // on how fast this worker got here.
        if (BatchTok->cancelled()) {
          Slot->Error = ErrorInfo{ErrorCode::Cancelled,
                                  "batch cancelled before the job started"};
          return;
        }
        SolveRequest R = J;
        if (R.AbsDeadlineMs) {
          uint64_t Spent = ElapsedMs();
          if (Spent >= R.AbsDeadlineMs) {
            Slot->Error =
                ErrorInfo{ErrorCode::Timeout,
                          "batch-relative deadline expired before the job "
                          "started"};
            return;
          }
          uint64_t Remaining = R.AbsDeadlineMs - Spent;
          R.DeadlineMs =
              R.DeadlineMs ? std::min(R.DeadlineMs, Remaining) : Remaining;
        }
        // Batch responses never pin a TermContext: the contexts (and the
        // terms in them) die with the job, as the SolveJob path always did.
        R.KeepContext = false;
        *Slot = solveRequest(R, Store, BatchTok->flag());
      });
    }
    // ~ThreadPool drains the queue and joins, so every slot is written
    // before we return.
  }
  return Out;
}

std::vector<SolveJobOutcome>
Scheduler::run(const std::vector<SolveJob> &Batch,
               const std::shared_ptr<CancelToken> &Cancel) const {
  std::vector<SolveRequest> Reqs;
  Reqs.reserve(Batch.size());
  for (const SolveJob &J : Batch) {
    SolveRequest R = SolveRequest::fromBuilder(J.Build, J.Opts);
    R.DeadlineMs = J.DeadlineMs;
    R.AbsDeadlineMs = J.AbsDeadlineMs;
    R.NoStore = true;
    Reqs.push_back(std::move(R));
  }
  std::vector<SolveResponse> Resps = run(Reqs, Cancel, nullptr);
  std::vector<SolveJobOutcome> Out(Resps.size());
  for (size_t I = 0; I < Resps.size(); ++I) {
    SolveResponse &R = Resps[I];
    Out[I].Status = R.Status;
    Out[I].Depth = R.Depth;
    Out[I].Stats = R.Stats;
    Out[I].Seconds = R.Seconds;
    Out[I].VerifyFailed = R.VerifyFailed;
    Out[I].VerifyNote = std::move(R.VerifyNote);
    Out[I].Error = std::move(R.Error);
    Out[I].Attempts = R.Attempts;
  }
  return Out;
}

//===----------------------------------------------------------------------===
// SchedulerSession
//===----------------------------------------------------------------------===

SchedulerSession::SchedulerSession(unsigned Jobs, ResultStore *Store)
    : Root(CancelToken::create()), Store(Store) {
  unsigned HW = ThreadPool::hardwareThreads();
  if (!Jobs || Jobs > HW)
    Jobs = HW;
  Pool = std::make_unique<ThreadPool>(Jobs);
}

SchedulerSession::~SchedulerSession() { shutdown(); }

unsigned SchedulerSession::workers() const { return Pool ? Pool->size() : 0; }

void SchedulerSession::submit(SolveRequest Req,
                              std::shared_ptr<CancelToken> JobTok,
                              std::function<void(SolveResponse)> Done) {
  trySubmit(std::move(Req), std::move(JobTok), std::move(Done), 0);
}

bool SchedulerSession::trySubmit(SolveRequest Req,
                                 std::shared_ptr<CancelToken> JobTok,
                                 std::function<void(SolveResponse)> Done,
                                 unsigned MaxPending) {
  // Reserve the slot first, undo on refusal: check-then-add would let two
  // racing connections both slip past a nearly-full bound.
  unsigned Prior = Pending.fetch_add(1, std::memory_order_relaxed);
  if (MaxPending && Prior >= MaxPending) {
    Pending.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  std::shared_ptr<CancelToken> Tok = JobTok ? JobTok : Root->child();
  ResultStore *S = Store;
  auto RootTok = Root;
  Pool->post([this, Req = std::move(Req), Tok = std::move(Tok),
              Done = std::move(Done), S, RootTok] {
    SolveResponse Resp;
    if (Tok->cancelled() || RootTok->cancelled()) {
      Resp.Tags = Req.Tags;
      Resp.Error = ErrorInfo{ErrorCode::Cancelled,
                             "session cancelled before the job started"};
    } else {
      Resp = solveRequest(Req, S, Tok->flag());
    }
    Pending.fetch_sub(1, std::memory_order_relaxed);
    if (Done)
      Done(std::move(Resp));
  });
  return true;
}

void SchedulerSession::drain() {
  if (Pool)
    Pool->drain();
}

void SchedulerSession::shutdown() {
  Root->request();
  drain();
}
