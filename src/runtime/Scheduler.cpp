//===- runtime/Scheduler.cpp - Batch solve-job scheduler ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "runtime/ThreadPool.h"

using namespace mucyc;

unsigned Scheduler::workers() const {
  // Cap at the hardware: batch jobs are independent and CPU-bound, so
  // oversubscribing cores cannot add throughput — it only time-shares
  // workers and makes per-job wall-clock deadlines bite earlier than they
  // would sequentially, which is exactly the nondeterminism `--jobs` must
  // not introduce. (The portfolio deliberately does NOT cap: racing
  // members must run concurrently even on one core.)
  unsigned HW = ThreadPool::hardwareThreads();
  if (!NumWorkers || NumWorkers > HW)
    return HW;
  return NumWorkers;
}

std::vector<SolveJobOutcome>
Scheduler::run(const std::vector<SolveJob> &Batch,
               const std::shared_ptr<CancelToken> &Cancel) const {
  std::vector<SolveJobOutcome> Out(Batch.size());
  if (Batch.empty())
    return Out;

  // One child token for the whole batch: an external request() stops every
  // member without cancelling unrelated users of the parent. The token is
  // kept alive by this frame across pool teardown.
  std::shared_ptr<CancelToken> BatchTok =
      Cancel ? Cancel->child() : CancelToken::create();

  {
    ThreadPool Pool(workers());
    for (size_t I = 0; I < Batch.size(); ++I) {
      const SolveJob &J = Batch[I];
      SolveJobOutcome *Slot = &Out[I];
      Pool.post([&J, Slot, &BatchTok] {
        TermContext Ctx;
        NormalizedChc N = J.Build(Ctx);
        SolverOptions Opts = J.Opts;
        Opts.TimeoutMs = J.DeadlineMs;
        Opts.CancelFlag = BatchTok->flag();
        ChcSolver S(Ctx, N, Opts);
        SolverResult R = S.solve();
        Slot->Status = R.Status;
        Slot->Depth = R.Depth;
        Slot->Stats = R.Stats;
        Slot->Seconds = R.Seconds;
        Slot->VerifyFailed = R.VerifyFailed;
        Slot->VerifyNote = R.VerifyNote;
      });
    }
    // ~ThreadPool drains the queue and joins, so every slot is written
    // before we return.
  }
  return Out;
}
