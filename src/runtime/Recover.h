//===- runtime/Recover.h - Degraded-retry solving ---------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler-level recovery ladder: when a solve attempt fails with a
/// *recoverable* error (memory/step/depth budget trip or an invariant
/// violation — see errorRecoverable()), the job is re-run in a fresh
/// TermContext under a degraded configuration, up to
/// SolverOptions::MaxRetries extra attempts:
///
///   attempt 1   the configured options, verbatim;
///   attempt 2   same engine, incremental backend off (fresh solvers, no
///               query cache) and halved search budgets — the cheapest
///               plausible fix for state-dependent failures;
///   attempt 3+  alternate engine (non-Ret configs fall back to the
///               paper's robust default Ret(T,MBP(1)); Ret falls back to
///               SpacerTS), still with halved budgets.
///
/// The external resource envelope — deadline and MemLimitMb — is *not*
/// degraded: retries spend the remainder of the same job deadline, like a
/// CHC-COMP per-instance cap. Between attempts the worker sleeps a small
/// deterministic-jittered backoff (seed-derived, wall-clock only — output
/// bytes never depend on it). Timeouts and external cancellation are final.
/// Used by the Scheduler, the portfolio driver, and `mucyc` itself.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_RECOVER_H
#define MUCYC_RUNTIME_RECOVER_H

#include "solver/ChcSolve.h"

#include <functional>
#include <memory>

namespace mucyc {

/// The configuration the retry ladder runs at attempt \p Attempt (0-based;
/// attempt 0 returns \p Base unchanged). Pure function: tests and docs rely
/// on the ladder being predictable.
SolverOptions degradeOptions(const SolverOptions &Base, unsigned Attempt);

/// Deterministic jittered backoff before retry attempt \p Attempt (1-based),
/// in milliseconds. Seed-derived so two chaos runs sleep identically;
/// bounded well under a second so retries cannot dominate a deadline.
uint64_t retryBackoffMs(uint64_t Seed, unsigned Attempt);

/// What solveWithRecovery ran and concluded.
struct RecoveryOutcome {
  /// Final attempt's result; Stats are accumulated over ALL attempts and
  /// carry Retries/Degradations. Error is the final attempt's breadcrumb
  /// (None on success).
  SolverResult Res;
  unsigned Attempts = 1;   ///< Total attempts executed (1 = no retry).
  bool Degraded = false;   ///< The final attempt ran a degraded config.
  /// Context of the final attempt; Res.Invariant/CexPiece live here. Keep
  /// it alive as long as those terms are used.
  std::shared_ptr<TermContext> Ctx;
};

/// Runs \p Build + solve under \p Opts with the recovery ladder above.
/// \p DeadlineMs (0 = none) caps the whole ladder — all attempts plus
/// backoffs — measured from entry; an expired deadline reports Timeout
/// without starting another attempt. \p Cancel (optional) is polled
/// between attempts and plumbed into each attempt as the cancel flag.
RecoveryOutcome
solveWithRecovery(const std::function<NormalizedChc(TermContext &)> &Build,
                  const SolverOptions &Opts, uint64_t DeadlineMs,
                  const std::atomic<bool> *Cancel);

} // namespace mucyc

#endif // MUCYC_RUNTIME_RECOVER_H
