//===- runtime/Request.h - Unified solve job API ----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single public job API of the runtime: a SolveRequest (a CHC system —
/// textual or programmatic — plus SolverOptions, deadline and tags) and the
/// SolveResponse every execution path produces (verdict, certificate,
/// typed error, attempts, stats, cache provenance). ChcSolver, the
/// Scheduler, the portfolio driver, the CLI tools, the bench suite, the
/// fuzzer and the serve daemon all route through solveRequest(); the four
/// historical entry shapes (direct ChcSolver::solve, SolveJob batches,
/// racePortfolio, bare solveWithRecovery) remain as thin shims over it.
///
/// Execution: a request is always run behind the PR-4 recovery ladder
/// (solveWithRecovery) — MaxRetries = 0 degenerates to exactly one attempt
/// — so a crashing job yields an Unknown response with a typed ErrorInfo,
/// never an escaped exception. When a ResultStore is supplied, the request
/// is first fingerprinted (chc/Fingerprint.h) and a cached certificate, if
/// any, is re-verified against the actual submitted system before being
/// served; only then does a cold solve run, and definitive answers are
/// admitted back into the store.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_REQUEST_H
#define MUCYC_RUNTIME_REQUEST_H

#include "runtime/ResultStore.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace mucyc {

/// Input language of a textual source. Auto sniffs: BTOR2 node lines start
/// with a numeric id, SMT-LIB2 with '(' — the two cannot collide.
enum class InputFormat : uint8_t { Auto, SmtLib2, Btor2 };

/// A textual system — SMT-LIB2 HORN or BTOR2 — plus the frontend pipeline
/// (parse/encode, optional preprocess, normalize) run once per TermContext.
/// Hash consing is not thread-safe and the retry ladder rebuilds per
/// attempt, so every context gets its own pipeline; the per-context results
/// are retained for solution lifting. Thread-safe; shared by portfolio
/// members.
class TextSource {
public:
  explicit TextSource(std::string Text, bool Preprocess = true,
                      InputFormat Format = InputFormat::Auto)
      : Text(std::move(Text)), Preprocess(Preprocess), Format(Format) {}

  /// Runs the pipeline in \p Ctx and returns the normalized system.
  /// Throws MucycError(InputError) on a parse failure — the recovery
  /// ladder turns that into an Unknown response with the parse diagnostic.
  NormalizedChc build(TermContext &Ctx);

  /// The build() entry as a copyable functor. The TextSource must outlive
  /// every use of the returned function.
  std::function<NormalizedChc(TermContext &)> builder() {
    return [this](TermContext &Ctx) { return build(Ctx); };
  }

  /// Renders the per-predicate solution of the *original* system implied by
  /// the normalized invariant \p PhiZ (which must live in \p Ctx, a context
  /// build() has run in) as "(define-fun ...)" lines.
  std::string solutionText(TermContext &Ctx, TermRef PhiZ);

  // Raw ingredients, so the worker tier can ship the source across a
  // process boundary and rebuild an equivalent TextSource in the child.
  const std::string &text() const { return Text; }
  bool preprocessing() const { return Preprocess; }
  InputFormat format() const { return Format; }

private:
  struct Pipeline {
    ChcSystem Orig;
    ChcSystem Work;
    NormalizeResult NR;
  };

  std::string Text;
  bool Preprocess;
  InputFormat Format;
  std::mutex Mu;
  std::map<const TermContext *, std::shared_ptr<Pipeline>> Pipes;
};

/// One solve job, however it is executed (inline, batch, portfolio member,
/// service request). Exactly one of Source / Build must be set.
struct SolveRequest {
  /// Textual source: a shared TextSource (parse + preprocess + normalize
  /// per context, with solution lifting). Preferred for CLI/service paths.
  std::shared_ptr<TextSource> Source;

  /// Programmatic source: builds the normalized system directly into the
  /// attempt's private context. Used by the bench suite and the fuzzer;
  /// requests with only a Build cannot produce SolutionText.
  std::function<NormalizedChc(TermContext &)> Build;

  SolverOptions Opts;

  /// Per-request deadline in ms (0 = none), measured from execution start;
  /// covers the whole retry ladder.
  uint64_t DeadlineMs = 0;

  /// Batch-relative deadline in ms (0 = none), measured from batch entry.
  /// Interpreted by the Scheduler only (see Scheduler::run); ignored by a
  /// direct solveRequest() call.
  uint64_t AbsDeadlineMs = 0;

  /// Opaque client tags, echoed on the response (service traceability).
  std::string Tags;

  /// Render the lifted per-predicate solution into SolveResponse::
  /// SolutionText (Sat answers from a textual Source only).
  bool WantSolution = false;

  /// Bypass the result store for this request (still solves cold).
  bool NoStore = false;

  /// Keep the answer's TermContext (and Invariant/CexPiece) alive on the
  /// response. Batch executors set this false to bound memory.
  bool KeepContext = true;

  /// Test-only: make the isolated worker child die this way before solving
  /// ("segv", "abort", "exit3", "spin", "oom"). Applied to the first worker
  /// attempt only, so crash-then-recover scenarios are expressible. Empty
  /// in production; shipped as the `x-crash` wire header.
  std::string TestCrash;

  /// Convenience: a request over textual source (SMT-LIB2 HORN or BTOR2,
  /// sniffed by default).
  static SolveRequest fromText(std::string Text, SolverOptions Opts,
                               bool Preprocess = true,
                               InputFormat Format = InputFormat::Auto) {
    SolveRequest R;
    R.Source =
        std::make_shared<TextSource>(std::move(Text), Preprocess, Format);
    R.Opts = std::move(Opts);
    return R;
  }

  /// Convenience: a request over a programmatic system builder.
  static SolveRequest
  fromBuilder(std::function<NormalizedChc(TermContext &)> Build,
              SolverOptions Opts) {
    SolveRequest R;
    R.Build = std::move(Build);
    R.Opts = std::move(Opts);
    return R;
  }
};

/// What a request produced, wherever it ran.
struct SolveResponse {
  ChcStatus Status = ChcStatus::Unknown;
  int Depth = 0;
  SolveStats Stats;     ///< Accumulated over all attempts (zero on a hit).
  double Seconds = 0;   ///< Wall clock including cache probe / verify.
  bool VerifyFailed = false;
  std::string VerifyNote;
  ErrorInfo Error;      ///< Why Unknown is Unknown; None when definitive.
  /// Recovery-ladder attempts executed; 0 means the answer was served from
  /// the result store without running an engine.
  unsigned Attempts = 1;

  /// Cache provenance: cold / mem-hit / disk-hit, and whether the served
  /// certificate passed re-verification in this process.
  CacheSource Cache = CacheSource::None;
  bool CacheVerified = false;
  /// Canonical fingerprint (32 hex digits) when one was computed; the
  /// result-store key. Empty when the store was bypassed.
  std::string Fingerprint;

  /// The certificate terms and the context that owns them; null when the
  /// request asked not to keep it (KeepContext = false).
  TermRef Invariant;
  TermRef CexPiece;
  std::shared_ptr<TermContext> Ctx;

  /// "(define-fun ...)" lines when WantSolution was set and Status is Sat
  /// (textual sources only).
  std::string SolutionText;

  std::string Tags; ///< Echo of SolveRequest::Tags.
};

/// Executes \p Req: fingerprint + store probe (when \p Store is non-null
/// and the request allows it), then a cold solve behind the recovery
/// ladder on a miss, admitting definitive answers back into the store.
/// \p Cancel (optional) is the cooperative cancellation flag, polled by
/// the engines and between retry attempts. Never throws.
SolveResponse solveRequest(const SolveRequest &Req, ResultStore *Store,
                           const std::atomic<bool> *Cancel);

inline SolveResponse solveRequest(const SolveRequest &Req) {
  return solveRequest(Req, nullptr, nullptr);
}

} // namespace mucyc

#endif // MUCYC_RUNTIME_REQUEST_H
