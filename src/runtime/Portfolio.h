//===- runtime/Portfolio.h - Racing configuration portfolio -----*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portfolio driver: race K solver configurations on one system and return
/// the first definitive Sat/Unsat answer, cooperatively cancelling the
/// losers the moment a winner commits (they stop within one SMT
/// propagation / simplex pivot round, not at their next coarse deadline
/// check). This is how production CHC/IC3 stacks turn a configuration zoo
/// into one robust solver: complementary engines cover each other's
/// divergences, and the cost of the losers is bounded by the winner's
/// runtime. Every member solves in a private TermContext (hash consing is
/// not thread-safe), built by the caller-supplied builder; the winning
/// member's context is kept alive in the result so its invariant /
/// counterexample terms stay valid.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_PORTFOLIO_H
#define MUCYC_RUNTIME_PORTFOLIO_H

#include "runtime/Cancel.h"
#include "runtime/Request.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mucyc {

/// Per-member report of one race.
struct PortfolioMemberReport {
  std::string Config;          ///< Paper-style name.
  ChcStatus Status = ChcStatus::Unknown;
  bool Winner = false;
  bool Cancelled = false;      ///< Stopped because another member won.
  double Seconds = 0;
  int Depth = 0;
  SolveStats Stats;
  /// Breadcrumb when the member ended without an answer: budget trip,
  /// crash converted to InvariantViolation, injected fault, timeout. A
  /// member that dies this way loses the race but never takes it down.
  ErrorInfo Error;
  /// Attempts the member's recovery ladder executed (1 = no retry).
  unsigned Attempts = 1;
};

struct PortfolioResult {
  /// The winning answer (Status == Unknown when no member concluded).
  /// Invariant/CexPiece live in *WinnerCtx.
  SolverResult Winner;
  std::string WinnerConfig;
  int WinnerIndex = -1; ///< Index into the configs vector, -1 if none.
  std::shared_ptr<TermContext> WinnerCtx;
  std::vector<PortfolioMemberReport> Members; ///< One per config, in order.
  SolveStats MergedStats; ///< Work done by ALL members (winners + losers).
  double Seconds = 0;     ///< Wall clock for the whole race.
  /// Distinct lemmas that crossed the exchange bus (0 when no member ran
  /// with ShareLemmas).
  uint64_t SharedLemmas = 0;
};

/// Races \p Configs over the system of \p Base (its Source/Build, called
/// once per member on its own context; Base.Opts is ignored in favor of
/// each member's config, Base.DeadlineMs is the per-member deadline).
/// Members run through solveRequest(), so each is behind the recovery
/// ladder and, when \p Store is supplied, probes the result cache — a
/// cached certificate wins the race instantly. \p Jobs bounds concurrency
/// (0 = one thread per member, oversubscribing cores if needed — a race
/// only works when every member runs). Each member's VerifyResult is
/// honored, so a race of verifying configs only commits to checked
/// answers. \p Cancel aborts the whole race from outside.
PortfolioResult
racePortfolio(const SolveRequest &Base,
              const std::vector<SolverOptions> &Configs, unsigned Jobs,
              const std::shared_ptr<CancelToken> &Cancel = nullptr,
              ResultStore *Store = nullptr);

/// Deprecated shim over the SolveRequest entry: races over a bare builder
/// with a per-member \p TimeoutMs deadline.
PortfolioResult
racePortfolio(const std::function<NormalizedChc(TermContext &)> &Build,
              const std::vector<SolverOptions> &Configs, unsigned Jobs,
              uint64_t TimeoutMs,
              const std::shared_ptr<CancelToken> &Cancel = nullptr);

/// Splits a comma-separated configuration list, respecting parentheses:
/// "Ret(T,MBP(1)),SpacerTS" -> {"Ret(T,MBP(1))", "SpacerTS"}.
std::vector<std::string> splitConfigList(const std::string &List);

/// Parses a comma-separated list of paper-style configuration names;
/// nullopt if any element is malformed.
std::optional<std::vector<SolverOptions>>
parseConfigList(const std::string &List);

} // namespace mucyc

#endif // MUCYC_RUNTIME_PORTFOLIO_H
