//===- runtime/Exchange.h - Portfolio lemma bus -----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent half of the cooperative portfolio (solver/Share.h): one
/// LemmaExchange per race, one port per member. The bus is an append-only
/// log of serialized lemmas with a global dedup set; members read through
/// monotone cursors they own, so a member rebuilt by the retry ladder
/// simply re-reads the log from zero in its fresh context. Everything a
/// member learns from the bus is re-checked on its side before use, so the
/// bus itself has no soundness obligations beyond not corrupting strings.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_RUNTIME_EXCHANGE_H
#define MUCYC_RUNTIME_EXCHANGE_H

#include "solver/Share.h"

#include <memory>
#include <mutex>
#include <unordered_set>

namespace mucyc {

/// Shared lemma bus for one portfolio race. Thread-safe: publish and fetch
/// take the same mutex; entries are immutable once appended.
class LemmaExchange {
public:
  /// A bus with \p Members ports (member indices 0..Members-1).
  explicit LemmaExchange(size_t Members);

  /// The port member \p I hands to its SolverOptions::Share. Valid for the
  /// lifetime of the exchange.
  LemmaChannel *port(size_t I) { return Ports[I].get(); }

  size_t members() const { return Ports.size(); }

  /// Total entries in the log (all members; for reporting and tests).
  size_t size() const;

private:
  struct Entry {
    int Level;
    std::string Text;
    size_t From;
  };

  /// One member's view: tags publishes with the member index and filters
  /// that index out on fetch, so nobody re-imports their own lemmas.
  class Port : public LemmaChannel {
  public:
    Port(LemmaExchange &X, size_t Member) : X(X), Member(Member) {}
    void publish(int Level, const std::string &Text) override {
      X.publish(Member, Level, Text);
    }
    uint64_t fetch(uint64_t Cursor, unsigned Max,
                   std::vector<SharedLemma> &Out) const override {
      return X.fetch(Member, Cursor, Max, Out);
    }

  private:
    LemmaExchange &X;
    size_t Member;
  };

  void publish(size_t From, int Level, const std::string &Text);
  uint64_t fetch(size_t Reader, uint64_t Cursor, unsigned Max,
                 std::vector<SharedLemma> &Out) const;

  mutable std::mutex Mu;
  std::vector<Entry> Log;
  std::unordered_set<std::string> Dedup; ///< Serialized texts already logged.
  std::vector<std::unique_ptr<Port>> Ports;
};

} // namespace mucyc

#endif // MUCYC_RUNTIME_EXCHANGE_H
