//===- runtime/Request.cpp - Unified solve job API ------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Request.h"

#include "chc/Fingerprint.h"
#include "chc/Parser.h"
#include "chc/Preprocess.h"
#include "runtime/Recover.h"
#include "ts/Btor2.h"

#include <chrono>
#include <sstream>

using namespace mucyc;

NormalizedChc TextSource::build(TermContext &Ctx) {
  bool IsBtor2 = Format == InputFormat::Btor2 ||
                 (Format == InputFormat::Auto && looksLikeBtor2(Text));
  ChcSystem Orig = [&]() -> ChcSystem {
    if (IsBtor2) {
      Btor2Result BR = parseBtor2(Ctx, Text);
      if (!BR.Ok)
        raiseError(ErrorCode::InputError, "parse failed: " + BR.Error);
      return BR.Ts->encodeChc();
    }
    ParseResult PR = parseChc(Ctx, Text);
    if (!PR.Ok)
      raiseError(ErrorCode::InputError, "parse failed: " + PR.Error);
    return std::move(*PR.System);
  }();
  ChcSystem Work = Preprocess ? preprocess(Orig) : Orig;
  NormalizeResult NR = normalize(Work);
  auto P = std::make_shared<Pipeline>(
      Pipeline{std::move(Orig), std::move(Work), std::move(NR)});
  NormalizedChc Sys = P->NR.Sys;
  std::lock_guard<std::mutex> Lock(Mu);
  Pipes[&Ctx] = std::move(P); // Retry attempts may reuse an address.
  return Sys;
}

std::string TextSource::solutionText(TermContext &Ctx, TermRef PhiZ) {
  std::shared_ptr<Pipeline> P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Pipes.find(&Ctx);
    if (It == Pipes.end())
      return "";
    P = It->second;
  }
  ChcSolution Sol = P->NR.liftSolution(P->Work, PhiZ);
  std::ostringstream Out;
  for (const auto &[Pred, Def] : Sol) {
    Out << "(define-fun " << P->Orig.pred(Pred).Name << " (";
    for (size_t I = 0; I < Def.Params.size(); ++I)
      Out << (I ? " " : "") << "(" << Ctx.varInfo(Def.Params[I]).Name << " "
          << sortName(Ctx.varInfo(Def.Params[I]).S) << ")";
    Out << ") Bool " << Ctx.toString(Def.Body) << ")\n";
  }
  return Out.str();
}

namespace {

/// Re-runs a cached certificate through the independent checker against the
/// actual submitted system. Sat certificates are invariants; Unsat ones are
/// reachable bad regions checked by bounded reachability to the recorded
/// depth (+2, mirroring what VerifyResult charges a fresh answer).
bool verifyCachedCert(TermContext &Ctx, const NormalizedChc &N,
                      const ResultStore::Entry &E, TermRef Cert) {
  if (E.Status == ChcStatus::Sat)
    return verifyInvariant(Ctx, N, Cert);
  return verifyCexPiece(Ctx, N, Cert, E.Depth + 2);
}

} // namespace

SolveResponse mucyc::solveRequest(const SolveRequest &Req, ResultStore *Store,
                                  const std::atomic<bool> *Cancel) {
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  SolveResponse Resp;
  Resp.Tags = Req.Tags;

  std::function<NormalizedChc(TermContext &)> Build = Req.Build;
  if (!Build && Req.Source)
    Build = Req.Source->builder();
  if (!Build) {
    Resp.Attempts = 0;
    Resp.Error =
        ErrorInfo{ErrorCode::InputError, "solve request has no system source"};
    return Resp;
  }

  // --- Warm path: fingerprint the submission and probe the store. A probe
  // failure of any kind (parse error, sort mismatch, corrupt certificate,
  // failed re-verification) drops through to the cold path below; a parse
  // error will then resurface there with its proper diagnostic.
  if (Store && !Req.NoStore) {
    auto Probe = std::make_shared<TermContext>();
    try {
      NormalizedChc N = Build(*Probe);
      Resp.Fingerprint = fingerprintNormalized(*Probe, N).hex();
      CacheSource Src = CacheSource::None;
      if (auto E = Store->lookup(Resp.Fingerprint, &Src)) {
        bool SortsOk = E->ZSorts.size() == N.Z.size();
        for (size_t I = 0; SortsOk && I < N.Z.size(); ++I)
          SortsOk = E->ZSorts[I] == Probe->varInfo(N.Z[I]).S;
        TermRef Cert;
        if (SortsOk)
          Cert = ResultStore::parseCert(*Probe, N, E->Cert, nullptr);
        bool Ok = Cert.isValid();
        if (Ok && !E->Verified) {
          Ok = verifyCachedCert(*Probe, N, *E, Cert);
          if (Ok)
            Store->markVerified(Resp.Fingerprint);
        }
        if (Ok) {
          Resp.Status = E->Status;
          Resp.Depth = E->Depth;
          Resp.Attempts = 0; // Served, not solved.
          Resp.Cache = Src;
          Resp.CacheVerified = true;
          if (E->Status == ChcStatus::Sat)
            Resp.Invariant = Cert;
          else
            Resp.CexPiece = Cert;
          if (Req.WantSolution && E->Status == ChcStatus::Sat && Req.Source)
            Resp.SolutionText = Req.Source->solutionText(*Probe, Cert);
          if (Req.KeepContext)
            Resp.Ctx = std::move(Probe);
          else {
            Resp.Invariant = TermRef();
            Resp.CexPiece = TermRef();
          }
          Resp.Seconds = Elapsed();
          return Resp;
        }
        // Poisoned or mismatched entry: drop it so the cold answer below
        // replaces it, and count the reject.
        Store->erase(Resp.Fingerprint);
      }
    } catch (const std::exception &) {
      // Fall through to the cold path, which reports the error properly.
    }
  }

  // --- Cold path: the recovery ladder. MaxRetries = 0 runs one attempt.
  // The wrapper snapshots the final attempt's normalized system: admission
  // needs the exact Z tuple the certificate is over, and re-running the
  // builder would mint fresh variables (mkFreshVar) even in the same
  // context. solveWithRecovery runs synchronously, so capturing locals by
  // reference is safe.
  TermContext *LastCtx = nullptr;
  NormalizedChc LastSys;
  auto WrappedBuild = [&](TermContext &C) {
    NormalizedChc N = Build(C);
    LastCtx = &C;
    LastSys = N;
    return N;
  };
  RecoveryOutcome RO =
      solveWithRecovery(WrappedBuild, Req.Opts, Req.DeadlineMs, Cancel);

  Resp.Status = RO.Res.Status;
  Resp.Depth = RO.Res.Depth;
  Resp.Stats = RO.Res.Stats;
  Resp.VerifyFailed = RO.Res.VerifyFailed;
  Resp.VerifyNote = RO.Res.VerifyNote;
  Resp.Error = RO.Res.Error;
  Resp.Attempts = RO.Attempts;
  Resp.Invariant = RO.Res.Invariant;
  Resp.CexPiece = RO.Res.CexPiece;

  // --- Admission: store definitive, certificate-bearing answers. When the
  // run already self-verified (VerifyResult, clean), skip the duplicate
  // check; otherwise verify now — the store must never hold an unchecked
  // certificate marked Verified.
  if (Store && !Req.NoStore && !Resp.Fingerprint.empty() &&
      !Resp.VerifyFailed && RO.Ctx && LastCtx == RO.Ctx.get() &&
      (Resp.Status == ChcStatus::Sat || Resp.Status == ChcStatus::Unsat)) {
    TermRef Cert =
        Resp.Status == ChcStatus::Sat ? RO.Res.Invariant : RO.Res.CexPiece;
    if (Cert.isValid()) {
      try {
        ResultStore::Entry E;
        E.Status = Resp.Status;
        E.Depth = Resp.Depth;
        E.Config = degradeOptions(Req.Opts, RO.Attempts - 1).name();
        for (VarId V : LastSys.Z)
          E.ZSorts.push_back(RO.Ctx->varInfo(V).S);
        E.Cert = ResultStore::serializeCert(*RO.Ctx, LastSys, Cert);
        bool Checked = Req.Opts.VerifyResult ||
                       verifyCachedCert(*RO.Ctx, LastSys, E, Cert);
        if (Checked) {
          E.Verified = true;
          Store->insert(Resp.Fingerprint, std::move(E));
        }
      } catch (const std::exception &) {
        // Admission is best-effort; the answer itself still stands.
      }
    }
  }

  if (Req.WantSolution && Resp.Status == ChcStatus::Sat && Req.Source &&
      RO.Ctx && Resp.Invariant.isValid())
    Resp.SolutionText = Req.Source->solutionText(*RO.Ctx, Resp.Invariant);

  if (Req.KeepContext)
    Resp.Ctx = RO.Ctx;
  else {
    Resp.Invariant = TermRef();
    Resp.CexPiece = TermRef();
  }
  Resp.Seconds = Elapsed();
  return Resp;
}
