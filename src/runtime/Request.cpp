//===- runtime/Request.cpp - Unified solve job API ------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Request.h"

#include "chc/Fingerprint.h"
#include "chc/Parser.h"
#include "chc/Preprocess.h"
#include "runtime/Recover.h"
#include "runtime/Worker.h"
#include "ts/Btor2.h"

#include <chrono>
#include <optional>
#include <sstream>

using namespace mucyc;

NormalizedChc TextSource::build(TermContext &Ctx) {
  bool IsBtor2 = Format == InputFormat::Btor2 ||
                 (Format == InputFormat::Auto && looksLikeBtor2(Text));
  ChcSystem Orig = [&]() -> ChcSystem {
    if (IsBtor2) {
      Btor2Result BR = parseBtor2(Ctx, Text);
      if (!BR.Ok)
        raiseError(ErrorCode::InputError, "parse failed: " + BR.Error);
      return BR.Ts->encodeChc();
    }
    ParseResult PR = parseChc(Ctx, Text);
    if (!PR.Ok)
      raiseError(ErrorCode::InputError, "parse failed: " + PR.Error);
    return std::move(*PR.System);
  }();
  ChcSystem Work = Preprocess ? preprocess(Orig) : Orig;
  NormalizeResult NR = normalize(Work);
  auto P = std::make_shared<Pipeline>(
      Pipeline{std::move(Orig), std::move(Work), std::move(NR)});
  NormalizedChc Sys = P->NR.Sys;
  std::lock_guard<std::mutex> Lock(Mu);
  Pipes[&Ctx] = std::move(P); // Retry attempts may reuse an address.
  return Sys;
}

std::string TextSource::solutionText(TermContext &Ctx, TermRef PhiZ) {
  std::shared_ptr<Pipeline> P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Pipes.find(&Ctx);
    if (It == Pipes.end())
      return "";
    P = It->second;
  }
  ChcSolution Sol = P->NR.liftSolution(P->Work, PhiZ);
  std::ostringstream Out;
  for (const auto &[Pred, Def] : Sol) {
    Out << "(define-fun " << P->Orig.pred(Pred).Name << " (";
    for (size_t I = 0; I < Def.Params.size(); ++I)
      Out << (I ? " " : "") << "(" << Ctx.varInfo(Def.Params[I]).Name << " "
          << sortName(Ctx.varInfo(Def.Params[I]).S) << ")";
    Out << ") Bool " << Ctx.toString(Def.Body) << ")\n";
  }
  return Out.str();
}

namespace {

/// Re-runs a cached certificate through the independent checker against the
/// actual submitted system. Sat certificates are invariants; Unsat ones are
/// reachable bad regions checked by bounded reachability to the recorded
/// depth (+2, mirroring what VerifyResult charges a fresh answer).
bool verifyCachedCert(TermContext &Ctx, const NormalizedChc &N,
                      const ResultStore::Entry &E, TermRef Cert) {
  if (E.Status == ChcStatus::Sat)
    return verifyInvariant(Ctx, N, Cert);
  return verifyCexPiece(Ctx, N, Cert, E.Depth + 2);
}

/// Parent-side crash ladder over forked workers: a worker that dies
/// abnormally (WorkerCrashed*, all recoverable) is respawned with a
/// degraded configuration, mirroring the in-process ladder; the child
/// still runs the in-process ladder for typed errors, so the two compose.
/// Cancellation and an expired deadline end the ladder, like in-process.
struct WorkerLadderResult {
  WorkerOutcome WO;           ///< Final attempt.
  unsigned TotalAttempts = 0; ///< Engine attempts across all workers.
  SolveStats Accum;           ///< Merged over all workers.
};

WorkerLadderResult runWorkerLadder(const SolveRequest &Req,
                                   const std::string &StoreDir,
                                   const std::atomic<bool> *Cancel) {
  WorkerLadderResult L;
  auto Start = std::chrono::steady_clock::now();
  auto RemainingMs = [&]() -> uint64_t { // Req.DeadlineMs = 0: no deadline.
    if (!Req.DeadlineMs)
      return 0;
    uint64_t Spent = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    return Spent >= Req.DeadlineMs ? 1 : Req.DeadlineMs - Spent;
  };
  for (unsigned CrashAttempt = 0;; ++CrashAttempt) {
    SolveRequest Ship = Req;
    Ship.Opts = degradeOptions(Req.Opts, CrashAttempt);
    Ship.Opts.Isolate = IsolateMode::None; // Children never re-fork.
    // Typed-error retries run inside the child with whatever ladder budget
    // this rung has left.
    Ship.Opts.MaxRetries = Req.Opts.MaxRetries > CrashAttempt
                               ? Req.Opts.MaxRetries - CrashAttempt
                               : 0;
    Ship.DeadlineMs = RemainingMs();
    L.WO = runWorkerAttempt(Ship, Ship.DeadlineMs, Cancel, StoreDir,
                            CrashAttempt == 0 ? Req.TestCrash : "");
    // A crashed worker counts one engine attempt (its progress is lost);
    // a live reply reports its own count — 0 for a store-served answer.
    L.TotalAttempts += L.WO.Crashed ? 1 : L.WO.Resp.Attempts;
    L.Accum.merge(L.WO.Resp.Stats);
    if (!L.WO.Crashed)
      break;
    if (CrashAttempt >= Req.Opts.MaxRetries)
      break;
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      break;
    if (Req.DeadlineMs && RemainingMs() <= 1)
      break;
    ++L.Accum.Degradations;
  }
  if (L.TotalAttempts)
    L.Accum.Retries = L.TotalAttempts - 1;
  return L;
}

} // namespace

SolveResponse mucyc::solveRequest(const SolveRequest &Req, ResultStore *Store,
                                  const std::atomic<bool> *Cancel) {
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  SolveResponse Resp;
  Resp.Tags = Req.Tags;

  std::function<NormalizedChc(TermContext &)> Build = Req.Build;
  if (!Build && Req.Source)
    Build = Req.Source->builder();
  if (!Build) {
    Resp.Attempts = 0;
    Resp.Error =
        ErrorInfo{ErrorCode::InputError, "solve request has no system source"};
    return Resp;
  }

  // --- Worker-process isolation, Always mode: the entire request —
  // store probe included — runs in a forked child behind the parent-side
  // crash ladder; the child opens a private disk-tier store on our
  // directory. Only textual sources cross the process boundary.
  bool Isolated = Req.Opts.Isolate != IsolateMode::None && Req.Source &&
                  !inWorkerChild();
  if (Isolated && Req.Opts.Isolate == IsolateMode::Always) {
    WorkerLadderResult L = runWorkerLadder(
        Req, Store && !Req.NoStore ? Store->dir() : "", Cancel);
    Resp = std::move(L.WO.Resp);
    Resp.Tags = Req.Tags;
    Resp.Stats = L.Accum;
    Resp.Attempts = L.TotalAttempts;
    Resp.Seconds = Elapsed();
    return Resp; // Terms live and die in the child; Ctx stays null.
  }

  // --- Warm path: fingerprint the submission and probe the store. A probe
  // failure of any kind (parse error, sort mismatch, corrupt certificate,
  // failed re-verification) drops through to the cold path below; a parse
  // error will then resurface there with its proper diagnostic. The probe
  // context is kept at function scope: in Crash isolation mode, admission
  // re-verifies the worker's certificate in it after the cold run.
  std::shared_ptr<TermContext> Probe;
  std::optional<NormalizedChc> ProbeSys;
  if (Store && !Req.NoStore) {
    Probe = std::make_shared<TermContext>();
    try {
      NormalizedChc N = Build(*Probe);
      ProbeSys = N;
      Resp.Fingerprint = fingerprintNormalized(*Probe, N).hex();
      CacheSource Src = CacheSource::None;
      if (auto E = Store->lookup(Resp.Fingerprint, &Src)) {
        bool SortsOk = E->ZSorts.size() == N.Z.size();
        for (size_t I = 0; SortsOk && I < N.Z.size(); ++I)
          SortsOk = E->ZSorts[I] == Probe->varInfo(N.Z[I]).S;
        TermRef Cert;
        if (SortsOk)
          Cert = ResultStore::parseCert(*Probe, N, E->Cert, nullptr);
        bool Ok = Cert.isValid();
        if (Ok && !E->Verified) {
          Ok = verifyCachedCert(*Probe, N, *E, Cert);
          if (Ok)
            Store->markVerified(Resp.Fingerprint);
        }
        if (Ok) {
          Resp.Status = E->Status;
          Resp.Depth = E->Depth;
          Resp.Attempts = 0; // Served, not solved.
          Resp.Cache = Src;
          Resp.CacheVerified = true;
          if (E->Status == ChcStatus::Sat)
            Resp.Invariant = Cert;
          else
            Resp.CexPiece = Cert;
          if (Req.WantSolution && E->Status == ChcStatus::Sat && Req.Source)
            Resp.SolutionText = Req.Source->solutionText(*Probe, Cert);
          if (Req.KeepContext)
            Resp.Ctx = std::move(Probe);
          else {
            Resp.Invariant = TermRef();
            Resp.CexPiece = TermRef();
          }
          Resp.Seconds = Elapsed();
          return Resp;
        }
        // Poisoned or mismatched entry: drop it so the cold answer below
        // replaces it, and count the reject.
        Store->erase(Resp.Fingerprint);
      }
    } catch (const std::exception &) {
      // Fall through to the cold path, which reports the error properly.
    }
  }

  // --- Crash isolation: the cold run happens in a forked worker behind the
  // parent-side crash ladder. The parent keeps the store probe above and
  // the admission here: the worker ships its certificate back as text, and
  // the parent re-parses and re-verifies it in the probe context before
  // trusting it — a corrupted or compromised child cannot poison the store.
  if (Isolated) {
    WorkerLadderResult L = runWorkerLadder(Req, "", Cancel);
    std::string Fp = std::move(Resp.Fingerprint);
    Resp = std::move(L.WO.Resp);
    Resp.Tags = Req.Tags;
    Resp.Fingerprint = std::move(Fp);
    Resp.Stats = L.Accum;
    Resp.Attempts = L.TotalAttempts;
    if (Probe && ProbeSys && !L.WO.Cert.empty() && !Resp.VerifyFailed &&
        (Resp.Status == ChcStatus::Sat || Resp.Status == ChcStatus::Unsat)) {
      try {
        ResultStore::Entry E;
        E.Status = Resp.Status;
        E.Depth = Resp.Depth;
        E.Config = L.WO.ConfigName;
        for (VarId V : ProbeSys->Z)
          E.ZSorts.push_back(Probe->varInfo(V).S);
        E.Cert = L.WO.Cert;
        TermRef Cert =
            ResultStore::parseCert(*Probe, *ProbeSys, E.Cert, nullptr);
        if (Cert.isValid() && verifyCachedCert(*Probe, *ProbeSys, E, Cert)) {
          if (Store && !Req.NoStore && !Resp.Fingerprint.empty()) {
            E.Verified = true;
            Store->insert(Resp.Fingerprint, E);
          }
          if (Resp.Status == ChcStatus::Sat)
            Resp.Invariant = Cert;
          else
            Resp.CexPiece = Cert;
          if (Req.KeepContext)
            Resp.Ctx = Probe;
        }
      } catch (const std::exception &) {
        // Admission is best-effort; the worker's verdict still stands.
      }
    }
    Resp.Seconds = Elapsed();
    return Resp;
  }

  // --- Cold path: the recovery ladder. MaxRetries = 0 runs one attempt.
  // The wrapper snapshots the final attempt's normalized system: admission
  // needs the exact Z tuple the certificate is over, and re-running the
  // builder would mint fresh variables (mkFreshVar) even in the same
  // context. solveWithRecovery runs synchronously, so capturing locals by
  // reference is safe.
  TermContext *LastCtx = nullptr;
  NormalizedChc LastSys;
  auto WrappedBuild = [&](TermContext &C) {
    NormalizedChc N = Build(C);
    LastCtx = &C;
    LastSys = N;
    return N;
  };
  RecoveryOutcome RO =
      solveWithRecovery(WrappedBuild, Req.Opts, Req.DeadlineMs, Cancel);

  Resp.Status = RO.Res.Status;
  Resp.Depth = RO.Res.Depth;
  Resp.Stats = RO.Res.Stats;
  Resp.VerifyFailed = RO.Res.VerifyFailed;
  Resp.VerifyNote = RO.Res.VerifyNote;
  Resp.Error = RO.Res.Error;
  Resp.Attempts = RO.Attempts;
  Resp.Invariant = RO.Res.Invariant;
  Resp.CexPiece = RO.Res.CexPiece;

  // --- Admission: store definitive, certificate-bearing answers. When the
  // run already self-verified (VerifyResult, clean), skip the duplicate
  // check; otherwise verify now — the store must never hold an unchecked
  // certificate marked Verified.
  if (Store && !Req.NoStore && !Resp.Fingerprint.empty() &&
      !Resp.VerifyFailed && RO.Ctx && LastCtx == RO.Ctx.get() &&
      (Resp.Status == ChcStatus::Sat || Resp.Status == ChcStatus::Unsat)) {
    TermRef Cert =
        Resp.Status == ChcStatus::Sat ? RO.Res.Invariant : RO.Res.CexPiece;
    if (Cert.isValid()) {
      try {
        ResultStore::Entry E;
        E.Status = Resp.Status;
        E.Depth = Resp.Depth;
        E.Config = degradeOptions(Req.Opts, RO.Attempts - 1).name();
        for (VarId V : LastSys.Z)
          E.ZSorts.push_back(RO.Ctx->varInfo(V).S);
        E.Cert = ResultStore::serializeCert(*RO.Ctx, LastSys, Cert);
        bool Checked = Req.Opts.VerifyResult ||
                       verifyCachedCert(*RO.Ctx, LastSys, E, Cert);
        if (Checked) {
          E.Verified = true;
          Store->insert(Resp.Fingerprint, std::move(E));
        }
      } catch (const std::exception &) {
        // Admission is best-effort; the answer itself still stands.
      }
    }
  }

  if (Req.WantSolution && Resp.Status == ChcStatus::Sat && Req.Source &&
      RO.Ctx && Resp.Invariant.isValid())
    Resp.SolutionText = Req.Source->solutionText(*RO.Ctx, Resp.Invariant);

  if (Req.KeepContext)
    Resp.Ctx = RO.Ctx;
  else {
    Resp.Invariant = TermRef();
    Resp.CexPiece = TermRef();
  }
  Resp.Seconds = Elapsed();
  return Resp;
}
