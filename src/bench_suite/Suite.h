//===- bench_suite/Suite.h - Synthetic CHC benchmark suite ------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite standing in for the CHC-COMP LIA-lin / LIA-nonlin
/// instances used in the paper's evaluation (Section 7.2), which are not
/// available offline. Families are deterministic and parameterized, each
/// instance labeled with its ground-truth status; they cover linear and
/// tree-shaped (nonlinear) recursion over LIA, LRA and Bool, and include
/// every example system from the paper (Examples 4, 5, 10, the Appendix C
/// system, McCarthy 91).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_BENCH_SUITE_SUITE_H
#define MUCYC_BENCH_SUITE_SUITE_H

#include "chc/Normalize.h"
#include "solver/ChcSolve.h"

#include <functional>
#include <string>
#include <vector>

namespace mucyc {

/// One benchmark instance. The normalized system is built lazily into the
/// caller's TermContext so instances stay cheap to enumerate.
struct BenchInstance {
  std::string Name;
  std::string Family;
  bool Linear;            ///< Linear CHC (single body atom) before encoding.
  ChcStatus Expected;     ///< Ground truth.
  std::function<NormalizedChc(TermContext &)> Build;
};

/// The full deterministic suite.
std::vector<BenchInstance> buildSuite();

/// Subsets used by the experiments.
std::vector<BenchInstance> buildSmallSuite(); ///< Fast instances for tests.

/// Individual paper systems (used by tests, examples, and the divergence
/// experiment).
NormalizedChc paperExample4(TermContext &Ctx);  ///< UNSAT (x' = 2x - 3).
NormalizedChc paperExample5(TermContext &Ctx);  ///< SAT (x' = 2x).
NormalizedChc paperExample10(TermContext &Ctx, int64_t Bound); ///< |x-y|.
NormalizedChc appendixCSystem(TermContext &Ctx); ///< UNSAT via H(x+-1).
NormalizedChc mcCarthy91(TermContext &Ctx);      ///< SAT.

} // namespace mucyc

#endif // MUCYC_BENCH_SUITE_SUITE_H
