//===- bench_suite/Suite.cpp - Synthetic CHC benchmark suite --------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"

using namespace mucyc;

namespace {

/// Fresh state tuples (x, y, z) of the given sorts.
struct Tuples {
  std::vector<VarId> X, Y, Z;
  std::vector<TermRef> Xt, Yt, Zt;
};

Tuples mkTuples(TermContext &C, const std::vector<Sort> &Sorts) {
  Tuples T;
  auto Mk = [&](const char *P, std::vector<VarId> &Ids,
                std::vector<TermRef> &Ts) {
    for (Sort S : Sorts) {
      TermRef V = C.mkFreshVar(std::string("bm!") + P, S);
      Ids.push_back(C.node(V).Var);
      Ts.push_back(V);
    }
  };
  Mk("x", T.X, T.Xt);
  Mk("y", T.Y, T.Yt);
  Mk("z", T.Z, T.Zt);
  return T;
}

/// Builds a linear system (the y tuple is unconstrained in tau, which gives
/// the same least model as the linear CHC because the reachable set is
/// non-empty).
NormalizedChc linear1(TermContext &C, const std::function<TermRef(TermRef)> &Init,
                      const std::function<TermRef(TermRef, TermRef)> &Trans,
                      const std::function<TermRef(TermRef)> &Bad,
                      Sort S = Sort::Int) {
  Tuples T = mkTuples(C, {S});
  return makeNormalized(C, T.X, T.Y, T.Z, Init(T.Zt[0]),
                        Trans(T.Xt[0], T.Zt[0]), Bad(T.Zt[0]));
}

NormalizedChc linear2(TermContext &C,
                      const std::function<TermRef(TermRef, TermRef)> &Init,
                      const std::function<TermRef(TermRef, TermRef, TermRef,
                                                  TermRef)> &Trans,
                      const std::function<TermRef(TermRef, TermRef)> &Bad) {
  Tuples T = mkTuples(C, {Sort::Int, Sort::Int});
  return makeNormalized(C, T.X, T.Y, T.Z, Init(T.Zt[0], T.Zt[1]),
                        Trans(T.Xt[0], T.Xt[1], T.Zt[0], T.Zt[1]),
                        Bad(T.Zt[0], T.Zt[1]));
}

NormalizedChc binary1(TermContext &C, const std::function<TermRef(TermRef)> &Init,
                      const std::function<TermRef(TermRef, TermRef, TermRef)>
                          &Trans,
                      const std::function<TermRef(TermRef)> &Bad) {
  Tuples T = mkTuples(C, {Sort::Int});
  return makeNormalized(C, T.X, T.Y, T.Z, Init(T.Zt[0]),
                        Trans(T.Xt[0], T.Yt[0], T.Zt[0]), Bad(T.Zt[0]));
}

TermRef icst(TermContext &C, int64_t V) { return C.mkIntConst(V); }

} // namespace

//===----------------------------------------------------------------------===
// Paper systems
//===----------------------------------------------------------------------===

NormalizedChc mucyc::paperExample5(TermContext &C) {
  return linear1(
      C,
      [&](TermRef Z) {
        return C.mkAnd(C.mkGe(Z, icst(C, 2)), C.mkLe(Z, icst(C, 8)));
      },
      [&](TermRef X, TermRef Z) { return C.mkEq(Z, C.mkMul(Rational(2), X)); },
      [&](TermRef Z) { return C.mkLt(Z, icst(C, -5)); });
}

NormalizedChc mucyc::paperExample4(TermContext &C) {
  return linear1(
      C,
      [&](TermRef Z) {
        return C.mkAnd(C.mkGe(Z, icst(C, 2)), C.mkLe(Z, icst(C, 8)));
      },
      [&](TermRef X, TermRef Z) {
        return C.mkEq(Z, C.mkSub(C.mkMul(Rational(2), X), icst(C, 3)));
      },
      [&](TermRef Z) { return C.mkLt(Z, icst(C, -5)); });
}

NormalizedChc mucyc::paperExample10(TermContext &C, int64_t Bound) {
  return binary1(
      C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 3)); },
      [&](TermRef X, TermRef Y, TermRef Z) {
        TermRef D = C.mkSub(X, Y);
        return C.mkOr(C.mkAnd(C.mkGe(D, icst(C, 0)), C.mkEq(Z, D)),
                      C.mkAnd(C.mkLt(D, icst(C, 0)), C.mkEq(Z, C.mkNeg(D))));
      },
      [&](TermRef Z) { return C.mkGt(Z, icst(C, Bound)); });
}

NormalizedChc mucyc::appendixCSystem(TermContext &C) {
  // P(-1), H(0), H(x) => H(x +- 1), P(x) /\ H(x) => R(x), R(x) => false.
  // State: (tag, v) with tag 1 = P, 2 = H, 3 = R.
  Tuples T = mkTuples(C, {Sort::Int, Sort::Int});
  TermRef Zt = T.Zt[0], Zv = T.Zt[1];
  TermRef Xt = T.Xt[0], Xv = T.Xt[1];
  TermRef Yt = T.Yt[0], Yv = T.Yt[1];
  TermRef Init = C.mkOr(
      C.mkAnd(C.mkEq(Zt, icst(C, 1)), C.mkEq(Zv, icst(C, -1))),
      C.mkAnd(C.mkEq(Zt, icst(C, 2)), C.mkEq(Zv, icst(C, 0))));
  // H step (linear: the y child is unconstrained) and the P /\ H join.
  TermRef HStep = C.mkAnd(
      {C.mkEq(Xt, icst(C, 2)), C.mkEq(Zt, icst(C, 2)),
       C.mkOr(C.mkEq(Zv, C.mkAdd(Xv, icst(C, 1))),
              C.mkEq(Zv, C.mkSub(Xv, icst(C, 1))))});
  TermRef Join = C.mkAnd({C.mkEq(Xt, icst(C, 1)), C.mkEq(Yt, icst(C, 2)),
                          C.mkEq(Xv, Yv), C.mkEq(Zt, icst(C, 3)),
                          C.mkEq(Zv, Xv)});
  TermRef Trans = C.mkOr(HStep, Join);
  TermRef Bad = C.mkEq(Zt, icst(C, 3));
  return makeNormalized(C, T.X, T.Y, T.Z, Init, Trans, Bad);
}

NormalizedChc mucyc::mcCarthy91(TermContext &C) {
  // P(n, r): mccarthy91(n) = r.
  //   n > 100                      => P(n, n - 10)
  //   n <= 100 /\ P(n+11, r1) /\ P(r1, r) => P(n, r)
  //   P(n, r) /\ n <= 100 /\ r != 91 => false
  Tuples T = mkTuples(C, {Sort::Int, Sort::Int});
  TermRef Zn = T.Zt[0], Zr = T.Zt[1];
  TermRef Xn = T.Xt[0], Xr = T.Xt[1];
  TermRef Yn = T.Yt[0], Yr = T.Yt[1];
  TermRef Init = C.mkAnd(C.mkGt(Zn, icst(C, 100)),
                         C.mkEq(Zr, C.mkSub(Zn, icst(C, 10))));
  TermRef Trans = C.mkAnd({C.mkLe(Zn, icst(C, 100)),
                           C.mkEq(Xn, C.mkAdd(Zn, icst(C, 11))),
                           C.mkEq(Yn, Xr), C.mkEq(Zr, Yr)});
  TermRef Bad = C.mkAnd(C.mkLe(Zn, icst(C, 100)),
                        C.mkNot(C.mkEq(Zr, icst(C, 91))));
  return makeNormalized(C, T.X, T.Y, T.Z, Init, Trans, Bad);
}

//===----------------------------------------------------------------------===
// Suite
//===----------------------------------------------------------------------===

std::vector<BenchInstance> mucyc::buildSuite() {
  std::vector<BenchInstance> Out;
  auto Add = [&](std::string Name, std::string Family, bool Linear,
                 ChcStatus Exp,
                 std::function<NormalizedChc(TermContext &)> B) {
    Out.push_back(BenchInstance{std::move(Name), std::move(Family), Linear,
                                Exp, std::move(B)});
  };

  // counter: z = 0; z' = z + 1 while z < N.
  for (int64_t N : {3, 6, 10}) {
    Add("counter_safe_" + std::to_string(N), "counter", true, ChcStatus::Sat,
        [N](TermContext &C) {
          return linear1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
              [&](TermRef X, TermRef Z) {
                return C.mkAnd(C.mkLt(X, icst(C, N)),
                               C.mkEq(Z, C.mkAdd(X, icst(C, 1))));
              },
              [&](TermRef Z) { return C.mkGt(Z, icst(C, N)); });
        });
    Add("counter_unsafe_" + std::to_string(N), "counter", true,
        ChcStatus::Unsat, [N](TermContext &C) {
          return linear1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
              [&](TermRef X, TermRef Z) {
                return C.mkEq(Z, C.mkAdd(X, icst(C, 1)));
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, N)); });
        });
  }

  // parity: z = 0; z' = z + 2. Odd targets unreachable.
  for (int64_t N : {4, 8}) {
    Add("parity_safe_" + std::to_string(N), "parity", true, ChcStatus::Sat,
        [N](TermContext &C) {
          return linear1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
              [&](TermRef X, TermRef Z) {
                return C.mkEq(Z, C.mkAdd(X, icst(C, 2)));
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, 2 * N + 1)); });
        });
    Add("parity_unsafe_" + std::to_string(N), "parity", true,
        ChcStatus::Unsat, [N](TermContext &C) {
          return linear1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
              [&](TermRef X, TermRef Z) {
                return C.mkEq(Z, C.mkAdd(X, icst(C, 2)));
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, 2 * N)); });
        });
  }

  // Paper examples.
  Add("paper_ex5", "paper", true, ChcStatus::Sat,
      [](TermContext &C) { return paperExample5(C); });
  Add("paper_ex4", "paper", true, ChcStatus::Unsat,
      [](TermContext &C) { return paperExample4(C); });
  for (int64_t B : {2, 5}) {
    Add("absdiff_" + std::to_string(B), "paper", false,
        B >= 3 ? ChcStatus::Sat : ChcStatus::Unsat,
        [B](TermContext &C) { return paperExample10(C, B); });
  }
  Add("appendixC", "paper", false, ChcStatus::Unsat,
      [](TermContext &C) { return appendixCSystem(C); });
  Add("mccarthy91", "paper", false, ChcStatus::Sat,
      [](TermContext &C) { return mcCarthy91(C); });

  // two_counter: lockstep increments, a == b invariant.
  for (int64_t N : {5, 12}) {
    Add("twocounter_safe_" + std::to_string(N), "twocounter", true,
        ChcStatus::Sat, [N](TermContext &C) {
          return linear2(
              C,
              [&](TermRef A, TermRef B) {
                return C.mkAnd(C.mkEq(A, icst(C, 0)), C.mkEq(B, icst(C, 0)));
              },
              [&](TermRef XA, TermRef XB, TermRef ZA, TermRef ZB) {
                return C.mkAnd({C.mkLt(XA, icst(C, N)),
                                C.mkEq(ZA, C.mkAdd(XA, icst(C, 1))),
                                C.mkEq(ZB, C.mkAdd(XB, icst(C, 1)))});
              },
              [&](TermRef A, TermRef B) { return C.mkNot(C.mkEq(A, B)); });
        });
    // drift: a gains 2, b gains 1; difference eventually exceeds N.
    Add("drift_unsafe_" + std::to_string(N), "twocounter", true,
        ChcStatus::Unsat, [N](TermContext &C) {
          return linear2(
              C,
              [&](TermRef A, TermRef B) {
                return C.mkAnd(C.mkEq(A, icst(C, 0)), C.mkEq(B, icst(C, 0)));
              },
              [&](TermRef XA, TermRef XB, TermRef ZA, TermRef ZB) {
                return C.mkAnd(C.mkEq(ZA, C.mkAdd(XA, icst(C, 2))),
                               C.mkEq(ZB, C.mkAdd(XB, icst(C, 1))));
              },
              [&](TermRef A, TermRef B) {
                return C.mkGt(C.mkSub(A, B), icst(C, N));
              });
        });
  }

  // Real arithmetic.
  Add("real_half_safe", "real", true, ChcStatus::Sat, [](TermContext &C) {
    return linear1(
        C,
        [&](TermRef Z) {
          return C.mkAnd(C.mkGe(Z, C.mkRealConst(Rational(0))),
                         C.mkLe(Z, C.mkRealConst(Rational(1))));
        },
        [&](TermRef X, TermRef Z) {
          return C.mkEq(Z, C.mkMul(Rational(1, 2), X));
        },
        [&](TermRef Z) { return C.mkLt(Z, C.mkRealConst(Rational(-1))); },
        Sort::Real);
  });
  for (int64_t N : {8, 64}) {
    Add("real_grow_unsafe_" + std::to_string(N), "real", true,
        ChcStatus::Unsat, [N](TermContext &C) {
          return linear1(
              C,
              [&](TermRef Z) {
                return C.mkAnd(C.mkGe(Z, C.mkRealConst(Rational(1))),
                               C.mkLe(Z, C.mkRealConst(Rational(2))));
              },
              [&](TermRef X, TermRef Z) {
                return C.mkEq(Z, C.mkMul(Rational(2), X));
              },
              [&](TermRef Z) {
                return C.mkGt(Z, C.mkRealConst(Rational(N)));
              },
              Sort::Real);
        });
  }
  Add("real_contract_safe", "real", true, ChcStatus::Sat, [](TermContext &C) {
    // z' = z/2 + 1 from [0, 1]: fixpoint 2, invariant [0, 2].
    return linear1(
        C,
        [&](TermRef Z) {
          return C.mkAnd(C.mkGe(Z, C.mkRealConst(Rational(0))),
                         C.mkLe(Z, C.mkRealConst(Rational(1))));
        },
        [&](TermRef X, TermRef Z) {
          return C.mkEq(Z, C.mkAdd(C.mkMul(Rational(1, 2), X),
                                   C.mkRealConst(Rational(1))));
        },
        [&](TermRef Z) { return C.mkGt(Z, C.mkRealConst(Rational(3))); },
        Sort::Real);
  });

  // fib_sum: z = 1; z = x + y (tree recursion).
  Add("fibsum_safe", "tree", false, ChcStatus::Sat, [](TermContext &C) {
    return binary1(
        C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 1)); },
        [&](TermRef X, TermRef Y, TermRef Z) {
          return C.mkEq(Z, C.mkAdd(X, Y));
        },
        [&](TermRef Z) { return C.mkLt(Z, icst(C, 1)); });
  });
  for (int64_t B : {7, 14}) {
    Add("fibsum_unsafe_" + std::to_string(B), "tree", false, ChcStatus::Unsat,
        [B](TermContext &C) {
          return binary1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 1)); },
              [&](TermRef X, TermRef Y, TermRef Z) {
                return C.mkEq(Z, C.mkAdd(X, Y));
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, B)); });
        });
  }

  // tree_max: z = max(x, y) + 1 from 0.
  Add("treemax_safe", "tree", false, ChcStatus::Sat, [](TermContext &C) {
    return binary1(
        C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
        [&](TermRef X, TermRef Y, TermRef Z) {
          return C.mkOr(
              C.mkAnd(C.mkGe(X, Y), C.mkEq(Z, C.mkAdd(X, icst(C, 1)))),
              C.mkAnd(C.mkLt(X, Y), C.mkEq(Z, C.mkAdd(Y, icst(C, 1)))));
        },
        [&](TermRef Z) { return C.mkLt(Z, icst(C, 0)); });
  });
  for (int64_t B : {6, 14}) {
    Add("treemax_unsafe_" + std::to_string(B), "tree", false,
        ChcStatus::Unsat, [B](TermContext &C) {
          return binary1(
              C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
              [&](TermRef X, TermRef Y, TermRef Z) {
                return C.mkOr(
                    C.mkAnd(C.mkGe(X, Y), C.mkEq(Z, C.mkAdd(X, icst(C, 1)))),
                    C.mkAnd(C.mkLt(X, Y), C.mkEq(Z, C.mkAdd(Y, icst(C, 1)))));
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, B)); });
        });
  }

  // mixed_guard: z = x + y with both children bounded; reach = [0, 2N].
  for (int64_t N : {4, 9}) {
    Add("mixed_safe_" + std::to_string(N), "mixed", false, ChcStatus::Sat,
        [N](TermContext &C) {
          return binary1(
              C,
              [&](TermRef Z) {
                return C.mkAnd(C.mkGe(Z, icst(C, 0)), C.mkLe(Z, icst(C, 1)));
              },
              [&](TermRef X, TermRef Y, TermRef Z) {
                return C.mkAnd({C.mkLe(X, icst(C, N)), C.mkLe(Y, icst(C, N)),
                                C.mkEq(Z, C.mkAdd(X, Y))});
              },
              [&](TermRef Z) { return C.mkGt(Z, icst(C, 2 * N)); });
        });
    Add("mixed_unsafe_" + std::to_string(N), "mixed", false, ChcStatus::Unsat,
        [N](TermContext &C) {
          return binary1(
              C,
              [&](TermRef Z) {
                return C.mkAnd(C.mkGe(Z, icst(C, 0)), C.mkLe(Z, icst(C, 1)));
              },
              [&](TermRef X, TermRef Y, TermRef Z) {
                return C.mkAnd({C.mkLe(X, icst(C, N)), C.mkLe(Y, icst(C, N)),
                                C.mkEq(Z, C.mkAdd(X, Y))});
              },
              [&](TermRef Z) { return C.mkEq(Z, icst(C, 2 * N)); });
        });
  }

  // Boolean/finite-state: a toggled bit reached only on even rounds, plus a
  // mod-3 counter encoded over Int with divisibility-friendly steps.
  Add("mod3_safe", "finite", true, ChcStatus::Sat, [](TermContext &C) {
    return linear1(
        C, [&](TermRef Z) { return C.mkEq(Z, icst(C, 0)); },
        [&](TermRef X, TermRef Z) {
          // z' = (x + 1) mod 3, encoded with a case split.
          return C.mkOr(
              C.mkAnd(C.mkLt(X, icst(C, 2)), C.mkEq(Z, C.mkAdd(X, icst(C, 1)))),
              C.mkAnd(C.mkGe(X, icst(C, 2)), C.mkEq(Z, icst(C, 0))));
        },
        [&](TermRef Z) { return C.mkGt(Z, icst(C, 2)); });
  });

  return Out;
}

std::vector<BenchInstance> mucyc::buildSmallSuite() {
  std::vector<BenchInstance> All = buildSuite();
  std::vector<BenchInstance> Small;
  for (BenchInstance &B : All) {
    if (B.Name == "counter_safe_3" || B.Name == "counter_unsafe_3" ||
        B.Name == "paper_ex5" || B.Name == "paper_ex4" ||
        B.Name == "absdiff_2" || B.Name == "absdiff_5" ||
        B.Name == "parity_safe_4" || B.Name == "parity_unsafe_4" ||
        B.Name == "real_half_safe" || B.Name == "fibsum_safe" ||
        B.Name == "appendixC" || B.Name == "mod3_safe")
      Small.push_back(B);
  }
  return Small;
}
