//===- smt/TheoryLia.h - Arithmetic theory checker --------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conjunction-level feasibility checking for linear integer/real arithmetic
/// literals. The pipeline is:
///
///   1. Parse literals into linear constraints with reason tracking.
///   2. Integer equality elimination a la the Omega test (Pugh 1991):
///      unit-coefficient substitution, gcd infeasibility, and the symmetric-
///      modulus transformation for non-unit coefficients. Opposing
///      inequality pairs over the same form are promoted to equalities so
///      that parity-style infeasibilities (which defeat plain branch &
///      bound on unbounded integers) are caught structurally.
///   3. General simplex on the residue, with internal branch & bound on the
///      remaining integer variables (bounded by a node budget).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_THEORYLIA_H
#define MUCYC_SMT_THEORYLIA_H

#include "smt/Model.h"
#include "term/Linear.h"

#include <atomic>
#include <vector>

namespace mucyc {

/// A theory literal: an atom with its propositional polarity.
struct TheoryLit {
  TermRef Atom;
  bool Pos;
};

/// One-shot checker for a conjunction of arithmetic literals.
class ArithChecker {
public:
  explicit ArithChecker(TermContext &Ctx) : Ctx(Ctx) {}

  enum class Status { Feasible, Infeasible, Unknown };

  struct Outcome {
    Status St;
    /// Infeasible: indices into the literal vector forming a conflict.
    std::vector<size_t> Core;
  };

  /// Checks the conjunction. Negated equalities are ignored (the CNF layer
  /// guarantees a strict-inequality split atom covers them); divisibility
  /// atoms must have been eliminated before CNF conversion.
  Outcome check(const std::vector<TheoryLit> &Lits);

  /// After Feasible: values for every arithmetic variable that occurred.
  const Assignment &arithModel() const { return ArithAssign; }

  /// Branch & bound node budget per check (Unknown when exceeded).
  void setNodeBudget(uint64_t B) { NodeBudget = B; }

  /// Cooperative cancellation: polled in the simplex pivot loop, per
  /// branch-and-bound node, and per Omega-test recursion; a fired flag
  /// yields Unknown.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }

  /// Charges simplex tableau growth (every check() rebuild and every
  /// branch-and-bound fork) to the run's memory gauge.
  void setResourceGauge(ResourceGauge *G) { Gauge = G; }

private:
  TermContext &Ctx;
  Assignment ArithAssign;
  uint64_t NodeBudget = 20000;
  const std::atomic<bool> *CancelFlag = nullptr;
  ResourceGauge *Gauge = nullptr;
};

} // namespace mucyc

#endif // MUCYC_SMT_THEORYLIA_H
