//===- smt/Cnf.h - Tseitin CNF encoding -------------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin transformation from Boolean term DAGs to SAT clauses. Every
/// theory atom gets a dedicated SAT variable; the mapping is exposed so the
/// lazy SMT loop can extract theory literals from propositional models.
///
/// Arithmetic equalities additionally get a "split" clause
/// (a \/ lhs<rhs \/ lhs>rhs) at encoding time, which lets the theory checker
/// ignore negated equalities entirely.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_CNF_H
#define MUCYC_SMT_CNF_H

#include "smt/SatSolver.h"
#include "term/Term.h"

#include <unordered_map>

namespace mucyc {

/// Incremental Tseitin encoder bound to one SatSolver.
class Tseitin {
public:
  Tseitin(TermContext &Ctx, SatSolver &Sat) : Ctx(Ctx), Sat(Sat) {}

  /// Encodes a Boolean formula and returns its defining literal. Gate
  /// clauses are added to the solver as a side effect; results are cached.
  /// Recursive over the (cached) formula DAG; \p Depth trips a
  /// ResourceExhaustedDepth guard before the stack can overflow on
  /// degenerate nesting.
  SatLit encode(TermRef F, unsigned Depth = 0);

  /// Atom term associated with a SAT variable (invalid TermRef for gate and
  /// constant variables).
  TermRef atomOf(uint32_t SatVar) const {
    auto It = AtomBySatVar.find(SatVar);
    return It == AtomBySatVar.end() ? TermRef() : It->second;
  }

  /// All registered theory atoms with their SAT variables.
  const std::vector<std::pair<TermRef, uint32_t>> &atoms() const {
    return Atoms;
  }

private:
  SatLit encodeAtom(TermRef A);
  SatLit trueLit();

  TermContext &Ctx;
  SatSolver &Sat;
  std::unordered_map<uint32_t, SatLit> Cache; // TermRef.Idx -> literal.
  std::unordered_map<uint32_t, TermRef> AtomBySatVar;
  std::vector<std::pair<TermRef, uint32_t>> Atoms;
  SatLit True;
};

} // namespace mucyc

#endif // MUCYC_SMT_CNF_H
