//===- smt/SmtSolver.cpp - Lazy DPLL(T) solver ----------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace mucyc;

TermRef SmtSolver::eliminateDivides(TermRef F, unsigned Depth) {
  // Builders keep formulas flat (and/or splice their kids), so legitimate
  // nesting is shallow; anything this deep would overflow the stack first.
  if (Depth > 8192)
    raiseError(ErrorCode::ResourceExhaustedDepth,
               "formula nesting exceeds divide-elimination depth guard");
  const TermNode &N = Ctx.node(F);
  switch (N.K) {
  case Kind::Divides: {
    auto It = DividesRewrite.find(F.Idx);
    if (It != DividesRewrite.end())
      return It->second;
    // (d | t)  becomes  (r = 0)  with fresh q, r constrained by
    // t = d*q + r  and  0 <= r <= d-1. The witnesses exist for any t, so
    // this is an equisatisfiable conservative extension under both
    // polarities of the atom.
    assert(N.Val.isInt());
    TermRef T = N.Kids[0];
    TermRef Q = Ctx.mkFreshVar("div!q", Sort::Int);
    TermRef R = Ctx.mkFreshVar("div!r", Sort::Int);
    TermRef D = Ctx.mkConst(N.Val, Sort::Int);
    TermRef Def =
        Ctx.mkEq(T, Ctx.mkAdd(Ctx.mkMul(N.Val, Q), R));
    TermRef Range = Ctx.mkAnd(Ctx.mkGe(R, Ctx.mkIntConst(0)),
                              Ctx.mkLt(R, D));
    assertPermanent(Ctx.mkAnd(Def, Range));
    TermRef Repl = Ctx.mkEq(R, Ctx.mkIntConst(0));
    DividesRewrite.emplace(F.Idx, Repl);
    return Repl;
  }
  case Kind::Not:
    return Ctx.mkNot(eliminateDivides(N.Kids[0], Depth + 1));
  case Kind::And:
  case Kind::Or: {
    std::vector<TermRef> Kids;
    Kids.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      Kids.push_back(eliminateDivides(Kid, Depth + 1));
    return N.K == Kind::And ? Ctx.mkAnd(std::move(Kids))
                            : Ctx.mkOr(std::move(Kids));
  }
  default:
    return F;
  }
}

void SmtSolver::assertPermanent(TermRef F) {
  if (Ctx.kind(F) == Kind::True)
    return;
  if (Ctx.kind(F) == Kind::False) {
    TriviallyUnsat = true;
    return;
  }
  if (!Sat.addClause({Enc.encode(F)}))
    TriviallyUnsat = true;
}

void SmtSolver::assertFormula(TermRef F) {
  F = eliminateDivides(F);
  if (Scopes.empty())
    return assertPermanent(F);
  if (Ctx.kind(F) == Kind::True)
    return;
  // Guarded assertion: (F \/ not a_k). Asserting False inside a scope
  // degenerates to the unit (not a_k), which conflicts with the scope's
  // assumption while it is open and becomes the pop() retraction unit
  // afterwards — the scope is unsat now and harmless once popped.
  SatLit Guard(Scopes.back().ActVar, /*Negated=*/true);
  if (Ctx.kind(F) == Kind::False) {
    Sat.addClause({Guard});
    return;
  }
  Sat.addClause({Enc.encode(F), Guard});
}

void SmtSolver::push() { Scopes.push_back(Scope{Sat.newVar()}); }

void SmtSolver::pop() {
  assert(!Scopes.empty() && "pop without matching push");
  // Fix the activation variable false at the root: every clause guarded by
  // this scope — original or learned — is satisfied through the guard
  // literal from now on, so the clause database stays sound verbatim.
  // Activation variables are never reused.
  Sat.addClause({SatLit(Scopes.back().ActVar, /*Negated=*/true)});
  Scopes.pop_back();
}

void SmtSolver::setCancelFlag(const std::atomic<bool> *Flag) {
  CancelFlag = Flag;
  Sat.setCancelFlag(Flag);
  Checker.setCancelFlag(Flag);
}

SmtStatus SmtSolver::check(const std::vector<TermRef> &Assumptions) {
  Core.clear();
  if (TriviallyUnsat)
    return SmtStatus::Unsat;

  // Assume the activation literal of every open scope, then the user
  // assumptions. Core extraction below filters through AsmMap, so
  // activation literals never leak into unsatCore().
  std::vector<SatLit> AsmLits;
  std::vector<std::pair<SatLit, TermRef>> AsmMap;
  for (const Scope &Sc : Scopes)
    AsmLits.push_back(SatLit(Sc.ActVar, /*Negated=*/false));
  for (TermRef A : Assumptions) {
    TermRef E = eliminateDivides(A);
    if (Ctx.kind(E) == Kind::True)
      continue;
    if (Ctx.kind(E) == Kind::False) {
      Core = {A};
      return SmtStatus::Unsat;
    }
    SatLit L = Enc.encode(E);
    AsmLits.push_back(L);
    AsmMap.emplace_back(L, A);
  }

  for (uint64_t Iter = 0; Iter < LemmaBudget; ++Iter) {
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed))
      return SmtStatus::Unknown;
    SatSolver::Result SatRes = Sat.solve(AsmLits);
    if (SatRes == SatSolver::Result::Interrupted)
      return SmtStatus::Unknown;
    if (SatRes == SatSolver::Result::Unsat) {
      for (SatLit L : Sat.conflictCore())
        for (const auto &[AL, AT] : AsmMap)
          if (AL == L && std::find(Core.begin(), Core.end(), AT) == Core.end())
            Core.push_back(AT);
      return SmtStatus::Unsat;
    }

    // Extract theory literals from the propositional model.
    std::vector<TheoryLit> Lits;
    std::vector<SatLit> LitSat;
    for (const auto &[Atom, SatVar] : Enc.atoms()) {
      if (Ctx.kind(Atom) == Kind::Var)
        continue; // Boolean variable: no theory content.
      bool Pos = Sat.modelValue(SatVar);
      Lits.push_back(TheoryLit{Atom, Pos});
      LitSat.push_back(SatLit(SatVar, /*Negated=*/!Pos));
    }

    ArithChecker::Outcome Out = Checker.check(Lits);
    switch (Out.St) {
    case ArithChecker::Status::Feasible: {
      Assignment Assign = Checker.arithModel();
      for (const auto &[Atom, SatVar] : Enc.atoms()) {
        const TermNode &N = Ctx.node(Atom);
        if (N.K == Kind::Var)
          Assign[N.Var] = Value::boolean(Sat.modelValue(SatVar));
      }
      LastModel = Model(std::move(Assign));
      return SmtStatus::Sat;
    }
    case ArithChecker::Status::Infeasible: {
      // Block this theory-inconsistent combination.
      std::vector<SatLit> Blocking;
      Blocking.reserve(Out.Core.size());
      for (size_t I : Out.Core)
        Blocking.push_back(~LitSat[I]);
#ifndef NDEBUG
      if (std::getenv("MUCYC_VERIFY_CORES")) {
        static bool InVerify = false;
        if (!InVerify) {
          InVerify = true;
          std::vector<TermRef> CoreTerms;
          for (size_t I : Out.Core)
            CoreTerms.push_back(Lits[I].Pos ? Lits[I].Atom
                                            : Ctx.mkNot(Lits[I].Atom));
          if (quickCheck(Ctx, CoreTerms)) {
            std::fprintf(stderr, "[smt] BOGUS theory core:\n");
            for (TermRef T : CoreTerms)
              std::fprintf(stderr, "  %s\n", Ctx.toString(T).c_str());
            assert(false && "satisfiable theory core");
          }
          InVerify = false;
        }
      }
#endif
      if (!Sat.addClause(std::move(Blocking))) {
        TriviallyUnsat = true;
        return SmtStatus::Unsat;
      }
      break;
    }
    case ArithChecker::Status::Unknown:
      return SmtStatus::Unknown;
    }
  }
  return SmtStatus::Unknown;
}

std::vector<TermRef>
SmtSolver::minimizeCore(const std::vector<TermRef> &Assumptions,
                        unsigned *Probes) {
  unsigned Spent = 1;
  std::vector<TermRef> Cur = Assumptions;
  if (check(Cur) == SmtStatus::Unsat) {
    // Seed from the solver's own core — already a (not necessarily
    // minimal) subset.
    Cur = unsatCore();
    // Deletion loop: drop one element; if the rest stays Unsat, the
    // element is permanently redundant and the probe's core reseeds the
    // working set. A Sat or Unknown probe puts the element back.
    for (size_t I = 0; I < Cur.size();) {
      std::vector<TermRef> Probe;
      Probe.reserve(Cur.size() - 1);
      for (size_t J = 0; J < Cur.size(); ++J)
        if (J != I)
          Probe.push_back(Cur[J]);
      ++Spent;
      if (check(Probe) == SmtStatus::Unsat) {
        std::vector<TermRef> Sub = unsatCore();
        // unsatCore() preserves assumption order, so position I still
        // points at the first not-yet-probed element.
        Cur = std::move(Sub);
      } else {
        ++I;
      }
    }
  }
  if (Probes)
    *Probes = Spent;
  // Restore order as in the original assumption list (cosmetic: callers
  // rebuild clauses from the subset and want stable renderings).
  std::vector<TermRef> Out;
  Out.reserve(Cur.size());
  for (TermRef A : Assumptions)
    if (std::find(Cur.begin(), Cur.end(), A) != Cur.end() &&
        std::find(Out.begin(), Out.end(), A) == Out.end())
      Out.push_back(A);
  return Out;
}

std::optional<Model> SmtSolver::quickCheck(TermContext &Ctx,
                                           const std::vector<TermRef> &Conj) {
  SmtSolver S(Ctx);
  for (TermRef F : Conj)
    S.assertFormula(F);
  SmtStatus St = S.check();
  // quickCheck has no in-band Unknown: a blown lemma budget here is a
  // recoverable resource trip, not a programmer error.
  if (St == SmtStatus::Unknown)
    raiseError(ErrorCode::ResourceExhaustedSteps,
               "lemma budget exhausted in quickCheck");
  if (St == SmtStatus::Sat)
    return S.model();
  return std::nullopt;
}

bool SmtSolver::implies(TermContext &Ctx, TermRef A, TermRef B) {
  return !quickCheck(Ctx, {A, Ctx.mkNot(B)}).has_value();
}

bool SmtSolver::equivalent(TermContext &Ctx, TermRef F, TermRef G) {
  return implies(Ctx, F, G) && implies(Ctx, G, F);
}
