//===- smt/TheoryLia.cpp - Arithmetic theory checker ----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conjunction-level feasibility for linear arithmetic literals. Atoms are
/// sort-pure, so the conjunction splits into an independent real part
/// (decided completely by the general simplex with delta-rationals) and an
/// integer part, decided by the pipeline
///
///   1. Omega-style equality elimination (Pugh 1991): unit substitution,
///      gcd test, symmetric-modulus transformation; opposing inequality
///      pairs are promoted to equalities; gcd tightening normalizes
///      inequalities.
///   2. Branch & bound over the simplex relaxation (fast path, budgeted).
///   3. The Omega test (real shadow / dark shadow / splinters) as a
///      complete fallback when branch & bound exceeds its budget.
///
//===----------------------------------------------------------------------===//

#include "smt/TheoryLia.h"

#include "smt/Simplex.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

using namespace mucyc;

namespace {

/// Internal linear constraint over "local" variables: E + C <rel> 0.
struct Constraint {
  enum Rel { Le, Lt, Eq } R;
  std::map<uint32_t, Rational> E; ///< Local variable -> coefficient.
  Rational C;
  std::vector<int> Reasons; ///< Literal indices that produced it.
};

void addInto(std::map<uint32_t, Rational> &Dst,
             const std::map<uint32_t, Rational> &Src, const Rational &Scale) {
  for (const auto &[V, C] : Src) {
    Rational &Slot = Dst[V];
    Slot += C * Scale;
    if (Slot.isZero())
      Dst.erase(V);
  }
}

void mergeReasons(std::vector<int> &Dst, const std::vector<int> &Src) {
  for (int R : Src)
    if (std::find(Dst.begin(), Dst.end(), R) == Dst.end())
      Dst.push_back(R);
}

/// Symmetric modulus in (-m/2, m/2].
BigInt symMod(const BigInt &A, const BigInt &M) {
  BigInt R = A.euclidMod(M);
  if (R + R > M)
    R -= M;
  return R;
}

/// Substitution record: Var := E + C (over locals live after this step).
struct SubStep {
  uint32_t Var;
  std::map<uint32_t, Rational> E;
  Rational C;
};

enum class IntStatus { Sat, Unsat, Unknown };

/// Shared state of the integer decision pipeline.
struct IntSolver {
  uint32_t NumLocals; ///< Grows when sigma variables are introduced.
  std::vector<SubStep> Subs;
  std::vector<int> ConflictReasons;
  uint64_t BnbBudget;
  uint64_t OmegaBudget = 4000;
  const std::atomic<bool> *CancelFlag = nullptr;
  ResourceGauge *Gauge = nullptr;

  bool cancelled() const {
    return CancelFlag && CancelFlag->load(std::memory_order_relaxed);
  }

  uint32_t freshLocal() { return NumLocals++; }

  /// GCD tightening: E + C <= 0 with gcd(E) = g > 1 becomes
  /// E/g <= floor(-C/g).
  static void tighten(Constraint &C) {
    if (C.R != Constraint::Le || C.E.empty())
      return;
    BigInt G;
    for (const auto &[V, Cf] : C.E) {
      assert(Cf.isInt());
      G = BigInt::gcd(G, Cf.num());
    }
    if (G.isOne())
      return;
    Rational Inv = Rational(BigInt(1), G);
    std::map<uint32_t, Rational> Scaled;
    addInto(Scaled, C.E, Inv);
    C.E = std::move(Scaled);
    C.C = -Rational((C.C * Inv * Rational(-1)).floor());
  }

  /// Drops constant constraints; fills ConflictReasons and returns false on
  /// a violated one. Also applies tightening to every constraint.
  bool simplify(std::vector<Constraint> &Cons) {
    std::vector<Constraint> Kept;
    for (Constraint &C : Cons) {
      if (!C.E.empty()) {
        tighten(C);
        Kept.push_back(std::move(C));
        continue;
      }
      bool Violated = C.R == Constraint::Eq   ? !C.C.isZero()
                      : C.R == Constraint::Le ? C.C.sgn() > 0
                                              : C.C.sgn() >= 0;
      if (Violated) {
        ConflictReasons = C.Reasons;
        return false;
      }
    }
    Cons = std::move(Kept);
    return true;
  }

  void substituteVar(std::vector<Constraint> &Cons, uint32_t Var,
                     const std::map<uint32_t, Rational> &E, const Rational &C0,
                     const std::vector<int> &Reasons) {
    for (Constraint &Con : Cons) {
      auto It = Con.E.find(Var);
      if (It == Con.E.end())
        continue;
      Rational B = It->second;
      Con.E.erase(It);
      addInto(Con.E, E, B);
      Con.C += C0 * B;
      mergeReasons(Con.Reasons, Reasons);
    }
    Subs.push_back(SubStep{Var, E, C0});
  }

  /// Value of a local under the witness, resolving variables eliminated by
  /// substitution on demand (deeper recursion levels push their SubSteps
  /// before outer witnesses are extended, so chains resolve bottom-up).
  Rational resolveValue(uint32_t V, std::map<uint32_t, Rational> &Values) {
    auto It = Values.find(V);
    if (It != Values.end())
      return It->second;
    for (auto SIt = Subs.rbegin(); SIt != Subs.rend(); ++SIt) {
      if (SIt->Var != V)
        continue;
      Rational R = SIt->C;
      // Copy the expression: recursion may invalidate iterators into Subs
      // only if it pushed (it does not), but keep it simple and safe.
      std::map<uint32_t, Rational> Expr = SIt->E;
      for (const auto &[W, Cf] : Expr)
        R += Cf * resolveValue(W, Values);
      Values.emplace(V, R);
      return R;
    }
    Values.emplace(V, Rational(0));
    return Rational(0);
  }

  /// Equality elimination + pair promotion to a fixpoint. Returns false on
  /// conflict (ConflictReasons set).
  bool eqElim(std::vector<Constraint> &Cons) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      if (!simplify(Cons))
        return false;

      for (size_t CI = 0; CI < Cons.size(); ++CI) {
        Constraint &C = Cons[CI];
        if (C.R != Constraint::Eq || C.E.empty())
          continue;
        BigInt G;
        for (const auto &[V, Cf] : C.E)
          G = BigInt::gcd(G, Cf.num());
        assert(C.C.isInt());
        if (!C.C.num().euclidMod(G).isZero()) {
          ConflictReasons = C.Reasons; // gcd test.
          return false;
        }
        if (!G.isOne()) {
          Rational Inv = Rational(BigInt(1), G);
          std::map<uint32_t, Rational> Scaled;
          addInto(Scaled, C.E, Inv);
          C.E = std::move(Scaled);
          C.C *= Inv;
        }
        uint32_t UnitVar = UINT32_MAX;
        Rational UnitCoeff;
        for (const auto &[V, Cf] : C.E)
          if (Cf.num().abs().isOne()) {
            UnitVar = V;
            UnitCoeff = Cf;
            break;
          }
        if (UnitVar != UINT32_MAX) {
          std::map<uint32_t, Rational> Def;
          Rational Scale = -UnitCoeff.inverse();
          for (const auto &[V, Cf] : C.E)
            if (V != UnitVar)
              Def.emplace(V, Cf * Scale);
          Rational DefC = C.C * Scale;
          std::vector<int> Reasons = C.Reasons;
          Cons.erase(Cons.begin() + CI);
          substituteVar(Cons, UnitVar, Def, DefC, Reasons);
          Changed = true;
          break;
        }
        // Symmetric-modulus transformation: produce an implied congruence
        // equality whose coefficient on the min-|a| variable is a unit, and
        // substitute through it immediately.
        uint32_t K = 0;
        BigInt BestAbs;
        bool First = true;
        for (const auto &[V, Cf] : C.E) {
          BigInt A = Cf.num().abs();
          if (First || A < BestAbs) {
            K = V;
            BestAbs = A;
            First = false;
          }
        }
        BigInt M = BestAbs + BigInt(1);
        uint32_t Sigma = freshLocal();
        std::map<uint32_t, Rational> NewE;
        for (const auto &[V, Cf] : C.E) {
          BigInt SM = symMod(Cf.num(), M);
          if (!SM.isZero())
            NewE.emplace(V, Rational(SM));
        }
        Rational NewC{symMod(C.C.num(), M)};
        NewE.emplace(Sigma, Rational(-M));
        auto KIt = NewE.find(K);
        assert(KIt != NewE.end() && KIt->second.num().abs().isOne() &&
               "symmetric modulus did not produce a unit coefficient");
        Rational Scale = -KIt->second.inverse();
        std::map<uint32_t, Rational> Def;
        for (const auto &[V, Cf] : NewE)
          if (V != K)
            Def.emplace(V, Cf * Scale);
        Rational DefC = NewC * Scale;
        std::vector<int> Reasons = C.Reasons;
        substituteVar(Cons, K, Def, DefC, Reasons);
        Changed = true;
        break;
      }
      if (Changed)
        continue;

      // Promote opposing inequality pairs to an equality.
      for (size_t I = 0; I < Cons.size() && !Changed; ++I) {
        if (Cons[I].R != Constraint::Le || Cons[I].E.empty())
          continue;
        for (size_t J = I + 1; J < Cons.size(); ++J) {
          if (Cons[J].R != Constraint::Le ||
              Cons[J].E.size() != Cons[I].E.size())
            continue;
          if (Cons[I].C + Cons[J].C != Rational(0))
            continue;
          std::map<uint32_t, Rational> Neg;
          addInto(Neg, Cons[I].E, Rational(-1));
          if (Neg != Cons[J].E)
            continue;
          Cons[I].R = Constraint::Eq;
          mergeReasons(Cons[I].Reasons, Cons[J].Reasons);
          Cons.erase(Cons.begin() + J);
          Changed = true;
          break;
        }
      }
    }
    return true;
  }

  //===------------------------------------------------------------------===
  // Branch & bound (fast path)
  //===------------------------------------------------------------------===

  /// Runs simplex + branch & bound on integer-only Le constraints. Values
  /// for every local occurring in Cons are stored into \p Values.
  IntStatus bnb(const std::vector<Constraint> &Cons,
                std::map<uint32_t, Rational> &Values) {
    Simplex Base;
    Base.setResourceGauge(Gauge);
    std::map<uint32_t, Simplex::VarIdx> SpxOf;
    std::vector<std::vector<int>> ReasonSets;
    auto SpxVar = [&](uint32_t L) {
      auto It = SpxOf.find(L);
      if (It != SpxOf.end())
        return It->second;
      Simplex::VarIdx V = Base.addVar();
      SpxOf.emplace(L, V);
      return V;
    };
    for (const Constraint &C : Cons) {
      assert(C.R == Constraint::Le && !C.E.empty());
      Simplex::VarIdx Subject;
      Rational Scale(1);
      if (C.E.size() == 1) {
        Subject = SpxVar(C.E.begin()->first);
        Scale = C.E.begin()->second;
      } else {
        std::map<Simplex::VarIdx, Rational> Row;
        for (const auto &[V, Cf] : C.E)
          Row.emplace(SpxVar(V), Cf);
        Subject = Base.addRowVar(Row);
      }
      Rational Bound = -C.C / Scale;
      bool Flip = Scale.sgn() < 0;
      int Tag = static_cast<int>(ReasonSets.size());
      ReasonSets.push_back(C.Reasons);
      if (!Base.assertBound(Subject, Flip, DeltaRational(Bound), Tag)) {
        ConflictReasons.clear();
        for (int T : Base.explanation())
          if (T >= 0)
            mergeReasons(ConflictReasons, ReasonSets[T]);
        return IntStatus::Unsat;
      }
    }
    std::vector<std::pair<uint32_t, Simplex::VarIdx>> IntLocals(
        SpxOf.begin(), SpxOf.end());

    Base.setCancelFlag(CancelFlag); // Forks inherit the flag by copy.
    uint64_t Nodes = 0;
    std::vector<int> Core;
    std::vector<Simplex> Work;
    Work.push_back(std::move(Base));
    while (!Work.empty()) {
      if (++Nodes > BnbBudget || cancelled())
        return IntStatus::Unknown;
      Simplex Spx = std::move(Work.back());
      Work.pop_back();
      if (!Spx.check()) {
        if (Spx.interrupted())
          return IntStatus::Unknown;
        for (int T : Spx.explanation())
          if (T >= 0)
            mergeReasons(Core, ReasonSets[T]);
        continue;
      }
      const std::pair<uint32_t, Simplex::VarIdx> *Frac = nullptr;
      for (const auto &P : IntLocals) {
        const DeltaRational &DV = Spx.value(P.second);
        assert(DV.delta().isZero());
        if (!DV.real().isInt()) {
          Frac = &P;
          break;
        }
      }
      if (!Frac) {
        for (const auto &[L, V] : SpxOf)
          Values[L] = Spx.value(V).real();
        return IntStatus::Sat;
      }
      BigInt Fl = Spx.value(Frac->second).real().floor();
      Simplex Left = Spx;
      if (Left.assertBound(Frac->second, false, DeltaRational(Rational(Fl)),
                           -1))
        Work.push_back(std::move(Left));
      else
        for (int T : Left.explanation())
          if (T >= 0)
            mergeReasons(Core, ReasonSets[T]);
      Simplex Right = std::move(Spx);
      if (Right.assertBound(Frac->second, true,
                            DeltaRational(Rational(Fl + BigInt(1))), -1))
        Work.push_back(std::move(Right));
      else
        for (int T : Right.explanation())
          if (T >= 0)
            mergeReasons(Core, ReasonSets[T]);
    }
    ConflictReasons = Core;
    return IntStatus::Unsat;
  }

  //===------------------------------------------------------------------===
  // Omega test (complete fallback)
  //===------------------------------------------------------------------===

  /// Decides a system of integer Le constraints (equalities must have been
  /// eliminated) and produces witness values on Sat. Complete up to the
  /// recursion budget.
  IntStatus omega(std::vector<Constraint> Cons,
                  std::map<uint32_t, Rational> &Values) {
    // Substitutions from abandoned branches must not leak into the final
    // back-substitution chain: roll back on anything but Sat.
    size_t SubsMark = Subs.size();
    IntStatus R = omegaImpl(std::move(Cons), Values);
    if (R != IntStatus::Sat)
      Subs.resize(SubsMark);
    return R;
  }

  IntStatus omegaImpl(std::vector<Constraint> Cons,
                      std::map<uint32_t, Rational> &Values) {
    if (OmegaBudget == 0 || cancelled())
      return IntStatus::Unknown;
    --OmegaBudget;
    if (!eqElim(Cons))
      return IntStatus::Unsat;
    if (Cons.empty())
      return IntStatus::Sat;

    // Choose the variable minimizing the shadow blowup.
    std::map<uint32_t, std::pair<size_t, size_t>> Count; // lowers, uppers.
    for (const Constraint &C : Cons)
      for (const auto &[V, Cf] : C.E)
        (Cf.sgn() < 0 ? Count[V].first : Count[V].second) += 1;
    uint32_t X = Count.begin()->first;
    size_t BestCost = SIZE_MAX;
    for (const auto &[V, LU] : Count) {
      size_t Cost = LU.first * LU.second;
      if (Cost < BestCost) {
        BestCost = Cost;
        X = V;
      }
    }

    // Partition on X: lowers a*x >= s (a > 0), uppers b*x <= t (b > 0).
    struct Bnd {
      BigInt A;
      std::map<uint32_t, Rational> T; ///< The bounding expression.
      Rational TC;
      std::vector<int> Reasons;
    };
    std::vector<Bnd> Lowers, Uppers;
    std::vector<Constraint> Rest;
    for (const Constraint &C : Cons) {
      auto It = C.E.find(X);
      if (It == C.E.end()) {
        Rest.push_back(C);
        continue;
      }
      // c*x + R + k <= 0.
      Bnd B;
      Rational Coeff = It->second;
      B.Reasons = C.Reasons;
      B.T = C.E;
      B.T.erase(X);
      B.TC = C.C;
      if (Coeff.sgn() > 0) {
        // c*x <= -(R + k): upper with b = c, t = -(R + k).
        B.A = Coeff.num();
        std::map<uint32_t, Rational> Neg;
        addInto(Neg, B.T, Rational(-1));
        B.T = std::move(Neg);
        B.TC = -B.TC;
        Uppers.push_back(std::move(B));
      } else {
        // c*x + R + k <= 0 with c < 0: (-c)*x >= R + k.
        B.A = (-Coeff).num();
        Lowers.push_back(std::move(B));
      }
    }

    auto ExtendWitness = [&](std::map<uint32_t, Rational> &W) {
      auto Eval = [&](const Bnd &B) {
        Rational R = B.TC;
        for (const auto &[V, Cf] : B.T)
          R += Cf * resolveValue(V, W);
        return R;
      };
      if (!Lowers.empty()) {
        // x := max_i ceil(s_i / a_i).
        bool First = true;
        BigInt Best;
        for (const Bnd &L : Lowers) {
          BigInt Cand = (Eval(L) / Rational(L.A)).ceil();
          if (First || Cand > Best) {
            Best = Cand;
            First = false;
          }
        }
        W[X] = Rational(Best);
      } else if (!Uppers.empty()) {
        bool First = true;
        BigInt Best;
        for (const Bnd &U : Uppers) {
          BigInt Cand = (Eval(U) / Rational(U.A)).floor();
          if (First || Cand < Best) {
            Best = Cand;
            First = false;
          }
        }
        W[X] = Rational(Best);
      } else {
        W[X] = Rational(0);
      }
    };

    // Unbounded on one side: drop X entirely.
    if (Lowers.empty() || Uppers.empty()) {
      IntStatus R = omega(Rest, Values);
      if (R == IntStatus::Sat)
        ExtendWitness(Values);
      return R;
    }

    // Shadows. Real: a*t - b*s >= 0; dark: a*t - b*s >= (a-1)(b-1). When
    // a == 1 or b == 1 the two coincide (exact projection).
    bool Exact = true;
    for (const Bnd &L : Lowers)
      for (const Bnd &U : Uppers)
        if (!L.A.isOne() && !U.A.isOne())
          Exact = false;
    auto Shadow = [&](bool Dark) {
      std::vector<Constraint> S = Rest;
      for (const Bnd &L : Lowers)
        for (const Bnd &U : Uppers) {
          // b*s - a*t + slack <= 0.
          Constraint C;
          C.R = Constraint::Le;
          addInto(C.E, L.T, Rational(U.A));
          addInto(C.E, U.T, -Rational(L.A));
          C.C = L.TC * Rational(U.A) - U.TC * Rational(L.A);
          if (Dark)
            C.C += Rational((L.A - BigInt(1)) * (U.A - BigInt(1)));
          C.Reasons = L.Reasons;
          mergeReasons(C.Reasons, U.Reasons);
          S.push_back(std::move(C));
        }
      return S;
    };

    if (Exact) {
      IntStatus R = omega(Shadow(false), Values);
      if (R == IntStatus::Sat)
        ExtendWitness(Values);
      return R;
    }

    IntStatus Dark = omega(Shadow(true), Values);
    if (Dark == IntStatus::Sat) {
      ExtendWitness(Values);
      return IntStatus::Sat;
    }
    if (Dark == IntStatus::Unknown)
      return Dark;

    // Splinters: exists x iff dark-shadow solution or x pinned near some
    // lower bound: a*x = s + i for 0 <= i <= (a*bmax - a - bmax)/bmax.
    BigInt BMax(1);
    for (const Bnd &U : Uppers)
      if (U.A > BMax)
        BMax = U.A;
    for (const Bnd &L : Lowers) {
      BigInt Num = L.A * BMax - L.A - BMax;
      if (Num.isNeg())
        continue;
      BigInt MaxI = Num / BMax;
      for (BigInt I(0); I <= MaxI; I += BigInt(1)) {
        std::vector<Constraint> S = Cons;
        Constraint Eq;
        Eq.R = Constraint::Eq;
        Eq.E.emplace(X, Rational(L.A));
        addInto(Eq.E, L.T, Rational(-1));
        Eq.C = -L.TC - Rational(I);
        Eq.Reasons = L.Reasons;
        S.push_back(std::move(Eq));
        IntStatus R = omega(std::move(S), Values);
        if (R != IntStatus::Unsat)
          return R;
      }
    }
    // No branch feasible: conservatively blame everything involved.
    ConflictReasons.clear();
    for (const Constraint &C : Cons)
      mergeReasons(ConflictReasons, C.Reasons);
    return IntStatus::Unsat;
  }
};

struct LocalVar {
  bool IsInt;
  VarId Term = UINT32_MAX; ///< Term variable, or UINT32_MAX for sigma vars.
};

} // namespace

ArithChecker::Outcome ArithChecker::check(const std::vector<TheoryLit> &Lits) {
  std::vector<LocalVar> Locals;
  std::map<VarId, uint32_t> LocalOf;
  auto GetLocal = [&](VarId V) {
    auto It = LocalOf.find(V);
    if (It != LocalOf.end())
      return It->second;
    uint32_t L = static_cast<uint32_t>(Locals.size());
    Locals.push_back(LocalVar{Ctx.varInfo(V).S == Sort::Int, V});
    LocalOf.emplace(V, L);
    return L;
  };

  Outcome Out;
  auto LiteralCore = [&](const std::vector<int> &Reasons) {
    Out.St = Status::Infeasible;
    Out.Core.clear();
    for (int R : Reasons)
      if (R >= 0)
        Out.Core.push_back(static_cast<size_t>(R));
    std::sort(Out.Core.begin(), Out.Core.end());
    Out.Core.erase(std::unique(Out.Core.begin(), Out.Core.end()),
                   Out.Core.end());
    return Out;
  };

  //===--------------------------------------------------------------------===
  // Parse literals into int and real constraint systems.
  //===--------------------------------------------------------------------===
  std::vector<Constraint> IntCons, RealCons;
  for (size_t I = 0; I < Lits.size(); ++I) {
    const TheoryLit &TL = Lits[I];
    const TermNode &N = Ctx.node(TL.Atom);
    assert(N.K == Kind::Le || N.K == Kind::Lt || N.K == Kind::EqA);
    if (N.K == Kind::EqA && !TL.Pos)
      continue; // Covered by the CNF-level split clause.

    Sort S = atomArithSort(Ctx, TL.Atom);
    LinExpr Sum = LinExpr::fromTerm(Ctx, N.Kids[0]);
    Rational K = Ctx.node(N.Kids[1]).Val;

    Constraint C;
    C.Reasons = {static_cast<int>(I)};
    for (const auto &[V, Cf] : Sum.Coeffs)
      C.E.emplace(GetLocal(V), Cf);
    C.C = Sum.Const - K;
    auto Negate = [&]() {
      std::map<uint32_t, Rational> Neg;
      addInto(Neg, C.E, Rational(-1));
      C.E = std::move(Neg);
    };
    switch (N.K) {
    case Kind::EqA:
      C.R = Constraint::Eq;
      break;
    case Kind::Le:
      if (TL.Pos) {
        C.R = Constraint::Le;
      } else if (S == Sort::Int) {
        Negate();
        C.C = K + Rational(1) - Sum.Const;
        C.R = Constraint::Le;
      } else {
        Negate();
        C.C = K - Sum.Const;
        C.R = Constraint::Lt;
      }
      break;
    case Kind::Lt:
      if (TL.Pos) {
        C.R = Constraint::Lt;
      } else {
        Negate();
        C.C = K - Sum.Const;
        C.R = Constraint::Le;
      }
      break;
    default:
      break;
    }
    (S == Sort::Int ? IntCons : RealCons).push_back(std::move(C));
  }

  //===--------------------------------------------------------------------===
  // Real part: complete via the general simplex.
  //===--------------------------------------------------------------------===
  Assignment Assign;
  if (!RealCons.empty()) {
    Simplex Spx;
    Spx.setCancelFlag(CancelFlag);
    Spx.setResourceGauge(Gauge);
    std::map<uint32_t, Simplex::VarIdx> SpxOf;
    std::vector<std::vector<int>> ReasonSets;
    auto SpxVar = [&](uint32_t L) {
      auto It = SpxOf.find(L);
      if (It != SpxOf.end())
        return It->second;
      Simplex::VarIdx V = Spx.addVar();
      SpxOf.emplace(L, V);
      return V;
    };
    auto Fail = [&](const std::vector<int> &Expl) {
      std::vector<int> Rs;
      for (int T : Expl)
        if (T >= 0)
          mergeReasons(Rs, ReasonSets[T]);
      return LiteralCore(Rs);
    };
    for (const Constraint &C : RealCons) {
      assert(!C.E.empty() && "ground real constraint survived parsing");
      Simplex::VarIdx Subject;
      Rational Scale(1);
      if (C.E.size() == 1) {
        Subject = SpxVar(C.E.begin()->first);
        Scale = C.E.begin()->second;
      } else {
        std::map<Simplex::VarIdx, Rational> Row;
        for (const auto &[V, Cf] : C.E)
          Row.emplace(SpxVar(V), Cf);
        Subject = Spx.addRowVar(Row);
      }
      Rational Bound = -C.C / Scale;
      bool Flip = Scale.sgn() < 0;
      int Tag = static_cast<int>(ReasonSets.size());
      ReasonSets.push_back(C.Reasons);
      bool Ok = true;
      switch (C.R) {
      case Constraint::Eq:
        Ok = Spx.assertBound(Subject, true, DeltaRational(Bound), Tag) &&
             Spx.assertBound(Subject, false, DeltaRational(Bound), Tag);
        break;
      case Constraint::Le:
        Ok = Spx.assertBound(Subject, Flip, DeltaRational(Bound), Tag);
        break;
      case Constraint::Lt: {
        DeltaRational B(Bound, Flip ? Rational(1) : Rational(-1));
        Ok = Spx.assertBound(Subject, Flip, B, Tag);
        break;
      }
      }
      if (!Ok)
        return Fail(Spx.explanation());
    }
    if (!Spx.check()) {
      if (Spx.interrupted()) {
        Out.St = Status::Unknown;
        return Out;
      }
      return Fail(Spx.explanation());
    }
    Rational Eps = Spx.suitableEpsilon();
    for (const auto &[L, V] : SpxOf)
      Assign.emplace(Locals[L].Term,
                     Value::number(Spx.value(V).materialize(Eps), Sort::Real));
  }

  //===--------------------------------------------------------------------===
  // Integer part: equality elimination, branch & bound, Omega fallback.
  //===--------------------------------------------------------------------===
  std::map<uint32_t, Rational> IntValues;
  if (!IntCons.empty()) {
    std::vector<Constraint> OrigInt = IntCons; // For the model self-check.
    IntSolver IS;
    IS.NumLocals = static_cast<uint32_t>(Locals.size());
    IS.BnbBudget = NodeBudget;
    IS.CancelFlag = CancelFlag;
    IS.Gauge = Gauge;
    if (!IS.eqElim(IntCons))
      return LiteralCore(IS.ConflictReasons);

    IntStatus St = IS.bnb(IntCons, IntValues);
    if (St == IntStatus::Unknown) {
      if (std::getenv("MUCYC_DEBUG_ARITH"))
        std::fprintf(stderr, "[arith] bnb budget exceeded; omega fallback "
                             "(%zu constraints)\n",
                     IntCons.size());
      IntValues.clear();
      St = IS.omega(IntCons, IntValues);
    }
    if (St == IntStatus::Unsat)
      return LiteralCore(IS.ConflictReasons);
    if (St == IntStatus::Unknown) {
      Out.St = Status::Unknown;
      return Out;
    }
    // Back-substitute the eliminated variables (reverse order).
    auto ValueOf = [&](uint32_t L) {
      auto It = IntValues.find(L);
      return It == IntValues.end() ? Rational(0) : It->second;
    };
    for (auto It = IS.Subs.rbegin(); It != IS.Subs.rend(); ++It) {
      Rational V = It->C;
      for (const auto &[W, Cf] : It->E)
        V += Cf * ValueOf(W);
      IntValues[It->Var] = V;
    }
#ifndef NDEBUG
    // Self-check: the witness must satisfy every original constraint.
    for (const Constraint &C : OrigInt) {
      Rational S = C.C;
      for (const auto &[V, Cf] : C.E)
        S += Cf * ValueOf(V);
      bool Holds = C.R == Constraint::Eq ? S.isZero() : S.sgn() <= 0;
      if (!Holds && std::getenv("MUCYC_DEBUG_ARITH"))
        std::fprintf(stderr, "[arith] witness violates constraint (rel=%d, "
                             "residual=%s)\n",
                     static_cast<int>(C.R), S.toString().c_str());
      MUCYC_INVARIANT(Holds, "integer witness violates an input constraint");
    }
#endif
  }

  for (uint32_t L = 0; L < Locals.size(); ++L) {
    if (Locals[L].Term == UINT32_MAX || !Locals[L].IsInt)
      continue;
    auto It = IntValues.find(L);
    Rational V = It == IntValues.end() ? Rational(0) : It->second;
    MUCYC_INVARIANT(V.isInt(), "non-integral Int model value");
    Assign.emplace(Locals[L].Term, Value::number(V, Sort::Int));
  }

  ArithAssign = std::move(Assign);
  Out.St = Status::Feasible;
  return Out;
}
