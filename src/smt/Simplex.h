//===- smt/Simplex.h - General simplex for linear arithmetic ----*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The general simplex of Dutertre & de Moura ("A fast linear-arithmetic
/// solver for DPLL(T)", CAV 2006): bound-constrained variables connected by
/// linear rows, with delta-rationals representing strict bounds. Produces
/// minimal-ish conflict explanations as sets of caller-supplied reason tags.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_SIMPLEX_H
#define MUCYC_SMT_SIMPLEX_H

#include "support/Fault.h"
#include "support/Rational.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace mucyc {

/// Feasibility core for conjunctions of linear bounds.
class Simplex {
public:
  using VarIdx = uint32_t;

  /// Adds a free structural variable.
  VarIdx addVar();

  /// Adds a slack variable defined by the linear form sum(Row[v] * v).
  /// Referenced variables may themselves be basic; their rows are inlined.
  VarIdx addRowVar(const std::map<VarIdx, Rational> &Row);

  /// Asserts V >= B (IsLower) or V <= B. \p Reason is an opaque tag used in
  /// explanations. Returns false on an immediate bound conflict.
  bool assertBound(VarIdx V, bool IsLower, const DeltaRational &B, int Reason);

  /// Restores feasibility; returns false if the constraints are infeasible,
  /// in which case explanation() holds the conflicting reasons. Also
  /// returns false when a cancel flag fired mid-check; callers that
  /// installed one must test interrupted() before trusting an infeasible
  /// verdict (the explanation is empty then).
  bool check();

  /// Cooperative cancellation: polled once per pivot round. Copies of the
  /// tableau (branch & bound forks) inherit the flag.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }
  bool interrupted() const { return Interrupted; }

  /// Charges tableau growth (vars, rows) to the run's cumulative memory
  /// gauge; a budget trip raises ResourceExhaustedMemory. Copies (branch &
  /// bound forks) inherit the pointer; their cloned rows are not
  /// re-charged, which under-approximates in the safe-for-progress
  /// direction.
  void setResourceGauge(ResourceGauge *G) { Gauge = G; }

  const std::vector<int> &explanation() const { return Explanation; }

  /// Current value of a variable (valid after a successful check()).
  const DeltaRational &value(VarIdx V) const { return Vars[V].Val; }

  /// An epsilon small enough that materializing every variable value with it
  /// satisfies all asserted bounds strictly/non-strictly as required.
  Rational suitableEpsilon() const;

  size_t numVars() const { return Vars.size(); }

private:
  struct VarState {
    DeltaRational Val;
    DeltaRational Lb, Ub;
    bool HasLb = false, HasUb = false;
    int LbReason = -1, UbReason = -1;
    bool Basic = false;
    uint32_t RowIdx = 0; ///< Valid when Basic.
  };

  /// Tableau row over non-basic vars only. Coefficients live in a flat
  /// vector sorted by ascending VarIdx — iteration order matches the old
  /// std::map layout exactly (Bland's rule and explanation order depend on
  /// it), while pivoting walks contiguous memory instead of chasing
  /// red-black tree nodes.
  struct Row {
    VarIdx Owner;
    std::vector<std::pair<VarIdx, Rational>> Coeffs;

    /// Iterator to the entry for \p V, or Coeffs.end().
    std::vector<std::pair<VarIdx, Rational>>::iterator entry(VarIdx V) {
      auto It = std::lower_bound(
          Coeffs.begin(), Coeffs.end(), V,
          [](const std::pair<VarIdx, Rational> &E, VarIdx X) {
            return E.first < X;
          });
      return It != Coeffs.end() && It->first == V ? It : Coeffs.end();
    }
    /// Coefficient of \p V, or nullptr when absent.
    const Rational *find(VarIdx V) const {
      auto It = std::lower_bound(
          Coeffs.begin(), Coeffs.end(), V,
          [](const std::pair<VarIdx, Rational> &E, VarIdx X) {
            return E.first < X;
          });
      return It != Coeffs.end() && It->first == V ? &It->second : nullptr;
    }
    /// Accumulates C into the slot for \p V, dropping it on exact zero.
    void add(VarIdx V, const Rational &C) {
      auto It = std::lower_bound(
          Coeffs.begin(), Coeffs.end(), V,
          [](const std::pair<VarIdx, Rational> &E, VarIdx X) {
            return E.first < X;
          });
      if (It != Coeffs.end() && It->first == V) {
        It->second += C;
        if (It->second.isZero())
          Coeffs.erase(It);
      } else if (!C.isZero()) {
        Coeffs.insert(It, {V, C});
      }
    }
  };

  void updateNonBasic(VarIdx V, const DeltaRational &NewVal);
  void pivot(VarIdx Basic, VarIdx NonBasic);
  void explainRowConflict(const Row &R, bool NeedIncrease, int OwnBoundReason);

  std::vector<VarState> Vars;
  std::vector<Row> Rows;
  std::vector<int> Explanation;
  const std::atomic<bool> *CancelFlag = nullptr;
  bool Interrupted = false;
  ResourceGauge *Gauge = nullptr;
};

} // namespace mucyc

#endif // MUCYC_SMT_SIMPLEX_H
