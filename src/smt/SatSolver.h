//===- smt/SatSolver.h - CDCL SAT solver ------------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MiniSat-style CDCL solver: two-watched-literal propagation, first-UIP
/// clause learning, VSIDS branching with phase saving, geometric restarts,
/// and assumption-based solving with final-conflict core extraction. This is
/// the propositional engine underneath the lazy SMT loop in SmtSolver.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_SATSOLVER_H
#define MUCYC_SMT_SATSOLVER_H

#include "support/Fault.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mucyc {

/// Propositional literal: variable index with sign. Encoded as 2*var + sign
/// so literals pack into arrays.
struct SatLit {
  uint32_t X = UINT32_MAX;

  SatLit() = default;
  SatLit(uint32_t Var, bool Negated) : X(2 * Var + (Negated ? 1 : 0)) {}

  uint32_t var() const { return X >> 1; }
  bool negated() const { return X & 1; }
  SatLit operator~() const {
    SatLit L;
    L.X = X ^ 1;
    return L;
  }
  bool isValid() const { return X != UINT32_MAX; }
  bool operator==(const SatLit &RHS) const { return X == RHS.X; }
  bool operator!=(const SatLit &RHS) const { return X != RHS.X; }
  bool operator<(const SatLit &RHS) const { return X < RHS.X; }
};

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// CDCL SAT solver. Supports adding clauses between solve() calls; learned
/// clauses and activities persist.
class SatSolver {
public:
  /// Interrupted is only produced when a cancel flag is installed and
  /// becomes set mid-solve; the solver state stays valid (backtracked to
  /// the root) but neither a model nor a core is available.
  enum class Result { Sat, Unsat, Interrupted };

  /// Cooperative cancellation: polled once per propagation round.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }

  /// Charges clause growth (original and learned) to the run's memory
  /// gauge; a budget trip raises ResourceExhaustedMemory from the charge
  /// point, before the clause is stored. Installed by SmtSolver from its
  /// TermContext; the pointee must outlive the solver.
  void setResourceGauge(ResourceGauge *G) { Gauge = G; }

  /// Creates a new variable and returns its index.
  uint32_t newVar();
  size_t numVars() const { return Assigns.size(); }

  /// Adds a clause. Returns false if the solver became trivially
  /// unsatisfiable (empty clause). Clauses may be added at any time outside
  /// of solve().
  bool addClause(std::vector<SatLit> Lits);

  /// Solves under the given assumptions.
  Result solve(const std::vector<SatLit> &Assumptions = {});

private:
  Result solveImpl(const std::vector<SatLit> &Assumptions);

public:

  /// After Sat: value of a variable (never Undef for decision vars used in
  /// clauses; isolated vars default to False).
  bool modelValue(uint32_t Var) const {
    assert(Var < Model.size());
    return Model[Var] == LBool::True;
  }

  /// After Unsat under assumptions: the subset of assumptions that was used
  /// to derive the conflict (a "core"). Empty if the instance is
  /// unconditionally unsatisfiable.
  const std::vector<SatLit> &conflictCore() const { return ConflictCore; }

  /// Statistics.
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }

  /// Learned clauses currently in the database (the retention the SMT
  /// scope layer advertises: lemmas survive pop() unless the reduction
  /// policy drops them).
  uint64_t numLearned() const {
    uint64_t N = 0;
    for (const Clause &C : Clauses)
      N += C.Learned ? 1 : 0;
    return N;
  }

  /// Debugging: replays every original (non-learned) clause plus root-level
  /// units into \p Other. Used by self-check harnesses to compare an
  /// incremental solver against a fresh one.
  void replayInto(SatSolver &Other) const;

  /// Debugging: the original clause set (root units + non-learned clauses).
  std::vector<std::vector<SatLit>> originalClauses() const;

  /// Debugging: the literals currently fixed at decision level 0.
  std::vector<SatLit> rootUnits() const {
    std::vector<SatLit> Out;
    for (size_t I = 0;
         I < Trail.size() && (TrailLims.empty() || I < TrailLims[0]); ++I)
      Out.push_back(Trail[I]);
    return Out;
  }

private:
  struct Clause {
    std::vector<SatLit> Lits;
    bool Learned = false;
    double Activity = 0;
  };
  using ClauseIdx = uint32_t;
  static constexpr ClauseIdx NoReason = UINT32_MAX;

  struct Watcher {
    ClauseIdx C;
    SatLit Blocker;
  };

  LBool value(SatLit L) const {
    LBool V = Assigns[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    return (V == LBool::True) != L.negated() ? LBool::True : LBool::False;
  }

  void enqueue(SatLit L, ClauseIdx Reason);
  /// Unit propagation; returns a conflicting clause index or NoReason.
  ClauseIdx propagate();
  /// First-UIP conflict analysis. Fills the learned clause (asserting
  /// literal first) and the backjump level.
  void analyze(ClauseIdx Confl, std::vector<SatLit> &Learned, int &BtLevel);
  /// Computes the assumption core from a conflict at decision level <=
  /// number of assumptions.
  void analyzeFinal(SatLit P, std::vector<SatLit> &Core);
  void backtrack(int Level);
  void bumpVar(uint32_t V);
  void bumpClause(Clause &C);
  void decayActivities();
  SatLit pickBranchLit();
  void attachClause(ClauseIdx Idx);
  void reduceLearned();

  int level(uint32_t V) const { return Levels[V]; }
  int currentLevel() const { return static_cast<int>(TrailLims.size()); }

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // Indexed by literal code.
  std::vector<LBool> Assigns;
  std::vector<LBool> Phase;
  std::vector<int> Levels;
  std::vector<ClauseIdx> Reasons;
  std::vector<SatLit> Trail;
  std::vector<size_t> TrailLims;
  size_t PropHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  double ClaInc = 1.0;
  // Binary-heap order by activity, lazily maintained.
  std::vector<uint32_t> Heap;
  std::vector<int> HeapPos;
  void heapInsert(uint32_t V);
  uint32_t heapPop();
  void heapUp(int I);
  void heapDown(int I);
  bool heapLess(uint32_t A, uint32_t B) const {
    return Activity[A] > Activity[B];
  }

  std::vector<LBool> Model;
  std::vector<SatLit> ConflictCore;
  std::vector<char> SeenBuf;

  bool Unsat = false;
  uint64_t Conflicts = 0, Decisions = 0, Propagations = 0;
  const std::atomic<bool> *CancelFlag = nullptr;
  ResourceGauge *Gauge = nullptr;

public:
  /// Debugging: instance tag used by the MUCYC_SAT_LOG record/replay.
  int LogId = -1;

private:
  /// Shadow copy of all input clauses (pre-simplification); only populated
  /// when MUCYC_VERIFY_LEARNED is set.
  std::vector<std::vector<SatLit>> DebugInputs;
  void verifyLearned(const std::vector<SatLit> &Learned);
};

} // namespace mucyc

#endif // MUCYC_SMT_SATSOLVER_H
