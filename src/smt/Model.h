//===- smt/Model.h - First-order models -------------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model is a finite assignment of ground values to term variables. Models
/// are produced by SmtSolver and consumed by the MBP procedures (whose
/// contract in Definition 1 of the paper is "for every M |= phi ...").
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_MODEL_H
#define MUCYC_SMT_MODEL_H

#include "term/Eval.h"

namespace mucyc {

/// Finite variable assignment with defaulting for unconstrained variables.
class Model {
public:
  Model() = default;
  explicit Model(Assignment A) : Assign(std::move(A)) {}

  void set(VarId V, Value Val) { Assign[V] = std::move(Val); }
  bool has(VarId V) const { return Assign.count(V) != 0; }

  /// Value of \p V, defaulting to false/0 at the variable's sort.
  Value value(const TermContext &Ctx, VarId V) const;

  /// Evaluates a term, defaulting unassigned variables.
  Value eval(const TermContext &Ctx, TermRef T) const;
  bool holds(const TermContext &Ctx, TermRef T) const;

  const Assignment &assignment() const { return Assign; }

  std::string toString(const TermContext &Ctx) const;

private:
  Assignment Assign;
};

} // namespace mucyc

#endif // MUCYC_SMT_MODEL_H
