//===- smt/SatSolver.cpp - CDCL SAT solver --------------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace {
/// Optional operation log for record/replay debugging (MUCYC_SAT_LOG).
FILE *satLog() {
  static FILE *F = [] {
    const char *Path = std::getenv("MUCYC_SAT_LOG");
    return Path ? std::fopen(Path, "w") : nullptr;
  }();
  return F;
}
int nextSatId() {
  // Atomic: solver instances are created concurrently by the runtime's
  // worker threads.
  static std::atomic<int> N{0};
  return N.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

using namespace mucyc;

uint32_t SatSolver::newVar() {
  if (LogId < 0)
    LogId = nextSatId();
  if (FILE *L = satLog())
    std::fprintf(L, "%d v\n", LogId);
  uint32_t V = static_cast<uint32_t>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Phase.push_back(LBool::False);
  Levels.push_back(0);
  Reasons.push_back(NoReason);
  Activity.push_back(0.0);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  SeenBuf.push_back(0);
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===
// Activity heap
//===----------------------------------------------------------------------===

void SatSolver::heapInsert(uint32_t V) {
  if (HeapPos[V] >= 0)
    return;
  HeapPos[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapUp(HeapPos[V]);
}

void SatSolver::heapUp(int I) {
  uint32_t V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) / 2;
    if (!heapLess(V, Heap[Parent]))
      break;
    Heap[I] = Heap[Parent];
    HeapPos[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::heapDown(int I) {
  uint32_t V = Heap[I];
  int N = static_cast<int>(Heap.size());
  while (true) {
    int L = 2 * I + 1, R = 2 * I + 2, Best = I;
    Heap[I] = V; // Tentatively place for comparisons.
    if (L < N && heapLess(Heap[L], Heap[Best]))
      Best = L;
    if (R < N && heapLess(Heap[R], Heap[Best]))
      Best = R;
    if (Best == I)
      break;
    Heap[I] = Heap[Best];
    HeapPos[Heap[I]] = I;
    I = Best;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

uint32_t SatSolver::heapPop() {
  uint32_t V = Heap[0];
  HeapPos[V] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapDown(0);
  }
  return V;
}

void SatSolver::bumpVar(uint32_t V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapUp(HeapPos[V]);
}

void SatSolver::bumpClause(Clause &C) {
  C.Activity += ClaInc;
  if (C.Activity > 1e20) {
    for (Clause &Cl : Clauses)
      if (Cl.Learned)
        Cl.Activity *= 1e-20;
    ClaInc *= 1e-20;
  }
}

void SatSolver::decayActivities() {
  VarInc /= 0.95;
  ClaInc /= 0.999;
}

//===----------------------------------------------------------------------===
// Clauses and propagation
//===----------------------------------------------------------------------===

void SatSolver::attachClause(ClauseIdx Idx) {
  const Clause &C = Clauses[Idx];
  assert(C.Lits.size() >= 2);
  Watches[(~C.Lits[0]).X].push_back(Watcher{Idx, C.Lits[1]});
  Watches[(~C.Lits[1]).X].push_back(Watcher{Idx, C.Lits[0]});
}

bool SatSolver::addClause(std::vector<SatLit> Lits) {
  if (std::getenv("MUCYC_VERIFY_LEARNED"))
    DebugInputs.push_back(Lits);
  if (FILE *L = satLog()) {
    std::fprintf(L, "%d c", LogId);
    for (SatLit Lit : Lits)
      std::fprintf(L, " %u", Lit.X);
    std::fprintf(L, "\n");
  }
  if (Unsat)
    return false;
  assert(TrailLims.empty() && "addClause only at decision level 0");
  // Simplify: drop duplicates and false literals, detect tautology.
  std::sort(Lits.begin(), Lits.end());
  std::vector<SatLit> Out;
  for (size_t I = 0; I < Lits.size(); ++I) {
    SatLit L = Lits[I];
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // Tautology.
    if (!Out.empty() && Out.back() == L)
      continue;
    if (value(L) == LBool::True)
      return true; // Satisfied at level 0.
    if (value(L) == LBool::False)
      continue; // Falsified at level 0: drop.
    Out.push_back(L);
  }
  if (Out.empty()) {
    Unsat = true;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsat = true;
      return false;
    }
    return true;
  }
  if (Gauge)
    Gauge->charge(sizeof(Clause) + Out.size() * sizeof(SatLit));
  ClauseIdx Idx = static_cast<ClauseIdx>(Clauses.size());
  Clauses.push_back(Clause{std::move(Out), false, 0});
  attachClause(Idx);
  return true;
}

void SatSolver::enqueue(SatLit L, ClauseIdx Reason) {
  assert(value(L) == LBool::Undef);
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  Levels[L.var()] = currentLevel();
  Reasons[L.var()] = Reason;
  Trail.push_back(L);
}

SatSolver::ClauseIdx SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    SatLit P = Trail[PropHead++];
    ++Propagations;
    std::vector<Watcher> &Ws = Watches[P.X];
    size_t Kept = 0;
    for (size_t I = 0; I < Ws.size(); ++I) {
      Watcher W = Ws[I];
      if (value(W.Blocker) == LBool::True) {
        Ws[Kept++] = W;
        continue;
      }
      Clause &C = Clauses[W.C];
      // Ensure the falsified literal (~P) is at position 1.
      SatLit NotP = ~P;
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP);
      if (value(C.Lits[0]) == LBool::True) {
        Ws[Kept++] = Watcher{W.C, C.Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).X].push_back(Watcher{W.C, C.Lits[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Ws[Kept++] = W;
      if (value(C.Lits[0]) == LBool::False) {
        // Conflict: keep remaining watchers and report.
        for (size_t K = I + 1; K < Ws.size(); ++K)
          Ws[Kept++] = Ws[K];
        Ws.resize(Kept);
        PropHead = Trail.size();
        return W.C;
      }
      enqueue(C.Lits[0], W.C);
    }
    Ws.resize(Kept);
  }
  return NoReason;
}

//===----------------------------------------------------------------------===
// Conflict analysis
//===----------------------------------------------------------------------===

void SatSolver::analyze(ClauseIdx Confl, std::vector<SatLit> &Learned,
                        int &BtLevel) {
  Learned.clear();
  Learned.push_back(SatLit()); // Placeholder for the asserting literal.
  int Counter = 0;
  SatLit P;
  size_t TrailIdx = Trail.size();
  std::vector<char> &Seen = SeenBuf;

  ClauseIdx Reason = Confl;
  do {
    assert(Reason != NoReason && "reached decision without UIP");
    Clause &C = Clauses[Reason];
    if (C.Learned)
      bumpClause(C);
    // Skip lits[0] on subsequent rounds: it is the literal we resolved on.
    for (size_t I = P.isValid() ? 1 : 0; I < C.Lits.size(); ++I) {
      SatLit Q = C.Lits[I];
      uint32_t V = Q.var();
      if (Seen[V] || level(V) == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (level(V) == currentLevel())
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Find the next seen literal on the trail.
    while (!Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    Seen[P.var()] = 0;
    Reason = Reasons[P.var()];
    --Counter;
  } while (Counter > 0);
  Learned[0] = ~P;

  // Minimization: drop literals implied by others (simple self-subsumption:
  // a literal whose reason clause's literals are all seen). Keep the
  // pre-minimization set: every Seen flag must be cleared afterwards,
  // including those of literals the minimization drops.
  std::vector<SatLit> AllCandidates(Learned.begin() + 1, Learned.end());
  size_t Kept = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    uint32_t V = Learned[I].var();
    ClauseIdx R = Reasons[V];
    bool Redundant = false;
    if (R != NoReason) {
      Redundant = true;
      for (size_t K = 1; K < Clauses[R].Lits.size(); ++K) {
        uint32_t W = Clauses[R].Lits[K].var();
        if (!Seen[W] && level(W) != 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      Learned[Kept++] = Learned[I];
  }
  Learned.resize(Kept);

  // Backjump level: maximum level among the non-asserting literals.
  BtLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    if (level(Learned[I].var()) > BtLevel) {
      BtLevel = level(Learned[I].var());
      MaxIdx = I;
    }
  }
  if (Learned.size() > 1)
    std::swap(Learned[1], Learned[MaxIdx]);
  Seen[Learned[0].var()] = 0;
  for (SatLit L : AllCandidates)
    Seen[L.var()] = 0;
}

void SatSolver::analyzeFinal(SatLit P, std::vector<SatLit> &Core) {
  // P (= ~A for a failed assumption A) is implied by the formula plus
  // earlier assumptions; walk its implication graph back to assumptions.
  // The core is reported in terms of the assumption literals as passed.
  Core.clear();
  Core.push_back(~P);
  if (currentLevel() == 0)
    return;
  std::vector<char> &Seen = SeenBuf;
  Seen[P.var()] = 1;
  for (size_t I = Trail.size(); I-- > TrailLims[0];) {
    uint32_t V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (Reasons[V] == NoReason) {
      // A decision in the assumption prefix is itself an assumption.
      if (Trail[I].var() != P.var())
        Core.push_back(Trail[I]);
    } else {
      const Clause &C = Clauses[Reasons[V]];
      for (size_t K = 1; K < C.Lits.size(); ++K)
        if (level(C.Lits[K].var()) > 0)
          Seen[C.Lits[K].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[P.var()] = 0;
}

void SatSolver::backtrack(int TargetLevel) {
  if (currentLevel() <= TargetLevel)
    return;
  size_t Bound = TrailLims[TargetLevel];
  for (size_t I = Trail.size(); I-- > Bound;) {
    uint32_t V = Trail[I].var();
    Phase[V] = Assigns[V];
    Assigns[V] = LBool::Undef;
    Reasons[V] = NoReason;
    heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLims.resize(TargetLevel);
  PropHead = Trail.size();
}

SatLit SatSolver::pickBranchLit() {
  while (!Heap.empty()) {
    uint32_t V = Heap[0];
    if (Assigns[V] == LBool::Undef) {
      heapPop();
      return SatLit(V, Phase[V] != LBool::True);
    }
    heapPop();
  }
  return SatLit();
}

void SatSolver::reduceLearned() {
  // Keep it simple: learned clauses are retained. Instances in mucyc are
  // small; clause-database reduction is unnecessary complexity here.
}

//===----------------------------------------------------------------------===
// Main solve loop
//===----------------------------------------------------------------------===

SatSolver::Result SatSolver::solve(const std::vector<SatLit> &Assumptions) {
  Result R = solveImpl(Assumptions);
  if (FILE *L = satLog()) {
    std::fprintf(L, "%d s %d\n", LogId, static_cast<int>(R));
    std::fflush(L);
  }
  return R;
}

SatSolver::Result SatSolver::solveImpl(const std::vector<SatLit> &Assumptions) {
  ConflictCore.clear();
  if (Unsat)
    return Result::Unsat;
  backtrack(0);
  if (propagate() != NoReason) {
    Unsat = true;
    return Result::Unsat;
  }

  uint64_t ConflictBudget = 100;
  std::vector<SatLit> Learned;

  while (true) {
    // Cancellation point: once per propagation round, so a cancelled solve
    // stops after the current unit-propagation fixpoint at the latest.
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
      backtrack(0);
      return Result::Interrupted;
    }
    ClauseIdx Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      if (currentLevel() == 0) {
        Unsat = true;
        return Result::Unsat;
      }
      // Conflict within the assumption prefix: derive a core.
      if (currentLevel() <= static_cast<int>(Assumptions.size())) {
        // The conflict clause is falsified; collect assumptions behind it.
        std::vector<char> &Seen = SeenBuf;
        ConflictCore.clear();
        std::vector<uint32_t> Stack;
        for (SatLit L : Clauses[Confl].Lits)
          if (level(L.var()) > 0 && !Seen[L.var()]) {
            Seen[L.var()] = 1;
            Stack.push_back(L.var());
          }
        std::vector<uint32_t> Touched = Stack;
        for (size_t I = Trail.size(); I-- > TrailLims[0];) {
          uint32_t V = Trail[I].var();
          if (!Seen[V])
            continue;
          if (Reasons[V] == NoReason) {
            ConflictCore.push_back(Trail[I]);
          } else {
            for (size_t K = 1; K < Clauses[Reasons[V]].Lits.size(); ++K) {
              uint32_t W = Clauses[Reasons[V]].Lits[K].var();
              if (level(W) > 0 && !Seen[W]) {
                Seen[W] = 1;
                Touched.push_back(W);
              }
            }
          }
        }
        for (uint32_t V : Touched)
          Seen[V] = 0;
        backtrack(0);
        return Result::Unsat;
      }
      int BtLevel = 0;
      analyze(Confl, Learned, BtLevel);
      if (std::getenv("MUCYC_VERIFY_LEARNED"))
        verifyLearned(Learned);
      // Never backjump into the assumption prefix with a learned clause
      // whose asserting literal would conflict there; clamp and re-decide.
      backtrack(std::max(BtLevel, 0));
      if (Learned.size() == 1) {
        backtrack(0);
        enqueue(Learned[0], NoReason);
      } else {
        if (Gauge)
          Gauge->charge(sizeof(Clause) + Learned.size() * sizeof(SatLit));
        ClauseIdx Idx = static_cast<ClauseIdx>(Clauses.size());
        Clauses.push_back(Clause{Learned, true, 0});
        attachClause(Idx);
        bumpClause(Clauses[Idx]);
        enqueue(Learned[0], Idx);
      }
      decayActivities();
      if (Conflicts % ConflictBudget == 0) {
        // Geometric restart (keeps assumptions: they are re-decided below).
        ConflictBudget = ConflictBudget * 3 / 2;
        backtrack(0);
      }
      continue;
    }

    // Re-establish assumptions as pseudo-decisions.
    if (currentLevel() < static_cast<int>(Assumptions.size())) {
      SatLit A = Assumptions[currentLevel()];
      if (value(A) == LBool::True) {
        // Already implied: open an empty decision level to keep the
        // level<->assumption-index correspondence.
        TrailLims.push_back(Trail.size());
        continue;
      }
      if (value(A) == LBool::False) {
        analyzeFinal(~A, ConflictCore);
        backtrack(0);
        return Result::Unsat;
      }
      TrailLims.push_back(Trail.size());
      enqueue(A, NoReason);
      continue;
    }

    SatLit Next = pickBranchLit();
    if (!Next.isValid()) {
      // All variables assigned: model found.
      Model = Assigns;
      backtrack(0);
      return Result::Sat;
    }
    ++Decisions;
    TrailLims.push_back(Trail.size());
    enqueue(Next, NoReason);
  }
}

void SatSolver::replayInto(SatSolver &Other) const {
  while (Other.numVars() < numVars())
    Other.newVar();
  // Root-level units are facts (they may have come from clauses that were
  // simplified away at add time).
  for (size_t I = 0; I < Trail.size() && (TrailLims.empty() ||
                                          I < TrailLims[0]);
       ++I)
    Other.addClause({Trail[I]});
  for (const Clause &C : Clauses)
    if (!C.Learned)
      Other.addClause(C.Lits);
}

std::vector<std::vector<SatLit>> SatSolver::originalClauses() const {
  std::vector<std::vector<SatLit>> Out;
  for (size_t I = 0;
       I < Trail.size() && (TrailLims.empty() || I < TrailLims[0]); ++I)
    Out.push_back({Trail[I]});
  for (const Clause &C : Clauses)
    if (!C.Learned)
      Out.push_back(C.Lits);
  return Out;
}

void SatSolver::verifyLearned(const std::vector<SatLit> &Learned) {
  static bool InVerify = false;
  if (InVerify)
    return;
  InVerify = true;
  SatSolver F;
  while (F.numVars() < numVars())
    F.newVar();
  bool Dead = false;
  for (const auto &C : DebugInputs)
    if (!F.addClause(C)) {
      Dead = true;
      break;
    }
  if (!Dead)
    for (SatLit L : Learned)
      if (!F.addClause({~L})) {
        Dead = true;
        break;
      }
  if (!Dead && F.solve() == Result::Sat) {
    std::fprintf(stderr, "[sat] BOGUS learned clause:");
    for (SatLit L : Learned)
      std::fprintf(stderr, " %s%u", L.negated() ? "-" : "", L.var());
    std::fprintf(stderr, "\n[sat] trail/levels at conflict:");
    for (SatLit L : Trail)
      std::fprintf(stderr, " %s%u@%d%s", L.negated() ? "-" : "", L.var(),
                   level(L.var()),
                   Reasons[L.var()] == NoReason ? "*" : "");
    std::fprintf(stderr, "\n");
    std::abort();
  }
  InVerify = false;
}
