//===- smt/SmtSolver.h - Lazy DPLL(T) solver --------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT entry point for QF Bool + linear Int/Real arithmetic: a lazy
/// DPLL(T) loop combining the CDCL SAT core with the simplex-based theory
/// checker. Supports incremental assertion, assumption-based checking with
/// unsat cores, and model extraction — the full contract the paper's
/// procedures need ("exists M. M |= phi", Mbp's model argument, Itp's cores).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_SMTSOLVER_H
#define MUCYC_SMT_SMTSOLVER_H

#include "smt/Cnf.h"
#include "smt/Model.h"
#include "smt/SatSolver.h"
#include "smt/TheoryLia.h"

#include <atomic>
#include <optional>

namespace mucyc {

enum class SmtStatus { Sat, Unsat, Unknown };

/// Incremental SMT solver. Assert formulas, then check (optionally under
/// assumptions); repeat. Divisibility atoms are eliminated on assertion by
/// introducing quotient/remainder witnesses.
class SmtSolver {
public:
  explicit SmtSolver(TermContext &Ctx)
      : Ctx(Ctx), Enc(Ctx, Sat), Checker(Ctx) {}

  /// Conjoins \p F to the assertion set.
  void assertFormula(TermRef F);

  /// Checks satisfiability of the assertions plus \p Assumptions (each a
  /// Boolean term).
  SmtStatus check(const std::vector<TermRef> &Assumptions = {});

  /// After Sat: the model.
  const Model &model() const { return LastModel; }

  /// After Unsat under assumptions: a subset of the assumptions that is
  /// jointly inconsistent with the assertions.
  const std::vector<TermRef> &unsatCore() const { return Core; }

  /// Debugging access to the propositional core (used by self-check
  /// harnesses and tests).
  SatSolver &satCore() { return Sat; }

  /// Caps the number of theory-lemma iterations (branch-and-bound splits and
  /// blocking clauses) before returning Unknown.
  void setLemmaBudget(uint64_t B) { LemmaBudget = B; }

  /// Cooperative cancellation: when \p Flag is non-null, the DPLL(T) lemma
  /// loop, the CDCL core, and the simplex/branch-and-bound theory layer all
  /// poll it and return Unknown once it is set. The pointee must outlive
  /// every subsequent check().
  void setCancelFlag(const std::atomic<bool> *Flag);

  //===--------------------------------------------------------------------===
  // One-shot conveniences
  //===--------------------------------------------------------------------===

  /// Satisfiability of a conjunction; returns the model if Sat, nullopt if
  /// Unsat. Asserts on Unknown (callers control budgets via instances).
  static std::optional<Model> quickCheck(TermContext &Ctx,
                                         const std::vector<TermRef> &Conj);

  /// Is `A => B` valid?
  static bool implies(TermContext &Ctx, TermRef A, TermRef B);

  /// Is \p F equivalent to \p G?
  static bool equivalent(TermContext &Ctx, TermRef F, TermRef G);

private:
  /// Replaces divisibility atoms by remainder-variable equalities, asserting
  /// the defining side constraints.
  TermRef eliminateDivides(TermRef F);

  TermContext &Ctx;
  SatSolver Sat;
  Tseitin Enc;
  ArithChecker Checker;
  Model LastModel;
  std::vector<TermRef> Core;
  uint64_t LemmaBudget = 2000000;
  const std::atomic<bool> *CancelFlag = nullptr;
  std::unordered_map<uint32_t, TermRef> DividesRewrite; // Atom -> (r = 0).
  bool TriviallyUnsat = false;
};

} // namespace mucyc

#endif // MUCYC_SMT_SMTSOLVER_H
