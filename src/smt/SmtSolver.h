//===- smt/SmtSolver.h - Lazy DPLL(T) solver --------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT entry point for QF Bool + linear Int/Real arithmetic: a lazy
/// DPLL(T) loop combining the CDCL SAT core with the simplex-based theory
/// checker. Supports incremental assertion, assumption-based checking with
/// unsat cores, and model extraction — the full contract the paper's
/// procedures need ("exists M. M |= phi", Mbp's model argument, Itp's cores).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SMT_SMTSOLVER_H
#define MUCYC_SMT_SMTSOLVER_H

#include "smt/Cnf.h"
#include "smt/Model.h"
#include "smt/SatSolver.h"
#include "smt/TheoryLia.h"

#include <atomic>
#include <optional>

namespace mucyc {

enum class SmtStatus { Sat, Unsat, Unknown };

/// Incremental SMT solver. Assert formulas, then check (optionally under
/// assumptions); repeat. Divisibility atoms are eliminated on assertion by
/// introducing quotient/remainder witnesses.
///
/// Scopes: push() opens a retractable assertion scope, pop() discards the
/// innermost one. Scopes are implemented with activation literals over the
/// assumption mechanism: a formula asserted inside scope k becomes the
/// clause (F \/ not a_k) and every check() assumes the activation literals
/// of all open scopes, so CDCL lemmas derived from scoped clauses carry
/// (not a_k) and stay sound forever. pop() fixes a_k to false at the root,
/// which deactivates the scope's clauses and vacuously satisfies every
/// learned clause that mentions the popped literal; lemmas that never
/// mention it are retained verbatim. Theory state needs no retraction: the
/// arithmetic checker rebuilds its simplex tableau from the propositional
/// model on every check, so popped rows simply never reappear. A check()
/// interrupted by the cancel flag (or budget) returns Unknown with the CDCL
/// core backtracked to the root and no scope bookkeeping touched, so the
/// scope stack stays usable afterwards.
class SmtSolver {
public:
  explicit SmtSolver(TermContext &Ctx)
      : Ctx(Ctx), Enc(Ctx, Sat), Checker(Ctx) {
    // One gauge per solving attempt: whatever is installed on the term
    // context also meters this solver's CDCL clause database and simplex
    // tableaus. Pool-created and throwaway solvers alike pick it up here.
    if (ResourceGauge *G = Ctx.resourceGauge()) {
      Sat.setResourceGauge(G);
      Checker.setResourceGauge(G);
    }
  }

  /// Conjoins \p F to the assertion set (of the innermost open scope).
  void assertFormula(TermRef F);

  /// Opens a new assertion scope.
  void push();

  /// Discards the innermost scope and every formula asserted within it.
  void pop();

  /// Number of open scopes.
  size_t numScopes() const { return Scopes.size(); }

  /// Checks satisfiability of the assertions plus \p Assumptions (each a
  /// Boolean term).
  SmtStatus check(const std::vector<TermRef> &Assumptions = {});

  /// After Sat: the model.
  const Model &model() const { return LastModel; }

  /// After Unsat under assumptions: a subset of the assumptions that is
  /// jointly inconsistent with the assertions.
  const std::vector<TermRef> &unsatCore() const { return Core; }

  /// Deletion-based core minimization (MUS-style) over check()/unsatCore():
  /// checks \p Assumptions against the current assertions and, when the
  /// combination is Unsat, shrinks the returned core by re-checking with
  /// one element deleted at a time until no single deletion keeps it Unsat.
  /// Each surviving probe's unsatCore() reseeds the candidate set, so
  /// redundant elements drop in batches. Returns the minimized subset (in
  /// the original assumption order). Returns \p Assumptions unchanged when
  /// the initial check is Sat or Unknown, and a probe that returns Unknown
  /// (budget/cancel) keeps its element — the result is always a set known
  /// jointly Unsat with the assertions whenever the initial check was
  /// Unsat. \p Probes (optional) reports how many check() calls were spent.
  std::vector<TermRef> minimizeCore(const std::vector<TermRef> &Assumptions,
                                    unsigned *Probes = nullptr);

  /// Debugging access to the propositional core (used by self-check
  /// harnesses and tests).
  SatSolver &satCore() { return Sat; }

  /// Number of theory atoms registered with the Tseitin encoder. Scoped
  /// assertions keep their atoms after pop() (only their clauses are
  /// deactivated), so this grows monotonically — the solver pool uses it
  /// to retire solvers whose encoding has accreted too much dead weight.
  size_t numAtoms() const { return Enc.atoms().size(); }

  /// Caps the number of theory-lemma iterations (branch-and-bound splits and
  /// blocking clauses) before returning Unknown.
  void setLemmaBudget(uint64_t B) { LemmaBudget = B; }

  /// Cooperative cancellation: when \p Flag is non-null, the DPLL(T) lemma
  /// loop, the CDCL core, and the simplex/branch-and-bound theory layer all
  /// poll it and return Unknown once it is set. The pointee must outlive
  /// every subsequent check().
  void setCancelFlag(const std::atomic<bool> *Flag);

  //===--------------------------------------------------------------------===
  // One-shot conveniences
  //===--------------------------------------------------------------------===

  /// Satisfiability of a conjunction; returns the model if Sat, nullopt if
  /// Unsat. Asserts on Unknown (callers control budgets via instances).
  static std::optional<Model> quickCheck(TermContext &Ctx,
                                         const std::vector<TermRef> &Conj);

  /// Is `A => B` valid?
  static bool implies(TermContext &Ctx, TermRef A, TermRef B);

  /// Is \p F equivalent to \p G?
  static bool equivalent(TermContext &Ctx, TermRef F, TermRef G);

private:
  /// Replaces divisibility atoms by remainder-variable equalities, asserting
  /// the defining side constraints. Recursive over the formula tree;
  /// \p Depth guards against stack exhaustion on degenerate inputs
  /// (ResourceExhaustedDepth past the cap).
  TermRef eliminateDivides(TermRef F, unsigned Depth = 0);

  /// Asserts \p F unguarded, surviving every pop(). The divides
  /// side-constraints go through here: their rewrite cache outlives scopes,
  /// and since the quotient/remainder definitions are a conservative
  /// extension (witnesses exist for every t), keeping them asserted
  /// permanently never changes satisfiability.
  void assertPermanent(TermRef F);

  /// One open scope: the activation variable assumed true while the scope
  /// is alive and fixed false at the root once it is popped.
  struct Scope {
    uint32_t ActVar;
  };

  TermContext &Ctx;
  SatSolver Sat;
  Tseitin Enc;
  ArithChecker Checker;
  Model LastModel;
  std::vector<TermRef> Core;
  std::vector<Scope> Scopes;
  uint64_t LemmaBudget = 2000000;
  const std::atomic<bool> *CancelFlag = nullptr;
  std::unordered_map<uint32_t, TermRef> DividesRewrite; // Atom -> (r = 0).
  bool TriviallyUnsat = false;
};

} // namespace mucyc

#endif // MUCYC_SMT_SMTSOLVER_H
