//===- smt/Cnf.cpp - Tseitin CNF encoding ---------------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Cnf.h"

#include "support/Error.h"

using namespace mucyc;

SatLit Tseitin::trueLit() {
  if (!True.isValid()) {
    True = SatLit(Sat.newVar(), false);
    Sat.addClause({True});
  }
  return True;
}

SatLit Tseitin::encodeAtom(TermRef A) {
  SatLit L(Sat.newVar(), false);
  AtomBySatVar.emplace(L.var(), A);
  Atoms.emplace_back(A, L.var());
  const TermNode &N = Ctx.node(A);
  if (N.K == Kind::EqA) {
    // Split clause so negated equalities need no theory support:
    // (lhs = rhs) \/ (lhs < rhs) \/ (rhs < lhs).
    TermRef Lt = Ctx.mkLt(N.Kids[0], N.Kids[1]);
    TermRef Gt = Ctx.mkLt(N.Kids[1], N.Kids[0]);
    // Cache first: the recursive encode calls below must not re-enter A.
    Cache.emplace(A.Idx, L);
    Sat.addClause({L, encode(Lt), encode(Gt)});
  }
  return L;
}

SatLit Tseitin::encode(TermRef F, unsigned Depth) {
  auto It = Cache.find(F.Idx);
  if (It != Cache.end())
    return It->second;
  // The cache bounds re-entry per node, but a right-leaning Not/And chain
  // still recurses once per level; guard the stack before it gives out.
  if (Depth > 8192)
    raiseError(ErrorCode::ResourceExhaustedDepth,
               "formula nesting exceeds Tseitin encoding depth guard");
  const TermNode &N = Ctx.node(F);
  SatLit L;
  switch (N.K) {
  case Kind::True:
    L = trueLit();
    break;
  case Kind::False:
    L = ~trueLit();
    break;
  case Kind::Not:
    L = ~encode(N.Kids[0], Depth + 1);
    break;
  case Kind::Var:
    MUCYC_INVARIANT(N.S == Sort::Bool, "non-boolean in formula position");
    L = encodeAtom(F);
    break;
  case Kind::Le:
  case Kind::Lt:
  case Kind::EqA:
    L = encodeAtom(F);
    break;
  case Kind::Divides:
    raiseError(ErrorCode::InvariantViolation,
               "divisibility atom reached the encoder (eliminateDivides "
               "must run first)");
    break;
  case Kind::And: {
    std::vector<SatLit> KidLits;
    KidLits.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      KidLits.push_back(encode(Kid, Depth + 1));
    L = SatLit(Sat.newVar(), false);
    std::vector<SatLit> Long{L};
    for (SatLit K : KidLits) {
      Sat.addClause({~L, K});
      Long.push_back(~K);
    }
    Sat.addClause(std::move(Long));
    break;
  }
  case Kind::Or: {
    std::vector<SatLit> KidLits;
    KidLits.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      KidLits.push_back(encode(Kid, Depth + 1));
    L = SatLit(Sat.newVar(), false);
    std::vector<SatLit> Long{~L};
    for (SatLit K : KidLits) {
      Sat.addClause({L, ~K});
      Long.push_back(K);
    }
    Sat.addClause(std::move(Long));
    break;
  }
  default:
    raiseError(ErrorCode::InvariantViolation,
               "arithmetic term in formula position");
    break;
  }
  Cache.emplace(F.Idx, L);
  return L;
}
