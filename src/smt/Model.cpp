//===- smt/Model.cpp - First-order models ---------------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Model.h"

#include <algorithm>
#include <sstream>

using namespace mucyc;

Value Model::value(const TermContext &Ctx, VarId V) const {
  auto It = Assign.find(V);
  if (It != Assign.end())
    return It->second;
  Sort S = Ctx.varInfo(V).S;
  if (S == Sort::Bool)
    return Value::boolean(false);
  return Value::number(Rational(0), S);
}

Value Model::eval(const TermContext &Ctx, TermRef T) const {
  // Complete the assignment over the free variables of T with defaults.
  Assignment Full = Assign;
  for (VarId V : const_cast<TermContext &>(Ctx).freeVars(T))
    if (!Full.count(V))
      Full.emplace(V, value(Ctx, V));
  return evalTerm(Ctx, T, Full);
}

bool Model::holds(const TermContext &Ctx, TermRef T) const {
  Value V = eval(Ctx, T);
  assert(V.S == Sort::Bool);
  return V.B;
}

std::string Model::toString(const TermContext &Ctx) const {
  // Render in ascending VarId order: hash-map iteration order is not a
  // stable function of the assignment, and this string ends up in
  // diagnostics that must be byte-identical across runs (the fuzzer's
  // determinism contract).
  std::vector<VarId> Vars;
  Vars.reserve(Assign.size());
  for (const auto &[V, Val] : Assign)
    Vars.push_back(V);
  std::sort(Vars.begin(), Vars.end());
  std::ostringstream OS;
  OS << "{";
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Ctx.varInfo(Vars[I]).Name << " = "
       << Assign.at(Vars[I]).toString();
  }
  OS << "}";
  return OS.str();
}
