//===- smt/Simplex.cpp - General simplex for linear arithmetic ------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <cassert>

using namespace mucyc;

Simplex::VarIdx Simplex::addVar() {
  if (Gauge)
    Gauge->charge(sizeof(VarState));
  Vars.push_back(VarState{});
  return static_cast<VarIdx>(Vars.size() - 1);
}

Simplex::VarIdx Simplex::addRowVar(const std::map<VarIdx, Rational> &Row) {
  VarIdx S = addVar();
  struct Row NewRow;
  NewRow.Owner = S;
  DeltaRational Val;
  for (const auto &[V, C] : Row) {
    assert(V < S && "row references unknown variable");
    if (Vars[V].Basic) {
      // Inline the defining row of a basic variable.
      const struct Row &Def = Rows[Vars[V].RowIdx];
      for (const auto &[W, D] : Def.Coeffs)
        NewRow.add(W, C * D);
    } else {
      NewRow.add(V, C);
    }
  }
  for (const auto &[V, C] : NewRow.Coeffs)
    Val = Val + Vars[V].Val * C;
  if (Gauge)
    Gauge->charge(sizeof(struct Row) +
                  NewRow.Coeffs.size() *
                      (sizeof(VarIdx) + sizeof(Rational) + 32));
  Vars[S].Val = Val;
  Vars[S].Basic = true;
  Vars[S].RowIdx = static_cast<uint32_t>(Rows.size());
  Rows.push_back(std::move(NewRow));
  return S;
}

bool Simplex::assertBound(VarIdx V, bool IsLower, const DeltaRational &B,
                          int Reason) {
  VarState &X = Vars[V];
  if (IsLower) {
    if (X.HasLb && B <= X.Lb)
      return true; // Weaker than the existing bound.
    if (X.HasUb && B > X.Ub) {
      Explanation = {Reason, X.UbReason};
      return false;
    }
    X.Lb = B;
    X.HasLb = true;
    X.LbReason = Reason;
    if (!X.Basic && X.Val < B)
      updateNonBasic(V, B);
  } else {
    if (X.HasUb && B >= X.Ub)
      return true;
    if (X.HasLb && B < X.Lb) {
      Explanation = {Reason, X.LbReason};
      return false;
    }
    X.Ub = B;
    X.HasUb = true;
    X.UbReason = Reason;
    if (!X.Basic && X.Val > B)
      updateNonBasic(V, B);
  }
  return true;
}

void Simplex::updateNonBasic(VarIdx V, const DeltaRational &NewVal) {
  assert(!Vars[V].Basic);
  DeltaRational Diff = NewVal - Vars[V].Val;
  Vars[V].Val = NewVal;
  for (Row &R : Rows) {
    if (const Rational *C = R.find(V))
      Vars[R.Owner].Val = Vars[R.Owner].Val + Diff * *C;
  }
}

void Simplex::pivot(VarIdx B, VarIdx N) {
  VarState &XB = Vars[B];
  VarState &XN = Vars[N];
  assert(XB.Basic && !XN.Basic);
  Row &R = Rows[XB.RowIdx];
  const Rational *AP = R.find(N);
  assert(AP && !AP->isZero());
  Rational A = *AP;

  // Rewrite R as: N = (1/A)*B - sum_{j != N} (Cj/A)*xj.
  std::vector<std::pair<VarIdx, Rational>> NewCoeffs;
  NewCoeffs.reserve(R.Coeffs.size());
  Rational InvA = A.inverse();
  NewCoeffs.emplace_back(B, InvA);
  for (const auto &[V, C] : R.Coeffs) {
    if (V == N)
      continue;
    NewCoeffs.emplace_back(V, -(C * InvA));
  }
  std::sort(NewCoeffs.begin(), NewCoeffs.end(),
            [](const auto &X, const auto &Y) { return X.first < Y.first; });
  R.Owner = N;
  R.Coeffs = std::move(NewCoeffs);
  XN.Basic = true;
  XN.RowIdx = XB.RowIdx;
  XB.Basic = false;

  // Substitute N's new definition into every other row that mentions N.
  for (uint32_t RI = 0; RI < Rows.size(); ++RI) {
    if (RI == XN.RowIdx)
      continue;
    Row &Other = Rows[RI];
    auto It = Other.entry(N);
    if (It == Other.Coeffs.end())
      continue;
    Rational D = std::move(It->second);
    Other.Coeffs.erase(It);
    for (const auto &[V, C] : R.Coeffs)
      Other.add(V, D * C);
  }
}

void Simplex::explainRowConflict(const Row &R, bool NeedIncrease,
                                 int OwnBoundReason) {
  // The basic variable needs to move but every non-basic variable in its row
  // is stuck at the blocking bound.
  Explanation.clear();
  Explanation.push_back(OwnBoundReason);
  for (const auto &[V, C] : R.Coeffs) {
    bool BlockedAtUpper = NeedIncrease ? C.sgn() > 0 : C.sgn() < 0;
    Explanation.push_back(BlockedAtUpper ? Vars[V].UbReason
                                         : Vars[V].LbReason);
  }
}

bool Simplex::check() {
  while (true) {
    // Cancellation point: once per pivot round.
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
      Interrupted = true;
      Explanation.clear();
      return false;
    }
    // Bland's rule: pick the lowest-index out-of-bounds basic variable.
    VarIdx B = UINT32_MAX;
    bool NeedIncrease = false;
    for (VarIdx V = 0; V < Vars.size(); ++V) {
      const VarState &X = Vars[V];
      if (!X.Basic)
        continue;
      if (X.HasLb && X.Val < X.Lb) {
        B = V;
        NeedIncrease = true;
        break;
      }
      if (X.HasUb && X.Val > X.Ub) {
        B = V;
        NeedIncrease = false;
        break;
      }
    }
    if (B == UINT32_MAX)
      return true;

    const VarState &XB = Vars[B];
    const Row &R = Rows[XB.RowIdx];
    DeltaRational Target = NeedIncrease ? XB.Lb : XB.Ub;

    // Find the lowest-index non-basic variable that can absorb the change.
    VarIdx N = UINT32_MAX;
    for (const auto &[V, C] : R.Coeffs) {
      const VarState &XN = Vars[V];
      bool CanMove;
      if (NeedIncrease)
        CanMove = C.sgn() > 0 ? (!XN.HasUb || XN.Val < XN.Ub)
                              : (!XN.HasLb || XN.Val > XN.Lb);
      else
        CanMove = C.sgn() > 0 ? (!XN.HasLb || XN.Val > XN.Lb)
                              : (!XN.HasUb || XN.Val < XN.Ub);
      if (CanMove) {
        N = V;
        break;
      }
    }
    if (N == UINT32_MAX) {
      explainRowConflict(R, NeedIncrease,
                         NeedIncrease ? XB.LbReason : XB.UbReason);
      return false;
    }

    // pivotAndUpdate(B, N, Target).
    Rational A = *R.find(N);
    DeltaRational Theta = (Target - XB.Val) * A.inverse();
    Vars[B].Val = Target;
    Vars[N].Val = Vars[N].Val + Theta;
    for (const Row &Other : Rows) {
      if (Other.Owner == B)
        continue;
      if (const Rational *C = Other.find(N))
        Vars[Other.Owner].Val = Vars[Other.Owner].Val + Theta * *C;
    }
    pivot(B, N);
  }
}

Rational Simplex::suitableEpsilon() const {
  // Choose eps with: for every bound comparison that holds in delta order
  // with a real-part slack, the materialized comparison also holds.
  Rational Eps(1);
  auto Consider = [&Eps](const DeltaRational &Small, const DeltaRational &Big) {
    // Small <= Big in delta order. If real parts differ and the delta parts
    // point the wrong way, cap eps.
    Rational RealGap = Big.real() - Small.real();
    Rational DeltaGap = Small.delta() - Big.delta();
    if (RealGap.sgn() > 0 && DeltaGap.sgn() > 0) {
      Rational Cap = RealGap / DeltaGap;
      if (Cap < Eps)
        Eps = Cap;
    }
  };
  for (const VarState &X : Vars) {
    if (X.HasLb)
      Consider(X.Lb, X.Val);
    if (X.HasUb)
      Consider(X.Val, X.Ub);
  }
  // Halve to keep strict comparisons strict after materialization.
  return Eps * Rational(1, 2);
}
