//===- itp/Interpolate.h - Craig interpolation ------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpolation Itp(A, B) in the paper's sense (Section 2.1): given
/// |= A => B, produce theta with |= A => theta, |= theta => B, and the free
/// variables of theta contained in those of B. (The paper additionally
/// requires containment in vars(A); the refinement procedures only ever call
/// Itp with vars(B) a subset of the shared tuple, so the B-side containment
/// is the binding one. We check the A-side containment where it matters —
/// never, in practice — via the Strict flag in tests.)
///
/// mucyc has no proof-producing SMT core, so interpolants come from two
/// sources that together cover every call site:
///
///  * CubeGeneralize (default): decompose B into conjuncts. A conjunct that
///    is the negation of a cube — which is exactly what the refinement
///    queries look like, since queries are MBP outputs — is generalized by
///    unsat-core-guided literal dropping: find a minimal subcube c of the
///    blocked cube with A /\ c unsatisfiable and emit not(c). This is the
///    classical PDR lemma generalization. Other conjuncts pass through
///    unchanged (sound because A => B).
///  * QeStrongest: the strongest interpolant, QE(exists (vars(A)\vars(B)). A).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_ITP_INTERPOLATE_H
#define MUCYC_ITP_INTERPOLATE_H

#include "term/Term.h"

namespace mucyc {

enum class ItpMode {
  CubeGeneralize, ///< PDR-style lemma generalization (default).
  QeStrongest,    ///< Strongest interpolant via quantifier elimination.
  WeakestB,       ///< Returns B itself (weakest valid interpolant).
};

/// Computes an interpolant of A and B. Requires |= A => B (checked in debug
/// builds).
TermRef interpolate(TermContext &Ctx, TermRef A, TermRef B,
                    ItpMode Mode = ItpMode::CubeGeneralize);

/// Generalizes a blocked cube: given |= A => not(/\ Lits), returns a subset
/// S of Lits with |= A => not(/\ S), as small as greedy core-shrinking gets.
std::vector<TermRef> generalizeBlockedCube(TermContext &Ctx, TermRef A,
                                           const std::vector<TermRef> &Lits);

} // namespace mucyc

#endif // MUCYC_ITP_INTERPOLATE_H
