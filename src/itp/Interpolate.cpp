//===- itp/Interpolate.cpp - Craig interpolation --------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "itp/Interpolate.h"

#include "mbp/Qe.h"
#include "smt/SmtSolver.h"
#include "support/Error.h"

#include <algorithm>

using namespace mucyc;

std::vector<TermRef>
mucyc::generalizeBlockedCube(TermContext &Ctx, TermRef A,
                             const std::vector<TermRef> &Lits) {
  SmtSolver S(Ctx);
  S.assertFormula(A);
  SmtStatus St = S.check(Lits);
  if (St == SmtStatus::Unknown)
    raiseError(ErrorCode::ResourceExhaustedSteps,
               "lemma budget exhausted while checking a blocked cube");
  MUCYC_INVARIANT(St == SmtStatus::Unsat, "cube is not blocked by A");
  // Start from the solver's core, then greedily try to drop literals.
  std::vector<TermRef> Core = S.unsatCore();
  for (size_t I = 0; I < Core.size();) {
    std::vector<TermRef> Trial;
    Trial.reserve(Core.size() - 1);
    for (size_t J = 0; J < Core.size(); ++J)
      if (J != I)
        Trial.push_back(Core[J]);
    if (S.check(Trial) == SmtStatus::Unsat) {
      // Adopt the (possibly even smaller) refreshed core.
      Core = S.unsatCore();
      // Restart scanning: indices shifted.
      I = 0;
      continue;
    }
    ++I;
  }
  return Core;
}

namespace {

/// If F is (syntactically) the negation of a cube, returns the cube's
/// literals: F = not(l1 /\ ... /\ ln) or F = (not l1 \/ ... \/ not ln).
std::optional<std::vector<TermRef>> negatedCube(TermContext &Ctx, TermRef F) {
  const TermNode &N = Ctx.node(F);
  std::vector<TermRef> Lits;
  if (N.K == Kind::Not && Ctx.kind(N.Kids[0]) == Kind::And) {
    for (TermRef Kid : Ctx.node(N.Kids[0]).Kids) {
      if (!Ctx.isLiteral(Kid))
        return std::nullopt;
      Lits.push_back(Kid);
    }
    return Lits;
  }
  if (N.K == Kind::Or) {
    for (TermRef Kid : N.Kids) {
      if (!Ctx.isLiteral(Kid))
        return std::nullopt;
      Lits.push_back(Ctx.mkNot(Kid));
    }
    return Lits;
  }
  if (Ctx.isLiteral(F))
    return std::vector<TermRef>{Ctx.mkNot(F)};
  return std::nullopt;
}

} // namespace

TermRef mucyc::interpolate(TermContext &Ctx, TermRef A, TermRef B,
                           ItpMode Mode) {
  MUCYC_INVARIANT(SmtSolver::implies(Ctx, A, B),
                  "Itp precondition A => B violated");
  switch (Mode) {
  case ItpMode::WeakestB:
    return B;
  case ItpMode::QeStrongest: {
    std::vector<VarId> BVars = Ctx.freeVars(B);
    std::vector<VarId> Elim;
    for (VarId V : Ctx.freeVars(A))
      if (!std::binary_search(BVars.begin(), BVars.end(), V))
        Elim.push_back(V);
    return qeExists(Ctx, Elim, A);
  }
  case ItpMode::CubeGeneralize: {
    // Decompose B into conjuncts and generalize the clause-like ones.
    std::vector<TermRef> Conjuncts;
    if (Ctx.kind(B) == Kind::And)
      Conjuncts = Ctx.node(B).Kids;
    else
      Conjuncts = {B};
    std::vector<TermRef> Out;
    Out.reserve(Conjuncts.size());
    for (TermRef Bj : Conjuncts) {
      if (auto Cube = negatedCube(Ctx, Bj)) {
        std::vector<TermRef> Small = generalizeBlockedCube(Ctx, A, *Cube);
        Out.push_back(Ctx.mkNot(Ctx.mkAnd(std::move(Small))));
      } else {
        Out.push_back(Bj); // Valid since A => B => Bj.
      }
    }
    return Ctx.mkAnd(std::move(Out));
  }
  }
  raiseError(ErrorCode::InvariantViolation, "unknown interpolation mode");
}
