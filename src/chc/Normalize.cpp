//===- chc/Normalize.cpp - Normalization to the paper's form --------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Normalize.h"

#include "mbp/Qe.h"

#include <algorithm>
#include <sstream>

using namespace mucyc;

TermRef NormalizedChc::zToX(TermContext &Ctx, TermRef F) const {
  std::unordered_map<VarId, TermRef> Map;
  for (size_t I = 0; I < Z.size(); ++I)
    Map.emplace(Z[I], Ctx.varTerm(X[I]));
  return Ctx.substitute(F, Map);
}

TermRef NormalizedChc::zToY(TermContext &Ctx, TermRef F) const {
  std::unordered_map<VarId, TermRef> Map;
  for (size_t I = 0; I < Z.size(); ++I)
    Map.emplace(Z[I], Ctx.varTerm(Y[I]));
  return Ctx.substitute(F, Map);
}

NormalizedChc mucyc::makeNormalized(TermContext &Ctx, std::vector<VarId> X,
                                    std::vector<VarId> Y, std::vector<VarId> Z,
                                    TermRef Init, TermRef Trans, TermRef Bad) {
  assert(X.size() == Y.size() && Y.size() == Z.size());
#ifndef NDEBUG
  for (size_t I = 0; I < X.size(); ++I) {
    assert(Ctx.varInfo(X[I]).S == Ctx.varInfo(Z[I]).S);
    assert(Ctx.varInfo(Y[I]).S == Ctx.varInfo(Z[I]).S);
  }
#else
  (void)Ctx;
#endif
  NormalizedChc N;
  N.X = std::move(X);
  N.Y = std::move(Y);
  N.Z = std::move(Z);
  N.Init = Init;
  N.Trans = Trans;
  N.Bad = Bad;
  return N;
}

namespace {

/// Slot pool: combined-state positions with fixed sorts, allocated greedily
/// per "shape" (sequence of sorts). Shapes are independent because only one
/// tag is live in a state at a time.
class SlotPool {
public:
  std::vector<size_t> allocate(const std::vector<Sort> &Shape) {
    std::vector<size_t> Mapping;
    std::vector<bool> Used(Sorts.size(), false);
    for (Sort S : Shape) {
      size_t Pos = Sorts.size();
      for (size_t I = 0; I < Sorts.size(); ++I)
        if (!Used[I] && Sorts[I] == S) {
          Pos = I;
          break;
        }
      if (Pos == Sorts.size())
        Sorts.push_back(S);
      Used.resize(Sorts.size(), false);
      Used[Pos] = true;
      Mapping.push_back(Pos);
    }
    return Mapping;
  }

  const std::vector<Sort> &sorts() const { return Sorts; }

private:
  std::vector<Sort> Sorts;
};

/// A clause with every atom argument replaced by a distinct fresh variable;
/// the bindings move into the constraint.
struct FlatClause {
  std::vector<PredId> BodyPreds;
  std::vector<std::vector<VarId>> BodyArgs;
  std::optional<PredId> HeadPred;
  std::vector<VarId> HeadArgs;
  TermRef Constraint;
};

FlatClause flattenClause(ChcSystem &Sys, const Clause &C, size_t Index) {
  TermContext &Ctx = Sys.ctx();
  FlatClause F;
  std::vector<TermRef> Conj{C.Constraint};
  auto FreshTuple = [&](PredId P, const char *Role, size_t AtomIdx) {
    const PredDecl &D = Sys.pred(P);
    std::vector<VarId> Vars;
    for (size_t I = 0; I < D.ArgSorts.size(); ++I) {
      TermRef V = Ctx.mkFreshVar("norm!c" + std::to_string(Index) + Role +
                                     std::to_string(AtomIdx) + "a" +
                                     std::to_string(I),
                                 D.ArgSorts[I]);
      Vars.push_back(Ctx.node(V).Var);
    }
    return Vars;
  };
  for (size_t BI = 0; BI < C.Body.size(); ++BI) {
    const PredApp &App = C.Body[BI];
    F.BodyPreds.push_back(App.Pred);
    std::vector<VarId> Vars = FreshTuple(App.Pred, "b", BI);
    for (size_t I = 0; I < Vars.size(); ++I)
      Conj.push_back(Ctx.mkEq(Ctx.varTerm(Vars[I]), App.Args[I]));
    F.BodyArgs.push_back(std::move(Vars));
  }
  if (C.Head) {
    F.HeadPred = C.Head->Pred;
    F.HeadArgs = FreshTuple(C.Head->Pred, "h", 0);
    for (size_t I = 0; I < F.HeadArgs.size(); ++I)
      Conj.push_back(
          Ctx.mkEq(Ctx.varTerm(F.HeadArgs[I]), C.Head->Args[I]));
  }
  F.Constraint = Ctx.mkAnd(std::move(Conj));
  return F;
}

/// Eliminates from \p F every variable not in \p Keep (complete QE).
TermRef projectOnto(TermContext &Ctx, TermRef F,
                    const std::vector<VarId> &Keep) {
  std::vector<VarId> Elim;
  for (VarId V : Ctx.freeVars(F))
    if (std::find(Keep.begin(), Keep.end(), V) == Keep.end())
      Elim.push_back(V);
  return qeExists(Ctx, Elim, F);
}

} // namespace

NormalizeResult mucyc::normalize(ChcSystem &Sys) {
  TermContext &Ctx = Sys.ctx();
  NormalizeResult R;

  // 1. Slot layout for every predicate.
  SlotPool Pool;
  for (PredId P = 0; P < Sys.numPreds(); ++P) {
    NormalizeResult::PredLayout L;
    L.Tag = static_cast<int64_t>(P) + 1;
    L.Slots = Pool.allocate(Sys.pred(P).ArgSorts);
    R.Layout.emplace(P, std::move(L));
  }
  int64_t NextTag = static_cast<int64_t>(Sys.numPreds()) + 1;

  // 2. Flatten clauses and allocate intermediate layouts for folds.
  struct Piece {
    int64_t XTag = -1, YTag = -1, ZTag = -1; // -1: not a transition piece.
    std::vector<std::pair<size_t, VarId>> XBind, YBind, ZBind; // slot, var.
    TermRef Local; ///< Constraint over bound variables (QE-projected later).
  };
  std::vector<Piece> InitPieces, TransPieces, BadPieces;

  for (size_t CI = 0; CI < Sys.clauses().size(); ++CI) {
    FlatClause F = flattenClause(Sys, Sys.clauses()[CI], CI);
    size_t K = F.BodyPreds.size();

    // Stacked layouts for intermediate joins of body positions [0, i).
    // Intermediate i (2 <= i < K) packs the first i atoms' tuples.
    std::vector<std::vector<size_t>> StackMap(K + 1);
    std::vector<int64_t> StackTag(K + 1, -1);
    if (K > 2) {
      for (size_t I = 2; I < K; ++I) {
        std::vector<Sort> Shape;
        std::vector<VarId> Flat;
        for (size_t J = 0; J < I; ++J)
          for (VarId V : F.BodyArgs[J]) {
            Shape.push_back(Ctx.varInfo(V).S);
            Flat.push_back(V);
          }
        StackMap[I] = Pool.allocate(Shape);
        StackTag[I] = NextTag++;
      }
    }

    auto PredBind = [&](PredId P, const std::vector<VarId> &Args) {
      std::vector<std::pair<size_t, VarId>> B;
      const auto &L = R.Layout.at(P);
      for (size_t I = 0; I < Args.size(); ++I)
        B.emplace_back(L.Slots[I], Args[I]);
      return B;
    };
    auto StackBind = [&](size_t I) {
      std::vector<std::pair<size_t, VarId>> B;
      size_t Pos = 0;
      for (size_t J = 0; J < I; ++J)
        for (VarId V : F.BodyArgs[J])
          B.emplace_back(StackMap[I][Pos++], V);
      return B;
    };

    // Pure-copy folds building the intermediates.
    for (size_t I = 2; I < K; ++I) {
      Piece P;
      P.XTag = I == 2 ? R.Layout.at(F.BodyPreds[0]).Tag : StackTag[I - 1];
      P.XBind = I == 2 ? PredBind(F.BodyPreds[0], F.BodyArgs[0])
                       : StackBind(I - 1);
      P.YTag = R.Layout.at(F.BodyPreds[I - 1]).Tag;
      P.YBind = PredBind(F.BodyPreds[I - 1], F.BodyArgs[I - 1]);
      P.ZTag = StackTag[I];
      P.ZBind = StackBind(I);
      P.Local = Ctx.mkTrue();
      TransPieces.push_back(std::move(P));
    }

    // The final (or only) piece carrying the clause constraint.
    Piece P;
    P.Local = F.Constraint;
    if (K == 0) {
      if (F.HeadPred) {
        P.ZTag = R.Layout.at(*F.HeadPred).Tag;
        P.ZBind = PredBind(*F.HeadPred, F.HeadArgs);
        InitPieces.push_back(std::move(P));
      } else {
        // Ground query: bad at the unit state.
        P.ZTag = 0;
        BadPieces.push_back(std::move(P));
      }
      continue;
    }
    if (K == 1) {
      P.XTag = R.Layout.at(F.BodyPreds[0]).Tag;
      P.XBind = PredBind(F.BodyPreds[0], F.BodyArgs[0]);
      P.YTag = 0; // Unit partner.
    } else {
      P.XTag = K == 2 ? R.Layout.at(F.BodyPreds[0]).Tag : StackTag[K - 1];
      P.XBind = K == 2 ? PredBind(F.BodyPreds[0], F.BodyArgs[0])
                       : StackBind(K - 1);
      P.YTag = R.Layout.at(F.BodyPreds[K - 1]).Tag;
      P.YBind = PredBind(F.BodyPreds[K - 1], F.BodyArgs[K - 1]);
    }
    if (F.HeadPred) {
      P.ZTag = R.Layout.at(*F.HeadPred).Tag;
      P.ZBind = PredBind(*F.HeadPred, F.HeadArgs);
      TransPieces.push_back(std::move(P));
    } else if (K == 1) {
      // Unary query: a bad-state piece over Z directly. Clear the X/Y
      // transition roles set above — beta must be a Z-only formula.
      P.ZTag = R.Layout.at(F.BodyPreds[0]).Tag;
      P.ZBind = P.XBind;
      P.XTag = -1;
      P.XBind.clear();
      P.YTag = -1;
      P.YBind.clear();
      BadPieces.push_back(std::move(P));
    } else {
      // Multi-atom query: route through a dedicated bad tag.
      int64_t BadTag = NextTag++;
      P.ZTag = BadTag;
      TransPieces.push_back(std::move(P));
      Piece B;
      B.ZTag = BadTag;
      B.Local = Ctx.mkTrue();
      BadPieces.push_back(std::move(B));
    }
  }

  // 3. Materialize the combined tuples.
  NormalizedChc &N = R.Sys;
  auto MakeTuple = [&](const char *Prefix) {
    std::vector<VarId> T;
    TermRef Tag = Ctx.mkFreshVar(std::string(Prefix) + "!tag", Sort::Int);
    T.push_back(Ctx.node(Tag).Var);
    for (size_t I = 0; I < Pool.sorts().size(); ++I) {
      TermRef V = Ctx.mkFreshVar(std::string(Prefix) + "!s" +
                                     std::to_string(I),
                                 Pool.sorts()[I]);
      T.push_back(Ctx.node(V).Var);
    }
    return T;
  };
  N.Z = MakeTuple("norm!z");
  N.X = MakeTuple("norm!x");
  N.Y = MakeTuple("norm!y");

  // 4. Render pieces as formulas. Binding a piece substitutes its clause
  // variables by tuple slots after projecting away everything else.
  auto Render = [&](const Piece &P) {
    std::vector<VarId> Keep;
    for (const auto &[S, V] : P.XBind)
      Keep.push_back(V);
    for (const auto &[S, V] : P.YBind)
      Keep.push_back(V);
    for (const auto &[S, V] : P.ZBind)
      Keep.push_back(V);
    TermRef Proj = projectOnto(Ctx, P.Local, Keep);
    // A clause variable bound to several tuple positions (the pure-copy
    // fold pieces bind each stacked variable in both the source tuple and
    // the packed Z tuple) induces equality constraints between those
    // positions; the first binding becomes the substitution target.
    std::unordered_map<VarId, TermRef> Map;
    std::vector<TermRef> Conj;
    auto Bind = [&](VarId V, TermRef Slot) {
      auto [It, Inserted] = Map.emplace(V, Slot);
      if (!Inserted)
        Conj.push_back(Ctx.mkEq(It->second, Slot));
    };
    for (const auto &[S, V] : P.XBind)
      Bind(V, Ctx.varTerm(N.X[S + 1]));
    for (const auto &[S, V] : P.YBind)
      Bind(V, Ctx.varTerm(N.Y[S + 1]));
    for (const auto &[S, V] : P.ZBind)
      Bind(V, Ctx.varTerm(N.Z[S + 1]));
    Conj.push_back(Ctx.substitute(Proj, Map));
    auto TagEq = [&](VarId TagVar, int64_t Tag) {
      return Ctx.mkEq(Ctx.varTerm(TagVar), Ctx.mkIntConst(Tag));
    };
    if (P.XTag >= 0)
      Conj.push_back(TagEq(N.X[0], P.XTag));
    if (P.YTag >= 0)
      Conj.push_back(TagEq(N.Y[0], P.YTag));
    if (P.ZTag >= 0)
      Conj.push_back(TagEq(N.Z[0], P.ZTag));
    return Ctx.mkAnd(std::move(Conj));
  };

  std::vector<TermRef> Init{
      Ctx.mkEq(Ctx.varTerm(N.Z[0]), Ctx.mkIntConst(0))}; // Unit state.
  for (const Piece &P : InitPieces)
    Init.push_back(Render(P));
  N.Init = Ctx.mkOr(std::move(Init));

  std::vector<TermRef> Trans;
  for (const Piece &P : TransPieces)
    Trans.push_back(Render(P));
  N.Trans = Ctx.mkOr(std::move(Trans));

  std::vector<TermRef> Bad;
  for (const Piece &P : BadPieces)
    Bad.push_back(Render(P));
  N.Bad = Ctx.mkOr(std::move(Bad));

  return R;
}

ChcSolution NormalizeResult::liftSolution(ChcSystem &Orig,
                                          TermRef PhiZ) const {
  TermContext &Ctx = Orig.ctx();
  ChcSolution Sol;
  for (PredId P = 0; P < Orig.numPreds(); ++P) {
    const PredDecl &D = Orig.pred(P);
    const PredLayout &L = Layout.at(P);
    PredDef Def;
    // Fresh parameter variables.
    for (size_t I = 0; I < D.ArgSorts.size(); ++I) {
      TermRef V = Ctx.mkFreshVar(D.Name + "!p" + std::to_string(I),
                                 D.ArgSorts[I]);
      Def.Params.push_back(Ctx.node(V).Var);
    }
    // phi(z) /\ tag = tag_P, slots substituted by parameters, everything
    // else projected away.
    TermRef F = Ctx.mkAnd(
        PhiZ, Ctx.mkEq(Ctx.varTerm(Sys.Z[0]), Ctx.mkIntConst(L.Tag)));
    std::unordered_map<VarId, TermRef> Map;
    std::vector<VarId> Keep;
    for (size_t I = 0; I < L.Slots.size(); ++I) {
      Map.emplace(Sys.Z[L.Slots[I] + 1], Ctx.varTerm(Def.Params[I]));
      Keep.push_back(Sys.Z[L.Slots[I] + 1]);
    }
    std::vector<VarId> Elim;
    for (VarId V : Ctx.freeVars(F))
      if (std::find(Keep.begin(), Keep.end(), V) == Keep.end())
        Elim.push_back(V);
    TermRef Proj = qeExists(Ctx, Elim, F);
    Def.Body = Ctx.substitute(Proj, Map);
    Sol.emplace(P, std::move(Def));
  }
  return Sol;
}
