//===- chc/Parser.cpp - SMT-LIB2 HORN frontend ----------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"

#include "support/Error.h"

#include <algorithm>
#include <sstream>

using namespace mucyc;

namespace {

//===----------------------------------------------------------------------===
// S-expressions
//===----------------------------------------------------------------------===

struct Sexp {
  bool IsAtom = false;
  std::string Atom;
  std::vector<Sexp> Kids;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  /// Returns the next token, or empty at end of input.
  std::string next() {
    skipSpace();
    if (Pos >= Text.size())
      return "";
    char C = Text[Pos];
    if (C == '(' || C == ')') {
      ++Pos;
      return std::string(1, C);
    }
    if (C == '|') { // Quoted symbol.
      size_t End = Text.find('|', Pos + 1);
      if (End == std::string::npos)
        End = Text.size() - 1;
      std::string Tok = Text.substr(Pos + 1, End - Pos - 1);
      Pos = End + 1;
      return Tok.empty() ? "|" : Tok;
    }
    size_t Start = Pos;
    while (Pos < Text.size() && !isspace(static_cast<unsigned char>(Text[Pos])) &&
           Text[Pos] != '(' && Text[Pos] != ')' && Text[Pos] != ';')
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

private:
  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (!isspace(static_cast<unsigned char>(C)))
        break;
      ++Pos;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Nesting cap for s-expressions (and therefore for every recursive walk
/// over them): recursion depth is attacker-controlled input, and without a
/// cap a few kilobytes of '(' overflow the stack instead of producing a
/// diagnostic.
constexpr unsigned MaxSexpDepth = 1000;

bool readSexp(Lexer &Lex, const std::string &First, Sexp &Out,
              std::string &Err, unsigned Depth = 0) {
  if (First.empty()) {
    Err = "unexpected end of input";
    return false;
  }
  if (First == "(") {
    if (Depth >= MaxSexpDepth) {
      Err = "expression nesting exceeds " + std::to_string(MaxSexpDepth);
      return false;
    }
    Out.IsAtom = false;
    while (true) {
      std::string Tok = Lex.next();
      if (Tok == ")")
        return true;
      if (Tok.empty()) {
        Err = "unexpected end of input inside '('";
        return false;
      }
      Sexp Kid;
      if (!readSexp(Lex, Tok, Kid, Err, Depth + 1))
        return false;
      Out.Kids.push_back(std::move(Kid));
    }
  }
  if (First == ")") {
    Err = "unexpected ')'";
    return false;
  }
  Out.IsAtom = true;
  Out.Atom = First;
  return true;
}

//===----------------------------------------------------------------------===
// Command interpretation
//===----------------------------------------------------------------------===

struct ParserState {
  TermContext &Ctx;
  ChcSystem Sys;
  std::string Err;

  explicit ParserState(TermContext &Ctx) : Ctx(Ctx), Sys(Ctx) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }
};

/// Binding environment for quantified and let-bound names. Predicate
/// applications are collected on the side: during clause parsing a predicate
/// application evaluates to a fresh Bool placeholder recorded in Apps.
struct Env {
  std::map<std::string, TermRef> Names;
};

std::optional<Sort> parseSort(const Sexp &S) {
  if (!S.IsAtom)
    return std::nullopt;
  if (S.Atom == "Bool")
    return Sort::Bool;
  if (S.Atom == "Int")
    return Sort::Int;
  if (S.Atom == "Real")
    return Sort::Real;
  return std::nullopt;
}

bool isNumeral(const std::string &S) {
  if (S.empty())
    return false;
  size_t I = 0;
  bool Digit = false, Dot = false;
  for (; I < S.size(); ++I) {
    if (S[I] >= '0' && S[I] <= '9') {
      Digit = true;
      continue;
    }
    if (S[I] == '.' && !Dot) {
      Dot = true;
      continue;
    }
    return false;
  }
  return Digit;
}

/// Parsed atom-or-application in clause position: either a constraint term
/// or a predicate application.
struct BodyItem {
  std::optional<PredApp> App;
  TermRef Term;
};

/// Term parser. \p Apps collects predicate applications encountered in
/// positive positions (body conjunctions); applications elsewhere are an
/// error for HORN.
class TermParser {
public:
  TermParser(ParserState &PS) : PS(PS), Ctx(PS.Ctx) {}

  /// Parses a constraint-only term (no predicate applications allowed).
  std::optional<TermRef> parseTerm(const Sexp &S, Env &E) {
    if (S.IsAtom)
      return parseAtomToken(S.Atom, E);
    if (S.Kids.empty()) {
      PS.fail("empty application");
      return std::nullopt;
    }
    const Sexp &Head = S.Kids[0];
    if (!Head.IsAtom) {
      // Indexed identifier: ((_ divisible d) t), the printed form of a
      // divisibility atom.
      if (Head.Kids.size() == 3 && Head.Kids[0].IsAtom &&
          Head.Kids[0].Atom == "_" && Head.Kids[1].IsAtom &&
          Head.Kids[1].Atom == "divisible" && Head.Kids[2].IsAtom)
        return parseDivisible(S, Head.Kids[2].Atom, E);
      PS.fail("non-symbol in operator position");
      return std::nullopt;
    }
    const std::string &Op = Head.Atom;

    if (Op == "let") {
      if (S.Kids.size() != 3 || Head.IsAtom == false) {
        PS.fail("malformed let");
        return std::nullopt;
      }
      Env E2 = E;
      for (const Sexp &B : S.Kids[1].Kids) {
        if (B.IsAtom || B.Kids.size() != 2 || !B.Kids[0].IsAtom) {
          PS.fail("malformed let binding");
          return std::nullopt;
        }
        auto V = parseTerm(B.Kids[1], E);
        if (!V)
          return std::nullopt;
        E2.Names[B.Kids[0].Atom] = *V;
      }
      return parseTerm(S.Kids[2], E2);
    }

    std::vector<TermRef> Args;
    for (size_t I = 1; I < S.Kids.size(); ++I) {
      auto A = parseTerm(S.Kids[I], E);
      if (!A)
        return std::nullopt;
      Args.push_back(*A);
    }
    return apply(Op, Args);
  }

  std::optional<TermRef> apply(const std::string &Op,
                               std::vector<TermRef> Args) {
    // Sort discipline is checked HERE, before any builder runs: the term
    // builders enforce their preconditions with asserts, and a parser must
    // turn ill-sorted input into a diagnostic, never an abort.
    auto Arity = [&](size_t N) {
      if (Args.size() == N)
        return true;
      PS.fail("operator '" + Op + "' expects " + std::to_string(N) +
              " arguments");
      return false;
    };
    auto AllBool = [&] {
      for (TermRef A : Args)
        if (Ctx.sort(A) != Sort::Bool) {
          PS.fail("operator '" + Op + "' expects Bool arguments");
          return false;
        }
      return true;
    };
    auto SameNumeric = [&] {
      for (TermRef A : Args)
        if (Ctx.sort(A) == Sort::Bool) {
          PS.fail("operator '" + Op + "' expects numeric arguments");
          return false;
        }
      for (size_t I = 1; I < Args.size(); ++I)
        if (Ctx.sort(Args[I]) != Ctx.sort(Args[0])) {
          PS.fail("mixed Int/Real operands to '" + Op + "'");
          return false;
        }
      return true;
    };
    if (Op == "and")
      return AllBool() ? std::optional(Args.empty() ? Ctx.mkTrue()
                                                    : Ctx.mkAnd(std::move(
                                                          Args)))
                       : std::nullopt;
    if (Op == "or")
      return AllBool() ? std::optional(Args.empty() ? Ctx.mkFalse()
                                                    : Ctx.mkOr(std::move(
                                                          Args)))
                       : std::nullopt;
    if (Op == "not")
      return Arity(1) && AllBool() ? std::optional(Ctx.mkNot(Args[0]))
                                   : std::nullopt;
    if (Op == "=>") {
      if (Args.size() < 2) {
        Arity(2);
        return std::nullopt;
      }
      if (!AllBool())
        return std::nullopt;
      TermRef R = Args.back();
      for (size_t I = Args.size() - 1; I-- > 0;)
        R = Ctx.mkImplies(Args[I], R);
      return R;
    }
    if (Op == "ite") {
      if (!Arity(3))
        return std::nullopt;
      if (Ctx.sort(Args[0]) != Sort::Bool || Ctx.sort(Args[1]) != Sort::Bool ||
          Ctx.sort(Args[2]) != Sort::Bool) {
        PS.fail("only Bool-sorted ite is supported");
        return std::nullopt;
      }
      return Ctx.mkIte(Args[0], Args[1], Args[2]);
    }
    if (Op == "=") {
      if (!Arity(2))
        return std::nullopt;
      if (Ctx.sort(Args[0]) != Ctx.sort(Args[1])) {
        PS.fail("'=' operands have different sorts");
        return std::nullopt;
      }
      return Ctx.mkEq(Args[0], Args[1]);
    }
    if (Op == "<=" || Op == "<" || Op == ">=" || Op == ">") {
      if (!Arity(2) || !SameNumeric())
        return std::nullopt;
      if (Op == "<=")
        return Ctx.mkLe(Args[0], Args[1]);
      if (Op == "<")
        return Ctx.mkLt(Args[0], Args[1]);
      if (Op == ">=")
        return Ctx.mkGe(Args[0], Args[1]);
      return Ctx.mkGt(Args[0], Args[1]);
    }
    if (Op == "+") {
      if (Args.empty()) {
        PS.fail("operator '+' expects arguments");
        return std::nullopt;
      }
      return SameNumeric() ? std::optional(Ctx.mkAdd(std::move(Args)))
                           : std::nullopt;
    }
    if (Op == "-") {
      if (Args.size() == 1)
        return SameNumeric() ? std::optional(Ctx.mkNeg(Args[0]))
                             : std::nullopt;
      if (!Arity(2) || !SameNumeric())
        return std::nullopt;
      return Ctx.mkSub(Args[0], Args[1]);
    }
    if (Op == "*") {
      if (!Arity(2) || !SameNumeric())
        return std::nullopt;
      // One side must be a constant (linear arithmetic).
      if (Ctx.kind(Args[0]) == Kind::Const)
        return Ctx.mkMul(Ctx.node(Args[0]).Val, Args[1]);
      if (Ctx.kind(Args[1]) == Kind::Const)
        return Ctx.mkMul(Ctx.node(Args[1]).Val, Args[0]);
      PS.fail("non-linear multiplication");
      return std::nullopt;
    }
    if (Op == "/") {
      // Real division by a nonzero constant; Print.cpp emits non-integral
      // Real constants as (/ num den), so this form must round-trip.
      if (!Arity(2) || !SameNumeric())
        return std::nullopt;
      if (Ctx.sort(Args[0]) != Sort::Real) {
        PS.fail("'/' is Real division (use div for Int)");
        return std::nullopt;
      }
      if (Ctx.kind(Args[1]) != Kind::Const) {
        PS.fail("non-linear division");
        return std::nullopt;
      }
      const Rational &D = Ctx.node(Args[1]).Val;
      if (D.isZero()) {
        PS.fail("division by zero");
        return std::nullopt;
      }
      return Ctx.mkMul(D.inverse(), Args[0]);
    }
    // Predicate application in constraint position?
    if (PS.Sys.findPred(Op)) {
      PS.fail("predicate '" + Op + "' used outside Horn body/head position");
      return std::nullopt;
    }
    PS.fail("unknown operator '" + Op + "'");
    return std::nullopt;
  }

  /// ((_ divisible d) t): divisibility atom over Int.
  std::optional<TermRef> parseDivisible(const Sexp &S, const std::string &Mod,
                                        Env &E) {
    if (S.Kids.size() != 2) {
      PS.fail("(_ divisible d) expects one argument");
      return std::nullopt;
    }
    if (!isNumeral(Mod) || Mod.find('.') != std::string::npos) {
      PS.fail("divisible modulus must be an integer numeral");
      return std::nullopt;
    }
    Rational M;
    try {
      M = Rational::fromString(Mod);
    } catch (const MucycError &Err) {
      // fromString raises typed InputError on malformed numerals; a parser
      // must turn that into a diagnostic, never let it escape parseChc.
      PS.fail(Err.detail());
      return std::nullopt;
    }
    if (M.sgn() <= 0) {
      PS.fail("divisible modulus must be positive");
      return std::nullopt;
    }
    auto A = parseTerm(S.Kids[1], E);
    if (!A)
      return std::nullopt;
    if (Ctx.sort(*A) != Sort::Int) {
      PS.fail("divisible applies to Int terms");
      return std::nullopt;
    }
    return Ctx.mkDivides(M.num(), *A);
  }

  std::optional<TermRef> parseAtomToken(const std::string &Tok, Env &E) {
    auto It = E.Names.find(Tok);
    if (It != E.Names.end())
      return It->second;
    if (Tok == "true")
      return Ctx.mkTrue();
    if (Tok == "false")
      return Ctx.mkFalse();
    if (isNumeral(Tok)) {
      Rational V;
      try {
        V = Rational::fromString(Tok);
      } catch (const MucycError &Err) {
        PS.fail(Err.detail());
        return std::nullopt;
      }
      // Sort by syntax: decimals are Real, plain numerals Int.
      bool IsReal = Tok.find('.') != std::string::npos;
      return Ctx.mkConst(V, IsReal ? Sort::Real : Sort::Int);
    }
    if (auto P = PS.Sys.findPred(Tok)) {
      if (PS.Sys.pred(*P).ArgSorts.empty())
        return std::nullopt; // Handled by the clause parser.
      PS.fail("predicate '" + Tok + "' used as a term");
      return std::nullopt;
    }
    PS.fail("unbound symbol '" + Tok + "'");
    return std::nullopt;
  }

  ParserState &PS;
  TermContext &Ctx;
};

/// Clause-structure parser: walks the Horn skeleton (forall / => / and)
/// splitting predicate applications from constraints.
class ClauseParser {
public:
  explicit ClauseParser(ParserState &PS) : PS(PS), TP(PS) {}

  bool parseAssert(const Sexp &S) {
    Env E;
    return parseQuantified(S, E);
  }

private:
  ParserState &PS;
  TermParser TP;

  bool parseQuantified(const Sexp &S, Env &E) {
    if (!S.IsAtom && !S.Kids.empty() && S.Kids[0].IsAtom &&
        S.Kids[0].Atom == "forall") {
      if (S.Kids.size() != 3)
        return PS.fail("malformed forall");
      Env E2 = E;
      for (const Sexp &B : S.Kids[1].Kids) {
        if (B.IsAtom || B.Kids.size() != 2 || !B.Kids[0].IsAtom)
          return PS.fail("malformed binder");
        auto Srt = parseSort(B.Kids[1]);
        if (!Srt)
          return PS.fail("unknown sort in binder");
        // Quantified names are clause-local: freshen to avoid capture
        // across clauses while keeping the display name readable.
        TermRef V = PS.Ctx.mkFreshVar(B.Kids[0].Atom, *Srt);
        E2.Names[B.Kids[0].Atom] = V;
      }
      return parseQuantified(S.Kids[2], E2);
    }
    return parseImplication(S, E);
  }

  bool parseImplication(const Sexp &S, Env &E) {
    Clause C;
    C.Constraint = PS.Ctx.mkTrue();
    if (!S.IsAtom && !S.Kids.empty() && S.Kids[0].IsAtom &&
        S.Kids[0].Atom == "=>" && S.Kids.size() == 3) {
      if (!parseBody(S.Kids[1], E, C))
        return false;
      return parseHead(S.Kids[2], E, C);
    }
    // (not body) is sugar for body => false; bare head is a fact.
    if (!S.IsAtom && !S.Kids.empty() && S.Kids[0].IsAtom &&
        S.Kids[0].Atom == "not" && S.Kids.size() == 2) {
      if (!parseBody(S.Kids[1], E, C))
        return false;
      C.Head = std::nullopt;
      PS.Sys.addClause(std::move(C));
      return true;
    }
    return parseHead(S, E, C);
  }

  bool parseBody(const Sexp &S, Env &E, Clause &C) {
    // Body: conjunction of predicate applications and constraints.
    if (!S.IsAtom && !S.Kids.empty() && S.Kids[0].IsAtom &&
        S.Kids[0].Atom == "and") {
      for (size_t I = 1; I < S.Kids.size(); ++I)
        if (!parseBody(S.Kids[I], E, C))
          return false;
      return true;
    }
    if (auto App = tryPredApp(S, E)) {
      C.Body.push_back(std::move(*App));
      return true;
    }
    if (!PS.Err.empty())
      return false;
    auto T = TP.parseTerm(S, E);
    if (!T)
      return false;
    if (PS.Ctx.sort(*T) != Sort::Bool)
      return PS.fail("clause body conjunct is not Bool-sorted");
    C.Constraint = PS.Ctx.mkAnd(C.Constraint, *T);
    return true;
  }

  bool parseHead(const Sexp &S, Env &E, Clause &C) {
    if (S.IsAtom && S.Atom == "false") {
      C.Head = std::nullopt;
      PS.Sys.addClause(std::move(C));
      return true;
    }
    if (auto App = tryPredApp(S, E)) {
      C.Head = std::move(*App);
      PS.Sys.addClause(std::move(C));
      return true;
    }
    if (!PS.Err.empty())
      return false;
    return PS.fail("clause head is neither a predicate nor false");
  }

  std::optional<PredApp> tryPredApp(const Sexp &S, Env &E) {
    std::string Name;
    const std::vector<Sexp> *ArgSexps = nullptr;
    static const std::vector<Sexp> NoArgs;
    if (S.IsAtom) {
      Name = S.Atom;
      ArgSexps = &NoArgs;
    } else if (!S.Kids.empty() && S.Kids[0].IsAtom) {
      Name = S.Kids[0].Atom;
      ArgSexps = nullptr;
    } else {
      return std::nullopt;
    }
    auto P = PS.Sys.findPred(Name);
    if (!P)
      return std::nullopt;
    PredApp App;
    App.Pred = *P;
    if (!ArgSexps) {
      for (size_t I = 1; I < S.Kids.size(); ++I) {
        auto T = TP.parseTerm(S.Kids[I], E);
        if (!T) {
          PS.fail("bad argument to predicate '" + Name + "'");
          return std::nullopt;
        }
        App.Args.push_back(*T);
      }
    }
    const std::vector<Sort> &ArgSorts = PS.Sys.pred(*P).ArgSorts;
    if (App.Args.size() != ArgSorts.size()) {
      PS.fail("arity mismatch for predicate '" + Name + "'");
      return std::nullopt;
    }
    for (size_t I = 0; I < App.Args.size(); ++I)
      if (PS.Ctx.sort(App.Args[I]) != ArgSorts[I]) {
        PS.fail("argument " + std::to_string(I) + " of predicate '" + Name +
                "' has the wrong sort");
        return std::nullopt;
      }
    return App;
  }
};

} // namespace

ParseResult mucyc::parseChc(TermContext &Ctx, const std::string &Text) {
  ParseResult R;
  ParserState PS(Ctx);
  Lexer Lex(Text);
  while (true) {
    std::string Tok = Lex.next();
    if (Tok.empty())
      break;
    Sexp Cmd;
    std::string Err;
    if (!readSexp(Lex, Tok, Cmd, Err)) {
      R.Error = Err;
      return R;
    }
    if (Cmd.IsAtom || Cmd.Kids.empty() || !Cmd.Kids[0].IsAtom) {
      R.Error = "malformed command";
      return R;
    }
    const std::string &Name = Cmd.Kids[0].Atom;
    if (Name == "set-logic" || Name == "set-info" || Name == "set-option" ||
        Name == "check-sat" || Name == "get-model" || Name == "exit")
      continue;
    if (Name == "declare-fun") {
      if (Cmd.Kids.size() != 4 || !Cmd.Kids[1].IsAtom) {
        R.Error = "malformed declare-fun";
        return R;
      }
      auto Ret = parseSort(Cmd.Kids[3]);
      if (!Ret || *Ret != Sort::Bool) {
        R.Error = "declare-fun must return Bool in HORN";
        return R;
      }
      std::vector<Sort> ArgSorts;
      for (const Sexp &A : Cmd.Kids[2].Kids) {
        auto S = parseSort(A);
        if (!S) {
          R.Error = "unknown argument sort in declare-fun";
          return R;
        }
        ArgSorts.push_back(*S);
      }
      if (PS.Sys.findPred(Cmd.Kids[1].Atom)) {
        R.Error = "duplicate declaration of '" + Cmd.Kids[1].Atom + "'";
        return R;
      }
      PS.Sys.addPred(Cmd.Kids[1].Atom, std::move(ArgSorts));
      continue;
    }
    if (Name == "assert") {
      if (Cmd.Kids.size() != 2) {
        R.Error = "malformed assert";
        return R;
      }
      ClauseParser CP(PS);
      if (!CP.parseAssert(Cmd.Kids[1])) {
        R.Error = PS.Err.empty() ? "failed to parse assertion" : PS.Err;
        return R;
      }
      continue;
    }
    R.Error = "unsupported command '" + Name + "'";
    return R;
  }
  R.Ok = true;
  R.System = std::move(PS.Sys);
  return R;
}

std::string mucyc::printSmtLib(const ChcSystem &Sys) {
  const TermContext &Ctx = Sys.ctx();
  std::ostringstream OS;
  OS << "(set-logic HORN)\n";
  for (PredId P = 0; P < Sys.numPreds(); ++P) {
    const PredDecl &D = Sys.pred(P);
    OS << "(declare-fun " << D.Name << " (";
    for (size_t I = 0; I < D.ArgSorts.size(); ++I)
      OS << (I ? " " : "") << sortName(D.ArgSorts[I]);
    OS << ") Bool)\n";
  }
  for (const Clause &C : Sys.clauses()) {
    // Collect free variables for the forall binder.
    std::vector<VarId> Vars;
    auto AddVars = [&](TermRef T) {
      for (VarId V : const_cast<TermContext &>(Ctx).freeVars(T))
        if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
          Vars.push_back(V);
    };
    AddVars(C.Constraint);
    for (const PredApp &B : C.Body)
      for (TermRef A : B.Args)
        AddVars(A);
    if (C.Head)
      for (TermRef A : C.Head->Args)
        AddVars(A);

    auto AppStr = [&](const PredApp &App) {
      std::string S;
      if (App.Args.empty())
        return Sys.pred(App.Pred).Name;
      S = "(" + Sys.pred(App.Pred).Name;
      for (TermRef A : App.Args)
        S += " " + Ctx.toString(A);
      return S + ")";
    };

    OS << "(assert ";
    if (!Vars.empty()) {
      OS << "(forall (";
      for (size_t I = 0; I < Vars.size(); ++I)
        OS << (I ? " " : "") << "(" << Ctx.varInfo(Vars[I]).Name << " "
           << sortName(Ctx.varInfo(Vars[I]).S) << ")";
      OS << ") ";
    }
    OS << "(=> (and " << Ctx.toString(C.Constraint);
    for (const PredApp &B : C.Body)
      OS << " " << AppStr(B);
    OS << ") " << (C.Head ? AppStr(*C.Head) : "false") << ")";
    if (!Vars.empty())
      OS << ")";
    OS << ")\n";
  }
  OS << "(check-sat)\n";
  return OS.str();
}
