//===- chc/Preprocess.cpp - CHC preprocessing -----------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Preprocess.h"

#include <algorithm>

using namespace mucyc;

namespace {

/// Renames all clause-local variables of \p C to fresh ones.
Clause freshenClause(ChcSystem &Sys, const Clause &C) {
  TermContext &Ctx = Sys.ctx();
  std::unordered_map<VarId, TermRef> Map;
  auto Freshen = [&](TermRef T) {
    for (VarId V : Ctx.freeVars(T))
      if (!Map.count(V))
        Map.emplace(V, Ctx.mkFreshVar(Ctx.varInfo(V).Name, Ctx.varInfo(V).S));
    return Ctx.substitute(T, Map);
  };
  Clause Out;
  Out.Constraint = Freshen(C.Constraint);
  for (const PredApp &B : C.Body) {
    PredApp NB{B.Pred, {}};
    for (TermRef A : B.Args)
      NB.Args.push_back(Freshen(A));
    Out.Body.push_back(std::move(NB));
  }
  if (C.Head) {
    PredApp NH{C.Head->Pred, {}};
    for (TermRef A : C.Head->Args)
      NH.Args.push_back(Freshen(A));
    Out.Head = std::move(NH);
  }
  return Out;
}

bool isRecursive(const ChcSystem &Sys, PredId P) {
  for (const Clause &C : Sys.clauses()) {
    if (!C.Head || C.Head->Pred != P)
      continue;
    for (const PredApp &B : C.Body)
      if (B.Pred == P)
        return true;
  }
  return false;
}

/// Total occurrences of variable \p V across the whole clause.
size_t occurrences(TermContext &Ctx, const Clause &C, VarId V) {
  size_t N = 0;
  // freeVars deduplicates, so count occurrences structurally.
  std::vector<TermRef> Work;
  auto Push = [&](TermRef T) { Work.push_back(T); };
  Push(C.Constraint);
  for (const PredApp &B : C.Body)
    for (TermRef A : B.Args)
      Push(A);
  if (C.Head)
    for (TermRef A : C.Head->Args)
      Push(A);
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    const TermNode &Node = Ctx.node(T);
    if (Node.K == Kind::Var && Node.Var == V)
      ++N;
    for (TermRef Kid : Node.Kids)
      Work.push_back(Kid);
  }
  return N;
}

} // namespace

bool mucyc::unfoldPredicate(ChcSystem &Sys, PredId P, ChcSystem &Out) {
  if (isRecursive(Sys, P))
    return false;
  TermContext &Ctx = Sys.ctx();

  std::vector<const Clause *> Defs;
  for (const Clause &C : Sys.clauses())
    if (C.Head && C.Head->Pred == P)
      Defs.push_back(&C);

  for (const Clause &C : Sys.clauses()) {
    if (C.Head && C.Head->Pred == P)
      continue; // Definition clause: dropped.
    // Expand use sites left to right; each expansion may be the cartesian
    // product over definitions.
    std::vector<Clause> Pending{C};
    std::vector<Clause> Done;
    while (!Pending.empty()) {
      Clause Cur = std::move(Pending.back());
      Pending.pop_back();
      size_t Use = Cur.Body.size();
      for (size_t I = 0; I < Cur.Body.size(); ++I)
        if (Cur.Body[I].Pred == P) {
          Use = I;
          break;
        }
      if (Use == Cur.Body.size()) {
        Done.push_back(std::move(Cur));
        continue;
      }
      for (const Clause *DefC : Defs) {
        Clause D = freshenClause(Sys, *DefC);
        Clause Merged;
        Merged.Head = Cur.Head;
        std::vector<TermRef> Conj{Cur.Constraint, D.Constraint};
        const PredApp &UseApp = Cur.Body[Use];
        for (size_t I = 0; I < UseApp.Args.size(); ++I)
          Conj.push_back(Ctx.mkEq(D.Head->Args[I], UseApp.Args[I]));
        Merged.Constraint = Ctx.mkAnd(std::move(Conj));
        for (size_t I = 0; I < Cur.Body.size(); ++I)
          if (I != Use)
            Merged.Body.push_back(Cur.Body[I]);
        for (const PredApp &B : D.Body)
          Merged.Body.push_back(B);
        Pending.push_back(std::move(Merged));
      }
    }
    for (Clause &DC : Done)
      Out.addClause(std::move(DC));
  }
  return true;
}

ChcSystem mucyc::filterArguments(ChcSystem &Sys, size_t *NumFiltered) {
  TermContext &Ctx = Sys.ctx();
  // Safe redundancy criterion (a restriction of Leuschel-Sorensen RAF): an
  // argument position (P, i) may be erased if in EVERY application of P in
  // the system, the argument is a variable occurring exactly once in its
  // clause. Such arguments carry no information, so erasing them preserves
  // satisfiability in both directions.
  std::vector<std::vector<bool>> Erasable(Sys.numPreds());
  for (PredId P = 0; P < Sys.numPreds(); ++P)
    Erasable[P].assign(Sys.pred(P).ArgSorts.size(), true);

  for (const Clause &C : Sys.clauses()) {
    auto Scan = [&](const PredApp &App) {
      for (size_t I = 0; I < App.Args.size(); ++I) {
        if (!Erasable[App.Pred][I])
          continue;
        const TermNode &N = Ctx.node(App.Args[I]);
        if (N.K != Kind::Var || occurrences(Ctx, C, N.Var) != 1)
          Erasable[App.Pred][I] = false;
      }
    };
    for (const PredApp &B : C.Body)
      Scan(B);
    if (C.Head)
      Scan(*C.Head);
  }

  size_t Filtered = 0;
  for (PredId P = 0; P < Sys.numPreds(); ++P)
    Filtered += std::count(Erasable[P].begin(), Erasable[P].end(), true);
  if (NumFiltered)
    *NumFiltered = Filtered;

  ChcSystem Out(Ctx);
  for (PredId P = 0; P < Sys.numPreds(); ++P) {
    std::vector<Sort> Sorts;
    for (size_t I = 0; I < Sys.pred(P).ArgSorts.size(); ++I)
      if (!Erasable[P][I])
        Sorts.push_back(Sys.pred(P).ArgSorts[I]);
    Out.addPred(Sys.pred(P).Name, std::move(Sorts));
  }
  for (const Clause &C : Sys.clauses()) {
    Clause NC;
    NC.Constraint = C.Constraint;
    auto FilterApp = [&](const PredApp &App) {
      PredApp NA{App.Pred, {}};
      for (size_t I = 0; I < App.Args.size(); ++I)
        if (!Erasable[App.Pred][I])
          NA.Args.push_back(App.Args[I]);
      return NA;
    };
    for (const PredApp &B : C.Body)
      NC.Body.push_back(FilterApp(B));
    if (C.Head)
      NC.Head = FilterApp(*C.Head);
    Out.addClause(std::move(NC));
  }
  return Out;
}

ChcSystem mucyc::preprocess(ChcSystem &Sys, PreprocessStats *Stats) {
  PreprocessStats S;
  S.ClausesBefore = Sys.clauses().size();

  ChcSystem Cur = Sys;
  bool Changed = true;
  size_t Round = 0;
  while (Changed) {
    Changed = false;
    for (PredId P = 0; P < Cur.numPreds(); ++P) {
      if (isRecursive(Cur, P))
        continue;
      // Cost heuristic: unfold only when it does not grow the clause count.
      size_t Defs = 0, Uses = 0;
      for (const Clause &C : Cur.clauses()) {
        if (C.Head && C.Head->Pred == P)
          ++Defs;
        for (const PredApp &B : C.Body)
          Uses += B.Pred == P ? 1 : 0;
      }
      if (Defs == 0 && Uses == 0)
        continue;
      if (Defs * Uses > Defs + Uses)
        continue;
      ChcSystem Next(Cur.ctx());
      for (PredId Q = 0; Q < Cur.numPreds(); ++Q)
        Next.addPred(Cur.pred(Q).Name + "!u" + std::to_string(Round),
                     Cur.pred(Q).ArgSorts);
      if (!unfoldPredicate(Cur, P, Next))
        continue;
      Cur = std::move(Next);
      ++S.PredsEliminated;
      ++Round;
      Changed = true;
      break;
    }
  }

  // Argument filtering to a fixpoint: erasing dead arguments can expose
  // more dead arguments.
  while (true) {
    size_t Filtered = 0;
    ChcSystem Next = filterArguments(Cur, &Filtered);
    S.ArgsFiltered += Filtered;
    Cur = std::move(Next);
    if (Filtered == 0)
      break;
  }

  S.ClausesAfter = Cur.clauses().size();
  if (Stats)
    *Stats = S;
  return Cur;
}
