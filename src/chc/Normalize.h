//===- chc/Normalize.h - Normalization to the paper's form ------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "mild condition" transformation of Section 2.1: any CHC system is
/// rewritten, preserving satisfiability, into
///
///     iota(z)  =>  P(z),
///     P(x) /\ P(y) /\ tau(x, y, z)  =>  P(z),
///     P(z) /\ beta(z)  =>  false,
///
/// with a single predicate P over a fixed tuple. The encoding:
///
///  * The combined state is [tag : Int, slots...] where the slots are the
///    concatenation of every original predicate's parameters. tag = 0 is a
///    distinguished always-reachable "unit" state used to binarize clauses
///    with fewer than two body atoms; intermediate tags are introduced to
///    fold clauses with more than two body atoms, carrying several
///    predicates' slot groups at once (the groups are disjoint, so a packed
///    pair needs no extra slots).
///  * Clause-local variables that cannot be expressed over the slots are
///    eliminated with (complete) quantifier elimination.
///
/// The least-model correspondence: a combined state (tag_p, ..., v_p, ...)
/// is reachable iff v_p is in the least model of the original system at
/// predicate p, so satisfiability is preserved in both directions, and a
/// solution of the normalized system projects back to one of the original.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_NORMALIZE_H
#define MUCYC_CHC_NORMALIZE_H

#include "chc/Chc.h"

namespace mucyc {

/// The paper's normalized system over variable tuples X, Y, Z of equal
/// sorts. Init and Bad are over Z; Trans is over X ++ Y ++ Z.
struct NormalizedChc {
  std::vector<VarId> X, Y, Z;
  TermRef Init;  ///< iota(z).
  TermRef Trans; ///< tau(x, y, z).
  TermRef Bad;   ///< beta(z); the assertion is alpha = not beta.

  /// Renames a Z-formula to the X tuple (or Y).
  TermRef zToX(TermContext &Ctx, TermRef F) const;
  TermRef zToY(TermContext &Ctx, TermRef F) const;
};

/// Result of normalization: the system plus the mapping needed to read a
/// solution of the normalized system back as a solution of the original.
struct NormalizeResult {
  NormalizedChc Sys;
  /// For each original predicate: the tag value and the slot positions of
  /// its parameters inside Z.
  struct PredLayout {
    int64_t Tag;
    std::vector<size_t> Slots;
  };
  std::map<PredId, PredLayout> Layout;

  /// Projects a solution formula phi(z) of the normalized system (an
  /// invariant containing Init and closed under Trans, disjoint from Bad)
  /// back to a ChcSolution of the original system.
  ChcSolution liftSolution(ChcSystem &Orig, TermRef PhiZ) const;
};

/// Normalizes an arbitrary CHC system. Requires at least one predicate.
NormalizeResult normalize(ChcSystem &Sys);

/// Builds a NormalizedChc directly from iota/tau/beta formulas over given
/// tuples (the fast path for systems authored in normal form).
NormalizedChc makeNormalized(TermContext &Ctx, std::vector<VarId> X,
                             std::vector<VarId> Y, std::vector<VarId> Z,
                             TermRef Init, TermRef Trans, TermRef Bad);

} // namespace mucyc

#endif // MUCYC_CHC_NORMALIZE_H
