//===- chc/Preprocess.h - CHC preprocessing ---------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preprocessing pipeline of Section 7.2: repeated resolution to
/// eliminate redundant predicate symbols, plus redundant-argument filtering
/// in the style of Leuschel & Sorensen (1997). Both transformations
/// preserve satisfiability; resolution additionally preserves solutions of
/// the remaining predicates.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_PREPROCESS_H
#define MUCYC_CHC_PREPROCESS_H

#include "chc/Chc.h"

namespace mucyc {

struct PreprocessStats {
  size_t PredsEliminated = 0;
  size_t ArgsFiltered = 0;
  size_t ClausesBefore = 0;
  size_t ClausesAfter = 0;
};

/// Unfolds a non-recursive predicate: every use of \p P in clause bodies is
/// replaced by the bodies of P's defining clauses (with fresh variables).
/// \returns false if P is recursive or is used in its own definition.
bool unfoldPredicate(ChcSystem &Sys, PredId P, ChcSystem &Out);

/// Applies the full pipeline: eliminate predicates whose unfolding does not
/// grow the system, then filter unused argument positions to a fixpoint.
ChcSystem preprocess(ChcSystem &Sys, PreprocessStats *Stats = nullptr);

/// Redundant-argument filtering only.
ChcSystem filterArguments(ChcSystem &Sys, size_t *NumFiltered = nullptr);

} // namespace mucyc

#endif // MUCYC_CHC_PREPROCESS_H
