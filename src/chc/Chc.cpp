//===- chc/Chc.cpp - Constrained Horn clause systems ----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Chc.h"

#include "smt/SmtSolver.h"

#include <algorithm>
#include <sstream>

using namespace mucyc;

PredId ChcSystem::addPred(const std::string &Name,
                          std::vector<Sort> ArgSorts) {
  assert(!findPred(Name) && "duplicate predicate name");
  Preds.push_back(PredDecl{Name, std::move(ArgSorts)});
  return static_cast<PredId>(Preds.size() - 1);
}

std::optional<PredId> ChcSystem::findPred(const std::string &Name) const {
  for (PredId P = 0; P < Preds.size(); ++P)
    if (Preds[P].Name == Name)
      return P;
  return std::nullopt;
}

void ChcSystem::addClause(Clause C) {
#ifndef NDEBUG
  auto CheckApp = [&](const PredApp &App) {
    assert(App.Pred < Preds.size() && "unknown predicate");
    const PredDecl &D = Preds[App.Pred];
    assert(App.Args.size() == D.ArgSorts.size() && "arity mismatch");
    for (size_t I = 0; I < App.Args.size(); ++I)
      assert(Ctx->sort(App.Args[I]) == D.ArgSorts[I] && "arg sort mismatch");
  };
  for (const PredApp &App : C.Body)
    CheckApp(App);
  if (C.Head)
    CheckApp(*C.Head);
  assert(Ctx->sort(C.Constraint) == Sort::Bool);
#endif
  Clauses.push_back(std::move(C));
}

bool ChcSystem::isLinear() const {
  return std::all_of(Clauses.begin(), Clauses.end(),
                     [](const Clause &C) { return C.isLinear(); });
}

std::vector<std::vector<PredId>> ChcSystem::dependencyGraph() const {
  std::vector<std::vector<PredId>> G(Preds.size());
  for (const Clause &C : Clauses) {
    if (!C.Head)
      continue;
    for (const PredApp &B : C.Body) {
      auto &Out = G[C.Head->Pred];
      if (std::find(Out.begin(), Out.end(), B.Pred) == Out.end())
        Out.push_back(B.Pred);
    }
  }
  return G;
}

TermRef mucyc::applyDef(TermContext &Ctx, const PredDef &Def,
                        const PredApp &App) {
  assert(Def.Params.size() == App.Args.size() && "arity mismatch");
  std::unordered_map<VarId, TermRef> Map;
  for (size_t I = 0; I < Def.Params.size(); ++I)
    Map.emplace(Def.Params[I], App.Args[I]);
  return Ctx.substitute(Def.Body, Map);
}

TermRef ChcSystem::clauseFormula(const Clause &C,
                                 const ChcSolution &Sol) const {
  std::vector<TermRef> Ante{C.Constraint};
  for (const PredApp &B : C.Body) {
    auto It = Sol.find(B.Pred);
    assert(It != Sol.end() && "solution misses a predicate");
    Ante.push_back(applyDef(*Ctx, It->second, B));
  }
  TermRef Lhs = Ctx->mkAnd(std::move(Ante));
  TermRef Rhs = Ctx->mkFalse();
  if (C.Head) {
    auto It = Sol.find(C.Head->Pred);
    assert(It != Sol.end() && "solution misses the head predicate");
    Rhs = applyDef(*Ctx, It->second, *C.Head);
  }
  return Ctx->mkImplies(Lhs, Rhs);
}

bool ChcSystem::checkSolution(const ChcSolution &Sol,
                              std::string *WhyNot) const {
  for (size_t I = 0; I < Clauses.size(); ++I) {
    TermRef F = clauseFormula(Clauses[I], Sol);
    if (auto M = SmtSolver::quickCheck(*Ctx, {Ctx->mkNot(F)})) {
      if (WhyNot)
        *WhyNot = "solution falsifies clause #" + std::to_string(I) +
                  " [" + clauseToString(I) + "] at " + M->toString(*Ctx);
      return false;
    }
  }
  return true;
}

std::string ChcSystem::clauseToString(size_t Idx) const {
  assert(Idx < Clauses.size() && "clause index out of range");
  const Clause &C = Clauses[Idx];
  std::ostringstream OS;
  auto PrintApp = [&](const PredApp &App) {
    OS << Preds[App.Pred].Name << "(";
    for (size_t I = 0; I < App.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Ctx->toString(App.Args[I]);
    }
    OS << ")";
  };
  bool First = true;
  for (const PredApp &B : C.Body) {
    if (!First)
      OS << " /\\ ";
    First = false;
    PrintApp(B);
  }
  if (Ctx->kind(C.Constraint) != Kind::True || C.Body.empty()) {
    if (!First)
      OS << " /\\ ";
    OS << Ctx->toString(C.Constraint);
  }
  OS << " => ";
  if (C.Head)
    PrintApp(*C.Head);
  else
    OS << "false";
  return OS.str();
}

std::string ChcSystem::toString() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Clauses.size(); ++I)
    OS << clauseToString(I) << "\n";
  return OS.str();
}
