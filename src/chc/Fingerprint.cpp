//===- chc/Fingerprint.cpp - Canonical system fingerprints ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

using namespace mucyc;

namespace {

/// One 64-bit mixing lane (splitmix-style finalizer over an accumulator).
/// Two lanes with different round constants make up the 128-bit digest.
struct Lane {
  uint64_t H;
  uint64_t C1, C2;

  void mix(uint64_t V) {
    H += V + C1;
    H = (H ^ (H >> 30)) * C2;
    H ^= H >> 27;
  }
};

/// Per-call hashing state: canonical variable codes plus a DAG memo per
/// lane pair (memoized on TermRef, which is stable within one context).
class Hasher {
public:
  Hasher(const TermContext &Ctx, const NormalizedChc &N) : Ctx(Ctx) {
    auto Code = [&](const std::vector<VarId> &Tuple, uint64_t Role) {
      for (size_t I = 0; I < Tuple.size(); ++I)
        VarCode.emplace(Tuple[I], (Role << 32) | static_cast<uint64_t>(I));
    };
    Code(N.X, 1);
    Code(N.Y, 2);
    Code(N.Z, 3);
  }

  /// 128-bit hash of one formula, canonical as described in the header.
  std::pair<uint64_t, uint64_t> formula(TermRef T) {
    auto It = Memo.find(T.Idx);
    if (It != Memo.end())
      return It->second;
    const TermNode &N = Ctx.node(T);
    Lane A{0x243f6a8885a308d3ull, 0x9e3779b97f4a7c15ull,
           0xbf58476d1ce4e5b9ull};
    Lane B{0x13198a2e03707344ull, 0xc2b2ae3d27d4eb4full,
           0x94d049bb133111ebull};
    auto Mix = [&](uint64_t V) {
      A.mix(V);
      B.mix(~V * 0x2545f4914f6cdd1dull);
    };
    Mix(static_cast<uint64_t>(N.K));
    Mix(static_cast<uint64_t>(N.S));
    switch (N.K) {
    case Kind::Var:
      Mix(varCode(N.Var));
      break;
    case Kind::Const:
    case Kind::Mul:
    case Kind::Divides:
      // Rationals hash via their canonical decimal rendering — BigInt
      // magnitudes exceed any fixed-width payload.
      Mix(strHash(N.Val.num().toString()));
      Mix(strHash(N.Val.den().toString()));
      break;
    default:
      break;
    }
    bool Commutative =
        N.K == Kind::And || N.K == Kind::Or || N.K == Kind::Add;
    std::vector<std::pair<uint64_t, uint64_t>> Kids;
    Kids.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      Kids.push_back(formula(Kid));
    if (Commutative)
      std::sort(Kids.begin(), Kids.end());
    for (const auto &[KH, KL] : Kids) {
      Mix(KH);
      Mix(KL);
    }
    Mix(N.Kids.size());
    auto R = std::make_pair(A.H, B.H);
    Memo.emplace(T.Idx, R);
    return R;
  }

private:
  uint64_t varCode(VarId V) {
    auto It = VarCode.find(V);
    if (It != VarCode.end())
      return It->second;
    // Stray free variable: deterministic first-occurrence numbering in
    // traversal order (the traversal itself is deterministic).
    uint64_t C = (4ull << 32) | NextStray++;
    VarCode.emplace(V, C);
    return C;
  }

  static uint64_t strHash(const std::string &S) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ull;
    }
    return H;
  }

  const TermContext &Ctx;
  std::unordered_map<VarId, uint64_t> VarCode;
  std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>> Memo;
  uint64_t NextStray = 0;
};

} // namespace

std::string ChcFingerprint::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

ChcFingerprint mucyc::fingerprintNormalized(const TermContext &Ctx,
                                            const NormalizedChc &N) {
  Hasher H(Ctx, N);
  Lane A{0xa4093822299f31d0ull, 0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull};
  Lane B{0x082efa98ec4e6c89ull, 0xc2b2ae3d27d4eb4full, 0x94d049bb133111ebull};
  auto Mix = [&](uint64_t V) {
    A.mix(V);
    B.mix(V * 0xff51afd7ed558ccdull + 1);
  };
  // The tuple signature: length and slot sorts (shared by X/Y/Z).
  Mix(N.Z.size());
  for (VarId V : N.Z)
    Mix(static_cast<uint64_t>(Ctx.varInfo(V).S) + 11);
  for (TermRef F : {N.Init, N.Trans, N.Bad}) {
    auto [FH, FL] = H.formula(F);
    Mix(FH);
    Mix(FL);
  }
  return ChcFingerprint{A.H, B.H};
}
