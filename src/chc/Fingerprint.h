//===- chc/Fingerprint.h - Canonical system fingerprints --------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit structural fingerprint of a NormalizedChc, canonical under
/// alpha-renaming: two parses of the same system that differ only in
/// predicate or variable names (and hence in VarIds and interning order)
/// produce equal fingerprints, while structurally different systems produce
/// distinct ones with overwhelming probability. This is the key of the
/// disk-backed result store — under heavy service traffic, identical or
/// renamed resubmissions are the common case, and the fingerprint is what
/// lets them short-circuit to a cached, re-verified certificate.
///
/// Canonicalization: variables are identified by their position in the
/// X/Y/Z tuples (role, index) rather than by VarId or name; stray free
/// variables (none are expected) fall back to deterministic first-occurrence
/// numbering. Commutative connectives (and/or/+) hash order-insensitively,
/// so interning-order differences between contexts cannot leak in. A
/// fingerprint collision can only cause a spurious cache miss or a failed
/// certificate re-verification — never a wrong answer — because every
/// served certificate is re-checked against the *actual* submitted system.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_FINGERPRINT_H
#define MUCYC_CHC_FINGERPRINT_H

#include "chc/Normalize.h"

#include <string>

namespace mucyc {

/// 128-bit fingerprint, two independently mixed 64-bit lanes.
struct ChcFingerprint {
  uint64_t Hi = 0, Lo = 0;

  bool operator==(const ChcFingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const ChcFingerprint &O) const { return !(*this == O); }

  /// 32 lowercase hex digits; the result-store file name.
  std::string hex() const;
};

/// Fingerprints \p N (which must live in \p Ctx). Pure function of the
/// system's structure: deterministic across processes and machines.
ChcFingerprint fingerprintNormalized(const TermContext &Ctx,
                                     const NormalizedChc &N);

} // namespace mucyc

#endif // MUCYC_CHC_FINGERPRINT_H
