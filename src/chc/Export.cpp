//===- chc/Export.cpp - Re-exporting normalized systems -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Export.h"

#include "chc/Parser.h"

using namespace mucyc;

ChcSystem mucyc::chcFromNormalized(TermContext &Ctx, const NormalizedChc &N,
                                   const std::string &PredName) {
  ChcSystem Sys(Ctx);
  std::vector<Sort> Sorts;
  for (VarId V : N.Z)
    Sorts.push_back(Ctx.varInfo(V).S);
  PredId P = Sys.addPred(PredName, Sorts);

  auto Tuple = [&](const std::vector<VarId> &Vars) {
    std::vector<TermRef> Args;
    for (VarId V : Vars)
      Args.push_back(Ctx.varTerm(V));
    return Args;
  };

  // iota(z) => P(z).
  Clause Init;
  Init.Constraint = N.Init;
  Init.Head = PredApp{P, Tuple(N.Z)};
  Sys.addClause(Init);

  // P(x) /\ P(y) /\ tau(x, y, z) => P(z).
  Clause Step;
  Step.Body.push_back(PredApp{P, Tuple(N.X)});
  Step.Body.push_back(PredApp{P, Tuple(N.Y)});
  Step.Constraint = N.Trans;
  Step.Head = PredApp{P, Tuple(N.Z)};
  Sys.addClause(Step);

  // P(z) /\ beta(z) => false.
  Clause Query;
  Query.Body.push_back(PredApp{P, Tuple(N.Z)});
  Query.Constraint = N.Bad;
  Sys.addClause(Query);
  return Sys;
}

std::string mucyc::exportSmtLib(TermContext &Ctx, const NormalizedChc &N,
                                const std::string &PredName) {
  ChcSystem Sys = chcFromNormalized(Ctx, N, PredName);
  return printSmtLib(Sys);
}
