//===- chc/Export.cpp - Re-exporting normalized systems -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Export.h"

#include "chc/Parser.h"

#include <sstream>
#include <unordered_map>

using namespace mucyc;

ChcSystem mucyc::chcFromNormalized(TermContext &Ctx, const NormalizedChc &N,
                                   const std::string &PredName) {
  ChcSystem Sys(Ctx);
  std::vector<Sort> Sorts;
  for (VarId V : N.Z)
    Sorts.push_back(Ctx.varInfo(V).S);
  PredId P = Sys.addPred(PredName, Sorts);

  auto Tuple = [&](const std::vector<VarId> &Vars) {
    std::vector<TermRef> Args;
    for (VarId V : Vars)
      Args.push_back(Ctx.varTerm(V));
    return Args;
  };

  // iota(z) => P(z).
  Clause Init;
  Init.Constraint = N.Init;
  Init.Head = PredApp{P, Tuple(N.Z)};
  Sys.addClause(Init);

  // P(x) /\ P(y) /\ tau(x, y, z) => P(z).
  Clause Step;
  Step.Body.push_back(PredApp{P, Tuple(N.X)});
  Step.Body.push_back(PredApp{P, Tuple(N.Y)});
  Step.Constraint = N.Trans;
  Step.Head = PredApp{P, Tuple(N.Z)};
  Sys.addClause(Step);

  // P(z) /\ beta(z) => false.
  Clause Query;
  Query.Body.push_back(PredApp{P, Tuple(N.Z)});
  Query.Constraint = N.Bad;
  Sys.addClause(Query);
  return Sys;
}

std::string mucyc::exportSmtLib(TermContext &Ctx, const NormalizedChc &N,
                                const std::string &PredName) {
  ChcSystem Sys = chcFromNormalized(Ctx, N, PredName);
  return printSmtLib(Sys);
}

//===----------------------------------------------------------------------===
// Alpha-canonical Z-formula wire format
//===----------------------------------------------------------------------===

std::string mucyc::serializeZFormula(TermContext &Ctx, const NormalizedChc &N,
                                     TermRef Phi) {
  // Substitute the Z tuple by canonically named variables so the rendering
  // is independent of the producing context's naming history.
  std::unordered_map<VarId, TermRef> Map;
  for (size_t I = 0; I < N.Z.size(); ++I) {
    TermRef V = Ctx.mkVar("mz" + std::to_string(I), Ctx.varInfo(N.Z[I]).S);
    Map.emplace(N.Z[I], V);
  }
  return Ctx.toString(Ctx.substitute(Phi, Map));
}

TermRef mucyc::parseZFormula(TermContext &Ctx, const NormalizedChc &N,
                             const std::string &Text, std::string *Err) {
  // Reuse the HORN parser by wrapping the formula as the constraint of a
  // synthetic clause  (=> <phi> (mucycCert mz0 ... mzN))  — the parsed
  // clause hands back the canonicalized formula and the binder variables in
  // tuple order, which we then substitute by the requester's actual Z.
  std::ostringstream Script;
  Script << "(set-logic HORN)\n(declare-fun mucycCert (";
  for (size_t I = 0; I < N.Z.size(); ++I)
    Script << (I ? " " : "") << sortName(Ctx.varInfo(N.Z[I]).S);
  Script << ") Bool)\n(assert (forall (";
  for (size_t I = 0; I < N.Z.size(); ++I)
    Script << (I ? " " : "") << "(mz" << I << " "
           << sortName(Ctx.varInfo(N.Z[I]).S) << ")";
  Script << ")\n  (=> " << Text << " (mucycCert";
  for (size_t I = 0; I < N.Z.size(); ++I)
    Script << " mz" << I;
  Script << "))))\n";

  ParseResult PR = parseChc(Ctx, Script.str());
  if (!PR.Ok || PR.System->clauses().size() != 1) {
    if (Err)
      *Err = "formula does not parse: " +
             (PR.Ok ? std::string("unexpected clause shape") : PR.Error);
    return TermRef();
  }
  const Clause &C = PR.System->clauses()[0];
  if (!C.Head || C.Head->Args.size() != N.Z.size() || !C.Body.empty()) {
    if (Err)
      *Err = "formula clause has the wrong shape";
    return TermRef();
  }
  std::unordered_map<VarId, TermRef> Map;
  for (size_t I = 0; I < N.Z.size(); ++I) {
    const TermNode &Arg = Ctx.node(C.Head->Args[I]);
    if (Arg.K != Kind::Var) {
      if (Err)
        *Err = "formula head argument is not a variable";
      return TermRef();
    }
    Map.emplace(Arg.Var, Ctx.varTerm(N.Z[I]));
  }
  return Ctx.substitute(C.Constraint, Map);
}
