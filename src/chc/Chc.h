//===- chc/Chc.h - Constrained Horn clause systems --------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constrained Horn clauses (Section 2.1 of the paper): clauses
///     P1(t1) /\ ... /\ Pn(tn) /\ phi  =>  Q(s)      (definite)
///     P1(t1) /\ ... /\ Pn(tn) /\ phi  =>  false     (query)
/// over a constraint language of quantifier-free Bool+LIA+LRA formulas.
/// A solution assigns each predicate a formula over its parameters making
/// every clause valid; the satisfiability problem asks whether one exists.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_CHC_H
#define MUCYC_CHC_CHC_H

#include "term/Term.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mucyc {

using PredId = uint32_t;

/// Declared (uninterpreted) predicate symbol.
struct PredDecl {
  std::string Name;
  std::vector<Sort> ArgSorts;
};

/// An application P(t1, ..., tk) of a predicate to terms.
struct PredApp {
  PredId Pred;
  std::vector<TermRef> Args;
};

/// One constrained Horn clause. Head is empty for query clauses (=> false).
struct Clause {
  std::vector<PredApp> Body;
  TermRef Constraint;
  std::optional<PredApp> Head;

  bool isQuery() const { return !Head.has_value(); }
  bool isFact() const { return Body.empty() && Head.has_value(); }
  /// Linear in the paper's sense: at most one body atom.
  bool isLinear() const { return Body.size() <= 1; }
};

/// Interpretation of one predicate: a formula over its parameter variables.
struct PredDef {
  std::vector<VarId> Params;
  TermRef Body;
};

/// A candidate solution: interpretations for every predicate.
using ChcSolution = std::map<PredId, PredDef>;

/// A CHC system over a shared TermContext.
class ChcSystem {
public:
  explicit ChcSystem(TermContext &Ctx) : Ctx(&Ctx) {}

  TermContext &ctx() const { return *Ctx; }

  PredId addPred(const std::string &Name, std::vector<Sort> ArgSorts);
  const PredDecl &pred(PredId P) const { return Preds[P]; }
  size_t numPreds() const { return Preds.size(); }
  std::optional<PredId> findPred(const std::string &Name) const;

  void addClause(Clause C);
  const std::vector<Clause> &clauses() const { return Clauses; }

  /// True if every clause is linear.
  bool isLinear() const;

  /// Predicate dependency edges: head -> body (P depends on Q when some
  /// clause has head P and Q in the body), per Section 3.1.
  std::vector<std::vector<PredId>> dependencyGraph() const;

  /// Instantiates the clause as the Boolean formula
  ///   body-interpretations /\ constraint => head-interpretation
  /// under \p Sol, returning the implication whose validity must hold.
  TermRef clauseFormula(const Clause &C, const ChcSolution &Sol) const;

  /// Checks that \p Sol makes every clause valid (SMT-backed). On failure,
  /// \p WhyNot (when non-null) receives a diagnostic naming the offending
  /// clause by index and text, with the falsifying assignment.
  bool checkSolution(const ChcSolution &Sol,
                     std::string *WhyNot = nullptr) const;

  /// Renders clause \p Idx in the body => head notation used by
  /// diagnostics.
  std::string clauseToString(size_t Idx) const;

  std::string toString() const;

private:
  TermContext *Ctx;
  std::vector<PredDecl> Preds;
  std::vector<Clause> Clauses;
};

/// Substitutes a predicate definition at an application site:
/// Def.Body[Params := App.Args].
TermRef applyDef(TermContext &Ctx, const PredDef &Def, const PredApp &App);

} // namespace mucyc

#endif // MUCYC_CHC_CHC_H
