//===- chc/Export.h - Re-exporting normalized systems -----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse direction of normalization: a NormalizedChc (the paper's
/// {iota => P, P /\ P /\ tau => P, P /\ beta => false} form) rendered back
/// as a three-clause ChcSystem, and from there as SMT-LIB2 HORN text. Used
/// to materialize the benchmark suite as .smt2 files and to round-trip the
/// frontend in tests.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_EXPORT_H
#define MUCYC_CHC_EXPORT_H

#include "chc/Normalize.h"

namespace mucyc {

/// Builds the explicit three-clause system for \p N over a predicate named
/// \p PredName.
ChcSystem chcFromNormalized(TermContext &Ctx, const NormalizedChc &N,
                            const std::string &PredName = "P");

/// Renders \p N as SMT-LIB2 HORN text.
std::string exportSmtLib(TermContext &Ctx, const NormalizedChc &N,
                         const std::string &PredName = "P");

} // namespace mucyc

#endif // MUCYC_CHC_EXPORT_H
