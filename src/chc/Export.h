//===- chc/Export.h - Re-exporting normalized systems -----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse direction of normalization: a NormalizedChc (the paper's
/// {iota => P, P /\ P /\ tau => P, P /\ beta => false} form) rendered back
/// as a three-clause ChcSystem, and from there as SMT-LIB2 HORN text. Used
/// to materialize the benchmark suite as .smt2 files and to round-trip the
/// frontend in tests.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_EXPORT_H
#define MUCYC_CHC_EXPORT_H

#include "chc/Normalize.h"

namespace mucyc {

/// Builds the explicit three-clause system for \p N over a predicate named
/// \p PredName.
ChcSystem chcFromNormalized(TermContext &Ctx, const NormalizedChc &N,
                            const std::string &PredName = "P");

/// Renders \p N as SMT-LIB2 HORN text.
std::string exportSmtLib(TermContext &Ctx, const NormalizedChc &N,
                         const std::string &PredName = "P");

//===----------------------------------------------------------------------===
// Alpha-canonical Z-formula wire format
//===----------------------------------------------------------------------===
//
// Z-formulas (certificates, frame lemmas) rendered over the canonical
// variable names mz0..mzN, so two TermContexts that normalized the same
// system — byte-identical or alpha-renamed, same fingerprint — can exchange
// formulas as text regardless of their private naming histories. The result
// store and the portfolio lemma exchange both speak this format.

/// Renders \p Phi (a Z-formula of \p N) over the canonical names mz0..mzN,
/// independent of the context's own names.
std::string serializeZFormula(TermContext &Ctx, const NormalizedChc &N,
                              TermRef Phi);

/// Parses a serializeZFormula() rendering back into a Z-formula of \p N in
/// \p Ctx. Returns an invalid TermRef and fills \p Err on malformed text —
/// the exchange and the store must never trust a peer's bytes.
TermRef parseZFormula(TermContext &Ctx, const NormalizedChc &N,
                      const std::string &Text, std::string *Err);

} // namespace mucyc

#endif // MUCYC_CHC_EXPORT_H
