//===- chc/Parser.h - SMT-LIB2 HORN frontend --------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the SMT-LIB2 subset used by CHC-COMP benchmarks:
/// (set-logic HORN), (declare-fun P (sorts) Bool), and assertions of the
/// forms
///     (assert (forall (vars) (=> body head)))
///     (assert (forall (vars) head))            ; facts
///     (assert (=> body head)), (assert head)   ; ground clauses
/// where head is a predicate application or false, and body is a
/// conjunction of predicate applications and constraints. Supports let,
/// and/or/not/=>/ite, =, <=, <, >=, >, +, -, *, div-free LIA/LRA literals,
/// and Bool/Int/Real sorts.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_CHC_PARSER_H
#define MUCYC_CHC_PARSER_H

#include "chc/Chc.h"

namespace mucyc {

/// Result of parsing; Error is empty on success.
struct ParseResult {
  bool Ok = false;
  std::string Error;
  /// Valid when Ok.
  std::optional<ChcSystem> System;
};

/// Parses SMT-LIB2 HORN text into a CHC system over \p Ctx.
ParseResult parseChc(TermContext &Ctx, const std::string &Text);

/// Renders a CHC system back to SMT-LIB2 HORN (round-trip printable).
std::string printSmtLib(const ChcSystem &Sys);

} // namespace mucyc

#endif // MUCYC_CHC_PARSER_H
