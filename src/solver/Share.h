//===- solver/Share.h - Cooperative lemma exchange --------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine side of the portfolio lemma exchange. Racing members learn
/// the same frame lemmas from scratch; this protocol lets them cooperate
/// without trusting each other:
///
///  * Publish: a Conflict lemma justified by the valid implication
///    A => Lemma is first core-minimized against A (deletion-based, via
///    SmtSolver::minimizeCore — dropping disjuncts keeps A => Lemma' valid
///    and only strengthens the lemma), then serialized over the
///    alpha-canonical mz names (chc/Export.h) and pushed onto the bus.
///
///  * Import: at frame boundaries a member fetches peers' lemmas, parses
///    them into its own TermContext and re-checks, in its own frames, the
///    exact side conditions that justify a native Conflict lemma before
///    admitting one — reject means drop; the publisher is never trusted.
///    For a lemma targeted at level k (root = 0, deeper = closer to iota):
///
///      (a)  iota(z) => L(z), and
///      (b)  frame(k+1)(x) /\ frame(k+1)(y) /\ tau(x,y,z) => L(z),
///
///    which is precisely A => L for the Conflict justification
///    A = iota \/ (frame(k+1) /\ frame(k+1) /\ tau). A lemma that passes
///    (a) but not (b) at its target level is still admissible at the
///    deepest level: the deepest frame/cell is constrained by iota alone
///    (unfolding inserts fresh roots, so the deepest stays deepest), and
///    later boundaries can justify shallower placements as frames
///    strengthen. Under Mon(...) traces additionally maintain
///    cell[d+1] => cell[d], so imports there only admit lemmas that are
///    inductive on their own — iota => L and L /\ L /\ tau => L — which
///    may soundly be conjoined to every cell at once.
///
/// The bus itself (LemmaChannel) is abstract here and implemented by
/// runtime/Exchange.h: the runtime layers above the solver, never the
/// reverse, so the engines see only this interface — the same discipline
/// as the raw cancel-flag pointer on SolverOptions.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_SHARE_H
#define MUCYC_SOLVER_SHARE_H

#include "solver/Engine.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mucyc {

/// One exchanged frame lemma: the target level (root = 0, deeper toward
/// iota — a placement hint, never trusted) and the Z-formula rendered over
/// the canonical mz names.
struct SharedLemma {
  int Level = 0;
  std::string Text;
};

/// The concurrent lemma bus as the engines see it. Implemented by
/// runtime/Exchange.h (LemmaExchange); SolverOptions carries a per-member
/// port as a raw pointer that must outlive the run. Thread-safe.
class LemmaChannel {
public:
  virtual ~LemmaChannel() = default;

  /// Publishes one lemma to every other member.
  virtual void publish(int Level, const std::string &Text) = 0;

  /// Appends to \p Out up to \p Max entries published by OTHER members
  /// after \p Cursor, and returns the advanced cursor. The cursor is owned
  /// by the importer (it resets with each fresh attempt), so a retried
  /// member re-reads the full log.
  virtual uint64_t fetch(uint64_t Cursor, unsigned Max,
                         std::vector<SharedLemma> &Out) const = 0;
};

/// Publishes \p Lemma, a frame lemma at \p Level justified by the valid
/// implication \p A => \p Lemma (the Conflict step's unsat query), after
/// core-minimizing its disjuncts against A. No-op when sharing is off.
/// Minimization probes are counted into Stats.SmtChecks and the literals
/// dropped into Stats.CoreShrink.
void sharePublishLemma(EngineContext &E, int Level, TermRef A, TermRef Lemma);

/// Which admission regime shareImportRound runs.
enum class ShareImportMode {
  /// Checks (a) + (b) against the live frame at the target level, with the
  /// deepest-level fallback. For SpacerTs frames and plain traces.
  FrameRelative,
  /// Checks (a) + self-inductiveness (L /\ L /\ tau => L); admitted lemmas
  /// are handed to AddFn with level 0 to be conjoined monotonically to
  /// every cell. For Mon(...) traces.
  Inductive,
};

/// One import round at a frame boundary. \p Depth is the deepest level
/// index (frames/cells exist for 0..Depth); \p FrameFn returns the frame
/// formula at a level in that range; \p AddFn installs an admitted lemma at
/// a level (for SpacerTs: addLemma, which also strengthens deeper frames —
/// sound because the maintained chain phi_{i+1} => phi_i makes the level-k
/// justification cover every deeper frame). Fetches at most
/// Opts.ShareImportBudget lemmas; admissions re-check in this member's
/// context and count Imported/Rejected. Returns early when the context
/// aborts (budget/cancel). No-op when sharing is off or Depth < 0.
void shareImportRound(EngineContext &E, ShareImportMode Mode, int Depth,
                      const std::function<TermRef(int)> &FrameFn,
                      const std::function<void(int, TermRef)> &AddFn);

} // namespace mucyc

#endif // MUCYC_SOLVER_SHARE_H
