//===- solver/Trace.h - Traces of approximations ----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace (Section 3.2) is an assignment of formulas to the nodes of the
/// k-th approximation S^(k) satisfying every constraint except the root
/// assertion. mucyc always uses predicate sharing (Section 5.3 / 7.1): all
/// nodes at the same depth share one cell, so the trace is a vector of
/// cells indexed by depth from the root; the subtraces Phi_L and Phi_R of a
/// view rooted at depth d are both the view rooted at d+1.
///
/// Cells store sets of conjunct lemmas over the Z tuple. Invariants
/// maintained by the refinement engines:
///   iota(z) => cell[d](z)                                 for all d,
///   cell[d+1](x) /\ cell[d+1](y) /\ tau(x,y,z) => cell[d](z).
/// In monotone mode additionally cell[d+1] => cell[d].
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_TRACE_H
#define MUCYC_SOLVER_TRACE_H

#include "term/Term.h"

#include <deque>
#include <set>
#include <vector>

namespace mucyc {

/// Level-shared trace for the current approximation depth.
class Trace {
public:
  explicit Trace(TermContext &Ctx) : Ctx(&Ctx) {}

  /// Deepest level index; the trace has cells for levels 0..depth(). A
  /// freshly constructed trace has depth -1 (empty dom).
  int depth() const { return static_cast<int>(Cells.size()) - 1; }

  /// Algorithm 2 line 4: pushes a fresh top-true root; old level d becomes
  /// level d+1.
  void unfold() { Cells.emplace_front(); }

  /// Formula of the cell at \p Level (conjunction of its lemmas).
  TermRef formula(int Level) const;

  /// Lemmas of a cell.
  const std::vector<TermRef> &lemmas(int Level) const {
    assert(Level >= 0 && Level <= depth());
    return Cells[Level].Lemmas;
  }

  /// Conjoins \p Lemma to the cell at \p Level; with \p Monotone, also to
  /// every deeper cell (keeping cell[d+1] => cell[d]).
  void strengthen(int Level, TermRef Lemma, bool Monotone = false);

  /// Replaces the cell at \p Level with the conjuncts of \p F (used by the
  /// Conflict step, which recomputes the root formula as an interpolant).
  void replaceCell(int Level, TermRef F);

  /// True if cell[Level] syntactically contains every lemma of
  /// cell[Level+1] (quick monotonicity witness used by invariant checks).
  bool lemmaCount(int Level) const { return Cells[Level].Lemmas.size(); }

private:
  struct Cell {
    std::vector<TermRef> Lemmas;
    std::set<TermRef> Present;
  };

  TermContext *Ctx;
  std::deque<Cell> Cells;
};

} // namespace mucyc

#endif // MUCYC_SOLVER_TRACE_H
