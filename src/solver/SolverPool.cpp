//===- solver/SolverPool.cpp - Incremental solver reuse -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverPool.h"

using namespace mucyc;

SmtSolver &SolverPool::solverFor(TermRef Base) {
  uint32_t Key = Base.isValid() ? Base.Idx : UINT32_MAX;
  std::unique_ptr<SmtSolver> &Slot = Pool[Key];
  if (Slot && AtomLimit && Slot->numAtoms() > AtomLimit) {
    Slot.reset();
    ++Retires;
  }
  if (!Slot) {
    Slot = std::make_unique<SmtSolver>(Ctx);
    if (Base.isValid())
      Slot->assertFormula(Base);
  }
  return *Slot;
}

SolverPool::Result SolverPool::check(TermRef Base,
                                     const std::vector<TermRef> &Rest,
                                     const std::atomic<bool> *Cancel) {
  SmtSolver &S = solverFor(Base);
  S.setCancelFlag(Cancel);
  Result R;
  R.St = S.check(Rest);
  if (R.St == SmtStatus::Sat)
    R.M = S.model();
  return R;
}
