//===- solver/Options.h - Solver configuration ------------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration space of the paper's Section 7: engines Ret (Algorithm 5),
/// Yld (Algorithm 6), the Spacer abstract transition system (Fig. 1 /
/// Fig. 15), and the Solve baseline; counterexample methods QE / MBP(n) /
/// Model; and the optimizations Ind / Cex / Que / Mon of Section 5.3.
/// Configuration names follow the paper, e.g. "Ind(Yld(T,MBP(1)))".
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_OPTIONS_H
#define MUCYC_SOLVER_OPTIONS_H

#include "itp/Interpolate.h"
#include "mbp/Mbp.h"
#include "support/Fault.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mucyc {

class LemmaChannel;

enum class EngineKind {
  Ret,      ///< Algorithm 5 (IndSpacer, early return).
  Yld,      ///< Algorithm 6 (coroutine with yield).
  Naive,    ///< Algorithm 3 (quantifier elimination).
  NaiveMbp, ///< Algorithm 4 (MBP with full counterexample computation).
  SpacerTs, ///< Fig. 1 / Fig. 15 abstract transition system.
  Solve,    ///< Unno-Kobayashi-style unroll-and-check baseline.
};

/// How projections are computed; mirrors the paper's cex parameter.
enum class CexMethod {
  Mbp,   ///< Proper model-based projection (image-finite).
  Model, ///< GPDR's model diagram (not image-finite; Remark 17).
  Qe,    ///< Example 3: full QE, pick the satisfied disjunct.
};

/// Where a solve job executes relative to the calling process.
enum class IsolateMode : uint8_t {
  /// In-process (the historical path). Byte-reproducible; a native crash
  /// takes the process down.
  None,
  /// The cold engine run forks into a sandboxed worker child; the warm
  /// store probe, certificate verification and store admission stay in the
  /// parent. A worker death degrades to a typed Unknown and feeds the
  /// retry ladder.
  Crash,
  /// The entire request (including a private disk-tier store probe) runs
  /// in the child; the parent only relays. Maximum blast-radius
  /// containment, no shared in-memory warm tier.
  Always,
};

const char *isolateModeName(IsolateMode M);
std::optional<IsolateMode> parseIsolateMode(const std::string &S);

struct SolverOptions {
  EngineKind Engine = EngineKind::Ret;
  CexMethod Cex = CexMethod::Mbp;

  /// MBP(n): 0 = use the live frame/query in projection arguments (loses
  /// refutational completeness), 1 = snapshot with the Remark 16 refresh,
  /// 2 = strict snapshot.
  int MbpMode = 1;

  /// Ret(b, _): enable counterexample accumulation (line 11 of Alg. 5).
  bool Accumulate = true;
  /// Yld(b, _): enable query weakening via interpolation (lines 21/23 of
  /// Alg. 6).
  bool QueryWeaken = true;

  // Section 5.3 optimizations.
  bool OptInduction = false;
  bool OptCexShare = false;
  bool OptQueryReuse = false;
  bool OptMonotone = false;

  /// Fig. 15 variant of the transition system (projection arguments without
  /// the frame / query, still with cumulative U). Only for SpacerTs.
  bool SpacerFig15 = false;
  /// Manage the under-approximation U by level as in the original Spacer
  /// (Komuravelli et al. 2014/2016) rather than cumulatively.
  bool SpacerULevels = false;

  ItpMode Itp = ItpMode::CubeGeneralize;

  /// Resource limits (0 = unlimited).
  uint64_t TimeoutMs = 0;
  int MaxDepth = 0;
  uint64_t MaxRefineSteps = 0;

  /// Cooperative memory budget in MiB (0 = unlimited), metered as
  /// cumulative allocation by a per-attempt ResourceGauge over term
  /// interning, CDCL clause growth, and simplex tableau rows. A trip
  /// surfaces as a ResourceExhaustedMemory ErrorInfo on the result — the
  /// recoverable shape the runtime retry ladder degrades on. Never
  /// serialized by name()/parse().
  uint64_t MemLimitMb = 0;

  /// Scheduler-level recovery: a job whose result carries a recoverable
  /// error (errorRecoverable()) is re-run up to this many times with
  /// degraded configurations (see runtime/Recover.h). 0 = fail fast. Never
  /// serialized by name()/parse().
  unsigned MaxRetries = 0;

  /// Deterministic chaos seed: when nonzero (and Faults is null),
  /// ChcSolver::solve derives a FaultInjector from it for the attempt.
  /// Never serialized by name()/parse().
  uint64_t ChaosSeed = 0;

  /// Explicit fault injector for this run; overrides ChaosSeed. One
  /// injector per job: counters are monotone across retries, so reusing the
  /// instance makes injected faults transient. Never serialized by
  /// name()/parse().
  FaultInjector *Faults = nullptr;

  /// Cooperative cancellation (see runtime/Cancel.h): when non-null, the
  /// engine loops and the SMT/simplex substrates poll this flag and wind
  /// down with Unknown once it is set. The pointee must outlive the run;
  /// never serialized by name()/parse().
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Verify SAT answers against the clauses and UNSAT answers by bounded
  /// reachability before returning.
  bool VerifyResult = false;

  /// Cooperative lemma exchange between portfolio members (--share-lemmas):
  /// engines publish core-minimized frame lemmas onto the bus and import
  /// peers' lemmas at frame boundaries, admitting each only after
  /// re-checking its justification locally (see solver/Share.h). Inert
  /// unless Share is also set. Never serialized by name()/parse().
  bool ShareLemmas = false;

  /// Maximum peer lemmas fetched per import round (--share-import-budget;
  /// 0 disables importing while still publishing). Never serialized by
  /// name()/parse().
  unsigned ShareImportBudget = 64;

  /// This member's port onto the portfolio lemma bus (runtime/Exchange.h);
  /// null outside a sharing portfolio. The pointee must outlive the run;
  /// never serialized by name()/parse().
  LemmaChannel *Share = nullptr;

  /// Disable the incremental backend (solver pool + query cache) in
  /// EngineContext::sat(): every check builds a fresh throwaway solver.
  /// Exists for differential runs against the incremental path; never
  /// serialized by name()/parse().
  bool NoIncremental = false;

  /// Capacity of the per-run query cache (one verdict/model entry per
  /// distinct conjunction; FIFO eviction; 0 disables caching). Never
  /// serialized by name()/parse().
  unsigned QueryCacheCap = 4096;

  /// Process-isolation tier for solve jobs (--isolate, runtime/Worker.h).
  /// Default None so offline runs stay byte-reproducible; mucyc-serve
  /// defaults to Crash. Never serialized by name()/parse().
  IsolateMode Isolate = IsolateMode::None;

  /// Hard OS limits applied to isolated worker children via setrlimit
  /// (0 = inherit). HardMemMb maps to RLIMIT_AS, HardCpuSec to RLIMIT_CPU;
  /// a trip surfaces as WorkerCrashedRlimit. Distinct from the cooperative
  /// MemLimitMb gauge. Never serialized by name()/parse().
  uint64_t HardMemMb = 0;
  uint64_t HardCpuSec = 0;

  /// Paper-style configuration name, e.g. "Ind(Ret(F,MBP(0)))".
  std::string name() const;

  /// Parses a paper-style name; returns nullopt on malformed input.
  static std::optional<SolverOptions> parse(const std::string &Name);

  MbpStrategy mbpStrategy() const {
    switch (Cex) {
    case CexMethod::Mbp:
      return MbpStrategy::LazyProject;
    case CexMethod::Model:
      return MbpStrategy::ModelDiagram;
    case CexMethod::Qe:
      return MbpStrategy::FullQe;
    }
    return MbpStrategy::LazyProject;
  }
};

/// The solver-relevant command-line surface shared by `mucyc`,
/// `mucyc-fuzz`, `mucyc-serve` and `mucyc-client`: one parser, one set of
/// flag names, identical semantics everywhere. Tool-specific flags
/// (positional paths, --portfolio, fuzz knobs) stay with each tool;
/// parseSolverOptions() consumes only the flags below and compacts argv so
/// the tool's own loop never sees them.
struct CliOptions {
  SolverOptions Opts;              ///< --config + runtime-knob overlays.
  std::string Config = "Ret(T,MBP(1))"; ///< The raw --config value.
  unsigned Jobs = 0;               ///< --jobs (0 = hardware).
  uint64_t TimeoutMs = 600000;     ///< --timeout-ms (per solve/job).

  /// Re-serializes exactly the flags parseSolverOptions() consumes, in a
  /// fixed order, omitting defaults. parse(toFlags()) round-trips.
  std::vector<std::string> toFlags() const;
};

/// Parses the shared flags out of (argc, argv), filling \p Out and
/// REMOVING the consumed entries from argv (argc is updated), so callers
/// handle only their own flags afterwards. Recognized:
///
///   --config NAME          paper-style configuration (parse() grammar)
///   --jobs N               worker threads
///   --timeout-ms N         per-solve deadline
///   --mem-limit-mb N       cooperative memory budget
///   --max-retries N        recovery-ladder retries
///   --max-refine-steps N   refinement-step budget (deterministic CI runs)
///   --chaos-seed S         deterministic fault injection
///   --no-incremental       disable the incremental SMT backend
///   --verify               verify answers before reporting
///   --share-lemmas         cooperative lemma exchange (portfolio)
///   --share-import-budget N  max peer lemmas fetched per import round
///   --isolate MODE         none|crash|always worker-process isolation
///   --hard-mem-mb N        worker RLIMIT_AS cap (isolated runs)
///   --hard-cpu-sec N       worker RLIMIT_CPU cap (isolated runs)
///
/// Returns false (and fills \p Err) on a malformed value — e.g. an unknown
/// --config name or a flag missing its argument. Unrecognized flags are
/// left in argv untouched.
bool parseSolverOptions(int &Argc, char **Argv, CliOptions &Out,
                        std::string &Err);

} // namespace mucyc

#endif // MUCYC_SOLVER_OPTIONS_H
