//===- solver/Options.cpp - Solver configuration --------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Options.h"

#include <cstdlib>

using namespace mucyc;

const char *mucyc::isolateModeName(IsolateMode M) {
  switch (M) {
  case IsolateMode::None:
    return "none";
  case IsolateMode::Crash:
    return "crash";
  case IsolateMode::Always:
    return "always";
  }
  return "?";
}

std::optional<IsolateMode> mucyc::parseIsolateMode(const std::string &S) {
  if (S == "none")
    return IsolateMode::None;
  if (S == "crash")
    return IsolateMode::Crash;
  if (S == "always")
    return IsolateMode::Always;
  return std::nullopt;
}

std::string SolverOptions::name() const {
  std::string Inner;
  switch (Engine) {
  case EngineKind::Naive:
    Inner = "Naive";
    break;
  case EngineKind::NaiveMbp:
    Inner = "NaiveMbp";
    break;
  case EngineKind::Solve:
    Inner = "Solve";
    break;
  case EngineKind::SpacerTs:
    Inner = std::string("SpacerTS(") + (SpacerFig15 ? "fig15" : "fig1") +
            (SpacerULevels ? ",Ulev" : "") + ")";
    break;
  case EngineKind::Ret:
  case EngineKind::Yld: {
    std::string CexStr;
    switch (Cex) {
    case CexMethod::Model:
      CexStr = "Model";
      break;
    case CexMethod::Qe:
      CexStr = "QE";
      break;
    case CexMethod::Mbp:
      CexStr = "MBP(" + std::to_string(MbpMode) + ")";
      break;
    }
    bool B = Engine == EngineKind::Ret ? Accumulate : QueryWeaken;
    Inner = std::string(Engine == EngineKind::Ret ? "Ret(" : "Yld(") +
            (B ? "T" : "F") + "," + CexStr + ")";
    break;
  }
  }
  if (OptMonotone)
    Inner = "Mon(" + Inner + ")";
  if (OptQueryReuse)
    Inner = "Que(" + Inner + ")";
  if (OptCexShare)
    Inner = "Cex(" + Inner + ")";
  if (OptInduction)
    Inner = "Ind(" + Inner + ")";
  return Inner;
}

std::optional<SolverOptions> SolverOptions::parse(const std::string &Name) {
  SolverOptions O;
  O.Accumulate = false;
  O.QueryWeaken = false;
  std::string S = Name;
  auto StripWrap = [&](const char *Tag, bool &Flag) {
    std::string Prefix = std::string(Tag) + "(";
    if (S.rfind(Prefix, 0) == 0 && !S.empty() && S.back() == ')') {
      S = S.substr(Prefix.size(), S.size() - Prefix.size() - 1);
      Flag = true;
      return true;
    }
    return false;
  };
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Progress |= StripWrap("Ind", O.OptInduction);
    Progress |= StripWrap("Cex", O.OptCexShare);
    Progress |= StripWrap("Que", O.OptQueryReuse);
    Progress |= StripWrap("Mon", O.OptMonotone);
  }
  if (S == "Solve") {
    O.Engine = EngineKind::Solve;
    return O;
  }
  if (S == "Naive") {
    O.Engine = EngineKind::Naive;
    return O;
  }
  if (S == "NaiveMbp") {
    O.Engine = EngineKind::NaiveMbp;
    return O;
  }
  if (S.rfind("SpacerTS", 0) == 0) {
    O.Engine = EngineKind::SpacerTs;
    O.SpacerFig15 = S.find("fig15") != std::string::npos;
    O.SpacerULevels = S.find("Ulev") != std::string::npos;
    return O;
  }
  bool IsRet = S.rfind("Ret(", 0) == 0;
  bool IsYld = S.rfind("Yld(", 0) == 0;
  if ((!IsRet && !IsYld) || S.back() != ')')
    return std::nullopt;
  O.Engine = IsRet ? EngineKind::Ret : EngineKind::Yld;
  std::string Body = S.substr(4, S.size() - 5);
  size_t Comma = Body.find(',');
  if (Comma == std::string::npos)
    return std::nullopt;
  std::string B = Body.substr(0, Comma);
  std::string CexStr = Body.substr(Comma + 1);
  if (B != "T" && B != "F")
    return std::nullopt;
  (IsRet ? O.Accumulate : O.QueryWeaken) = B == "T";
  if (CexStr == "Model") {
    O.Cex = CexMethod::Model;
  } else if (CexStr == "QE") {
    O.Cex = CexMethod::Qe;
  } else if (CexStr.rfind("MBP(", 0) == 0 && CexStr.back() == ')') {
    O.Cex = CexMethod::Mbp;
    O.MbpMode = CexStr[4] - '0';
    if (O.MbpMode < 0 || O.MbpMode > 2)
      return std::nullopt;
  } else {
    return std::nullopt;
  }
  return O;
}

//===----------------------------------------------------------------------===
// Shared command-line surface
//===----------------------------------------------------------------------===

std::vector<std::string> CliOptions::toFlags() const {
  std::vector<std::string> F;
  auto Push = [&](const char *Flag, const std::string &Val) {
    F.push_back(Flag);
    F.push_back(Val);
  };
  if (Config != "Ret(T,MBP(1))")
    Push("--config", Config);
  if (Jobs)
    Push("--jobs", std::to_string(Jobs));
  if (TimeoutMs != 600000)
    Push("--timeout-ms", std::to_string(TimeoutMs));
  if (Opts.MemLimitMb)
    Push("--mem-limit-mb", std::to_string(Opts.MemLimitMb));
  if (Opts.MaxRetries)
    Push("--max-retries", std::to_string(Opts.MaxRetries));
  if (Opts.MaxRefineSteps)
    Push("--max-refine-steps", std::to_string(Opts.MaxRefineSteps));
  if (Opts.ChaosSeed)
    Push("--chaos-seed", std::to_string(Opts.ChaosSeed));
  if (Opts.NoIncremental)
    F.push_back("--no-incremental");
  if (Opts.VerifyResult)
    F.push_back("--verify");
  if (Opts.ShareLemmas)
    F.push_back("--share-lemmas");
  if (Opts.ShareImportBudget != 64)
    Push("--share-import-budget", std::to_string(Opts.ShareImportBudget));
  if (Opts.Isolate != IsolateMode::None)
    Push("--isolate", isolateModeName(Opts.Isolate));
  if (Opts.HardMemMb)
    Push("--hard-mem-mb", std::to_string(Opts.HardMemMb));
  if (Opts.HardCpuSec)
    Push("--hard-cpu-sec", std::to_string(Opts.HardCpuSec));
  return F;
}

bool mucyc::parseSolverOptions(int &Argc, char **Argv, CliOptions &Out,
                               std::string &Err) {
  // Single pass: consumed entries are compacted out of argv in place, so
  // the caller's own flag loop runs over what is left.
  int W = 1;
  bool Ok = true;
  auto Value = [&](int &I, const char *Flag, std::string &V) {
    if (I + 1 >= Argc) {
      Err = std::string("flag '") + Flag + "' needs a value";
      Ok = false;
      return false;
    }
    V = Argv[++I];
    return true;
  };
  for (int I = 1; I < Argc && Ok; ++I) {
    std::string A = Argv[I];
    std::string V;
    if (A == "--config") {
      if (!Value(I, "--config", V))
        break;
      Out.Config = V;
    } else if (A == "--jobs") {
      if (!Value(I, "--jobs", V))
        break;
      Out.Jobs = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    } else if (A == "--timeout-ms") {
      if (!Value(I, "--timeout-ms", V))
        break;
      Out.TimeoutMs = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--mem-limit-mb") {
      if (!Value(I, "--mem-limit-mb", V))
        break;
      Out.Opts.MemLimitMb = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--max-retries") {
      if (!Value(I, "--max-retries", V))
        break;
      Out.Opts.MaxRetries =
          static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    } else if (A == "--max-refine-steps") {
      if (!Value(I, "--max-refine-steps", V))
        break;
      Out.Opts.MaxRefineSteps = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--chaos-seed") {
      if (!Value(I, "--chaos-seed", V))
        break;
      Out.Opts.ChaosSeed = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--no-incremental") {
      Out.Opts.NoIncremental = true;
    } else if (A == "--verify") {
      Out.Opts.VerifyResult = true;
    } else if (A == "--share-lemmas") {
      Out.Opts.ShareLemmas = true;
    } else if (A == "--share-import-budget") {
      if (!Value(I, "--share-import-budget", V))
        break;
      Out.Opts.ShareImportBudget =
          static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    } else if (A == "--isolate") {
      if (!Value(I, "--isolate", V))
        break;
      auto M = parseIsolateMode(V);
      if (!M) {
        Err = "bad --isolate value '" + V + "' (want none|crash|always)";
        Ok = false;
        break;
      }
      Out.Opts.Isolate = *M;
    } else if (A == "--hard-mem-mb") {
      if (!Value(I, "--hard-mem-mb", V))
        break;
      Out.Opts.HardMemMb = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--hard-cpu-sec") {
      if (!Value(I, "--hard-cpu-sec", V))
        break;
      Out.Opts.HardCpuSec = std::strtoull(V.c_str(), nullptr, 10);
    } else {
      Argv[W++] = Argv[I]; // Not ours: keep for the caller.
      continue;
    }
  }
  if (!Ok) {
    Argc = W;
    return false;
  }
  Argc = W;

  // Fold the engine configuration in, preserving the runtime knobs the
  // flag loop above may already have set on Out.Opts.
  auto Parsed = SolverOptions::parse(Out.Config);
  if (!Parsed) {
    Err = "unknown configuration '" + Out.Config + "'";
    return false;
  }
  SolverOptions Knobs = Out.Opts;
  Out.Opts = *Parsed;
  Out.Opts.MemLimitMb = Knobs.MemLimitMb;
  Out.Opts.MaxRetries = Knobs.MaxRetries;
  Out.Opts.MaxRefineSteps = Knobs.MaxRefineSteps;
  Out.Opts.ChaosSeed = Knobs.ChaosSeed;
  Out.Opts.NoIncremental = Knobs.NoIncremental;
  Out.Opts.VerifyResult = Knobs.VerifyResult;
  Out.Opts.ShareLemmas = Knobs.ShareLemmas;
  Out.Opts.ShareImportBudget = Knobs.ShareImportBudget;
  Out.Opts.Share = Knobs.Share;
  Out.Opts.Isolate = Knobs.Isolate;
  Out.Opts.HardMemMb = Knobs.HardMemMb;
  Out.Opts.HardCpuSec = Knobs.HardCpuSec;
  return true;
}
