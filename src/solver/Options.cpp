//===- solver/Options.cpp - Solver configuration --------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Options.h"

using namespace mucyc;

std::string SolverOptions::name() const {
  std::string Inner;
  switch (Engine) {
  case EngineKind::Naive:
    Inner = "Naive";
    break;
  case EngineKind::NaiveMbp:
    Inner = "NaiveMbp";
    break;
  case EngineKind::Solve:
    Inner = "Solve";
    break;
  case EngineKind::SpacerTs:
    Inner = std::string("SpacerTS(") + (SpacerFig15 ? "fig15" : "fig1") +
            (SpacerULevels ? ",Ulev" : "") + ")";
    break;
  case EngineKind::Ret:
  case EngineKind::Yld: {
    std::string CexStr;
    switch (Cex) {
    case CexMethod::Model:
      CexStr = "Model";
      break;
    case CexMethod::Qe:
      CexStr = "QE";
      break;
    case CexMethod::Mbp:
      CexStr = "MBP(" + std::to_string(MbpMode) + ")";
      break;
    }
    bool B = Engine == EngineKind::Ret ? Accumulate : QueryWeaken;
    Inner = std::string(Engine == EngineKind::Ret ? "Ret(" : "Yld(") +
            (B ? "T" : "F") + "," + CexStr + ")";
    break;
  }
  }
  if (OptMonotone)
    Inner = "Mon(" + Inner + ")";
  if (OptQueryReuse)
    Inner = "Que(" + Inner + ")";
  if (OptCexShare)
    Inner = "Cex(" + Inner + ")";
  if (OptInduction)
    Inner = "Ind(" + Inner + ")";
  return Inner;
}

std::optional<SolverOptions> SolverOptions::parse(const std::string &Name) {
  SolverOptions O;
  O.Accumulate = false;
  O.QueryWeaken = false;
  std::string S = Name;
  auto StripWrap = [&](const char *Tag, bool &Flag) {
    std::string Prefix = std::string(Tag) + "(";
    if (S.rfind(Prefix, 0) == 0 && !S.empty() && S.back() == ')') {
      S = S.substr(Prefix.size(), S.size() - Prefix.size() - 1);
      Flag = true;
      return true;
    }
    return false;
  };
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Progress |= StripWrap("Ind", O.OptInduction);
    Progress |= StripWrap("Cex", O.OptCexShare);
    Progress |= StripWrap("Que", O.OptQueryReuse);
    Progress |= StripWrap("Mon", O.OptMonotone);
  }
  if (S == "Solve") {
    O.Engine = EngineKind::Solve;
    return O;
  }
  if (S == "Naive") {
    O.Engine = EngineKind::Naive;
    return O;
  }
  if (S == "NaiveMbp") {
    O.Engine = EngineKind::NaiveMbp;
    return O;
  }
  if (S.rfind("SpacerTS", 0) == 0) {
    O.Engine = EngineKind::SpacerTs;
    O.SpacerFig15 = S.find("fig15") != std::string::npos;
    O.SpacerULevels = S.find("Ulev") != std::string::npos;
    return O;
  }
  bool IsRet = S.rfind("Ret(", 0) == 0;
  bool IsYld = S.rfind("Yld(", 0) == 0;
  if ((!IsRet && !IsYld) || S.back() != ')')
    return std::nullopt;
  O.Engine = IsRet ? EngineKind::Ret : EngineKind::Yld;
  std::string Body = S.substr(4, S.size() - 5);
  size_t Comma = Body.find(',');
  if (Comma == std::string::npos)
    return std::nullopt;
  std::string B = Body.substr(0, Comma);
  std::string CexStr = Body.substr(Comma + 1);
  if (B != "T" && B != "F")
    return std::nullopt;
  (IsRet ? O.Accumulate : O.QueryWeaken) = B == "T";
  if (CexStr == "Model") {
    O.Cex = CexMethod::Model;
  } else if (CexStr == "QE") {
    O.Cex = CexMethod::Qe;
  } else if (CexStr.rfind("MBP(", 0) == 0 && CexStr.back() == ')') {
    O.Cex = CexMethod::Mbp;
    O.MbpMode = CexStr[4] - '0';
    if (O.MbpMode < 0 || O.MbpMode > 2)
      return std::nullopt;
  } else {
    return std::nullopt;
  }
  return O;
}
