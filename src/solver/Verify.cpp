//===- solver/Verify.cpp - Independent answer checking --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Verify.h"

using namespace mucyc;

bool mucyc::verifyInvariant(TermContext &F, const NormalizedChc &N,
                            TermRef Inv) {
  if (!Inv.isValid())
    return false;
  // iota => Inv.
  if (!SmtSolver::implies(F, N.Init, Inv))
    return false;
  // Inv(x) /\ Inv(y) /\ tau => Inv(z).
  TermRef Step = F.mkAnd({N.zToX(F, Inv), N.zToY(F, Inv), N.Trans});
  if (!SmtSolver::implies(F, Step, Inv))
    return false;
  // Inv /\ beta unsat.
  return !SmtSolver::quickCheck(F, {Inv, N.Bad}).has_value();
}

bool mucyc::verifyCexPiece(TermContext &F, const NormalizedChc &N,
                           TermRef Gamma, int MaxK) {
  if (!Gamma.isValid())
    return false;
  // Some state in Gamma must be bad...
  if (!SmtSolver::quickCheck(F, {Gamma, N.Bad}))
    return false;
  // ...and Gamma /\ Bad must be reachable. Unroll incrementally (one exact
  // post-image per round) and stop at the first height that witnesses the
  // intersection or at a fixed point.
  for (int K = 1; K <= MaxK; ++K) {
    TermRef Reach = boundedReach(F, N, K);
    if (SmtSolver::quickCheck(F, {Reach, Gamma, N.Bad}).has_value())
      return true;
  }
  return false;
}
