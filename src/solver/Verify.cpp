//===- solver/Verify.cpp - Independent answer checking --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Verify.h"

using namespace mucyc;

const char *mucyc::verifyRuleName(VerifyDiag::Rule R) {
  switch (R) {
  case VerifyDiag::Rule::None:
    return "none";
  case VerifyDiag::Rule::InitClause:
    return "init-clause";
  case VerifyDiag::Rule::StepClause:
    return "step-clause";
  case VerifyDiag::Rule::QueryClause:
    return "query-clause";
  case VerifyDiag::Rule::NotBad:
    return "not-bad";
  case VerifyDiag::Rule::NotReachable:
    return "not-reachable";
  }
  return "?";
}

namespace {

void setDiag(VerifyDiag *Diag, VerifyDiag::Rule R, std::string Msg) {
  if (!Diag)
    return;
  Diag->Failed = R;
  Diag->Message = std::move(Msg);
}

} // namespace

bool mucyc::verifyInvariant(TermContext &F, const NormalizedChc &N,
                            TermRef Inv, VerifyDiag *Diag) {
  setDiag(Diag, VerifyDiag::Rule::None, "");
  if (!Inv.isValid()) {
    setDiag(Diag, VerifyDiag::Rule::InitClause,
            "no invariant was produced for a sat answer");
    return false;
  }
  // Each check is phrased as "find a witness of the violation" so a
  // failure can report the clause together with a concrete counter-model.
  // iota(z) => Inv(z).
  if (auto M = SmtSolver::quickCheck(F, {N.Init, F.mkNot(Inv)})) {
    setDiag(Diag, VerifyDiag::Rule::InitClause,
            "invariant violates the init clause iota(z) => P(z): initial "
            "state " + M->toString(F) + " is outside the invariant");
    return false;
  }
  // Inv(x) /\ Inv(y) /\ tau(x, y, z) => Inv(z).
  if (auto M = SmtSolver::quickCheck(
          F, {N.zToX(F, Inv), N.zToY(F, Inv), N.Trans, F.mkNot(Inv)})) {
    setDiag(Diag, VerifyDiag::Rule::StepClause,
            "invariant violates the step clause P(x) /\\ P(y) /\\ "
            "tau(x,y,z) => P(z): counter-model " + M->toString(F) +
                " steps out of the invariant");
    return false;
  }
  // Inv(z) /\ beta(z) => false.
  if (auto M = SmtSolver::quickCheck(F, {Inv, N.Bad})) {
    setDiag(Diag, VerifyDiag::Rule::QueryClause,
            "invariant violates the query clause P(z) /\\ beta(z) => "
            "false: bad state " + M->toString(F) +
                " satisfies the invariant");
    return false;
  }
  return true;
}

bool mucyc::verifyCexPiece(TermContext &F, const NormalizedChc &N,
                           TermRef Gamma, int MaxK, VerifyDiag *Diag) {
  setDiag(Diag, VerifyDiag::Rule::None, "");
  if (!Gamma.isValid()) {
    setDiag(Diag, VerifyDiag::Rule::NotBad,
            "no counterexample piece was produced for an unsat answer");
    return false;
  }
  // Some state in Gamma must be bad...
  if (!SmtSolver::quickCheck(F, {Gamma, N.Bad})) {
    setDiag(Diag, VerifyDiag::Rule::NotBad,
            "counterexample piece violates the query clause P(z) /\\ "
            "beta(z) => false: no state of gamma satisfies beta");
    return false;
  }
  // ...and Gamma /\ Bad must be reachable. Unroll incrementally (one exact
  // post-image per round) and stop at the first height that witnesses the
  // intersection or at a fixed point.
  for (int K = 1; K <= MaxK; ++K) {
    TermRef Reach = boundedReach(F, N, K);
    if (SmtSolver::quickCheck(F, {Reach, Gamma, N.Bad}).has_value())
      return true;
  }
  setDiag(Diag, VerifyDiag::Rule::NotReachable,
          "counterexample piece is not derivable: gamma /\\ beta misses "
          "every reach frame up to height " + std::to_string(MaxK));
  return false;
}
