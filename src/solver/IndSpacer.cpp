//===- solver/IndSpacer.cpp - Algorithm 5 (the Spacer-like procedure) -----===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 5 of the paper: the lazy, early-returning refinement procedure
/// that is "almost Spacer". Correspondence to Fig. 1 (Section 5.1):
///   * outer loop + line 9  <->  (DecideMay)
///   * middle loop + line 13 <-> (DecideMust), with gamma_R playing U
///   * inner check + line 16 <->  (Successor)
///   * lines 18-19           <->  (Conflict)
///
/// Configuration knobs (Section 7):
///   * MbpMode (MBP(n)): n=2 snapshots phi_L at entry (line 7), n=1
///     additionally refreshes the snapshot at middle-loop body entry
///     (Remark 16), n=0 uses the live frame — the non-RC Spacer behaviour.
///   * Accumulate (Ret(b,_)): line 11's accumulation of gamma_R into
///     Gamma_R; disabling it together with MBP(2) loses the progress
///     property (Section 7.2.1).
///   * OptCexShare: replaces the local gamma_L/gamma_R by the cumulative
///     union of all counterexamples found (Section 5.3) — the Komuravelli
///     2015 behaviour that breaks the finiteness argument.
///   * OptQueryReuse: re-poses resolved queries at the adjacent level.
///   * OptInduction / OptMonotone as in Section 5.3.
///
//===----------------------------------------------------------------------===//

#include "solver/Refiner.h"
#include "solver/Share.h"

using namespace mucyc;

std::optional<TermRef> IndSpacerRefiner::refine(Trace &T, int Level,
                                                TermRef Alpha) {
  ++E.Stats.RefineCalls;
  TermContext &F = E.F;
  if (E.expired())
    return std::nullopt;
  if (!GlobalCex.isValid())
    GlobalCex = F.mkFalse();

  // Line 2.
  if (Level > T.depth() || E.implies(T.formula(Level), Alpha))
    return std::nullopt;

  // Lines 4-6: an initial state violates alpha.
  if (E.sat({E.N.Init, F.mkNot(Alpha)})) {
    TermRef Gamma = F.mkAnd(E.N.Init, F.mkNot(Alpha));
    if (E.Opts.OptCexShare) {
      GlobalCex = F.mkOr(GlobalCex, Gamma);
      return GlobalCex;
    }
    return Gamma;
  }

  TermRef NotAlpha = F.mkNot(Alpha);

  // Leaf view: only iota constrains the cell; the check above makes the
  // Conflict step applicable immediately.
  if (Level + 1 > T.depth()) {
    if (E.expired())
      return std::nullopt;
    TermRef NewRoot = E.itp(E.N.Init, F.mkAnd(T.formula(Level), Alpha));
    sharePublishLemma(E, Level, E.N.Init, NewRoot);
    if (E.Opts.OptMonotone)
      T.strengthen(Level, NewRoot, true);
    else
      T.replaceCell(Level, NewRoot);
    return std::nullopt;
  }

  TermRef GammaR = F.mkFalse(); // Accumulator Gamma_R (line 3).
  // Line 7: const phi_{L,0}.
  TermRef PhiL0 = E.zToX(T.formula(Level + 1));

  // Outer loop (line 8).
  while (!E.expired()) {
    TermRef PhiL = E.zToX(T.formula(Level + 1));
    TermRef PhiR = E.zToY(T.formula(Level + 1));
    auto MR = E.sat({PhiL, PhiR, E.N.Trans, NotAlpha});
    if (!MR)
      break;

    // Line 9 (DecideMay): project onto the right child. MBP(0) uses the
    // live frame; the model satisfies either argument because cells only
    // strengthen.
    TermRef ArgX = E.Opts.MbpMode == 0 ? PhiL : PhiL0;
    TermRef PsiRy = E.projectToY(F.mkAnd({ArgX, E.N.Trans, NotAlpha}), *MR);
    TermRef PsiR = E.yToZ(PsiRy);

    // Line 10.
    std::optional<TermRef> PieceR =
        refine(T, Level + 1, F.mkOr(F.mkNot(PsiR), GammaR));
    if (E.expired())
      return std::nullopt;
    if (!PieceR)
      continue; // Right child refined; retry the outer check.
    // Line 11: accumulation (Ret(T, _)).
    if (E.Opts.Accumulate)
      GammaR = F.mkOr(GammaR, *PieceR);
    TermRef GammaRCur = E.Opts.OptCexShare ? GlobalCex : *PieceR;
    TermRef GammaRy = E.zToY(GammaRCur);

    // Middle loop (line 12).
    while (!E.expired()) {
      TermRef PhiLCur = E.zToX(T.formula(Level + 1));
      auto ML = E.sat({PhiLCur, GammaRy, E.N.Trans, NotAlpha});
      if (!ML)
        break;
      // Remark 16: MBP(1) refreshes the snapshot at middle-loop body entry
      // without losing the termination measure.
      if (E.Opts.MbpMode == 1)
        PhiL0 = PhiLCur;

      // Line 13 (DecideMust). MBP(0) additionally conjoins the live frame,
      // mirroring Fig. 1's non-invariant argument.
      std::vector<TermRef> Arg{GammaRy, E.N.Trans, NotAlpha};
      if (E.Opts.MbpMode == 0)
        Arg.insert(Arg.begin(), PhiLCur);
      TermRef PsiLx = E.projectToX(F.mkAnd(Arg), *ML);
      TermRef PsiL = E.xToZ(PsiLx);

      // Line 14.
      std::optional<TermRef> PieceL = refine(T, Level + 1, F.mkNot(PsiL));
      if (E.expired())
        return std::nullopt;
      if (!PieceL) {
        // Query resolved. Optional query reuse (Section 5.3).
        if (E.Opts.OptQueryReuse)
          (void)refine(T, Level + 1, F.mkNot(PsiL));
        if (E.Opts.OptInduction)
          applyInduction(T, Level);
        continue;
      }
      TermRef GammaLCur = E.Opts.OptCexShare ? GlobalCex : *PieceL;
      TermRef GammaLx = E.zToX(GammaLCur);

      // Lines 15-17 (Successor): one reachable bad joint step suffices.
      if (auto M = E.sat({GammaLx, GammaRy, E.N.Trans, NotAlpha})) {
        TermRef Piece =
            E.projectToZ(F.mkAnd({GammaLx, GammaRy, E.N.Trans}), *M);
        if (E.Opts.OptCexShare) {
          GlobalCex = F.mkOr(GlobalCex, Piece);
          return GlobalCex;
        }
        return Piece;
      }
      if (E.expired())
        return std::nullopt;
    }
    // End of an outer iteration: optional query reuse and induction.
    if (E.Opts.OptQueryReuse)
      (void)refine(T, Level + 1, F.mkOr(F.mkNot(PsiR), GammaR));
    if (E.Opts.OptInduction)
      applyInduction(T, Level);
  }

  if (E.expired())
    return std::nullopt;
  // Lines 18-19 (Conflict).
  TermRef PhiL = E.zToX(T.formula(Level + 1));
  TermRef PhiR = E.zToY(T.formula(Level + 1));
  TermRef A = F.mkOr(E.N.Init, F.mkAnd({PhiL, PhiR, E.N.Trans}));
  TermRef B = F.mkAnd(T.formula(Level), Alpha);
  TermRef NewRoot = E.itp(A, B);
  sharePublishLemma(E, Level, A, NewRoot);
  if (E.Opts.OptMonotone)
    T.strengthen(Level, NewRoot, true);
  else
    T.replaceCell(Level, NewRoot);
  return std::nullopt;
}
