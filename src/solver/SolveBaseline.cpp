//===- solver/SolveBaseline.cpp - Unroll-and-check baseline ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolveBaseline.h"

#include "mbp/Qe.h"

using namespace mucyc;

SolverResult mucyc::runSolveBaseline(TermContext &F, const NormalizedChc &N,
                                     const SolverOptions &Opts) {
  SolverResult R;
  EngineContext E(F, N, Opts);
  std::vector<VarId> Elim = EngineContext::concat(N.X, N.Y);

  auto Post = [&](TermRef Phi) {
    TermRef Step = F.mkAnd({N.zToX(F, Phi), N.zToY(F, Phi), N.Trans});
    return qeExists(F, Elim, Step);
  };

  // Exact reach sets by tree height: Exact[h] = states derivable with trees
  // of height <= h+1.
  std::vector<TermRef> Exact{N.Init};
  TermRef Alpha = F.mkNot(N.Bad);

  for (int K = 1; !E.expired(); ++K) {
    // One unroll-and-check round per depth counts as a refinement step so
    // MaxRefineSteps bounds this engine too.
    ++E.Stats.RefineCalls;
    R.Depth = K;
    // Bounded check on the exact sets (the recursion-free expansion).
    TermRef Top = Exact.back();
    if (E.sat({Top, N.Bad})) {
      R.Status = ChcStatus::Unsat;
      R.CexPiece = F.mkAnd(Top, N.Bad);
      break;
    }
    if (E.Aborted)
      break;

    // Solve the recursion-free system with generalization: bottom-up
    // interpolant chain zeta_h with iota \/ post(zeta_{h-1}) => zeta_h and
    // zeta_h => alpha; falls back to the exact sets when the chain breaks
    // (the generalization overshot).
    std::vector<TermRef> Zeta;
    Zeta.reserve(Exact.size());
    bool ChainOk = true;
    for (size_t H = 0; H < Exact.size() && ChainOk && !E.expired(); ++H) {
      TermRef A = H == 0 ? N.Init : F.mkOr(N.Init, Post(Zeta[H - 1]));
      if (!E.implies(A, Alpha)) {
        ChainOk = false;
        break;
      }
      Zeta.push_back(E.itp(A, Alpha));
    }
    if (E.Aborted)
      break;
    if (!ChainOk)
      Zeta = Exact; // Pure exact mode for this depth.

    // Inductiveness check: some suffix conjunction closed under the step.
    for (size_t I = 0; I < Zeta.size() && !E.expired(); ++I) {
      std::vector<TermRef> Conj(Zeta.begin() + I, Zeta.end());
      TermRef Inv = F.mkAnd(std::move(Conj));
      if (!E.implies(N.Init, Inv))
        continue;
      if (!E.implies(F.mkAnd({N.zToX(F, Inv), N.zToY(F, Inv), N.Trans}),
                     Inv))
        continue;
      if (E.sat({Inv, N.Bad}))
        continue;
      if (E.Aborted)
        break;
      R.Status = ChcStatus::Sat;
      R.Invariant = Inv;
      break;
    }
    if (R.Status == ChcStatus::Sat || E.Aborted)
      break;
    if (Opts.MaxDepth && K >= Opts.MaxDepth)
      break;

    // Expand one level.
    TermRef Next = F.mkOr(N.Init, Post(Exact.back()));
    if (E.implies(Next, Exact.back())) {
      // Exact convergence: safe.
      R.Status = ChcStatus::Sat;
      R.Invariant = Exact.back();
      break;
    }
    if (E.Aborted)
      break;
    Exact.push_back(F.mkOr(Exact.back(), Next));
  }
  R.Stats = E.Stats;
  if (R.Status == ChcStatus::Unknown)
    R.Error = E.AbortInfo;
  return R;
}
