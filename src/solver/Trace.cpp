//===- solver/Trace.cpp - Traces of approximations ------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Trace.h"

using namespace mucyc;

TermRef Trace::formula(int Level) const {
  assert(Level >= 0 && Level <= depth());
  return Ctx->mkAnd(Cells[Level].Lemmas);
}

void Trace::strengthen(int Level, TermRef Lemma, bool Monotone) {
  assert(Level >= 0 && Level <= depth());
  if (Ctx->kind(Lemma) == Kind::True)
    return;
  int Last = Monotone ? depth() : Level;
  for (int L = Level; L <= Last; ++L) {
    Cell &C = Cells[L];
    // Conjoin lemma conjuncts individually so Present-deduplication works.
    std::vector<TermRef> Parts = Ctx->kind(Lemma) == Kind::And
                                     ? Ctx->node(Lemma).Kids
                                     : std::vector<TermRef>{Lemma};
    for (TermRef P : Parts)
      if (C.Present.insert(P).second)
        C.Lemmas.push_back(P);
  }
}

void Trace::replaceCell(int Level, TermRef F) {
  assert(Level >= 0 && Level <= depth());
  Cell &C = Cells[Level];
  C.Lemmas.clear();
  C.Present.clear();
  std::vector<TermRef> Parts = Ctx->kind(F) == Kind::And
                                   ? Ctx->node(F).Kids
                                   : std::vector<TermRef>{F};
  for (TermRef P : Parts) {
    if (Ctx->kind(P) == Kind::True)
      continue;
    if (C.Present.insert(P).second)
      C.Lemmas.push_back(P);
  }
}
