//===- solver/Engine.h - Shared refinement-engine context ------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plumbing shared by every refinement procedure: the normalized system and
/// its variable tuples, renaming between X/Y/Z forms, satisfiability and
/// projection helpers with statistics, and deadline/budget tracking.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_ENGINE_H
#define MUCYC_SOLVER_ENGINE_H

#include "chc/Normalize.h"
#include "itp/Interpolate.h"
#include "mbp/Mbp.h"
#include "smt/SmtSolver.h"
#include "solver/Options.h"
#include "solver/SolverPool.h"

#include <chrono>
#include <unordered_set>

namespace mucyc {

/// Counters reported with every solver result.
struct SolveStats {
  uint64_t SmtChecks = 0;      ///< SMT checks actually issued to a solver.
  uint64_t SmtCacheHits = 0;   ///< sat() answers replayed from the cache.
  uint64_t SmtCacheEvicts = 0; ///< FIFO evictions from the query cache.
  uint64_t PoolRetires = 0;    ///< Pooled solvers retired (atom limit).
  uint64_t MbpCalls = 0;
  uint64_t ItpCalls = 0;
  uint64_t RefineCalls = 0;
  uint64_t Unfolds = 0;
  /// Recovery bookkeeping (filled by the runtime layer, not the engines):
  /// attempts beyond the first, and attempts run under a degraded
  /// configuration.
  uint64_t Retries = 0;
  uint64_t Degradations = 0;
  /// Cooperative lemma exchange (solver/Share.h; all zero when sharing is
  /// off): lemmas published to / admitted from / dropped by the bus, and
  /// disjuncts removed by core-minimized publishing.
  uint64_t LemmasPublished = 0;
  uint64_t LemmasImported = 0;
  uint64_t LemmasRejected = 0;
  uint64_t CoreShrink = 0;

  /// Accumulates \p O counter-wise. The single merge point for portfolio
  /// members and retry attempts — new counters only need a line here.
  void merge(const SolveStats &O) {
    SmtChecks += O.SmtChecks;
    SmtCacheHits += O.SmtCacheHits;
    SmtCacheEvicts += O.SmtCacheEvicts;
    PoolRetires += O.PoolRetires;
    MbpCalls += O.MbpCalls;
    ItpCalls += O.ItpCalls;
    RefineCalls += O.RefineCalls;
    Unfolds += O.Unfolds;
    Retries += O.Retries;
    Degradations += O.Degradations;
    LemmasPublished += O.LemmasPublished;
    LemmasImported += O.LemmasImported;
    LemmasRejected += O.LemmasRejected;
    CoreShrink += O.CoreShrink;
  }
};

/// Shared state for one solving run.
class EngineContext {
public:
  EngineContext(TermContext &F, const NormalizedChc &N,
                const SolverOptions &Opts)
      : F(F), N(N), Opts(Opts), Pool(F), Cache(Opts.QueryCacheCap) {
    if (Opts.TimeoutMs > 0) {
      HasDeadline = true;
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Opts.TimeoutMs);
    }
  }

  TermContext &F;
  const NormalizedChc &N;
  SolverOptions Opts;
  SolveStats Stats;
  bool Aborted = false;
  /// Why Aborted was set — the breadcrumb ChcSolver::solve surfaces on an
  /// Unknown result so the runtime can tell a final Timeout from a
  /// retryable budget trip.
  ErrorInfo AbortInfo;

  /// Lemma-exchange bookkeeping operated on by solver/Share.h (inert when
  /// sharing is off): term indices of lemmas this run already published,
  /// peer lemmas already parsed and decided, and the bus read cursor. A
  /// fresh attempt gets a fresh context and so re-reads the log from zero.
  std::unordered_set<uint32_t> SharePublished;
  std::unordered_set<uint32_t> ShareSeen;
  uint64_t ShareCursor = 0;

  /// Checks resource limits; sets and returns Aborted when exhausted.
  bool expired() {
    if (Aborted)
      return true;
    if (Opts.CancelFlag &&
        Opts.CancelFlag->load(std::memory_order_relaxed))
      abort(ErrorCode::Cancelled, "cancel requested");
    else if (Opts.Faults && Opts.Faults->spuriousCancel())
      abort(ErrorCode::Cancelled, "injected spurious cancel");
    else if (Opts.MaxRefineSteps && Stats.RefineCalls > Opts.MaxRefineSteps)
      abort(ErrorCode::ResourceExhaustedSteps,
            "refine-step budget exhausted (" +
                std::to_string(Opts.MaxRefineSteps) + " steps)");
    else if (HasDeadline && std::chrono::steady_clock::now() > Deadline)
      abort(ErrorCode::Timeout,
            "deadline of " + std::to_string(Opts.TimeoutMs) + " ms expired");
    return Aborted;
  }

  /// Marks the run aborted with a typed reason (first reason wins).
  void abort(ErrorCode C, std::string Detail) {
    Aborted = true;
    if (!AbortInfo.isError())
      AbortInfo = ErrorInfo{C, std::move(Detail)};
  }

  /// Satisfiability of a conjunction; nullopt means unsat OR aborted
  /// (distinguish via Aborted).
  ///
  /// Default path: the query cache keyed by the hash-consed conjunction is
  /// consulted first (queries are closed, so hits need no validity check),
  /// then the solver pool issues the check against the persistent solver
  /// for the query's base — the transition relation when it appears among
  /// the conjuncts — with all other conjuncts as assumptions. Under
  /// --no-incremental every check builds a fresh throwaway solver.
  std::optional<Model> sat(const std::vector<TermRef> &Conj) {
    if (expired())
      return std::nullopt;
    if (Opts.NoIncremental) {
      countSmtCheck();
      SmtSolver S(F);
      S.setCancelFlag(Opts.CancelFlag);
      for (TermRef T : Conj)
        S.assertFormula(T);
      switch (S.check()) {
      case SmtStatus::Sat:
        return S.model();
      case SmtStatus::Unsat:
        return std::nullopt;
      case SmtStatus::Unknown:
        abortFromSubstrate();
        return std::nullopt;
      }
      return std::nullopt;
    }
    TermRef Key = F.mkAnd(Conj);
    if (const QueryCache::Entry *E = Cache.lookup(Key)) {
      ++Stats.SmtCacheHits;
      return E->IsSat ? std::optional<Model>(E->M) : std::nullopt;
    }
    countSmtCheck();
    TermRef Base;
    std::vector<TermRef> Rest;
    Rest.reserve(Conj.size());
    for (TermRef T : Conj) {
      if (!Base.isValid() && N.Trans.isValid() && T == N.Trans)
        Base = T;
      else
        Rest.push_back(T);
    }
    SolverPool::Result R = Pool.check(Base, Rest, Opts.CancelFlag);
    Stats.PoolRetires = Pool.retires();
    if (R.St == SmtStatus::Unknown) {
      abortFromSubstrate();
      return std::nullopt;
    }
    Cache.insert(Key, QueryCache::Entry{R.St == SmtStatus::Sat, R.M});
    Stats.SmtCacheEvicts = Cache.evictions();
    return R.St == SmtStatus::Sat ? std::optional<Model>(std::move(R.M))
                                  : std::nullopt;
  }

  bool implies(TermRef A, TermRef B) {
    return !sat({A, F.mkNot(B)}).has_value() && !Aborted;
  }

  //===--------------------------------------------------------------------===
  // Tuple renamings
  //===--------------------------------------------------------------------===

  TermRef zToX(TermRef T) { return rename(T, N.Z, N.X); }
  TermRef zToY(TermRef T) { return rename(T, N.Z, N.Y); }
  TermRef xToZ(TermRef T) { return rename(T, N.X, N.Z); }
  TermRef yToZ(TermRef T) { return rename(T, N.Y, N.Z); }

  TermRef rename(TermRef T, const std::vector<VarId> &From,
                 const std::vector<VarId> &To) {
    std::unordered_map<VarId, TermRef> Map;
    for (size_t I = 0; I < From.size(); ++I)
      Map.emplace(From[I], F.varTerm(To[I]));
    return F.substitute(T, Map);
  }

  //===--------------------------------------------------------------------===
  // Projection and interpolation with statistics
  //===--------------------------------------------------------------------===

  /// Projects the X and Z tuples out of Phi (result over Y), etc.
  TermRef projectToY(TermRef Phi, const Model &M) {
    return project(concat(N.X, N.Z), Phi, M);
  }
  TermRef projectToX(TermRef Phi, const Model &M) {
    return project(concat(N.Y, N.Z), Phi, M);
  }
  TermRef projectToZ(TermRef Phi, const Model &M) {
    return project(concat(N.X, N.Y), Phi, M);
  }

  TermRef project(const std::vector<VarId> &Elim, TermRef Phi,
                  const Model &M) {
    ++Stats.MbpCalls;
    return mbp(F, Opts.mbpStrategy(), Elim, Phi, M);
  }

  TermRef itp(TermRef A, TermRef B) {
    ++Stats.ItpCalls;
    return interpolate(F, A, B, Opts.Itp);
  }

  static std::vector<VarId> concat(const std::vector<VarId> &A,
                                   const std::vector<VarId> &B) {
    std::vector<VarId> R = A;
    R.insert(R.end(), B.begin(), B.end());
    return R;
  }

private:
  /// Counts an SMT check actually issued; the fault-injection point for
  /// "throw at the Nth check" (cache hits deliberately do not count — the
  /// ordinal matches the work a fresh run would do).
  void countSmtCheck() {
    ++Stats.SmtChecks;
    if (Opts.Faults)
      Opts.Faults->onSmtCheck();
  }

  /// Classifies a substrate Unknown: a set cancel flag means Cancelled
  /// (final); otherwise the lemma/node budget ran dry (retryable).
  void abortFromSubstrate() {
    if (Opts.CancelFlag && Opts.CancelFlag->load(std::memory_order_relaxed))
      abort(ErrorCode::Cancelled, "cancelled during SMT check");
    else
      abort(ErrorCode::ResourceExhaustedSteps,
            "SMT substrate exhausted its lemma budget");
  }

  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;
  SolverPool Pool;   ///< Persistent per-base solvers (lifetime: one run).
  QueryCache Cache;  ///< Memoized verdicts/models per conjunction term.
};

} // namespace mucyc

#endif // MUCYC_SOLVER_ENGINE_H
