//===- solver/SolveBaseline.h - Unroll-and-check baseline -------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Solve configuration of Section 7.2: an Unno-Kobayashi-style method
/// that iteratively expands the CHCs, solves the recursion-free expansion
/// (disregarding any previous trace), and checks whether the obtained
/// solution is inductive. Our recursion-free solver computes the exact
/// per-level reach sets with QE and generalizes them level by level with
/// interpolation before the inductiveness check.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_SOLVEBASELINE_H
#define MUCYC_SOLVER_SOLVEBASELINE_H

#include "solver/ChcSolve.h"

namespace mucyc {

SolverResult runSolveBaseline(TermContext &F, const NormalizedChc &N,
                              const SolverOptions &Opts);

} // namespace mucyc

#endif // MUCYC_SOLVER_SOLVEBASELINE_H
