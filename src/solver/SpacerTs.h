//===- solver/SpacerTs.h - Spacer as an abstract transition system -*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical description of Spacer (Fig. 1 of the paper, after
/// Komuravelli et al. 2015), executed with a Z3-like rule order: a linear
/// monotone trace of frames, a DFS stack of queries, and a (cumulative or
/// per-level) under-approximation U of the reachable states.
///
/// Two switches reproduce the paper's divergence analysis (Sections 3.3,
/// 5.2, Appendix C):
///  * Fig15: use the PLDI-reviewer "fix" arguments — (DecideMust')/
///    (DecideMay') without the frame, (Successor') without the query — which
///    repairs the loop-invariance issue but keeps cumulative U, the second
///    source of divergence.
///  * ULevels: manage U per level as in the original Spacer (Komuravelli et
///    al. 2014/2016), restoring the finiteness of each U_i.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_SPACERTS_H
#define MUCYC_SOLVER_SPACERTS_H

#include "solver/ChcSolve.h"

namespace mucyc {

/// Runs the Fig. 1 / Fig. 15 transition system.
SolverResult runSpacerTs(TermContext &F, const NormalizedChc &N,
                         const SolverOptions &Opts);

} // namespace mucyc

#endif // MUCYC_SOLVER_SPACERTS_H
