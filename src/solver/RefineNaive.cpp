//===- solver/RefineNaive.cpp - Algorithm 3 and shared refiner code -------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive generalized-refinement procedure (Algorithm 3). Every
/// quantified formula is eliminated exactly with QE, so each recursive call
/// happens exactly once per direction and no loops are needed: after the
/// recursive refinements the assertion has been weakened by the precise
/// counterexample and the Conflict interpolation is applicable.
///
/// Also hosts the Refiner base-class pieces shared by all engines: the
/// refineFull accumulation wrapper and the Induction optimization.
///
//===----------------------------------------------------------------------===//

#include "mbp/Qe.h"
#include "solver/Refiner.h"

#include <algorithm>

using namespace mucyc;

TermRef Refiner::refineFull(Trace &T, int Level, TermRef Alpha) {
  // The (*) wrapper of Algorithm 5 / Theorem 15.
  TermRef Gamma = E.F.mkFalse();
  while (!E.expired()) {
    std::optional<TermRef> Piece = refine(T, Level, E.F.mkOr(Alpha, Gamma));
    if (!Piece)
      break;
    Gamma = E.F.mkOr(Gamma, *Piece);
  }
  return Gamma;
}

void Refiner::applyInduction(Trace &T, int Level) {
  // Section 5.3 "Induction Rule": a lemma psi of the child cell is promoted
  // to this cell when iota => psi and the child frame steps into psi:
  //   cell[L+1](x) /\ cell[L+1](y) /\ tau => psi(z).
  if (Level + 1 > T.depth() || E.expired())
    return;
  TermContext &F = E.F;
  TermRef ChildZ = T.formula(Level + 1);
  TermRef ChildX = E.zToX(ChildZ);
  TermRef ChildY = E.zToY(ChildZ);
  for (TermRef Psi : T.lemmas(Level + 1)) {
    if (E.expired())
      return;
    const std::vector<TermRef> &Here = T.lemmas(Level);
    if (std::find(Here.begin(), Here.end(), Psi) != Here.end())
      continue;
    if (!E.implies(E.N.Init, Psi))
      continue;
    TermRef Step = F.mkAnd({ChildX, ChildY, E.N.Trans});
    if (!E.implies(Step, Psi))
      continue;
    T.strengthen(Level, Psi, E.Opts.OptMonotone);
  }
}

std::optional<TermRef> NaiveRefiner::refine(Trace &T, int Level,
                                            TermRef Alpha) {
  TermRef Gamma = refineFull(T, Level, Alpha);
  if (E.F.kind(Gamma) == Kind::False)
    return std::nullopt;
  return Gamma;
}

TermRef NaiveRefiner::refineFull(Trace &T, int Level, TermRef Alpha) {
  ++E.Stats.RefineCalls;
  TermContext &F = E.F;
  if (E.expired())
    return F.mkFalse();

  // Line 2: trivial success.
  if (Level > T.depth() || E.implies(T.formula(Level), Alpha))
    return F.mkFalse();

  TermRef Gamma = F.mkFalse();
  // Lines 4-6: initial states violating alpha join the counterexample.
  if (E.sat({E.N.Init, F.mkNot(Alpha)})) {
    Gamma = F.mkAnd(E.N.Init, F.mkNot(Alpha));
    Alpha = F.mkOr(Alpha, Gamma);
  }

  // A view at the maximal depth has no children: the only constraint on the
  // cell is iota => cell, so the initial-state handling above was complete.
  if (Level + 1 > T.depth()) {
    TermRef NewRoot = E.itp(E.N.Init, F.mkAnd(T.formula(Level), Alpha));
    T.replaceCell(Level, NewRoot);
    return Gamma;
  }

  TermRef PhiL = E.zToX(T.formula(Level + 1));
  TermRef PhiR = E.zToY(T.formula(Level + 1));
  // Line 7: do the children need refinement at all?
  if (E.sat({PhiL, PhiR, E.N.Trans, F.mkNot(Alpha)})) {
    // Line 8: weakest condition on the right child keeping the step safe.
    TermRef PsiRy = qeExists(
        F, EngineContext::concat(E.N.X, E.N.Z),
        F.mkAnd({PhiL, E.N.Trans, F.mkNot(Alpha)}));
    TermRef PsiR = E.yToZ(PsiRy);
    TermRef GammaR = refineFull(T, Level + 1, F.mkNot(PsiR));
    if (F.kind(GammaR) != Kind::False) {
      // Lines 11-12: refine the left child against the found right cex.
      TermRef GammaRy = E.zToY(GammaR);
      TermRef PsiLx = qeExists(
          F, EngineContext::concat(E.N.Y, E.N.Z),
          F.mkAnd({GammaRy, E.N.Trans, F.mkNot(Alpha)}));
      TermRef PsiL = E.xToZ(PsiLx);
      TermRef GammaL = refineFull(T, Level + 1, F.mkNot(PsiL));
      if (F.kind(GammaL) != Kind::False) {
        // Lines 14-15: exact new counterexample states.
        TermRef Step = F.mkAnd({E.zToX(GammaL), GammaRy, E.N.Trans,
                                F.mkNot(Alpha)});
        TermRef NewCex =
            qeExists(F, EngineContext::concat(E.N.X, E.N.Y), Step);
        Gamma = F.mkOr(Gamma, NewCex);
        Alpha = F.mkOr(Alpha, Gamma);
      }
    }
  }
  if (E.expired())
    return Gamma;

  // Lines 16-17: Conflict. The children are now strong enough; recompute
  // the root as an interpolant.
  TermRef PhiLNew = E.zToX(T.formula(Level + 1));
  TermRef PhiRNew = E.zToY(T.formula(Level + 1));
  TermRef A =
      F.mkOr(E.N.Init, F.mkAnd({PhiLNew, PhiRNew, E.N.Trans}));
  TermRef B = F.mkAnd(T.formula(Level), Alpha);
  TermRef NewRoot = E.itp(A, B);
  if (E.Opts.OptMonotone)
    T.strengthen(Level, NewRoot, /*Monotone=*/true);
  else
    T.replaceCell(Level, NewRoot);
  return Gamma;
}
