//===- solver/Verify.h - Independent answer checking ------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent verification of solver answers: SAT answers are checked as
/// inductive invariants with three SMT queries; UNSAT answers are replayed
/// against the exact bounded reachability sets. Declarations live in
/// ChcSolve.h; this header re-exports them for discoverability.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_VERIFY_H
#define MUCYC_SOLVER_VERIFY_H

#include "solver/ChcSolve.h"

#endif // MUCYC_SOLVER_VERIFY_H
