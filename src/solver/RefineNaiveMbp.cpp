//===- solver/RefineNaiveMbp.cpp - Algorithm 4 ----------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 4: the naive procedure with quantifier elimination replaced by
/// model-based projection. The three nested loops enumerate projections; the
/// termination twist (line 7 of the paper's listing) is that the projection
/// arguments snapshot phi_L and alpha, making them loop invariants so image
/// finiteness applies.
///
//===----------------------------------------------------------------------===//

#include "solver/Refiner.h"

using namespace mucyc;

std::optional<TermRef> NaiveMbpRefiner::refine(Trace &T, int Level,
                                               TermRef Alpha) {
  TermRef Gamma = refineFull(T, Level, Alpha);
  if (E.F.kind(Gamma) == Kind::False)
    return std::nullopt;
  return Gamma;
}

TermRef NaiveMbpRefiner::refineFull(Trace &T, int Level, TermRef Alpha) {
  ++E.Stats.RefineCalls;
  TermContext &F = E.F;
  if (E.expired())
    return F.mkFalse();

  if (Level > T.depth() || E.implies(T.formula(Level), Alpha))
    return F.mkFalse();

  TermRef Gamma = F.mkFalse();
  if (E.sat({E.N.Init, F.mkNot(Alpha)}))
    Gamma = F.mkAnd(E.N.Init, F.mkNot(Alpha));

  if (Level + 1 > T.depth()) {
    if (E.expired())
      return Gamma;
    TermRef NewRoot =
        E.itp(E.N.Init, F.mkAnd(T.formula(Level), F.mkOr(Alpha, Gamma)));
    T.replaceCell(Level, NewRoot);
    return Gamma;
  }

  TermRef NotAlpha = F.mkNot(Alpha);
  // Line 7: snapshot of phi_L; the projection argument must be a loop
  // invariant for the termination proof (Theorem 14).
  TermRef PhiL0 = E.zToX(T.formula(Level + 1));

  // Outer loop (lines 8-16).
  while (!E.expired()) {
    TermRef PhiL = E.zToX(T.formula(Level + 1));
    TermRef PhiR = E.zToY(T.formula(Level + 1));
    auto MR = E.sat({PhiL, PhiR, E.N.Trans, NotAlpha, F.mkNot(Gamma)});
    if (!MR)
      break;
    // Line 9.
    TermRef PsiRy = E.projectToY(F.mkAnd({PhiL0, E.N.Trans, NotAlpha}), *MR);
    TermRef PsiR = E.yToZ(PsiRy);
    // Line 10.
    TermRef GammaR = refineFull(T, Level + 1, F.mkNot(PsiR));
    if (F.kind(GammaR) == Kind::False)
      continue;
    TermRef GammaRy = E.zToY(GammaR);

    // Middle loop (lines 11-13).
    while (!E.expired()) {
      TermRef PhiLCur = E.zToX(T.formula(Level + 1));
      auto ML = E.sat({PhiLCur, GammaRy, E.N.Trans, NotAlpha, F.mkNot(Gamma)});
      if (!ML)
        break;
      // Line 12.
      TermRef PsiLx =
          E.projectToX(F.mkAnd({GammaRy, E.N.Trans, NotAlpha}), *ML);
      TermRef PsiL = E.xToZ(PsiLx);
      // Line 13.
      TermRef GammaL = refineFull(T, Level + 1, F.mkNot(PsiL));
      if (F.kind(GammaL) == Kind::False)
        continue;
      TermRef GammaLx = E.zToX(GammaL);

      // Inner loop (lines 14-16).
      while (!E.expired()) {
        auto M =
            E.sat({GammaLx, GammaRy, E.N.Trans, NotAlpha, F.mkNot(Gamma)});
        if (!M)
          break;
        // Line 15: note the argument omits alpha — the projection covers
        // reachable states, the model guarantees a bad one among them.
        TermRef Piece =
            E.projectToZ(F.mkAnd({GammaLx, GammaRy, E.N.Trans}), *M);
        Gamma = F.mkOr(Gamma, Piece);
      }
    }
  }

  if (E.expired())
    return Gamma;
  // Line 17: Conflict.
  TermRef PhiL = E.zToX(T.formula(Level + 1));
  TermRef PhiR = E.zToY(T.formula(Level + 1));
  TermRef A = F.mkOr(E.N.Init, F.mkAnd({PhiL, PhiR, E.N.Trans}));
  TermRef B = F.mkAnd(T.formula(Level), F.mkOr(Alpha, Gamma));
  TermRef NewRoot = E.itp(A, B);
  if (E.Opts.OptMonotone)
    T.strengthen(Level, NewRoot, /*Monotone=*/true);
  else
    T.replaceCell(Level, NewRoot);
  return Gamma;
}
