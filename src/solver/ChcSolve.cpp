//===- solver/ChcSolve.cpp - Top-level CHC solving ------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/ChcSolve.h"

#include "chc/Preprocess.h"
#include "mbp/Qe.h"
#include "solver/Refiner.h"
#include "solver/Share.h"
#include "solver/SolveBaseline.h"
#include "solver/SpacerTs.h"
#include "solver/Verify.h"

#include <chrono>

using namespace mucyc;

const char *mucyc::chcStatusName(ChcStatus S) {
  switch (S) {
  case ChcStatus::Sat:
    return "sat";
  case ChcStatus::Unsat:
    return "unsat";
  case ChcStatus::Unknown:
    return "unknown";
  }
  return "?";
}

std::unique_ptr<Refiner> mucyc::makeRefiner(EngineContext &E) {
  switch (E.Opts.Engine) {
  case EngineKind::Naive:
    return std::make_unique<NaiveRefiner>(E);
  case EngineKind::NaiveMbp:
    return std::make_unique<NaiveMbpRefiner>(E);
  case EngineKind::Ret:
    return std::make_unique<IndSpacerRefiner>(E);
  case EngineKind::Yld:
    return std::make_unique<YieldRefiner>(E);
  default:
    raiseError(ErrorCode::InvariantViolation,
               "engine without a refiner dispatched to solveInductive");
  }
}

SolverResult ChcSolver::solveInductive() {
  SolverResult R;
  EngineContext E(F, N, Opts);
  std::unique_ptr<Refiner> Ref = makeRefiner(E);
  Trace T(F);
  TermRef Alpha = F.mkNot(N.Bad);

  while (true) {
    // Algorithm 2 line 4: unfold.
    T.unfold();
    ++E.Stats.Unfolds;
    if (Opts.OptInduction && T.depth() >= 1)
      (void)0; // Unfold-time induction runs inside the refiners.

    // Cooperative portfolio: admit peers' lemmas at the unfold boundary.
    // Mon traces maintain cell[d+1] => cell[d], so they only take lemmas
    // inductive on their own, conjoined monotonically everywhere; plain
    // traces admit per level against the live cells.
    shareImportRound(
        E,
        E.Opts.OptMonotone ? ShareImportMode::Inductive
                           : ShareImportMode::FrameRelative,
        T.depth(), [&](int I) { return T.formula(I); },
        [&](int K, TermRef L) {
          T.strengthen(K, L, /*Monotone=*/E.Opts.OptMonotone);
        });
    if (E.Aborted)
      break;

    // Line 5: refine against the assertion. Any counterexample piece
    // witnesses a reachable bad state, so UNSAT follows immediately.
    std::optional<TermRef> Gamma = Ref->refine(T, 0, Alpha);
    if (E.Aborted)
      break;
    if (Gamma) {
      R.Status = ChcStatus::Unsat;
      R.CexPiece = *Gamma;
      break;
    }

    // Lines 9-11: invariant extraction. Inv_i = /\_{j<=i} cell[j]; it is a
    // solution when it implies the next level.
    std::vector<TermRef> Prefix;
    bool Found = false;
    for (int I = 0; I + 1 <= T.depth() && !Found; ++I) {
      Prefix.push_back(T.formula(I));
      TermRef Inv = F.mkAnd(Prefix);
      if (E.implies(Inv, T.formula(I + 1))) {
        R.Status = ChcStatus::Sat;
        R.Invariant = Inv;
        Found = true;
      }
      if (E.Aborted)
        break;
    }
    // Depth-0 corner: a single cell that already excludes bad states and is
    // closed (no transitions can occur from an empty system) is handled by
    // the general check above once depth >= 1.
    if (Found || E.Aborted)
      break;
    if (Opts.MaxDepth && T.depth() >= Opts.MaxDepth)
      break;
  }
  R.Depth = T.depth();
  R.Stats = E.Stats;
  if (R.Status == ChcStatus::Unknown)
    R.Error = E.AbortInfo;
  return R;
}

namespace {
/// Installs the run's resource gauge and fault injector on the term context
/// for the duration of one solving attempt, uninstalling on every exit path
/// (the gauge lives on the solve() stack frame; the context outlives it).
struct GovernanceScope {
  GovernanceScope(TermContext &F, ResourceGauge *G, FaultInjector *FI)
      : F(F) {
    if (G)
      F.setResourceGauge(G);
    if (FI)
      F.setFaultInjector(FI);
  }
  ~GovernanceScope() {
    F.setResourceGauge(nullptr);
    F.setFaultInjector(nullptr);
  }
  TermContext &F;
};
} // namespace

SolverResult ChcSolver::solve() {
  auto Start = std::chrono::steady_clock::now();
  SolverResult R;

  // Resource governance for this attempt. The gauge meters cumulative
  // allocation (term nodes, CDCL clauses, simplex rows) against MemLimitMb;
  // the injector fires seed-derived deterministic faults. Both are
  // installed on the context so every solver the attempt creates inherits
  // them, and uninstalled before verification/lifting below.
  ResourceGauge Gauge(Opts.MemLimitMb << 20);
  FaultInjector SeededFaults;
  if (!Opts.Faults && Opts.ChaosSeed) {
    SeededFaults = FaultInjector::fromSeed(Opts.ChaosSeed);
    Opts.Faults = &SeededFaults;
  }
  {
    GovernanceScope Scope(F, Opts.MemLimitMb ? &Gauge : nullptr, Opts.Faults);
    try {
      switch (Opts.Engine) {
      case EngineKind::SpacerTs:
        R = runSpacerTs(F, N, Opts);
        break;
      case EngineKind::Solve:
        R = runSolveBaseline(F, N, Opts);
        break;
      default:
        R = solveInductive();
        break;
      }
    } catch (const MucycError &E) {
      // The error boundary: a typed throw anywhere below (budget trip,
      // injected fault, invariant violation) lands here. The attempt's
      // engines and solvers are torn down by the unwind; the term context
      // only ever grew, so it stays consistent for a caller that retries
      // in a fresh context or reads the partial stats.
      R = SolverResult();
      R.Status = ChcStatus::Unknown;
      R.Error = E.info();
    }
  }
  if (Opts.Faults == &SeededFaults)
    Opts.Faults = nullptr;
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  if (Opts.VerifyResult && !R.Error.isError()) {
    VerifyDiag Diag;
    if (R.Status == ChcStatus::Sat &&
        !verifyInvariant(F, N, R.Invariant, &Diag)) {
      R.Status = ChcStatus::Unknown;
      R.VerifyFailed = true;
      R.VerifyNote = std::string(verifyRuleName(Diag.Failed)) + ": " +
                     Diag.Message;
    }
    if (R.Status == ChcStatus::Unsat &&
        !verifyCexPiece(F, N, R.CexPiece, R.Depth + 2, &Diag)) {
      R.Status = ChcStatus::Unknown;
      R.VerifyFailed = true;
      R.VerifyNote = std::string(verifyRuleName(Diag.Failed)) + ": " +
                     Diag.Message;
    }
  }
  return R;
}

SolverResult mucyc::solveChcSystem(ChcSystem &Sys, const SolverOptions &Opts,
                                   bool Preprocess, ChcSolution *SolutionOut) {
  ChcSystem Work = Preprocess ? preprocess(Sys) : Sys;
  NormalizeResult NR = normalize(Work);
  ChcSolver Solver(Sys.ctx(), NR.Sys, Opts);
  SolverResult R = Solver.solve();
  if (R.Status == ChcStatus::Sat && SolutionOut) {
    // Lift through the preprocessed system's layout; predicates eliminated
    // by preprocessing have no definition here (they were resolved away).
    *SolutionOut = NR.liftSolution(Work, R.Invariant);
  }
  return R;
}

//===----------------------------------------------------------------------===
// Ground truth
//===----------------------------------------------------------------------===

namespace {
/// Accumulates \p New into the disjunct set, skipping disjuncts already
/// implied by the union (keeps the exact-reach formulas from ballooning).
void addDisjuncts(TermContext &F, std::vector<TermRef> &Disjuncts,
                  TermRef New) {
  std::vector<TermRef> Parts = F.kind(New) == Kind::Or
                                   ? F.node(New).Kids
                                   : std::vector<TermRef>{New};
  for (TermRef P : Parts) {
    if (SmtSolver::implies(F, P, F.mkOr(Disjuncts)))
      continue;
    Disjuncts.push_back(P);
  }
}
} // namespace

TermRef mucyc::boundedReach(TermContext &F, const NormalizedChc &N, int K) {
  // R_1 = iota; R_{h+1} = iota \/ QE(exists xy. R_h(x) /\ R_h(y) /\ tau),
  // maintained as a subsumption-pruned disjunct set.
  std::vector<TermRef> Disjuncts{N.Init};
  std::vector<VarId> Elim = EngineContext::concat(N.X, N.Y);
  for (int H = 1; H < K; ++H) {
    TermRef R = F.mkOr(Disjuncts);
    TermRef Step = F.mkAnd({N.zToX(F, R), N.zToY(F, R), N.Trans});
    TermRef Post = qeExists(F, Elim, Step);
    size_t Before = Disjuncts.size();
    addDisjuncts(F, Disjuncts, Post);
    if (Disjuncts.size() == Before)
      return R; // Fixed point.
  }
  return F.mkOr(Disjuncts);
}

ChcStatus mucyc::bmcStatus(TermContext &F, const NormalizedChc &N, int MaxK) {
  std::vector<TermRef> Disjuncts{N.Init};
  std::vector<VarId> Elim = EngineContext::concat(N.X, N.Y);
  for (int H = 1; H <= MaxK; ++H) {
    TermRef R = F.mkOr(Disjuncts);
    if (SmtSolver::quickCheck(F, {R, N.Bad}))
      return ChcStatus::Unsat;
    TermRef Step = F.mkAnd({N.zToX(F, R), N.zToY(F, R), N.Trans});
    TermRef Post = qeExists(F, Elim, Step);
    size_t Before = Disjuncts.size();
    addDisjuncts(F, Disjuncts, Post);
    if (Disjuncts.size() == Before)
      return ChcStatus::Sat; // Converged safely.
  }
  return ChcStatus::Unknown;
}
