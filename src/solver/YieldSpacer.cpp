//===- solver/YieldSpacer.cpp - Algorithm 6 (coroutines) ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 6: the terminating procedure using coroutines. A refinement
/// coroutine yields counterexample pieces one at a time; the caller resumes
/// it with a weakened assertion (alpha := yield gamma), so the suspended
/// continuation is never discarded — this is what makes cross-level
/// counterexample sharing compatible with termination (Section 6).
///
/// The paper's OCaml implementation uses effect handlers; here the same
/// control structure is a C++20 coroutine whose next(alpha) resumes the body
/// with the weakened assertion, and whose completion plays StopIteration.
///
/// Query weakening (lines 21/23, the Yld(T,_) switch) is interpolation
/// Itp(gamma, (partner /\ tau) => alpha); since gammas are projection cubes,
/// the interpolant is computed by unsat-core cube generalization.
///
//===----------------------------------------------------------------------===//

#include "solver/Refiner.h"
#include "solver/Share.h"

#include <coroutine>

using namespace mucyc;

namespace {

void applyIndHook(EngineContext &E, Trace &T, int Level);

/// A resumable refinement: yields counterexample pieces; completion means
/// the trace view was refined (StopIteration).
class McrCoro {
public:
  struct promise_type {
    TermRef Yielded;
    TermRef ResumeAlpha;
    /// A throw inside the coroutine body (budget trip, injected fault,
    /// invariant violation) is parked here and rethrown from next(), so it
    /// unwinds through the caller to the solve() error boundary instead of
    /// terminating the process.
    std::exception_ptr Escaped;

    McrCoro get_return_object() {
      return McrCoro(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { Escaped = std::current_exception(); }

    auto yield_value(TermRef Gamma) {
      struct Awaiter {
        promise_type *P;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {}
        TermRef await_resume() const noexcept { return P->ResumeAlpha; }
      };
      Yielded = Gamma;
      return Awaiter{this};
    }
  };

  explicit McrCoro(std::coroutine_handle<promise_type> H) : H(H) {}
  McrCoro(McrCoro &&O) noexcept : H(O.H) { O.H = nullptr; }
  McrCoro &operator=(McrCoro &&O) noexcept {
    if (H)
      H.destroy();
    H = O.H;
    O.H = nullptr;
    return *this;
  }
  McrCoro(const McrCoro &) = delete;
  McrCoro &operator=(const McrCoro &) = delete;
  ~McrCoro() {
    if (H)
      H.destroy();
  }

  /// Resumes with the (possibly weakened) assertion; returns the next piece
  /// or nullopt on completion.
  std::optional<TermRef> next(TermRef Alpha) {
    assert(H && !H.done());
    H.promise().ResumeAlpha = Alpha;
    H.resume();
    if (H.done()) {
      if (H.promise().Escaped)
        std::rethrow_exception(H.promise().Escaped);
      return std::nullopt;
    }
    return H.promise().Yielded;
  }

private:
  std::coroutine_handle<promise_type> H;
};

/// Interpolant Itp(GammaCube, (Partner /\ tau) => Alpha) over GammaCube's
/// tuple, by cube generalization: the weakest subcube of GammaCube still
/// blocked by Partner /\ tau /\ not(alpha). Requires that conjunction to be
/// unsatisfiable (the caller has just exhausted it).
TermRef weakenItp(EngineContext &E, TermRef GammaCube, TermRef Blocker) {
  TermContext &F = E.F;
  std::vector<TermRef> Lits;
  TermRef Body = GammaCube;
  if (F.kind(Body) == Kind::And) {
    for (TermRef L : F.node(Body).Kids) {
      if (!F.isLiteral(L))
        return GammaCube; // Not a cube: fall back to the trivial itp.
      Lits.push_back(L);
    }
  } else if (F.isLiteral(Body)) {
    Lits.push_back(Body);
  } else {
    return GammaCube;
  }
  ++E.Stats.ItpCalls;
  std::vector<TermRef> Small = generalizeBlockedCube(F, Blocker, Lits);
  return F.mkAnd(std::move(Small));
}

/// The Algorithm 6 body. Shares cells through the trace exactly like the
/// other engines; "Phi_R := Phi'" on StopIteration is implicit.
McrCoro mcr(EngineContext &E, Trace &T, int Level, TermRef Alpha) {
  TermContext &F = E.F;
  ++E.Stats.RefineCalls;

  // Line 2.
  if (Level > T.depth() || E.implies(T.formula(Level), Alpha) || E.expired())
    co_return;

  // Lines 3-5. Re-check after every resume: the Conflict interpolation at
  // the end requires iota => alpha, which each acceptable resume restores.
  while (E.sat({E.N.Init, F.mkNot(Alpha)})) {
    TermRef Gamma = F.mkAnd(E.N.Init, F.mkNot(Alpha));
    Alpha = co_yield Gamma;
    if (E.expired())
      co_return;
  }
  if (E.expired())
    co_return;

  // Leaf view: the initial states are the only derivations.
  if (Level + 1 > T.depth()) {
    TermRef NewRoot = E.itp(E.N.Init, F.mkAnd(T.formula(Level), Alpha));
    sharePublishLemma(E, Level, E.N.Init, NewRoot);
    if (E.Opts.OptMonotone)
      T.strengthen(Level, NewRoot, true);
    else
      T.replaceCell(Level, NewRoot);
    co_return;
  }

  // Line 6: saved frame and query.
  TermRef PhiL0 = E.zToX(T.formula(Level + 1));
  TermRef Alpha0 = Alpha;

  // Outer loop (line 7).
  while (!E.expired()) {
    TermRef PhiL = E.zToX(T.formula(Level + 1));
    TermRef PhiR = E.zToY(T.formula(Level + 1));
    auto MR = E.sat({PhiL, PhiR, E.N.Trans, F.mkNot(Alpha)});
    if (!MR)
      break;

    // Line 8: MBP(0) uses the live frame and query; MBP(1/2) the saved ones.
    TermRef ArgX = E.Opts.MbpMode == 0 ? PhiL : PhiL0;
    TermRef ArgA = E.Opts.MbpMode == 0 ? Alpha : Alpha0;
    TermRef PsiRy =
        E.projectToY(F.mkAnd({ArgX, E.N.Trans, F.mkNot(ArgA)}), *MR);
    TermRef PsiR = E.yToZ(PsiRy);

    // Line 9.
    McrCoro CorR = mcr(E, T, Level + 1, F.mkNot(PsiR));
    // Try-loop (lines 10-24).
    while (!E.expired()) {
      // Line 11.
      std::optional<TermRef> GR = CorR.next(F.mkNot(PsiR));
      if (!GR)
        break; // StopIteration: Phi_R updated in place (line 24).
      TermRef GammaR = *GR;
      TermRef GammaRy = E.zToY(GammaR);
      // Line 12.
      TermRef Alpha1 = Alpha;

      // Middle loop (line 13).
      while (!E.expired()) {
        TermRef PhiLCur = E.zToX(T.formula(Level + 1));
        auto ML = E.sat({PhiLCur, GammaRy, E.N.Trans, F.mkNot(Alpha)});
        if (!ML)
          break;
        if (E.Opts.MbpMode == 1)
          PhiL0 = PhiLCur; // Remark 16 refresh.

        // Line 14.
        TermRef ArgA1 = E.Opts.MbpMode == 0 ? Alpha : Alpha1;
        std::vector<TermRef> Arg{GammaRy, E.N.Trans, F.mkNot(ArgA1)};
        if (E.Opts.MbpMode == 0)
          Arg.insert(Arg.begin(), PhiLCur);
        TermRef PsiLx = E.projectToX(F.mkAnd(Arg), *ML);
        TermRef PsiL = E.xToZ(PsiLx);

        // Line 15.
        McrCoro CorL = mcr(E, T, Level + 1, F.mkNot(PsiL));
        // Try-loop (lines 16-22).
        while (!E.expired()) {
          // Line 17.
          std::optional<TermRef> GL = CorL.next(F.mkNot(PsiL));
          if (!GL)
            break; // StopIteration (line 22).
          TermRef GammaLx = E.zToX(*GL);

          // Lines 18-20.
          while (!E.expired()) {
            auto M =
                E.sat({GammaLx, GammaRy, E.N.Trans, F.mkNot(Alpha)});
            if (!M)
              break;
            TermRef Piece =
                E.projectToZ(F.mkAnd({GammaLx, GammaRy, E.N.Trans}), *M);
            Alpha = co_yield Piece;
          }
          if (E.expired())
            co_return;

          // Line 21: query weakening. Every dialogue must be acceptable
          // (Theorem 18): the resumed assertion covers the yielded piece.
          // Yld(T,_) generalizes the piece by interpolation before
          // weakening; Yld(F,_) weakens by the bare piece.
          if (E.Opts.QueryWeaken) {
            TermRef Blocker =
                F.mkAnd({GammaRy, E.N.Trans, F.mkNot(Alpha)});
            TermRef Theta = weakenItp(E, GammaLx, Blocker);
            PsiL = F.mkAnd(PsiL, F.mkNot(E.xToZ(Theta)));
          } else {
            PsiL = F.mkAnd(PsiL, F.mkNot(E.xToZ(GammaLx)));
          }
        }
        if (E.Opts.OptInduction)
          applyIndHook(E, T, Level);
      }

      // Line 23: weaken the right query (same split as line 21).
      if (E.Opts.QueryWeaken && !E.expired()) {
        TermRef PhiLLive = E.zToX(T.formula(Level + 1));
        TermRef Blocker =
            F.mkAnd({PhiLLive, E.N.Trans, F.mkNot(Alpha)});
        if (!E.sat({Blocker, GammaRy})) {
          if (E.expired())
            co_return;
          TermRef Theta = weakenItp(E, GammaRy, Blocker);
          PsiR = F.mkAnd(PsiR, F.mkNot(E.yToZ(Theta)));
        } else {
          PsiR = F.mkAnd(PsiR, F.mkNot(E.yToZ(GammaRy)));
        }
      } else if (!E.expired()) {
        PsiR = F.mkAnd(PsiR, F.mkNot(E.yToZ(GammaRy)));
      }
    }
    if (E.Opts.OptInduction)
      applyIndHook(E, T, Level);
  }

  if (E.expired())
    co_return;
  // Line 25: Conflict.
  TermRef PhiL = E.zToX(T.formula(Level + 1));
  TermRef PhiR = E.zToY(T.formula(Level + 1));
  TermRef A = F.mkOr(E.N.Init, F.mkAnd({PhiL, PhiR, E.N.Trans}));
  TermRef B = F.mkAnd(T.formula(Level), Alpha);
  TermRef NewRoot = E.itp(A, B);
  sharePublishLemma(E, Level, A, NewRoot);
  if (E.Opts.OptMonotone)
    T.strengthen(Level, NewRoot, true);
  else
    T.replaceCell(Level, NewRoot);
  co_return;
}

// The Induction hook needs access to Refiner::applyInduction, which is
// protected; expose it through a tiny local subclass.
struct IndHook : Refiner {
  using Refiner::Refiner;
  std::optional<TermRef> refine(Trace &, int, TermRef) override {
    return std::nullopt;
  }
  void run(Trace &T, int Level) { applyInduction(T, Level); }
};

void applyIndHook(EngineContext &E, Trace &T, int Level) {
  IndHook H(E);
  H.run(T, Level);
}

} // namespace

std::optional<TermRef> YieldRefiner::refine(Trace &T, int Level,
                                            TermRef Alpha) {
  McrCoro Cor = mcr(E, T, Level, Alpha);
  return Cor.next(Alpha);
}

TermRef YieldRefiner::refineFull(Trace &T, int Level, TermRef Alpha) {
  // Theorem 18 wrapper: keep resuming the same coroutine so the suspended
  // continuations are preserved.
  TermContext &F = E.F;
  TermRef Gamma = F.mkFalse();
  McrCoro Cor = mcr(E, T, Level, Alpha);
  while (!E.expired()) {
    std::optional<TermRef> Piece = Cor.next(F.mkOr(Alpha, Gamma));
    if (!Piece)
      break;
    Gamma = F.mkOr(Gamma, *Piece);
  }
  return Gamma;
}
