//===- solver/SpacerTs.cpp - Spacer as an abstract transition system ------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rule order, following the Z3 implementation's discipline (which the
/// paper notes coincides with the order used in the Theorem 9
/// counterexample):
///
///   outer loop:
///     if U /\ beta satisfiable            -> UNSAT (Unsafe)
///     if some frame phi_n => phi_{n+1}    -> SAT   (Safe; phi_n inductive)
///     if phi_0 /\ beta satisfiable        -> (Candidate), push (psi, 0)
///     else                                -> (Unfold)
///     while the query stack is non-empty, handle the top query (psi, n):
///       if iota /\ psi satisfiable        -> reach: U := U \/ cube, pop
///       (Successor)  if U x U steps into psi: U := U \/ proj, pop
///       (DecideMust) if phi_{n+1} x U steps into psi: push (proj, n+1)
///       (DecideMay)  if phi_{n+1} x phi_{n+1} steps into psi: push
///       (Conflict)   otherwise: lemma := Itp(iota \/ step, not psi),
///                    conjoin to frames 0..n (monotone), pop
///
/// Frames are indexed as in the paper's Fig. 1 reading: phi_0 is the root
/// (deepest unrolling), phi_N the initial-most frame; queries move from 0
/// towards N.
///
//===----------------------------------------------------------------------===//

#include "solver/SpacerTs.h"

#include "mbp/Mbp.h"
#include "solver/Refiner.h"
#include "solver/Share.h"

#include <cstdio>
#include <cstdlib>

using namespace mucyc;

namespace {

struct Query {
  TermRef Psi; ///< Over Z.
  int Level;
};

class SpacerTsEngine {
public:
  SpacerTsEngine(TermContext &F, const NormalizedChc &N,
                 const SolverOptions &Opts)
      : F(F), N(N), Opts(Opts), E(F, N, Opts) {}

  SolverResult run();

private:
  TermRef frame(int I) { return F.mkAnd(Frames[I]); }
  void addLemma(int UpTo, TermRef Lemma);
  /// The under-approximation available to a query at level L.
  TermRef uFor(int L) {
    if (!Opts.SpacerULevels)
      return UAll;
    return L + 1 < static_cast<int>(ULevels.size()) ? ULevels[L + 1]
                                                    : F.mkFalse();
  }
  void addU(int L, TermRef G) {
    UAll = F.mkOr(UAll, G);
    if (static_cast<int>(ULevels.size()) <= L)
      ULevels.resize(L + 1, F.mkFalse());
    ULevels[L] = F.mkOr(ULevels[L], G);
  }

  TermContext &F;
  const NormalizedChc &N;
  SolverOptions Opts;
  EngineContext E;

  std::vector<std::vector<TermRef>> Frames; ///< Lemmas, index 0 = root.
  TermRef UAll;
  std::vector<TermRef> ULevels; ///< Indexed by level when SpacerULevels.
};

void SpacerTsEngine::addLemma(int From, TermRef Lemma) {
  // (Conflict): phi_i := phi_i /\ lemma for i >= From (the frame of the
  // resolved query and everything deeper). The lemma contains iota and the
  // post-image of phi_{From+1}, so by monotonicity it is sound for every
  // deeper frame, and adding it deeper preserves phi_{i+1} => phi_i.
  for (size_t I = From; I < Frames.size(); ++I)
    Frames[I].push_back(Lemma);
}

SolverResult SpacerTsEngine::run() {
  SolverResult R;
  UAll = N.Init; // Seed the reachable under-approximation with iota.
  Frames.push_back({}); // phi_0 = true.

  std::vector<Query> Stack;
  while (!E.expired()) {
    // Cooperative portfolio: admit peers' lemmas at the frame boundary.
    // Levels line up directly — frame index 0 is the root here too — and
    // addLemma keeps the monotone chain, which extends the level-K
    // justification to every deeper frame.
    shareImportRound(
        E, ShareImportMode::FrameRelative,
        static_cast<int>(Frames.size()) - 1,
        [&](int I) { return frame(I); },
        [&](int K, TermRef L) { addLemma(K, L); });
    if (E.expired())
      break;

    // Unsafe?
    if (E.sat({UAll, N.Bad})) {
      R.Status = ChcStatus::Unsat;
      R.CexPiece = UAll;
      break;
    }
    if (E.Aborted)
      break;

    // (Candidate).
    if (auto M = E.sat({frame(0), N.Bad})) {
      TermRef Psi = mbp(F, MbpStrategy::LazyProject, {}, // Implicant cube.
                        F.mkAnd(frame(0), N.Bad), *M);
      if (std::getenv("MUCYC_SPACER_TRACE"))
        std::fprintf(stderr, "[spacer] Candidate N=%zu psi=%s\n",
                     Frames.size(), F.toString(Psi).c_str());
      Stack.push_back(Query{Psi, 0});
    } else {
      if (E.Aborted)
        break;
      // No candidate at this depth: phi_0 excludes bad states, so a frame
      // fixed point is a genuine safe invariant. Safe when phi_n =>
      // phi_{n+1} for some n (the converse holds by monotonicity).
      bool Sat = false;
      for (size_t I = 0; I + 1 < Frames.size(); ++I) {
        TermRef Fi = frame(static_cast<int>(I));
        if (E.implies(Fi, frame(static_cast<int>(I) + 1))) {
          R.Status = ChcStatus::Sat;
          R.Invariant = Fi;
          Sat = true;
          break;
        }
        if (E.Aborted)
          break;
      }
      if (Sat || E.Aborted)
        break;
      // (Unfold): phi_{n+1} := phi_n shifted, phi_0 := true — a fresh true
      // root; the initial-most frame keeps its iota-derived lemmas.
      if (std::getenv("MUCYC_SPACER_TRACE"))
        std::fprintf(stderr, "[spacer] Unfold -> N=%zu\n", Frames.size() + 1);
      Frames.insert(Frames.begin(), std::vector<TermRef>());
      if (!ULevels.empty())
        ULevels.insert(ULevels.begin(), F.mkFalse());
      if (Opts.MaxDepth &&
          static_cast<int>(Frames.size()) > Opts.MaxDepth)
        break;
      continue;
    }

    while (!Stack.empty() && !E.expired()) {
      // Each handled query is one refinement round for budget purposes
      // (MaxRefineSteps), mirroring the per-refine counting of Algs. 3-6.
      ++E.Stats.RefineCalls;
      Query Q = Stack.back();
      TermRef PsiZ = Q.Psi;
      int Lvl = Q.Level;
      int Deeper = Lvl + 1;
      if (std::getenv("MUCYC_SPACER_TRACE"))
        std::fprintf(stderr, "[spacer] query lvl=%d N=%zu stack=%zu\n", Lvl,
                     Frames.size(), Stack.size());
      if (static_cast<int>(Frames.size()) <= Deeper) {
        // The query reached the initial-most frame; only iota can resolve.
        if (auto M = E.sat({N.Init, PsiZ})) {
          TermRef G = mbp(F, MbpStrategy::LazyProject, {},
                          F.mkAnd(N.Init, PsiZ), *M);
          addU(Lvl, G);
          Stack.pop_back();
          break; // Re-run the outer checks (U may now hit beta).
        }
        if (E.Aborted)
          break;
        TermRef Lemma = E.itp(N.Init, F.mkNot(PsiZ));
        sharePublishLemma(E, Lvl, N.Init, Lemma);
        addLemma(Lvl, Lemma);
        Stack.pop_back();
        continue;
      }

      // Base reach: iota /\ psi.
      if (auto M = E.sat({N.Init, PsiZ})) {
        TermRef G = mbp(F, MbpStrategy::LazyProject, {},
                        F.mkAnd(N.Init, PsiZ), *M);
        addU(Lvl, G);
        Stack.pop_back();
        break;
      }
      if (E.Aborted)
        break;

      TermRef FrameDeep = frame(Deeper);
      TermRef FrameX = E.zToX(FrameDeep);
      TermRef FrameY = E.zToY(FrameDeep);
      TermRef UCur = uFor(Lvl);
      TermRef Ux = E.zToX(UCur);
      TermRef Uy = E.zToY(UCur);

      // (Successor): both children already known reachable.
      if (auto M = E.sat({Ux, Uy, N.Trans, PsiZ})) {
        std::vector<TermRef> Arg{Ux, Uy, N.Trans};
        if (!Opts.SpacerFig15)
          Arg.push_back(PsiZ); // Fig. 1 includes the query; Fig. 15 not.
        TermRef G = E.projectToZ(F.mkAnd(Arg), *M);
        if (std::getenv("MUCYC_SPACER_TRACE"))
          std::fprintf(stderr, "[spacer] Successor lvl=%d gamma=%s\n", Lvl,
                       F.toString(G).c_str());
        addU(Lvl, G);
        Stack.pop_back();
        continue;
      }
      if (E.Aborted)
        break;

      // (DecideMust): left from the frame, right from U.
      if (auto M = E.sat({FrameX, Uy, N.Trans, PsiZ})) {
        std::vector<TermRef> Arg{Uy, N.Trans, PsiZ};
        if (!Opts.SpacerFig15)
          Arg.insert(Arg.begin(), FrameX);
        TermRef Theta = E.projectToX(F.mkAnd(Arg), *M);
        if (std::getenv("MUCYC_SPACER_TRACE"))
          std::fprintf(stderr, "[spacer] DecideMust lvl=%d theta=%s\n", Lvl,
                       F.toString(Theta).c_str());
        Stack.push_back(Query{E.xToZ(Theta), Deeper});
        continue;
      }
      if (E.Aborted)
        break;

      // (DecideMay): both children from the frame.
      if (auto M = E.sat({FrameX, FrameY, N.Trans, PsiZ})) {
        std::vector<TermRef> Arg{N.Trans, PsiZ};
        if (!Opts.SpacerFig15) {
          Arg.insert(Arg.begin(), FrameX);
          Arg.insert(Arg.begin() + 1, FrameY);
        }
        TermRef Theta = E.projectToY(F.mkAnd(Arg), *M);
        if (std::getenv("MUCYC_SPACER_TRACE"))
          std::fprintf(stderr, "[spacer] DecideMay lvl=%d theta=%s\n", Lvl,
                       F.toString(Theta).c_str());
        Stack.push_back(Query{E.yToZ(Theta), Deeper});
        continue;
      }
      if (E.Aborted)
        break;

      // (Conflict).
      TermRef A = F.mkOr(N.Init, F.mkAnd({FrameX, FrameY, N.Trans}));
      TermRef Lemma = E.itp(A, F.mkNot(PsiZ));
      if (std::getenv("MUCYC_SPACER_TRACE"))
        std::fprintf(stderr, "[spacer] Conflict lvl=%d lemma=%s\n", Lvl,
                     F.toString(Lemma).c_str());
      sharePublishLemma(E, Lvl, A, Lemma);
      addLemma(Lvl, Lemma);
      Stack.pop_back();
      // (Induction) heuristic: try to push the lemma one frame out.
      if (Opts.OptInduction && Lvl > 0) {
        TermRef Step =
            F.mkAnd({E.zToX(F.mkAnd(frame(Lvl), Lemma)),
                     E.zToY(F.mkAnd(frame(Lvl), Lemma)), N.Trans});
        if (E.implies(F.mkOr(N.Init, Step), Lemma))
          addLemma(Lvl - 1, Lemma);
      }
    }
  }
  R.Depth = static_cast<int>(Frames.size()) - 1;
  R.Stats = E.Stats;
  if (R.Status == ChcStatus::Unknown)
    R.Error = E.AbortInfo;
  return R;
}

} // namespace

SolverResult mucyc::runSpacerTs(TermContext &F, const NormalizedChc &N,
                                const SolverOptions &Opts) {
  SpacerTsEngine Engine(F, N, Opts);
  return Engine.run();
}
