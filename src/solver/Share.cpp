//===- solver/Share.cpp - Cooperative lemma exchange ----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Share.h"

#include "chc/Export.h"

#include <algorithm>

using namespace mucyc;

void mucyc::sharePublishLemma(EngineContext &E, int Level, TermRef A,
                              TermRef Lemma) {
  if (!E.Opts.ShareLemmas || !E.Opts.Share)
    return;
  Kind K = E.F.kind(Lemma);
  if (K == Kind::True || K == Kind::False)
    return;
  if (!E.SharePublished.insert(Lemma.Idx).second)
    return;

  // Core-minimize the disjuncts against the justifying query: A => Lemma
  // is valid, i.e. {A} u {not d : d disjunct} is unsat, and any unsat
  // subset of the negated disjuncts yields a valid A => (or kept...) with
  // the dropped literals gone — a strictly stronger lemma. The publisher
  // keeps the ORIGINAL lemma in its own frames, so a single member's
  // trajectory is unchanged by sharing.
  TermRef Out = Lemma;
  std::vector<TermRef> Disj =
      K == Kind::Or ? E.F.node(Lemma).Kids : std::vector<TermRef>{Lemma};
  if (Disj.size() > 1) {
    std::vector<TermRef> Neg;
    Neg.reserve(Disj.size());
    for (TermRef D : Disj)
      Neg.push_back(E.F.mkNot(D));
    SmtSolver S(E.F);
    S.setCancelFlag(E.Opts.CancelFlag);
    S.assertFormula(A);
    unsigned Probes = 0;
    std::vector<TermRef> Core = S.minimizeCore(Neg, &Probes);
    // Real solver work, but deliberately not countSmtCheck(): the
    // fault-injection ordinal stream must match a non-sharing run.
    E.Stats.SmtChecks += Probes;
    // An empty core means A itself was unsat — the lemma carries no
    // assumption; publish it unminimized rather than a bare False.
    if (!Core.empty() && Core.size() < Neg.size()) {
      std::vector<TermRef> Kept;
      for (size_t I = 0; I < Disj.size(); ++I)
        if (std::find(Core.begin(), Core.end(), Neg[I]) != Core.end())
          Kept.push_back(Disj[I]);
      E.Stats.CoreShrink += Neg.size() - Core.size();
      Out = E.F.mkOr(std::move(Kept));
    }
  }

  E.Opts.Share->publish(Level, serializeZFormula(E.F, E.N, Out));
  ++E.Stats.LemmasPublished;
}

void mucyc::shareImportRound(EngineContext &E, ShareImportMode Mode, int Depth,
                             const std::function<TermRef(int)> &FrameFn,
                             const std::function<void(int, TermRef)> &AddFn) {
  if (!E.Opts.ShareLemmas || !E.Opts.Share || Depth < 0 || E.Aborted ||
      E.Opts.ShareImportBudget == 0)
    return;
  std::vector<SharedLemma> Raw;
  E.ShareCursor =
      E.Opts.Share->fetch(E.ShareCursor, E.Opts.ShareImportBudget, Raw);
  if (Raw.empty())
    return;

  // Parse into this member's context first; a wire-format reject is final.
  struct Pending {
    int Level;
    TermRef L;
  };
  std::vector<Pending> Pend;
  for (const SharedLemma &SL : Raw) {
    TermRef L = parseZFormula(E.F, E.N, SL.Text, nullptr);
    if (!L.isValid()) {
      ++E.Stats.LemmasRejected;
      continue;
    }
    // Decisions below depend only on frame-independent checks (a lemma
    // failing (b) still falls back to the deepest level), so a lemma seen
    // once never needs revisiting.
    if (!E.ShareSeen.insert(L.Idx).second)
      continue;
    Pend.push_back({SL.Level, L});
  }

  for (const Pending &P : Pend) {
    if (E.expired())
      return;
    TermRef NotL = E.F.mkNot(P.L);

    // (a) iota => L — the publisher-independent half of the Conflict
    // justification; without it nothing is admissible anywhere.
    if (E.sat({E.N.Init, NotL})) {
      ++E.Stats.LemmasRejected;
      continue;
    }
    if (E.Aborted)
      return;

    if (Mode == ShareImportMode::Inductive) {
      // Mon traces keep cell[d+1] => cell[d]; only a self-inductive lemma
      // (L /\ L /\ tau => L) may be conjoined to every cell at once
      // without disturbing that chain.
      if (E.sat({E.zToX(P.L), E.zToY(P.L), E.N.Trans, NotL})) {
        ++E.Stats.LemmasRejected;
        continue;
      }
      if (E.Aborted)
        return;
      AddFn(0, P.L);
      ++E.Stats.LemmasImported;
      continue;
    }

    int K = std::clamp(P.Level, 0, Depth);
    if (K < Depth) {
      // (b) frame(K+1)(x) /\ frame(K+1)(y) /\ tau => L(z): together with
      // (a) this is exactly the native Conflict justification at level K.
      TermRef Fr = FrameFn(K + 1);
      if (!E.sat({E.zToX(Fr), E.zToY(Fr), E.N.Trans, NotL}) && !E.Aborted) {
        AddFn(K, P.L);
        ++E.Stats.LemmasImported;
        continue;
      }
      if (E.Aborted)
        return;
    }
    // Deepest-level fallback, justified by (a) alone: unfolding inserts
    // fresh roots at the front, so the deepest frame/cell answers only to
    // iota for the rest of the run.
    AddFn(Depth, P.L);
    ++E.Stats.LemmasImported;
  }
}
