//===- solver/Refiner.h - Refinement procedure interface --------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface of the paper's refinement procedures (Algorithms 3-6).
/// refine() strengthens the trace view rooted at a level against an
/// assertion alpha(z) and either succeeds (returns nullopt; afterwards
/// root => alpha) or returns a counterexample piece gamma(z) in the weak
/// sense of Definition 11: gamma /\ not(alpha) is satisfiable and gamma is
/// an under-approximation of the states reachable by the subtree.
///
/// refineFull() implements the generalized refinement problem: it
/// accumulates pieces (the (*) wrapper around Algorithm 5, the Theorem 18
/// wrapper around Algorithm 6) and returns the whole counterexample, false
/// if none.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_REFINER_H
#define MUCYC_SOLVER_REFINER_H

#include "solver/Engine.h"
#include "solver/Trace.h"

#include <memory>

namespace mucyc {

class Refiner {
public:
  explicit Refiner(EngineContext &E) : E(E) {}
  virtual ~Refiner() = default;

  /// One refinement round; see the file comment.
  virtual std::optional<TermRef> refine(Trace &T, int Level,
                                        TermRef Alpha) = 0;

  /// Generalized refinement: loop refine(), weakening alpha by each piece,
  /// until no piece remains. Returns the accumulated counterexample
  /// (mkFalse when the refinement succeeded outright).
  virtual TermRef refineFull(Trace &T, int Level, TermRef Alpha);

  EngineContext &ctx() { return E; }

protected:
  /// Shared "Induction" optimization (Section 5.3): promote lemmas of the
  /// child cell to the cell at \p Level when they are initial and inductive
  /// across one step.
  void applyInduction(Trace &T, int Level);

  EngineContext &E;
};

/// Algorithm 3: quantifier-elimination-based generalized refinement.
class NaiveRefiner : public Refiner {
public:
  using Refiner::Refiner;
  std::optional<TermRef> refine(Trace &T, int Level, TermRef Alpha) override;
  TermRef refineFull(Trace &T, int Level, TermRef Alpha) override;
};

/// Algorithm 4: MBP-based, computes the full counterexample eagerly.
class NaiveMbpRefiner : public Refiner {
public:
  using Refiner::Refiner;
  std::optional<TermRef> refine(Trace &T, int Level, TermRef Alpha) override;
  TermRef refineFull(Trace &T, int Level, TermRef Alpha) override;
};

/// Algorithm 5: the Spacer-like procedure with early return (Ret configs).
class IndSpacerRefiner : public Refiner {
public:
  using Refiner::Refiner;
  std::optional<TermRef> refine(Trace &T, int Level, TermRef Alpha) override;

private:
  /// Cumulative counterexample union for the Cex(...) optimization.
  TermRef GlobalCex;
};

/// Algorithm 6: the coroutine procedure (Yld configs).
class YieldRefiner : public Refiner {
public:
  using Refiner::Refiner;
  std::optional<TermRef> refine(Trace &T, int Level, TermRef Alpha) override;
  TermRef refineFull(Trace &T, int Level, TermRef Alpha) override;
};

/// Creates the refiner for Ret/Yld/Naive/NaiveMbp engines.
std::unique_ptr<Refiner> makeRefiner(EngineContext &E);

} // namespace mucyc

#endif // MUCYC_SOLVER_REFINER_H
