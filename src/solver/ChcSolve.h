//===- solver/ChcSolve.h - Top-level CHC solving ----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2: the outer loop that unfolds approximations, refines traces,
/// and extracts invariants — dispatching to the configured refinement
/// engine (Algorithms 3-6), the Fig. 1/15 transition system, or the Solve
/// baseline. This is the public solving entry point; see also
/// solveChcSystem() which runs the full pipeline (preprocess, normalize,
/// solve, lift the solution).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_CHCSOLVE_H
#define MUCYC_SOLVER_CHCSOLVE_H

#include "chc/Normalize.h"
#include "solver/Engine.h"
#include "solver/Trace.h"

namespace mucyc {

enum class ChcStatus { Sat, Unsat, Unknown };

const char *chcStatusName(ChcStatus S);

struct SolverResult {
  ChcStatus Status = ChcStatus::Unknown;
  /// Sat: an inductive invariant phi(z) with iota => phi, phi closed under
  /// tau, and phi /\ beta unsatisfiable.
  TermRef Invariant;
  /// Unsat: a non-empty region gamma(z) of reachable bad states.
  TermRef CexPiece;
  /// Depth of the approximation at which the answer was found.
  int Depth = 0;
  SolveStats Stats;
  double Seconds = 0;
  /// Set when SolverOptions::VerifyResult demoted a definitive answer to
  /// Unknown because the independent check refuted it. This is always a
  /// bug in the engine (or the substrate it ran on); VerifyNote names the
  /// violated clause.
  bool VerifyFailed = false;
  std::string VerifyNote;
  /// Why an Unknown result is Unknown: budget trip, cancellation, timeout,
  /// invariant violation, or an injected fault. None for definitive
  /// answers. The runtime retry ladder keys off errorRecoverable(Code).
  ErrorInfo Error;
};

/// Solver for systems in the paper's normalized form.
class ChcSolver {
public:
  ChcSolver(TermContext &F, const NormalizedChc &N, SolverOptions Opts)
      : F(F), N(N), Opts(std::move(Opts)) {}

  SolverResult solve();

private:
  SolverResult solveInductive();

  TermContext &F;
  NormalizedChc N;
  SolverOptions Opts;
};

/// Full pipeline on a general CHC system: preprocess (optional), normalize,
/// solve, and (for Sat) lift the invariant back to per-predicate
/// definitions in \p SolutionOut when non-null.
SolverResult solveChcSystem(ChcSystem &Sys, const SolverOptions &Opts,
                            bool Preprocess = true,
                            ChcSolution *SolutionOut = nullptr);

//===----------------------------------------------------------------------===
// Ground-truth utilities (used by Verify and the test-suite)
//===----------------------------------------------------------------------===

/// Exact states reachable by derivation trees of height <= K (QE-based).
TermRef boundedReach(TermContext &F, const NormalizedChc &N, int K);

/// Bounded model checking: Unsat if a bad state is derivable within height
/// MaxK, Sat if the exact reach set converges safely first, else Unknown.
ChcStatus bmcStatus(TermContext &F, const NormalizedChc &N, int MaxK);

/// Diagnostic for a failed verification: names which of the normalized
/// system's clauses the candidate answer violates, with a witness model.
/// Fuzz failure reports and --verify error output both need the clause,
/// not just a boolean.
struct VerifyDiag {
  enum class Rule {
    None,         ///< Verification passed (or no answer to check).
    InitClause,   ///< Sat: iota(z) => phi(z) fails.
    StepClause,   ///< Sat: phi(x) /\ phi(y) /\ tau => phi(z) fails.
    QueryClause,  ///< Sat: phi(z) /\ beta(z) satisfiable.
    NotBad,       ///< Unsat: no state of gamma satisfies beta.
    NotReachable, ///< Unsat: gamma /\ beta unreachable within the bound.
  };
  Rule Failed = Rule::None;
  /// Human-readable: clause name plus the witness assignment.
  std::string Message;
};

/// Name of the violated rule, e.g. "step-clause".
const char *verifyRuleName(VerifyDiag::Rule R);

/// Checks that \p Inv is an inductive safe invariant for \p N. On failure
/// fills \p Diag (when non-null) with the violated clause and a witness.
bool verifyInvariant(TermContext &F, const NormalizedChc &N, TermRef Inv,
                     VerifyDiag *Diag = nullptr);

/// Checks that some state of \p Gamma is reachable (within \p MaxK) and
/// bad. On failure fills \p Diag (when non-null).
bool verifyCexPiece(TermContext &F, const NormalizedChc &N, TermRef Gamma,
                    int MaxK, VerifyDiag *Diag = nullptr);

} // namespace mucyc

#endif // MUCYC_SOLVER_CHCSOLVE_H
