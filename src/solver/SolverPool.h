//===- solver/SolverPool.h - Incremental solver reuse -----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental backend behind EngineContext::sat(): a SolverPool that
/// keeps one persistent SmtSolver per assertion base (in practice the
/// transition relation tau, which appears in nearly every refinement query)
/// and issues the remaining conjuncts — frame lemmas, cubes, negated
/// queries — as assumption checks, so their Tseitin indicator literals and
/// every CDCL lemma learned about them survive from one query to the next;
/// plus a QueryCache memoizing (verdict, model) per hash-consed conjunction.
///
/// Pool keying: a solver is keyed by the TermRef index of the one conjunct
/// designated as its base (UINT32_MAX for the baseless bucket). The base is
/// asserted once at construction; every other conjunct of every query rides
/// in as an assumption, so queries against the same base never re-encode
/// shared formulas. Because assumptions keep registering theory atoms that
/// are never unregistered, a pooled solver is retired (destroyed and lazily
/// rebuilt) once its atom count passes a fixed limit — stale atoms slow the
/// theory checker but never affect soundness, so the limit is purely a
/// performance valve.
///
/// Cache invalidation: there is none, by construction. sat() queries are
/// closed conjunctions whose satisfiability depends only on the term
/// structure, never on engine state, so a cached verdict/model stays valid
/// for the lifetime of the TermContext. Eviction (FIFO) exists only to
/// bound memory.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_SOLVER_SOLVERPOOL_H
#define MUCYC_SOLVER_SOLVERPOOL_H

#include "smt/SmtSolver.h"

#include <deque>
#include <memory>
#include <unordered_map>

namespace mucyc {

/// Memoizes EngineContext::sat() answers per hash-consed conjunction term.
/// A hit replays the exact (verdict, model) of the original check, so a
/// cached run is indistinguishable from a re-checked one.
class QueryCache {
public:
  explicit QueryCache(size_t Capacity) : Cap(Capacity) {}

  struct Entry {
    bool IsSat = false;
    Model M; ///< Meaningful only when IsSat.
  };

  /// nullptr on miss. The pointer is invalidated by the next insert().
  const Entry *lookup(TermRef Key) const {
    auto It = Map.find(Key.Idx);
    return It == Map.end() ? nullptr : &It->second;
  }

  void insert(TermRef Key, Entry E) {
    if (Cap == 0)
      return;
    if (Map.count(Key.Idx))
      return;
    if (Map.size() >= Cap) {
      Map.erase(Fifo.front());
      Fifo.pop_front();
      ++Evicts;
    }
    Map.emplace(Key.Idx, std::move(E));
    Fifo.push_back(Key.Idx);
  }

  uint64_t evictions() const { return Evicts; }
  size_t size() const { return Map.size(); }

private:
  size_t Cap;
  std::unordered_map<uint32_t, Entry> Map;
  std::deque<uint32_t> Fifo; // Insertion order for FIFO eviction.
  uint64_t Evicts = 0;
};

/// Persistent solvers keyed by assertion base; see the file comment.
class SolverPool {
public:
  /// \p AtomLimit: retire a pooled solver once its Tseitin atom count
  /// exceeds this (0 = never retire).
  explicit SolverPool(TermContext &Ctx, size_t AtomLimit = 20000)
      : Ctx(Ctx), AtomLimit(AtomLimit) {}

  struct Result {
    SmtStatus St = SmtStatus::Unknown;
    Model M; ///< Meaningful only when St == Sat.
  };

  /// Checks base /\ (/\ Rest), reusing (or creating) the pooled solver for
  /// \p Base. \p Base may be invalid for the baseless bucket; \p Rest must
  /// not contain it. The cancel flag is installed fresh on every call (the
  /// same pooled solver serves runs with different flags in tests).
  Result check(TermRef Base, const std::vector<TermRef> &Rest,
               const std::atomic<bool> *Cancel);

  /// Solvers destroyed because they exceeded the atom limit.
  uint64_t retires() const { return Retires; }

  /// Live pooled solvers (testing).
  size_t size() const { return Pool.size(); }

private:
  SmtSolver &solverFor(TermRef Base);

  TermContext &Ctx;
  size_t AtomLimit;
  std::unordered_map<uint32_t, std::unique_ptr<SmtSolver>> Pool;
  uint64_t Retires = 0;
};

} // namespace mucyc

#endif // MUCYC_SOLVER_SOLVERPOOL_H
