//===- term/TermOps.cpp - Traversals, substitution, simplification --------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Term.h"

#include <algorithm>
#include <unordered_set>

using namespace mucyc;

bool TermContext::isAtom(TermRef T) const {
  const TermNode &N = node(T);
  switch (N.K) {
  case Kind::True:
  case Kind::False:
  case Kind::Le:
  case Kind::Lt:
  case Kind::EqA:
  case Kind::Divides:
    return true;
  case Kind::Var:
    return N.S == Sort::Bool;
  default:
    return false;
  }
}

bool TermContext::isLiteral(TermRef T) const {
  const TermNode &N = node(T);
  if (N.K == Kind::Not)
    return isAtom(N.Kids[0]);
  return isAtom(T);
}

std::vector<VarId> TermContext::freeVars(TermRef T) {
  std::unordered_set<uint32_t> Seen;
  std::unordered_set<VarId> Out;
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur.Idx).second)
      continue;
    const TermNode &N = node(Cur);
    if (N.K == Kind::Var)
      Out.insert(N.Var);
    for (TermRef Kid : N.Kids)
      Work.push_back(Kid);
  }
  std::vector<VarId> R(Out.begin(), Out.end());
  std::sort(R.begin(), R.end());
  return R;
}

std::vector<TermRef> TermContext::collectAtoms(TermRef T) {
  std::unordered_set<uint32_t> Seen;
  std::vector<TermRef> Out;
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur.Idx).second)
      continue;
    const TermNode &N = node(Cur);
    if (N.K == Kind::True || N.K == Kind::False)
      continue;
    if (isAtom(Cur)) {
      Out.push_back(Cur);
      continue;
    }
    for (TermRef Kid : N.Kids)
      Work.push_back(Kid);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {
/// Shared recursive rebuild used by substitute and simplify. Rebuilding
/// through the public builders re-canonicalizes everything.
TermRef rebuild(TermContext &Ctx, TermRef T,
                const std::unordered_map<VarId, TermRef> *Map,
                std::unordered_map<uint32_t, TermRef> &Memo) {
  auto It = Memo.find(T.Idx);
  if (It != Memo.end())
    return It->second;
  const TermNode &N = Ctx.node(T);
  TermRef R;
  switch (N.K) {
  case Kind::True:
  case Kind::False:
  case Kind::Const:
    R = T;
    break;
  case Kind::Var: {
    if (Map) {
      auto MIt = Map->find(N.Var);
      if (MIt != Map->end()) {
        R = MIt->second;
        break;
      }
    }
    R = T;
    break;
  }
  case Kind::Not:
    R = Ctx.mkNot(rebuild(Ctx, N.Kids[0], Map, Memo));
    break;
  case Kind::And:
  case Kind::Or:
  case Kind::Add: {
    std::vector<TermRef> Kids;
    Kids.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      Kids.push_back(rebuild(Ctx, Kid, Map, Memo));
    R = N.K == Kind::And  ? Ctx.mkAnd(std::move(Kids))
        : N.K == Kind::Or ? Ctx.mkOr(std::move(Kids))
                          : Ctx.mkAdd(std::move(Kids));
    break;
  }
  case Kind::Mul:
    R = Ctx.mkMul(N.Val, rebuild(Ctx, N.Kids[0], Map, Memo));
    break;
  case Kind::Le:
    R = Ctx.mkLe(rebuild(Ctx, N.Kids[0], Map, Memo),
                 rebuild(Ctx, N.Kids[1], Map, Memo));
    break;
  case Kind::Lt:
    R = Ctx.mkLt(rebuild(Ctx, N.Kids[0], Map, Memo),
                 rebuild(Ctx, N.Kids[1], Map, Memo));
    break;
  case Kind::EqA:
    R = Ctx.mkEq(rebuild(Ctx, N.Kids[0], Map, Memo),
                 rebuild(Ctx, N.Kids[1], Map, Memo));
    break;
  case Kind::Divides:
    assert(N.Val.isInt());
    R = Ctx.mkDivides(N.Val.num(), rebuild(Ctx, N.Kids[0], Map, Memo));
    break;
  }
  Memo.emplace(T.Idx, R);
  return R;
}
} // namespace

TermRef TermContext::substitute(TermRef T,
                                const std::unordered_map<VarId, TermRef> &Map) {
  std::unordered_map<uint32_t, TermRef> Memo;
  return rebuild(*this, T, &Map, Memo);
}

TermRef TermContext::simplify(TermRef T) {
  std::unordered_map<uint32_t, TermRef> Memo;
  return rebuild(*this, T, nullptr, Memo);
}
