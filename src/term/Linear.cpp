//===- term/Linear.cpp - Linear-arithmetic views of terms -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Linear.h"

using namespace mucyc;

void LinExpr::add(const LinExpr &RHS, const Rational &Scale) {
  if (Scale.isZero())
    return;
  Const += RHS.Const * Scale;
  for (const auto &[V, C] : RHS.Coeffs)
    addVar(V, C * Scale);
}

void LinExpr::addVar(VarId V, const Rational &C) {
  if (C.isZero())
    return;
  auto [It, Inserted] = Coeffs.emplace(V, C);
  if (Inserted)
    return;
  It->second += C;
  if (It->second.isZero())
    Coeffs.erase(It);
}

LinExpr LinExpr::scaled(const Rational &S) const {
  LinExpr R;
  R.add(*this, S);
  return R;
}

Rational LinExpr::coeff(VarId V) const {
  auto It = Coeffs.find(V);
  return It == Coeffs.end() ? Rational(0) : It->second;
}

namespace {
/// Recursive accumulation of Scale * T into Out.
void accumulate(const TermContext &Ctx, TermRef T, const Rational &Scale,
                LinExpr &Out) {
  const TermNode &N = Ctx.node(T);
  switch (N.K) {
  case Kind::Const:
    Out.Const += N.Val * Scale;
    return;
  case Kind::Var:
    Out.addVar(N.Var, Scale);
    return;
  case Kind::Mul:
    accumulate(Ctx, N.Kids[0], Scale * N.Val, Out);
    return;
  case Kind::Add:
    for (TermRef Kid : N.Kids)
      accumulate(Ctx, Kid, Scale, Out);
    return;
  default:
    assert(false && "non-linear or non-arithmetic term in LinExpr");
  }
}
} // namespace

LinExpr LinExpr::fromTerm(const TermContext &Ctx, TermRef T) {
  LinExpr E;
  accumulate(Ctx, T, Rational(1), E);
  return E;
}

TermRef LinExpr::toTerm(TermContext &Ctx, Sort S) const {
  std::vector<TermRef> Monomials;
  Monomials.reserve(Coeffs.size() + 1);
  for (const auto &[V, C] : Coeffs)
    Monomials.push_back(Ctx.mkMul(C, Ctx.varTerm(V)));
  if (!Const.isZero() || Monomials.empty())
    Monomials.push_back(Ctx.mkConst(Const, S));
  return Ctx.mkAdd(std::move(Monomials));
}

Rational LinExpr::integerNormalize() {
  BigInt L(1);
  for (const auto &[V, C] : Coeffs)
    L = BigInt::lcm(L, C.den());
  if (L.isOne())
    return Rational(1);
  Rational Scale{L};
  *this = scaled(Scale);
  return Scale;
}

BigInt LinExpr::coeffGcd() const {
  BigInt G;
  for (const auto &[V, C] : Coeffs) {
    assert(C.isInt() && "coeffGcd before integerNormalize");
    G = BigInt::gcd(G, C.num());
  }
  return G;
}

LinAtom LinAtom::fromAtomTerm(const TermContext &Ctx, TermRef Atom) {
  const TermNode &N = Ctx.node(Atom);
  LinAtom A;
  switch (N.K) {
  case Kind::Le:
    A.Rel = LinRel::Le;
    break;
  case Kind::Lt:
    A.Rel = LinRel::Lt;
    break;
  case Kind::EqA:
    A.Rel = LinRel::Eq;
    break;
  default:
    assert(false && "not a comparison atom");
    A.Rel = LinRel::Le;
    break;
  }
  // Canonical atom is Kids[0] <op> Kids[1]; solved form is lhs - rhs <op> 0.
  A.Expr = LinExpr::fromTerm(Ctx, N.Kids[0]);
  LinExpr R = LinExpr::fromTerm(Ctx, N.Kids[1]);
  A.Expr.add(R, Rational(-1));
  return A;
}

TermRef LinAtom::toTerm(TermContext &Ctx, Sort S) const {
  LinExpr Lhs = Expr;
  Rational K = -Lhs.Const;
  Lhs.Const = Rational(0);
  TermRef L = Lhs.toTerm(Ctx, S);
  TermRef R = Ctx.mkConst(K, S);
  switch (Rel) {
  case LinRel::Le:
    return Ctx.mkLe(L, R);
  case LinRel::Lt:
    return Ctx.mkLt(L, R);
  case LinRel::Eq:
    return Ctx.mkEq(L, R);
  }
  assert(false && "bad relation");
  return Ctx.mkTrue();
}

Sort mucyc::atomArithSort(const TermContext &Ctx, TermRef Atom) {
  const TermNode &N = Ctx.node(Atom);
  assert((N.K == Kind::Le || N.K == Kind::Lt || N.K == Kind::EqA ||
          N.K == Kind::Divides) &&
         "not an arithmetic atom");
  return Ctx.sort(N.Kids[0]);
}
