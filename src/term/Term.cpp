//===- term/Term.cpp - Hash consing, variables, constants -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Term.h"

using namespace mucyc;

size_t TermContext::NodeKeyHash::operator()(const NodeKey &K) const {
  const TermNode &N = *K.N;
  size_t H = static_cast<size_t>(N.K) * 0x9e3779b97f4a7c15ull +
             static_cast<size_t>(N.S);
  H = H * 31 + N.Var;
  H = H * 31 + N.Val.hash();
  for (TermRef Kid : N.Kids)
    H = H * 31 + Kid.Idx;
  return H;
}

bool TermContext::NodeKeyEq::operator()(const NodeKey &A,
                                        const NodeKey &B) const {
  const TermNode &X = *A.N, &Y = *B.N;
  return X.K == Y.K && X.S == Y.S && X.Var == Y.Var && X.Val == Y.Val &&
         X.Kids == Y.Kids;
}

TermContext::TermContext() {
  TrueRef = intern(Kind::True, Sort::Bool, 0, Rational());
  FalseRef = intern(Kind::False, Sort::Bool, 0, Rational());
}

TermRef TermContext::intern(Kind K, Sort S, VarId Var, Rational Val,
                            const TermRef *Kids, size_t NumKids) {
  // Probe with a stack node borrowing the caller's kid array; nothing is
  // copied on a hash-cons hit.
  TermNode N{K, S, Var, std::move(Val), KidList(Kids, NumKids)};
  auto It = Interned.find(NodeKey{&N});
  if (It != Interned.end())
    return TermRef(It->second);
  // Governance hooks fire before any mutation, so a budget trip or injected
  // allocation failure leaves the context consistent and reusable.
  if (Faults)
    Faults->onAlloc();
  if (Gauge)
    Gauge->charge(sizeof(TermNode) + N.Kids.size() * sizeof(TermRef) + 64);
  // Move the kid array into the arena; the stored node must not reference
  // caller storage.
  if (NumKids)
    N.Kids = KidList(KidArena.copyArray(Kids, NumKids), NumKids);
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(std::move(N));
  // The map key must point at the stored node, not the local.
  Interned.emplace(NodeKey{&Nodes[Idx]}, Idx);
  return TermRef(Idx);
}

TermRef TermContext::mkVar(const std::string &Name, Sort S) {
  auto It = VarByName.find(Name);
  if (It != VarByName.end()) {
    assert(Vars[It->second].S == S && "variable redeclared at another sort");
    return VarTerms[It->second];
  }
  VarId Id = static_cast<VarId>(Vars.size());
  Vars.push_back(VarInfo{Name, S});
  VarByName.emplace(Name, Id);
  TermRef T = intern(Kind::Var, S, Id, Rational());
  VarTerms.push_back(T);
  return T;
}

TermRef TermContext::mkFreshVar(const std::string &Prefix, Sort S) {
  std::string Name;
  do {
    Name = Prefix + "!" + std::to_string(FreshCounter++);
  } while (VarByName.count(Name));
  return mkVar(Name, S);
}

TermRef TermContext::varTerm(VarId V) {
  assert(V < VarTerms.size() && "stale VarId");
  return VarTerms[V];
}

TermRef TermContext::mkConst(const Rational &V, Sort S) {
  assert(S != Sort::Bool && "use mkBool for boolean constants");
  assert((S != Sort::Int || V.isInt()) && "non-integral Int constant");
  return intern(Kind::Const, S, 0, V);
}
