//===- term/Eval.cpp - Ground evaluation of terms -------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Eval.h"

using namespace mucyc;

std::string Value::toString() const {
  if (S == Sort::Bool)
    return B ? "true" : "false";
  return R.toString();
}

Value mucyc::evalTerm(const TermContext &Ctx, TermRef T, const Assignment &A) {
  const TermNode &N = Ctx.node(T);
  switch (N.K) {
  case Kind::True:
    return Value::boolean(true);
  case Kind::False:
    return Value::boolean(false);
  case Kind::Const:
    return Value::number(N.Val, N.S);
  case Kind::Var: {
    auto It = A.find(N.Var);
    assert(It != A.end() && "unassigned variable during evaluation");
    assert(It->second.S == N.S && "sort mismatch in assignment");
    return It->second;
  }
  case Kind::Not:
    return Value::boolean(!evalTerm(Ctx, N.Kids[0], A).B);
  case Kind::And: {
    for (TermRef Kid : N.Kids)
      if (!evalTerm(Ctx, Kid, A).B)
        return Value::boolean(false);
    return Value::boolean(true);
  }
  case Kind::Or: {
    for (TermRef Kid : N.Kids)
      if (evalTerm(Ctx, Kid, A).B)
        return Value::boolean(true);
    return Value::boolean(false);
  }
  case Kind::Add: {
    Rational Sum;
    for (TermRef Kid : N.Kids)
      Sum += evalTerm(Ctx, Kid, A).R;
    return Value::number(Sum, N.S);
  }
  case Kind::Mul:
    return Value::number(N.Val * evalTerm(Ctx, N.Kids[0], A).R, N.S);
  case Kind::Le:
    return Value::boolean(evalTerm(Ctx, N.Kids[0], A).R <=
                          evalTerm(Ctx, N.Kids[1], A).R);
  case Kind::Lt:
    return Value::boolean(evalTerm(Ctx, N.Kids[0], A).R <
                          evalTerm(Ctx, N.Kids[1], A).R);
  case Kind::EqA:
    return Value::boolean(evalTerm(Ctx, N.Kids[0], A).R ==
                          evalTerm(Ctx, N.Kids[1], A).R);
  case Kind::Divides: {
    Rational V = evalTerm(Ctx, N.Kids[0], A).R;
    assert(V.isInt() && N.Val.isInt());
    return Value::boolean(V.num().euclidMod(N.Val.num()).isZero());
  }
  }
  assert(false && "unknown kind");
  return Value::boolean(false);
}

bool mucyc::evalBool(const TermContext &Ctx, TermRef T, const Assignment &A) {
  Value V = evalTerm(Ctx, T, A);
  assert(V.S == Sort::Bool);
  return V.B;
}
