//===- term/Term.h - Hash-consed terms and formulas -------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint language L of the paper: quantifier-free formulas over
/// Booleans and linear integer/real arithmetic. Terms are immutable,
/// hash-consed DAG nodes owned by a TermContext; a TermRef is a cheap index
/// into that context and structural equality is reference equality.
///
/// Builders canonicalize on the fly: implications/iff/ite are desugared,
/// and/or are flattened and deduplicated, and arithmetic atoms are rewritten
/// into a normal form "sum of integer-coefficient monomials <op> rational
/// constant" so that syntactically different spellings of the same atom
/// coincide. This keeps the literal universe small, which matters for the
/// image-finiteness arguments of model-based projection.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TERM_TERM_H
#define MUCYC_TERM_TERM_H

#include "support/Arena.h"
#include "support/Fault.h"
#include "support/Rational.h"

#include <cstdint>
#include <deque>
#include <iterator>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mucyc {

/// Sorts of the constraint language.
enum class Sort : uint8_t { Bool, Int, Real };

/// Returns "Bool", "Int" or "Real".
const char *sortName(Sort S);

/// Term node kinds after builder canonicalization. Implies, Iff, Ite, Ge,
/// Gt, Sub and unary minus exist only as builder sugar.
enum class Kind : uint8_t {
  True,
  False,
  Var,     ///< Variable (Bool, Int or Real).
  Const,   ///< Numeric literal (Int or Real).
  Not,
  And,     ///< N-ary, flattened, >= 2 children.
  Or,      ///< N-ary, flattened, >= 2 children.
  Le,      ///< Canonical arith atom: kids[0] <= kids[1] (linear <= const).
  Lt,      ///< Canonical arith atom: kids[0] <  kids[1].
  EqA,     ///< Canonical arith atom: kids[0] =  kids[1].
  Divides, ///< (d | kids[0]) for a positive integer modulus d, Int only.
  Add,     ///< N-ary arithmetic sum.
  Mul,     ///< Scalar multiple: Val * kids[0].
};

using VarId = uint32_t;

/// Reference to a hash-consed term. Only meaningful together with the
/// TermContext that created it.
struct TermRef {
  uint32_t Idx = UINT32_MAX;

  TermRef() = default;
  explicit TermRef(uint32_t I) : Idx(I) {}

  bool isValid() const { return Idx != UINT32_MAX; }
  bool operator==(const TermRef &RHS) const { return Idx == RHS.Idx; }
  bool operator!=(const TermRef &RHS) const { return Idx != RHS.Idx; }
  bool operator<(const TermRef &RHS) const { return Idx < RHS.Idx; }
};

struct TermRefHash {
  size_t operator()(TermRef T) const { return T.Idx * 0x9e3779b9u; }
};

/// Immutable view of a node's children. The referenced array lives in the
/// owning TermContext's kid arena (or, for probe keys during interning, on
/// the caller's stack) — a KidList is a 16-byte span, so TermNode copies are
/// shallow and kid storage is allocated exactly once per interned node.
class KidList {
public:
  using value_type = TermRef;
  using const_iterator = const TermRef *;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  KidList() = default;
  KidList(const TermRef *D, size_t N)
      : Data(D), N(static_cast<uint32_t>(N)) {}

  const TermRef *data() const { return Data; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }

  const TermRef &operator[](size_t I) const {
    assert(I < N && "kid index out of range");
    return Data[I];
  }
  const TermRef &front() const { return (*this)[0]; }
  const TermRef &back() const { return (*this)[N - 1]; }

  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + N; }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  bool operator==(const KidList &RHS) const {
    if (N != RHS.N)
      return false;
    for (uint32_t I = 0; I < N; ++I)
      if (Data[I] != RHS.Data[I])
        return false;
    return true;
  }
  bool operator!=(const KidList &RHS) const { return !(*this == RHS); }

  /// Materializes an owned copy; also reachable implicitly so existing
  /// `std::vector<TermRef> V = node.Kids` call sites keep compiling.
  std::vector<TermRef> vec() const {
    return std::vector<TermRef>(Data, Data + N);
  }
  operator std::vector<TermRef>() const { return vec(); }

private:
  const TermRef *Data = nullptr;
  uint32_t N = 0;
};

/// An immutable term node. Access through TermContext::node().
struct TermNode {
  Kind K;
  Sort S;
  VarId Var = 0; ///< For Kind::Var.
  Rational Val;  ///< Const value, Mul scalar, Divides modulus.
  KidList Kids;  ///< Children; storage owned by the context's kid arena.
};

/// Variable metadata.
struct VarInfo {
  std::string Name;
  Sort S;
};

/// Factory and owner of all terms. Not thread-safe; one context per solver
/// instance. All builder functions return canonicalized, hash-consed refs.
class TermContext {
public:
  TermContext();

  //===--------------------------------------------------------------------===
  // Node and variable access
  //===--------------------------------------------------------------------===

  const TermNode &node(TermRef T) const {
    assert(T.Idx < Nodes.size() && "stale TermRef");
    return Nodes[T.Idx];
  }
  Kind kind(TermRef T) const { return node(T).K; }
  Sort sort(TermRef T) const { return node(T).S; }

  const VarInfo &varInfo(VarId V) const {
    assert(V < Vars.size() && "stale VarId");
    return Vars[V];
  }
  size_t numVars() const { return Vars.size(); }
  size_t numTerms() const { return Nodes.size(); }

  //===--------------------------------------------------------------------===
  // Builders
  //===--------------------------------------------------------------------===

  TermRef mkTrue() const { return TrueRef; }
  TermRef mkFalse() const { return FalseRef; }
  TermRef mkBool(bool B) const { return B ? TrueRef : FalseRef; }

  /// Declares (or retrieves) the variable with the given name. A redeclared
  /// name must keep its sort.
  TermRef mkVar(const std::string &Name, Sort S);
  /// Creates a variable with a unique, fresh name derived from \p Prefix.
  TermRef mkFreshVar(const std::string &Prefix, Sort S);
  /// The Var term for an existing id.
  TermRef varTerm(VarId V);

  /// Numeric literal. For Sort::Int the value must be integral.
  TermRef mkConst(const Rational &V, Sort S);
  TermRef mkIntConst(int64_t V) { return mkConst(Rational(V), Sort::Int); }
  TermRef mkRealConst(const Rational &V) { return mkConst(V, Sort::Real); }

  TermRef mkNot(TermRef A);
  TermRef mkAnd(std::vector<TermRef> Kids);
  TermRef mkAnd(TermRef A, TermRef B) { return mkAnd(std::vector{A, B}); }
  TermRef mkOr(std::vector<TermRef> Kids);
  TermRef mkOr(TermRef A, TermRef B) { return mkOr(std::vector{A, B}); }
  TermRef mkImplies(TermRef A, TermRef B) { return mkOr(mkNot(A), B); }
  TermRef mkIff(TermRef A, TermRef B);
  /// Boolean-sorted if-then-else, desugared to (c∧a)∨(¬c∧b).
  TermRef mkIte(TermRef C, TermRef A, TermRef B);

  TermRef mkAdd(std::vector<TermRef> Kids);
  TermRef mkAdd(TermRef A, TermRef B) { return mkAdd(std::vector{A, B}); }
  TermRef mkSub(TermRef A, TermRef B);
  TermRef mkNeg(TermRef A) { return mkMul(Rational(-1), A); }
  TermRef mkMul(const Rational &C, TermRef A);

  /// Canonical atoms; Ge/Gt are flipped into Le/Lt.
  TermRef mkLe(TermRef A, TermRef B);
  TermRef mkLt(TermRef A, TermRef B);
  TermRef mkGe(TermRef A, TermRef B) { return mkLe(B, A); }
  TermRef mkGt(TermRef A, TermRef B) { return mkLt(B, A); }
  /// Equality; dispatches on sort (Bool becomes iff).
  TermRef mkEq(TermRef A, TermRef B);
  /// Divisibility atom (d | A) for positive integer \p D; Int terms only.
  TermRef mkDivides(const BigInt &D, TermRef A);

  //===--------------------------------------------------------------------===
  // Queries (implemented in TermOps.cpp)
  //===--------------------------------------------------------------------===

  /// True for the atoms the SMT layer handles: Le/Lt/EqA/Divides/Var(Bool)/
  /// True/False.
  bool isAtom(TermRef T) const;
  /// True if the formula is a literal: an atom or a negated atom.
  bool isLiteral(TermRef T) const;

  /// Collects the set of free variables, in ascending VarId order.
  std::vector<VarId> freeVars(TermRef T);
  /// Collects all distinct atoms occurring in a formula.
  std::vector<TermRef> collectAtoms(TermRef T);

  /// Capture-free substitution of variables by terms. Rebuilds through the
  /// builders, so the result is canonical.
  TermRef substitute(TermRef T,
                     const std::unordered_map<VarId, TermRef> &Map);

  /// Lightweight bottom-up simplification (constant folding, absorption).
  /// Builders already do most of this; simplify() re-runs them over a DAG.
  TermRef simplify(TermRef T);

  /// SMT-LIB-style rendering (see Print.cpp).
  std::string toString(TermRef T) const;

  //===--------------------------------------------------------------------===
  // Resource governance (see support/Fault.h)
  //===--------------------------------------------------------------------===

  /// Installs a cumulative-allocation gauge charged on every interned node.
  /// The SMT substrates created for this context (CDCL, simplex) pick it up
  /// too, so one gauge meters the whole solving attempt. The pointee must
  /// outlive its installation; uninstall (nullptr) before it dies.
  void setResourceGauge(ResourceGauge *G) { Gauge = G; }
  ResourceGauge *resourceGauge() const { return Gauge; }

  /// Installs a deterministic fault injector polled on every allocation.
  void setFaultInjector(FaultInjector *FI) { Faults = FI; }
  FaultInjector *faultInjector() const { return Faults; }

  /// Payload bytes the kid arena has handed out — a pure function of the
  /// interning trace (used by determinism tests and diagnostics).
  size_t kidArenaBytes() const { return KidArena.bytesAllocated(); }

private:
  friend class TermBuilderAccess;

  /// Interns the node (K, S, Var, Val, Kids[0..NumKids)). The kid array is
  /// only read during lookup; on a miss it is copied into the kid arena.
  TermRef intern(Kind K, Sort S, VarId Var, Rational Val,
                 const TermRef *Kids = nullptr, size_t NumKids = 0);
  /// Builds the canonical atom "LinTerm <op> Const" from an integer-
  /// normalized linear expression; \p K is Le, Lt or EqA.
  TermRef mkLinAtom(Kind K, TermRef Lhs, Sort S);

  struct NodeKey {
    const TermNode *N;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const;
  };
  struct NodeKeyEq {
    bool operator()(const NodeKey &A, const NodeKey &B) const;
  };

  /// Deque so that node addresses stay stable: the interning map keys point
  /// into this container. Nodes stay out of the arena because Rational
  /// members own heap storage; only the trivially-destructible kid arrays
  /// live in KidArena.
  std::deque<TermNode> Nodes;
  BumpArena KidArena;
  std::unordered_map<NodeKey, uint32_t, NodeKeyHash, NodeKeyEq> Interned;
  std::vector<VarInfo> Vars;
  std::unordered_map<std::string, VarId> VarByName;
  std::vector<TermRef> VarTerms;
  uint64_t FreshCounter = 0;
  TermRef TrueRef, FalseRef;
  ResourceGauge *Gauge = nullptr;
  FaultInjector *Faults = nullptr;
};

} // namespace mucyc

#endif // MUCYC_TERM_TERM_H
