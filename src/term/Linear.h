//===- term/Linear.h - Linear-arithmetic views of terms ---------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LinExpr is the workhorse view of an arithmetic term: a sparse map from
/// variables to rational coefficients plus a constant. The simplex core, the
/// MBP procedures and the atom canonicalizer all operate on LinExprs and
/// convert back to terms at the edges.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TERM_LINEAR_H
#define MUCYC_TERM_LINEAR_H

#include "term/Term.h"

#include <map>

namespace mucyc {

/// Sparse linear expression sum(Coeffs[v] * v) + Const. Coefficients are
/// never zero (entries are erased when they cancel).
struct LinExpr {
  std::map<VarId, Rational> Coeffs;
  Rational Const;

  bool isConstant() const { return Coeffs.empty(); }

  void add(const LinExpr &RHS, const Rational &Scale = Rational(1));
  void addVar(VarId V, const Rational &C);
  LinExpr scaled(const Rational &S) const;

  /// Coefficient of \p V (zero if absent).
  Rational coeff(VarId V) const;

  bool operator==(const LinExpr &RHS) const {
    return Const == RHS.Const && Coeffs == RHS.Coeffs;
  }

  /// Converts an arithmetic term (Add/Mul/Var/Const tree) into a LinExpr.
  /// Asserts if the term is not linear.
  static LinExpr fromTerm(const TermContext &Ctx, TermRef T);

  /// Rebuilds a canonical term of sort \p S (Int constants must be integral
  /// when S is Int).
  TermRef toTerm(TermContext &Ctx, Sort S) const;

  /// Multiplies through by the lcm of coefficient denominators so that all
  /// variable coefficients are integers; returns the scale factor used.
  Rational integerNormalize();

  /// Gcd of the (integer) variable coefficients; requires integerNormalize
  /// to have run. Returns 0 for a constant expression.
  BigInt coeffGcd() const;
};

/// Relation of a normalized atom E <rel> 0.
enum class LinRel : uint8_t { Le, Lt, Eq };

/// A linear atom in solved form: Expr <rel> 0.
struct LinAtom {
  LinExpr Expr;
  LinRel Rel;

  /// Decomposes a canonical Le/Lt/EqA atom term.
  static LinAtom fromAtomTerm(const TermContext &Ctx, TermRef Atom);
  /// Rebuilds the canonical atom term.
  TermRef toTerm(TermContext &Ctx, Sort S) const;
};

/// Determines the arithmetic sort used by an atom's variables; returns
/// Sort::Int for ground atoms.
Sort atomArithSort(const TermContext &Ctx, TermRef Atom);

} // namespace mucyc

#endif // MUCYC_TERM_LINEAR_H
