//===- term/Print.cpp - SMT-LIB-style term rendering ----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Term.h"

#include <sstream>

using namespace mucyc;

namespace {

void printRational(std::ostream &OS, const Rational &V, Sort S) {
  if (S == Sort::Int) {
    if (V.num().isNeg())
      OS << "(- " << (-V.num()).toString() << ")";
    else
      OS << V.num().toString();
    return;
  }
  if (V.isInt()) {
    if (V.num().isNeg())
      OS << "(- " << (-V.num()).toString() << ".0)";
    else
      OS << V.num().toString() << ".0";
    return;
  }
  bool Neg = V.sgn() < 0;
  if (Neg)
    OS << "(- ";
  OS << "(/ " << V.num().abs().toString() << ".0 " << V.den().toString()
     << ".0)";
  if (Neg)
    OS << ")";
}

void printTerm(const TermContext &Ctx, TermRef T, std::ostream &OS) {
  const TermNode &N = Ctx.node(T);
  switch (N.K) {
  case Kind::True:
    OS << "true";
    return;
  case Kind::False:
    OS << "false";
    return;
  case Kind::Var:
    OS << Ctx.varInfo(N.Var).Name;
    return;
  case Kind::Const:
    printRational(OS, N.Val, N.S);
    return;
  case Kind::Not:
    OS << "(not ";
    printTerm(Ctx, N.Kids[0], OS);
    OS << ")";
    return;
  case Kind::And:
  case Kind::Or:
  case Kind::Add: {
    OS << "(" << (N.K == Kind::And ? "and" : N.K == Kind::Or ? "or" : "+");
    for (TermRef Kid : N.Kids) {
      OS << " ";
      printTerm(Ctx, Kid, OS);
    }
    OS << ")";
    return;
  }
  case Kind::Mul:
    OS << "(* ";
    printRational(OS, N.Val, N.S);
    OS << " ";
    printTerm(Ctx, N.Kids[0], OS);
    OS << ")";
    return;
  case Kind::Le:
  case Kind::Lt:
  case Kind::EqA: {
    OS << "(" << (N.K == Kind::Le ? "<=" : N.K == Kind::Lt ? "<" : "=") << " ";
    printTerm(Ctx, N.Kids[0], OS);
    OS << " ";
    printTerm(Ctx, N.Kids[1], OS);
    OS << ")";
    return;
  }
  case Kind::Divides:
    OS << "((_ divisible " << N.Val.num().toString() << ") ";
    printTerm(Ctx, N.Kids[0], OS);
    OS << ")";
    return;
  }
  assert(false && "unknown kind");
}

} // namespace

std::string TermContext::toString(TermRef T) const {
  std::ostringstream OS;
  printTerm(*this, T, OS);
  return OS.str();
}
