//===- term/Sort.cpp ------------------------------------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Term.h"

const char *mucyc::sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "Bool";
  case Sort::Int:
    return "Int";
  case Sort::Real:
    return "Real";
  }
  assert(false && "unknown sort");
  return "?";
}
