//===- term/TermContext.cpp - Canonicalizing term builders ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder canonicalization rules:
///  * Not folds constants, double negation, and flips Le/Lt atoms so that
///    negated inequality literals never exist.
///  * And/Or flatten, deduplicate, absorb constants and detect complementary
///    pairs.
///  * Arithmetic comparisons are normalized to "monomial sum <op> constant"
///    with coprime integer coefficients; Int atoms are tightened so strict
///    inequalities disappear over Int.
///
//===----------------------------------------------------------------------===//

#include "term/Linear.h"
#include "term/Term.h"

#include <algorithm>
#include <set>

using namespace mucyc;

TermRef TermContext::mkNot(TermRef A) {
  const TermNode &N = node(A);
  assert(N.S == Sort::Bool && "not on non-boolean");
  switch (N.K) {
  case Kind::True:
    return FalseRef;
  case Kind::False:
    return TrueRef;
  case Kind::Not:
    return N.Kids[0];
  case Kind::Le:
    // not (L <= K)  ==>  K < L.
    return mkLt(N.Kids[1], N.Kids[0]);
  case Kind::Lt:
    // not (L < K)  ==>  K <= L.
    return mkLe(N.Kids[1], N.Kids[0]);
  default:
    return intern(Kind::Not, Sort::Bool, 0, Rational(), &A, 1);
  }
}

TermRef TermContext::mkAnd(std::vector<TermRef> Kids) {
  std::set<TermRef> Unique;
  std::vector<TermRef> Flat;
  // Worklist flattening of nested conjunctions.
  std::vector<TermRef> Work(Kids.rbegin(), Kids.rend());
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    const TermNode &N = node(T);
    assert(N.S == Sort::Bool && "and on non-boolean");
    if (N.K == Kind::True)
      continue;
    if (N.K == Kind::False)
      return FalseRef;
    if (N.K == Kind::And) {
      for (auto It = N.Kids.rbegin(); It != N.Kids.rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    if (Unique.insert(T).second)
      Flat.push_back(T);
  }
  // a and not(a) is false.
  for (TermRef T : Flat)
    if (Unique.count(mkNot(T)))
      return FalseRef;
  if (Flat.empty())
    return TrueRef;
  if (Flat.size() == 1)
    return Flat[0];
  std::sort(Flat.begin(), Flat.end());
  return intern(Kind::And, Sort::Bool, 0, Rational(), Flat.data(),
                Flat.size());
}

TermRef TermContext::mkOr(std::vector<TermRef> Kids) {
  std::set<TermRef> Unique;
  std::vector<TermRef> Flat;
  std::vector<TermRef> Work(Kids.rbegin(), Kids.rend());
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    const TermNode &N = node(T);
    assert(N.S == Sort::Bool && "or on non-boolean");
    if (N.K == Kind::False)
      continue;
    if (N.K == Kind::True)
      return TrueRef;
    if (N.K == Kind::Or) {
      for (auto It = N.Kids.rbegin(); It != N.Kids.rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    if (Unique.insert(T).second)
      Flat.push_back(T);
  }
  for (TermRef T : Flat)
    if (Unique.count(mkNot(T)))
      return TrueRef;
  if (Flat.empty())
    return FalseRef;
  if (Flat.size() == 1)
    return Flat[0];
  std::sort(Flat.begin(), Flat.end());
  return intern(Kind::Or, Sort::Bool, 0, Rational(), Flat.data(), Flat.size());
}

TermRef TermContext::mkIff(TermRef A, TermRef B) {
  return mkAnd(mkImplies(A, B), mkImplies(B, A));
}

TermRef TermContext::mkIte(TermRef C, TermRef A, TermRef B) {
  assert(sort(A) == Sort::Bool && sort(B) == Sort::Bool &&
         "only boolean ite is supported");
  return mkOr(mkAnd(C, A), mkAnd(mkNot(C), B));
}

TermRef TermContext::mkAdd(std::vector<TermRef> Kids) {
  assert(!Kids.empty() && "empty sum");
  Sort S = sort(Kids[0]);
  // Flatten and fold constants; deeper canonicalization happens only when an
  // atom is formed around the sum.
  std::vector<TermRef> Flat;
  Rational ConstSum;
  std::vector<TermRef> Work(Kids.rbegin(), Kids.rend());
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    const TermNode &N = node(T);
    assert(N.S == S && "mixed-sort sum");
    if (N.K == Kind::Add) {
      for (auto It = N.Kids.rbegin(); It != N.Kids.rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    if (N.K == Kind::Const) {
      ConstSum += N.Val;
      continue;
    }
    Flat.push_back(T);
  }
  if (!ConstSum.isZero() || Flat.empty())
    Flat.push_back(mkConst(ConstSum, S));
  if (Flat.size() == 1)
    return Flat[0];
  return intern(Kind::Add, S, 0, Rational(), Flat.data(), Flat.size());
}

TermRef TermContext::mkSub(TermRef A, TermRef B) {
  return mkAdd(A, mkNeg(B));
}

TermRef TermContext::mkMul(const Rational &C, TermRef A) {
  Sort S = sort(A);
  assert(S != Sort::Bool && "mul on boolean");
  assert((S != Sort::Int || C.isInt()) && "non-integral Int coefficient");
  if (C.isZero())
    return mkConst(Rational(0), S);
  const TermNode &N = node(A);
  if (N.K == Kind::Const)
    return mkConst(C * N.Val, S);
  if (C == Rational(1))
    return A;
  if (N.K == Kind::Mul)
    return mkMul(C * N.Val, N.Kids[0]);
  if (N.K == Kind::Add) {
    std::vector<TermRef> Kids;
    Kids.reserve(N.Kids.size());
    for (TermRef Kid : N.Kids)
      Kids.push_back(mkMul(C, Kid));
    return mkAdd(std::move(Kids));
  }
  return intern(Kind::Mul, S, 0, C, &A, 1);
}

/// Shared normalization for comparisons: builds LinExpr(A - B), determines
/// the arithmetic sort, integer-normalizes, and hands off to mkLinAtom.
TermRef TermContext::mkLinAtom(Kind K, TermRef Lhs, Sort S) {
  // Lhs here is the term A - B; interpret as LinExpr E, atom is E <op> 0.
  LinExpr E = LinExpr::fromTerm(*this, Lhs);
  if (E.isConstant()) {
    int Sign = E.Const.sgn();
    switch (K) {
    case Kind::Le:
      return mkBool(Sign <= 0);
    case Kind::Lt:
      return mkBool(Sign < 0);
    case Kind::EqA:
      return mkBool(Sign == 0);
    default:
      break;
    }
    assert(false && "bad comparison kind");
  }
  E.integerNormalize();
  BigInt G = E.coeffGcd();
  assert(!G.isZero());
  Rational GR{G};
  // Divide coefficients by their gcd. The constant becomes rational again;
  // for Int we tighten below.
  LinExpr Scaled;
  for (const auto &[V, C] : E.Coeffs)
    Scaled.Coeffs.emplace(V, C / GR);
  Rational Konst = -(E.Const / GR); // Atom shape: sum <op> Konst.

  if (K == Kind::EqA) {
    if (S == Sort::Int && !Konst.isInt())
      return FalseRef;
    // Sign-canonicalize: make the first coefficient positive.
    if (Scaled.Coeffs.begin()->second.sgn() < 0) {
      Scaled = Scaled.scaled(Rational(-1));
      Konst = -Konst;
    }
  } else if (S == Sort::Int) {
    // sum <= Konst  ==>  sum <= floor(Konst);
    // sum <  Konst  ==>  sum <= ceil(Konst) - 1.
    if (K == Kind::Lt) {
      Konst = Rational(Konst.ceil() - BigInt(1));
      K = Kind::Le;
    } else {
      Konst = Rational(Konst.floor());
    }
  }
  Scaled.Const = Rational(0);
  TermRef SumTerm = Scaled.toTerm(*this, S);
  TermRef KonstTerm = mkConst(Konst, S);
  TermRef AtomKids[2] = {SumTerm, KonstTerm};
  return intern(K, Sort::Bool, 0, Rational(), AtomKids, 2);
}

/// Determines the common arithmetic sort of two operands.
static Sort arithSort(const TermContext &Ctx, TermRef A, TermRef B) {
  Sort SA = Ctx.sort(A), SB = Ctx.sort(B);
  assert(SA != Sort::Bool && SB != Sort::Bool && "comparison on booleans");
  assert(SA == SB && "mixed Int/Real comparison is not supported");
  return SA;
}

TermRef TermContext::mkLe(TermRef A, TermRef B) {
  Sort S = arithSort(*this, A, B);
  return mkLinAtom(Kind::Le, mkSub(A, B), S);
}

TermRef TermContext::mkLt(TermRef A, TermRef B) {
  Sort S = arithSort(*this, A, B);
  return mkLinAtom(Kind::Lt, mkSub(A, B), S);
}

TermRef TermContext::mkEq(TermRef A, TermRef B) {
  if (sort(A) == Sort::Bool)
    return mkIff(A, B);
  Sort S = arithSort(*this, A, B);
  return mkLinAtom(Kind::EqA, mkSub(A, B), S);
}

TermRef TermContext::mkDivides(const BigInt &D, TermRef A) {
  assert(D.sgn() > 0 && "divisibility modulus must be positive");
  assert(sort(A) == Sort::Int && "divisibility on non-Int term");
  LinExpr E = LinExpr::fromTerm(*this, A);
  Rational Scale = E.integerNormalize();
  // (d | A) with A scaled by L (integer, from denominators) is (L*d | L*A).
  assert(Scale.isInt() && Scale.sgn() > 0);
  BigInt Mod = D * Scale.num();
  if (Mod.isOne())
    return TrueRef;
  // Reduce coefficients and constant into [0, Mod).
  LinExpr R;
  for (const auto &[V, C] : E.Coeffs) {
    BigInt Red = C.num().euclidMod(Mod);
    if (!Red.isZero())
      R.Coeffs.emplace(V, Rational(Red));
  }
  assert(E.Const.isInt());
  R.Const = Rational(E.Const.num().euclidMod(Mod));
  if (R.isConstant())
    return mkBool(R.Const.num().euclidMod(Mod).isZero());
  // Reduce by the common gcd of coefficients, constant and modulus.
  BigInt G = Mod;
  for (const auto &[V, C] : R.Coeffs)
    G = BigInt::gcd(G, C.num());
  G = BigInt::gcd(G, R.Const.num());
  if (!G.isOne()) {
    LinExpr R2;
    for (const auto &[V, C] : R.Coeffs)
      R2.Coeffs.emplace(V, Rational(C.num() / G));
    R2.Const = Rational(R.Const.num() / G);
    R = std::move(R2);
    Mod = Mod / G;
    if (Mod.isOne())
      return TrueRef;
  }
  TermRef Body = R.toTerm(*this, Sort::Int);
  return intern(Kind::Divides, Sort::Bool, 0, Rational(Mod), &Body, 1);
}
