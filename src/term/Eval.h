//===- term/Eval.h - Ground evaluation of terms -----------------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation of terms under a variable assignment. This is the semantic
/// backbone for model checking in tests, for MBP (whose contract is stated
/// relative to a model), and for counterexample replay.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TERM_EVAL_H
#define MUCYC_TERM_EVAL_H

#include "term/Term.h"

#include <unordered_map>

namespace mucyc {

/// A ground value: a Boolean or a rational (Int values are integral
/// rationals).
struct Value {
  Sort S = Sort::Bool;
  bool B = false;
  Rational R;

  static Value boolean(bool V) {
    Value X;
    X.S = Sort::Bool;
    X.B = V;
    return X;
  }
  static Value number(Rational V, Sort S) {
    assert(S != Sort::Bool);
    Value X;
    X.S = S;
    X.R = std::move(V);
    return X;
  }

  bool operator==(const Value &RHS) const {
    if (S != RHS.S)
      return false;
    return S == Sort::Bool ? B == RHS.B : R == RHS.R;
  }

  std::string toString() const;
};

/// Variable assignment used for evaluation.
using Assignment = std::unordered_map<VarId, Value>;

/// Evaluates \p T under \p A. Every free variable of T must be assigned;
/// asserts otherwise.
Value evalTerm(const TermContext &Ctx, TermRef T, const Assignment &A);

/// Convenience: evaluates a Boolean term.
bool evalBool(const TermContext &Ctx, TermRef T, const Assignment &A);

} // namespace mucyc

#endif // MUCYC_TERM_EVAL_H
