//===- ts/Btor2.cpp - BTOR2 parser and bounded-integer lowering -----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Lowering scheme. Every BTOR2 node becomes a NodeVal: either a Bool
// formula (width-1 nodes used as conditions) or a guarded-case list
// [(g1, v1), ..., (gk, vk)] whose guards partition true and whose values
// are linear Int terms — the node equals vi wherever gi holds. Operations
// that can leave [0, 2^w) split cases with explicit wrap-around instead of
// using modular arithmetic the constraint language does not have; the
// builders' constant folding collapses guards like "5 <= 255" on the spot,
// so constant subtrees never multiply cases. A hard cap on the case count
// turns genuinely exponential inputs into a typed InputError rather than a
// blowup.
//
//===----------------------------------------------------------------------===//

#include "ts/Btor2.h"

#include "support/Error.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace mucyc {

namespace {

/// Largest guarded-case list any node may carry. Generous for the hardware
/// idioms this frontend targets (a handful of wrap splits); exceeded only
/// by adversarial nesting, which should fail fast and typed.
constexpr size_t CaseCap = 32;

/// One guarded value: the node equals Val wherever Guard holds.
struct CaseVal {
  TermRef Guard;
  TermRef Val;
};

/// Semantic value of a BTOR2 node. Width 0 = native Int sort; otherwise a
/// bitvector of that width lowered to [0, 2^w). Width-1 nodes produced by
/// comparisons/boolean ops live as a Bool formula (IsBool) until an
/// arithmetic context forces the {0,1} case view.
struct NodeVal {
  unsigned Width = 0;
  bool IsBool = false;
  TermRef Bool;
  std::vector<CaseVal> Cases;
};

[[noreturn]] void err(unsigned LineNo, const std::string &Msg) {
  raiseError(ErrorCode::InputError,
             "line " + std::to_string(LineNo) + ": " + Msg);
}

int64_t parseI64(unsigned LineNo, const std::string &Tok,
                 const char *What) {
  size_t I = Tok[0] == '-' ? 1 : 0;
  if (I >= Tok.size())
    err(LineNo, std::string("malformed ") + What + " '" + Tok + "'");
  for (size_t J = I; J < Tok.size(); ++J)
    if (!std::isdigit(static_cast<unsigned char>(Tok[J])))
      err(LineNo, std::string("malformed ") + What + " '" + Tok + "'");
  errno = 0;
  int64_t V = std::strtoll(Tok.c_str(), nullptr, 10);
  if (errno == ERANGE)
    err(LineNo, std::string(What) + " '" + Tok + "' out of range");
  return V;
}

/// 2^W as a BigInt.
BigInt pow2Big(unsigned W) { return tsPow2(W).num(); }

/// Canonical bitvector residue: V mod 2^W, in [0, 2^W).
BigInt mod2w(const BigInt &V, unsigned W) {
  BigInt P = pow2Big(W);
  return V - V.floorDiv(P) * P;
}

class Builder {
public:
  Builder(TermContext &Ctx, const Btor2Program &Prog)
      : Ctx(Ctx), Ts(Ctx), Prog(Prog) {}

  TransitionSystem build() {
    for (const Btor2Line &L : Prog)
      dispatch(L);
    if (Ts.bads().empty())
      raiseError(ErrorCode::InputError,
                 "no bad property declared (nothing to check)");
    return std::move(Ts);
  }

private:
  TermContext &Ctx;
  TransitionSystem Ts;
  const Btor2Program &Prog;

  std::unordered_map<int64_t, unsigned> Sorts; ///< sort id -> width, 0=Int.
  std::unordered_map<int64_t, NodeVal> Nodes;
  std::unordered_map<int64_t, size_t> StateOf; ///< node id -> state index.
  std::unordered_set<int64_t> Ids;
  std::unordered_set<size_t> HasInit, HasNext;

  //===------------------------------------------------------------------===
  // Lookups and conversions
  //===------------------------------------------------------------------===

  unsigned sortWidth(unsigned LineNo, const std::string &Tok) {
    int64_t Id = parseI64(LineNo, Tok, "sort id");
    auto It = Sorts.find(Id);
    if (It == Sorts.end())
      err(LineNo, "undefined sort " + Tok);
    return It->second;
  }

  /// Resolves a node operand; a negated id "-n" is bitwise not of node n.
  NodeVal refNode(unsigned LineNo, const std::string &Tok) {
    int64_t Id = parseI64(LineNo, Tok, "node id");
    bool Negated = Id < 0;
    auto It = Nodes.find(Negated ? -Id : Id);
    if (It == Nodes.end())
      err(LineNo, "undefined node " + std::to_string(Negated ? -Id : Id));
    return Negated ? notVal(LineNo, It->second) : It->second;
  }

  /// The Bool view of a width-1 node.
  TermRef asBool(unsigned LineNo, const NodeVal &V) {
    if (V.IsBool)
      return V.Bool;
    if (V.Width != 1)
      err(LineNo, V.Width == 0
                      ? "expected a width-1 operand, got sort int"
                      : "expected a width-1 operand, got width " +
                            std::to_string(V.Width));
    std::vector<TermRef> Ds;
    for (const CaseVal &C : V.Cases)
      Ds.push_back(Ctx.mkAnd(C.Guard, Ctx.mkEq(C.Val, Ctx.mkIntConst(1))));
    return Ctx.mkOr(std::move(Ds));
  }

  /// The guarded-case view of any node.
  std::vector<CaseVal> asCases(const NodeVal &V) {
    if (!V.IsBool)
      return V.Cases;
    return {{V.Bool, Ctx.mkIntConst(1)},
            {Ctx.mkNot(V.Bool), Ctx.mkIntConst(0)}};
  }

  NodeVal boolVal(TermRef B) {
    NodeVal V;
    V.Width = 1;
    V.IsBool = true;
    V.Bool = B;
    return V;
  }

  /// Normalizes a case list: drops unreachable cases, merges cases that
  /// agree on the value, enforces the blowup cap.
  NodeVal makeCases(unsigned LineNo, unsigned Width,
                    std::vector<CaseVal> Cs) {
    std::vector<CaseVal> Out;
    std::unordered_map<uint32_t, size_t> ByVal;
    for (CaseVal &C : Cs) {
      if (C.Guard == Ctx.mkFalse())
        continue;
      auto It = ByVal.find(C.Val.Idx);
      if (It != ByVal.end()) {
        Out[It->second].Guard = Ctx.mkOr(Out[It->second].Guard, C.Guard);
        continue;
      }
      ByVal.emplace(C.Val.Idx, Out.size());
      Out.push_back(C);
    }
    MUCYC_INVARIANT(!Out.empty(), "btor2: empty case partition");
    if (Out.size() > CaseCap)
      err(LineNo, "guarded-case blowup (more than " +
                      std::to_string(CaseCap) +
                      " cases); simplify the expression");
    NodeVal V;
    V.Width = Width;
    V.Cases = std::move(Out);
    return V;
  }

  NodeVal constVal(unsigned Width, const Rational &C) {
    NodeVal V;
    V.Width = Width;
    V.Cases = {{Ctx.mkTrue(), Ctx.mkConst(C, Sort::Int)}};
    return V;
  }

  /// The constant value of a node, when it folded to one.
  std::optional<Rational> constOf(const NodeVal &V) {
    if (V.IsBool) {
      if (V.Bool == Ctx.mkTrue())
        return Rational(1);
      if (V.Bool == Ctx.mkFalse())
        return Rational(0);
      return std::nullopt;
    }
    if (V.Cases.size() != 1 || V.Cases[0].Guard != Ctx.mkTrue())
      return std::nullopt;
    const TermNode &N = Ctx.node(V.Cases[0].Val);
    if (N.K != Kind::Const)
      return std::nullopt;
    return N.Val;
  }

  void checkSameSort(unsigned LineNo, const NodeVal &A, const NodeVal &B) {
    if (A.Width != B.Width)
      err(LineNo, "operand sort mismatch (width " + std::to_string(A.Width) +
                      " vs " + std::to_string(B.Width) + "; 0 means int)");
  }

  //===------------------------------------------------------------------===
  // Per-operation lowering
  //===------------------------------------------------------------------===

  /// Bitwise not: boolean negation at width 1, 2^w-1-a for wider vectors.
  NodeVal notVal(unsigned LineNo, const NodeVal &A) {
    if (A.Width == 0)
      err(LineNo, "'not' is not defined on sort int");
    if (A.Width == 1)
      return boolVal(Ctx.mkNot(asBool(LineNo, A)));
    TermRef Ones = Ctx.mkConst(tsPow2(A.Width) - Rational(1), Sort::Int);
    std::vector<CaseVal> Cs;
    for (const CaseVal &C : A.Cases)
      Cs.push_back({C.Guard, Ctx.mkSub(Ones, C.Val)});
    return makeCases(LineNo, A.Width, std::move(Cs));
  }

  /// Wrapped sum/difference: splits each case at the range boundary.
  NodeVal addVal(unsigned LineNo, unsigned Width, const NodeVal &A,
                 const NodeVal &B, bool Subtract) {
    std::vector<CaseVal> Cs;
    TermRef Lo = Ctx.mkIntConst(0);
    for (const CaseVal &CA : asCases(A))
      for (const CaseVal &CB : asCases(B)) {
        TermRef G = Ctx.mkAnd(CA.Guard, CB.Guard);
        if (G == Ctx.mkFalse())
          continue;
        TermRef S = Subtract ? Ctx.mkSub(CA.Val, CB.Val)
                             : Ctx.mkAdd(CA.Val, CB.Val);
        if (Width == 0) {
          Cs.push_back({G, S});
          continue;
        }
        TermRef P = Ctx.mkConst(tsPow2(Width), Sort::Int);
        if (Subtract) {
          Cs.push_back({Ctx.mkAnd(G, Ctx.mkGe(S, Lo)), S});
          Cs.push_back(
              {Ctx.mkAnd(G, Ctx.mkLt(S, Lo)), Ctx.mkAdd(S, P)});
        } else {
          Cs.push_back({Ctx.mkAnd(G, Ctx.mkLt(S, P)), S});
          Cs.push_back({Ctx.mkAnd(G, Ctx.mkGe(S, P)), Ctx.mkSub(S, P)});
        }
      }
    return makeCases(LineNo, Width, std::move(Cs));
  }

  /// Linear multiplication: exactly one operand must have folded to a
  /// constant. Wrapping subtracts k*2^w for the unique feasible k per
  /// residue band.
  NodeVal mulVal(unsigned LineNo, unsigned Width, const NodeVal &A,
                 const NodeVal &B) {
    std::optional<Rational> CA = constOf(A), CB = constOf(B);
    if (!CA && !CB)
      err(LineNo, "nonlinear 'mul': neither operand is constant");
    const Rational &K = CA ? *CA : *CB;
    const NodeVal &V = CA ? B : A;
    if (K.isZero())
      return constVal(Width, Rational(0));
    std::vector<CaseVal> Cs;
    if (Width == 0) {
      for (const CaseVal &C : asCases(V))
        Cs.push_back({C.Guard, Ctx.mkMul(K, C.Val)});
      return makeCases(LineNo, Width, std::move(Cs));
    }
    // Bitvector: operand in [0, 2^w), so k*v in [0, k*2^w) and the wrap
    // count is one of k residue bands. Large constants would need that
    // many cases; refuse past the cap rather than explode.
    int64_t KI = 0;
    if (!K.num().toInt64(KI) || KI < 0 ||
        static_cast<size_t>(KI) > CaseCap)
      err(LineNo, "'mul' constant " + K.toString() +
                      " too large for wrap-around lowering");
    Rational P = tsPow2(Width);
    for (const CaseVal &C : asCases(V)) {
      TermRef Prod = Ctx.mkMul(K, C.Val);
      for (int64_t Band = 0; Band < KI; ++Band) {
        TermRef Lo = Ctx.mkConst(P * Rational(Band), Sort::Int);
        TermRef Hi = Ctx.mkConst(P * Rational(Band + 1), Sort::Int);
        TermRef G = Ctx.mkAnd(
            {C.Guard, Ctx.mkGe(Prod, Lo), Ctx.mkLt(Prod, Hi)});
        if (G == Ctx.mkFalse())
          continue;
        Cs.push_back({G, Ctx.mkSub(Prod, Lo)});
      }
    }
    return makeCases(LineNo, Width, std::move(Cs));
  }

  /// Two's-complement reading of an unsigned case list: splits each case
  /// on the sign bit, mapping the upper half to v - 2^w.
  std::vector<CaseVal> signedCases(const NodeVal &V) {
    if (V.Width == 0)
      return V.Cases; // Native int is already signed.
    TermRef Half =
        Ctx.mkConst(tsPow2(V.Width) / Rational(2), Sort::Int);
    TermRef P = Ctx.mkConst(tsPow2(V.Width), Sort::Int);
    std::vector<CaseVal> Out;
    for (const CaseVal &C : asCases(V)) {
      TermRef GPos = Ctx.mkAnd(C.Guard, Ctx.mkLt(C.Val, Half));
      TermRef GNeg = Ctx.mkAnd(C.Guard, Ctx.mkGe(C.Val, Half));
      if (GPos != Ctx.mkFalse())
        Out.push_back({GPos, C.Val});
      if (GNeg != Ctx.mkFalse())
        Out.push_back({GNeg, Ctx.mkSub(C.Val, P)});
    }
    return Out;
  }

  /// Comparison over two case lists: OR of per-case-pair atoms.
  TermRef compareCases(const std::vector<CaseVal> &A,
                       const std::vector<CaseVal> &B,
                       TermRef (TermContext::*Cmp)(TermRef, TermRef)) {
    std::vector<TermRef> Ds;
    for (const CaseVal &CA : A)
      for (const CaseVal &CB : B) {
        TermRef G = Ctx.mkAnd(CA.Guard, CB.Guard);
        if (G == Ctx.mkFalse())
          continue;
        Ds.push_back(Ctx.mkAnd(G, (Ctx.*Cmp)(CA.Val, CB.Val)));
      }
    return Ctx.mkOr(std::move(Ds));
  }

  /// "state equals value" as a formula, for init/next relations. \p Var is
  /// the state's Cur (init) or Next (next) variable.
  TermRef bindEq(TermRef Var, const NodeVal &Value) {
    std::vector<TermRef> Ds;
    for (const CaseVal &C : asCases(Value))
      Ds.push_back(Ctx.mkAnd(C.Guard, Ctx.mkEq(Var, C.Val)));
    return Ctx.mkOr(std::move(Ds));
  }

  //===------------------------------------------------------------------===
  // Line dispatch
  //===------------------------------------------------------------------===

  void needArgs(const Btor2Line &L, size_t N, bool Exact = true) {
    if (L.Args.size() < N || (Exact && L.Args.size() != N))
      err(L.LineNo, "'" + L.Op + "' expects " + std::to_string(N) +
                        " argument(s), got " +
                        std::to_string(L.Args.size()));
  }

  void claimId(const Btor2Line &L) {
    if (!Ids.insert(L.Id).second)
      err(L.LineNo, "duplicate node id " + std::to_string(L.Id));
  }

  void define(const Btor2Line &L, NodeVal V) {
    claimId(L);
    Nodes.emplace(L.Id, std::move(V));
  }

  /// Parses and validates a BTOR2 constant literal in the given base.
  BigInt parseConst(const Btor2Line &L, unsigned Width, unsigned Base) {
    const std::string &Tok = L.Args[1];
    if (Base == 10) {
      size_t I = Tok[0] == '-' ? 1 : 0;
      if (I >= Tok.size())
        err(L.LineNo, "malformed decimal constant '" + Tok + "'");
      for (size_t J = I; J < Tok.size(); ++J)
        if (!std::isdigit(static_cast<unsigned char>(Tok[J])))
          err(L.LineNo, "malformed decimal constant '" + Tok + "'");
      BigInt V = BigInt::fromString(Tok);
      // Two's-complement reading: negatives (and overflowing positives)
      // wrap to their canonical residue. Meaningless on sort int, where
      // the literal is taken as written.
      return Width == 0 ? V : mod2w(V, Width);
    }
    if (Width == 0)
      err(L.LineNo, "'" + L.Op + "' requires a bitvec sort");
    BigInt V(0);
    if (Base == 2) {
      if (Tok.size() != Width)
        err(L.LineNo, "binary constant '" + Tok + "' must have exactly " +
                          std::to_string(Width) + " digits");
      for (char C : Tok) {
        if (C != '0' && C != '1')
          err(L.LineNo, "malformed binary constant '" + Tok + "'");
        V = V + V + BigInt(C - '0');
      }
      return V;
    }
    for (char C : Tok) {
      int D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        err(L.LineNo, "malformed hex constant '" + Tok + "'");
      V = V * BigInt(16) + BigInt(D);
    }
    if (V >= pow2Big(Width))
      err(L.LineNo, "hex constant '" + Tok + "' does not fit width " +
                        std::to_string(Width));
    return V;
  }

  void dispatch(const Btor2Line &L) {
    const std::string &Op = L.Op;

    if (Op == "sort") {
      needArgs(L, 1, /*Exact=*/false);
      claimId(L);
      if (L.Args[0] == "int") {
        Sorts.emplace(L.Id, 0u);
        return;
      }
      if (L.Args[0] != "bitvec")
        err(L.LineNo, "unsupported sort '" + L.Args[0] +
                          "' (expected 'bitvec <w>' or 'int')");
      if (L.Args.size() != 2)
        err(L.LineNo, "'sort bitvec' expects a width");
      int64_t W = parseI64(L.LineNo, L.Args[1], "bitvec width");
      if (W < 1 || W > 64)
        err(L.LineNo, "bitvec width " + L.Args[1] +
                          " out of the supported range [1, 64]");
      Sorts.emplace(L.Id, static_cast<unsigned>(W));
      return;
    }

    if (Op == "state" || Op == "input") {
      if (L.Args.empty() || L.Args.size() > 2)
        err(L.LineNo, "'" + Op + "' expects a sort and optional symbol");
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      std::string Name = L.Args.size() == 2
                             ? L.Args[1]
                             : (Op == "state" ? "s" : "in") +
                                   std::to_string(L.Id);
      NodeVal V;
      V.Width = W;
      if (Op == "state") {
        size_t Idx = Ts.addState(Name, W);
        StateOf.emplace(L.Id, Idx);
        V.Cases = {{Ctx.mkTrue(), Ts.states()[Idx].Cur}};
      } else {
        size_t Idx = Ts.addInput(Name, W);
        V.Cases = {{Ctx.mkTrue(), Ts.inputs()[Idx].Cur}};
      }
      define(L, std::move(V));
      return;
    }

    if (Op == "zero" || Op == "one" || Op == "ones") {
      needArgs(L, 1);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      Rational V(Op == "zero" ? 0 : 1);
      if (Op == "ones") {
        if (W == 0)
          err(L.LineNo, "'ones' is not defined on sort int");
        V = tsPow2(W) - Rational(1);
      }
      define(L, constVal(W, V));
      return;
    }

    if (Op == "constd" || Op == "const" || Op == "consth") {
      needArgs(L, 2);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      unsigned Base = Op == "constd" ? 10 : (Op == "const" ? 2 : 16);
      define(L, constVal(W, Rational(parseConst(L, W, Base))));
      return;
    }

    if (Op == "not" || Op == "inc" || Op == "dec" || Op == "neg" ||
        Op == "redor" || Op == "redand") {
      needArgs(L, 2);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      NodeVal A = refNode(L.LineNo, L.Args[1]);
      if (Op == "redor" || Op == "redand") {
        if (W != 1)
          err(L.LineNo, "'" + Op + "' must have a width-1 result sort");
        if (A.Width == 0)
          err(L.LineNo, "'" + Op + "' is not defined on sort int");
        TermRef Ones =
            Ctx.mkConst(tsPow2(A.Width) - Rational(1), Sort::Int);
        std::vector<TermRef> Ds;
        for (const CaseVal &C : asCases(A))
          Ds.push_back(Ctx.mkAnd(
              C.Guard, Op == "redor"
                           ? Ctx.mkGe(C.Val, Ctx.mkIntConst(1))
                           : Ctx.mkEq(C.Val, Ones)));
        define(L, boolVal(Ctx.mkOr(std::move(Ds))));
        return;
      }
      if (A.Width != W)
        err(L.LineNo, "'" + Op + "' result sort differs from operand");
      if (Op == "not") {
        define(L, notVal(L.LineNo, A));
        return;
      }
      if (Op == "inc" || Op == "dec") {
        define(L, addVal(L.LineNo, W, A, constVal(W, Rational(1)),
                         /*Subtract=*/Op == "dec"));
        return;
      }
      // neg: two's-complement negation, 0 -> 0 and a -> 2^w - a.
      std::vector<CaseVal> Cs;
      for (const CaseVal &C : asCases(A)) {
        TermRef N = Ctx.mkNeg(C.Val);
        if (W == 0) {
          Cs.push_back({C.Guard, N});
          continue;
        }
        TermRef P = Ctx.mkConst(tsPow2(W), Sort::Int);
        TermRef Zero = Ctx.mkIntConst(0);
        Cs.push_back({Ctx.mkAnd(C.Guard, Ctx.mkEq(C.Val, Zero)), Zero});
        Cs.push_back({Ctx.mkAnd(C.Guard, Ctx.mkGe(C.Val, Ctx.mkIntConst(1))),
                      Ctx.mkAdd(P, N)});
      }
      define(L, makeCases(L.LineNo, W, std::move(Cs)));
      return;
    }

    if (Op == "uext" || Op == "sext") {
      needArgs(L, 3);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      NodeVal A = refNode(L.LineNo, L.Args[1]);
      int64_t Ext = parseI64(L.LineNo, L.Args[2], "extension amount");
      if (A.Width == 0 || W == 0)
        err(L.LineNo, "'" + Op + "' is not defined on sort int");
      if (Ext < 0 || A.Width + Ext != W)
        err(L.LineNo, "'" + Op + "' widths do not add up (" +
                          std::to_string(A.Width) + " + " + L.Args[2] +
                          " != " + std::to_string(W) + ")");
      if (Op == "uext" || W == A.Width) {
        // Value is unchanged; only the width grows.
        NodeVal V = makeCases(L.LineNo, W, asCases(A));
        define(L, std::move(V));
        return;
      }
      // sext: upper half of the source range gains 2^W - 2^w.
      TermRef Half =
          Ctx.mkConst(tsPow2(A.Width) / Rational(2), Sort::Int);
      TermRef Offset = Ctx.mkConst(tsPow2(W) - tsPow2(A.Width), Sort::Int);
      std::vector<CaseVal> Cs;
      for (const CaseVal &C : asCases(A)) {
        Cs.push_back({Ctx.mkAnd(C.Guard, Ctx.mkLt(C.Val, Half)), C.Val});
        Cs.push_back({Ctx.mkAnd(C.Guard, Ctx.mkGe(C.Val, Half)),
                      Ctx.mkAdd(C.Val, Offset)});
      }
      define(L, makeCases(L.LineNo, W, std::move(Cs)));
      return;
    }

    if (Op == "add" || Op == "sub" || Op == "mul") {
      needArgs(L, 3);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      NodeVal A = refNode(L.LineNo, L.Args[1]);
      NodeVal B = refNode(L.LineNo, L.Args[2]);
      checkSameSort(L.LineNo, A, B);
      if (A.Width != W)
        err(L.LineNo, "'" + Op + "' result sort differs from operands");
      define(L, Op == "mul"
                    ? mulVal(L.LineNo, W, A, B)
                    : addVal(L.LineNo, W, A, B, /*Subtract=*/Op == "sub"));
      return;
    }

    if (Op == "and" || Op == "or" || Op == "nand" || Op == "nor" ||
        Op == "xor" || Op == "xnor" || Op == "implies" || Op == "iff") {
      needArgs(L, 3);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      NodeVal A = refNode(L.LineNo, L.Args[1]);
      NodeVal B = refNode(L.LineNo, L.Args[2]);
      if (W != 1 || A.Width != 1 || B.Width != 1)
        err(L.LineNo, "bitwise '" + Op +
                          "' is only supported at width 1 "
                          "(wider vectors are outside the linear subset)");
      TermRef BA = asBool(L.LineNo, A), BB = asBool(L.LineNo, B);
      TermRef R;
      if (Op == "and")
        R = Ctx.mkAnd(BA, BB);
      else if (Op == "or")
        R = Ctx.mkOr(BA, BB);
      else if (Op == "nand")
        R = Ctx.mkNot(Ctx.mkAnd(BA, BB));
      else if (Op == "nor")
        R = Ctx.mkNot(Ctx.mkOr(BA, BB));
      else if (Op == "xor")
        R = Ctx.mkNot(Ctx.mkIff(BA, BB));
      else if (Op == "xnor" || Op == "iff")
        R = Ctx.mkIff(BA, BB);
      else
        R = Ctx.mkImplies(BA, BB);
      define(L, boolVal(R));
      return;
    }

    if (Op == "eq" || Op == "neq" || Op == "ult" || Op == "ulte" ||
        Op == "ugt" || Op == "ugte" || Op == "slt" || Op == "slte" ||
        Op == "sgt" || Op == "sgte") {
      needArgs(L, 3);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      if (W != 1)
        err(L.LineNo, "'" + Op + "' must have a width-1 result sort");
      NodeVal A = refNode(L.LineNo, L.Args[1]);
      NodeVal B = refNode(L.LineNo, L.Args[2]);
      checkSameSort(L.LineNo, A, B);
      TermRef R;
      if ((Op == "eq" || Op == "neq") && A.IsBool && B.IsBool) {
        R = Ctx.mkIff(A.Bool, B.Bool);
        if (Op == "neq")
          R = Ctx.mkNot(R);
      } else {
        bool Signed = Op[0] == 's';
        std::vector<CaseVal> CA =
            Signed ? signedCases(A) : asCases(A);
        std::vector<CaseVal> CB =
            Signed ? signedCases(B) : asCases(B);
        TermRef (TermContext::*Cmp)(TermRef, TermRef);
        if (Op == "eq" || Op == "neq")
          Cmp = &TermContext::mkEq;
        else if (Op == "ult" || Op == "slt")
          Cmp = &TermContext::mkLt;
        else if (Op == "ulte" || Op == "slte")
          Cmp = &TermContext::mkLe;
        else if (Op == "ugt" || Op == "sgt")
          Cmp = &TermContext::mkGt;
        else
          Cmp = &TermContext::mkGe;
        R = compareCases(CA, CB, Cmp);
        if (Op == "neq")
          R = Ctx.mkNot(R);
      }
      define(L, boolVal(R));
      return;
    }

    if (Op == "ite") {
      needArgs(L, 4);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      NodeVal C = refNode(L.LineNo, L.Args[1]);
      NodeVal A = refNode(L.LineNo, L.Args[2]);
      NodeVal B = refNode(L.LineNo, L.Args[3]);
      checkSameSort(L.LineNo, A, B);
      if (A.Width != W)
        err(L.LineNo, "'ite' result sort differs from branches");
      TermRef Cond = asBool(L.LineNo, C);
      if (A.IsBool && B.IsBool) {
        define(L, boolVal(Ctx.mkIte(Cond, A.Bool, B.Bool)));
        return;
      }
      std::vector<CaseVal> Cs;
      for (const CaseVal &CT : asCases(A))
        Cs.push_back({Ctx.mkAnd(Cond, CT.Guard), CT.Val});
      TermRef NotCond = Ctx.mkNot(Cond);
      for (const CaseVal &CE : asCases(B))
        Cs.push_back({Ctx.mkAnd(NotCond, CE.Guard), CE.Val});
      define(L, makeCases(L.LineNo, W, std::move(Cs)));
      return;
    }

    if (Op == "init" || Op == "next") {
      needArgs(L, 3);
      unsigned W = sortWidth(L.LineNo, L.Args[0]);
      int64_t SId = parseI64(L.LineNo, L.Args[1], "state id");
      auto It = StateOf.find(SId);
      if (It == StateOf.end())
        err(L.LineNo, "'" + Op + "' target node " + L.Args[1] +
                          " is not a state");
      size_t Idx = It->second;
      const TsVar &S = Ts.states()[Idx];
      NodeVal Value = refNode(L.LineNo, L.Args[2]);
      if (W != S.Width || Value.Width != S.Width)
        err(L.LineNo, "'" + Op + "' sort differs from state '" + S.Name +
                          "'");
      auto &Seen = Op == "init" ? HasInit : HasNext;
      if (!Seen.insert(Idx).second)
        err(L.LineNo, "duplicate '" + Op + "' for state '" + S.Name + "'");
      if (Op == "init")
        Ts.setInit(Idx, bindEq(S.Cur, Value));
      else
        Ts.setNext(Idx, bindEq(S.Next, Value));
      claimId(L);
      return;
    }

    if (Op == "constraint" || Op == "bad") {
      needArgs(L, 1);
      TermRef B = asBool(L.LineNo, refNode(L.LineNo, L.Args[0]));
      if (Op == "constraint")
        Ts.addConstraint(B);
      else
        Ts.addBad(B);
      claimId(L);
      return;
    }

    if (Op == "output") {
      // Observability directive; no safety meaning. Validate the reference
      // and move on.
      needArgs(L, 1, /*Exact=*/false);
      refNode(L.LineNo, L.Args[0]);
      claimId(L);
      return;
    }

    if (Op == "fair" || Op == "justice")
      err(L.LineNo, "liveness directive '" + Op +
                        "' is not supported (safety subset only)");
    if (Op == "concat" || Op == "slice")
      err(L.LineNo, "'" + Op +
                        "' is outside the bounded-integer lowering subset");
    err(L.LineNo, "unknown operator '" + Op + "'");
  }
};

} // namespace

bool looksLikeBtor2(const std::string &Text) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    size_t Semi = Line.find(';');
    if (Semi != std::string::npos)
      Line.resize(Semi);
    size_t I = 0;
    while (I < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[I])))
      ++I;
    if (I < Line.size()) {
      size_t J = I;
      while (J < Line.size() &&
             std::isdigit(static_cast<unsigned char>(Line[J])))
        ++J;
      // "<digits><space>" and then something: a node line.
      return J > I && J < Line.size() &&
             std::isspace(static_cast<unsigned char>(Line[J]));
    }
    if (Eol == std::string::npos)
      break;
    Pos = Eol + 1;
  }
  return false;
}

std::string printBtor2(const Btor2Program &P) {
  std::string Out;
  for (const Btor2Line &L : P) {
    Out += std::to_string(L.Id);
    Out += ' ';
    Out += L.Op;
    for (const std::string &A : L.Args) {
      Out += ' ';
      Out += A;
    }
    Out += '\n';
  }
  return Out;
}

/// Stage 1: text to token lines. Comments run from ';' to end of line.
static Btor2Program tokenize(const std::string &Text) {
  Btor2Program Prog;
  unsigned LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    size_t End = Eol == std::string::npos ? Text.size() : Eol;
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    size_t Semi = Line.find(';');
    if (Semi != std::string::npos)
      Line.resize(Semi);
    std::vector<std::string> Toks;
    size_t I = 0;
    while (I < Line.size()) {
      while (I < Line.size() &&
             std::isspace(static_cast<unsigned char>(Line[I])))
        ++I;
      size_t J = I;
      while (J < Line.size() &&
             !std::isspace(static_cast<unsigned char>(Line[J])))
        ++J;
      if (J > I)
        Toks.push_back(Line.substr(I, J - I));
      I = J;
    }
    if (Toks.empty())
      continue;
    if (Toks.size() < 2)
      err(LineNo, "expected '<id> <op> ...'");
    int64_t Id = parseI64(LineNo, Toks[0], "node id");
    if (Id <= 0)
      err(LineNo, "node id must be positive, got '" + Toks[0] + "'");
    Btor2Line L;
    L.LineNo = LineNo;
    L.Id = Id;
    L.Op = Toks[1];
    L.Args.assign(Toks.begin() + 2, Toks.end());
    Prog.push_back(std::move(L));
  }
  return Prog;
}

Btor2Result parseBtor2(TermContext &Ctx, const std::string &Text) {
  Btor2Result R;
  try {
    R.Program = tokenize(Text);
    if (R.Program.empty())
      raiseError(ErrorCode::InputError, "empty btor2 input");
    Builder B(Ctx, R.Program);
    R.Ts = B.build();
    R.Ok = true;
  } catch (const MucycError &E) {
    if (E.code() != ErrorCode::InputError)
      throw;
    R.Ok = false;
    R.Error = E.detail();
    R.Ts.reset();
  }
  return R;
}

} // namespace mucyc
