//===- ts/TransitionSystem.cpp - Transition-system IR and CHC encoder -----===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ts/TransitionSystem.h"

#include "support/Error.h"

namespace mucyc {

Rational tsPow2(unsigned W) {
  BigInt P(1);
  for (unsigned I = 0; I < W; ++I)
    P = P + P;
  return Rational(std::move(P));
}

size_t TransitionSystem::addState(const std::string &Name, unsigned Width) {
  TsVar V;
  V.Name = Name;
  V.Width = Width;
  V.Cur = Ctx->mkFreshVar(Name, Sort::Int);
  V.Next = Ctx->mkFreshVar(Name + ".next", Sort::Int);
  StateVars.push_back(V);
  InitRels.emplace_back();
  NextRels.emplace_back();
  return StateVars.size() - 1;
}

size_t TransitionSystem::addInput(const std::string &Name, unsigned Width) {
  TsVar V;
  V.Name = Name;
  V.Width = Width;
  V.Cur = Ctx->mkFreshVar(Name, Sort::Int);
  InputVars.push_back(V);
  return InputVars.size() - 1;
}

void TransitionSystem::setInit(size_t S, TermRef Rel) {
  MUCYC_INVARIANT(S < StateVars.size() && !InitRels[S].isValid(),
                  "ts: setInit on missing state or duplicate init");
  InitRels[S] = Rel;
}

void TransitionSystem::setNext(size_t S, TermRef Rel) {
  MUCYC_INVARIANT(S < StateVars.size() && !NextRels[S].isValid(),
                  "ts: setNext on missing state or duplicate next");
  NextRels[S] = Rel;
}

TermRef TransitionSystem::rangeConstraint(TermRef T, unsigned Width) const {
  if (Width == 0)
    return Ctx->mkTrue();
  return Ctx->mkAnd(Ctx->mkGe(T, Ctx->mkIntConst(0)),
                    Ctx->mkLt(T, Ctx->mkConst(tsPow2(Width), Sort::Int)));
}

ChcSystem TransitionSystem::encodeChc() const {
  MUCYC_INVARIANT(!Bads.empty(), "ts: encodeChc on a system with no bad");

  ChcSystem Sys(*Ctx);
  std::vector<Sort> ArgSorts(StateVars.size() + InputVars.size(), Sort::Int);
  PredId Inv = Sys.addPred("Inv", ArgSorts);

  // The combined Cur and Next tuples. Inputs re-draw freely each step, so
  // their next-step slots are fresh variables constrained only by bounds
  // (and the global constraints, which are re-imposed on the whole next
  // tuple).
  std::vector<TermRef> Cur, Next;
  std::unordered_map<VarId, TermRef> CurToNext;
  for (const TsVar &V : StateVars) {
    Cur.push_back(V.Cur);
    Next.push_back(V.Next);
    CurToNext[Ctx->node(V.Cur).Var] = V.Next;
  }
  for (const TsVar &V : InputVars) {
    Cur.push_back(V.Cur);
    TermRef N = Ctx->mkFreshVar(V.Name + ".next", Sort::Int);
    Next.push_back(N);
    CurToNext[Ctx->node(V.Cur).Var] = N;
  }

  auto boundsOver = [&](const std::vector<TermRef> &Tuple) {
    std::vector<TermRef> Bs;
    for (size_t I = 0; I < StateVars.size(); ++I)
      Bs.push_back(rangeConstraint(Tuple[I], StateVars[I].Width));
    for (size_t I = 0; I < InputVars.size(); ++I)
      Bs.push_back(rangeConstraint(Tuple[StateVars.size() + I],
                                   InputVars[I].Width));
    return Ctx->mkAnd(std::move(Bs));
  };

  // iota: init relations, bounds and constraints over the step-0 tuple.
  std::vector<TermRef> InitParts;
  for (size_t I = 0; I < StateVars.size(); ++I)
    if (InitRels[I].isValid())
      InitParts.push_back(InitRels[I]);
  InitParts.push_back(boundsOver(Cur));
  for (TermRef C : Constraints)
    InitParts.push_back(C);
  Clause Init;
  Init.Constraint = Ctx->mkAnd(std::move(InitParts));
  Init.Head = PredApp{Inv, Cur};
  Sys.addClause(std::move(Init));

  // tau: next relations (states without one stay free), bounds on the next
  // tuple, and the global constraints re-imposed over it. Constraints over
  // the current tuple already hold by induction on Inv.
  std::vector<TermRef> TransParts;
  for (size_t I = 0; I < StateVars.size(); ++I)
    if (NextRels[I].isValid())
      TransParts.push_back(NextRels[I]);
  TransParts.push_back(boundsOver(Next));
  for (TermRef C : Constraints)
    TransParts.push_back(Ctx->substitute(C, CurToNext));
  Clause Trans;
  Trans.Body.push_back(PredApp{Inv, Cur});
  Trans.Constraint = Ctx->mkAnd(std::move(TransParts));
  Trans.Head = PredApp{Inv, Next};
  Sys.addClause(std::move(Trans));

  // beta: one query clause per bad property.
  for (TermRef B : Bads) {
    Clause Query;
    Query.Body.push_back(PredApp{Inv, Cur});
    Query.Constraint = B;
    Sys.addClause(std::move(Query));
  }

  return Sys;
}

} // namespace mucyc
