//===- ts/TransitionSystem.h - Symbolic transition systems ------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition-system IR behind the BTOR2 frontend: state and input
/// variables (bitvectors of width <= 64 lowered to bounded integers, plus
/// native unbounded Int), per-state init/next relations, global constraints
/// and bad-state properties — all as formulas in the existing constraint
/// language over one TermContext. Mirrors pono's FunctionalTransitionSystem
/// at the granularity this repo needs: encodeChc() lowers the system into
/// the paper's {iota, tau, beta} shape (a single-predicate linear CHC
/// system), so hardware safety problems flow unchanged through preprocess,
/// normalize, the fingerprint/SolveRequest path, every engine, the
/// portfolio and the serve daemon.
///
/// Encoding. The predicate Inv ranges over the concatenation of all state
/// and input slots (inputs are part of the combined state so that tau stays
/// a formula over the X/Z tuples — the input used at a step is that step's
/// input slot, re-drawn unconstrained at every transition):
///
///   init(z) /\ bounds(z) /\ C(z)              =>  Inv(z)
///   Inv(x) /\ next(x, z) /\ bounds(z) /\ C(z) =>  Inv(z)
///   Inv(z) /\ bad_k(z)                        =>  false      (one per bad)
///
/// where bounds(z) pins every width-w slot into [0, 2^w) and C is the
/// conjunction of the BTOR2 `constraint` nodes (a trace is valid only while
/// every constraint holds, so constrained-away bad states are unreachable).
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TS_TRANSITIONSYSTEM_H
#define MUCYC_TS_TRANSITIONSYSTEM_H

#include "chc/Chc.h"

namespace mucyc {

/// One state or input variable. Width 0 is the native unbounded Int sort;
/// width w in [1, 64] a bitvector lowered to an integer in [0, 2^w).
struct TsVar {
  std::string Name;
  unsigned Width = 0;
  TermRef Cur;  ///< Current-step value (every variable).
  TermRef Next; ///< Next-step value (states; invalid for inputs).
};

/// 2^W as an exact Rational (W <= 64 needs BigInt limbs past 62).
Rational tsPow2(unsigned W);

/// A symbolic transition system over a shared TermContext. States carry
/// optional init and next relations: a relation is a formula over the
/// current-step variables (and, for next, the state's own Next variable)
/// rather than a functional update, so guarded case splits — the shape the
/// BTOR2 wrap-around lowering produces — need no auxiliary variables.
class TransitionSystem {
public:
  explicit TransitionSystem(TermContext &Ctx) : Ctx(&Ctx) {}

  TermContext &ctx() const { return *Ctx; }

  /// Declares a state (fresh Cur and Next variables) and returns its index.
  size_t addState(const std::string &Name, unsigned Width);
  /// Declares an input (fresh Cur variable) and returns its index.
  size_t addInput(const std::string &Name, unsigned Width);

  const std::vector<TsVar> &states() const { return StateVars; }
  const std::vector<TsVar> &inputs() const { return InputVars; }

  /// Init relation of state \p S: a formula over Cur variables constraining
  /// states()[S].Cur at step 0. At most one per state.
  void setInit(size_t S, TermRef Rel);
  /// Next relation of state \p S: a formula over Cur variables and
  /// states()[S].Next. At most one per state; states without one are free.
  void setNext(size_t S, TermRef Rel);
  bool hasInit(size_t S) const { return InitRels[S].isValid(); }
  bool hasNext(size_t S) const { return NextRels[S].isValid(); }

  /// Global constraint over Cur variables; conjoined at every step.
  void addConstraint(TermRef C) { Constraints.push_back(C); }
  /// Bad-state property over Cur variables; the system is unsafe iff some
  /// valid trace reaches a state satisfying any of them.
  void addBad(TermRef B) { Bads.push_back(B); }

  const std::vector<TermRef> &constraints() const { return Constraints; }
  const std::vector<TermRef> &bads() const { return Bads; }

  /// 0 <= T < 2^Width for bitvector variables; true for native Int.
  TermRef rangeConstraint(TermRef T, unsigned Width) const;

  /// Lowers the system into a single-predicate linear CHC system in the
  /// header's {iota, tau, beta} shape. Requires at least one bad property
  /// (a system with none is vacuously safe and has no query clause to
  /// normalize against); callers reject that earlier with a diagnostic.
  ChcSystem encodeChc() const;

private:
  TermContext *Ctx;
  std::vector<TsVar> StateVars, InputVars;
  std::vector<TermRef> InitRels, NextRels; ///< Invalid = absent.
  std::vector<TermRef> Constraints, Bads;
};

/// Convenience free-function spelling of TransitionSystem::encodeChc.
inline ChcSystem encodeChc(const TransitionSystem &TS) {
  return TS.encodeChc();
}

} // namespace mucyc

#endif // MUCYC_TS_TRANSITIONSYSTEM_H
