//===- ts/Btor2.h - BTOR2 word-level model-checking frontend ----*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the BTOR2 subset this repo's linear constraint language can
/// express, plus an `int` sort extension:
///
///   sorts       sort bitvec <w> (1 <= w <= 64) | sort int
///   variables   state, input (optional symbol)
///   constants   zero, one, ones, constd (decimal, two's-complement for
///               negatives), const (binary), consth (hex)
///   unary       not, inc, dec, neg, redor, redand, uext, sext
///   arithmetic  add, sub, mul (one operand constant — linear arithmetic)
///   boolean     and, or, nand, nor, xor, xnor, implies, iff (width 1 only)
///   compares    eq, neq, ult, ulte, ugt, ugte, slt, slte, sgt, sgte
///   other       ite, init, next, constraint, bad, output (ignored)
///
/// Bitvectors are lowered to integers in [0, 2^w): every operation that can
/// leave the range splits into guarded cases with explicit wrap-around
/// (add: s vs s - 2^w; sext: sign-dependent offset; ...), so modular
/// semantics survive the move to unbounded arithmetic. The native `int`
/// sort skips the bounds and the wrapping. Arrays, slices, concat, bitwise
/// ops on width > 1, and non-constant multiplication are outside the
/// subset and are rejected with a diagnostic.
///
/// Parsing is two-stage: a token-level Btor2Program (which printBtor2
/// round-trips byte-for-byte modulo comments/blank lines — the tsgen
/// print->parse property tests lean on this) and a semantic pass building
/// the ts/TransitionSystem IR. All malformed input surfaces as
/// ErrorCode::InputError with "line N:" diagnostics — never an assert.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_TS_BTOR2_H
#define MUCYC_TS_BTOR2_H

#include "ts/TransitionSystem.h"

namespace mucyc {

/// One node line "<id> <op> <args...>", token-level.
struct Btor2Line {
  unsigned LineNo = 0; ///< 1-based line in the source text (diagnostics).
  int64_t Id = 0;
  std::string Op;
  std::vector<std::string> Args;
};

/// A token-level BTOR2 program; printBtor2 renders it back to text.
using Btor2Program = std::vector<Btor2Line>;

/// Result of parsing; Error (prefixed "line N:" where a line is at fault)
/// is empty on success. Program holds the token-level lines read before
/// the failure point, for splice-mutation testing.
struct Btor2Result {
  bool Ok = false;
  std::string Error;
  /// Valid when Ok.
  std::optional<TransitionSystem> Ts;
  Btor2Program Program;
};

/// Parses BTOR2 text into a transition system over \p Ctx. Semantic errors
/// are reported in-band (Ok = false); only non-input failures (resource
/// trips, invariant violations) propagate as exceptions.
Btor2Result parseBtor2(TermContext &Ctx, const std::string &Text);

/// Renders a token-level program back to BTOR2 text.
std::string printBtor2(const Btor2Program &P);

/// Cheap format sniff: true when the first non-blank, non-comment line is
/// "<digits> <word> ...". SMT-LIB2 starts with '(' so the two frontends
/// never collide.
bool looksLikeBtor2(const std::string &Text);

} // namespace mucyc

#endif // MUCYC_TS_BTOR2_H
