//===- tests/ServeTest.cpp - Solving service protocol tests ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the serve layer: the wire codec (message format, length-prefixed
// framing, malformed / truncated / oversized frames), and a ServeDaemon
// driven over socketpairs — solve round trips with cache provenance,
// connections surviving bad frames, concurrent clients, mid-job client
// disconnect cancelling the job, and the daemon surviving a job that
// crashes under fault injection.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace mucyc;

namespace {

const char *CounterSat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 100)) false)))
(check-sat)
)";

const char *CounterSatRenamed = R"((set-logic HORN)
(declare-fun Reach (Int) Bool)
(assert (forall ((a Int)) (=> (= a 0) (Reach a))))
(assert (forall ((a Int) (b Int))
  (=> (and (Reach a) (< a 5) (= b (+ a 1))) (Reach b))))
(assert (forall ((a Int)) (=> (and (Reach a) (> a 100)) false)))
(check-sat)
)";

const char *CounterUnsat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 2)) false)))
(check-sat)
)";

/// Paper Example 5 (x' = 2x): sat, but the Solve baseline diverges on it —
/// no finite exact reach set — so with no deadline it runs until cancelled.
const char *DivergesUnderSolve = R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (>= x 2) (<= x 8)) (P x))))
(assert (forall ((x Int) (y Int)) (=> (and (P x) (= y (* 2 x))) (P y))))
(assert (forall ((x Int)) (=> (and (P x) (< x (- 5))) false)))
(check-sat)
)";

/// A daemon plus one in-process "connection": the daemon side of a
/// socketpair is served on a background thread, the test drives the client
/// side with framed messages.
struct TestConn {
  int Client = -1;
  int Server = -1;
  std::thread Thread;

  explicit TestConn(ServeDaemon &D) {
    int Sp[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    Client = Sp[0];
    Server = Sp[1];
    Thread = std::thread([&D, Fd = Server] {
      D.serveConnection(Fd, Fd);
      // Mirror runSocket: when the daemon is done with a connection the
      // peer sees EOF (the slow-loris test waits on exactly that).
      ::shutdown(Fd, SHUT_RDWR);
    });
  }
  ~TestConn() { closeAndJoin(); }

  void closeAndJoin() {
    if (Client >= 0) {
      ::close(Client);
      Client = -1;
    }
    if (Thread.joinable())
      Thread.join();
    if (Server >= 0) {
      ::close(Server);
      Server = -1;
    }
  }

  /// One framed round trip; EXPECTs a well-formed reply.
  WireMessage roundTrip(const WireMessage &M) {
    EXPECT_TRUE(writeFrame(Client, formatWireMessage(M)));
    std::string Payload;
    EXPECT_EQ(readFrame(Client, Payload, 1u << 24), FrameStatus::Ok);
    WireMessage R;
    std::string Err;
    EXPECT_TRUE(parseWireMessage(Payload, R, &Err)) << Err;
    return R;
  }

  WireMessage solve(const char *Text,
                    std::map<std::string, std::string> Headers = {}) {
    WireMessage M;
    M.Verb = "solve";
    M.Headers = std::move(Headers);
    // Bound every engine run so a test instance can never hang the suite;
    // the budget is far above what these tiny systems need.
    M.Headers.emplace("max-refine-steps", "2000");
    M.Body = Text;
    return roundTrip(M);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, FormatParseRoundTrip) {
  WireMessage M;
  M.Verb = "solve";
  M.Headers["config"] = "Yld(T,MBP(2))";
  M.Headers["deadline-ms"] = "1500";
  M.Body = "(set-logic HORN)\nbody with\nnewlines\n";
  WireMessage R;
  std::string Err;
  ASSERT_TRUE(parseWireMessage(formatWireMessage(M), R, &Err)) << Err;
  EXPECT_EQ(R.Verb, M.Verb);
  EXPECT_EQ(R.Headers, M.Headers);
  EXPECT_EQ(R.Body, M.Body);
  EXPECT_EQ(R.header("config"), "Yld(T,MBP(2))");
  EXPECT_EQ(R.header("absent", "dflt"), "dflt");
}

TEST(WireCodecTest, ParseRejectsEmptyAndSkipsJunkHeaders) {
  WireMessage R;
  std::string Err;
  EXPECT_FALSE(parseWireMessage("", R, &Err));
  EXPECT_FALSE(Err.empty());
  // Junk header lines (no ": ") are skipped, not fatal.
  ASSERT_TRUE(parseWireMessage("ping\ngarbage-line\na: b\n\nrest", R, &Err));
  EXPECT_EQ(R.Verb, "ping");
  EXPECT_EQ(R.header("a"), "b");
  EXPECT_EQ(R.Body, "rest");
}

TEST(WireCodecTest, FramesRoundTripOverASocket) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  std::string Sent(100000, 'x');
  Sent[0] = '\0'; // Binary-safe framing.
  ASSERT_TRUE(writeFrame(Sp[0], Sent));
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Ok);
  EXPECT_EQ(Got, Sent);
  ::close(Sp[0]);
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Eof);
  ::close(Sp[1]);
}

TEST(WireCodecTest, TruncatedFrameIsDetected) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  // Header promises 100 bytes, the peer dies after 10.
  unsigned char Hdr[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(Sp[0], Hdr, 4), 4);
  ASSERT_EQ(::write(Sp[0], "0123456789", 10), 10);
  ::close(Sp[0]);
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Truncated);
  ::close(Sp[1]);
}

TEST(WireCodecTest, OversizedFrameIsDrainedAndRejected) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  std::string Big(9000, 'y');
  std::thread Writer([&] {
    // The 9 KB payload exceeds the reader's socket buffer slack plus the
    // 1 KB limit; write from a thread so the drain can make progress.
    writeFrame(Sp[0], Big);
    writeFrame(Sp[0], "after");
  });
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1024), FrameStatus::Oversized);
  // The stream is still framed: the next frame reads cleanly.
  EXPECT_EQ(readFrame(Sp[1], Got, 1024), FrameStatus::Ok);
  EXPECT_EQ(Got, "after");
  Writer.join();
  ::close(Sp[0]);
  ::close(Sp[1]);
}

//===----------------------------------------------------------------------===//
// Daemon over socketpairs
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, PingStatsAndUnknownVerb) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);
  EXPECT_EQ(C.roundTrip([] {
             WireMessage M;
             M.Verb = "ping";
             return M;
           }()).Verb,
            "pong");
  WireMessage S = C.roundTrip([] {
    WireMessage M;
    M.Verb = "stats";
    return M;
  }());
  EXPECT_EQ(S.Verb, "stats");
  EXPECT_EQ(S.header("requests"), "0");
  WireMessage Bad;
  Bad.Verb = "frobnicate";
  WireMessage R = C.roundTrip(Bad);
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("unknown verb"), std::string::npos);
}

TEST(ServeDaemonTest, SolvesAndServesRenamedResubmissionFromCache) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  WireMessage Cold = C.solve(CounterSat);
  ASSERT_EQ(Cold.Verb, "result");
  EXPECT_EQ(Cold.header("status"), "sat");
  EXPECT_EQ(Cold.header("cache"), "cold");
  ASSERT_EQ(Cold.header("fingerprint").size(), 32u);

  // The acceptance scenario: an alpha-renamed resubmission on a warm daemon
  // is served from the store, Verify-certified, without running an engine.
  WireMessage Warm = C.solve(CounterSatRenamed);
  EXPECT_EQ(Warm.header("status"), "sat");
  EXPECT_EQ(Warm.header("cache"), "mem-hit");
  EXPECT_EQ(Warm.header("verified"), "1");
  EXPECT_EQ(Warm.header("attempts"), "0");
  EXPECT_EQ(Warm.header("fingerprint"), Cold.header("fingerprint"));

  WireMessage Unsat = C.solve(CounterUnsat);
  EXPECT_EQ(Unsat.header("status"), "unsat");

  EXPECT_EQ(D.stats().Requests.load(), 3u);
  EXPECT_EQ(D.stats().CacheHits.load(), 1u);
  EXPECT_EQ(D.stats().Definitive.load(), 3u);
}

TEST(ServeDaemonTest, SolveHeadersDriveOptionsAndErrors) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  WireMessage R = C.solve(CounterSat, {{"config", "NoSuchEngine"}});
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("unknown configuration"),
            std::string::npos);

  R = C.solve(CounterSat, {{"config", "Yld(T,MBP(1))"},
                           {"want-solution", "1"},
                           {"tags", "t=1"}});
  EXPECT_EQ(R.header("status"), "sat");
  EXPECT_EQ(R.header("tags"), "t=1");
  EXPECT_NE(R.Body.find("(define-fun Inv "), std::string::npos) << R.Body;

  // A malformed body is a typed input error on the response, not a dead
  // connection — and the daemon keeps serving afterwards.
  R = C.solve("(assert (not-a-horn");
  EXPECT_EQ(R.Verb, "result");
  EXPECT_EQ(R.header("status"), "unknown");
  EXPECT_NE(R.header("error").find("input-error"), std::string::npos);
  EXPECT_EQ(C.solve(CounterSat).header("status"), "sat");
}

TEST(ServeDaemonTest, ConnectionSurvivesBadAndOversizedFrames) {
  ServeOptions SO;
  SO.MaxFrameBytes = 4096;
  ServeDaemon D(SO);
  TestConn C(D);

  // Unparseable payload: error frame, connection stays up.
  ASSERT_TRUE(writeFrame(C.Client, ""));
  std::string Payload;
  ASSERT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Ok);
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "error");

  // Oversized frame: drained, rejected, connection stays up.
  std::string Big = "solve\n\n" + std::string(8192, 'z');
  std::thread Writer([&] { writeFrame(C.Client, Big); });
  ASSERT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Ok);
  Writer.join();
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("size limit"), std::string::npos);
  EXPECT_EQ(D.stats().BadFrames.load(), 2u);

  // The framed stream is intact: a real request still solves.
  EXPECT_EQ(C.solve(CounterSat).header("status"), "sat");
}

TEST(ServeDaemonTest, TruncatedFrameClosesTheConnection) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);
  unsigned char Hdr[4] = {0, 0, 1, 0}; // Promise 256 bytes...
  ASSERT_EQ(::write(C.Client, Hdr, 4), 4);
  ASSERT_EQ(::write(C.Client, "short", 5), 5); // ...deliver 5, then die.
  ::close(C.Client);
  C.Client = -1;
  C.closeAndJoin(); // The serve thread must exit on its own.
  EXPECT_EQ(D.stats().BadFrames.load(), 1u);
}

TEST(ServeDaemonTest, ConcurrentClientsGetTheirOwnAnswers) {
  ServeOptions SO;
  SO.Jobs = 4;
  ServeDaemon D(SO);

  constexpr int NClients = 4, NRounds = 3;
  std::vector<std::unique_ptr<TestConn>> Conns;
  for (int I = 0; I < NClients; ++I)
    Conns.push_back(std::make_unique<TestConn>(D));

  std::vector<std::thread> Drivers;
  std::vector<int> Failures(NClients, 0);
  for (int I = 0; I < NClients; ++I)
    Drivers.emplace_back([&, I] {
      for (int Round = 0; Round < NRounds; ++Round) {
        // Odd clients ask the unsat system, even the sat one; a response
        // crossing connections would flip a verdict.
        const char *Text = (I % 2) ? CounterUnsat : CounterSat;
        const char *Want = (I % 2) ? "unsat" : "sat";
        WireMessage R = Conns[I]->solve(Text);
        if (R.header("status") != Want)
          ++Failures[I];
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  for (int I = 0; I < NClients; ++I)
    EXPECT_EQ(Failures[I], 0) << "client " << I;
  EXPECT_EQ(D.stats().Requests.load(), unsigned(NClients * NRounds));
}

TEST(ServeDaemonTest, MidJobDisconnectCancelsTheJob) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  // A job that never finishes on its own: the Solve baseline diverging on
  // Example 5, no deadline, no refine-step budget. Send it, then vanish.
  WireMessage M;
  M.Verb = "solve";
  M.Headers["config"] = "Solve";
  M.Body = DivergesUnderSolve;
  ASSERT_TRUE(writeFrame(C.Client, formatWireMessage(M)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(D.stats().Cancelled.load(), 0u);

  ::close(C.Client);
  C.Client = -1;
  // The connection thread polls the socket while the job runs; the hangup
  // must cancel the job and let the thread exit. joinable join() hangs the
  // test on failure, so this *is* the assertion.
  C.closeAndJoin();
  EXPECT_EQ(D.stats().Cancelled.load(), 1u);
}

TEST(ServeDaemonTest, DaemonSurvivesCrashingJobs) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  // Fault injection with no retries: injected failures escape the engine
  // as typed errors. Whatever each seed does — crash to unknown or survive
  // to a verdict — the daemon must keep answering.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    WireMessage R = C.solve(
        CounterUnsat, {{"chaos-seed", std::to_string(Seed)},
                       {"max-retries", "0"},
                       {"no-store", "1"}});
    ASSERT_EQ(R.Verb, "result") << "seed " << Seed;
    std::string St = R.header("status");
    EXPECT_TRUE(St == "unsat" || St == "unknown") << St;
    EXPECT_EQ(C.roundTrip([] {
               WireMessage P;
               P.Verb = "ping";
               return P;
             }()).Verb,
              "pong")
        << "daemon died after seed " << Seed;
  }
  // With the ladder enabled faults may still exhaust the retry budget, but
  // they must only ever degrade the verdict to unknown — never flip it.
  WireMessage R = C.solve(CounterUnsat, {{"chaos-seed", "1"},
                                         {"max-retries", "3"},
                                         {"no-store", "1"}});
  std::string St = R.header("status");
  EXPECT_TRUE(St == "unsat" || St == "unknown") << St;
  // And a clean job right after is entirely unaffected.
  EXPECT_EQ(C.solve(CounterUnsat, {{"no-store", "1"}}).header("status"),
            "unsat");
}

//===----------------------------------------------------------------------===//
// Overload hardening: deadline reads, admission control
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, FrameSplitAcrossSingleByteWritesDecodes) {
  // Regression for the EINTR/partial-read path: a slow but live writer —
  // one byte at a time, each within the stall budget — must never be cut
  // off, however long the whole frame takes.
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  std::string Payload = "ping\nslow: writer\n\nbody bytes";
  std::string Framed;
  Framed.push_back(0);
  Framed.push_back(0);
  Framed.push_back(0);
  Framed.push_back(static_cast<char>(Payload.size()));
  Framed += Payload;
  std::thread Writer([&] {
    for (char C : Framed) {
      ASSERT_EQ(::write(Sp[0], &C, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::string Got;
  EXPECT_EQ(readFrameDeadline(Sp[1], Got, 1u << 20, /*StallTimeoutMs=*/500),
            FrameStatus::Ok);
  EXPECT_EQ(Got, Payload);
  Writer.join();
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(WireCodecTest, MidFrameSilenceTripsTheStallDeadline) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  unsigned char Hdr[4] = {0, 0, 0, 100}; // Promise 100 bytes...
  ASSERT_EQ(::write(Sp[0], Hdr, 4), 4);
  ASSERT_EQ(::write(Sp[0], "stuck", 5), 5); // ...then go silent, fd open.
  std::string Got;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_EQ(readFrameDeadline(Sp[1], Got, 1u << 20, /*StallTimeoutMs=*/150),
            FrameStatus::TimedOut);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  EXPECT_GE(Ms, 100);
  EXPECT_LT(Ms, 5000);
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(ServeDaemonTest, SlowLorisClientIsDisconnected) {
  ServeOptions SO;
  SO.ReadStallMs = 150;
  ServeDaemon D(SO);
  TestConn C(D);
  unsigned char Hdr[4] = {0, 0, 0, 50};
  ASSERT_EQ(::write(C.Client, Hdr, 4), 4); // Half a frame, then nothing.
  std::string Payload;
  ASSERT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Ok);
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("read deadline"), std::string::npos);
  // The daemon closed its side; our next read sees EOF.
  EXPECT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Eof);
  EXPECT_EQ(D.stats().TimedOutConns.load(), 1u);
}

TEST(ServeDaemonTest, SlowButLiveWriterIsServedNormally) {
  ServeOptions SO;
  SO.ReadStallMs = 300;
  ServeDaemon D(SO);
  TestConn C(D);
  // A whole solve frame trickled a few bytes at a time: total time well
  // past the stall budget, every write well inside it.
  WireMessage M;
  M.Verb = "solve";
  M.Headers["max-refine-steps"] = "2000";
  M.Body = CounterUnsat;
  std::string Payload = formatWireMessage(M);
  std::string Framed;
  for (int I = 3; I >= 0; --I)
    Framed.push_back(static_cast<char>((Payload.size() >> (8 * I)) & 0xff));
  Framed += Payload;
  for (size_t I = 0; I < Framed.size(); I += 7) {
    size_t N = std::min<size_t>(7, Framed.size() - I);
    ASSERT_EQ(::write(C.Client, Framed.data() + I, N),
              static_cast<ssize_t>(N));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::string Got;
  ASSERT_EQ(readFrame(C.Client, Got, 1u << 24), FrameStatus::Ok);
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Got, R, nullptr));
  EXPECT_EQ(R.header("status"), "unsat");
}

TEST(ServeDaemonTest, PendingBoundShedsWithTypedOverloadedFrame) {
  ServeOptions SO;
  SO.Jobs = 1;
  SO.MaxPending = 1;
  ServeDaemon D(SO);
  TestConn Busy(D);
  TestConn Shed(D);

  // Fill the single slot with a job that runs for a while: the diverging
  // system bounded by a deadline, so the test always terminates.
  WireMessage M;
  M.Verb = "solve";
  M.Headers["config"] = "Solve";
  M.Headers["deadline-ms"] = "2000";
  M.Body = DivergesUnderSolve;
  ASSERT_TRUE(writeFrame(Busy.Client, formatWireMessage(M)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The second solve must be refused, not queued behind the bound.
  WireMessage R = Shed.solve(CounterSat);
  EXPECT_EQ(R.Verb, "overloaded");
  EXPECT_NE(R.header("detail").find("pending"), std::string::npos);
  EXPECT_EQ(D.stats().Overloaded.load(), 1u);

  // The shed connection itself stays usable: ping still answers, and once
  // the busy job drains, solves are admitted again.
  WireMessage P;
  P.Verb = "ping";
  EXPECT_EQ(Shed.roundTrip(P).Verb, "pong");

  std::string Payload;
  ASSERT_EQ(readFrame(Busy.Client, Payload, 1u << 24), FrameStatus::Ok);
  EXPECT_EQ(Shed.solve(CounterSat).header("status"), "sat");
}

//===----------------------------------------------------------------------===//
// Worker isolation at the service boundary
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, DaemonSurvivesCrashingIsolatedWorkers) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  // Each directive kills the forked worker a different way; every one must
  // come back as a typed unknown with a worker-crashed breadcrumb while
  // the daemon keeps answering.
  for (const char *How : {"segv", "abort", "exit3"}) {
    WireMessage R = C.solve(CounterSat, {{"isolate", "crash"},
                                         {"x-crash", How},
                                         {"max-retries", "0"},
                                         {"no-store", "1"}});
    ASSERT_EQ(R.Verb, "result") << How;
    EXPECT_EQ(R.header("status"), "unknown") << How;
    EXPECT_NE(R.header("error").find("worker-crashed"), std::string::npos)
        << How << ": " << R.header("error");
    WireMessage P;
    P.Verb = "ping";
    ASSERT_EQ(C.roundTrip(P).Verb, "pong") << "daemon died after " << How;
  }
  EXPECT_EQ(D.stats().WorkerCrashes.load(), 3u);

  // With a retry rung the crash ladder recovers to the real verdict.
  WireMessage R = C.solve(CounterSat, {{"isolate", "crash"},
                                       {"x-crash", "segv"},
                                       {"max-retries", "1"},
                                       {"no-store", "1"}});
  EXPECT_EQ(R.header("status"), "sat");

  WireMessage Bad = C.solve(CounterSat, {{"isolate", "sometimes"}});
  EXPECT_EQ(Bad.Verb, "error");
}

//===----------------------------------------------------------------------===//
// Crash-restart durability against the real daemon binary
//===----------------------------------------------------------------------===//

#ifdef MUCYC_SERVE_BIN

namespace {

/// Connects to a UNIX socket, retrying while the daemon binds.
int connectRetrying(const std::string &Path, int TriesMs = 5000) {
  for (int Waited = 0; Waited < TriesMs; Waited += 50) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

/// Forks and execs mucyc-serve; returns the child pid.
pid_t spawnServe(const std::vector<std::string> &Args) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>(MUCYC_SERVE_BIN));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(MUCYC_SERVE_BIN, Argv.data());
  ::_exit(127);
}

WireMessage frameRoundTrip(int Fd, const WireMessage &M) {
  EXPECT_TRUE(writeFrame(Fd, formatWireMessage(M)));
  std::string Payload;
  EXPECT_EQ(readFrame(Fd, Payload, 1u << 24), FrameStatus::Ok);
  WireMessage R;
  EXPECT_TRUE(parseWireMessage(Payload, R, nullptr));
  return R;
}

} // namespace

TEST(ServeCrashRestartTest, StoreSurvivesSigkillAndQuarantinesTornEntry) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("mucyc-serve-crash-" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(Dir);
  std::string Sock = Dir + ".sock";
  std::string StoreDir = Dir + "/store";
  ::unlink(Sock.c_str());

  pid_t Pid = spawnServe({"--socket", Sock, "--store-dir", StoreDir,
                          "--isolate", "crash", "--max-retries", "1",
                          "--max-refine-steps", "2000"});
  ASSERT_GT(Pid, 0);
  int Fd = connectRetrying(Sock);
  ASSERT_GE(Fd, 0) << "daemon never bound " << Sock;

  // Two verified entries reach the disk tier...
  WireMessage M;
  M.Verb = "solve";
  M.Body = CounterSat;
  WireMessage R1 = frameRoundTrip(Fd, M);
  ASSERT_EQ(R1.header("status"), "sat");
  M.Body = CounterUnsat;
  WireMessage R2 = frameRoundTrip(Fd, M);
  ASSERT_EQ(R2.header("status"), "unsat");

  // ...then the daemon dies hard, mid-"batch": SIGKILL, no atexit, no
  // flush, plus one torn in-flight entry the kill supposedly interrupted.
  ::kill(Pid, SIGKILL);
  int St = 0;
  ::waitpid(Pid, &St, 0);
  ASSERT_TRUE(WIFSIGNALED(St));
  ::close(Fd);
  std::ofstream(StoreDir + "/deadbeef00000000deadbeef00000000.mucyc-result")
      << "mucyc-result-v2\nstatus: sat\ndepth: 2\nconf"; // Torn mid-write.
  std::ofstream(StoreDir + "/inflight.mucyc-result.tmp") << "half";

  // Restart on the same store directory: previously verified entries are
  // served warm from disk, the torn one is quarantined, never served.
  pid_t Pid2 = spawnServe({"--socket", Sock, "--store-dir", StoreDir,
                           "--isolate", "crash", "--max-refine-steps",
                           "2000"});
  ASSERT_GT(Pid2, 0);
  Fd = connectRetrying(Sock);
  ASSERT_GE(Fd, 0);

  M.Body = CounterSat;
  WireMessage W1 = frameRoundTrip(Fd, M);
  EXPECT_EQ(W1.header("status"), "sat");
  EXPECT_EQ(W1.header("cache"), "disk-hit");
  EXPECT_EQ(W1.header("attempts"), "0");
  EXPECT_EQ(W1.header("fingerprint"), R1.header("fingerprint"));
  M.Body = CounterUnsat;
  WireMessage W2 = frameRoundTrip(Fd, M);
  EXPECT_EQ(W2.header("status"), "unsat");
  EXPECT_EQ(W2.header("cache"), "disk-hit");

  WireMessage S;
  S.Verb = "stats";
  WireMessage Stats = frameRoundTrip(Fd, S);
  EXPECT_EQ(Stats.header("store-recovered-intact"), "2");
  EXPECT_EQ(Stats.header("store-quarantined"), "1");
  EXPECT_EQ(Stats.header("store-tmp-swept"), "1");

  ::close(Fd);
  ::kill(Pid2, SIGTERM);
  ::waitpid(Pid2, &St, 0);
  std::filesystem::remove_all(Dir);
  ::unlink(Sock.c_str());
}

TEST(ServeCrashRestartTest, ConnectionCapShedsExcessClients) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("mucyc-serve-cap-" + std::to_string(::getpid())))
                        .string();
  std::string Sock = Dir + ".sock";
  ::unlink(Sock.c_str());

  pid_t Pid = spawnServe({"--socket", Sock, "--max-connections", "2"});
  ASSERT_GT(Pid, 0);
  int A = connectRetrying(Sock);
  ASSERT_GE(A, 0);
  int B = connectRetrying(Sock);
  ASSERT_GE(B, 0);
  // Give the daemon a beat to register both connection threads.
  WireMessage P;
  P.Verb = "ping";
  EXPECT_EQ(frameRoundTrip(A, P).Verb, "pong");
  EXPECT_EQ(frameRoundTrip(B, P).Verb, "pong");

  // The third connection is told why and cut, not silently dropped.
  int C = connectRetrying(Sock, 1000);
  ASSERT_GE(C, 0);
  std::string Payload;
  ASSERT_EQ(readFrame(C, Payload, 1u << 20), FrameStatus::Ok);
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "overloaded");
  EXPECT_EQ(readFrame(C, Payload, 1u << 20), FrameStatus::Eof);
  ::close(C);

  // Closing one slot frees admission for a newcomer.
  ::close(A);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  int D = connectRetrying(Sock, 1000);
  ASSERT_GE(D, 0);
  EXPECT_EQ(frameRoundTrip(D, P).Verb, "pong");

  ::close(B);
  ::close(D);
  ::kill(Pid, SIGTERM);
  int St = 0;
  ::waitpid(Pid, &St, 0);
  ::unlink(Sock.c_str());
}

#endif // MUCYC_SERVE_BIN
