//===- tests/ServeTest.cpp - Solving service protocol tests ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the serve layer: the wire codec (message format, length-prefixed
// framing, malformed / truncated / oversized frames), and a ServeDaemon
// driven over socketpairs — solve round trips with cache provenance,
// connections surviving bad frames, concurrent clients, mid-job client
// disconnect cancelling the job, and the daemon surviving a job that
// crashes under fault injection.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serve.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace mucyc;

namespace {

const char *CounterSat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 100)) false)))
(check-sat)
)";

const char *CounterSatRenamed = R"((set-logic HORN)
(declare-fun Reach (Int) Bool)
(assert (forall ((a Int)) (=> (= a 0) (Reach a))))
(assert (forall ((a Int) (b Int))
  (=> (and (Reach a) (< a 5) (= b (+ a 1))) (Reach b))))
(assert (forall ((a Int)) (=> (and (Reach a) (> a 100)) false)))
(check-sat)
)";

const char *CounterUnsat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 2)) false)))
(check-sat)
)";

/// Paper Example 5 (x' = 2x): sat, but the Solve baseline diverges on it —
/// no finite exact reach set — so with no deadline it runs until cancelled.
const char *DivergesUnderSolve = R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (>= x 2) (<= x 8)) (P x))))
(assert (forall ((x Int) (y Int)) (=> (and (P x) (= y (* 2 x))) (P y))))
(assert (forall ((x Int)) (=> (and (P x) (< x (- 5))) false)))
(check-sat)
)";

/// A daemon plus one in-process "connection": the daemon side of a
/// socketpair is served on a background thread, the test drives the client
/// side with framed messages.
struct TestConn {
  int Client = -1;
  int Server = -1;
  std::thread Thread;

  explicit TestConn(ServeDaemon &D) {
    int Sp[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    Client = Sp[0];
    Server = Sp[1];
    Thread = std::thread([&D, Fd = Server] { D.serveConnection(Fd, Fd); });
  }
  ~TestConn() { closeAndJoin(); }

  void closeAndJoin() {
    if (Client >= 0) {
      ::close(Client);
      Client = -1;
    }
    if (Thread.joinable())
      Thread.join();
    if (Server >= 0) {
      ::close(Server);
      Server = -1;
    }
  }

  /// One framed round trip; EXPECTs a well-formed reply.
  WireMessage roundTrip(const WireMessage &M) {
    EXPECT_TRUE(writeFrame(Client, formatWireMessage(M)));
    std::string Payload;
    EXPECT_EQ(readFrame(Client, Payload, 1u << 24), FrameStatus::Ok);
    WireMessage R;
    std::string Err;
    EXPECT_TRUE(parseWireMessage(Payload, R, &Err)) << Err;
    return R;
  }

  WireMessage solve(const char *Text,
                    std::map<std::string, std::string> Headers = {}) {
    WireMessage M;
    M.Verb = "solve";
    M.Headers = std::move(Headers);
    // Bound every engine run so a test instance can never hang the suite;
    // the budget is far above what these tiny systems need.
    M.Headers.emplace("max-refine-steps", "2000");
    M.Body = Text;
    return roundTrip(M);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, FormatParseRoundTrip) {
  WireMessage M;
  M.Verb = "solve";
  M.Headers["config"] = "Yld(T,MBP(2))";
  M.Headers["deadline-ms"] = "1500";
  M.Body = "(set-logic HORN)\nbody with\nnewlines\n";
  WireMessage R;
  std::string Err;
  ASSERT_TRUE(parseWireMessage(formatWireMessage(M), R, &Err)) << Err;
  EXPECT_EQ(R.Verb, M.Verb);
  EXPECT_EQ(R.Headers, M.Headers);
  EXPECT_EQ(R.Body, M.Body);
  EXPECT_EQ(R.header("config"), "Yld(T,MBP(2))");
  EXPECT_EQ(R.header("absent", "dflt"), "dflt");
}

TEST(WireCodecTest, ParseRejectsEmptyAndSkipsJunkHeaders) {
  WireMessage R;
  std::string Err;
  EXPECT_FALSE(parseWireMessage("", R, &Err));
  EXPECT_FALSE(Err.empty());
  // Junk header lines (no ": ") are skipped, not fatal.
  ASSERT_TRUE(parseWireMessage("ping\ngarbage-line\na: b\n\nrest", R, &Err));
  EXPECT_EQ(R.Verb, "ping");
  EXPECT_EQ(R.header("a"), "b");
  EXPECT_EQ(R.Body, "rest");
}

TEST(WireCodecTest, FramesRoundTripOverASocket) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  std::string Sent(100000, 'x');
  Sent[0] = '\0'; // Binary-safe framing.
  ASSERT_TRUE(writeFrame(Sp[0], Sent));
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Ok);
  EXPECT_EQ(Got, Sent);
  ::close(Sp[0]);
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Eof);
  ::close(Sp[1]);
}

TEST(WireCodecTest, TruncatedFrameIsDetected) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  // Header promises 100 bytes, the peer dies after 10.
  unsigned char Hdr[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(Sp[0], Hdr, 4), 4);
  ASSERT_EQ(::write(Sp[0], "0123456789", 10), 10);
  ::close(Sp[0]);
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1u << 20), FrameStatus::Truncated);
  ::close(Sp[1]);
}

TEST(WireCodecTest, OversizedFrameIsDrainedAndRejected) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  std::string Big(9000, 'y');
  std::thread Writer([&] {
    // The 9 KB payload exceeds the reader's socket buffer slack plus the
    // 1 KB limit; write from a thread so the drain can make progress.
    writeFrame(Sp[0], Big);
    writeFrame(Sp[0], "after");
  });
  std::string Got;
  EXPECT_EQ(readFrame(Sp[1], Got, 1024), FrameStatus::Oversized);
  // The stream is still framed: the next frame reads cleanly.
  EXPECT_EQ(readFrame(Sp[1], Got, 1024), FrameStatus::Ok);
  EXPECT_EQ(Got, "after");
  Writer.join();
  ::close(Sp[0]);
  ::close(Sp[1]);
}

//===----------------------------------------------------------------------===//
// Daemon over socketpairs
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, PingStatsAndUnknownVerb) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);
  EXPECT_EQ(C.roundTrip([] {
             WireMessage M;
             M.Verb = "ping";
             return M;
           }()).Verb,
            "pong");
  WireMessage S = C.roundTrip([] {
    WireMessage M;
    M.Verb = "stats";
    return M;
  }());
  EXPECT_EQ(S.Verb, "stats");
  EXPECT_EQ(S.header("requests"), "0");
  WireMessage Bad;
  Bad.Verb = "frobnicate";
  WireMessage R = C.roundTrip(Bad);
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("unknown verb"), std::string::npos);
}

TEST(ServeDaemonTest, SolvesAndServesRenamedResubmissionFromCache) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  WireMessage Cold = C.solve(CounterSat);
  ASSERT_EQ(Cold.Verb, "result");
  EXPECT_EQ(Cold.header("status"), "sat");
  EXPECT_EQ(Cold.header("cache"), "cold");
  ASSERT_EQ(Cold.header("fingerprint").size(), 32u);

  // The acceptance scenario: an alpha-renamed resubmission on a warm daemon
  // is served from the store, Verify-certified, without running an engine.
  WireMessage Warm = C.solve(CounterSatRenamed);
  EXPECT_EQ(Warm.header("status"), "sat");
  EXPECT_EQ(Warm.header("cache"), "mem-hit");
  EXPECT_EQ(Warm.header("verified"), "1");
  EXPECT_EQ(Warm.header("attempts"), "0");
  EXPECT_EQ(Warm.header("fingerprint"), Cold.header("fingerprint"));

  WireMessage Unsat = C.solve(CounterUnsat);
  EXPECT_EQ(Unsat.header("status"), "unsat");

  EXPECT_EQ(D.stats().Requests.load(), 3u);
  EXPECT_EQ(D.stats().CacheHits.load(), 1u);
  EXPECT_EQ(D.stats().Definitive.load(), 3u);
}

TEST(ServeDaemonTest, SolveHeadersDriveOptionsAndErrors) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  WireMessage R = C.solve(CounterSat, {{"config", "NoSuchEngine"}});
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("unknown configuration"),
            std::string::npos);

  R = C.solve(CounterSat, {{"config", "Yld(T,MBP(1))"},
                           {"want-solution", "1"},
                           {"tags", "t=1"}});
  EXPECT_EQ(R.header("status"), "sat");
  EXPECT_EQ(R.header("tags"), "t=1");
  EXPECT_NE(R.Body.find("(define-fun Inv "), std::string::npos) << R.Body;

  // A malformed body is a typed input error on the response, not a dead
  // connection — and the daemon keeps serving afterwards.
  R = C.solve("(assert (not-a-horn");
  EXPECT_EQ(R.Verb, "result");
  EXPECT_EQ(R.header("status"), "unknown");
  EXPECT_NE(R.header("error").find("input-error"), std::string::npos);
  EXPECT_EQ(C.solve(CounterSat).header("status"), "sat");
}

TEST(ServeDaemonTest, ConnectionSurvivesBadAndOversizedFrames) {
  ServeOptions SO;
  SO.MaxFrameBytes = 4096;
  ServeDaemon D(SO);
  TestConn C(D);

  // Unparseable payload: error frame, connection stays up.
  ASSERT_TRUE(writeFrame(C.Client, ""));
  std::string Payload;
  ASSERT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Ok);
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "error");

  // Oversized frame: drained, rejected, connection stays up.
  std::string Big = "solve\n\n" + std::string(8192, 'z');
  std::thread Writer([&] { writeFrame(C.Client, Big); });
  ASSERT_EQ(readFrame(C.Client, Payload, 1u << 20), FrameStatus::Ok);
  Writer.join();
  ASSERT_TRUE(parseWireMessage(Payload, R, nullptr));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_NE(R.header("detail").find("size limit"), std::string::npos);
  EXPECT_EQ(D.stats().BadFrames.load(), 2u);

  // The framed stream is intact: a real request still solves.
  EXPECT_EQ(C.solve(CounterSat).header("status"), "sat");
}

TEST(ServeDaemonTest, TruncatedFrameClosesTheConnection) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);
  unsigned char Hdr[4] = {0, 0, 1, 0}; // Promise 256 bytes...
  ASSERT_EQ(::write(C.Client, Hdr, 4), 4);
  ASSERT_EQ(::write(C.Client, "short", 5), 5); // ...deliver 5, then die.
  ::close(C.Client);
  C.Client = -1;
  C.closeAndJoin(); // The serve thread must exit on its own.
  EXPECT_EQ(D.stats().BadFrames.load(), 1u);
}

TEST(ServeDaemonTest, ConcurrentClientsGetTheirOwnAnswers) {
  ServeOptions SO;
  SO.Jobs = 4;
  ServeDaemon D(SO);

  constexpr int NClients = 4, NRounds = 3;
  std::vector<std::unique_ptr<TestConn>> Conns;
  for (int I = 0; I < NClients; ++I)
    Conns.push_back(std::make_unique<TestConn>(D));

  std::vector<std::thread> Drivers;
  std::vector<int> Failures(NClients, 0);
  for (int I = 0; I < NClients; ++I)
    Drivers.emplace_back([&, I] {
      for (int Round = 0; Round < NRounds; ++Round) {
        // Odd clients ask the unsat system, even the sat one; a response
        // crossing connections would flip a verdict.
        const char *Text = (I % 2) ? CounterUnsat : CounterSat;
        const char *Want = (I % 2) ? "unsat" : "sat";
        WireMessage R = Conns[I]->solve(Text);
        if (R.header("status") != Want)
          ++Failures[I];
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  for (int I = 0; I < NClients; ++I)
    EXPECT_EQ(Failures[I], 0) << "client " << I;
  EXPECT_EQ(D.stats().Requests.load(), unsigned(NClients * NRounds));
}

TEST(ServeDaemonTest, MidJobDisconnectCancelsTheJob) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  // A job that never finishes on its own: the Solve baseline diverging on
  // Example 5, no deadline, no refine-step budget. Send it, then vanish.
  WireMessage M;
  M.Verb = "solve";
  M.Headers["config"] = "Solve";
  M.Body = DivergesUnderSolve;
  ASSERT_TRUE(writeFrame(C.Client, formatWireMessage(M)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(D.stats().Cancelled.load(), 0u);

  ::close(C.Client);
  C.Client = -1;
  // The connection thread polls the socket while the job runs; the hangup
  // must cancel the job and let the thread exit. joinable join() hangs the
  // test on failure, so this *is* the assertion.
  C.closeAndJoin();
  EXPECT_EQ(D.stats().Cancelled.load(), 1u);
}

TEST(ServeDaemonTest, DaemonSurvivesCrashingJobs) {
  ServeDaemon D(ServeOptions{});
  TestConn C(D);

  // Fault injection with no retries: injected failures escape the engine
  // as typed errors. Whatever each seed does — crash to unknown or survive
  // to a verdict — the daemon must keep answering.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    WireMessage R = C.solve(
        CounterUnsat, {{"chaos-seed", std::to_string(Seed)},
                       {"max-retries", "0"},
                       {"no-store", "1"}});
    ASSERT_EQ(R.Verb, "result") << "seed " << Seed;
    std::string St = R.header("status");
    EXPECT_TRUE(St == "unsat" || St == "unknown") << St;
    EXPECT_EQ(C.roundTrip([] {
               WireMessage P;
               P.Verb = "ping";
               return P;
             }()).Verb,
              "pong")
        << "daemon died after seed " << Seed;
  }
  // With the ladder enabled faults may still exhaust the retry budget, but
  // they must only ever degrade the verdict to unknown — never flip it.
  WireMessage R = C.solve(CounterUnsat, {{"chaos-seed", "1"},
                                         {"max-retries", "3"},
                                         {"no-store", "1"}});
  std::string St = R.header("status");
  EXPECT_TRUE(St == "unsat" || St == "unknown") << St;
  // And a clean job right after is entirely unaffected.
  EXPECT_EQ(C.solve(CounterUnsat, {{"no-store", "1"}}).header("status"),
            "unsat");
}
