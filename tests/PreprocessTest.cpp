//===- tests/PreprocessTest.cpp - CHC preprocessing tests -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Preprocess.h"

#include "chc/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace mucyc;

TEST(PreprocessTest, UnfoldsIntermediatePredicate) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(declare-fun Mid (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int)) (=> (and (Inv x) (= y (+ x 1))) (Mid y))))
(assert (forall ((y Int)) (=> (Mid y) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (< x 0)) false)))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  PreprocessStats Stats;
  ChcSystem Out = preprocess(*R.System, &Stats);
  EXPECT_GE(Stats.PredsEliminated, 1u);
  // One of the two predicates has been resolved away entirely (which one is
  // a heuristic choice); only one live predicate remains.
  std::set<PredId> Live;
  for (const Clause &Cl : Out.clauses()) {
    for (const PredApp &B : Cl.Body)
      Live.insert(B.Pred);
    if (Cl.Head)
      Live.insert(Cl.Head->Pred);
  }
  EXPECT_EQ(Live.size(), 1u);
}

TEST(PreprocessTest, KeepsRecursivePredicates) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (P x))))
(assert (forall ((x Int) (y Int)) (=> (and (P x) (= y (+ x 1))) (P y))))
)");
  ASSERT_TRUE(R.Ok);
  ChcSystem Out = preprocess(*R.System);
  EXPECT_EQ(Out.clauses().size(), 2u);
}

TEST(PreprocessTest, FiltersDeadArguments) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int Int) Bool)
(assert (forall ((x Int) (d Int)) (=> (= x 0) (P x d))))
(assert (forall ((x Int) (y Int) (d Int) (e Int))
  (=> (and (P x d) (= y (+ x 1))) (P y e))))
(assert (forall ((x Int) (d Int)) (=> (and (P x d) (< x 0)) false)))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  size_t Filtered = 0;
  ChcSystem Out = filterArguments(*R.System, &Filtered);
  EXPECT_EQ(Filtered, 1u); // The d slot carries no information.
  EXPECT_EQ(Out.pred(0).ArgSorts.size(), 1u);
}

TEST(PreprocessTest, KeepsLinkedArguments) {
  // The second argument links body and head; it must NOT be erased.
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int Int) Bool)
(assert (forall ((x Int) (d Int)) (=> (= x 0) (P x d))))
(assert (forall ((x Int) (y Int) (d Int))
  (=> (and (P x d) (= y (+ x 1))) (P y d))))
(assert (forall ((x Int) (d Int)) (=> (and (P x d) (< d 0)) false)))
)");
  ASSERT_TRUE(R.Ok);
  size_t Filtered = 0;
  ChcSystem Out = filterArguments(*R.System, &Filtered);
  EXPECT_EQ(Filtered, 0u);
  EXPECT_EQ(Out.pred(0).ArgSorts.size(), 2u);
}

TEST(PreprocessTest, UnfoldPreservesSolutions) {
  // After unfolding Mid away, the known invariant still checks.
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(declare-fun Mid (Int) Bool)
(assert (forall ((x Int)) (=> (and (<= 0 x) (<= x 1)) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 3) (= y (+ x 1))) (Mid y))))
(assert (forall ((y Int)) (=> (Mid y) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 10)) false)))
)");
  ASSERT_TRUE(R.Ok);
  ChcSystem Out = preprocess(*R.System);
  auto InvId = Out.findPred("Inv");
  if (!InvId) {
    // Name may carry an unfold suffix; find any surviving predicate.
    for (PredId P = 0; P < Out.numPreds(); ++P)
      if (Out.pred(P).Name.rfind("Inv", 0) == 0)
        InvId = P;
  }
  ASSERT_TRUE(InvId.has_value());
  TermRef V = C.mkFreshVar("v", Sort::Int);
  PredDef Def;
  Def.Params = {C.node(V).Var};
  Def.Body = C.mkAnd(C.mkGe(V, C.mkIntConst(0)), C.mkLe(V, C.mkIntConst(4)));
  ChcSolution Sol;
  // Every surviving predicate gets the same interpretation modulo arity.
  for (PredId P = 0; P < Out.numPreds(); ++P) {
    bool Used = false;
    for (const Clause &Cl : Out.clauses()) {
      for (const PredApp &B : Cl.Body)
        Used |= B.Pred == P;
      Used |= Cl.Head && Cl.Head->Pred == P;
    }
    if (Used)
      Sol.emplace(P, Def);
  }
  EXPECT_TRUE(Out.checkSolution(Sol));
}

TEST(PreprocessTest, UnfoldMultipleDefinitions) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun A (Int) Bool)
(declare-fun B (Int) Bool)
(assert (forall ((x Int)) (=> (= x 1) (B x))))
(assert (forall ((x Int)) (=> (= x 2) (B x))))
(assert (forall ((x Int)) (=> (B x) (A x))))
(assert (forall ((x Int)) (=> (and (A x) (> x 5)) false)))
)");
  ASSERT_TRUE(R.Ok);
  ChcSystem Out(C);
  auto BId = R.System->findPred("B");
  ASSERT_TRUE(BId.has_value());
  for (PredId P = 0; P < R.System->numPreds(); ++P)
    Out.addPred(R.System->pred(P).Name + "!t", R.System->pred(P).ArgSorts);
  ASSERT_TRUE(unfoldPredicate(*R.System, *BId, Out));
  // Two facts for A now; the B clauses are gone.
  size_t AFacts = 0;
  for (const Clause &Cl : Out.clauses())
    if (Cl.Head && Cl.Body.empty())
      ++AFacts;
  EXPECT_EQ(AFacts, 2u);
}
