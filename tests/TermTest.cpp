//===- tests/TermTest.cpp - Term representation and canonicalization ------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Eval.h"
#include "term/Term.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
struct TermFixture : ::testing::Test {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Y = C.mkVar("y", Sort::Int);
  TermRef A = C.mkVar("a", Sort::Bool);
  TermRef B = C.mkVar("b", Sort::Bool);
};
} // namespace

TEST_F(TermFixture, HashConsing) {
  EXPECT_EQ(C.mkAdd(X, Y), C.mkAdd(X, Y));
  EXPECT_EQ(C.mkLe(X, Y), C.mkLe(X, Y));
  EXPECT_EQ(C.mkVar("x", Sort::Int), X);
  // Commutted spellings of the same atom coincide after canonicalization.
  TermRef L1 = C.mkLe(C.mkSub(X, Y), C.mkIntConst(0));
  TermRef L2 = C.mkLe(X, Y);
  EXPECT_EQ(L1, L2);
}

TEST_F(TermFixture, BooleanFolding) {
  EXPECT_EQ(C.mkNot(C.mkTrue()), C.mkFalse());
  EXPECT_EQ(C.mkNot(C.mkNot(A)), A);
  EXPECT_EQ(C.mkAnd(A, C.mkTrue()), A);
  EXPECT_EQ(C.mkAnd(A, C.mkFalse()), C.mkFalse());
  EXPECT_EQ(C.mkOr(A, C.mkTrue()), C.mkTrue());
  EXPECT_EQ(C.mkAnd(A, C.mkNot(A)), C.mkFalse());
  EXPECT_EQ(C.mkOr(A, C.mkNot(A)), C.mkTrue());
  // Flattening and dedup.
  TermRef F = C.mkAnd(C.mkAnd(A, B), C.mkAnd(B, A));
  EXPECT_EQ(F, C.mkAnd(A, B));
}

TEST_F(TermFixture, NegationOfComparisonsIsPositive) {
  // not (x <= y) canonicalizes to a positive atom.
  TermRef NotLe = C.mkNot(C.mkLe(X, Y));
  EXPECT_NE(C.kind(NotLe), Kind::Not);
  // Over Int, strict atoms are tightened away entirely.
  TermRef Lt = C.mkLt(X, C.mkIntConst(5));
  EXPECT_EQ(C.kind(Lt), Kind::Le); // x <= 4.
}

TEST_F(TermFixture, IntTightening) {
  // 2x <= 5 tightens to x <= 2.
  TermRef T = C.mkLe(C.mkMul(Rational(2), X), C.mkIntConst(5));
  TermRef Expect = C.mkLe(X, C.mkIntConst(2));
  EXPECT_EQ(T, Expect);
  // 2x < 6 tightens to x <= 2.
  TermRef T2 = C.mkLt(C.mkMul(Rational(2), X), C.mkIntConst(6));
  EXPECT_EQ(T2, Expect);
  // 2x = 5 is unsatisfiable over Int.
  EXPECT_EQ(C.mkEq(C.mkMul(Rational(2), X), C.mkIntConst(5)), C.mkFalse());
  // 2x = 4 reduces to x = 2.
  EXPECT_EQ(C.mkEq(C.mkMul(Rational(2), X), C.mkIntConst(4)),
            C.mkEq(X, C.mkIntConst(2)));
}

TEST_F(TermFixture, GroundComparisonFolding) {
  EXPECT_EQ(C.mkLe(C.mkIntConst(3), C.mkIntConst(5)), C.mkTrue());
  EXPECT_EQ(C.mkLt(C.mkIntConst(5), C.mkIntConst(5)), C.mkFalse());
  EXPECT_EQ(C.mkEq(C.mkIntConst(5), C.mkIntConst(5)), C.mkTrue());
  EXPECT_EQ(C.mkEq(C.mkAdd(X, C.mkNeg(X)), C.mkIntConst(0)), C.mkTrue());
}

TEST_F(TermFixture, DividesCanonicalization) {
  // Modulus 1 is trivially true.
  EXPECT_EQ(C.mkDivides(BigInt(1), X), C.mkTrue());
  // Ground divisibility folds.
  EXPECT_EQ(C.mkDivides(BigInt(3), C.mkIntConst(9)), C.mkTrue());
  EXPECT_EQ(C.mkDivides(BigInt(3), C.mkIntConst(8)), C.mkFalse());
  // Coefficients reduce modulo the divisor: (2 | 3x) == (2 | x).
  EXPECT_EQ(C.mkDivides(BigInt(2), C.mkMul(Rational(3), X)),
            C.mkDivides(BigInt(2), X));
  // Common factors cancel: (4 | 2x) == (2 | x).
  EXPECT_EQ(C.mkDivides(BigInt(4), C.mkMul(Rational(2), X)),
            C.mkDivides(BigInt(2), X));
}

TEST_F(TermFixture, ImpliesIffIteDesugar) {
  TermRef Imp = C.mkImplies(A, B);
  EXPECT_EQ(Imp, C.mkOr(C.mkNot(A), B));
  TermRef Iff = C.mkIff(A, A);
  EXPECT_EQ(Iff, C.mkTrue());
  TermRef Ite = C.mkIte(A, B, C.mkNot(B));
  Assignment M;
  M[C.node(A).Var] = Value::boolean(true);
  M[C.node(B).Var] = Value::boolean(false);
  EXPECT_FALSE(evalBool(C, Ite, M));
}

TEST_F(TermFixture, FreeVarsAndAtoms) {
  TermRef F = C.mkAnd({C.mkLe(X, Y), A, C.mkNot(B)});
  std::vector<VarId> Vars = C.freeVars(F);
  EXPECT_EQ(Vars.size(), 4u);
  std::vector<TermRef> Atoms = C.collectAtoms(F);
  EXPECT_EQ(Atoms.size(), 3u);
  for (TermRef At : Atoms)
    EXPECT_TRUE(C.isAtom(At));
}

TEST_F(TermFixture, Substitution) {
  TermRef F = C.mkLe(C.mkAdd(X, Y), C.mkIntConst(5));
  std::unordered_map<VarId, TermRef> Map{
      {C.node(X).Var, C.mkIntConst(2)}};
  TermRef G = C.substitute(F, Map);
  EXPECT_EQ(G, C.mkLe(Y, C.mkIntConst(3)));
  // Substituting both variables folds to a constant truth value.
  Map[C.node(Y).Var] = C.mkIntConst(10);
  EXPECT_EQ(C.substitute(F, Map), C.mkFalse());
}

TEST_F(TermFixture, EvalMatchesSemantics) {
  TermRef F =
      C.mkOr(C.mkAnd(C.mkLe(X, C.mkIntConst(3)), A),
             C.mkEq(Y, C.mkIntConst(7)));
  Assignment M;
  M[C.node(X).Var] = Value::number(Rational(4), Sort::Int);
  M[C.node(Y).Var] = Value::number(Rational(7), Sort::Int);
  M[C.node(A).Var] = Value::boolean(false);
  M[C.node(B).Var] = Value::boolean(false);
  EXPECT_TRUE(evalBool(C, F, M));
  M[C.node(Y).Var] = Value::number(Rational(6), Sort::Int);
  EXPECT_FALSE(evalBool(C, F, M));
}

TEST_F(TermFixture, FreshVarsAreUnique) {
  TermRef V1 = C.mkFreshVar("tmp", Sort::Int);
  TermRef V2 = C.mkFreshVar("tmp", Sort::Int);
  EXPECT_NE(V1, V2);
  EXPECT_NE(C.varInfo(C.node(V1).Var).Name, C.varInfo(C.node(V2).Var).Name);
}

TEST_F(TermFixture, PrintSmtLib) {
  EXPECT_EQ(C.toString(C.mkTrue()), "true");
  EXPECT_EQ(C.toString(C.mkIntConst(-3)), "(- 3)");
  TermRef F = C.mkLe(X, C.mkIntConst(2));
  EXPECT_EQ(C.toString(F), "(<= x 2)");
  TermRef D = C.mkDivides(BigInt(2), X);
  EXPECT_EQ(C.toString(D), "((_ divisible 2) x)");
}

TEST_F(TermFixture, RealAtomsKeepStrictness) {
  TermRef XR = C.mkVar("xr", Sort::Real);
  TermRef Lt = C.mkLt(XR, C.mkRealConst(Rational(1)));
  EXPECT_EQ(C.kind(Lt), Kind::Lt);
  TermRef NotLt = C.mkNot(Lt);
  EXPECT_EQ(C.kind(NotLt), Kind::Le); // xr >= 1 as -xr <= -1.
}

TEST_F(TermFixture, SimplifyIsIdempotent) {
  TermRef F = C.mkAnd({C.mkOr(A, B), C.mkLe(C.mkMul(Rational(2), X),
                                            C.mkIntConst(7))});
  EXPECT_EQ(C.simplify(F), F); // Builders already canonicalize.
}
