//===- tests/FaultTest.cpp - Fault tolerance & resource governance --------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the robustness subsystem: the typed error taxonomy, the cumulative
// resource gauge, the deterministic fault injector, the degraded-retry
// ladder (runtime/Recover.h), scheduler deadline/cancellation semantics,
// portfolio crash survival, and the testgen chaos oracle.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "runtime/Recover.h"
#include "runtime/Scheduler.h"
#include "runtime/Portfolio.h"
#include "solver/ChcSolve.h"
#include "support/Error.h"
#include "support/Fault.h"
#include "testgen/Oracles.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace mucyc;

//===----------------------------------------------------------------------===//
// Error taxonomy
//===----------------------------------------------------------------------===//

TEST(ErrorTest, CodeNamesAndRecoverability) {
  EXPECT_STREQ(errorCodeName(ErrorCode::None), "none");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhaustedMemory),
               "resource-exhausted-memory");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhaustedSteps),
               "resource-exhausted-steps");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhaustedDepth),
               "resource-exhausted-depth");
  EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
  EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
  EXPECT_STREQ(errorCodeName(ErrorCode::InvariantViolation),
               "invariant-violation");
  EXPECT_STREQ(errorCodeName(ErrorCode::InputError), "input-error");

  // Resource trips and invariant violations are worth a degraded retry;
  // cancellation, timeouts and bad input are not.
  EXPECT_TRUE(errorRecoverable(ErrorCode::ResourceExhaustedMemory));
  EXPECT_TRUE(errorRecoverable(ErrorCode::ResourceExhaustedSteps));
  EXPECT_TRUE(errorRecoverable(ErrorCode::ResourceExhaustedDepth));
  EXPECT_TRUE(errorRecoverable(ErrorCode::InvariantViolation));
  EXPECT_FALSE(errorRecoverable(ErrorCode::None));
  EXPECT_FALSE(errorRecoverable(ErrorCode::Cancelled));
  EXPECT_FALSE(errorRecoverable(ErrorCode::Timeout));
  EXPECT_FALSE(errorRecoverable(ErrorCode::InputError));
}

TEST(ErrorTest, RaiseCarriesCodeAndDetail) {
  try {
    raiseError(ErrorCode::ResourceExhaustedSteps, "budget gone");
    FAIL() << "raiseError returned";
  } catch (const MucycError &E) {
    EXPECT_EQ(E.code(), ErrorCode::ResourceExhaustedSteps);
    EXPECT_EQ(E.detail(), "budget gone");
    EXPECT_NE(std::string(E.what()).find("resource-exhausted-steps"),
              std::string::npos);
    ErrorInfo I = E.info();
    EXPECT_TRUE(I.isError());
    EXPECT_NE(I.describe().find("budget gone"), std::string::npos);
  }
  EXPECT_FALSE(ErrorInfo{}.isError());
}

TEST(ErrorTest, InvariantMacro) {
  EXPECT_NO_THROW(MUCYC_INVARIANT(1 + 1 == 2, "arithmetic works"));
  try {
    MUCYC_INVARIANT(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "violated invariant did not throw";
  } catch (const MucycError &E) {
    EXPECT_EQ(E.code(), ErrorCode::InvariantViolation);
    // The stringized condition rides along for diagnostics.
    EXPECT_NE(E.detail().find("arithmetic is broken"), std::string::npos);
    EXPECT_NE(E.detail().find("1 + 1 == 3"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// ResourceGauge / FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultTest, GaugeTripsPastLimitAndIsCumulative) {
  ResourceGauge Unlimited;
  for (int I = 0; I < 1000; ++I)
    Unlimited.charge(1 << 20); // 0 limit = observe only.
  EXPECT_EQ(Unlimited.used(), 1000ull << 20);

  ResourceGauge G(1024);
  G.charge(1000);
  EXPECT_EQ(G.used(), 1000u);
  try {
    G.charge(100);
    FAIL() << "gauge did not trip";
  } catch (const MucycError &E) {
    EXPECT_EQ(E.code(), ErrorCode::ResourceExhaustedMemory);
  }
  EXPECT_EQ(G.used(), 1100u); // Never released: the meter only grows.
}

TEST(FaultTest, InjectorFiresAtExactOrdinalOnce) {
  FaultInjector FI;
  FI.AllocTrip = 3;
  EXPECT_NO_THROW(FI.onAlloc());
  EXPECT_NO_THROW(FI.onAlloc());
  EXPECT_THROW(FI.onAlloc(), MucycError); // Exactly the 3rd.
  for (int I = 0; I < 100; ++I)
    EXPECT_NO_THROW(FI.onAlloc()); // Monotone counter: transient fault.

  FaultInjector FC;
  FC.CheckTrip = 2;
  EXPECT_NO_THROW(FC.onSmtCheck());
  try {
    FC.onSmtCheck();
    FAIL() << "check trip did not fire";
  } catch (const MucycError &E) {
    EXPECT_EQ(E.code(), ErrorCode::InvariantViolation);
  }
  EXPECT_NO_THROW(FC.onSmtCheck());

  FaultInjector FK;
  FK.CancelTrip = 4;
  EXPECT_FALSE(FK.spuriousCancel());
  EXPECT_FALSE(FK.spuriousCancel());
  EXPECT_FALSE(FK.spuriousCancel());
  EXPECT_TRUE(FK.spuriousCancel());
  EXPECT_FALSE(FK.spuriousCancel());

  // Disarmed injector is inert.
  FaultInjector Off;
  for (int I = 0; I < 1000; ++I) {
    EXPECT_NO_THROW(Off.onAlloc());
    EXPECT_NO_THROW(Off.onSmtCheck());
    EXPECT_FALSE(Off.spuriousCancel());
  }
}

TEST(FaultTest, FromSeedIsDeterministicAndArmed) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 0xdeadbeefull}) {
    FaultInjector A = FaultInjector::fromSeed(Seed);
    FaultInjector B = FaultInjector::fromSeed(Seed);
    EXPECT_EQ(A.AllocTrip, B.AllocTrip);
    EXPECT_EQ(A.CheckTrip, B.CheckTrip);
    EXPECT_EQ(A.CancelTrip, B.CancelTrip);
    EXPECT_TRUE(A.AllocTrip || A.CheckTrip || A.CancelTrip)
        << "seed " << Seed << " armed nothing";
  }
  EXPECT_EQ(mixSeed(3, 5), mixSeed(3, 5));
  EXPECT_NE(mixSeed(3, 5), mixSeed(3, 6));
}

//===----------------------------------------------------------------------===//
// ServiceFaultPlan: the process-global service-boundary chaos plan
//===----------------------------------------------------------------------===//

TEST(FaultTest, ServicePlanParsesFullSpec) {
  ServiceFaultPlan P;
  std::string Err;
  ASSERT_TRUE(P.parse("kill-worker=7,tear-store=5@64,short-write=9", Err))
      << Err;
  EXPECT_EQ(P.KillWorkerEvery, 7u);
  EXPECT_EQ(P.TearStoreEvery, 5u);
  EXPECT_EQ(P.TearStoreByte, 64u);
  EXPECT_EQ(P.ShortWriteEvery, 9u);
  EXPECT_TRUE(P.armed());

  // tear-store without @K keeps the default truncation offset.
  ServiceFaultPlan Q;
  ASSERT_TRUE(Q.parse("tear-store=3", Err)) << Err;
  EXPECT_EQ(Q.TearStoreEvery, 3u);
  EXPECT_EQ(Q.TearStoreByte, 64u);

  // Period 0 disarms a class; an all-zero plan is unarmed.
  ServiceFaultPlan Z;
  ASSERT_TRUE(Z.parse("kill-worker=0", Err)) << Err;
  EXPECT_FALSE(Z.armed());
  EXPECT_FALSE(ServiceFaultPlan().armed()) << "default plan must be inert";
}

TEST(FaultTest, ServicePlanRejectsMalformedSpecs) {
  auto Rejects = [](const std::string &Spec, const char *Needle) {
    ServiceFaultPlan P;
    std::string Err;
    EXPECT_FALSE(P.parse(Spec, Err)) << Spec;
    EXPECT_NE(Err.find(Needle), std::string::npos)
        << Spec << " -> " << Err;
  };
  Rejects("kill-worker", "bad chaos-plan clause");
  Rejects("kill-worker=", "bad chaos-plan clause");
  Rejects("=7", "bad chaos-plan clause");
  Rejects("kill-worker=x7", "bad chaos-plan period");
  Rejects("tear-store=5@", "bad tear-store byte offset");
  Rejects("tear-store=5@ten", "bad tear-store byte offset");
  Rejects("sigsegv-everything=2", "unknown chaos-plan key");
  Rejects("kill-worker=7,,short-write=9", "bad chaos-plan clause");
}

TEST(FaultTest, ServicePlanFiresPeriodically) {
  ServiceFaultPlan P;
  std::string Err;
  ASSERT_TRUE(P.parse("kill-worker=3,tear-store=2@10,short-write=4", Err));
  // Every Nth event fires, 1-based: workers 3, 6, 9, ...
  std::vector<int> Killed;
  for (int I = 1; I <= 9; ++I)
    if (P.killThisWorker())
      Killed.push_back(I);
  EXPECT_EQ(Killed, (std::vector<int>{3, 6, 9}));

  uint64_t At = 0;
  EXPECT_FALSE(P.tearThisStoreWrite(At));
  EXPECT_TRUE(P.tearThisStoreWrite(At));
  EXPECT_EQ(At, 10u);
  EXPECT_FALSE(P.tearThisStoreWrite(At));
  EXPECT_TRUE(P.tearThisStoreWrite(At));

  int Shorted = 0;
  for (int I = 0; I < 8; ++I)
    Shorted += P.shortThisWrite() ? 1 : 0;
  EXPECT_EQ(Shorted, 2); // Writes 4 and 8.

  // A disarmed plan never fires and never burns counters into firing.
  ServiceFaultPlan Off;
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Off.killThisWorker());
    EXPECT_FALSE(Off.tearThisStoreWrite(At));
    EXPECT_FALSE(Off.shortThisWrite());
  }
}

//===----------------------------------------------------------------------===//
// Degradation ladder
//===----------------------------------------------------------------------===//

TEST(RecoverTest, DegradeLadderShape) {
  auto Base = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Base.has_value());
  Base->MaxRefineSteps = 100;
  Base->MaxDepth = 8;
  Base->MemLimitMb = 7;
  Base->MaxRetries = 3;

  SolverOptions A0 = degradeOptions(*Base, 0);
  EXPECT_FALSE(A0.NoIncremental);
  EXPECT_EQ(A0.MaxRefineSteps, 100u);

  SolverOptions A1 = degradeOptions(*Base, 1);
  EXPECT_TRUE(A1.NoIncremental); // Possibly-poisoned state is dropped.
  EXPECT_EQ(A1.QueryCacheCap, 0u);
  EXPECT_EQ(A1.MaxRefineSteps, 50u);
  EXPECT_EQ(A1.MaxDepth, 4);
  EXPECT_EQ(A1.Engine, EngineKind::Ret); // Same engine on first retry.
  // The external envelope is NOT degraded: limits the caller imposed stay.
  EXPECT_EQ(A1.MemLimitMb, 7u);
  EXPECT_EQ(A1.MaxRetries, 3u);

  SolverOptions A2 = degradeOptions(*Base, 2);
  EXPECT_EQ(A2.Engine, EngineKind::SpacerTs); // Ret -> complementary engine.
  EXPECT_FALSE(A2.SpacerFig15);

  auto Ts = SolverOptions::parse("SpacerTS(fig15)");
  ASSERT_TRUE(Ts.has_value());
  SolverOptions T2 = degradeOptions(*Ts, 2);
  EXPECT_EQ(T2.Engine, EngineKind::Ret); // Non-Ret -> Ret(T,MBP(1)).
  EXPECT_EQ(T2.Cex, CexMethod::Mbp);
  EXPECT_TRUE(T2.Accumulate);
}

TEST(RecoverTest, BackoffDeterministicAndCapped) {
  for (unsigned A = 1; A <= 8; ++A) {
    uint64_t Ms = retryBackoffMs(99, A);
    EXPECT_EQ(Ms, retryBackoffMs(99, A));
    EXPECT_LE(Ms, 100u);
    EXPECT_GE(Ms, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Solve-level governance
//===----------------------------------------------------------------------===//

TEST(FaultTest, MemLimitTripsDivergingEngineWithBreadcrumb) {
  // The Solve baseline diverges on Example 5 (x' = 2x has no finite exact
  // reach set) with rapid formula growth; a 1 MiB metered budget turns the
  // divergence into a prompt, typed, recoverable failure instead of
  // unbounded growth.
  TermContext Ctx;
  NormalizedChc N = paperExample5(Ctx);
  auto Opts = SolverOptions::parse("Solve");
  ASSERT_TRUE(Opts.has_value());
  Opts->MemLimitMb = 1;
  ChcSolver S(Ctx, N, *Opts);
  SolverResult R = S.solve();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::ResourceExhaustedMemory);
  EXPECT_TRUE(errorRecoverable(R.Error.Code));
  EXPECT_NE(R.Error.Detail.find("memory budget exhausted"),
            std::string::npos);
}

TEST(FaultTest, InjectedAllocFaultSurfacesAsError) {
  TermContext Ctx;
  NormalizedChc N = paperExample4(Ctx);
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  FaultInjector FI;
  FI.AllocTrip = 1; // The very first solve-phase interning fails.
  Opts->Faults = &FI;
  ChcSolver S(Ctx, N, *Opts);
  SolverResult R = S.solve();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::ResourceExhaustedMemory);
  EXPECT_NE(R.Error.Detail.find("injected"), std::string::npos);
}

TEST(FaultTest, SpuriousCancelBecomesCancelledError) {
  TermContext Ctx;
  NormalizedChc N = paperExample4(Ctx);
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  FaultInjector FI;
  FI.CancelTrip = 1; // First expiry poll reports cancelled.
  Opts->Faults = &FI;
  ChcSolver S(Ctx, N, *Opts);
  SolverResult R = S.solve();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::Cancelled);
  EXPECT_FALSE(errorRecoverable(R.Error.Code)); // No retry on cancel.
}

//===----------------------------------------------------------------------===//
// Recovery ladder end-to-end
//===----------------------------------------------------------------------===//

TEST(RecoverTest, TransientFaultSucceedsOnDegradedRetry) {
  // Attempt 1 dies at the 2nd SMT check; the injector's counters are
  // monotone across attempts, so the degraded attempt 2 runs clean and
  // produces the ground-truth answer.
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  FaultInjector FI;
  FI.CheckTrip = 2;
  Opts->Faults = &FI;
  Opts->MaxRetries = 1;
  RecoveryOutcome RO = solveWithRecovery(
      [](TermContext &C) { return paperExample4(C); }, *Opts,
      /*DeadlineMs=*/0, /*Cancel=*/nullptr);
  EXPECT_EQ(RO.Res.Status, ChcStatus::Unsat);
  EXPECT_EQ(RO.Attempts, 2u);
  EXPECT_TRUE(RO.Degraded);
  EXPECT_EQ(RO.Res.Stats.Retries, 1u);
  EXPECT_EQ(RO.Res.Stats.Degradations, 1u);
  EXPECT_FALSE(RO.Res.Error.isError());
}

TEST(RecoverTest, RetriesAreCapped) {
  // Both attempts trip the 1 MiB budget (attempt 2 is still Solve, only
  // degraded); the ladder must stop at MaxRetries + 1 attempts with the
  // breadcrumb of the final attempt.
  auto Opts = SolverOptions::parse("Solve");
  ASSERT_TRUE(Opts.has_value());
  Opts->MemLimitMb = 1;
  Opts->MaxRetries = 1;
  RecoveryOutcome RO = solveWithRecovery(
      [](TermContext &C) { return paperExample5(C); }, *Opts, 0, nullptr);
  EXPECT_EQ(RO.Res.Status, ChcStatus::Unknown);
  EXPECT_EQ(RO.Attempts, 2u);
  EXPECT_TRUE(RO.Res.Error.isError());
  EXPECT_TRUE(errorRecoverable(RO.Res.Error.Code))
      << "ladder stopped for the cap, not for an unrecoverable error";
  EXPECT_EQ(RO.Res.Stats.Retries, 1u);
}

TEST(RecoverTest, GroundTruthSolvedUnderMemLimitViaEngineSwitch) {
  // Acceptance scenario: the configured engine (the Solve baseline)
  // diverges on Example 5 and trips the 1 MiB budget on attempts 1 and 2;
  // attempt 3 switches to the complementary Ret engine, which proves the
  // instance safe within the SAME untouched budget — a resource trip plus
  // the ladder yields the ground-truth answer instead of an abort.
  auto Opts = SolverOptions::parse("Solve");
  ASSERT_TRUE(Opts.has_value());
  Opts->MemLimitMb = 1;
  Opts->MaxRetries = 2;
  RecoveryOutcome RO = solveWithRecovery(
      [](TermContext &C) { return paperExample5(C); }, *Opts, 0, nullptr);
  EXPECT_EQ(RO.Res.Status, ChcStatus::Sat); // Example 5 ground truth.
  EXPECT_EQ(RO.Attempts, 3u);
  EXPECT_TRUE(RO.Degraded);
  EXPECT_EQ(RO.Res.Stats.Retries, 2u);
  EXPECT_EQ(RO.Res.Stats.Degradations, 2u);
  EXPECT_FALSE(RO.Res.Error.isError());
}

//===----------------------------------------------------------------------===//
// Scheduler deadline & cancellation semantics
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, ZeroDeadlineMeansNoDeadline) {
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  std::vector<SolveJob> Batch{
      SolveJob{[](TermContext &C) { return paperExample5(C); }, *Opts,
               /*DeadlineMs=*/0, /*AbsDeadlineMs=*/0}};
  std::vector<SolveJobOutcome> Out = Scheduler(1).run(Batch);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Status, ChcStatus::Sat);
  EXPECT_FALSE(Out[0].Error.isError());
  EXPECT_EQ(Out[0].Attempts, 1u);
}

TEST(SchedulerTest, ExpiredBatchDeadlineIsDeterministicTimeout) {
  // Job 0 holds the single worker long enough that job 1's batch-relative
  // deadline has passed by pickup; job 1 must report Timeout without its
  // Build ever being invoked — deterministically, not as a race.
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  std::atomic<bool> BuiltLate{false};
  std::vector<SolveJob> Batch;
  Batch.push_back(SolveJob{[](TermContext &C) {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(50));
                             return paperExample5(C);
                           },
                           *Opts, 0, 0});
  Batch.push_back(SolveJob{[&BuiltLate](TermContext &C) {
                             BuiltLate = true;
                             return paperExample5(C);
                           },
                           *Opts, 0, /*AbsDeadlineMs=*/1});
  std::vector<SolveJobOutcome> Out = Scheduler(1).run(Batch);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Status, ChcStatus::Sat);
  EXPECT_EQ(Out[1].Status, ChcStatus::Unknown);
  EXPECT_EQ(Out[1].Error.Code, ErrorCode::Timeout);
  EXPECT_NE(Out[1].Error.Detail.find("before the job started"),
            std::string::npos);
  EXPECT_FALSE(BuiltLate.load());
}

TEST(SchedulerTest, PreCancelledBatchRecordsCancelledBreadcrumb) {
  auto Tok = CancelToken::create();
  Tok->request();
  auto Opts = SolverOptions::parse("Ret(T,MBP(1))");
  ASSERT_TRUE(Opts.has_value());
  std::atomic<bool> Built{false};
  std::vector<SolveJob> Batch{SolveJob{[&Built](TermContext &C) {
                                         Built = true;
                                         return paperExample5(C);
                                       },
                                       *Opts, 0, 0}};
  std::vector<SolveJobOutcome> Out = Scheduler(1).run(Batch, Tok);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Status, ChcStatus::Unknown);
  EXPECT_EQ(Out[0].Error.Code, ErrorCode::Cancelled);
  EXPECT_FALSE(Built.load()); // Build never invoked on a cancelled batch.
}

//===----------------------------------------------------------------------===//
// Portfolio under faults
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, SurvivesCrashingMember) {
  // Member 0 dies instantly (injected allocation failure, no retries);
  // member 1 must still win with the ground-truth answer, and the loser's
  // breadcrumb must survive in its report.
  auto Configs = parseConfigList("Ret(T,MBP(1)),Yld(T,MBP(1))");
  ASSERT_TRUE(Configs.has_value());
  FaultInjector FI;
  FI.AllocTrip = 1;
  (*Configs)[0].Faults = &FI;
  PortfolioResult R = racePortfolio(
      [](TermContext &C) { return paperExample4(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/60000);
  EXPECT_EQ(R.Winner.Status, ChcStatus::Unsat);
  EXPECT_EQ(R.WinnerIndex, 1);
  EXPECT_EQ(R.Members[0].Status, ChcStatus::Unknown);
  EXPECT_TRUE(R.Members[0].Error.isError());
  EXPECT_NE(R.Members[0].Error.Detail.find("injected"), std::string::npos);
}

TEST(PortfolioTest, MergedStatsCountRetries) {
  // A single-member race (no cancellation interference): the member's
  // transient fault forces one retry, and the merged stats must carry the
  // recovery counters across the portfolio boundary.
  auto Configs = parseConfigList("Ret(T,MBP(1))");
  ASSERT_TRUE(Configs.has_value());
  FaultInjector FI;
  FI.CheckTrip = 2;
  (*Configs)[0].Faults = &FI;
  (*Configs)[0].MaxRetries = 2;
  PortfolioResult R = racePortfolio(
      [](TermContext &C) { return paperExample4(C); }, *Configs,
      /*Jobs=*/1, /*TimeoutMs=*/60000);
  EXPECT_EQ(R.Winner.Status, ChcStatus::Unsat);
  EXPECT_EQ(R.Members[0].Attempts, 2u);
  EXPECT_EQ(R.MergedStats.Retries, 1u);
  EXPECT_EQ(R.MergedStats.Degradations, 1u);
}

//===----------------------------------------------------------------------===//
// Chaos oracle
//===----------------------------------------------------------------------===//

namespace {

/// The safe system from TestgenTest: P(0); P(x) /\ x >= 1 => false.
ChcSystem safeSystem(TermContext &C) {
  ChcSystem Sys(C);
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = C.mkVar("x", Sort::Int);
  Clause Fact;
  Fact.Constraint = C.mkEq(X, C.mkIntConst(0));
  Fact.Head = PredApp{P, {X}};
  Sys.addClause(std::move(Fact));
  Clause Query;
  Query.Constraint = C.mkGe(X, C.mkIntConst(1));
  Query.Body = {PredApp{P, {X}}};
  Sys.addClause(std::move(Query));
  return Sys;
}

} // namespace

TEST(ChaosTest, ResilienceHoldsAcrossSeeds) {
  TermContext C;
  ChcSystem Sys = safeSystem(C);
  EngineRaceKnobs Knobs;
  Knobs.RefineBudget = 100;
  for (uint64_t Seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    OracleOutcome O = checkChaosResilience(Sys, Knobs, Seed);
    EXPECT_FALSE(O.failed()) << "seed " << Seed << ": " << O.Check << " — "
                             << O.Detail;
  }
}

TEST(ChaosTest, OracleCatchesFlippedChaosVerdict) {
  TermContext C;
  ChcSystem Sys = safeSystem(C);
  EngineRaceKnobs Knobs;
  Knobs.RefineBudget = 100;
  OracleHooks H;
  H.MangleEngine = [](size_t Member, ChcStatus S) {
    if (Member != 0)
      return S;
    return S == ChcStatus::Sat ? ChcStatus::Unsat : S;
  };
  OracleOutcome O = checkChaosResilience(Sys, Knobs, /*ChaosSeed=*/1, &H);
  ASSERT_TRUE(O.failed());
  // Flipping Sat to Unsat trips the clean-vs-chaos comparison (or the
  // ground-truth check, whichever inspects member 0 first).
  EXPECT_TRUE(O.Check == "chaos-wrong-verdict" ||
              O.Check == "chaos-ground-truth")
      << O.Check << " — " << O.Detail;
}

//===----------------------------------------------------------------------===//
// Representation invariance of resource governance
//===----------------------------------------------------------------------===//
//
// The small-value arithmetic fast path and the term-kid arena must be
// invisible to the fault-tolerance layer: gauge charges are computed from
// logical sizes (node + kid count), never from which BigInt representation
// a Rational happens to hold, so the ordinal at which a budget trips — and
// therefore every breadcrumb, retry decision and chaos schedule — is a
// pure function of the allocation trace.

TEST(FaultTest, ArenaAccountingIsPureFunctionOfTrace) {
  auto BuildBytes = [] {
    TermContext C;
    TermRef X = C.mkVar("x", Sort::Int);
    TermRef Sum = C.mkIntConst(1);
    TermRef F = C.mkTrue();
    for (int64_t I = 0; I < 50; ++I) {
      Sum = C.mkAdd({X, Sum, C.mkIntConst(I)});
      F = C.mkAnd({C.mkGe(Sum, C.mkIntConst(I)),
                   C.mkEq(X, C.mkIntConst(I * 1000000007)), F});
    }
    return C.kidArenaBytes();
  };
  size_t Fast = BuildBytes();
  EXPECT_GT(Fast, 0u);
  size_t Slow;
  {
    ScopedForceHeap FH(true);
    Slow = BuildBytes();
  }
  // Identical trace => identical payload bytes, independent of the BigInt
  // representation held inside the interned Rational values.
  EXPECT_EQ(Fast, Slow);
}

TEST(FaultTest, GaugeTripOrdinalInvariantUnderRepresentation) {
  // Count interning steps until a fixed budget trips, both ways. The
  // charge formula reads sizes only, so the ordinal must match exactly.
  auto TripOrdinal = [] {
    TermContext C;
    ResourceGauge G(16 * 1024);
    C.setResourceGauge(&G);
    TermRef X = C.mkVar("x", Sort::Int);
    unsigned Ordinal = 0;
    try {
      for (unsigned I = 1; I < 10000; ++I) {
        C.mkGe(C.mkAdd({X, C.mkIntConst(int64_t(I) * 3000000000ll)}),
               C.mkIntConst(I));
        ++Ordinal;
      }
    } catch (const MucycError &E) {
      EXPECT_EQ(E.code(), ErrorCode::ResourceExhaustedMemory);
    }
    return Ordinal;
  };
  unsigned Fast = TripOrdinal();
  EXPECT_GT(Fast, 0u);
  EXPECT_LT(Fast, 9999u) << "budget never tripped; test lost its teeth";
  unsigned Slow;
  {
    ScopedForceHeap FH(true);
    Slow = TripOrdinal();
  }
  EXPECT_EQ(Fast, Slow);
}

TEST(FaultTest, MemLimitBreadcrumbInvariantUnderRepresentation) {
  // The end-to-end governance path: a metered solve on the diverging
  // Example 5 must fail with a byte-identical typed error whichever
  // arithmetic representation is in force.
  auto Breadcrumb = [] {
    TermContext Ctx;
    NormalizedChc N = paperExample5(Ctx);
    auto Opts = SolverOptions::parse("Solve");
    EXPECT_TRUE(Opts.has_value());
    Opts->MemLimitMb = 1;
    ChcSolver S(Ctx, N, *Opts);
    SolverResult R = S.solve();
    EXPECT_EQ(R.Status, ChcStatus::Unknown);
    EXPECT_EQ(R.Error.Code, ErrorCode::ResourceExhaustedMemory);
    return R.Error.Detail;
  };
  std::string Fast = Breadcrumb();
  std::string Slow;
  {
    ScopedForceHeap FH(true);
    Slow = Breadcrumb();
  }
  EXPECT_EQ(Fast, Slow);
}

TEST(ChaosTest, FaultScheduleInvariantUnderRepresentation) {
  // Chaos schedules are armed from seeds and consumed at gauge/injector
  // sites whose ordinals are representation-independent, so the full
  // chaos-resilience outcome (including every diagnostic string) must not
  // change when arithmetic is forced onto the heap.
  TermContext C;
  ChcSystem Sys = safeSystem(C);
  EngineRaceKnobs Knobs;
  Knobs.RefineBudget = 100;
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    OracleOutcome Fast = checkChaosResilience(Sys, Knobs, Seed);
    ScopedForceHeap FH(true);
    OracleOutcome Slow = checkChaosResilience(Sys, Knobs, Seed);
    EXPECT_EQ(Fast.Status == OracleStatus::Fail,
              Slow.Status == OracleStatus::Fail);
    EXPECT_EQ(Fast.Check, Slow.Check) << "seed " << Seed;
    EXPECT_EQ(Fast.Detail, Slow.Detail) << "seed " << Seed;
  }
}
