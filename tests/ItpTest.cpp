//===- tests/ItpTest.cpp - Interpolation tests ----------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "itp/Interpolate.h"

#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace mucyc;

namespace {
void expectInterpolant(TermContext &C, TermRef A, TermRef B, TermRef Theta) {
  EXPECT_TRUE(SmtSolver::implies(C, A, Theta));
  EXPECT_TRUE(SmtSolver::implies(C, Theta, B));
  // Vars of theta are confined to vars of B (the binding side for the
  // refinement call sites; see Interpolate.h).
  std::vector<VarId> BV = C.freeVars(B);
  for (VarId V : C.freeVars(Theta))
    EXPECT_TRUE(std::binary_search(BV.begin(), BV.end(), V));
}
} // namespace

TEST(ItpTest, CubeGeneralization) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  // A = (0 <= x <= 8); blocked cube = (x >= 20 /\ x <= 30).
  TermRef A = C.mkAnd(C.mkGe(X, C.mkIntConst(0)), C.mkLe(X, C.mkIntConst(8)));
  std::vector<TermRef> Cube{C.mkGe(X, C.mkIntConst(20)),
                            C.mkLe(X, C.mkIntConst(30))};
  std::vector<TermRef> Small = generalizeBlockedCube(C, A, Cube);
  // Only the lower bound is needed to block.
  ASSERT_EQ(Small.size(), 1u);
  EXPECT_EQ(Small[0], Cube[0]);
}

TEST(ItpTest, CubeGeneralizationKeepsNecessaryLiterals) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef A = C.mkEq(X, Y);
  // Blocked cube needs both halves: x >= 1 /\ y <= 0.
  std::vector<TermRef> Cube{C.mkGe(X, C.mkIntConst(1)),
                            C.mkLe(Y, C.mkIntConst(0))};
  std::vector<TermRef> Small = generalizeBlockedCube(C, A, Cube);
  EXPECT_EQ(Small.size(), 2u);
}

TEST(ItpTest, WeakestReturnsB) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef A = C.mkEq(X, C.mkIntConst(1));
  TermRef B = C.mkGe(X, C.mkIntConst(0));
  EXPECT_EQ(interpolate(C, A, B, ItpMode::WeakestB), B);
}

TEST(ItpTest, QeStrongestIsStrongest) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  // A(x, y) = (y = x + 1 /\ 0 <= x <= 3); B(y) = (y >= -10).
  TermRef A = C.mkAnd({C.mkEq(Y, C.mkAdd(X, C.mkIntConst(1))),
                       C.mkGe(X, C.mkIntConst(0)),
                       C.mkLe(X, C.mkIntConst(3))});
  TermRef B = C.mkGe(Y, C.mkIntConst(-10));
  TermRef Theta = interpolate(C, A, B, ItpMode::QeStrongest);
  expectInterpolant(C, A, B, Theta);
  // Strongest: equivalent to exists x. A == 1 <= y <= 4.
  TermRef Exact = C.mkAnd(C.mkGe(Y, C.mkIntConst(1)),
                          C.mkLe(Y, C.mkIntConst(4)));
  EXPECT_TRUE(SmtSolver::equivalent(C, Theta, Exact));
}

TEST(ItpTest, CubeGeneralizeMode) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef A = C.mkAnd(C.mkEq(Y, C.mkMul(Rational(2), X)),
                      C.mkGe(X, C.mkIntConst(0)));
  // B = not(y <= -4 /\ y >= -100): a blocked-cube complement.
  TermRef BadCube = C.mkAnd(C.mkLe(Y, C.mkIntConst(-4)),
                            C.mkGe(Y, C.mkIntConst(-100)));
  TermRef B = C.mkNot(BadCube);
  TermRef Theta = interpolate(C, A, B, ItpMode::CubeGeneralize);
  expectInterpolant(C, A, B, Theta);
  // Generalization should have dropped the irrelevant lower bound: the
  // interpolant is weaker than or equal to not(y <= -4).
  EXPECT_TRUE(SmtSolver::implies(C, C.mkGt(Y, C.mkIntConst(-4)), Theta));
}

TEST(ItpTest, ConjunctionDecomposition) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef A = C.mkAnd(C.mkEq(Y, C.mkAdd(X, C.mkIntConst(1))),
                      C.mkGe(X, C.mkIntConst(0)));
  // B is a conjunction of a pass-through part and a generalizable clause.
  TermRef B = C.mkAnd(C.mkGe(Y, C.mkIntConst(1)),
                      C.mkNot(C.mkAnd(C.mkLe(Y, C.mkIntConst(-5)),
                                      C.mkGe(Y, C.mkIntConst(-9)))));
  TermRef Theta = interpolate(C, A, B, ItpMode::CubeGeneralize);
  expectInterpolant(C, A, B, Theta);
}

class ItpPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ItpPropertyTest, ContractHolds) {
  std::mt19937 Rng(GetParam());
  TermContext C;
  for (int Round = 0; Round < 40; ++Round) {
    TermRef X = C.mkFreshVar("ix", Sort::Int);
    TermRef Y = C.mkFreshVar("iy", Sort::Int);
    int64_t K1 = static_cast<int64_t>(Rng() % 9) - 4;
    int64_t K2 = static_cast<int64_t>(Rng() % 5) + 1;
    // A relates x and y; B constrains y so that A => B.
    TermRef A = C.mkAnd({C.mkEq(Y, C.mkAdd(X, C.mkIntConst(K1))),
                         C.mkGe(X, C.mkIntConst(0)),
                         C.mkLe(X, C.mkIntConst(K2))});
    TermRef BadCube =
        C.mkAnd(C.mkLe(Y, C.mkIntConst(K1 - 1 - static_cast<int64_t>(Rng() % 4))),
                C.mkGe(Y, C.mkIntConst(K1 - 50)));
    TermRef B = C.mkNot(BadCube);
    ASSERT_TRUE(SmtSolver::implies(C, A, B));
    for (ItpMode Mode : {ItpMode::CubeGeneralize, ItpMode::QeStrongest,
                         ItpMode::WeakestB}) {
      TermRef Theta = interpolate(C, A, B, Mode);
      EXPECT_TRUE(SmtSolver::implies(C, A, Theta));
      EXPECT_TRUE(SmtSolver::implies(C, Theta, B));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItpPropertyTest, ::testing::Values(51u, 52u));
