//===- tests/ParserTest.cpp - SMT-LIB2 HORN parser tests ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
const char *CounterHorn = R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (<= 0 x) (<= x 1)) (P x))))
(assert (forall ((x Int) (y Int))
  (=> (and (P x) (< x 3) (= y (+ x 1))) (P y))))
(assert (forall ((x Int)) (=> (and (P x) (> x 3)) false)))
(check-sat)
)";
}

TEST(ParserTest, ParsesCounterSystem) {
  TermContext C;
  ParseResult R = parseChc(C, CounterHorn);
  ASSERT_TRUE(R.Ok) << R.Error;
  ChcSystem &Sys = *R.System;
  EXPECT_EQ(Sys.numPreds(), 1u);
  ASSERT_EQ(Sys.clauses().size(), 3u);
  EXPECT_TRUE(Sys.clauses()[0].isFact());
  EXPECT_EQ(Sys.clauses()[1].Body.size(), 1u);
  EXPECT_TRUE(Sys.clauses()[2].isQuery());
}

TEST(ParserTest, NonlinearBodies) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((z Int)) (=> (= z 1) (P z))))
(assert (forall ((x Int) (y Int) (z Int))
  (=> (and (P x) (P y) (= z (+ x y))) (P z))))
(assert (forall ((z Int)) (=> (and (P z) (< z 0)) false)))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.System->isLinear());
  EXPECT_EQ(R.System->clauses()[1].Body.size(), 2u);
}

TEST(ParserTest, LetBindings) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int))
  (=> (let ((t (+ x 1))) (and (<= t 5) (>= t 0))) (P x))))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  // Constraint is (x + 1 <= 5) /\ (x + 1 >= 0) == x <= 4 /\ x >= -1.
  const Clause &Cl = R.System->clauses()[0];
  TermContext &Ctx = R.System->ctx();
  std::string S = Ctx.toString(Cl.Constraint);
  EXPECT_NE(S.find("4"), std::string::npos);
}

TEST(ParserTest, FactsAndGroundClauses) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun Flag () Bool)
(assert Flag)
(assert (=> Flag false))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.System->clauses().size(), 2u);
  EXPECT_TRUE(R.System->clauses()[0].isFact());
  EXPECT_TRUE(R.System->clauses()[1].isQuery());
}

TEST(ParserTest, NotSugarForQueries) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (> x 0) (P x))))
(assert (forall ((x Int)) (not (and (P x) (> x 10)))))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.System->clauses()[1].isQuery());
}

TEST(ParserTest, RealsAndDecimals) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Real) Bool)
(assert (forall ((x Real)) (=> (and (<= 0.5 x) (< x 2.5)) (P x))))
(assert (forall ((x Real)) (=> (and (P x) (> x 100.0)) false)))
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.System->pred(0).ArgSorts[0], Sort::Real);
}

TEST(ParserTest, Comments) {
  TermContext C;
  ParseResult R = parseChc(C, R"(; a comment
(set-logic HORN) ; trailing comment
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> true (P x))))
)");
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(ParserTest, Errors) {
  TermContext C;
  EXPECT_FALSE(parseChc(C, "(assert").Ok);
  EXPECT_FALSE(parseChc(C, "(declare-fun P (Int) Int)").Ok);
  EXPECT_FALSE(parseChc(C, "(frobnicate)").Ok);
  EXPECT_FALSE(parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (unknownop x) (P x))))
)")
                   .Ok);
  // Arity mismatch.
  EXPECT_FALSE(parseChc(C, R"((set-logic HORN)
(declare-fun P (Int Int) Bool)
(assert (forall ((x Int)) (=> true (P x))))
)")
                   .Ok);
  // Non-linear multiplication.
  EXPECT_FALSE(parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (= (* x y) 4) (P x))))
)")
                   .Ok);
}

TEST(ParserTest, PrintParseRoundTrip) {
  TermContext C;
  ParseResult R1 = parseChc(C, CounterHorn);
  ASSERT_TRUE(R1.Ok);
  std::string Printed = printSmtLib(*R1.System);
  TermContext C2;
  ParseResult R2 = parseChc(C2, Printed);
  ASSERT_TRUE(R2.Ok) << R2.Error << "\n" << Printed;
  EXPECT_EQ(R2.System->numPreds(), R1.System->numPreds());
  EXPECT_EQ(R2.System->clauses().size(), R1.System->clauses().size());
}

TEST(ParserTest, ChainedImplication) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (> x 0) (P x))))
(assert (forall ((x Int)) (=> (P x) (=> (> x 5) false))))
)");
  // The nested => in head position is not a predicate or false, so this is
  // rejected (strict HORN shape).
  EXPECT_FALSE(R.Ok);
}
