//===- tests/YieldTest.cpp - Algorithm 6 coroutine semantics --------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavior specific to the coroutine procedure (Algorithm 6 / Theorem 18):
/// pieces arrive one at a time with the assertion weakened between resumes,
/// the suspended continuation is preserved across yields (unlike Ret, which
/// discards it), and completion refines the trace in place.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Refiner.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
struct YieldFixture : ::testing::Test {
  TermContext C;
  NormalizedChc N{paperExample4(C)}; // UNSAT at depth >= 4.
  SolverOptions Opts = *SolverOptions::parse("Yld(T,MBP(1))");

  std::unique_ptr<EngineContext> E;
  std::unique_ptr<Refiner> Ref;

  void SetUp() override {
    Opts.TimeoutMs = 30000;
    E = std::make_unique<EngineContext>(C, N, Opts);
    Ref = makeRefiner(*E);
  }
};
} // namespace

TEST_F(YieldFixture, PiecesAccumulateToFullCounterexample) {
  Trace T(C);
  for (int I = 0; I < 5; ++I)
    T.unfold();
  TermRef Alpha = C.mkNot(N.Bad);
  // refineFull resumes ONE coroutine across pieces (Theorem 18 wrapper).
  TermRef Gamma = Ref->refineFull(T, 0, Alpha);
  ASSERT_FALSE(E->Aborted);
  EXPECT_NE(C.kind(Gamma), Kind::False);
  // Post-state: the trace root entails alpha \/ Gamma.
  EXPECT_TRUE(E->implies(T.formula(0), C.mkOr(Alpha, Gamma)));
  // Gamma intersected with bad is reachable.
  EXPECT_TRUE(verifyCexPiece(C, N, Gamma, 7));
}

TEST_F(YieldFixture, SinglePieceIsWeakCounterexample) {
  Trace T(C);
  for (int I = 0; I < 5; ++I)
    T.unfold();
  TermRef Alpha = C.mkNot(N.Bad);
  std::optional<TermRef> Piece = Ref->refine(T, 0, Alpha);
  ASSERT_TRUE(Piece.has_value());
  // Weak sense (Definition 11): the piece meets the bad region.
  EXPECT_TRUE(SmtSolver::quickCheck(C, {*Piece, N.Bad}).has_value());
}

TEST_F(YieldFixture, CompletionRefinesInPlace) {
  TermContext C2;
  NormalizedChc N2 = paperExample5(C2); // SAT system.
  SolverOptions O = *SolverOptions::parse("Yld(T,MBP(1))");
  O.TimeoutMs = 30000;
  EngineContext E2(C2, N2, O);
  auto R2 = makeRefiner(E2);
  Trace T(C2);
  for (int I = 0; I < 3; ++I)
    T.unfold();
  TermRef Alpha = C2.mkNot(N2.Bad);
  // No pieces: StopIteration straight away; the trace is refined.
  EXPECT_FALSE(R2->refine(T, 0, Alpha).has_value());
  EXPECT_FALSE(E2.Aborted);
  EXPECT_TRUE(E2.implies(T.formula(0), Alpha));
}

TEST_F(YieldFixture, QueryWeakeningConfigsAgreeOnStatus) {
  // Yld(T, _) and Yld(F, _) must agree on statuses (only performance
  // differs) for a system both can decide.
  for (const char *Cfg : {"Yld(T,MBP(1))", "Yld(F,MBP(1))"}) {
    TermContext CL;
    NormalizedChc NL = paperExample4(CL);
    auto O = SolverOptions::parse(Cfg);
    O->TimeoutMs = 30000;
    SolverResult R = ChcSolver(CL, NL, *O).solve();
    EXPECT_EQ(R.Status, ChcStatus::Unsat) << Cfg;
  }
}

TEST_F(YieldFixture, YieldMatchesRetOnSmallSuite) {
  for (const BenchInstance &B : buildSmallSuite()) {
    TermContext CL;
    NormalizedChc NL = B.Build(CL);
    auto ORet = SolverOptions::parse("Ret(T,MBP(1))");
    auto OYld = SolverOptions::parse("Yld(T,MBP(1))");
    ORet->TimeoutMs = OYld->TimeoutMs = 15000;
    SolverResult RRet = ChcSolver(CL, NL, *ORet).solve();
    SolverResult RYld = ChcSolver(CL, NL, *OYld).solve();
    if (RRet.Status != ChcStatus::Unknown &&
        RYld.Status != ChcStatus::Unknown)
      EXPECT_EQ(RRet.Status, RYld.Status) << B.Name;
  }
}
