//===- tests/SolverTest.cpp - End-to-end engine tests ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-product of refinement engines and the fast benchmark instances:
/// every configuration must return the correct status (verified against the
/// clauses / bounded reachability), within a timeout, or Unknown — never a
/// wrong answer.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Refiner.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
struct EngineCase {
  const char *Config;
  uint64_t TimeoutMs;
};
} // namespace

class EngineMatrixTest
    : public ::testing::TestWithParam<std::tuple<EngineCase, int>> {};

TEST_P(EngineMatrixTest, SolvesOrTimesOutHonestly) {
  auto [Case, Index] = GetParam();
  std::vector<BenchInstance> Suite = buildSmallSuite();
  ASSERT_LT(static_cast<size_t>(Index), Suite.size());
  const BenchInstance &B = Suite[Index];

  TermContext C;
  NormalizedChc N = B.Build(C);
  auto Opts = SolverOptions::parse(Case.Config);
  ASSERT_TRUE(Opts.has_value());
  Opts->TimeoutMs = Case.TimeoutMs;
  Opts->VerifyResult = true;
  ChcSolver S(C, N, *Opts);
  SolverResult R = S.solve();
  if (R.Status != ChcStatus::Unknown)
    EXPECT_EQ(R.Status, B.Expected) << B.Name << " with " << Case.Config;
  // Independently re-verify the artifacts.
  if (R.Status == ChcStatus::Sat)
    EXPECT_TRUE(verifyInvariant(C, N, R.Invariant));
  if (R.Status == ChcStatus::Unsat)
    EXPECT_TRUE(verifyCexPiece(C, N, R.CexPiece, R.Depth + 3));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrixTest,
    ::testing::Combine(
        ::testing::Values(EngineCase{"Ret(T,MBP(1))", 12000},
                          EngineCase{"Ret(F,MBP(0))", 12000},
                          EngineCase{"Ret(T,MBP(2))", 12000},
                          EngineCase{"Yld(T,MBP(1))", 12000},
                          EngineCase{"Yld(F,MBP(0))", 12000},
                          EngineCase{"Ret(F,Model)", 8000},
                          EngineCase{"Ind(Ret(F,MBP(0)))", 12000},
                          EngineCase{"Cex(Ret(T,MBP(1)))", 12000},
                          EngineCase{"Mon(Ret(T,MBP(1)))", 12000},
                          EngineCase{"Que(Ret(T,MBP(1)))", 12000},
                          EngineCase{"SpacerTS(fig1)", 12000},
                          EngineCase{"SpacerTS(fig15)", 8000},
                          EngineCase{"Solve", 8000}),
        ::testing::Range(0, 12)),
    [](const ::testing::TestParamInfo<std::tuple<EngineCase, int>> &Info) {
      std::string Name = std::get<0>(Info.param).Config;
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name + "_i" + std::to_string(std::get<1>(Info.param));
    });

/// The QE-based engines are slow; exercise them on the tiniest instances
/// only, but require definite answers there.
class SlowEngineTest : public ::testing::TestWithParam<const char *> {};

TEST_P(SlowEngineTest, CounterSystems) {
  auto Opts = SolverOptions::parse(GetParam());
  ASSERT_TRUE(Opts.has_value());
  Opts->TimeoutMs = 60000;
  Opts->VerifyResult = true;
  {
    TermContext C;
    std::vector<BenchInstance> Suite = buildSmallSuite();
    // counter_safe_3 and counter_unsafe_3 are entries 0 and 1.
    NormalizedChc N = Suite[0].Build(C);
    SolverResult R = ChcSolver(C, N, *Opts).solve();
    EXPECT_EQ(R.Status, Suite[0].Expected) << Suite[0].Name;
  }
  {
    TermContext C;
    std::vector<BenchInstance> Suite = buildSmallSuite();
    NormalizedChc N = Suite[1].Build(C);
    SolverResult R = ChcSolver(C, N, *Opts).solve();
    EXPECT_EQ(R.Status, Suite[1].Expected) << Suite[1].Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, SlowEngineTest,
                         ::testing::Values("Naive", "NaiveMbp", "Ret(F,QE)"));

/// The generalized refinement problem (Definition 11): refineFull leaves a
/// trace whose root entails alpha \/ Gamma, and Gamma covers exactly the
/// unavoidable states.
TEST(RefinerTest, GeneralizedRefinementPostconditions) {
  TermContext C;
  NormalizedChc N = paperExample4(C); // UNSAT system.
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 20000;
  EngineContext E(C, N, Opts);
  auto Ref = makeRefiner(E);
  Trace T(C);
  for (int I = 0; I < 5; ++I)
    T.unfold();
  TermRef Alpha = C.mkNot(N.Bad);
  TermRef Gamma = Ref->refineFull(T, 0, Alpha);
  ASSERT_FALSE(E.Aborted);
  // Root entails alpha \/ Gamma afterwards.
  EXPECT_TRUE(E.implies(T.formula(0), C.mkOr(Alpha, Gamma)));
  // Gamma is non-empty (the system is unsafe at this depth) and every gamma
  // state is genuinely reachable and bad after intersection.
  EXPECT_NE(C.kind(Gamma), Kind::False);
  EXPECT_TRUE(verifyCexPiece(C, N, Gamma, 7));
}

TEST(RefinerTest, RefineSucceedsOnSafeSystem) {
  TermContext C;
  NormalizedChc N = paperExample5(C); // SAT system.
  SolverOptions Opts = *SolverOptions::parse("Yld(T,MBP(1))");
  Opts.TimeoutMs = 20000;
  EngineContext E(C, N, Opts);
  auto Ref = makeRefiner(E);
  Trace T(C);
  for (int I = 0; I < 3; ++I)
    T.unfold();
  TermRef Alpha = C.mkNot(N.Bad);
  std::optional<TermRef> Piece = Ref->refine(T, 0, Alpha);
  ASSERT_FALSE(E.Aborted);
  EXPECT_FALSE(Piece.has_value());
  EXPECT_TRUE(E.implies(T.formula(0), Alpha));
  // Trace invariants: iota flows into every level; steps flow up.
  for (int L = 0; L <= T.depth(); ++L)
    EXPECT_TRUE(E.implies(N.Init, T.formula(L)));
  for (int L = 0; L + 1 <= T.depth(); ++L) {
    TermRef Step = C.mkAnd({E.zToX(T.formula(L + 1)),
                            E.zToY(T.formula(L + 1)), N.Trans});
    EXPECT_TRUE(E.implies(Step, T.formula(L)));
  }
}

TEST(SolverTest, McCarthy91IsSat) {
  TermContext C;
  NormalizedChc N = mcCarthy91(C);
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 30000;
  Opts.VerifyResult = true;
  SolverResult R = ChcSolver(C, N, Opts).solve();
  EXPECT_EQ(R.Status, ChcStatus::Sat);
}

TEST(SolverTest, InvariantIsActuallyInductive) {
  TermContext C;
  NormalizedChc N = paperExample10(C, 5);
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 20000;
  SolverResult R = ChcSolver(C, N, Opts).solve();
  ASSERT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_TRUE(verifyInvariant(C, N, R.Invariant));
}

TEST(SolverTest, StatsArePopulated) {
  TermContext C;
  NormalizedChc N = paperExample5(C);
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 20000;
  SolverResult R = ChcSolver(C, N, Opts).solve();
  EXPECT_GT(R.Stats.SmtChecks, 0u);
  EXPECT_GT(R.Stats.Unfolds, 0u);
  EXPECT_GT(R.Stats.ItpCalls, 0u);
  EXPECT_GT(R.Seconds, 0.0);
}

TEST(SolverTest, MaxDepthGivesUnknown) {
  TermContext C;
  // counter_unsafe needs depth ~4; cap below that.
  std::vector<BenchInstance> Suite = buildSmallSuite();
  NormalizedChc N = Suite[1].Build(C);
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.MaxDepth = 2;
  SolverResult R = ChcSolver(C, N, Opts).solve();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
}
