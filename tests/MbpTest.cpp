//===- tests/MbpTest.cpp - Model-based projection tests -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contract tests for Definition 1: given phi and M |= phi, the projection
/// psi must satisfy M |= psi, psi => exists x. phi, and (for the proper
/// strategy on a fixed phi) only finitely many outputs. The entailment
/// direction is checked by sampling models of psi and completing them to
/// witnesses with the SMT solver.
///
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"

#include "mbp/Qe.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <set>

using namespace mucyc;

namespace {

/// Checks psi => exists Elim. Phi by sampling models of psi (up to Samples)
/// and asking the solver to complete each to a model of Phi with the kept
/// variables pinned.
void expectUnderapprox(TermContext &C, TermRef Psi, TermRef Phi,
                       const std::vector<VarId> &Elim, int Samples = 6) {
  SmtSolver Enum(C);
  Enum.assertFormula(Psi);
  for (int I = 0; I < Samples; ++I) {
    if (Enum.check() != SmtStatus::Sat)
      return;
    const Model &M = Enum.model();
    // Pin the kept variables to the sampled values and ask for a witness.
    std::vector<TermRef> Conj{Phi};
    std::vector<TermRef> BlockParts;
    for (VarId V : C.freeVars(Psi)) {
      Value Val = M.value(C, V);
      TermRef Eq =
          Val.S == Sort::Bool
              ? (Val.B ? C.varTerm(V) : C.mkNot(C.varTerm(V)))
              : C.mkEq(C.varTerm(V), C.mkConst(Val.R, Val.S));
      Conj.push_back(Eq);
      BlockParts.push_back(C.mkNot(Eq));
    }
    EXPECT_TRUE(SmtSolver::quickCheck(C, Conj).has_value())
        << "psi point has no phi-witness: " << M.toString(C);
    if (BlockParts.empty())
      return;
    Enum.assertFormula(C.mkOr(BlockParts));
  }
}

} // namespace

TEST(MbpTest, PaperExample2Shape) {
  // Real-sorted variant of Example 2's flavor: phi = (x >= b) /\ (x <= b+4).
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Real), B = C.mkVar("b", Sort::Real);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkAnd(C.mkGe(X, B),
                        C.mkLe(X, C.mkAdd(B, C.mkRealConst(Rational(4)))));
  Model M;
  M.set(XV, Value::number(Rational(1), Sort::Real));
  M.set(C.node(B).Var, Value::number(Rational(0), Sort::Real));
  TermRef Psi = mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M);
  // exists x. phi is just true; so must be the projection.
  EXPECT_EQ(Psi, C.mkTrue());
}

TEST(MbpTest, IntProjectionWithDivisibility) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkAnd({C.mkGe(X, Y), C.mkLe(X, C.mkAdd(Y, C.mkIntConst(4))),
                         C.mkDivides(BigInt(2), X)});
  Model M;
  M.set(XV, Value::number(Rational(2), Sort::Int));
  M.set(C.node(Y).Var, Value::number(Rational(1), Sort::Int));
  TermRef Psi = mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M);
  EXPECT_TRUE(M.holds(C, Psi));
  expectUnderapprox(C, Psi, Phi, {XV});
  // The projection must not mention x.
  for (VarId V : C.freeVars(Psi))
    EXPECT_NE(V, XV);
}

TEST(MbpTest, EqualityDefinitionSubstitutes) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  // x = y + 1 /\ x <= 5  projects to y <= 4.
  TermRef Phi = C.mkAnd(C.mkEq(X, C.mkAdd(Y, C.mkIntConst(1))),
                        C.mkLe(X, C.mkIntConst(5)));
  Model M;
  M.set(XV, Value::number(Rational(3), Sort::Int));
  M.set(C.node(Y).Var, Value::number(Rational(2), Sort::Int));
  TermRef Psi = mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M);
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, C.mkLe(Y, C.mkIntConst(4))));
}

TEST(MbpTest, ModelDiagramIsPointwise) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkLe(X, Y);
  Model M;
  M.set(XV, Value::number(Rational(0), Sort::Int));
  M.set(C.node(Y).Var, Value::number(Rational(7), Sort::Int));
  TermRef Psi = mbp(C, MbpStrategy::ModelDiagram, {XV}, Phi, M);
  EXPECT_TRUE(
      SmtSolver::equivalent(C, Psi, C.mkEq(Y, C.mkIntConst(7))));
}

TEST(MbpTest, ModelDiagramNotImageFinite) {
  // Remark 17: the diagram MBP has one output per model value — infinitely
  // many over a fixed phi. We check a few distinct outputs as a witness.
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkLe(X, Y);
  std::set<TermRef> Outputs;
  for (int64_t V = 0; V < 5; ++V) {
    Model M;
    M.set(XV, Value::number(Rational(0), Sort::Int));
    M.set(C.node(Y).Var, Value::number(Rational(V), Sort::Int));
    Outputs.insert(mbp(C, MbpStrategy::ModelDiagram, {XV}, Phi, M));
  }
  EXPECT_EQ(Outputs.size(), 5u);
}

TEST(MbpTest, LazyProjectImageFinite) {
  // For a fixed phi the proper MBP must produce finitely many results; here
  // the atom structure admits very few.
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkAnd(C.mkLe(X, Y), C.mkGe(X, C.mkIntConst(0)));
  std::set<TermRef> Outputs;
  for (int64_t V = 0; V < 30; ++V) {
    Model M;
    M.set(XV, Value::number(Rational(0), Sort::Int));
    M.set(C.node(Y).Var, Value::number(Rational(V), Sort::Int));
    ASSERT_TRUE(M.holds(C, Phi));
    Outputs.insert(mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M));
  }
  EXPECT_LE(Outputs.size(), 4u);
}

TEST(MbpTest, BooleanElimination) {
  TermContext C;
  TermRef A = C.mkVar("a", Sort::Bool), B = C.mkVar("b", Sort::Bool);
  VarId AV = C.node(A).Var;
  TermRef Phi = C.mkOr(C.mkAnd(A, B), C.mkAnd(C.mkNot(A), C.mkNot(B)));
  Model M;
  M.set(AV, Value::boolean(true));
  M.set(C.node(B).Var, Value::boolean(true));
  TermRef Psi = mbp(C, MbpStrategy::LazyProject, {AV}, Phi, M);
  EXPECT_TRUE(M.holds(C, Psi));
  expectUnderapprox(C, Psi, Phi, {AV});
}

TEST(MbpTest, RealStrictBounds) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Real), Y = C.mkVar("y", Sort::Real),
          Z = C.mkVar("z", Sort::Real);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkAnd(C.mkGt(X, Y), C.mkLt(X, Z));
  Model M;
  M.set(XV, Value::number(Rational(1), Sort::Real));
  M.set(C.node(Y).Var, Value::number(Rational(0), Sort::Real));
  M.set(C.node(Z).Var, Value::number(Rational(2), Sort::Real));
  TermRef Psi = mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M);
  EXPECT_TRUE(M.holds(C, Psi));
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, C.mkLt(Y, Z)));
}

TEST(MbpTest, FullQePicksSatisfiedDisjunct) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var;
  TermRef Phi = C.mkAnd({C.mkGe(X, Y), C.mkLe(X, C.mkAdd(Y, C.mkIntConst(1))),
                         C.mkDivides(BigInt(2), X)});
  Model M;
  M.set(XV, Value::number(Rational(4), Sort::Int));
  M.set(C.node(Y).Var, Value::number(Rational(3), Sort::Int));
  TermRef Psi = mbp(C, MbpStrategy::FullQe, {XV}, Phi, M);
  EXPECT_TRUE(M.holds(C, Psi));
  expectUnderapprox(C, Psi, Phi, {XV});
}

//===----------------------------------------------------------------------===
// Randomized contract sweep
//===----------------------------------------------------------------------===

class MbpPropertyTest
    : public ::testing::TestWithParam<std::pair<unsigned, Sort>> {};

TEST_P(MbpPropertyTest, SatisfiesDefinitionOne) {
  auto [Seed, S] = GetParam();
  std::mt19937 Rng(Seed);
  TermContext C;
  for (int Round = 0; Round < 35; ++Round) {
    std::vector<TermRef> Vars;
    for (int I = 0; I < 3; ++I)
      Vars.push_back(C.mkFreshVar("m", S));
    auto Cst = [&](int64_t V) {
      return S == Sort::Int ? C.mkIntConst(V) : C.mkRealConst(Rational(V));
    };
    auto RndLin = [&]() {
      std::vector<TermRef> Parts;
      for (TermRef V : Vars)
        if (Rng() % 2)
          Parts.push_back(
              C.mkMul(Rational(static_cast<int64_t>(Rng() % 5) - 2), V));
      Parts.push_back(Cst(static_cast<int64_t>(Rng() % 9) - 4));
      return C.mkAdd(Parts);
    };
    std::vector<TermRef> Lits;
    int N = 2 + Rng() % 4;
    for (int I = 0; I < N; ++I) {
      switch (Rng() % (S == Sort::Int ? 4 : 3)) {
      case 0:
        Lits.push_back(C.mkLe(RndLin(), RndLin()));
        break;
      case 1:
        Lits.push_back(C.mkLt(RndLin(), RndLin()));
        break;
      case 2:
        Lits.push_back(C.mkEq(RndLin(), RndLin()));
        break;
      default:
        Lits.push_back(C.mkDivides(BigInt(2 + Rng() % 3), RndLin()));
        break;
      }
      if (Rng() % 4 == 0)
        Lits.back() = C.mkNot(Lits.back());
    }
    TermRef Phi = C.mkAnd(Lits);
    auto MOpt = SmtSolver::quickCheck(C, {Phi});
    if (!MOpt)
      continue;
    std::vector<VarId> Elim{C.node(Vars[0]).Var};
    if (Rng() % 2)
      Elim.push_back(C.node(Vars[1]).Var);
    TermRef Psi = mbp(C, MbpStrategy::LazyProject, Elim, Phi, *MOpt);
    EXPECT_TRUE(MOpt->holds(C, Psi)) << C.toString(Phi);
    for (VarId V : C.freeVars(Psi))
      EXPECT_TRUE(std::find(Elim.begin(), Elim.end(), V) == Elim.end());
    expectUnderapprox(C, Psi, Phi, Elim, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MbpPropertyTest,
    ::testing::Values(std::make_pair(31u, Sort::Int),
                      std::make_pair(32u, Sort::Int),
                      std::make_pair(33u, Sort::Real),
                      std::make_pair(34u, Sort::Real)));
