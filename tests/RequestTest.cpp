//===- tests/RequestTest.cpp - Unified solve job API tests ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers solveRequest(): cold solves through the recovery ladder, the
// fingerprint-keyed result store in front of it (memory and disk tiers,
// alpha-renamed hits, verify-before-serve, poisoned-entry recovery), and
// certificate (de)serialization round trips.
//
//===----------------------------------------------------------------------===//

#include "chc/Fingerprint.h"
#include "chc/Parser.h"
#include "chc/Preprocess.h"
#include "runtime/Request.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace mucyc;

namespace {

const char *CounterSat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 100)) false)))
(check-sat)
)";

const char *CounterSatRenamed = R"((set-logic HORN)
(declare-fun Reach (Int) Bool)
(assert (forall ((a Int)) (=> (= a 0) (Reach a))))
(assert (forall ((a Int) (b Int))
  (=> (and (Reach a) (< a 5) (= b (+ a 1))) (Reach b))))
(assert (forall ((a Int)) (=> (and (Reach a) (> a 100)) false)))
(check-sat)
)";

const char *CounterUnsat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 2)) false)))
(check-sat)
)";

/// A fresh scratch directory under the build tree, removed on destruction.
struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    Path = (std::filesystem::temp_directory_path() /
            (std::string("mucyc-request-test-") + Tag + "-" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

SolveRequest textRequest(const char *Text) {
  return SolveRequest::fromText(Text, SolverOptions());
}

} // namespace

TEST(RequestTest, ColdSolveSatAndUnsat) {
  SolveResponse Sat = solveRequest(textRequest(CounterSat));
  EXPECT_EQ(Sat.Status, ChcStatus::Sat);
  EXPECT_EQ(Sat.Cache, CacheSource::None);
  EXPECT_GE(Sat.Attempts, 1u);
  EXPECT_TRUE(Sat.Invariant.isValid());
  ASSERT_TRUE(Sat.Ctx != nullptr);

  SolveResponse Unsat = solveRequest(textRequest(CounterUnsat));
  EXPECT_EQ(Unsat.Status, ChcStatus::Unsat);
  EXPECT_TRUE(Unsat.CexPiece.isValid());
}

TEST(RequestTest, ParseFailureIsTypedInputError) {
  SolveResponse R = solveRequest(textRequest("(assert (not-a-horn"));
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_TRUE(R.Error.isError());
  EXPECT_EQ(R.Error.Code, ErrorCode::InputError);
}

TEST(RequestTest, EmptyRequestIsInputError) {
  SolveRequest Req; // Neither Source nor Build.
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::InputError);
}

TEST(RequestTest, WantSolutionRendersDefineFun) {
  SolveRequest Req = textRequest(CounterSat);
  Req.WantSolution = true;
  SolveResponse R = solveRequest(Req);
  ASSERT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_NE(R.SolutionText.find("(define-fun Inv "), std::string::npos)
      << R.SolutionText;
}

TEST(RequestTest, KeepContextFalseDropsCertificates) {
  SolveRequest Req = textRequest(CounterSat);
  Req.KeepContext = false;
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_TRUE(R.Ctx == nullptr);
  EXPECT_FALSE(R.Invariant.isValid());
}

TEST(RequestTest, MemoryTierServesIdenticalAndRenamedResubmissions) {
  ResultStore Store; // Memory tier only.
  SolveResponse Cold = solveRequest(textRequest(CounterSat), &Store, nullptr);
  ASSERT_EQ(Cold.Status, ChcStatus::Sat);
  EXPECT_EQ(Cold.Cache, CacheSource::None);
  ASSERT_FALSE(Cold.Fingerprint.empty());
  EXPECT_EQ(Store.counters().Inserts, 1u);

  SolveResponse Warm = solveRequest(textRequest(CounterSat), &Store, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Cache, CacheSource::Memory);
  EXPECT_EQ(Warm.Attempts, 0u); // Served, not solved.
  EXPECT_TRUE(Warm.CacheVerified);
  EXPECT_EQ(Warm.Fingerprint, Cold.Fingerprint);

  // The tentpole scenario: alpha-renamed resubmission hits the same entry
  // and the served certificate still passes Verify against *its* parse.
  SolveResponse Renamed =
      solveRequest(textRequest(CounterSatRenamed), &Store, nullptr);
  EXPECT_EQ(Renamed.Status, ChcStatus::Sat);
  EXPECT_EQ(Renamed.Cache, CacheSource::Memory);
  EXPECT_EQ(Renamed.Attempts, 0u);
  EXPECT_TRUE(Renamed.CacheVerified);
  EXPECT_EQ(Renamed.Fingerprint, Cold.Fingerprint);
  EXPECT_TRUE(Renamed.Invariant.isValid());
}

TEST(RequestTest, UnsatCertificatesAreCachedToo) {
  ResultStore Store;
  SolveResponse Cold = solveRequest(textRequest(CounterUnsat), &Store, nullptr);
  ASSERT_EQ(Cold.Status, ChcStatus::Unsat);
  SolveResponse Warm = solveRequest(textRequest(CounterUnsat), &Store, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Unsat);
  EXPECT_EQ(Warm.Attempts, 0u);
  EXPECT_TRUE(Warm.CexPiece.isValid());
}

TEST(RequestTest, DiskTierSurvivesStoreRestart) {
  TempDir Dir("disk");
  std::string Fp;
  {
    ResultStore Store(Dir.Path);
    SolveResponse Cold =
        solveRequest(textRequest(CounterSat), &Store, nullptr);
    ASSERT_EQ(Cold.Status, ChcStatus::Sat);
    Fp = Cold.Fingerprint;
  }
  // A new store on the same directory models a daemon restart: the entry
  // comes back from disk, is re-verified once, then serves from memory.
  ResultStore Store2(Dir.Path);
  SolveResponse Warm = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Cache, CacheSource::Disk);
  EXPECT_TRUE(Warm.CacheVerified);
  EXPECT_EQ(Warm.Fingerprint, Fp);

  SolveResponse Again = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(Again.Cache, CacheSource::Memory);
}

TEST(RequestTest, CorruptDiskEntryFallsThroughToColdSolve) {
  TempDir Dir("corrupt");
  std::string Fp;
  {
    ResultStore Store(Dir.Path);
    Fp = solveRequest(textRequest(CounterSat), &Store, nullptr).Fingerprint;
    ASSERT_FALSE(Fp.empty());
  }
  {
    // Garble the entry on disk: a legacy v1 header with a mangled cert and
    // no checksum. The restart recovery scan must quarantine it, so the
    // request misses and answers cold.
    std::ofstream Out(Dir.Path + "/" + Fp + ".mucyc-result");
    Out << "mucyc-result-v1\nstatus: sat\ndepth: 1\nconfig: X\n"
        << "zsorts: Int\ncert: (not (a valid term\n";
  }
  ResultStore Store2(Dir.Path);
  EXPECT_GE(Store2.recovery().Quarantined, 1u);
  SolveResponse R = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_EQ(R.Cache, CacheSource::None);
  EXPECT_GE(R.Attempts, 1u);
  // And the cold answer re-admitted a good entry.
  SolveResponse Warm = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(Warm.Attempts, 0u);
}

TEST(RequestTest, WrongStatusEntryFailsVerifyAndIsDropped) {
  TempDir Dir("poison");
  std::string Fp, GoodCert;
  {
    ResultStore Store(Dir.Path);
    SolveResponse Cold =
        solveRequest(textRequest(CounterSat), &Store, nullptr);
    Fp = Cold.Fingerprint;
    auto E = Store.lookup(Fp);
    ASSERT_TRUE(E.has_value());
    GoodCert = E->Cert;
  }
  {
    // A checksum-valid v2 entry whose certificate does not verify: claim
    // the sat system is unsat with a trivially-unreachable "bad region".
    // It sails through the recovery scan (bytes are intact) but the store
    // must refuse to serve it (verify-before-serve) and recover cold.
    ResultStore::Entry Poison;
    Poison.Status = ChcStatus::Unsat;
    Poison.Depth = 0;
    Poison.Config = "X";
    Poison.ZSorts = {Sort::Int};
    Poison.Cert = "(= mz0 (- 7))";
    std::ofstream Out(Dir.Path + "/" + Fp + ".mucyc-result");
    Out << ResultStore::formatEntry(Poison);
  }
  ResultStore Store2(Dir.Path);
  SolveResponse R = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_EQ(R.Cache, CacheSource::None);
  EXPECT_GE(Store2.counters().Rejects, 1u);
  (void)GoodCert;
}

TEST(RequestTest, StoreFormatV2RoundTripsAndChecksumCatchesTampering) {
  ResultStore::Entry E;
  E.Status = ChcStatus::Sat;
  E.Depth = 3;
  E.Config = "Yld(T,MBP(2))";
  E.ZSorts = {Sort::Int, Sort::Bool};
  E.Cert = "(and (>= mz0 0) mz1)";
  std::string Text = ResultStore::formatEntry(E);
  EXPECT_EQ(Text.rfind("mucyc-result-v2\n", 0), 0u);

  auto Back = ResultStore::parseFileText(Text);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Status, E.Status);
  EXPECT_EQ(Back->Depth, E.Depth);
  EXPECT_EQ(Back->Config, E.Config);
  EXPECT_EQ(Back->ZSorts, E.ZSorts);
  EXPECT_EQ(Back->Cert, E.Cert);

  // One flipped byte anywhere in the body fails the checksum line.
  std::string Tampered = Text;
  Tampered[Text.find("depth: 3") + 7] = '4';
  EXPECT_FALSE(ResultStore::parseFileText(Tampered).has_value());
  // A torn write (any prefix) is detected too.
  EXPECT_FALSE(
      ResultStore::parseFileText(Text.substr(0, Text.size() / 2)).has_value());
  // Legacy v1 entries are rejected wholesale.
  EXPECT_FALSE(ResultStore::parseFileText("mucyc-result-v1\nstatus: sat\n")
                   .has_value());
}

TEST(RequestTest, RecoveryScanQuarantinesDamagedEntriesAndServesIntactOnes) {
  TempDir Dir("recover");
  std::string Fp;
  {
    ResultStore Store(Dir.Path);
    Fp = solveRequest(textRequest(CounterSat), &Store, nullptr).Fingerprint;
    ASSERT_FALSE(Fp.empty());
  }
  // Read the one intact entry back and plant a damage corpus next to it:
  // a torn v2 entry (power loss mid-write under the final name), a
  // bit-flipped v2 entry, a legacy v1 entry, and an orphaned staging file.
  std::string Good;
  {
    std::ifstream In(Dir.Path + "/" + Fp + ".mucyc-result");
    std::stringstream Buf;
    Buf << In.rdbuf();
    Good = Buf.str();
  }
  ASSERT_FALSE(Good.empty());
  std::ofstream(Dir.Path + "/1111.mucyc-result")
      << Good.substr(0, Good.size() / 2);
  std::string Flipped = Good;
  Flipped[Good.find("cert: ") + 6] ^= 1;
  std::ofstream(Dir.Path + "/2222.mucyc-result") << Flipped;
  std::ofstream(Dir.Path + "/3333.mucyc-result")
      << "mucyc-result-v1\nstatus: sat\ndepth: 1\nconfig: X\n"
      << "zsorts: Int\ncert: true\n";
  std::ofstream(Dir.Path + "/4444.mucyc-result.tmp") << "half a stage";

  ResultStore Store2(Dir.Path);
  const ResultStore::RecoveryReport &R = Store2.recovery();
  EXPECT_EQ(R.Scanned, 4u);
  EXPECT_EQ(R.Intact, 1u);
  EXPECT_EQ(R.Quarantined, 3u);
  EXPECT_EQ(R.TmpSwept, 1u);
  // Quarantined entries are moved aside for post-mortem, not destroyed.
  size_t InQuarantine = 0;
  for ([[maybe_unused]] const auto &Ent :
       std::filesystem::directory_iterator(Dir.Path + "/quarantine"))
    ++InQuarantine;
  EXPECT_EQ(InQuarantine, 3u);
  EXPECT_FALSE(
      std::filesystem::exists(Dir.Path + "/4444.mucyc-result.tmp"));

  // The intact entry still serves warm, straight from disk.
  SolveResponse Warm = solveRequest(textRequest(CounterSat), &Store2, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Attempts, 0u);
  EXPECT_EQ(Warm.Cache, CacheSource::Disk);
}

TEST(RequestTest, NoStoreBypassesTheCache) {
  ResultStore Store;
  SolveRequest Req = textRequest(CounterSat);
  Req.NoStore = true;
  SolveResponse R = solveRequest(Req, &Store, nullptr);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_TRUE(R.Fingerprint.empty());
  EXPECT_EQ(Store.counters().Inserts, 0u);
}

TEST(RequestTest, TagsAreEchoed) {
  SolveRequest Req = textRequest(CounterSat);
  Req.Tags = "suite=fig2 shard=3";
  EXPECT_EQ(solveRequest(Req).Tags, "suite=fig2 shard=3");
}

TEST(RequestTest, CertificateSerializationRoundTrips) {
  // serializeCert renders over canonical mz0..mzN names; parseCert maps
  // them back onto the requester's Z tuple. Round-tripping through a
  // *fresh* context must produce a formula Verify accepts.
  TermContext Ctx;
  ParseResult PR = parseChc(Ctx, CounterSat);
  ASSERT_TRUE(PR.Ok);
  ChcSystem Work = preprocess(*PR.System);
  NormalizedChc N = normalize(Work).Sys;

  // A real invariant over this context's Z tuple (the normalized encoding
  // is tagged, so hand-writing one would bake in encoding details).
  ChcSolver S(Ctx, N, SolverOptions());
  SolverResult R = S.solve();
  ASSERT_EQ(R.Status, ChcStatus::Sat);
  ASSERT_TRUE(R.Invariant.isValid());

  std::string Text = ResultStore::serializeCert(Ctx, N, R.Invariant);
  EXPECT_NE(Text.find("mz"), std::string::npos) << Text;

  std::string Err;
  TermRef Back = ResultStore::parseCert(Ctx, N, Text, &Err);
  ASSERT_TRUE(Back.isValid()) << Err;
  EXPECT_TRUE(verifyInvariant(Ctx, N, Back));
}

TEST(RequestTest, ParseCertRejectsMalformedText) {
  TermContext Ctx;
  ParseResult PR = parseChc(Ctx, CounterSat);
  ASSERT_TRUE(PR.Ok);
  ChcSystem Work = preprocess(*PR.System);
  NormalizedChc N = normalize(Work).Sys;

  std::string Err;
  EXPECT_FALSE(ResultStore::parseCert(Ctx, N, "(((", &Err).isValid());
  EXPECT_FALSE(Err.empty());
  // Wrong arity: a formula over a variable the Z tuple does not have.
  EXPECT_FALSE(
      ResultStore::parseCert(Ctx, N, "(= mz7 0)", nullptr).isValid());
}
