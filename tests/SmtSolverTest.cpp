//===- tests/SmtSolverTest.cpp - DPLL(T) solver tests ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>

using namespace mucyc;

namespace {
struct SmtFixture : ::testing::Test {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Y = C.mkVar("y", Sort::Int);
  TermRef XR = C.mkVar("xr", Sort::Real);
  TermRef A = C.mkVar("a", Sort::Bool);
  TermRef B = C.mkVar("b", Sort::Bool);
};
} // namespace

TEST_F(SmtFixture, LinearIntUnsat) {
  // x + y <= 5, x >= 3, y >= 3.
  auto M = SmtSolver::quickCheck(
      C, {C.mkLe(C.mkAdd(X, Y), C.mkIntConst(5)),
          C.mkGe(X, C.mkIntConst(3)), C.mkGe(Y, C.mkIntConst(3))});
  EXPECT_FALSE(M.has_value());
}

TEST_F(SmtFixture, LinearIntSatWithModel) {
  auto M = SmtSolver::quickCheck(
      C, {C.mkLe(C.mkAdd(X, Y), C.mkIntConst(5)),
          C.mkGe(X, C.mkIntConst(3))});
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->holds(C, C.mkLe(C.mkAdd(X, Y), C.mkIntConst(5))));
  EXPECT_TRUE(M->holds(C, C.mkGe(X, C.mkIntConst(3))));
}

TEST_F(SmtFixture, IntegralityBranching) {
  // 2x = y and y = 5: no integer solution.
  auto M = SmtSolver::quickCheck(
      C, {C.mkEq(C.mkMul(Rational(2), X), Y), C.mkEq(Y, C.mkIntConst(5))});
  EXPECT_FALSE(M.has_value());
}

TEST_F(SmtFixture, ParityViaEqualities) {
  // y even and y odd via two quotient encodings: unsat even though the
  // rational relaxation is unbounded (the equality-elimination pipeline
  // must catch it structurally).
  TermRef Q1 = C.mkVar("q1", Sort::Int), Q2 = C.mkVar("q2", Sort::Int);
  auto M = SmtSolver::quickCheck(
      C, {C.mkEq(Y, C.mkMul(Rational(2), Q1)),
          C.mkEq(Y, C.mkAdd(C.mkMul(Rational(2), Q2), C.mkIntConst(1)))});
  EXPECT_FALSE(M.has_value());
}

TEST_F(SmtFixture, StrictRealBounds) {
  auto M = SmtSolver::quickCheck(C, {C.mkGt(XR, C.mkRealConst(Rational(1))),
                                     C.mkLt(XR, C.mkRealConst(Rational(2)))});
  ASSERT_TRUE(M.has_value());
  Rational V = M->value(C, C.node(XR).Var).R;
  EXPECT_GT(V, Rational(1));
  EXPECT_LT(V, Rational(2));
  // x > 1 and x < 1 is unsat.
  EXPECT_FALSE(SmtSolver::quickCheck(
                   C, {C.mkGt(XR, C.mkRealConst(Rational(1))),
                       C.mkLt(XR, C.mkRealConst(Rational(1)))})
                   .has_value());
}

TEST_F(SmtFixture, Divisibility) {
  TermRef Dv = C.mkDivides(BigInt(3), X);
  EXPECT_FALSE(
      SmtSolver::quickCheck(C, {Dv, C.mkEq(X, C.mkIntConst(7))}).has_value());
  auto M = SmtSolver::quickCheck(C, {Dv, C.mkEq(X, C.mkIntConst(9))});
  EXPECT_TRUE(M.has_value());
  // Negated divisibility.
  auto M2 = SmtSolver::quickCheck(
      C, {C.mkNot(Dv), C.mkGe(X, C.mkIntConst(3)), C.mkLe(X, C.mkIntConst(3))});
  EXPECT_FALSE(M2.has_value());
}

TEST_F(SmtFixture, DisequalitySplits) {
  auto M = SmtSolver::quickCheck(
      C, {C.mkNot(C.mkEq(X, C.mkIntConst(0))), C.mkLe(X, C.mkIntConst(0)),
          C.mkGe(X, C.mkIntConst(0))});
  EXPECT_FALSE(M.has_value());
  auto M2 = SmtSolver::quickCheck(C, {C.mkNot(C.mkEq(X, Y)),
                                      C.mkLe(C.mkSub(X, Y), C.mkIntConst(0)),
                                      C.mkGe(C.mkSub(X, Y), C.mkIntConst(-1))});
  ASSERT_TRUE(M2.has_value());
  EXPECT_TRUE(M2->holds(C, C.mkNot(C.mkEq(X, Y))));
}

TEST_F(SmtFixture, BooleanStructure) {
  EXPECT_FALSE(SmtSolver::quickCheck(
                   C, {C.mkOr(A, B), C.mkNot(A), C.mkNot(B)})
                   .has_value());
  auto M = SmtSolver::quickCheck(C, {C.mkIff(A, B), C.mkNot(A)});
  ASSERT_TRUE(M.has_value());
  EXPECT_FALSE(M->value(C, C.node(B).Var).B);
}

TEST_F(SmtFixture, MixedBoolArith) {
  // (a -> x >= 5) & (!a -> x <= -5) & x == 0: unsat.
  TermRef F = C.mkAnd({C.mkImplies(A, C.mkGe(X, C.mkIntConst(5))),
                       C.mkImplies(C.mkNot(A), C.mkLe(X, C.mkIntConst(-5))),
                       C.mkEq(X, C.mkIntConst(0))});
  EXPECT_FALSE(SmtSolver::quickCheck(C, {F}).has_value());
}

TEST_F(SmtFixture, AssumptionCores) {
  SmtSolver S(C);
  S.assertFormula(C.mkLe(C.mkAdd(X, Y), C.mkIntConst(5)));
  TermRef A1 = C.mkGe(X, C.mkIntConst(3));
  TermRef A2 = C.mkGe(Y, C.mkIntConst(3));
  TermRef A3 = C.mkLe(X, C.mkIntConst(100)); // Irrelevant.
  EXPECT_EQ(S.check({A1, A2, A3}), SmtStatus::Unsat);
  const auto &Core = S.unsatCore();
  EXPECT_GE(Core.size(), 1u);
  for (TermRef T : Core)
    EXPECT_NE(T, A3);
  // Re-checking with a satisfiable subset works on the same instance.
  EXPECT_EQ(S.check({A1}), SmtStatus::Sat);
}

TEST_F(SmtFixture, IncrementalAssertions) {
  SmtSolver S(C);
  S.assertFormula(C.mkGe(X, C.mkIntConst(0)));
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  S.assertFormula(C.mkLe(X, C.mkIntConst(3)));
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  S.assertFormula(C.mkNot(C.mkAnd(C.mkGe(X, C.mkIntConst(0)),
                                  C.mkLe(X, C.mkIntConst(3)))));
  EXPECT_EQ(S.check(), SmtStatus::Unsat);
}

//===----------------------------------------------------------------------===
// Scopes (push/pop via activation literals)
//===----------------------------------------------------------------------===

TEST_F(SmtFixture, PopRestoresSatAfterContradiction) {
  SmtSolver S(C);
  S.assertFormula(C.mkGe(X, C.mkIntConst(0)));
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  S.push();
  S.assertFormula(C.mkLe(X, C.mkIntConst(-1))); // Contradicts the base.
  EXPECT_EQ(S.check(), SmtStatus::Unsat);
  EXPECT_EQ(S.numScopes(), 1u);
  S.pop();
  EXPECT_EQ(S.numScopes(), 0u);
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  EXPECT_TRUE(S.model().holds(C, C.mkGe(X, C.mkIntConst(0))));
}

TEST_F(SmtFixture, NestedScopesPopInOrder) {
  SmtSolver S(C);
  S.assertFormula(C.mkGe(X, C.mkIntConst(0)));
  S.push();
  S.assertFormula(C.mkLe(X, C.mkIntConst(10)));
  S.push();
  S.assertFormula(C.mkGe(X, C.mkIntConst(11))); // Clashes with scope 1.
  EXPECT_EQ(S.check(), SmtStatus::Unsat);
  S.pop(); // Drop x >= 11.
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  EXPECT_TRUE(S.model().holds(C, C.mkLe(X, C.mkIntConst(10))));
  S.pop(); // Drop x <= 10.
  S.assertFormula(C.mkGe(X, C.mkIntConst(11))); // Permanent now: fine.
  EXPECT_EQ(S.check(), SmtStatus::Sat);
}

TEST_F(SmtFixture, ScopedFalseIsRecoverable) {
  SmtSolver S(C);
  S.push();
  S.assertFormula(C.mkFalse());
  EXPECT_EQ(S.check(), SmtStatus::Unsat);
  // Even under assumptions the core never blames them for the scoped False.
  EXPECT_EQ(S.check({C.mkGe(X, C.mkIntConst(0))}), SmtStatus::Unsat);
  EXPECT_TRUE(S.unsatCore().empty());
  S.pop();
  EXPECT_EQ(S.check(), SmtStatus::Sat);
}

TEST_F(SmtFixture, CoresNeverMentionPoppedAssertions) {
  SmtSolver S(C);
  S.assertFormula(C.mkGe(C.mkAdd(X, Y), C.mkIntConst(10)));
  S.push();
  S.assertFormula(C.mkLe(X, C.mkIntConst(0))); // Popped below.
  S.pop();
  TermRef A1 = C.mkLe(X, C.mkIntConst(4));
  TermRef A2 = C.mkLe(Y, C.mkIntConst(4));
  TermRef A3 = C.mkGe(Y, C.mkIntConst(0)); // Irrelevant.
  EXPECT_EQ(S.check({A1, A2, A3}), SmtStatus::Unsat);
  const std::vector<TermRef> &Core = S.unsatCore();
  EXPECT_GE(Core.size(), 1u);
  for (TermRef T : Core) {
    EXPECT_TRUE(T == A1 || T == A2 || T == A3)
        << "core leaked a non-assumption: " << C.toString(T);
    EXPECT_NE(T, A3);
  }
}

TEST_F(SmtFixture, ModelValidAfterPop) {
  SmtSolver S(C);
  S.assertFormula(C.mkGe(X, C.mkIntConst(0)));
  S.push();
  S.assertFormula(C.mkGe(X, C.mkIntConst(50)));
  ASSERT_EQ(S.check(), SmtStatus::Sat);
  EXPECT_TRUE(S.model().holds(C, C.mkGe(X, C.mkIntConst(50))));
  S.pop();
  S.assertFormula(C.mkLe(X, C.mkIntConst(5))); // Only sat once 50 is gone.
  ASSERT_EQ(S.check(), SmtStatus::Sat);
  EXPECT_TRUE(S.model().holds(C, C.mkAnd(C.mkGe(X, C.mkIntConst(0)),
                                         C.mkLe(X, C.mkIntConst(5)))));
}

TEST_F(SmtFixture, CancelledCheckLeavesScopesUsable) {
  SmtSolver S(C);
  std::atomic<bool> Flag{true}; // Cancelled from the start.
  S.assertFormula(C.mkGe(X, C.mkIntConst(0)));
  S.push();
  S.assertFormula(C.mkLe(X, C.mkIntConst(-1)));
  S.setCancelFlag(&Flag);
  EXPECT_EQ(S.check(), SmtStatus::Unknown); // Interrupted, state intact.
  Flag.store(false);
  EXPECT_EQ(S.check(), SmtStatus::Unsat); // Same scope, real verdict now.
  S.pop();
  EXPECT_EQ(S.check(), SmtStatus::Sat);
  EXPECT_EQ(S.numScopes(), 0u);
}

TEST_F(SmtFixture, LearnedClausesSurvivePop) {
  // A small pigeonhole (4 pigeons, 3 holes) over Boolean structure forces
  // genuine CDCL learning; assert it inside a scope, pop, and the learned
  // clauses must still be in the database (each carries the popped
  // activation literal, so they are vacuously satisfied — retention is the
  // observable).
  SmtSolver S(C);
  std::vector<std::vector<TermRef>> P(4);
  for (int I = 0; I < 4; ++I)
    for (int H = 0; H < 3; ++H)
      P[I].push_back(
          C.mkVar("p" + std::to_string(I) + "_" + std::to_string(H),
                  Sort::Bool));
  S.push();
  for (int I = 0; I < 4; ++I)
    S.assertFormula(C.mkOr(P[I]));
  for (int H = 0; H < 3; ++H)
    for (int I = 0; I < 4; ++I)
      for (int J = I + 1; J < 4; ++J)
        S.assertFormula(C.mkOr(C.mkNot(P[I][H]), C.mkNot(P[J][H])));
  EXPECT_EQ(S.check(), SmtStatus::Unsat);
  uint64_t LearnedAtUnsat = S.satCore().numLearned();
  EXPECT_GT(LearnedAtUnsat, 0u);
  S.pop();
  EXPECT_GE(S.satCore().numLearned(), LearnedAtUnsat);
  EXPECT_EQ(S.check(), SmtStatus::Sat);
}

TEST_F(SmtFixture, ImpliesAndEquivalentHelpers) {
  TermRef F = C.mkAnd(C.mkGe(X, C.mkIntConst(1)), C.mkLe(X, C.mkIntConst(3)));
  TermRef G = C.mkGe(X, C.mkIntConst(0));
  EXPECT_TRUE(SmtSolver::implies(C, F, G));
  EXPECT_FALSE(SmtSolver::implies(C, G, F));
  EXPECT_TRUE(SmtSolver::equivalent(
      C, C.mkLt(X, C.mkIntConst(3)), C.mkLe(X, C.mkIntConst(2))));
}

//===----------------------------------------------------------------------===
// Property test: random formulas vs. brute-force grid evaluation
//===----------------------------------------------------------------------===

class SmtPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmtPropertyTest, AgreesWithGridSearch) {
  std::mt19937 Rng(GetParam());
  TermContext C;
  for (int Round = 0; Round < 80; ++Round) {
    int NumVars = 2;
    std::vector<TermRef> Vars;
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(C.mkFreshVar("p", Sort::Int));
    auto RndLin = [&]() {
      std::vector<TermRef> Parts;
      for (TermRef V : Vars)
        if (Rng() % 2)
          Parts.push_back(
              C.mkMul(Rational(static_cast<int64_t>(Rng() % 7) - 3), V));
      Parts.push_back(C.mkIntConst(static_cast<int64_t>(Rng() % 11) - 5));
      return C.mkAdd(Parts);
    };
    auto RndAtom = [&]() -> TermRef {
      switch (Rng() % 4) {
      case 0:
        return C.mkLe(RndLin(), RndLin());
      case 1:
        return C.mkLt(RndLin(), RndLin());
      case 2:
        return C.mkEq(RndLin(), RndLin());
      default:
        return C.mkDivides(BigInt(2 + Rng() % 3), RndLin());
      }
    };
    std::function<TermRef(int)> RndF = [&](int Depth) -> TermRef {
      if (Depth == 0 || Rng() % 3 == 0) {
        TermRef At = RndAtom();
        return Rng() % 3 == 0 ? C.mkNot(At) : At;
      }
      switch (Rng() % 3) {
      case 0:
        return C.mkAnd(RndF(Depth - 1), RndF(Depth - 1));
      case 1:
        return C.mkOr(RndF(Depth - 1), RndF(Depth - 1));
      default:
        return C.mkNot(RndF(Depth - 1));
      }
    };
    TermRef F = RndF(3);

    SmtSolver S(C);
    S.assertFormula(F);
    SmtStatus St = S.check();
    ASSERT_NE(St, SmtStatus::Unknown);

    bool BruteSat = false;
    Assignment A;
    for (int V0 = -7; V0 <= 7 && !BruteSat; ++V0)
      for (int V1 = -7; V1 <= 7 && !BruteSat; ++V1) {
        A[C.node(Vars[0]).Var] = Value::number(Rational(V0), Sort::Int);
        A[C.node(Vars[1]).Var] = Value::number(Rational(V1), Sort::Int);
        if (evalBool(C, F, A))
          BruteSat = true;
      }
    if (St == SmtStatus::Unsat)
      EXPECT_FALSE(BruteSat) << C.toString(F);
    else
      EXPECT_TRUE(S.model().holds(C, F)) << C.toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtPropertyTest,
                         ::testing::Values(21u, 22u, 23u, 24u));
