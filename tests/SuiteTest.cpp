//===- tests/SuiteTest.cpp - Benchmark suite validation -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic suite stands in for CHC-COMP, so its ground-truth labels
/// must be unimpeachable: every instance is checked for basic sanity
/// (satisfiable initial states, well-sorted tuples), UNSAT labels are
/// confirmed by bounded model checking, and SAT labels spot-checked by the
/// absence of shallow counterexamples.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

#include <set>

using namespace mucyc;

TEST(SuiteTest, DeterministicAndUniqueNames) {
  std::vector<BenchInstance> A = buildSuite();
  std::vector<BenchInstance> B = buildSuite();
  ASSERT_EQ(A.size(), B.size());
  std::set<std::string> Names;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Expected, B[I].Expected);
    EXPECT_TRUE(Names.insert(A[I].Name).second) << "duplicate " << A[I].Name;
  }
  EXPECT_GE(A.size(), 35u);
}

TEST(SuiteTest, MixOfFamiliesAndStatuses) {
  size_t Sat = 0, Unsat = 0, Linear = 0, Tree = 0;
  std::set<std::string> Families;
  for (const BenchInstance &B : buildSuite()) {
    (B.Expected == ChcStatus::Sat ? Sat : Unsat) += 1;
    (B.Linear ? Linear : Tree) += 1;
    Families.insert(B.Family);
  }
  EXPECT_GE(Sat, 10u);
  EXPECT_GE(Unsat, 10u);
  EXPECT_GE(Linear, 10u);
  EXPECT_GE(Tree, 5u);
  EXPECT_GE(Families.size(), 6u);
}

TEST(SuiteTest, InstancesAreWellFormed) {
  for (const BenchInstance &B : buildSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    ASSERT_EQ(N.X.size(), N.Z.size()) << B.Name;
    ASSERT_EQ(N.Y.size(), N.Z.size()) << B.Name;
    for (size_t I = 0; I < N.Z.size(); ++I) {
      EXPECT_EQ(C.varInfo(N.X[I]).S, C.varInfo(N.Z[I]).S) << B.Name;
      EXPECT_EQ(C.varInfo(N.Y[I]).S, C.varInfo(N.Z[I]).S) << B.Name;
    }
    // Initial states are non-empty (the unit-state argument of the
    // normalization relies on it, and an empty system is degenerate).
    EXPECT_TRUE(SmtSolver::quickCheck(C, {N.Init}).has_value()) << B.Name;
    EXPECT_EQ(C.sort(N.Init), Sort::Bool);
    EXPECT_EQ(C.sort(N.Trans), Sort::Bool);
    EXPECT_EQ(C.sort(N.Bad), Sort::Bool);
  }
}

TEST(SuiteTest, UnsatLabelsConfirmedByBmc) {
  // Every UNSAT instance must show a bounded counterexample; depth 8 covers
  // the shallow families, the rest are covered by the dedicated deep-BMC
  // entries below.
  std::set<std::string> Deep = {"counter_unsafe_10", "parity_unsafe_8",
                                "drift_unsafe_12",   "fibsum_unsafe_14",
                                "treemax_unsafe_14", "mixed_unsafe_9",
                                "real_grow_unsafe_64"};
  for (const BenchInstance &B : buildSuite()) {
    if (B.Expected != ChcStatus::Unsat || Deep.count(B.Name))
      continue;
    TermContext C;
    NormalizedChc N = B.Build(C);
    EXPECT_EQ(bmcStatus(C, N, 8), ChcStatus::Unsat) << B.Name;
  }
}

TEST(SuiteTest, SatLabelsHaveNoShallowCounterexample) {
  for (const BenchInstance &B : buildSuite()) {
    if (B.Expected != ChcStatus::Sat)
      continue;
    TermContext C;
    NormalizedChc N = B.Build(C);
    ChcStatus S = bmcStatus(C, N, 4);
    EXPECT_NE(S, ChcStatus::Unsat) << B.Name;
  }
}

TEST(SuiteTest, SmallSuiteIsSubset) {
  std::set<std::string> All;
  for (const BenchInstance &B : buildSuite())
    All.insert(B.Name);
  std::vector<BenchInstance> Small = buildSmallSuite();
  EXPECT_GE(Small.size(), 10u);
  for (const BenchInstance &B : Small)
    EXPECT_TRUE(All.count(B.Name)) << B.Name;
}

TEST(SuiteTest, PaperExamplesMatchTheirStories) {
  TermContext C;
  // Example 4 vs 5: the single sign in the transition flips the status.
  EXPECT_EQ(bmcStatus(C, paperExample4(C), 6), ChcStatus::Unsat);
  TermContext C2;
  EXPECT_NE(bmcStatus(C2, paperExample5(C2), 6), ChcStatus::Unsat);
  // Example 10: reachable set is {0, 3}, so bound 2 fails and 5 holds.
  TermContext C3;
  EXPECT_EQ(bmcStatus(C3, paperExample10(C3, 2), 4), ChcStatus::Unsat);
  TermContext C4;
  EXPECT_EQ(bmcStatus(C4, paperExample10(C4, 5), 6), ChcStatus::Sat);
  // Appendix C: H spreads from 0 to -1, joining P(-1).
  TermContext C5;
  EXPECT_EQ(bmcStatus(C5, appendixCSystem(C5), 4), ChcStatus::Unsat);
}
