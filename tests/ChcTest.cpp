//===- tests/ChcTest.cpp - CHC representation tests -----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Chc.h"

#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
/// The running linear system: iota = (0 <= z <= 1), z' = z + 1 while z < 3,
/// assertion z <= 3.
struct ChcFixture : ::testing::Test {
  TermContext C;
  ChcSystem Sys{C};
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Y = C.mkVar("y", Sort::Int);

  void SetUp() override {
    // 0 <= x <= 1 => P(x).
    Clause Fact;
    Fact.Constraint = C.mkAnd(C.mkGe(X, C.mkIntConst(0)),
                              C.mkLe(X, C.mkIntConst(1)));
    Fact.Head = PredApp{P, {X}};
    Sys.addClause(Fact);
    // P(x) /\ x < 3 /\ y = x + 1 => P(y).
    Clause Step;
    Step.Body.push_back(PredApp{P, {X}});
    Step.Constraint = C.mkAnd(C.mkLt(X, C.mkIntConst(3)),
                              C.mkEq(Y, C.mkAdd(X, C.mkIntConst(1))));
    Step.Head = PredApp{P, {Y}};
    Sys.addClause(Step);
    // P(x) /\ x > 3 => false.
    Clause Query;
    Query.Body.push_back(PredApp{P, {X}});
    Query.Constraint = C.mkGt(X, C.mkIntConst(3));
    Sys.addClause(Query);
  }

  ChcSolution solutionWith(TermRef Body) {
    PredDef Def;
    Def.Params = {C.node(X).Var};
    Def.Body = Body;
    ChcSolution Sol;
    Sol.emplace(P, Def);
    return Sol;
  }
};
} // namespace

TEST_F(ChcFixture, StructureQueries) {
  EXPECT_EQ(Sys.numPreds(), 1u);
  EXPECT_EQ(Sys.clauses().size(), 3u);
  EXPECT_TRUE(Sys.clauses()[0].isFact());
  EXPECT_FALSE(Sys.clauses()[1].isQuery());
  EXPECT_TRUE(Sys.clauses()[2].isQuery());
  EXPECT_TRUE(Sys.isLinear());
  EXPECT_EQ(*Sys.findPred("P"), P);
  EXPECT_FALSE(Sys.findPred("Q").has_value());
}

TEST_F(ChcFixture, DependencyGraph) {
  auto G = Sys.dependencyGraph();
  ASSERT_EQ(G.size(), 1u);
  ASSERT_EQ(G[P].size(), 1u);
  EXPECT_EQ(G[P][0], P); // Self loop from the step clause.
}

TEST_F(ChcFixture, CheckSolutionAcceptsInvariant) {
  // 0 <= x <= 3 is an inductive solution.
  TermRef Inv = C.mkAnd(C.mkGe(X, C.mkIntConst(0)),
                        C.mkLe(X, C.mkIntConst(3)));
  EXPECT_TRUE(Sys.checkSolution(solutionWith(Inv)));
}

TEST_F(ChcFixture, CheckSolutionRejectsNonInductive) {
  // x <= 1 is not closed under the step clause.
  EXPECT_FALSE(Sys.checkSolution(solutionWith(C.mkLe(X, C.mkIntConst(1)))));
  // True violates the query clause.
  EXPECT_FALSE(Sys.checkSolution(solutionWith(C.mkTrue())));
}

TEST_F(ChcFixture, ApplyDefSubstitutes) {
  PredDef Def;
  Def.Params = {C.node(X).Var};
  Def.Body = C.mkLe(X, C.mkIntConst(5));
  PredApp App{P, {C.mkAdd(Y, C.mkIntConst(2))}};
  TermRef R = applyDef(C, Def, App);
  EXPECT_EQ(R, C.mkLe(Y, C.mkIntConst(3)));
}

TEST_F(ChcFixture, ClauseFormulaValidity) {
  ChcSolution Sol = solutionWith(
      C.mkAnd(C.mkGe(X, C.mkIntConst(0)), C.mkLe(X, C.mkIntConst(3))));
  for (const Clause &Cl : Sys.clauses()) {
    TermRef F = Sys.clauseFormula(Cl, Sol);
    EXPECT_FALSE(SmtSolver::quickCheck(C, {C.mkNot(F)}).has_value());
  }
}

TEST_F(ChcFixture, ToStringMentionsEverything) {
  std::string S = Sys.toString();
  EXPECT_NE(S.find("P("), std::string::npos);
  EXPECT_NE(S.find("=> false"), std::string::npos);
}

TEST(ChcTest, NonLinearDetection) {
  TermContext C;
  ChcSystem Sys(C);
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = C.mkVar("nx", Sort::Int), Y = C.mkVar("ny", Sort::Int),
          Z = C.mkVar("nz", Sort::Int);
  Clause Join;
  Join.Body = {PredApp{P, {X}}, PredApp{P, {Y}}};
  Join.Constraint = C.mkEq(Z, C.mkAdd(X, Y));
  Join.Head = PredApp{P, {Z}};
  Sys.addClause(Join);
  EXPECT_FALSE(Sys.isLinear());
}

TEST(ChcTest, ZeroArityPredicates) {
  TermContext C;
  ChcSystem Sys(C);
  PredId P = Sys.addPred("Flag", {});
  Clause Fact;
  Fact.Constraint = C.mkTrue();
  Fact.Head = PredApp{P, {}};
  Sys.addClause(Fact);
  Clause Query;
  Query.Body = {PredApp{P, {}}};
  Query.Constraint = C.mkTrue();
  Sys.addClause(Query);
  // Flag is forced true, query forces false: no solution.
  PredDef Def;
  Def.Body = C.mkTrue();
  ChcSolution Sol;
  Sol.emplace(P, Def);
  EXPECT_FALSE(Sys.checkSolution(Sol));
  Def.Body = C.mkFalse();
  Sol[P] = Def;
  EXPECT_FALSE(Sys.checkSolution(Sol)); // Fact clause now fails.
}
