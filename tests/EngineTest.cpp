//===- tests/EngineTest.cpp - EngineContext plumbing tests ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Engine.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace mucyc;

namespace {
struct EngineFixture : ::testing::Test {
  TermContext C;
  NormalizedChc N{paperExample5(C)};
  SolverOptions Opts;
};
} // namespace

TEST_F(EngineFixture, TupleRenamings) {
  EngineContext E(C, N, Opts);
  TermRef Z = C.varTerm(N.Z[0]);
  TermRef X = C.varTerm(N.X[0]);
  TermRef Y = C.varTerm(N.Y[0]);
  TermRef F = C.mkLe(Z, C.mkIntConst(7));
  EXPECT_EQ(E.zToX(F), C.mkLe(X, C.mkIntConst(7)));
  EXPECT_EQ(E.zToY(F), C.mkLe(Y, C.mkIntConst(7)));
  // Round trips.
  EXPECT_EQ(E.xToZ(E.zToX(F)), F);
  EXPECT_EQ(E.yToZ(E.zToY(F)), F);
}

TEST_F(EngineFixture, SatCountsChecks) {
  EngineContext E(C, N, Opts);
  uint64_t Before = E.Stats.SmtChecks;
  EXPECT_TRUE(E.sat({N.Init}).has_value());
  EXPECT_FALSE(E.sat({N.Init, N.Bad}).has_value());
  EXPECT_EQ(E.Stats.SmtChecks, Before + 2);
  EXPECT_FALSE(E.Aborted);
}

TEST_F(EngineFixture, ImpliesIsStrict) {
  EngineContext E(C, N, Opts);
  TermRef Z = C.varTerm(N.Z[0]);
  EXPECT_TRUE(E.implies(N.Init, C.mkGe(Z, C.mkIntConst(0))));
  EXPECT_FALSE(E.implies(C.mkGe(Z, C.mkIntConst(0)), N.Init));
}

TEST_F(EngineFixture, StepBudgetMetersRefinementsNotSmtChecks) {
  // Regression test: MaxRefineSteps used to be compared against
  // Stats.SmtChecks, so a refinement bound of 3 aborted after three SMT
  // queries even though zero refinement steps had happened. The budget
  // meters Stats.RefineCalls.
  Opts.MaxRefineSteps = 3;
  EngineContext E(C, N, Opts);
  // Ten distinct queries so every one is a real check rather than a query
  // cache hit (only full checks are at issue here).
  TermRef Z = C.varTerm(N.Z[0]);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(E.sat({N.Init, C.mkLe(Z, C.mkIntConst(100 + I))}).has_value())
        << "check " << I;
  EXPECT_GT(E.Stats.SmtChecks, Opts.MaxRefineSteps);
  EXPECT_FALSE(E.Aborted); // SMT checks alone never trip the budget.

  // Exceeding the refinement budget does.
  E.Stats.RefineCalls = 4;
  EXPECT_TRUE(E.expired());
  EXPECT_TRUE(E.Aborted);
  // Aborted sat() is conservative: no model and no unsat conclusion.
  EXPECT_FALSE(E.sat({N.Init}).has_value());
  EXPECT_FALSE(E.implies(N.Init, N.Init)); // implies() refuses when aborted.
}

TEST_F(EngineFixture, QueryCacheSplitsHitsFromChecks) {
  // Regression test for the SmtChecks/SmtCacheHits split: repeated
  // identical queries are served from the cache and counted as hits, not
  // as full checks.
  EngineContext E(C, N, Opts);
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(E.sat({N.Init}).has_value()) << "check " << I;
  EXPECT_EQ(E.Stats.SmtChecks, 1u);
  EXPECT_EQ(E.Stats.SmtCacheHits, 9u);

  // Unsat verdicts are cached too.
  EXPECT_FALSE(E.sat({N.Init, N.Bad}).has_value());
  EXPECT_FALSE(E.sat({N.Init, N.Bad}).has_value());
  EXPECT_FALSE(E.Aborted);
  EXPECT_EQ(E.Stats.SmtChecks, 2u);
  EXPECT_EQ(E.Stats.SmtCacheHits, 10u);

  // A cache hit replays the original model verbatim.
  auto M1 = E.sat({N.Init});
  auto M2 = E.sat({N.Init});
  ASSERT_TRUE(M1.has_value() && M2.has_value());
  EXPECT_EQ(M1->toString(C), M2->toString(C));

  // --no-incremental restores the fresh-solver path: no hits, one check
  // per call.
  SolverOptions Fresh;
  Fresh.NoIncremental = true;
  EngineContext E2(C, N, Fresh);
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(E2.sat({N.Init}).has_value());
  EXPECT_EQ(E2.Stats.SmtChecks, 3u);
  EXPECT_EQ(E2.Stats.SmtCacheHits, 0u);
}

TEST_F(EngineFixture, CancelFlagAborts) {
  std::atomic<bool> Flag{false};
  Opts.CancelFlag = &Flag;
  EngineContext E(C, N, Opts);
  EXPECT_FALSE(E.expired());
  EXPECT_TRUE(E.sat({N.Init}).has_value());
  Flag.store(true);
  EXPECT_TRUE(E.expired());
  EXPECT_TRUE(E.Aborted);
  EXPECT_FALSE(E.sat({N.Init}).has_value());
}

TEST_F(EngineFixture, DeadlineAborts) {
  Opts.TimeoutMs = 1; // Expires almost immediately.
  EngineContext E(C, N, Opts);
  // Spin until the millisecond passes (bounded by a 2 s safety net).
  auto Start = std::chrono::steady_clock::now();
  while (!E.expired() &&
         std::chrono::steady_clock::now() - Start < std::chrono::seconds(2))
    (void)E.sat({N.Init});
  EXPECT_TRUE(E.expired());
  EXPECT_TRUE(E.Aborted);
}

TEST_F(EngineFixture, ProjectionCountsCalls) {
  EngineContext E(C, N, Opts);
  auto M = E.sat({N.Init});
  ASSERT_TRUE(M.has_value());
  uint64_t Before = E.Stats.MbpCalls;
  TermRef P = E.project({}, N.Init, *M);
  EXPECT_TRUE(M->holds(C, P));
  EXPECT_EQ(E.Stats.MbpCalls, Before + 1);
}

TEST_F(EngineFixture, ConcatPreservesOrder) {
  std::vector<VarId> A{1, 2}, B{3};
  std::vector<VarId> R = EngineContext::concat(A, B);
  ASSERT_EQ(R.size(), 3u);
  EXPECT_EQ(R[0], 1u);
  EXPECT_EQ(R[2], 3u);
}
