//===- tests/ParserFuzzTest.cpp - Parser robustness -----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The parser is the one component that consumes attacker-controlled bytes,
// so its contract is strict: for ANY input, parseChc returns — Ok with a
// system, or a diagnostic — and never trips an internal assert or
// overflows the stack. These tests replay the checked-in crash corpus
// (tests/corpus/, every file a past abort or a round-trip form) and then
// hammer the parser with seed-deterministic mutations of valid systems.
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"
#include "testgen/Gen.h"
#include "testgen/TsGen.h"
#include "ts/Btor2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mucyc;

namespace {

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  EXPECT_TRUE(In.good()) << "cannot open " << P;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(MUCYC_TEST_CORPUS_DIR))
    if (Entry.path().extension() == ".smt2")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

//===----------------------------------------------------------------------===
// Corpus replay
//===----------------------------------------------------------------------===

// File name convention: ok-*.smt2 must parse, bad-*.smt2 must produce a
// diagnostic. Either way the process must survive — every bad-* file is a
// past crash (builder assert or unbounded recursion).
TEST(ParserFuzz, CorpusReplays) {
  std::vector<std::filesystem::path> Files = corpusFiles();
  ASSERT_FALSE(Files.empty()) << "corpus dir missing: " MUCYC_TEST_CORPUS_DIR;
  for (const auto &P : Files) {
    SCOPED_TRACE(P.filename().string());
    TermContext Ctx;
    ParseResult R = parseChc(Ctx, readFile(P));
    if (P.filename().string().rfind("ok-", 0) == 0) {
      EXPECT_TRUE(R.Ok) << R.Error;
    } else {
      EXPECT_FALSE(R.Ok);
      EXPECT_FALSE(R.Error.empty()) << "rejection must carry a diagnostic";
    }
  }
}

// Every successfully parsed corpus entry must survive a full print/parse
// round trip (the shrinker leans on this).
TEST(ParserFuzz, CorpusRoundTrips) {
  for (const auto &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    TermContext Ctx;
    ParseResult R = parseChc(Ctx, readFile(P));
    if (!R.Ok)
      continue;
    std::string Printed = printSmtLib(*R.System);
    TermContext Ctx2;
    ParseResult R2 = parseChc(Ctx2, Printed);
    ASSERT_TRUE(R2.Ok) << "printed form failed to re-parse: " << R2.Error
                       << "\n"
                       << Printed;
    EXPECT_EQ(R.System->numPreds(), R2.System->numPreds());
    EXPECT_EQ(R.System->clauses().size(), R2.System->clauses().size());
  }
}

//===----------------------------------------------------------------------===
// Deterministic random mutation
//===----------------------------------------------------------------------===

std::string mutate(Rng &R, const std::string &Text) {
  std::string Out = Text;
  switch (R.below(5)) {
  case 0: // Truncate.
    Out.resize(R.below(Out.size() + 1));
    break;
  case 1: { // Flip one byte to a random printable character.
    if (Out.empty())
      break;
    Out[R.below(Out.size())] = static_cast<char>(' ' + R.below(95));
    break;
  }
  case 2: { // Delete a chunk.
    if (Out.empty())
      break;
    size_t Start = R.below(Out.size());
    size_t Len = 1 + R.below(16);
    Out.erase(Start, Len);
    break;
  }
  case 3: { // Duplicate a chunk (unbalances parentheses nicely).
    if (Out.empty())
      break;
    size_t Start = R.below(Out.size());
    size_t Len = std::min<size_t>(1 + R.below(16), Out.size() - Start);
    Out.insert(Start, Out.substr(Start, Len));
    break;
  }
  case 4: { // Splice in a token that stresses the operator table.
    static const char *Tokens[] = {"true",  "1.5", "(",  ")",   "x",
                                   "(not",  "|",   "_",  "and", "divisible",
                                   "(/ 1.0", "0",  "1.2.3", "-7", "."};
    size_t Start = R.below(Out.size() + 1);
    Out.insert(Start, Tokens[R.below(std::size(Tokens))]);
    break;
  }
  }
  return Out;
}

// 300 mutants of generated systems: the parser must return on all of them,
// and anything it accepts must survive printing and re-parsing.
TEST(ParserFuzz, MutatedInputsNeverCrash) {
  for (uint64_t I = 0; I < 60; ++I) {
    Rng R(Rng::deriveSeed(0xF00D, I));
    TermContext GenCtx;
    GenKnobs Knobs;
    ChcSystem Sys = genLinearChc(GenCtx, R, Knobs);
    std::string Text = printSmtLib(Sys);
    for (unsigned M = 0; M < 5; ++M) {
      std::string Mutant = mutate(R, Text);
      SCOPED_TRACE("seed=" + std::to_string(I) + " mutant=" +
                   std::to_string(M));
      TermContext Ctx;
      ParseResult PR = parseChc(Ctx, Mutant);
      if (!PR.Ok) {
        EXPECT_FALSE(PR.Error.empty());
        continue;
      }
      std::string Printed = printSmtLib(*PR.System);
      TermContext Ctx2;
      ParseResult PR2 = parseChc(Ctx2, Printed);
      EXPECT_TRUE(PR2.Ok) << "accepted mutant failed to round-trip: "
                          << PR2.Error;
    }
  }
}

//===----------------------------------------------------------------------===
// BTOR2 frontend robustness
//===----------------------------------------------------------------------===

/// BTOR2-flavored splice mutation: the structural cases above plus tokens
/// that stress the node table (dangling ids, wrong-arity operators, huge
/// widths, liveness directives, sort keywords mid-line).
std::string mutateBtor2(Rng &R, const std::string &Text) {
  if (R.oneIn(2))
    return mutate(R, Text); // Generic byte-level damage.
  std::string Out = Text;
  static const char *Tokens[] = {"999",     " -3 ",   "sort",    "bitvec",
                                 " 65 ",    "state",  "init",    "mul",
                                 "fair",    "slice",  "concat",  " int ",
                                 "constd",  " ; x\n", "\n0 bad 1\n"};
  size_t Start = R.below(Out.size() + 1);
  Out.insert(Start, Tokens[R.below(std::size(Tokens))]);
  return Out;
}

// Mutants of generated transition systems: parseBtor2 must return on every
// one of them — Ok or a "line N:" diagnostic, never an assert, never an
// uncaught exception — and anything it accepts must survive the
// token-level print/parse round trip.
TEST(ParserFuzz, MutatedBtor2NeverCrashes) {
  for (uint64_t I = 0; I < 60; ++I) {
    Rng R(Rng::deriveSeed(0xB7012, I));
    Btor2Program Prog = genBtor2(R, TsGenKnobs{});
    std::string Text = printBtor2(Prog);
    for (unsigned M = 0; M < 5; ++M) {
      std::string Mutant = mutateBtor2(R, Text);
      SCOPED_TRACE("seed=" + std::to_string(I) + " mutant=" +
                   std::to_string(M));
      TermContext Ctx;
      Btor2Result BR = parseBtor2(Ctx, Mutant);
      if (!BR.Ok) {
        EXPECT_FALSE(BR.Error.empty());
        continue;
      }
      std::string Printed = printBtor2(BR.Program);
      TermContext Ctx2;
      Btor2Result BR2 = parseBtor2(Ctx2, Printed);
      EXPECT_TRUE(BR2.Ok) << "accepted mutant failed to round-trip: "
                          << BR2.Error;
    }
  }
}

// Pathological nesting must yield a diagnostic, not a stack overflow.
TEST(ParserFuzz, DeepNestingIsRejected) {
  std::string Text = "(set-logic HORN)\n(assert ";
  for (int I = 0; I < 100000; ++I)
    Text += "(and ";
  Text += "true";
  for (int I = 0; I < 100000; ++I)
    Text += ")";
  Text += ")\n";
  TermContext Ctx;
  ParseResult R = parseChc(Ctx, Text);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("nesting"), std::string::npos) << R.Error;
}

// The generators' whole output space must round-trip: rational Real
// coefficients print as (/ a b) and divides atoms as ((_ divisible d) t),
// both of which the parser must accept back.
TEST(ParserFuzz, GeneratedSystemsRoundTrip) {
  for (uint64_t I = 0; I < 40; ++I) {
    Rng R(Rng::deriveSeed(0xBEEF, I));
    TermContext Ctx;
    GenKnobs Knobs;
    Knobs.RealChc = I % 2 == 1;
    ChcSystem Sys = genLinearChc(Ctx, R, Knobs);
    std::string Text = printSmtLib(Sys);
    TermContext Ctx2;
    ParseResult PR = parseChc(Ctx2, Text);
    ASSERT_TRUE(PR.Ok) << "seed " << I << ": " << PR.Error << "\n" << Text;
    EXPECT_EQ(Sys.numPreds(), PR.System->numPreds());
    EXPECT_EQ(Sys.clauses().size(), PR.System->clauses().size());
  }
}

} // namespace
