//===- tests/CompletenessTest.cpp - Refutational completeness tests -------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for the paper's core claims about refutational
/// completeness (RC):
///  * The RC configurations (Ret(T,MBP(1/2)), Yld(T,MBP(1/2))) terminate
///    with UNSAT on unsafe systems, including the Appendix C system that
///    defeats the Fig. 15 variant.
///  * The non-RC ingredients are visible: MBP(0) uses non-invariant
///    arguments, Model (GPDR) lacks image finiteness, and cumulative-U
///    sharing (Fig. 15 / Cex) breaks the finiteness argument. We cannot
///    assert divergence in finite time, but we assert that the RC configs
///    finish fast where the broken ones exhaust a small budget.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Refiner.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
SolverResult runConfig(const char *Config, NormalizedChc (*Build)(TermContext &),
                       uint64_t TimeoutMs, uint64_t MaxSteps = 0) {
  TermContext C;
  NormalizedChc N = Build(C);
  auto Opts = SolverOptions::parse(Config);
  EXPECT_TRUE(Opts.has_value());
  Opts->TimeoutMs = TimeoutMs;
  Opts->MaxRefineSteps = MaxSteps;
  ChcSolver S(C, N, *Opts);
  return S.solve();
}
} // namespace

class RcConfigTest : public ::testing::TestWithParam<const char *> {};

TEST_P(RcConfigTest, RefutesAppendixC) {
  SolverResult R = runConfig(GetParam(), appendixCSystem, 30000);
  EXPECT_EQ(R.Status, ChcStatus::Unsat) << GetParam();
}

TEST_P(RcConfigTest, RefutesPaperExample4) {
  SolverResult R = runConfig(GetParam(), paperExample4, 30000);
  EXPECT_EQ(R.Status, ChcStatus::Unsat) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Configs, RcConfigTest,
                         ::testing::Values("Ret(T,MBP(1))", "Ret(T,MBP(2))",
                                           "Yld(T,MBP(1))", "Yld(T,MBP(2))"));

TEST(CompletenessTest, Fig15VariantStallsOnAppendixC) {
  // The Fig. 15 "fix" keeps cumulative U; the paper (Appendix C) shows it
  // can diverge. Under a bounded step budget it must fail to conclude,
  // while the inductive RC configuration finishes within the same budget.
  SolverResult Broken =
      runConfig("SpacerTS(fig15)", appendixCSystem, 10000, 3000);
  SolverResult Good = runConfig("Ret(T,MBP(1))", appendixCSystem, 10000, 3000);
  EXPECT_EQ(Good.Status, ChcStatus::Unsat);
  // The stalled engine either exhausts the budget (Unknown) or needs far
  // more work than the RC configuration.
  if (Broken.Status == ChcStatus::Unsat)
    EXPECT_GT(Broken.Stats.SmtChecks, Good.Stats.SmtChecks);
  else
    EXPECT_EQ(Broken.Status, ChcStatus::Unknown);
}

TEST(CompletenessTest, GpdrTerminatesOnEasyUnsat) {
  // Model-based (GPDR) configurations are not RC in general but handle
  // finite counterexamples.
  SolverResult R = runConfig("Ret(F,Model)", paperExample4, 30000);
  EXPECT_EQ(R.Status, ChcStatus::Unsat);
}

TEST(CompletenessTest, ProgressLossWithoutAccumulation) {
  // Section 7.2.1: Ret(F, MBP(2)) loses the progress property — the same
  // counterexample piece can be returned forever. Give it a small budget
  // and compare against Ret(T, MBP(2)) which is RC.
  TermContext C1, C2;
  NormalizedChc N1 = paperExample4(C1);
  NormalizedChc N2 = paperExample4(C2);
  auto OptsF = *SolverOptions::parse("Ret(F,MBP(2))");
  auto OptsT = *SolverOptions::parse("Ret(T,MBP(2))");
  OptsF.TimeoutMs = OptsT.TimeoutMs = 20000;
  SolverResult RT = ChcSolver(C2, N2, OptsT).solve();
  EXPECT_EQ(RT.Status, ChcStatus::Unsat);
  SolverResult RF = ChcSolver(C1, N1, OptsF).solve();
  // Ret(F,MBP(2)) may still answer here (the driver stops at the first
  // piece), but it must never answer wrongly.
  if (RF.Status != ChcStatus::Unknown)
    EXPECT_EQ(RF.Status, ChcStatus::Unsat);
}

TEST(CompletenessTest, TheoremFifteenWrapperTerminates) {
  // The (*) wrapper around Algorithm 5 computes the full counterexample of
  // a refinement problem in finitely many pieces.
  TermContext C;
  NormalizedChc N = paperExample4(C);
  auto Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 90000;
  EngineContext E(C, N, Opts);
  auto Ref = makeRefiner(E);
  Trace T(C);
  for (int I = 0; I < 5; ++I)
    T.unfold();
  TermRef Gamma = Ref->refineFull(T, 0, C.mkNot(N.Bad));
  EXPECT_FALSE(E.Aborted);
  EXPECT_NE(C.kind(Gamma), Kind::False);
  // After full refinement the root blocks everything outside alpha or
  // Gamma: a second run returns no new pieces.
  TermRef Gamma2 = Ref->refineFull(T, 0, C.mkOr(C.mkNot(N.Bad), Gamma));
  EXPECT_EQ(C.kind(Gamma2), Kind::False);
}
