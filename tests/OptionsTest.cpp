//===- tests/OptionsTest.cpp - Configuration naming tests -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Options.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(OptionsTest, PaperNames) {
  SolverOptions O;
  O.Engine = EngineKind::Ret;
  O.Accumulate = true;
  O.Cex = CexMethod::Mbp;
  O.MbpMode = 1;
  EXPECT_EQ(O.name(), "Ret(T,MBP(1))");
  O.Accumulate = false;
  O.MbpMode = 0;
  EXPECT_EQ(O.name(), "Ret(F,MBP(0))");
  O.Cex = CexMethod::Model;
  EXPECT_EQ(O.name(), "Ret(F,Model)");
  O.Engine = EngineKind::Yld;
  O.QueryWeaken = true;
  O.Cex = CexMethod::Mbp;
  O.MbpMode = 2;
  EXPECT_EQ(O.name(), "Yld(T,MBP(2))");
  O.OptInduction = true;
  EXPECT_EQ(O.name(), "Ind(Yld(T,MBP(2)))");
  O.OptCexShare = true;
  O.OptMonotone = true;
  EXPECT_EQ(O.name(), "Ind(Cex(Mon(Yld(T,MBP(2)))))");
}

TEST(OptionsTest, ParseRoundTrip) {
  const char *Names[] = {
      "Ret(F,Model)",  "Ret(T,Model)",  "Ret(F,MBP(0))", "Ret(T,MBP(0))",
      "Ret(F,MBP(1))", "Ret(T,MBP(1))", "Ret(F,MBP(2))", "Ret(T,MBP(2))",
      "Yld(F,Model)",  "Yld(T,Model)",  "Yld(F,MBP(0))", "Yld(T,MBP(0))",
      "Yld(F,MBP(1))", "Yld(T,MBP(1))", "Yld(F,MBP(2))", "Yld(T,MBP(2))",
      "Ind(Ret(F,MBP(0)))", "Cex(Ret(F,MBP(0)))", "Que(Ret(F,MBP(0)))",
      "Mon(Ret(F,MBP(0)))", "Ind(Yld(T,MBP(1)))", "Cex(Yld(T,MBP(1)))",
      "Que(Yld(T,MBP(1)))", "Mon(Yld(T,MBP(1)))", "Ret(F,QE)",
      "Solve",         "Naive",         "NaiveMbp"};
  for (const char *N : Names) {
    auto O = SolverOptions::parse(N);
    ASSERT_TRUE(O.has_value()) << N;
    EXPECT_EQ(O->name(), N);
  }
}

TEST(OptionsTest, ParseSpacerTs) {
  auto O = SolverOptions::parse("SpacerTS(fig1)");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Engine, EngineKind::SpacerTs);
  EXPECT_FALSE(O->SpacerFig15);
  auto O2 = SolverOptions::parse("SpacerTS(fig15)");
  ASSERT_TRUE(O2.has_value());
  EXPECT_TRUE(O2->SpacerFig15);
  auto O3 = SolverOptions::parse("SpacerTS(fig1,Ulev)");
  ASSERT_TRUE(O3.has_value());
  EXPECT_TRUE(O3->SpacerULevels);
}

TEST(OptionsTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SolverOptions::parse("Frobnicate").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(X,MBP(1))").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(T,MBP(7))").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(T,").has_value());
}

TEST(OptionsTest, MbpStrategyMapping) {
  SolverOptions O;
  O.Cex = CexMethod::Mbp;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::LazyProject);
  O.Cex = CexMethod::Model;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::ModelDiagram);
  O.Cex = CexMethod::Qe;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::FullQe);
}
