//===- tests/OptionsTest.cpp - Configuration naming tests -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Options.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mucyc;

TEST(OptionsTest, PaperNames) {
  SolverOptions O;
  O.Engine = EngineKind::Ret;
  O.Accumulate = true;
  O.Cex = CexMethod::Mbp;
  O.MbpMode = 1;
  EXPECT_EQ(O.name(), "Ret(T,MBP(1))");
  O.Accumulate = false;
  O.MbpMode = 0;
  EXPECT_EQ(O.name(), "Ret(F,MBP(0))");
  O.Cex = CexMethod::Model;
  EXPECT_EQ(O.name(), "Ret(F,Model)");
  O.Engine = EngineKind::Yld;
  O.QueryWeaken = true;
  O.Cex = CexMethod::Mbp;
  O.MbpMode = 2;
  EXPECT_EQ(O.name(), "Yld(T,MBP(2))");
  O.OptInduction = true;
  EXPECT_EQ(O.name(), "Ind(Yld(T,MBP(2)))");
  O.OptCexShare = true;
  O.OptMonotone = true;
  EXPECT_EQ(O.name(), "Ind(Cex(Mon(Yld(T,MBP(2)))))");
}

TEST(OptionsTest, ParseRoundTrip) {
  const char *Names[] = {
      "Ret(F,Model)",  "Ret(T,Model)",  "Ret(F,MBP(0))", "Ret(T,MBP(0))",
      "Ret(F,MBP(1))", "Ret(T,MBP(1))", "Ret(F,MBP(2))", "Ret(T,MBP(2))",
      "Yld(F,Model)",  "Yld(T,Model)",  "Yld(F,MBP(0))", "Yld(T,MBP(0))",
      "Yld(F,MBP(1))", "Yld(T,MBP(1))", "Yld(F,MBP(2))", "Yld(T,MBP(2))",
      "Ind(Ret(F,MBP(0)))", "Cex(Ret(F,MBP(0)))", "Que(Ret(F,MBP(0)))",
      "Mon(Ret(F,MBP(0)))", "Ind(Yld(T,MBP(1)))", "Cex(Yld(T,MBP(1)))",
      "Que(Yld(T,MBP(1)))", "Mon(Yld(T,MBP(1)))", "Ret(F,QE)",
      "Solve",         "Naive",         "NaiveMbp"};
  for (const char *N : Names) {
    auto O = SolverOptions::parse(N);
    ASSERT_TRUE(O.has_value()) << N;
    EXPECT_EQ(O->name(), N);
  }
}

TEST(OptionsTest, ParseSpacerTs) {
  auto O = SolverOptions::parse("SpacerTS(fig1)");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Engine, EngineKind::SpacerTs);
  EXPECT_FALSE(O->SpacerFig15);
  auto O2 = SolverOptions::parse("SpacerTS(fig15)");
  ASSERT_TRUE(O2.has_value());
  EXPECT_TRUE(O2->SpacerFig15);
  auto O3 = SolverOptions::parse("SpacerTS(fig1,Ulev)");
  ASSERT_TRUE(O3.has_value());
  EXPECT_TRUE(O3->SpacerULevels);
}

TEST(OptionsTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SolverOptions::parse("Frobnicate").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(X,MBP(1))").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(T,MBP(7))").has_value());
  EXPECT_FALSE(SolverOptions::parse("Ret(T,").has_value());
}

TEST(OptionsTest, MbpStrategyMapping) {
  SolverOptions O;
  O.Cex = CexMethod::Mbp;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::LazyProject);
  O.Cex = CexMethod::Model;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::ModelDiagram);
  O.Cex = CexMethod::Qe;
  EXPECT_EQ(O.mbpStrategy(), MbpStrategy::FullQe);
}

//===----------------------------------------------------------------------===//
// Shared CLI flag layer (parseSolverOptions / CliOptions::toFlags)
//===----------------------------------------------------------------------===//

namespace {

/// Runs parseSolverOptions over a mutable argv built from \p Flags
/// (argv[0] = "tool"). Returns the leftover argv entries after compaction.
std::vector<std::string> parseFlags(const std::vector<std::string> &Flags,
                                    CliOptions &Out, std::string &Err,
                                    bool &Ok) {
  std::vector<std::string> Storage = Flags;
  std::vector<char *> Argv;
  static char Tool[] = "tool";
  Argv.push_back(Tool);
  for (std::string &S : Storage)
    Argv.push_back(S.data());
  int Argc = static_cast<int>(Argv.size());
  Ok = parseSolverOptions(Argc, Argv.data(), Out, Err);
  std::vector<std::string> Left;
  for (int I = 1; I < Argc; ++I)
    Left.push_back(Argv[I]);
  return Left;
}

} // namespace

TEST(OptionsTest, CliFlagsRoundTrip) {
  // toFlags() -> parseSolverOptions() must reproduce the CliOptions; this
  // is what keeps flag semantics identical across mucyc, mucyc-fuzz,
  // mucyc-serve and mucyc-client.
  CliOptions A;
  A.Config = "Ind(Yld(T,MBP(2)))";
  A.Jobs = 6;
  A.TimeoutMs = 2500;
  A.Opts = *SolverOptions::parse(A.Config);
  A.Opts.MemLimitMb = 512;
  A.Opts.MaxRetries = 3;
  A.Opts.MaxRefineSteps = 77;
  A.Opts.ChaosSeed = 9;
  A.Opts.NoIncremental = true;
  A.Opts.VerifyResult = true;

  std::vector<std::string> Flags = A.toFlags();
  CliOptions B;
  std::string Err;
  bool Ok = false;
  std::vector<std::string> Left = parseFlags(Flags, B, Err, Ok);
  ASSERT_TRUE(Ok) << Err;
  EXPECT_TRUE(Left.empty()); // Every flag is a shared flag.

  EXPECT_EQ(B.Config, A.Config);
  EXPECT_EQ(B.Jobs, A.Jobs);
  EXPECT_EQ(B.TimeoutMs, A.TimeoutMs);
  EXPECT_EQ(B.Opts.name(), A.Opts.name());
  EXPECT_EQ(B.Opts.MemLimitMb, A.Opts.MemLimitMb);
  EXPECT_EQ(B.Opts.MaxRetries, A.Opts.MaxRetries);
  EXPECT_EQ(B.Opts.MaxRefineSteps, A.Opts.MaxRefineSteps);
  EXPECT_EQ(B.Opts.ChaosSeed, A.Opts.ChaosSeed);
  EXPECT_EQ(B.Opts.NoIncremental, A.Opts.NoIncremental);
  EXPECT_EQ(B.Opts.VerifyResult, A.Opts.VerifyResult);
  // And the re-emitted flags are identical — a full fixpoint.
  EXPECT_EQ(B.toFlags(), Flags);
}

TEST(OptionsTest, CliDefaultsEmitNoFlags) {
  CliOptions A;
  EXPECT_TRUE(A.toFlags().empty());
  CliOptions B;
  std::string Err;
  bool Ok = false;
  parseFlags({}, B, Err, Ok);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(B.Config, "Ret(T,MBP(1))");
  EXPECT_EQ(B.TimeoutMs, 600000u);
  EXPECT_EQ(B.Jobs, 0u);
}

TEST(OptionsTest, CliLeavesUnrecognizedFlagsInPlace) {
  CliOptions B;
  std::string Err;
  bool Ok = false;
  std::vector<std::string> Left = parseFlags(
      {"--portfolio", "Solve,Naive", "--jobs", "2", "pos.smt2"}, B, Err, Ok);
  ASSERT_TRUE(Ok) << Err;
  EXPECT_EQ(B.Jobs, 2u);
  ASSERT_EQ(Left.size(), 3u); // Compacted in order, holes closed.
  EXPECT_EQ(Left[0], "--portfolio");
  EXPECT_EQ(Left[1], "Solve,Naive");
  EXPECT_EQ(Left[2], "pos.smt2");
}

TEST(OptionsTest, CliErrorsAreTyped) {
  CliOptions B;
  std::string Err;
  bool Ok = true;
  parseFlags({"--config"}, B, Err, Ok);
  EXPECT_FALSE(Ok);
  EXPECT_NE(Err.find("needs a value"), std::string::npos) << Err;

  Err.clear();
  parseFlags({"--config", "NoSuchEngine"}, B, Err, Ok);
  EXPECT_FALSE(Ok);
  EXPECT_NE(Err.find("unknown configuration"), std::string::npos) << Err;

  Err.clear();
  parseFlags({"--timeout-ms"}, B, Err, Ok);
  EXPECT_FALSE(Ok);
  EXPECT_NE(Err.find("--timeout-ms"), std::string::npos) << Err;
}
