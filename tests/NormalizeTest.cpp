//===- tests/NormalizeTest.cpp - Normalization to the paper's form --------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Normalize.h"

#include "chc/Parser.h"
#include "solver/ChcSolve.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
/// Solves a textual system end to end through normalization and checks the
/// status; for Sat also verifies the lifted per-predicate solution.
void expectStatus(const std::string &Horn, ChcStatus Expected) {
  TermContext C;
  ParseResult R = parseChc(C, Horn);
  ASSERT_TRUE(R.Ok) << R.Error;
  SolverOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VerifyResult = true;
  ChcSolution Sol;
  SolverResult Res = solveChcSystem(*R.System, Opts, /*Preprocess=*/false,
                                    &Sol);
  EXPECT_EQ(Res.Status, Expected);
  if (Res.Status == ChcStatus::Sat && Expected == ChcStatus::Sat)
    EXPECT_TRUE(R.System->checkSolution(Sol));
}
} // namespace

TEST(NormalizeTest, SinglePredicateLinearSat) {
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (<= 0 x) (<= x 1)) (P x))))
(assert (forall ((x Int) (y Int))
  (=> (and (P x) (< x 3) (= y (+ x 1))) (P y))))
(assert (forall ((x Int)) (=> (and (P x) (> x 10)) false)))
)",
               ChcStatus::Sat);
}

TEST(NormalizeTest, SinglePredicateLinearUnsat) {
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (P x))))
(assert (forall ((x Int) (y Int)) (=> (and (P x) (= y (+ x 1))) (P y))))
(assert (forall ((x Int)) (=> (and (P x) (= x 4)) false)))
)",
               ChcStatus::Unsat);
}

TEST(NormalizeTest, TwoPredicates) {
  expectStatus(R"((set-logic HORN)
(declare-fun A (Int) Bool)
(declare-fun B (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (A x))))
(assert (forall ((x Int) (y Int))
  (=> (and (A x) (< x 2) (= y (+ x 1))) (B y))))
(assert (forall ((x Int)) (=> (B x) (A x))))
(assert (forall ((x Int)) (=> (and (A x) (> x 5)) false)))
)",
               ChcStatus::Sat); // A and B stay within [0, 2].
}

TEST(NormalizeTest, TwoPredicatesUnsat) {
  expectStatus(R"((set-logic HORN)
(declare-fun A (Int) Bool)
(declare-fun B (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (A x))))
(assert (forall ((x Int) (y Int)) (=> (and (A x) (= y (+ x 1))) (B y))))
(assert (forall ((x Int) (y Int)) (=> (and (B x) (= y (+ x 1))) (A y))))
(assert (forall ((x Int)) (=> (and (A x) (= x 4)) false)))
)",
               ChcStatus::Unsat);
}

TEST(NormalizeTest, NonlinearJoin) {
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((z Int)) (=> (= z 1) (P z))))
(assert (forall ((x Int) (y Int) (z Int))
  (=> (and (P x) (P y) (= z (+ x y))) (P z))))
(assert (forall ((z Int)) (=> (and (P z) (< z 1)) false)))
)",
               ChcStatus::Sat);
}

TEST(NormalizeTest, TernaryBodyFold) {
  // Three body atoms force an intermediate packing tag.
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((z Int)) (=> (= z 1) (P z))))
(assert (forall ((a Int) (b Int) (c Int) (z Int))
  (=> (and (P a) (P b) (P c) (= z (+ a (+ b c)))) (P z))))
(assert (forall ((z Int)) (=> (and (P z) (= z 3)) false)))
)",
               ChcStatus::Unsat); // 1+1+1 = 3 is derivable.
}

TEST(NormalizeTest, TernaryBodyFoldSat) {
  // Guarded ternary join: summands are capped at 2, so the reachable set
  // stays within [1, 6] and z = 10 is unreachable.
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((z Int)) (=> (= z 1) (P z))))
(assert (forall ((a Int) (b Int) (c Int) (z Int))
  (=> (and (P a) (P b) (P c) (<= a 2) (<= b 2) (<= c 2)
           (= z (+ a (+ b c)))) (P z))))
(assert (forall ((z Int)) (=> (and (P z) (= z 10)) false)))
)",
               ChcStatus::Sat);
}

TEST(NormalizeTest, MixedArityPredicates) {
  expectStatus(R"((set-logic HORN)
(declare-fun Pair (Int Int) Bool)
(declare-fun One (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (One x))))
(assert (forall ((x Int) (y Int)) (=> (and (One x) (= y x)) (Pair x y))))
(assert (forall ((x Int) (y Int)) (=> (and (Pair x y) (not (= x y))) false)))
)",
               ChcStatus::Sat);
}

TEST(NormalizeTest, GroundQueryUnsat) {
  expectStatus(R"((set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (P x))))
(assert false)
)",
               ChcStatus::Unsat);
}

TEST(NormalizeTest, BooleanArguments) {
  expectStatus(R"((set-logic HORN)
(declare-fun P (Bool Int) Bool)
(assert (forall ((b Bool) (x Int)) (=> (and b (= x 0)) (P b x))))
(assert (forall ((b Bool) (x Int) (y Int))
  (=> (and (P b x) (= y (+ x 1)) (<= y 3)) (P b y))))
(assert (forall ((b Bool) (x Int)) (=> (and (P b x) (not b)) false)))
)",
               ChcStatus::Sat);
}

TEST(NormalizeTest, FastPathMakeNormalized) {
  TermContext C;
  TermRef X = C.mkVar("fx", Sort::Int), Y = C.mkVar("fy", Sort::Int),
          Z = C.mkVar("fz", Sort::Int);
  NormalizedChc N = makeNormalized(
      C, {C.node(X).Var}, {C.node(Y).Var}, {C.node(Z).Var},
      C.mkEq(Z, C.mkIntConst(0)), C.mkEq(Z, C.mkAdd(X, C.mkIntConst(1))),
      C.mkLt(Z, C.mkIntConst(0)));
  // Renaming helpers.
  TermRef F = C.mkLe(Z, C.mkIntConst(5));
  EXPECT_EQ(N.zToX(C, F), C.mkLe(X, C.mkIntConst(5)));
  EXPECT_EQ(N.zToY(C, F), C.mkLe(Y, C.mkIntConst(5)));
}

TEST(NormalizeTest, LayoutSharesSlotsBySort) {
  TermContext C;
  ParseResult R = parseChc(C, R"((set-logic HORN)
(declare-fun A (Int) Bool)
(declare-fun B (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (A x))))
(assert (forall ((x Int)) (=> (A x) (B x))))
)");
  ASSERT_TRUE(R.Ok);
  NormalizeResult NR = normalize(*R.System);
  // Both unary Int predicates share the same slot; Z = [tag, one slot].
  EXPECT_EQ(NR.Sys.Z.size(), 2u);
  EXPECT_EQ(NR.Layout.at(0).Slots[0], NR.Layout.at(1).Slots[0]);
  EXPECT_NE(NR.Layout.at(0).Tag, NR.Layout.at(1).Tag);
}
