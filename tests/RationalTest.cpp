//===- tests/RationalTest.cpp - Rational and delta-rational tests ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using namespace mucyc;

TEST(RationalTest, Normalization) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(1, -2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, 7).den(), BigInt(1));
  EXPECT_TRUE(Rational(6, 3).isInt());
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(Rational(3, 7).inverse(), Rational(7, 3));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-5), Rational(0));
  EXPECT_EQ(Rational(1, 2).compare(Rational(2, 4)), 0);
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), BigInt(3));
  EXPECT_EQ(Rational(7, 2).ceil(), BigInt(4));
  EXPECT_EQ(Rational(-7, 2).floor(), BigInt(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), BigInt(-3));
  EXPECT_EQ(Rational(6).floor(), BigInt(6));
  EXPECT_EQ(Rational(6).ceil(), BigInt(6));
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::fromString("-12"), Rational(-12));
  EXPECT_EQ(Rational::fromString("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::fromString("2.5"), Rational(5, 2));
  EXPECT_EQ(Rational::fromString("-0.25"), Rational(-1, 4));
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(3, 4).toString(), "3/4");
  EXPECT_EQ(Rational(-3, 4).toString(), "-3/4");
  EXPECT_EQ(Rational(8, 4).toString(), "2");
}

TEST(DeltaRationalTest, Ordering) {
  DeltaRational A(Rational(1));                    // 1
  DeltaRational B(Rational(1), Rational(1));       // 1 + eps
  DeltaRational C(Rational(1), Rational(-1));      // 1 - eps
  DeltaRational D(Rational(2), Rational(-100));    // 2 - 100 eps
  EXPECT_LT(C, A);
  EXPECT_LT(A, B);
  EXPECT_LT(B, D); // Real part dominates.
}

TEST(DeltaRationalTest, ArithmeticAndMaterialize) {
  DeltaRational A(Rational(3), Rational(2));
  DeltaRational B(Rational(1), Rational(-1));
  DeltaRational S = A + B;
  EXPECT_EQ(S.real(), Rational(4));
  EXPECT_EQ(S.delta(), Rational(1));
  EXPECT_EQ((A - B).delta(), Rational(3));
  EXPECT_EQ((A * Rational(2)).real(), Rational(6));
  EXPECT_EQ(A.materialize(Rational(1, 4)), Rational(7, 2));
}

/// Field axioms on random values against double-checked identities.
class RationalPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RationalPropertyTest, FieldIdentities) {
  std::mt19937 Rng(GetParam());
  auto Rnd = [&]() {
    int64_t N = static_cast<int64_t>(Rng() % 2001) - 1000;
    int64_t D = 1 + Rng() % 50;
    return Rational(N, D);
  };
  for (int I = 0; I < 300; ++I) {
    Rational A = Rnd(), B = Rnd(), C = Rnd();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A - A, Rational(0));
    if (!A.isZero())
      EXPECT_EQ(A * A.inverse(), Rational(1));
    // floor(a) <= a < floor(a) + 1.
    EXPECT_LE(Rational(A.floor()), A);
    EXPECT_LT(A, Rational(A.floor() + BigInt(1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(11u, 12u, 13u));

TEST(RationalTest, FromStringRaisesInputError) {
  // Malformed rationals raise typed InputError (PR-4 taxonomy), including
  // the zero-denominator case that previously hit a constructor assert.
  for (const char *Bad : {"", "3/0", "1/", "/2", "a/b", "1.2.3", "2x"}) {
    try {
      Rational::fromString(Bad);
      FAIL() << "fromString accepted '" << Bad << "'";
    } catch (const MucycError &E) {
      EXPECT_EQ(E.code(), ErrorCode::InputError) << Bad;
      EXPECT_FALSE(E.detail().empty());
    }
  }
}

TEST(RationalTest, SmallGcdLaneMatchesForcedHeap) {
  // The inline small-gcd normalization lane must agree with the heap
  // reference normalization on identical inputs.
  std::mt19937 Rng(21);
  for (int I = 0; I < 300; ++I) {
    int64_t N = static_cast<int64_t>(Rng() % 4000001) - 2000000;
    int64_t D = static_cast<int64_t>(Rng() % 4000000) - 2000000;
    if (D == 0)
      D = 7;
    Rational Fast(N, D);
    ScopedForceHeap FH(true);
    Rational Slow(N, D);
    EXPECT_EQ(Fast, Slow);
    EXPECT_EQ(Fast.hash(), Slow.hash());
    EXPECT_EQ(Fast.compare(Slow), 0);
    EXPECT_EQ(Fast.toString(), Slow.toString());
  }
}
