//===- tests/TestgenTest.cpp - Oracle and shrinker self-tests -------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The differential oracles are only trustworthy if they FIRE when a
// procedure is wrong, so these tests inject known bugs behind the
// OracleHooks fault hooks — a flipped MBP result, a truncated interpolant,
// a flipped engine verdict — and assert each oracle catches its bug, that
// the shrinker reduces the failing instance to a tiny SMT-LIB2 repro, and
// that the repro re-parses and re-fails. Plus determinism contracts: the
// same (seed, config) must reproduce byte-identical reports.
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"
#include "testgen/Fuzzer.h"
#include "testgen/Shrink.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {

//===----------------------------------------------------------------------===
// Determinism
//===----------------------------------------------------------------------===

TEST(Testgen, RngIsDeterministicAndStreamsDecorrelate) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  // SplitMix64 reference vector (seed 1234567, first output) from the
  // Steele/Lea/Flood reference implementation — pins the cross-platform
  // contract, not just self-consistency.
  Rng C(1234567);
  EXPECT_EQ(C.next(), 6457827717110365317ull);
  EXPECT_NE(Rng::deriveSeed(1, 0), Rng::deriveSeed(1, 1));
  EXPECT_NE(Rng::deriveSeed(1, 0), Rng::deriveSeed(2, 0));
}

TEST(Testgen, GeneratorsAreSeedDeterministic) {
  GenKnobs Knobs;
  for (uint64_t Seed : {0ull, 9ull, 12345ull}) {
    TermContext C1, C2;
    Rng R1(Seed), R2(Seed);
    std::string T1 = printSmtLib(genLinearChc(C1, R1, Knobs));
    std::string T2 = printSmtLib(genLinearChc(C2, R2, Knobs));
    EXPECT_EQ(T1, T2);
  }
  TermContext C1, C2;
  Rng R1(7), R2(8);
  EXPECT_NE(printSmtLib(genLinearChc(C1, R1, Knobs)),
            printSmtLib(genLinearChc(C2, R2, Knobs)));
}

TEST(Testgen, FuzzRunIsCleanAndByteIdentical) {
  FuzzConfig Cfg;
  Cfg.Seed = 5;
  Cfg.N = 24;
  FuzzReport A = runFuzz(Cfg);
  FuzzReport B = runFuzz(Cfg);
  EXPECT_TRUE(A.ok()) << A.summary(Cfg);
  EXPECT_EQ(A.summary(Cfg), B.summary(Cfg));
  EXPECT_EQ(A.Ran, Cfg.N);
}

//===----------------------------------------------------------------------===
// Injected bugs: direct oracle-level checks
//===----------------------------------------------------------------------===

TEST(Testgen, MbpOracleCatchesNegatedResult) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef Phi = C.mkAnd(C.mkEq(X, C.mkIntConst(3)), C.mkLe(Y, X));
  OracleHooks H;
  H.MangleMbp = [](TermContext &Ctx, TermRef Psi) { return Ctx.mkNot(Psi); };
  OracleOutcome O = checkMbpContract(C, Phi, {C.node(X).Var}, &H);
  ASSERT_TRUE(O.failed());
  EXPECT_EQ(O.Check, "mbp-model") << O.Detail;
}

TEST(Testgen, MbpOracleCatchesEliminatedVarLeak) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef Phi = C.mkAnd(C.mkEq(X, C.mkIntConst(3)), C.mkLe(Y, X));
  OracleHooks H;
  // x = 3 in every model of phi, so conjoining x >= 0 keeps the model and
  // the implication valid — only the vocabulary contract is violated.
  H.MangleMbp = [X](TermContext &Ctx, TermRef Psi) {
    return Ctx.mkAnd(Psi, Ctx.mkGe(X, Ctx.mkIntConst(0)));
  };
  OracleOutcome O = checkMbpContract(C, Phi, {C.node(X).Var}, &H);
  ASSERT_TRUE(O.failed());
  EXPECT_EQ(O.Check, "mbp-vars") << O.Detail;
}

TEST(Testgen, ItpOracleCatchesTruncatedInterpolant) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef A = C.mkLe(X, C.mkIntConst(0));
  std::vector<TermRef> Cube{C.mkGe(X, C.mkIntConst(5))};
  OracleHooks H;
  // "Truncated to nothing": the trivially-true interpolant satisfies
  // A => I but not I => B.
  H.MangleItp = [](TermContext &Ctx, TermRef) { return Ctx.mkTrue(); };
  OracleOutcome O = checkItpContract(C, A, Cube, &H);
  ASSERT_TRUE(O.failed());
  EXPECT_EQ(O.Check, "itp-i-implies-b") << O.Detail;
}

TEST(Testgen, ItpOracleCatchesVocabularyLeak) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  TermRef A = C.mkAnd(C.mkLe(X, C.mkIntConst(0)), C.mkEq(Y, C.mkIntConst(0)));
  std::vector<TermRef> Cube{C.mkGe(X, C.mkIntConst(5))};
  OracleHooks H;
  // Both implications hold but the interpolant mentions y, which is not a
  // variable of B = not(x >= 5).
  H.MangleItp = [X, Y](TermContext &Ctx, TermRef) {
    return Ctx.mkAnd(Ctx.mkLt(X, Ctx.mkIntConst(5)),
                     Ctx.mkEq(Y, Ctx.mkIntConst(0)));
  };
  OracleOutcome O = checkItpContract(C, A, Cube, &H);
  ASSERT_TRUE(O.failed());
  EXPECT_EQ(O.Check, "itp-vocab") << O.Detail;
}

TEST(Testgen, EngineOracleCatchesFlippedVerdict) {
  TermContext C;
  ChcSystem Sys(C);
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = C.mkVar("x", Sort::Int);
  // P(0); P(x) /\ x >= 1 => false — safe, so every engine answers Sat.
  Clause Fact;
  Fact.Constraint = C.mkEq(X, C.mkIntConst(0));
  Fact.Head = PredApp{P, {X}};
  Sys.addClause(std::move(Fact));
  Clause Query;
  Query.Constraint = C.mkGe(X, C.mkIntConst(1));
  Query.Body = {PredApp{P, {X}}};
  Sys.addClause(std::move(Query));

  EngineRaceKnobs Knobs;
  Knobs.RefineBudget = 100;
  EXPECT_FALSE(checkEngineAgreement(Sys, Knobs).failed());

  OracleHooks H;
  H.MangleEngine = [](size_t Member, ChcStatus S) {
    if (Member != 0)
      return S;
    return S == ChcStatus::Sat ? ChcStatus::Unsat : S;
  };
  OracleOutcome O = checkEngineAgreement(Sys, Knobs, &H);
  ASSERT_TRUE(O.failed());
  EXPECT_EQ(O.Check, "engine-disagree") << O.Detail;
}

//===----------------------------------------------------------------------===
// Shrinker
//===----------------------------------------------------------------------===

TEST(Testgen, ShrinkerDdminReducesClauseCount) {
  TermContext C;
  Rng R(Rng::deriveSeed(3, 0));
  GenKnobs Knobs;
  Knobs.Clauses = 10;
  std::string Text = printSmtLib(genLinearChc(C, R, Knobs));
  // Pseudo-oracle: "fails" while at least 3 clauses remain. ddmin must
  // bottom out at exactly 3.
  ShrinkStats Stats;
  std::string Small = shrinkChc(
      Text, [](ChcSystem &S) { return S.clauses().size() >= 3; }, 2000,
      &Stats);
  TermContext C2;
  ParseResult PR = parseChc(C2, Small);
  ASSERT_TRUE(PR.Ok) << PR.Error;
  EXPECT_EQ(PR.System->clauses().size(), 3u);
  EXPECT_GT(Stats.Accepted, 0u);
}

/// Shared tail for the end-to-end injected-bug tests: every violation's
/// shrunk repro must re-parse, be small, and re-fail the same check.
void expectMinimalRefailingRepros(const FuzzReport &Rep,
                                  const FuzzConfig &Cfg,
                                  const OracleHooks &H,
                                  const std::string &Domain) {
  ASSERT_FALSE(Rep.ok()) << "injected bug was not caught";
  for (const FuzzViolation &V : Rep.Violations) {
    SCOPED_TRACE("instance " + std::to_string(V.Instance));
    EXPECT_EQ(V.Domain, Domain);
    TermContext Ctx;
    ParseResult PR = parseChc(Ctx, V.Repro);
    ASSERT_TRUE(PR.Ok) << "repro does not re-parse: " << PR.Error;
    EXPECT_LE(PR.System->clauses().size(), 8u);
    // Re-run the domain's oracle on the parsed repro: it must re-fail with
    // the same check tag.
    OracleOutcome O;
    if (Domain == "mbp") {
      std::vector<TermRef> Qs;
      for (const Clause &Cl : PR.System->clauses())
        if (Cl.isQuery())
          Qs.push_back(Cl.Constraint);
      ASSERT_EQ(Qs.size(), 1u);
      std::vector<VarId> Elim;
      for (VarId Var : Ctx.freeVars(Qs[0]))
        if (Ctx.varInfo(Var).Name.rfind("pe", 0) == 0)
          Elim.push_back(Var);
      O = checkMbpContract(Ctx, Qs[0], Elim, &H);
    } else if (Domain == "itp") {
      std::vector<TermRef> Qs;
      for (const Clause &Cl : PR.System->clauses())
        if (Cl.isQuery())
          Qs.push_back(Cl.Constraint);
      ASSERT_EQ(Qs.size(), 2u);
      std::vector<TermRef> Lits = Ctx.kind(Qs[1]) == Kind::And
                                      ? Ctx.node(Qs[1]).Kids
                                      : std::vector<TermRef>{Qs[1]};
      O = checkItpContract(Ctx, Qs[0], Lits, &H);
    } else if (Domain == "inc") {
      std::vector<TermRef> Qs;
      for (const Clause &Cl : PR.System->clauses())
        if (Cl.isQuery())
          Qs.push_back(Cl.Constraint);
      O = checkIncrementalScript(Ctx, Qs, &H);
    } else {
      O = checkEngineAgreement(*PR.System, Cfg.Race, &H);
    }
    EXPECT_TRUE(O.failed()) << "shrunk repro no longer fails";
    EXPECT_EQ(O.Check, V.Check);
  }
}

TEST(Testgen, InjectedMbpBugYieldsMinimalRepro) {
  OracleHooks H;
  H.MangleMbp = [](TermContext &Ctx, TermRef Psi) { return Ctx.mkNot(Psi); };
  FuzzConfig Cfg;
  Cfg.Seed = 11;
  Cfg.N = 6;
  Cfg.Domains = {false, true, false, false, false};
  Cfg.ShrinkAttempts = 200;
  FuzzReport Rep = runFuzz(Cfg, &H);
  expectMinimalRefailingRepros(Rep, Cfg, H, "mbp");
}

TEST(Testgen, InjectedItpBugYieldsMinimalRepro) {
  OracleHooks H;
  H.MangleItp = [](TermContext &Ctx, TermRef) { return Ctx.mkTrue(); };
  FuzzConfig Cfg;
  Cfg.Seed = 13;
  Cfg.N = 10;
  Cfg.Domains = {false, false, true, false, false};
  Cfg.ShrinkAttempts = 200;
  FuzzReport Rep = runFuzz(Cfg, &H);
  expectMinimalRefailingRepros(Rep, Cfg, H, "itp");
}

TEST(Testgen, InjectedEngineBugYieldsMinimalRepro) {
  OracleHooks H;
  H.MangleEngine = [](size_t Member, ChcStatus S) {
    if (Member != 0)
      return S;
    if (S == ChcStatus::Sat)
      return ChcStatus::Unsat;
    if (S == ChcStatus::Unsat)
      return ChcStatus::Sat;
    return S;
  };
  FuzzConfig Cfg;
  Cfg.Seed = 17;
  Cfg.N = 2;
  Cfg.Domains = {false, false, false, true, false};
  Cfg.Race.RefineBudget = 150;
  Cfg.ShrinkAttempts = 120;
  FuzzReport Rep = runFuzz(Cfg, &H);
  expectMinimalRefailingRepros(Rep, Cfg, H, "chc");
}

TEST(Testgen, InjectedIncBugYieldsMinimalRepro) {
  OracleHooks H;
  H.MangleIncVerdict = [](unsigned, SmtStatus S) {
    if (S == SmtStatus::Sat)
      return SmtStatus::Unsat;
    if (S == SmtStatus::Unsat)
      return SmtStatus::Sat;
    return S;
  };
  FuzzConfig Cfg;
  Cfg.Seed = 19;
  Cfg.N = 4;
  Cfg.Domains = {false, false, false, false, true};
  Cfg.ShrinkAttempts = 200;
  FuzzReport Rep = runFuzz(Cfg, &H);
  expectMinimalRefailingRepros(Rep, Cfg, H, "inc");
}

//===----------------------------------------------------------------------===
// Cross-mode differential: incremental backend vs. fresh solvers
//===----------------------------------------------------------------------===

// The incremental backend (solver pool + query cache) must be verdict-
// equivalent to the fresh-solver path: a fixed-seed chc suite run in both
// modes has to produce byte-identical per-instance consensus verdicts with
// zero oracle violations. scripts/ci.sh runs the full 500-instance version
// of this via mucyc-fuzz --verdicts; this keeps a fast copy in ctest.
TEST(Testgen, IncrementalAndFreshEnginesAgreeOnFixedSuite) {
  FuzzConfig Cfg;
  Cfg.Seed = 20240801;
  Cfg.N = 40;
  Cfg.Domains = {false, false, false, true, false};
  FuzzReport Inc = runFuzz(Cfg);
  Cfg.Race.NoIncremental = true;
  FuzzReport Fresh = runFuzz(Cfg);
  EXPECT_TRUE(Inc.ok()) << Inc.summary(Cfg);
  EXPECT_TRUE(Fresh.ok()) << Fresh.summary(Cfg);
  ASSERT_EQ(Inc.ChcVerdicts.size(), Cfg.N);
  EXPECT_EQ(Inc.ChcVerdicts, Fresh.ChcVerdicts);
}

// The arith domain's fast-vs-forced-heap differential must pass on the
// shipped tree for any seed (the frontier-biased trace is a pure function
// of the seed, so a failure here names a real representation bug), and
// the whole domain must run clean and deterministically through the fuzz
// loop. scripts/ci.sh runs the 200-instance version; this keeps a fast
// copy in ctest.
TEST(Testgen, ArithFastSlowDifferentialHoldsAcrossSeeds) {
  for (uint64_t Seed : {0ull, 1ull, 42ull, 0xfeedfaceull}) {
    OracleOutcome O = checkArithFastSlow(Seed);
    EXPECT_FALSE(O.failed()) << "seed " << Seed << ": " << O.Detail;
  }
  FuzzConfig Cfg;
  Cfg.Seed = 20240804;
  Cfg.N = 24;
  Cfg.Domains = FuzzDomains{};
  Cfg.Domains.Smt = Cfg.Domains.Mbp = Cfg.Domains.Itp = false;
  Cfg.Domains.Chc = Cfg.Domains.Inc = false;
  Cfg.Domains.Arith = true;
  FuzzReport A = runFuzz(Cfg);
  FuzzReport B = runFuzz(Cfg);
  EXPECT_TRUE(A.ok()) << A.summary(Cfg);
  EXPECT_EQ(A.Ran, Cfg.N);
  EXPECT_EQ(A.summary(Cfg), B.summary(Cfg));
}

} // namespace
