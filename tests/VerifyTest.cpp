//===- tests/VerifyTest.cpp - Ground-truth utility tests ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "chc/Chc.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(VerifyTest, BoundedReachGrowsMonotonically) {
  TermContext C;
  NormalizedChc N = paperExample4(C);
  TermRef Prev = boundedReach(C, N, 1);
  for (int K = 2; K <= 5; ++K) {
    TermRef Cur = boundedReach(C, N, K);
    EXPECT_TRUE(SmtSolver::implies(C, Prev, Cur));
    Prev = Cur;
  }
}

TEST(VerifyTest, BmcFindsKnownCounterexampleDepth) {
  TermContext C;
  NormalizedChc N = paperExample4(C);
  // 2 -> 1 -> -1 -> -5 -> -13: bad at derivation height 5.
  EXPECT_EQ(bmcStatus(C, N, 4), ChcStatus::Unknown);
  EXPECT_EQ(bmcStatus(C, N, 6), ChcStatus::Unsat);
}

TEST(VerifyTest, BmcConvergesOnFiniteSafeSystem) {
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  // counter_safe_3 converges exactly.
  NormalizedChc N = Suite[0].Build(C);
  EXPECT_EQ(bmcStatus(C, N, 12), ChcStatus::Sat);
}

TEST(VerifyTest, InvariantChecker) {
  TermContext C;
  NormalizedChc N = paperExample5(C);
  TermRef Z = C.varTerm(N.Z[0]);
  // 0 <= z is inductive and safe for x' = 2x from [2, 8] with bad z < -5.
  EXPECT_TRUE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(0))));
  // z >= 2 is not inductive (2*2=4 ok, but init 2 -> 4: still >= 2; in fact
  // z >= 2 IS inductive here: 2x >= 4 >= 2. Use a genuinely bad one:
  // z <= 100 is not inductive (128 -> 256 escapes... 8*2=16 <= 100, but
  // 64 -> 128 > 100).
  EXPECT_FALSE(verifyInvariant(C, N, C.mkLe(Z, C.mkIntConst(100))));
  // Unsafe invariant: true includes bad states.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkTrue()));
  // Non-initial invariant: z >= 5 misses iota.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(5))));
}

TEST(VerifyTest, CexPieceChecker) {
  // Cheap system: counter to 3 with bad state z = 3.
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  NormalizedChc N = Suite[1].Build(C); // counter_unsafe_3.
  TermRef Z = C.varTerm(N.Z[0]);
  // z = 3 is reachable and bad.
  EXPECT_TRUE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(3)), 6));
  // z = 2 is reachable but not bad.
  EXPECT_FALSE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(2)), 6));
  // z = -1 is bad-free and unreachable.
  EXPECT_FALSE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(-1)), 6));
  // Invalid piece.
  EXPECT_FALSE(verifyCexPiece(C, N, TermRef(), 6));
}

TEST(VerifyTest, CexPieceCheckerDeep) {
  // One expensive positive check on the paper's Example 4 dynamics.
  TermContext C;
  NormalizedChc N = paperExample4(C);
  TermRef Z = C.varTerm(N.Z[0]);
  EXPECT_TRUE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(-13)), 6));
}

// A failed verification must name the violated proof rule — the fuzzer's
// failure reports and --verify output are only actionable with the clause.
TEST(VerifyTest, InvariantDiagNamesViolatedClause) {
  TermContext C;
  NormalizedChc N = paperExample5(C); // z' = 2z from [2,8], bad z < -5.
  TermRef Z = C.varTerm(N.Z[0]);
  VerifyDiag D;

  // z >= 5 misses the initial state z = 2.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(5)), &D));
  EXPECT_EQ(D.Failed, VerifyDiag::Rule::InitClause);
  EXPECT_FALSE(D.Message.empty());

  // z <= 100 holds initially but 64 -> 128 escapes: step clause.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkLe(Z, C.mkIntConst(100)), &D));
  EXPECT_EQ(D.Failed, VerifyDiag::Rule::StepClause);

  // true is inductive but includes bad states: query clause.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkTrue(), &D));
  EXPECT_EQ(D.Failed, VerifyDiag::Rule::QueryClause);

  // A passing check leaves the rule at None.
  VerifyDiag Ok;
  EXPECT_TRUE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(0)), &Ok));
  EXPECT_EQ(Ok.Failed, VerifyDiag::Rule::None);

  EXPECT_STREQ(verifyRuleName(VerifyDiag::Rule::StepClause), "step-clause");
}

TEST(VerifyTest, CexPieceDiagNamesViolatedRule) {
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  VerifyDiag D;
  {
    // counter_unsafe_3: z = 2 is reachable but not bad.
    NormalizedChc N = Suite[1].Build(C);
    TermRef Z = C.varTerm(N.Z[0]);
    EXPECT_FALSE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(2)), 6, &D));
    EXPECT_EQ(D.Failed, VerifyDiag::Rule::NotBad);
    EXPECT_FALSE(D.Message.empty());
  }
  {
    // counter_safe_3: the bad region itself is never reachable, so the
    // piece intersects bad but misses every reach frame.
    NormalizedChc N = Suite[0].Build(C);
    EXPECT_FALSE(verifyCexPiece(C, N, C.mkTrue(), 6, &D));
    EXPECT_EQ(D.Failed, VerifyDiag::Rule::NotReachable);
  }
}

TEST(VerifyTest, CheckSolutionNamesOffendingClause) {
  TermContext C;
  ChcSystem Sys(C);
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = C.mkVar("x", Sort::Int);
  VarId XV = C.node(X).Var;
  // Clause #0: x = 0 => P(x).  Clause #1: P(x) => P(x + 1).
  Clause Fact;
  Fact.Constraint = C.mkEq(X, C.mkIntConst(0));
  Fact.Head = PredApp{P, {X}};
  Sys.addClause(std::move(Fact));
  Clause Step;
  Step.Constraint = C.mkTrue();
  Step.Body = {PredApp{P, {X}}};
  Step.Head = PredApp{P, {C.mkAdd(X, C.mkIntConst(1))}};
  Sys.addClause(std::move(Step));

  // P(x) := x <= 5 satisfies the fact but breaks the step at x = 5.
  ChcSolution Sol;
  Sol[P] = PredDef{{XV}, C.mkLe(X, C.mkIntConst(5))};
  std::string Why;
  EXPECT_FALSE(Sys.checkSolution(Sol, &Why));
  EXPECT_NE(Why.find("clause #1"), std::string::npos) << Why;
  EXPECT_NE(Why.find("P("), std::string::npos) << Why; // Clause text shown.

  // The genuine solution passes and leaves no diagnostic behind.
  Sol[P] = PredDef{{XV}, C.mkGe(X, C.mkIntConst(0))};
  EXPECT_TRUE(Sys.checkSolution(Sol, &Why));
}

TEST(VerifyTest, GroundTruthMatchesSuiteLabels) {
  // BMC agrees with the expected status on every small-suite instance that
  // it can decide within a modest bound.
  for (const BenchInstance &B : buildSmallSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    ChcStatus S = bmcStatus(C, N, 4);
    if (S != ChcStatus::Unknown)
      EXPECT_EQ(S, B.Expected) << B.Name;
  }
}
