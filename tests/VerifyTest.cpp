//===- tests/VerifyTest.cpp - Ground-truth utility tests ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(VerifyTest, BoundedReachGrowsMonotonically) {
  TermContext C;
  NormalizedChc N = paperExample4(C);
  TermRef Prev = boundedReach(C, N, 1);
  for (int K = 2; K <= 5; ++K) {
    TermRef Cur = boundedReach(C, N, K);
    EXPECT_TRUE(SmtSolver::implies(C, Prev, Cur));
    Prev = Cur;
  }
}

TEST(VerifyTest, BmcFindsKnownCounterexampleDepth) {
  TermContext C;
  NormalizedChc N = paperExample4(C);
  // 2 -> 1 -> -1 -> -5 -> -13: bad at derivation height 5.
  EXPECT_EQ(bmcStatus(C, N, 4), ChcStatus::Unknown);
  EXPECT_EQ(bmcStatus(C, N, 6), ChcStatus::Unsat);
}

TEST(VerifyTest, BmcConvergesOnFiniteSafeSystem) {
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  // counter_safe_3 converges exactly.
  NormalizedChc N = Suite[0].Build(C);
  EXPECT_EQ(bmcStatus(C, N, 12), ChcStatus::Sat);
}

TEST(VerifyTest, InvariantChecker) {
  TermContext C;
  NormalizedChc N = paperExample5(C);
  TermRef Z = C.varTerm(N.Z[0]);
  // 0 <= z is inductive and safe for x' = 2x from [2, 8] with bad z < -5.
  EXPECT_TRUE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(0))));
  // z >= 2 is not inductive (2*2=4 ok, but init 2 -> 4: still >= 2; in fact
  // z >= 2 IS inductive here: 2x >= 4 >= 2. Use a genuinely bad one:
  // z <= 100 is not inductive (128 -> 256 escapes... 8*2=16 <= 100, but
  // 64 -> 128 > 100).
  EXPECT_FALSE(verifyInvariant(C, N, C.mkLe(Z, C.mkIntConst(100))));
  // Unsafe invariant: true includes bad states.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkTrue()));
  // Non-initial invariant: z >= 5 misses iota.
  EXPECT_FALSE(verifyInvariant(C, N, C.mkGe(Z, C.mkIntConst(5))));
}

TEST(VerifyTest, CexPieceChecker) {
  // Cheap system: counter to 3 with bad state z = 3.
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  NormalizedChc N = Suite[1].Build(C); // counter_unsafe_3.
  TermRef Z = C.varTerm(N.Z[0]);
  // z = 3 is reachable and bad.
  EXPECT_TRUE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(3)), 6));
  // z = 2 is reachable but not bad.
  EXPECT_FALSE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(2)), 6));
  // z = -1 is bad-free and unreachable.
  EXPECT_FALSE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(-1)), 6));
  // Invalid piece.
  EXPECT_FALSE(verifyCexPiece(C, N, TermRef(), 6));
}

TEST(VerifyTest, CexPieceCheckerDeep) {
  // One expensive positive check on the paper's Example 4 dynamics.
  TermContext C;
  NormalizedChc N = paperExample4(C);
  TermRef Z = C.varTerm(N.Z[0]);
  EXPECT_TRUE(verifyCexPiece(C, N, C.mkEq(Z, C.mkIntConst(-13)), 6));
}

TEST(VerifyTest, GroundTruthMatchesSuiteLabels) {
  // BMC agrees with the expected status on every small-suite instance that
  // it can decide within a modest bound.
  for (const BenchInstance &B : buildSmallSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    ChcStatus S = bmcStatus(C, N, 4);
    if (S != ChcStatus::Unknown)
      EXPECT_EQ(S, B.Expected) << B.Name;
  }
}
