//===- tests/ExchangeTest.cpp - Cooperative lemma exchange ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative-portfolio lemma exchange, bottom to top: the bus's
/// dedup/self-filter/cursor semantics, publish with core-minimization,
/// import admission across two independent TermContexts (the serialized
/// wire format is the only thing that crosses), rejection of malformed and
/// unsound peer lemmas, both admission regimes (frame-relative placement
/// with deepest fallback, and Mon-style self-inductive conjoining), the
/// deletion-based minimizeCore contract, a concurrent publish/fetch stress
/// (the test the thread sanitizer leg watches), and a cooperative race
/// end to end.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "chc/Export.h"
#include "runtime/Exchange.h"
#include "runtime/Portfolio.h"
#include "solver/Share.h"

#include <gtest/gtest.h>

#include <thread>

using namespace mucyc;

namespace {

/// A counter system in normal form: z starts at 0, steps by one, and the
/// bad states are unreachable — small enough that every admission query in
/// these tests is decided instantly.
///
///   iota: z == 0,  tau: z == x + 1,  beta: z < 0.
NormalizedChc counterSystem(TermContext &C) {
  TermRef X = C.mkFreshVar("ex!x", Sort::Int);
  TermRef Y = C.mkFreshVar("ex!y", Sort::Int);
  TermRef Z = C.mkFreshVar("ex!z", Sort::Int);
  return makeNormalized(
      C, {C.node(X).Var}, {C.node(Y).Var}, {C.node(Z).Var},
      C.mkEq(Z, C.mkIntConst(0)), C.mkEq(Z, C.mkAdd(X, C.mkIntConst(1))),
      C.mkLt(Z, C.mkIntConst(0)));
}

TermRef zTerm(TermContext &C, const NormalizedChc &N) {
  return C.varTerm(N.Z[0]);
}

/// An engine context wired to \p Port with sharing on.
SolverOptions shareOpts(LemmaChannel *Port) {
  SolverOptions O;
  O.ShareLemmas = true;
  O.Share = Port;
  return O;
}

//===----------------------------------------------------------------------===
// The bus
//===----------------------------------------------------------------------===

TEST(ExchangeTest, BusDedupSelfFilterCursor) {
  LemmaExchange X(3);
  ASSERT_EQ(X.members(), 3u);

  X.port(0)->publish(1, "alpha");
  X.port(0)->publish(1, "alpha"); // Dedup: logged once, bus-wide.
  X.port(1)->publish(2, "beta");
  X.port(2)->publish(0, "alpha"); // Dedup even across members.
  EXPECT_EQ(X.size(), 2u);

  // A member never re-imports its own lemmas.
  std::vector<SharedLemma> Got;
  uint64_t Cur = X.port(0)->fetch(0, 100, Got);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Text, "beta");
  EXPECT_EQ(Got[0].Level, 2);

  // The cursor is monotone: re-fetching from the advanced cursor is empty,
  // from zero replays the log (a retried member re-reads everything).
  Got.clear();
  EXPECT_EQ(X.port(0)->fetch(Cur, 100, Got), Cur);
  EXPECT_TRUE(Got.empty());
  Got.clear();
  X.port(2)->fetch(0, 100, Got);
  ASSERT_EQ(Got.size(), 2u); // alpha (from 0) and beta (from 1).

  // Max caps one fetch; the advanced cursor resumes past what was taken.
  Got.clear();
  uint64_t Mid = X.port(2)->fetch(0, 1, Got);
  ASSERT_EQ(Got.size(), 1u);
  Got.clear();
  X.port(2)->fetch(Mid, 1, Got);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Text, "beta");
}

//===----------------------------------------------------------------------===
// Publish
//===----------------------------------------------------------------------===

TEST(ExchangeTest, PublishCoreMinimizesDisjuncts) {
  TermContext C;
  NormalizedChc N = counterSystem(C);
  LemmaExchange X(2);
  EngineContext E(C, N, shareOpts(X.port(0)));
  TermRef Z = zTerm(C, N);

  // iota => (z >= 0 \/ z == 7) is valid, but the second disjunct carries no
  // weight: the minimized publication must be z >= 0 alone.
  TermRef Strong = C.mkGe(Z, C.mkIntConst(0));
  TermRef Weak = C.mkEq(Z, C.mkIntConst(7));
  sharePublishLemma(E, 1, N.Init, C.mkOr(Strong, Weak));

  EXPECT_EQ(E.Stats.LemmasPublished, 1u);
  EXPECT_EQ(E.Stats.CoreShrink, 1u);
  EXPECT_GT(E.Stats.SmtChecks, 0u); // Minimization probes are accounted.

  std::vector<SharedLemma> Got;
  X.port(1)->fetch(0, 10, Got);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Level, 1);
  EXPECT_EQ(Got[0].Text, serializeZFormula(C, N, Strong));

  // Re-publishing the same lemma term is a no-op (per-run dedup).
  sharePublishLemma(E, 1, N.Init, C.mkOr(Strong, Weak));
  EXPECT_EQ(E.Stats.LemmasPublished, 1u);
  EXPECT_EQ(X.size(), 1u);
}

TEST(ExchangeTest, PublishIsNoOpWhenSharingOff) {
  TermContext C;
  NormalizedChc N = counterSystem(C);
  EngineContext E(C, N, SolverOptions());
  sharePublishLemma(E, 0, N.Init, C.mkGe(zTerm(C, N), C.mkIntConst(0)));
  EXPECT_EQ(E.Stats.LemmasPublished, 0u);
  EXPECT_EQ(E.Stats.SmtChecks, 0u);
}

//===----------------------------------------------------------------------===
// Import
//===----------------------------------------------------------------------===

TEST(ExchangeTest, RoundTripAcrossContextsAdmitsAtTargetLevel) {
  // Publisher and importer build the counter system in PRIVATE contexts:
  // only the alpha-canonical wire text crosses between them.
  TermContext CP, CI;
  NormalizedChc NP = counterSystem(CP), NI = counterSystem(CI);
  LemmaExchange X(2);
  EngineContext EP(CP, NP, shareOpts(X.port(0)));
  EngineContext EI(CI, NI, shareOpts(X.port(1)));

  TermRef L = CP.mkGe(zTerm(CP, NP), CP.mkIntConst(0));
  sharePublishLemma(EP, 1, NP.Init, L);
  ASSERT_EQ(X.size(), 1u);

  // The importer's frames already hold z >= 0 at every level, so the
  // justification (b) at the target level succeeds and the lemma lands at
  // its hinted level 1, not the deepest.
  TermRef LI = CI.mkGe(zTerm(CI, NI), CI.mkIntConst(0));
  std::vector<std::pair<int, TermRef>> Added;
  shareImportRound(
      EI, ShareImportMode::FrameRelative, /*Depth=*/2,
      [&](int) { return LI; },
      [&](int K, TermRef T) { Added.push_back({K, T}); });

  ASSERT_EQ(Added.size(), 1u);
  EXPECT_EQ(Added[0].first, 1);
  EXPECT_EQ(Added[0].second, LI); // Hash-consed: the same term in CI.
  EXPECT_EQ(EI.Stats.LemmasImported, 1u);
  EXPECT_EQ(EI.Stats.LemmasRejected, 0u);

  // A second round sees nothing new: the cursor advanced past the entry.
  shareImportRound(
      EI, ShareImportMode::FrameRelative, 2, [&](int) { return LI; },
      [&](int K, TermRef T) { Added.push_back({K, T}); });
  EXPECT_EQ(Added.size(), 1u);
}

TEST(ExchangeTest, WeakFramesFallBackToDeepestLevel) {
  TermContext CP, CI;
  NormalizedChc NP = counterSystem(CP), NI = counterSystem(CI);
  LemmaExchange X(2);
  EngineContext EP(CP, NP, shareOpts(X.port(0)));
  EngineContext EI(CI, NI, shareOpts(X.port(1)));

  sharePublishLemma(EP, 0, NP.Init,
                    CP.mkGe(zTerm(CP, NP), CP.mkIntConst(0)));

  // With trivial (True) frames the level-0 justification (b) fails — tau
  // alone does not imply z >= 0 — but (a) iota => L still holds, so the
  // lemma is admitted at the deepest level, which answers only to iota.
  std::vector<std::pair<int, TermRef>> Added;
  shareImportRound(
      EI, ShareImportMode::FrameRelative, /*Depth=*/2,
      [&](int) { return CI.mkTrue(); },
      [&](int K, TermRef T) { Added.push_back({K, T}); });

  ASSERT_EQ(Added.size(), 1u);
  EXPECT_EQ(Added[0].first, 2);
  EXPECT_EQ(EI.Stats.LemmasImported, 1u);
}

TEST(ExchangeTest, ImporterRejectsUnsoundAndMalformedLemmas) {
  TermContext CP, CI;
  NormalizedChc NP = counterSystem(CP), NI = counterSystem(CI);
  LemmaExchange X(2);
  EngineContext EI(CI, NI, shareOpts(X.port(1)));

  // A buggy (or lying) peer: one entry is not even well-formed, one is a
  // formula iota refutes (z == 0 does not give z >= 1). Neither may reach
  // the importer's frames, whatever level the publisher claimed.
  X.port(0)->publish(0, "(this is not a z-formula");
  X.port(0)->publish(0, serializeZFormula(
                            CP, NP, CP.mkGe(zTerm(CP, NP), CP.mkIntConst(1))));

  unsigned Adds = 0;
  shareImportRound(
      EI, ShareImportMode::FrameRelative, /*Depth=*/1,
      [&](int) { return CI.mkTrue(); }, [&](int, TermRef) { ++Adds; });

  EXPECT_EQ(Adds, 0u);
  EXPECT_EQ(EI.Stats.LemmasImported, 0u);
  EXPECT_EQ(EI.Stats.LemmasRejected, 2u);
}

TEST(ExchangeTest, InductiveModeAdmitsOnlySelfInductiveLemmas) {
  TermContext CP, CI;
  NormalizedChc NP = counterSystem(CP), NI = counterSystem(CI);
  LemmaExchange X(2);
  EngineContext EP(CP, NP, shareOpts(X.port(0)));
  EngineContext EI(CI, NI, shareOpts(X.port(1)));

  TermRef ZP = zTerm(CP, NP);
  // z >= 0 is inductive for z' = z + 1; z <= 5 holds initially but is not
  // (z == 5 steps to 6). Mon traces may only conjoin the former.
  sharePublishLemma(EP, 0, NP.Init, CP.mkGe(ZP, CP.mkIntConst(0)));
  sharePublishLemma(EP, 0, NP.Init, CP.mkLe(ZP, CP.mkIntConst(5)));
  ASSERT_EQ(X.size(), 2u);

  std::vector<std::pair<int, TermRef>> Added;
  shareImportRound(
      EI, ShareImportMode::Inductive, /*Depth=*/3,
      [&](int) { return CI.mkTrue(); },
      [&](int K, TermRef T) { Added.push_back({K, T}); });

  ASSERT_EQ(Added.size(), 1u);
  EXPECT_EQ(Added[0].first, 0); // Conjoined everywhere, flagged by level 0.
  EXPECT_EQ(Added[0].second, CI.mkGe(zTerm(CI, NI), CI.mkIntConst(0)));
  EXPECT_EQ(EI.Stats.LemmasImported, 1u);
  EXPECT_EQ(EI.Stats.LemmasRejected, 1u);
}

//===----------------------------------------------------------------------===
// minimizeCore
//===----------------------------------------------------------------------===

TEST(ExchangeTest, MinimizeCoreReturnsUnsatSubset) {
  TermContext C;
  TermRef V = C.mkFreshVar("mc!x", Sort::Int);
  SmtSolver S(C);
  S.assertFormula(C.mkGe(V, C.mkIntConst(10)));

  // {x < 0, x < 5, x < 100}: each of the first two alone contradicts the
  // assertion; the third does not. A minimal core is a single literal.
  std::vector<TermRef> As = {C.mkLt(V, C.mkIntConst(0)),
                             C.mkLt(V, C.mkIntConst(5)),
                             C.mkLt(V, C.mkIntConst(100))};
  unsigned Probes = 0;
  std::vector<TermRef> Core = S.minimizeCore(As, &Probes);
  ASSERT_EQ(Core.size(), 1u);
  EXPECT_GT(Probes, 0u);
  // Subset of the assumptions, and still unsat against the assertions.
  EXPECT_TRUE(Core[0] == As[0] || Core[0] == As[1]);
  SmtSolver S2(C);
  S2.assertFormula(C.mkGe(V, C.mkIntConst(10)));
  S2.assertFormula(Core[0]);
  EXPECT_EQ(S2.check(), SmtStatus::Unsat);
}

//===----------------------------------------------------------------------===
// Concurrency (the thread-sanitizer leg drives this test)
//===----------------------------------------------------------------------===

TEST(ExchangeTest, ConcurrentPublishFetchStress) {
  constexpr size_t Members = 4;
  constexpr size_t PerMember = 200;
  LemmaExchange X(Members);

  // Every member hammers publish and fetch simultaneously; distinct texts
  // per member, so dedup never merges across writers and the final counts
  // are exact. Interleaved fetches must only ever see other members'
  // entries and never an entry twice through one cursor.
  std::vector<size_t> Fetched(Members, 0);
  std::vector<uint64_t> Curs(Members, 0);
  std::vector<std::thread> Ts;
  for (size_t M = 0; M < Members; ++M)
    Ts.emplace_back([&, M] {
      std::vector<SharedLemma> Got;
      for (size_t I = 0; I < PerMember; ++I) {
        X.port(M)->publish(static_cast<int>(I),
                           "m" + std::to_string(M) + "#" + std::to_string(I));
        Got.clear();
        Curs[M] = X.port(M)->fetch(Curs[M], 8, Got);
        for (const SharedLemma &SL : Got) {
          EXPECT_NE(SL.Text.rfind("m" + std::to_string(M) + "#", 0), 0u);
          ++Fetched[M];
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(X.size(), Members * PerMember);
  // Drain what each member's cursor had not yet reached when its loop
  // ended (peers keep publishing after a fast member finishes), then the
  // exact count must hold: everything from everyone else, nothing twice.
  for (size_t M = 0; M < Members; ++M) {
    std::vector<SharedLemma> Got;
    Curs[M] = X.port(M)->fetch(Curs[M], Members * PerMember, Got);
    Fetched[M] += Got.size();
    EXPECT_EQ(Fetched[M], (Members - 1) * PerMember) << "member " << M;
  }
}

//===----------------------------------------------------------------------===
// End to end
//===----------------------------------------------------------------------===

TEST(ExchangeTest, CooperativeRaceAgreesWithGroundTruth) {
  // A full cooperative race through the runtime: verified answers only, and
  // sharing must not disturb the ground truth in either direction.
  auto Configs =
      parseConfigList("Ret(T,MBP(1)),Yld(T,MBP(1)),SpacerTS(fig1)");
  ASSERT_TRUE(Configs.has_value());
  for (SolverOptions &O : *Configs) {
    O.VerifyResult = true;
    O.ShareLemmas = true;
  }

  PortfolioResult Sat = racePortfolio(
      [](TermContext &C) { return paperExample5(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/20000);
  EXPECT_EQ(Sat.Winner.Status, ChcStatus::Sat);

  PortfolioResult Unsat = racePortfolio(
      [](TermContext &C) { return paperExample4(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/20000);
  EXPECT_EQ(Unsat.Winner.Status, ChcStatus::Unsat);

  // Imports never exceed what reached the bus times the reader count, and
  // the merged counters surface in the race result.
  EXPECT_LE(Sat.MergedStats.LemmasImported,
            Sat.SharedLemmas * (Configs->size() - 1));
  EXPECT_LE(Unsat.MergedStats.LemmasImported,
            Unsat.SharedLemmas * (Configs->size() - 1));
}

} // namespace
