//===- tests/SimplexTest.cpp - General simplex tests ----------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(SimplexTest, UnconstrainedIsFeasible) {
  Simplex S;
  S.addVar();
  EXPECT_TRUE(S.check());
}

TEST(SimplexTest, SimpleBounds) {
  Simplex S;
  auto X = S.addVar();
  EXPECT_TRUE(S.assertBound(X, true, DeltaRational(Rational(2)), 0));
  EXPECT_TRUE(S.assertBound(X, false, DeltaRational(Rational(5)), 1));
  EXPECT_TRUE(S.check());
  EXPECT_GE(S.value(X).real(), Rational(2));
  EXPECT_LE(S.value(X).real(), Rational(5));
}

TEST(SimplexTest, ImmediateBoundConflict) {
  Simplex S;
  auto X = S.addVar();
  EXPECT_TRUE(S.assertBound(X, true, DeltaRational(Rational(5)), 7));
  EXPECT_FALSE(S.assertBound(X, false, DeltaRational(Rational(2)), 9));
  auto &E = S.explanation();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_TRUE((E[0] == 7 && E[1] == 9) || (E[0] == 9 && E[1] == 7));
}

TEST(SimplexTest, RowFeasibility) {
  // x + y <= 5, x >= 3, y >= 3: infeasible.
  Simplex S;
  auto X = S.addVar(), Y = S.addVar();
  auto Sum = S.addRowVar({{X, Rational(1)}, {Y, Rational(1)}});
  EXPECT_TRUE(S.assertBound(Sum, false, DeltaRational(Rational(5)), 0));
  EXPECT_TRUE(S.assertBound(X, true, DeltaRational(Rational(3)), 1));
  EXPECT_TRUE(S.assertBound(Y, true, DeltaRational(Rational(3)), 2));
  EXPECT_FALSE(S.check());
  // Explanation covers the three involved bounds.
  EXPECT_GE(S.explanation().size(), 2u);
}

TEST(SimplexTest, RowSatisfiableWithPivoting) {
  // x + y >= 4, x - y <= 0, x <= 1  =>  y >= 3 works.
  Simplex S;
  auto X = S.addVar(), Y = S.addVar();
  auto Sum = S.addRowVar({{X, Rational(1)}, {Y, Rational(1)}});
  auto Diff = S.addRowVar({{X, Rational(1)}, {Y, Rational(-1)}});
  EXPECT_TRUE(S.assertBound(Sum, true, DeltaRational(Rational(4)), 0));
  EXPECT_TRUE(S.assertBound(Diff, false, DeltaRational(Rational(0)), 1));
  EXPECT_TRUE(S.assertBound(X, false, DeltaRational(Rational(1)), 2));
  ASSERT_TRUE(S.check());
  Rational XV = S.value(X).real(), YV = S.value(Y).real();
  EXPECT_GE(XV + YV, Rational(4));
  EXPECT_LE(XV - YV, Rational(0));
  EXPECT_LE(XV, Rational(1));
}

TEST(SimplexTest, StrictBoundsViaDelta) {
  // x > 1 and x < 2 is satisfiable in the rationals.
  Simplex S;
  auto X = S.addVar();
  EXPECT_TRUE(
      S.assertBound(X, true, DeltaRational(Rational(1), Rational(1)), 0));
  EXPECT_TRUE(
      S.assertBound(X, false, DeltaRational(Rational(2), Rational(-1)), 1));
  ASSERT_TRUE(S.check());
  Rational V = S.value(X).materialize(S.suitableEpsilon());
  EXPECT_GT(V, Rational(1));
  EXPECT_LT(V, Rational(2));
}

TEST(SimplexTest, StrictConflict) {
  // x > 1 and x < 1: infeasible.
  Simplex S;
  auto X = S.addVar();
  EXPECT_TRUE(
      S.assertBound(X, true, DeltaRational(Rational(1), Rational(1)), 0));
  bool Ok =
      S.assertBound(X, false, DeltaRational(Rational(1), Rational(-1)), 1);
  EXPECT_TRUE(!Ok || !S.check());
}

TEST(SimplexTest, EqualityThroughRows) {
  // x = 3 via two bounds, row s = 2x: s must be 6.
  Simplex S;
  auto X = S.addVar();
  auto S2 = S.addRowVar({{X, Rational(2)}});
  EXPECT_TRUE(S.assertBound(X, true, DeltaRational(Rational(3)), 0));
  EXPECT_TRUE(S.assertBound(X, false, DeltaRational(Rational(3)), 1));
  ASSERT_TRUE(S.check());
  EXPECT_EQ(S.value(S2).real(), Rational(6));
}

TEST(SimplexTest, RowOfRowInlines) {
  // s1 = x + y; s2 = s1 + y = x + 2y.
  Simplex S;
  auto X = S.addVar(), Y = S.addVar();
  auto S1 = S.addRowVar({{X, Rational(1)}, {Y, Rational(1)}});
  auto S2 = S.addRowVar({{S1, Rational(1)}, {Y, Rational(1)}});
  EXPECT_TRUE(S.assertBound(X, true, DeltaRational(Rational(1)), 0));
  EXPECT_TRUE(S.assertBound(X, false, DeltaRational(Rational(1)), 1));
  EXPECT_TRUE(S.assertBound(Y, true, DeltaRational(Rational(2)), 2));
  EXPECT_TRUE(S.assertBound(Y, false, DeltaRational(Rational(2)), 3));
  ASSERT_TRUE(S.check());
  EXPECT_EQ(S.value(S2).real(), Rational(5));
}

TEST(SimplexTest, ChainedInfeasibility) {
  // x <= y (as y - x >= 0), y <= z, z <= x - 1: infeasible cycle.
  Simplex S;
  auto X = S.addVar(), Y = S.addVar(), Z = S.addVar();
  auto YX = S.addRowVar({{Y, Rational(1)}, {X, Rational(-1)}});
  auto ZY = S.addRowVar({{Z, Rational(1)}, {Y, Rational(-1)}});
  auto XZ = S.addRowVar({{X, Rational(1)}, {Z, Rational(-1)}});
  EXPECT_TRUE(S.assertBound(YX, true, DeltaRational(Rational(0)), 0));
  EXPECT_TRUE(S.assertBound(ZY, true, DeltaRational(Rational(0)), 1));
  EXPECT_TRUE(S.assertBound(XZ, true, DeltaRational(Rational(1)), 2));
  EXPECT_FALSE(S.check());
}
