//===- tests/SpacerTsTest.cpp - Fig. 1/15 transition-system tests ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/SpacerTs.h"
#include "solver/Verify.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
SolverResult run(const char *Cfg, NormalizedChc (*Build)(TermContext &),
                 uint64_t TimeoutMs = 20000) {
  TermContext C;
  NormalizedChc N = Build(C);
  auto Opts = SolverOptions::parse(Cfg);
  EXPECT_TRUE(Opts.has_value());
  Opts->TimeoutMs = TimeoutMs;
  return ChcSolver(C, N, *Opts).solve();
}
} // namespace

TEST(SpacerTsTest, SolvesPaperExamples) {
  EXPECT_EQ(run("SpacerTS(fig1)", paperExample5).Status, ChcStatus::Sat);
  EXPECT_EQ(run("SpacerTS(fig1)", paperExample4).Status, ChcStatus::Unsat);
}

TEST(SpacerTsTest, InvariantIsVerified) {
  TermContext C;
  NormalizedChc N = paperExample5(C);
  auto Opts = SolverOptions::parse("SpacerTS(fig1)");
  Opts->TimeoutMs = 20000;
  SolverResult R = ChcSolver(C, N, *Opts).solve();
  ASSERT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_TRUE(verifyInvariant(C, N, R.Invariant));
}

TEST(SpacerTsTest, UnsatPieceIntersectsBad) {
  TermContext C;
  NormalizedChc N = paperExample4(C);
  auto Opts = SolverOptions::parse("SpacerTS(fig1)");
  Opts->TimeoutMs = 20000;
  SolverResult R = ChcSolver(C, N, *Opts).solve();
  ASSERT_EQ(R.Status, ChcStatus::Unsat);
  EXPECT_TRUE(SmtSolver::quickCheck(C, {R.CexPiece, N.Bad}).has_value());
}

TEST(SpacerTsTest, PerLevelUTerminatesOnAppendixC) {
  // The original Spacer's per-level U (Komuravelli et al. 2014/2016)
  // restores the finiteness of each U_i; it must refute Appendix C.
  SolverResult R = run("SpacerTS(fig1,Ulev)", appendixCSystem);
  EXPECT_EQ(R.Status, ChcStatus::Unsat);
}

TEST(SpacerTsTest, CumulativeUStallsOnAppendixC) {
  // Theorem 19: the Fig. 15 variant with cumulative U diverges. Bounded
  // run must come back Unknown (never a wrong answer).
  SolverResult R = run("SpacerTS(fig15)", appendixCSystem, 6000);
  EXPECT_NE(R.Status, ChcStatus::Sat);
}

TEST(SpacerTsTest, AgreesWithInductiveEnginesOnSmallSuite) {
  for (const BenchInstance &B : buildSmallSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    auto Opts = SolverOptions::parse("SpacerTS(fig1)");
    Opts->TimeoutMs = 10000;
    SolverResult R = ChcSolver(C, N, *Opts).solve();
    if (R.Status != ChcStatus::Unknown)
      EXPECT_EQ(R.Status, B.Expected) << B.Name;
  }
}

TEST(SpacerTsTest, MaxDepthBoundsUnfolding) {
  TermContext C;
  std::vector<BenchInstance> Suite = buildSmallSuite();
  NormalizedChc N = Suite[1].Build(C); // counter_unsafe_3: needs depth ~4.
  auto Opts = SolverOptions::parse("SpacerTS(fig1)");
  Opts->MaxDepth = 2;
  SolverResult R = ChcSolver(C, N, *Opts).solve();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
}
