//===- tests/LinearTest.cpp - LinExpr / LinAtom tests ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "term/Linear.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {
struct LinearFixture : ::testing::Test {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Y = C.mkVar("y", Sort::Int);
  VarId XV = C.node(X).Var, YV = C.node(Y).Var;
};
} // namespace

TEST_F(LinearFixture, FromTermCollectsCoefficients) {
  // 2x + 3y - x + 4 = x + 3y + 4.
  TermRef T = C.mkAdd({C.mkMul(Rational(2), X), C.mkMul(Rational(3), Y),
                       C.mkNeg(X), C.mkIntConst(4)});
  LinExpr E = LinExpr::fromTerm(C, T);
  EXPECT_EQ(E.coeff(XV), Rational(1));
  EXPECT_EQ(E.coeff(YV), Rational(3));
  EXPECT_EQ(E.Const, Rational(4));
}

TEST_F(LinearFixture, CancellationErasesEntries) {
  TermRef T = C.mkAdd(C.mkMul(Rational(2), X), C.mkMul(Rational(-2), X));
  LinExpr E = LinExpr::fromTerm(C, T);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.Const, Rational(0));
}

TEST_F(LinearFixture, ToTermRoundTrip) {
  LinExpr E;
  E.addVar(XV, Rational(5));
  E.addVar(YV, Rational(-2));
  E.Const = Rational(7);
  TermRef T = E.toTerm(C, Sort::Int);
  LinExpr Back = LinExpr::fromTerm(C, T);
  EXPECT_EQ(Back, E);
}

TEST_F(LinearFixture, IntegerNormalize) {
  TermRef XR = C.mkVar("xr", Sort::Real);
  TermRef YR = C.mkVar("yr", Sort::Real);
  LinExpr E;
  E.addVar(C.node(XR).Var, Rational(1, 2));
  E.addVar(C.node(YR).Var, Rational(1, 3));
  Rational Scale = E.integerNormalize();
  EXPECT_EQ(Scale, Rational(6));
  EXPECT_EQ(E.coeff(C.node(XR).Var), Rational(3));
  EXPECT_EQ(E.coeff(C.node(YR).Var), Rational(2));
  EXPECT_EQ(E.coeffGcd(), BigInt(1));
}

TEST_F(LinearFixture, LinAtomRoundTrip) {
  TermRef Atom = C.mkLe(C.mkAdd(C.mkMul(Rational(3), X), Y), C.mkIntConst(7));
  LinAtom A = LinAtom::fromAtomTerm(C, Atom);
  EXPECT_EQ(A.Rel, LinRel::Le);
  EXPECT_EQ(A.Expr.coeff(XV), Rational(3));
  EXPECT_EQ(A.Expr.Const, Rational(-7));
  EXPECT_EQ(A.toTerm(C, Sort::Int), Atom);
}

TEST_F(LinearFixture, AtomArithSort) {
  TermRef IntAtom = C.mkLe(X, C.mkIntConst(2));
  EXPECT_EQ(atomArithSort(C, IntAtom), Sort::Int);
  TermRef XR = C.mkVar("xr2", Sort::Real);
  TermRef RealAtom = C.mkLt(XR, C.mkRealConst(Rational(1)));
  EXPECT_EQ(atomArithSort(C, RealAtom), Sort::Real);
}

TEST_F(LinearFixture, ScaledAndAdd) {
  LinExpr E;
  E.addVar(XV, Rational(2));
  E.Const = Rational(1);
  LinExpr D = E.scaled(Rational(-3));
  EXPECT_EQ(D.coeff(XV), Rational(-6));
  EXPECT_EQ(D.Const, Rational(-3));
  D.add(E, Rational(3));
  EXPECT_TRUE(D.isConstant());
}
