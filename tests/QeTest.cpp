//===- tests/QeTest.cpp - Quantifier elimination tests --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mbp/Qe.h"

#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace mucyc;

namespace {

/// Checks psi == exists Elim. Phi. Soundness of the "phi => psi" direction
/// is exact (one SMT query); the converse is checked by enumerating models
/// of psi and completing them.
void expectExactQe(TermContext &C, TermRef Psi, TermRef Phi,
                   const std::vector<VarId> &Elim) {
  // No eliminated variable survives.
  for (VarId V : C.freeVars(Psi))
    EXPECT_TRUE(std::find(Elim.begin(), Elim.end(), V) == Elim.end());
  // phi => psi (projection covers everything).
  EXPECT_TRUE(SmtSolver::implies(C, Phi, Psi));
  // psi => exists Elim. phi, by sampling.
  SmtSolver Enum(C);
  Enum.assertFormula(Psi);
  for (int I = 0; I < 8; ++I) {
    if (Enum.check() != SmtStatus::Sat)
      return;
    std::vector<TermRef> Conj{Phi};
    std::vector<TermRef> Block;
    for (VarId V : C.freeVars(Psi)) {
      Value Val = Enum.model().value(C, V);
      TermRef Eq = Val.S == Sort::Bool
                       ? (Val.B ? C.varTerm(V) : C.mkNot(C.varTerm(V)))
                       : C.mkEq(C.varTerm(V), C.mkConst(Val.R, Val.S));
      Conj.push_back(Eq);
      Block.push_back(C.mkNot(Eq));
    }
    EXPECT_TRUE(SmtSolver::quickCheck(C, Conj).has_value());
    if (Block.empty())
      return;
    Enum.assertFormula(C.mkOr(Block));
  }
}

} // namespace

TEST(QeTest, IntervalProjection) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  // exists x. y <= x <= y + 4 is true.
  TermRef Phi = C.mkAnd(C.mkGe(X, Y), C.mkLe(X, C.mkAdd(Y, C.mkIntConst(4))));
  EXPECT_EQ(qeExists(C, {C.node(X).Var}, Phi), C.mkTrue());
}

TEST(QeTest, DivisibilityResidues) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  // exists x. y <= x <= y+1 /\ 2 | x: always true (one of two consecutive
  // integers is even).
  TermRef Phi = C.mkAnd({C.mkGe(X, Y), C.mkLe(X, C.mkAdd(Y, C.mkIntConst(1))),
                         C.mkDivides(BigInt(2), X)});
  TermRef Psi = qeExists(C, {C.node(X).Var}, Phi);
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, C.mkTrue()));
  // Tight window: exists x. y <= x <= y /\ 2 | x  ==  2 | y.
  TermRef Phi2 = C.mkAnd({C.mkGe(X, Y), C.mkLe(X, Y),
                          C.mkDivides(BigInt(2), X)});
  TermRef Psi2 = qeExists(C, {C.node(X).Var}, Phi2);
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi2, C.mkDivides(BigInt(2), Y)));
}

TEST(QeTest, RealProjection) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Real), Y = C.mkVar("y", Sort::Real),
          Z = C.mkVar("z", Sort::Real);
  TermRef Phi = C.mkAnd(C.mkGt(X, Y), C.mkLt(X, Z));
  TermRef Psi = qeExists(C, {C.node(X).Var}, Phi);
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, C.mkLt(Y, Z)));
}

TEST(QeTest, UnsatisfiableBody) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Phi = C.mkAnd(C.mkGe(X, C.mkIntConst(1)),
                        C.mkLe(X, C.mkIntConst(0)));
  EXPECT_EQ(qeExists(C, {C.node(X).Var}, Phi), C.mkFalse());
}

TEST(QeTest, NoVariablesToEliminate) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  TermRef Phi = C.mkGe(X, C.mkIntConst(0));
  EXPECT_EQ(qeExists(C, {}, Phi), Phi);
}

TEST(QeTest, ForallDuality) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  // forall x. (x >= y => x >= 0)  ==  y >= 0.
  TermRef Phi = C.mkImplies(C.mkGe(X, Y), C.mkGe(X, C.mkIntConst(0)));
  TermRef Psi = qeForall(C, {C.node(X).Var}, Phi);
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, C.mkGe(Y, C.mkIntConst(0))));
}

TEST(QeTest, DisjunctiveInput) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
  // exists x. (x = y /\ x >= 3) \/ (x = -y /\ x >= 3)  ==  y >= 3 \/ y <= -3.
  TermRef Phi = C.mkOr(C.mkAnd(C.mkEq(X, Y), C.mkGe(X, C.mkIntConst(3))),
                       C.mkAnd(C.mkEq(X, C.mkNeg(Y)),
                               C.mkGe(X, C.mkIntConst(3))));
  TermRef Psi = qeExists(C, {C.node(X).Var}, Phi);
  TermRef Expect = C.mkOr(C.mkGe(Y, C.mkIntConst(3)),
                          C.mkLe(Y, C.mkIntConst(-3)));
  EXPECT_TRUE(SmtSolver::equivalent(C, Psi, Expect));
}

class QePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(QePropertyTest, ProjectionIsExact) {
  std::mt19937 Rng(GetParam());
  TermContext C;
  for (int Round = 0; Round < 12; ++Round) {
    std::vector<TermRef> Vars;
    for (int I = 0; I < 3; ++I)
      Vars.push_back(C.mkFreshVar("q", Sort::Int));
    auto RndLin = [&]() {
      std::vector<TermRef> Parts;
      for (TermRef V : Vars)
        if (Rng() % 2)
          Parts.push_back(
              C.mkMul(Rational(static_cast<int64_t>(Rng() % 5) - 2), V));
      Parts.push_back(C.mkIntConst(static_cast<int64_t>(Rng() % 7) - 3));
      return C.mkAdd(Parts);
    };
    std::vector<TermRef> Lits;
    int N = 2 + Rng() % 3;
    for (int I = 0; I < N; ++I) {
      if (Rng() % 4 == 0)
        Lits.push_back(C.mkDivides(BigInt(2 + Rng() % 2), RndLin()));
      else
        Lits.push_back(C.mkLe(RndLin(), RndLin()));
    }
    // Mix in a disjunction now and then.
    TermRef Phi = Rng() % 3 == 0 && Lits.size() >= 2
                      ? C.mkOr(C.mkAnd({Lits[0], Lits[1]}),
                               C.mkAnd(std::vector<TermRef>(Lits.begin() + 1,
                                                            Lits.end())))
                      : C.mkAnd(Lits);
    std::vector<VarId> Elim{C.node(Vars[0]).Var};
    TermRef Psi = qeExists(C, Elim, Phi);
    expectExactQe(C, Psi, Phi, Elim);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QePropertyTest,
                         ::testing::Values(41u, 42u, 43u));
