//===- tests/FingerprintTest.cpp - Canonical fingerprint tests ------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The result store's cache key: the fingerprint must be invariant under
// alpha-renaming (predicate and variable names, and hence VarIds and
// interning order) and under commutative-argument reordering, stable across
// contexts and processes, and must separate structurally different systems.
//
//===----------------------------------------------------------------------===//

#include "chc/Fingerprint.h"
#include "chc/Parser.h"
#include "chc/Preprocess.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {

/// The frontend pipeline a textual submission goes through before it is
/// fingerprinted: parse, preprocess, normalize.
NormalizedChc buildText(TermContext &Ctx, const std::string &Text) {
  ParseResult PR = parseChc(Ctx, Text);
  EXPECT_TRUE(PR.Ok) << PR.Error;
  ChcSystem Work = preprocess(*PR.System);
  return normalize(Work).Sys;
}

ChcFingerprint fpOf(const std::string &Text) {
  TermContext Ctx;
  NormalizedChc N = buildText(Ctx, Text);
  return fingerprintNormalized(Ctx, N);
}

const char *CounterSat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 100)) false)))
(check-sat)
)";

/// CounterSat with the predicate and every bound variable renamed.
const char *CounterSatRenamed = R"((set-logic HORN)
(declare-fun Reach (Int) Bool)
(assert (forall ((a Int)) (=> (= a 0) (Reach a))))
(assert (forall ((a Int) (b Int))
  (=> (and (Reach a) (< a 5) (= b (+ a 1))) (Reach b))))
(assert (forall ((a Int)) (=> (and (Reach a) (> a 100)) false)))
(check-sat)
)";

/// CounterSat with commutative arguments permuted: `and` conjuncts and the
/// `+` addends swapped. Same system modulo commutativity.
const char *CounterSatShuffled = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (< x 5) (= y (+ 1 x)) (Inv x)) (Inv y))))
(assert (forall ((x Int)) (=> (and (> x 100) (Inv x)) false)))
(check-sat)
)";

/// Structurally different: the guard constant changed.
const char *CounterSatOtherBound = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 101)) false)))
(check-sat)
)";

/// Structurally different: unsat variant (bad region is reachable).
const char *CounterUnsat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 2)) false)))
(check-sat)
)";

} // namespace

TEST(FingerprintTest, DeterministicAcrossContexts) {
  // Two independent parses of the same text: different contexts, same
  // interning history, equal fingerprints — and a nonzero one.
  ChcFingerprint A = fpOf(CounterSat);
  ChcFingerprint B = fpOf(CounterSat);
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A.Hi != 0 || A.Lo != 0);
}

TEST(FingerprintTest, InvariantUnderAlphaRenaming) {
  // The acceptance scenario of the serve cache: a resubmission with every
  // predicate and variable renamed must key to the same entry.
  EXPECT_EQ(fpOf(CounterSat), fpOf(CounterSatRenamed));
}

TEST(FingerprintTest, InvariantUnderCommutativeReordering) {
  EXPECT_EQ(fpOf(CounterSat), fpOf(CounterSatShuffled));
}

TEST(FingerprintTest, SeparatesDistinctSystems) {
  ChcFingerprint Base = fpOf(CounterSat);
  EXPECT_NE(Base, fpOf(CounterSatOtherBound));
  EXPECT_NE(Base, fpOf(CounterUnsat));
  EXPECT_NE(fpOf(CounterSatOtherBound), fpOf(CounterUnsat));
}

TEST(FingerprintTest, InterningOrderCannotLeak) {
  // Parse an unrelated system first so every term of the second parse gets
  // different TermRef indices; the fingerprint must not notice.
  TermContext Warm;
  buildText(Warm, CounterUnsat);
  NormalizedChc N = buildText(Warm, CounterSat);
  EXPECT_EQ(fingerprintNormalized(Warm, N), fpOf(CounterSat));
}

TEST(FingerprintTest, HexIs32LowercaseDigits) {
  std::string H = fpOf(CounterSat).hex();
  ASSERT_EQ(H.size(), 32u);
  for (char C : H)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << H;
}
